#include "history/history_store.h"

#include <filesystem>
#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "history/mem_history_store.h"
#include "history/sql_history_store.h"

namespace prorp::history {
namespace {

namespace fs = std::filesystem;

enum class StoreKind { kSql, kMem };

std::unique_ptr<HistoryStore> MakeStore(StoreKind kind) {
  if (kind == StoreKind::kSql) {
    auto s = SqlHistoryStore::Open();
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    return std::move(*s);
  }
  return std::make_unique<MemHistoryStore>();
}

// Every behavioural test runs against BOTH implementations: the faithful
// SQL stored procedures and the in-memory simulation store must be
// indistinguishable through the HistoryStore interface.
class HistoryStoreTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  void SetUp() override { store_ = MakeStore(GetParam()); }
  std::unique_ptr<HistoryStore> store_;
};

TEST_P(HistoryStoreTest, EmptyStore) {
  EXPECT_EQ(store_->NumTuples(), 0u);
  EXPECT_EQ(store_->SizeBytes(), 0u);
  EXPECT_TRUE(store_->MinTimestamp().status().IsNotFound());
  auto old = store_->DeleteOldHistory(Days(28), 1'700'000'000);
  ASSERT_TRUE(old.ok());
  EXPECT_FALSE(*old);  // empty history: not an old database
}

TEST_P(HistoryStoreTest, InsertAndReadBack) {
  ASSERT_TRUE(store_->InsertHistory(1000, kEventLogin).ok());
  ASSERT_TRUE(store_->InsertHistory(2000, kEventLogout).ok());
  ASSERT_TRUE(store_->InsertHistory(1500, kEventLogin).ok());  // out of order
  auto all = store_->ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 3u);
  EXPECT_EQ((*all)[0], (HistoryTuple{1000, 1}));
  EXPECT_EQ((*all)[1], (HistoryTuple{1500, 1}));
  EXPECT_EQ((*all)[2], (HistoryTuple{2000, 0}));
  EXPECT_EQ(*store_->MinTimestamp(), 1000);
  EXPECT_EQ(store_->SizeBytes(), 3 * kTupleBytes);
}

TEST_P(HistoryStoreTest, InsertIsIdempotentOnTimestamp) {
  // Algorithm 2's IF NOT EXISTS: a second tuple with the same timestamp is
  // silently dropped, keeping the first event type.
  ASSERT_TRUE(store_->InsertHistory(1000, kEventLogin).ok());
  ASSERT_TRUE(store_->InsertHistory(1000, kEventLogout).ok());
  auto all = store_->ReadAll();
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ((*all)[0].event_type, kEventLogin);
}

TEST_P(HistoryStoreTest, RejectsBadEventType) {
  EXPECT_TRUE(store_->InsertHistory(1, 2).IsInvalidArgument());
  EXPECT_TRUE(store_->InsertHistory(1, -1).IsInvalidArgument());
}

TEST_P(HistoryStoreTest, DeleteOldHistoryKeepsOldestTuple) {
  const EpochSeconds now = Days(100);
  // Lifespan witness at day 1, stale activity at days 10, 40, recent at 90.
  ASSERT_TRUE(store_->InsertHistory(Days(1), kEventLogin).ok());
  ASSERT_TRUE(store_->InsertHistory(Days(10), kEventLogout).ok());
  ASSERT_TRUE(store_->InsertHistory(Days(40), kEventLogin).ok());
  ASSERT_TRUE(store_->InsertHistory(Days(90), kEventLogin).ok());
  auto old = store_->DeleteOldHistory(Days(28), now);  // cut at day 72
  ASSERT_TRUE(old.ok());
  EXPECT_TRUE(*old);
  auto all = store_->ReadAll();
  ASSERT_EQ(all->size(), 2u);
  // The oldest tuple survives as the lifespan witness (Algorithm 3).
  EXPECT_EQ((*all)[0].time_snapshot, Days(1));
  EXPECT_EQ((*all)[1].time_snapshot, Days(90));
}

TEST_P(HistoryStoreTest, YoungDatabaseIsNotOld) {
  const EpochSeconds now = Days(100);
  ASSERT_TRUE(store_->InsertHistory(now - Days(5), kEventLogin).ok());
  auto old = store_->DeleteOldHistory(Days(28), now);
  ASSERT_TRUE(old.ok());
  EXPECT_FALSE(*old);
  EXPECT_EQ(store_->NumTuples(), 1u);  // nothing deleted
}

TEST_P(HistoryStoreTest, BoundaryExactlyAtHistoryStart) {
  const EpochSeconds now = Days(100);
  const EpochSeconds cut = now - Days(28);
  ASSERT_TRUE(store_->InsertHistory(cut, kEventLogin).ok());
  // min == historyStart: strictly-less comparison => not old.
  auto old = store_->DeleteOldHistory(Days(28), now);
  ASSERT_TRUE(old.ok());
  EXPECT_FALSE(*old);

  ASSERT_TRUE(store_->InsertHistory(cut - 1, kEventLogin).ok());
  auto old2 = store_->DeleteOldHistory(Days(28), now);
  ASSERT_TRUE(old2.ok());
  EXPECT_TRUE(*old2);
  // Tuple exactly at the cut is kept (delete range is exclusive).
  auto all = store_->ReadAll();
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0].time_snapshot, cut - 1);
  EXPECT_EQ((*all)[1].time_snapshot, cut);
}

TEST_P(HistoryStoreTest, LoginMinMaxFiltersEventType) {
  ASSERT_TRUE(store_->InsertHistory(100, kEventLogin).ok());
  ASSERT_TRUE(store_->InsertHistory(200, kEventLogout).ok());
  ASSERT_TRUE(store_->InsertHistory(300, kEventLogin).ok());
  ASSERT_TRUE(store_->InsertHistory(400, kEventLogout).ok());
  auto agg = store_->LoginMinMax(0, 1000);
  ASSERT_TRUE(agg.ok());
  EXPECT_TRUE(agg->any);
  EXPECT_EQ(agg->first_login, 100);
  EXPECT_EQ(agg->last_login, 300);
  // Range with only logouts -> no logins.
  auto none = store_->LoginMinMax(150, 250);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->any);
}

TEST_P(HistoryStoreTest, LoginMinMaxHalfOpenBounds) {
  ASSERT_TRUE(store_->InsertHistory(100, kEventLogin).ok());
  ASSERT_TRUE(store_->InsertHistory(200, kEventLogin).ok());
  // Lower bound inclusive, upper bound exclusive: [100, 200) sees only
  // the login at 100.
  auto agg = store_->LoginMinMax(100, 200);
  ASSERT_TRUE(agg.ok());
  EXPECT_TRUE(agg->any);
  EXPECT_EQ(agg->first_login, 100);
  EXPECT_EQ(agg->last_login, 100);
  auto next = store_->LoginMinMax(200, 300);
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next->any);
  EXPECT_EQ(next->first_login, 200);
  auto excl = store_->LoginMinMax(101, 200);
  ASSERT_TRUE(excl.ok());
  EXPECT_FALSE(excl->any);
}

TEST_P(HistoryStoreTest, BoundaryLoginCountedInExactlyOneWindow) {
  // Regression: a login exactly at prev_start + window_size belongs to
  // the next window only.  The old inclusive upper bound counted it in
  // both adjacent sliding windows, inflating seasons_with_activity.
  const DurationSeconds window = Hours(7);
  ASSERT_TRUE(store_->InsertHistory(Days(10) + window, kEventLogin).ok());
  auto first = store_->LoginMinMax(Days(10), Days(10) + window);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->any);
  auto second =
      store_->LoginMinMax(Days(10) + window, Days(10) + 2 * window);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->any);
  EXPECT_EQ(second->first_login, Days(10) + window);
}

TEST_P(HistoryStoreTest, CollectLoginsSortedAndFiltered) {
  ASSERT_TRUE(store_->InsertHistory(300, kEventLogin).ok());
  ASSERT_TRUE(store_->InsertHistory(100, kEventLogin).ok());
  ASSERT_TRUE(store_->InsertHistory(150, kEventLogout).ok());
  ASSERT_TRUE(store_->InsertHistory(200, kEventLogin).ok());
  auto logins = store_->CollectLogins(100, 250);
  ASSERT_TRUE(logins.ok());
  EXPECT_EQ(*logins, (std::vector<EpochSeconds>{100, 200}));
  // Upper bound is exclusive, matching LoginMinMax.
  auto half_open = store_->CollectLogins(100, 200);
  ASSERT_TRUE(half_open.ok());
  EXPECT_EQ(*half_open, (std::vector<EpochSeconds>{100}));
}

TEST_P(HistoryStoreTest, DeleteOldRejectsNonPositiveH) {
  EXPECT_TRUE(store_->DeleteOldHistory(0, 100).status().IsInvalidArgument());
}

INSTANTIATE_TEST_SUITE_P(Impl, HistoryStoreTest,
                         ::testing::Values(StoreKind::kSql, StoreKind::kMem),
                         [](const auto& info) {
                           return info.param == StoreKind::kSql ? "Sql"
                                                                : "Mem";
                         });

// Differential test: both stores driven by the same random operation
// sequence must stay observationally identical.
TEST(HistoryStoreEquivalenceTest, RandomOperationsMatch) {
  Rng rng(20240615);
  auto sql_store = SqlHistoryStore::Open();
  ASSERT_TRUE(sql_store.ok());
  MemHistoryStore mem_store;
  EpochSeconds now = 1'600'000'000;
  for (int op = 0; op < 2000; ++op) {
    now += rng.NextInt(0, Hours(2));
    double dice = rng.NextDouble();
    if (dice < 0.8) {
      int type = rng.NextBool(0.5) ? kEventLogin : kEventLogout;
      // Occasionally duplicate an old timestamp to exercise IF NOT EXISTS.
      EpochSeconds t = rng.NextBool(0.05) ? now - rng.NextInt(0, Days(2))
                                          : now;
      ASSERT_TRUE((*sql_store)->InsertHistory(t, type).ok());
      ASSERT_TRUE(mem_store.InsertHistory(t, type).ok());
    } else if (dice < 0.9) {
      auto a = (*sql_store)->DeleteOldHistory(Days(28), now);
      auto b = mem_store.DeleteOldHistory(Days(28), now);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(*a, *b);
    } else {
      EpochSeconds lo = now - rng.NextInt(0, Days(30));
      EpochSeconds hi = lo + rng.NextInt(0, Days(2));
      auto a = (*sql_store)->LoginMinMax(lo, hi);
      auto b = mem_store.LoginMinMax(lo, hi);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a->any, b->any);
      if (a->any) {
        EXPECT_EQ(a->first_login, b->first_login);
        EXPECT_EQ(a->last_login, b->last_login);
      }
    }
  }
  auto all_sql = (*sql_store)->ReadAll();
  auto all_mem = mem_store.ReadAll();
  ASSERT_TRUE(all_sql.ok());
  ASSERT_TRUE(all_mem.ok());
  EXPECT_EQ(*all_sql, *all_mem);
}

TEST(SqlHistoryStoreTest, DurableAcrossReopen) {
  std::string dir = testing::TempDir() + "/history_durable";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    auto store = SqlHistoryStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->InsertHistory(1000, kEventLogin).ok());
    ASSERT_TRUE((*store)->InsertHistory(2000, kEventLogout).ok());
  }
  {
    auto store = SqlHistoryStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ((*store)->NumTuples(), 2u);
    EXPECT_EQ(*(*store)->MinTimestamp(), 1000);
  }
  fs::remove_all(dir);
}

TEST(HistoryViewTest, HumanReadableMaterializedView) {
  std::vector<HistoryTuple> tuples = {{1693551600, kEventLogin},
                                      {1693580400, kEventLogout}};
  std::string view = FormatHistoryView(tuples);
  EXPECT_NE(view.find("2023-09-01 07:00:00    activity_start"),
            std::string::npos)
      << view;
  EXPECT_NE(view.find("2023-09-01 15:00:00    activity_end"),
            std::string::npos);
}

}  // namespace
}  // namespace prorp::history
