#include "workload/trace_io.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "workload/region.h"

namespace prorp::workload {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(TraceIoTest, RoundTripPreservesFleet) {
  auto fleet = GenerateFleet(RegionEU1(), 50, Days(1005),
                             Days(1005) + Days(7), 9);
  std::string path = TempPath("fleet_roundtrip.csv");
  ASSERT_TRUE(SaveFleetCsv(fleet, path).ok());
  auto loaded = LoadFleetCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Databases with no sessions do not round-trip (they have no rows).
  std::vector<DbTrace> nonempty;
  for (const DbTrace& t : fleet) {
    if (!t.sessions.empty()) nonempty.push_back(t);
  }
  ASSERT_EQ(loaded->size(), nonempty.size());
  for (size_t i = 0; i < nonempty.size(); ++i) {
    EXPECT_EQ((*loaded)[i].sessions, nonempty[i].sessions);
    EXPECT_EQ((*loaded)[i].pattern, nonempty[i].pattern);
    EXPECT_EQ((*loaded)[i].created_at, nonempty[i].created_at);
    EXPECT_EQ((*loaded)[i].db_id, i);  // densified
  }
  std::filesystem::remove(path);
}

TEST(TraceIoTest, DensifiesSparseIds) {
  std::string path = TempPath("fleet_sparse.csv");
  std::ofstream out(path);
  out << "db_id,pattern,session_start,session_end\n";
  out << "7,daily,100,200\n";
  out << "42,sporadic,50,80\n";
  out << "42,sporadic,300,400\n";
  out.close();
  auto loaded = LoadFleetCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].db_id, 0u);
  EXPECT_EQ((*loaded)[1].db_id, 1u);
  EXPECT_EQ((*loaded)[1].sessions.size(), 2u);
  EXPECT_EQ((*loaded)[0].pattern, PatternType::kDaily);
  std::filesystem::remove(path);
}

TEST(TraceIoTest, RejectsMalformedInput) {
  std::string path = TempPath("fleet_bad.csv");
  {
    std::ofstream out(path);
    out << "wrong,header\n";
  }
  EXPECT_TRUE(LoadFleetCsv(path).status().IsInvalidArgument());
  {
    std::ofstream out(path);
    out << "db_id,pattern,session_start,session_end\n";
    out << "1,daily,not_a_number,200\n";
  }
  EXPECT_TRUE(LoadFleetCsv(path).status().IsInvalidArgument());
  {
    std::ofstream out(path);
    out << "db_id,pattern,session_start,session_end\n";
    out << "1,daily,200,100\n";  // end <= start
  }
  EXPECT_TRUE(LoadFleetCsv(path).status().IsInvalidArgument());
  {
    std::ofstream out(path);
    out << "db_id,pattern,session_start,session_end\n";
    out << "1,daily,100,200\n";
    out << "1,daily,150,300\n";  // overlap
  }
  EXPECT_TRUE(LoadFleetCsv(path).status().IsInvalidArgument());
  std::filesystem::remove(path);
}

TEST(TraceIoTest, MissingFileIsNotFound) {
  EXPECT_TRUE(LoadFleetCsv(TempPath("no_such_fleet.csv"))
                  .status()
                  .IsNotFound());
}

TEST(TraceIoTest, UnknownPatternDefaultsToSporadic) {
  std::string path = TempPath("fleet_unknown_pattern.csv");
  std::ofstream out(path);
  out << "db_id,pattern,session_start,session_end\n";
  out << "1,mystery,100,200\n";
  out.close();
  auto loaded = LoadFleetCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)[0].pattern, PatternType::kSporadic);
  std::filesystem::remove(path);
}

TEST(TraceIoTest, ParsePatternTypeCoversAllNames) {
  for (PatternType type :
       {PatternType::kDailyBusiness, PatternType::kDaily,
        PatternType::kWeekly, PatternType::kAlwaysBusy,
        PatternType::kSporadic, PatternType::kBursty,
        PatternType::kDevTest}) {
    PatternType parsed;
    ASSERT_TRUE(
        ParsePatternType(std::string(PatternTypeName(type)), &parsed));
    EXPECT_EQ(parsed, type);
  }
  PatternType parsed;
  EXPECT_FALSE(ParsePatternType("nope", &parsed));
}

}  // namespace
}  // namespace prorp::workload
