#include "workload/trace_source.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "workload/region.h"
#include "workload/trace.h"

namespace prorp::workload {
namespace {

constexpr EpochSeconds kFrom = Days(1004);  // a Monday
constexpr EpochSeconds kTo = kFrom + Days(35);

StreamingFleetSource MakeSource(uint64_t seed = 2024) {
  return StreamingFleetSource(RegionEU1(), /*num_dbs=*/64, kFrom, kTo, seed);
}

TEST(StreamingFleetSourceTest, OpenIsPure) {
  // The sharded simulator relies on Open(db) being a pure function: the
  // same database must yield the identical session list on every open,
  // within one source and across source instances with the same seed.
  StreamingFleetSource a = MakeSource();
  StreamingFleetSource b = MakeSource();
  for (uint32_t db = 0; db < a.num_dbs(); ++db) {
    std::vector<Session> first = CollectSessions(a, db);
    std::vector<Session> again = CollectSessions(a, db);
    std::vector<Session> other = CollectSessions(b, db);
    ASSERT_EQ(first.size(), again.size()) << "db " << db;
    ASSERT_EQ(first.size(), other.size()) << "db " << db;
    for (size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i].start, again[i].start) << "db " << db;
      EXPECT_EQ(first[i].end, again[i].end) << "db " << db;
      EXPECT_EQ(first[i].start, other[i].start) << "db " << db;
      EXPECT_EQ(first[i].end, other[i].end) << "db " << db;
    }
  }
}

TEST(StreamingFleetSourceTest, SessionsComeOutNormalized) {
  // Streamed sessions must satisfy the same invariants NormalizeSessions
  // guarantees on a materialized trace: clipped to the window, positive
  // length, ascending, non-overlapping with the minimum gap.
  StreamingFleetSource source = MakeSource();
  size_t sessions_total = 0;
  for (uint32_t db = 0; db < source.num_dbs(); ++db) {
    std::vector<Session> sessions = CollectSessions(source, db);
    sessions_total += sessions.size();
    for (size_t i = 0; i < sessions.size(); ++i) {
      EXPECT_GE(sessions[i].start, kFrom) << "db " << db;
      EXPECT_LE(sessions[i].end, kTo) << "db " << db;
      EXPECT_LT(sessions[i].start, sessions[i].end) << "db " << db;
      if (i > 0) {
        EXPECT_GE(sessions[i].start, sessions[i - 1].end + kSecondsPerMinute)
            << "db " << db << " session " << i;
      }
    }
  }
  // A 64-database EU fleet over 5 weeks is not quiet.
  EXPECT_GT(sessions_total, 500u);
}

TEST(StreamingFleetSourceTest, PatternAssignmentIsStableAndMixed) {
  StreamingFleetSource a = MakeSource();
  StreamingFleetSource b = MakeSource();
  std::map<PatternType, size_t> histogram;
  for (uint32_t db = 0; db < a.num_dbs(); ++db) {
    EXPECT_EQ(a.PatternOf(db), b.PatternOf(db)) << "db " << db;
    ++histogram[a.PatternOf(db)];
  }
  // The region mixes archetypes; 64 draws should hit more than one.
  EXPECT_GT(histogram.size(), 1u);
}

TEST(StreamingFleetSourceTest, DifferentSeedsGiveDifferentFleets) {
  StreamingFleetSource a = MakeSource(1);
  StreamingFleetSource c = MakeSource(2);
  size_t differing = 0;
  for (uint32_t db = 0; db < a.num_dbs(); ++db) {
    std::vector<Session> x = CollectSessions(a, db);
    std::vector<Session> y = CollectSessions(c, db);
    if (x.size() != y.size()) {
      ++differing;
      continue;
    }
    for (size_t i = 0; i < x.size(); ++i) {
      if (x[i].start != y[i].start || x[i].end != y[i].end) {
        ++differing;
        break;
      }
    }
  }
  EXPECT_GT(differing, a.num_dbs() / 2);
}

TEST(StreamingFleetSourceTest, CursorMatchesCollectedSessions) {
  // Pulling one at a time through the cursor is the simulator's access
  // path; it must agree with the collected vector and terminate cleanly.
  StreamingFleetSource source = MakeSource();
  std::vector<Session> collected = CollectSessions(source, 3);
  std::unique_ptr<SessionCursor> cursor = source.Open(3);
  Session s;
  size_t i = 0;
  while (cursor->Next(&s)) {
    ASSERT_LT(i, collected.size());
    EXPECT_EQ(s.start, collected[i].start);
    EXPECT_EQ(s.end, collected[i].end);
    ++i;
  }
  EXPECT_EQ(i, collected.size());
  EXPECT_FALSE(cursor->Next(&s));  // stays exhausted
}

TEST(MaterializedTraceSourceTest, AdaptsAVectorFleet) {
  std::vector<DbTrace> traces(2);
  traces[0].db_id = 0;
  traces[0].sessions = {{kFrom + Hours(1), kFrom + Hours(2)},
                        {kFrom + Hours(5), kFrom + Hours(6)}};
  traces[1].db_id = 1;
  traces[1].sessions = {{kFrom + Hours(3), kFrom + Hours(4)}};
  MaterializedTraceSource source(traces);
  EXPECT_EQ(source.num_dbs(), 2u);
  std::vector<Session> s0 = CollectSessions(source, 0);
  std::vector<Session> s1 = CollectSessions(source, 1);
  ASSERT_EQ(s0.size(), 2u);
  ASSERT_EQ(s1.size(), 1u);
  EXPECT_EQ(s0[0].start, kFrom + Hours(1));
  EXPECT_EQ(s1[0].end, kFrom + Hours(4));
}

}  // namespace
}  // namespace prorp::workload
