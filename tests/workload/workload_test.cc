#include <gtest/gtest.h>

#include "workload/patterns.h"
#include "workload/region.h"
#include "workload/trace.h"

namespace prorp::workload {
namespace {

constexpr EpochSeconds kFrom = Days(1000);
constexpr EpochSeconds kTo = Days(1035);

TEST(NormalizeSessionsTest, SortsClipsAndMerges) {
  std::vector<Session> sessions = {
      {200, 300}, {100, 130}, {290, 400},  // {290,400} overlaps {200,300}
      {500, 520}, {525, 560},              // closer than min_gap=60
      {-50, 20},                           // clipped to [0, ...)
      {900, 905},
  };
  NormalizeSessions(sessions, 0, 1000, 60);
  ASSERT_EQ(sessions.size(), 5u);
  EXPECT_EQ(sessions[0], (Session{0, 20}));
  EXPECT_EQ(sessions[1], (Session{100, 130}));
  EXPECT_EQ(sessions[2], (Session{200, 400}));
  EXPECT_EQ(sessions[3], (Session{500, 560}));
  EXPECT_EQ(sessions[4], (Session{900, 905}));
}

TEST(NormalizeSessionsTest, DropsDegenerate) {
  std::vector<Session> sessions = {{100, 100}, {2000, 2100}};
  NormalizeSessions(sessions, 0, 1500, 60);
  EXPECT_TRUE(sessions.empty());
}

// Structural invariants that every generator must uphold.
class PatternInvariantTest
    : public ::testing::TestWithParam<PatternType> {};

TEST_P(PatternInvariantTest, SessionsAreSortedDisjointAndInWindow) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    Rng rng(seed);
    DbTrace trace = GenerateTrace(GetParam(), 0, kFrom, kTo, rng);
    for (size_t i = 0; i < trace.sessions.size(); ++i) {
      const Session& s = trace.sessions[i];
      EXPECT_GE(s.start, kFrom);
      EXPECT_LE(s.end, kTo);
      EXPECT_GT(s.end, s.start);
      if (i > 0) {
        EXPECT_GE(s.start - trace.sessions[i - 1].end, kSecondsPerMinute);
      }
    }
    if (!trace.sessions.empty()) {
      EXPECT_EQ(trace.created_at, trace.sessions.front().start);
    }
  }
}

TEST_P(PatternInvariantTest, DeterministicInSeed) {
  Rng rng_a(123), rng_b(123);
  DbTrace a = GenerateTrace(GetParam(), 0, kFrom, kTo, rng_a);
  DbTrace b = GenerateTrace(GetParam(), 0, kFrom, kTo, rng_b);
  EXPECT_EQ(a.sessions, b.sessions);
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, PatternInvariantTest,
    ::testing::Values(PatternType::kDailyBusiness, PatternType::kDaily,
                      PatternType::kWeekly, PatternType::kAlwaysBusy,
                      PatternType::kSporadic, PatternType::kBursty,
                      PatternType::kDevTest),
    [](const auto& info) {
      return std::string(PatternTypeName(info.param));
    });

TEST(PatternShapeTest, DailyBusinessSkipsWeekends) {
  Rng rng(5);
  DbTrace trace =
      GenerateTrace(PatternType::kDailyBusiness, 0, kFrom, kTo, rng);
  int weekend_sessions = 0;
  for (const Session& s : trace.sessions) {
    if (IsWeekend(s.start)) ++weekend_sessions;
  }
  EXPECT_LT(weekend_sessions, static_cast<int>(trace.sessions.size()) / 5);
}

TEST(PatternShapeTest, WeeklyUsesAtMostTwoWeekdays) {
  Rng rng(11);
  DbTrace trace = GenerateTrace(PatternType::kWeekly, 0, kFrom, kTo, rng);
  std::set<int> weekdays;
  for (const Session& s : trace.sessions) {
    weekdays.insert(WeekdayIndex(s.start));
  }
  EXPECT_LE(weekdays.size(), 2u);
  EXPECT_GE(trace.sessions.size(), 3u);
}

TEST(PatternShapeTest, AlwaysBusyHasManyShortGaps) {
  Rng rng(13);
  DbTrace trace =
      GenerateTrace(PatternType::kAlwaysBusy, 0, kFrom, kTo, rng);
  GapStats stats = ComputeGapStats({trace});
  EXPECT_GT(stats.gap_count, 50u);
  EXPECT_GT(stats.short_gap_count_fraction, 0.5);
}

TEST(PatternShapeTest, SporadicHasLongGaps) {
  Rng rng(17);
  DbTrace trace = GenerateTrace(PatternType::kSporadic, 0, kFrom, kTo, rng);
  GapStats stats = ComputeGapStats({trace});
  EXPECT_LT(stats.within_l_count_fraction, 0.3);
}

TEST(PatternShapeTest, BurstyProducesLargeHistories) {
  // Worst-case Figure 10(a): thousands of tuples per 28 days.
  Rng rng(19);
  DbTrace trace = GenerateTrace(PatternType::kBursty, 0, kFrom,
                                kFrom + Days(28), rng);
  // Each session contributes 2 history tuples.
  EXPECT_GT(trace.sessions.size() * 2, 500u);
}

TEST(GapStatsTest, CountsAndFractions) {
  DbTrace trace;
  trace.sessions = {{0, 100},
                    {100 + Minutes(30), 200 + Minutes(30)},   // 30 min gap
                    {Hours(10), Hours(11)},                   // long gap
                    {Hours(30), Hours(31)}};                  // 19h gap
  GapStats stats = ComputeGapStats({trace});
  EXPECT_EQ(stats.gap_count, 3u);
  EXPECT_NEAR(stats.short_gap_count_fraction, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(stats.within_l_count_fraction, 1.0 / 3.0, 1e-9);
  EXPECT_LT(stats.short_gap_duration_fraction, 0.05);
}

TEST(RegionTest, FleetGenerationDeterministicAndComplete) {
  RegionProfile profile = RegionEU1();
  auto fleet_a = GenerateFleet(profile, 200, kFrom, kTo, 42);
  auto fleet_b = GenerateFleet(profile, 200, kFrom, kTo, 42);
  ASSERT_EQ(fleet_a.size(), 200u);
  for (size_t i = 0; i < fleet_a.size(); ++i) {
    EXPECT_EQ(fleet_a[i].db_id, i);
    EXPECT_EQ(fleet_a[i].sessions, fleet_b[i].sessions);
    EXPECT_EQ(fleet_a[i].pattern, fleet_b[i].pattern);
  }
  auto fleet_c = GenerateFleet(profile, 200, kFrom, kTo, 43);
  bool any_diff = false;
  for (size_t i = 0; i < fleet_a.size(); ++i) {
    if (fleet_a[i].sessions != fleet_c[i].sessions) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RegionTest, MixCoversMultiplePatterns) {
  auto fleet = GenerateFleet(RegionEU1(), 500, kFrom, kTo, 1);
  std::set<PatternType> seen;
  for (const DbTrace& t : fleet) seen.insert(t.pattern);
  EXPECT_GE(seen.size(), 5u);
}

TEST(RegionTest, NewDatabasesCreatedInsideWindow) {
  RegionProfile profile = RegionEU1();
  profile.new_db_fraction = 0.5;
  EpochSeconds new_from = kFrom + Days(28);
  auto fleet = GenerateFleet(profile, 300, kFrom, kTo, 7, new_from);
  int new_dbs = 0;
  for (const DbTrace& t : fleet) {
    if (!t.sessions.empty() && t.created_at >= new_from) ++new_dbs;
  }
  EXPECT_GT(new_dbs, 60);
  EXPECT_LT(new_dbs, 240);
}

TEST(RegionTest, AllRegionProfilesAreDistinctAndNamed) {
  auto regions = AllRegions();
  ASSERT_EQ(regions.size(), 4u);
  EXPECT_EQ(regions[0].name, "EU1");
  EXPECT_EQ(regions[1].name, "EU2");
  EXPECT_EQ(regions[2].name, "US1");
  EXPECT_EQ(regions[3].name, "US2");
}

// The headline calibration property behind Figure 3: across a large EU1
// fleet, most idle intervals are short but contribute little idle time.
TEST(RegionTest, Figure3FragmentationShape) {
  auto fleet = GenerateFleet(RegionEU1(), 2000, kFrom, kFrom + Days(60), 99);
  GapStats stats = ComputeGapStats(fleet);
  // Shape targets (paper: 72% / 5%); allow generous bands here, the bench
  // prints exact numbers.
  EXPECT_GT(stats.short_gap_count_fraction, 0.55);
  EXPECT_LT(stats.short_gap_duration_fraction, 0.15);
  EXPECT_GT(stats.gap_count, 10000u);
}

}  // namespace
}  // namespace prorp::workload
