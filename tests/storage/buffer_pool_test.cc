#include "storage/buffer_pool.h"

#include <cstring>

#include <gtest/gtest.h>

#include "storage/disk_manager.h"

namespace prorp::storage {
namespace {

TEST(BufferPoolTest, NewPageIsZeroed) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 4);
  auto page = pool.New();
  ASSERT_TRUE(page.ok());
  for (uint32_t i = 0; i < pool.usable_size(); ++i) {
    ASSERT_EQ(page->data()[i], 0);
  }
}

TEST(BufferPoolTest, UsableSizeAccountsForPageHeader) {
  InMemoryDiskManager disk;
  BufferPool checksummed(&disk, 4);
  EXPECT_EQ(checksummed.usable_size(), kPageSize - kPageHeaderSize);
  InMemoryDiskManager legacy_disk;
  BufferPool legacy(&legacy_disk, 4, PageFormat::kLegacyV1);
  EXPECT_EQ(legacy.usable_size(), kPageSize);
}

TEST(BufferPoolTest, WriteSurvivesEviction) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 2);
  PageId id;
  {
    auto page = pool.New();
    ASSERT_TRUE(page.ok());
    id = page->id();
    std::memset(page->mutable_data(), 0xAB, pool.usable_size());
  }
  // Evict it by cycling other pages through the tiny pool.
  for (int i = 0; i < 6; ++i) {
    auto p = pool.New();
    ASSERT_TRUE(p.ok());
  }
  auto again = pool.Fetch(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->data()[0], 0xAB);
  EXPECT_EQ(again->data()[pool.usable_size() - 1], 0xAB);
  EXPECT_GT(pool.stats().evictions, 0u);
}

TEST(BufferPoolTest, FetchHitDoesNotTouchDisk) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 4);
  auto page = pool.New();
  ASSERT_TRUE(page.ok());
  PageId id = page->id();
  page->Release();
  uint64_t misses_before = pool.stats().misses;
  auto again = pool.Fetch(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(pool.stats().misses, misses_before);
  EXPECT_GT(pool.stats().hits, 0u);
}

TEST(BufferPoolTest, AllPinnedIsResourceExhausted) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 2);
  auto a = pool.New();
  auto b = pool.New();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = pool.New();
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  // Releasing a pin frees a frame.
  a->Release();
  auto d = pool.New();
  EXPECT_TRUE(d.ok());
}

TEST(BufferPoolTest, FailedNewReturnsPageIdToDiskManager) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 2);
  auto a = pool.New();
  auto b = pool.New();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(disk.num_pages(), 2u);
  // Every frame is pinned, so New() cannot place the page it allocated.
  auto c = pool.New();
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  // The id allocated for the failed New() must go back to the disk
  // manager's free list, not leak: the next successful New() reuses it
  // instead of growing the page file again.
  a->Release();
  auto d = pool.New();
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->id(), 2u);
  EXPECT_EQ(disk.num_pages(), 3u);
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 3);
  auto pinned = pool.New();
  ASSERT_TRUE(pinned.ok());
  std::memset(pinned->mutable_data(), 0x42, 16);
  // Cycle pages; the pinned one must stay resident and intact.
  for (int i = 0; i < 10; ++i) {
    auto p = pool.New();
    ASSERT_TRUE(p.ok());
  }
  EXPECT_EQ(pinned->data()[0], 0x42);
}

TEST(BufferPoolTest, FetchUnallocatedPageFails) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 2);
  auto r = pool.Fetch(99);
  EXPECT_FALSE(r.ok());
}

TEST(BufferPoolTest, FlushWritesDirtyPage) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 2);
  auto page = pool.New();
  ASSERT_TRUE(page.ok());
  PageId id = page->id();
  std::memset(page->mutable_data(), 0x7F, pool.usable_size());
  page->Release();
  ASSERT_TRUE(pool.FlushAll().ok());
  uint8_t raw[kPageSize];
  ASSERT_TRUE(disk.Read(id, raw).ok());
  // Client payload lands after the integrity header...
  EXPECT_EQ(raw[kPageHeaderSize], 0x7F);
  EXPECT_EQ(raw[kPageSize - 1], 0x7F);
  // ...and the header was sealed on the way out.
  PageHeader h = ReadPageHeader(raw);
  EXPECT_EQ(h.page_id, id);
  EXPECT_EQ(h.crc, ComputePageCrc(raw));
  EXPECT_GT(pool.stats().pages_sealed, 0u);
}

TEST(BufferPoolTest, FetchVerifiesChecksumAndRejectsCorruptPage) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 2);
  auto page = pool.New();
  ASSERT_TRUE(page.ok());
  PageId id = page->id();
  std::memset(page->mutable_data(), 0x5A, pool.usable_size());
  page->Release();
  ASSERT_TRUE(pool.FlushAll().ok());

  // Flip one payload bit behind the pool's back.
  uint8_t raw[kPageSize];
  ASSERT_TRUE(disk.Read(id, raw).ok());
  raw[kPageHeaderSize + 100] ^= 0x01;
  ASSERT_TRUE(disk.Write(id, raw).ok());

  // Evict the cached copy so the next fetch re-reads from disk.
  for (int i = 0; i < 4; ++i) {
    auto p = pool.New();
    ASSERT_TRUE(p.ok());
  }
  auto again = pool.Fetch(id);
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsCorruption());
  const CorruptionContext* ctx = again.status().corruption_context();
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(ctx->page_id, id);
  EXPECT_NE(ctx->expected_crc, ctx->actual_crc);
  EXPECT_GT(pool.stats().checksum_failures, 0u);
}

TEST(BufferPoolTest, FetchRejectsMisdirectedRead) {
  // Copy page A's (valid, sealed) image over page B: the checksum holds
  // but the page-id self-reference exposes the misdirected write.
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 2);
  auto a = pool.New();
  ASSERT_TRUE(a.ok());
  PageId id_a = a->id();
  std::memset(a->mutable_data(), 0x11, pool.usable_size());
  a->Release();
  auto b = pool.New();
  ASSERT_TRUE(b.ok());
  PageId id_b = b->id();
  std::memset(b->mutable_data(), 0x22, pool.usable_size());
  b->Release();
  ASSERT_TRUE(pool.FlushAll().ok());

  uint8_t raw[kPageSize];
  ASSERT_TRUE(disk.Read(id_a, raw).ok());
  ASSERT_TRUE(disk.Write(id_b, raw).ok());

  for (int i = 0; i < 4; ++i) {
    auto p = pool.New();
    ASSERT_TRUE(p.ok());
  }
  auto fetch_b = pool.Fetch(id_b);
  ASSERT_FALSE(fetch_b.ok());
  EXPECT_TRUE(fetch_b.status().IsCorruption());
  const CorruptionContext* ctx = fetch_b.status().corruption_context();
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(ctx->page_id, id_b);
  // CRC itself was fine — the ids disagreed.
  EXPECT_EQ(ctx->expected_crc, ctx->actual_crc);
}

TEST(BufferPoolTest, LegacyFormatSkipsVerificationAndHeaders) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 2, PageFormat::kLegacyV1);
  auto page = pool.New();
  ASSERT_TRUE(page.ok());
  PageId id = page->id();
  std::memset(page->mutable_data(), 0x33, pool.usable_size());
  page->Release();
  ASSERT_TRUE(pool.FlushAll().ok());
  uint8_t raw[kPageSize];
  ASSERT_TRUE(disk.Read(id, raw).ok());
  // No header: byte 0 is client payload.
  EXPECT_EQ(raw[0], 0x33);
  // Corruption passes silently — exactly the legacy hazard.
  raw[100] ^= 0x01;
  ASSERT_TRUE(disk.Write(id, raw).ok());
  for (int i = 0; i < 4; ++i) {
    auto p = pool.New();
    ASSERT_TRUE(p.ok());
  }
  auto again = pool.Fetch(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(pool.stats().checksum_failures, 0u);
}

TEST(BufferPoolTest, MoveGuardTransfersOwnership) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 2);
  auto page = pool.New();
  ASSERT_TRUE(page.ok());
  PageGuard moved = std::move(*page);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(page->valid());
  moved.Release();
  EXPECT_FALSE(moved.valid());
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 2);
  auto a = pool.New();
  ASSERT_TRUE(a.ok());
  PageId id_a = a->id();
  a->Release();
  auto b = pool.New();
  ASSERT_TRUE(b.ok());
  b->Release();
  // Touch A so B becomes the LRU victim.
  { auto t = pool.Fetch(id_a); ASSERT_TRUE(t.ok()); }
  auto c = pool.New();  // evicts B
  ASSERT_TRUE(c.ok());
  c->Release();
  uint64_t misses_before = pool.stats().misses;
  auto t2 = pool.Fetch(id_a);  // A should still be resident
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(pool.stats().misses, misses_before);
}

}  // namespace
}  // namespace prorp::storage
