#include "storage/snapshot.h"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include <gtest/gtest.h>

#include "faults/crash_points.h"
#include "storage/crc32.h"

namespace prorp::storage {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(Crc32Test, KnownVectors) {
  // Standard check value for "123456789".
  const uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(data, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, Incremental) {
  const uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  uint32_t part = Crc32(data, 4);
  EXPECT_EQ(Crc32(data + 4, 5, part), Crc32(data, 9));
}

TEST(Crc32Test, SensitiveToEveryByte) {
  uint8_t a[16] = {};
  uint8_t b[16] = {};
  uint32_t base = Crc32(a, 16);
  for (int i = 0; i < 16; ++i) {
    b[i] = 1;
    EXPECT_NE(Crc32(b, 16), base) << "byte " << i;
    b[i] = 0;
  }
}

TEST(SnapshotTest, RoundTrip) {
  std::string path = TempPath("snapshot_roundtrip.db");
  std::remove(path.c_str());
  std::vector<SnapshotEntry> entries;
  for (int64_t k = 0; k < 100; ++k) {
    std::vector<uint8_t> value(8);
    std::memcpy(value.data(), &k, 8);
    entries.push_back({k * 7, value});
  }
  ASSERT_TRUE(WriteSnapshot(path, 8, entries).ok());
  std::vector<SnapshotEntry> read_back;
  ASSERT_TRUE(ReadSnapshot(path, 8, [&](int64_t key, const uint8_t* value) {
    read_back.push_back(
        {key, std::vector<uint8_t>(value, value + 8)});
    return Status::OK();
  }).ok());
  ASSERT_EQ(read_back.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(read_back[i].key, entries[i].key);
    EXPECT_EQ(read_back[i].value, entries[i].value);
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, EmptySnapshot) {
  std::string path = TempPath("snapshot_empty.db");
  std::remove(path.c_str());
  ASSERT_TRUE(WriteSnapshot(path, 8, {}).ok());
  int count = 0;
  ASSERT_TRUE(ReadSnapshot(path, 8, [&](int64_t, const uint8_t*) {
    ++count;
    return Status::OK();
  }).ok());
  EXPECT_EQ(count, 0);
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  EXPECT_TRUE(ReadSnapshot(TempPath("no_such_snapshot.db"), 8,
                           [](int64_t, const uint8_t*) {
                             return Status::OK();
                           })
                  .IsNotFound());
}

TEST(SnapshotTest, WidthMismatchRejected) {
  std::string path = TempPath("snapshot_width.db");
  std::remove(path.c_str());
  ASSERT_TRUE(WriteSnapshot(path, 8, {{1, std::vector<uint8_t>(8)}}).ok());
  EXPECT_TRUE(ReadSnapshot(path, 16, [](int64_t, const uint8_t*) {
    return Status::OK();
  }).IsCorruption());
  std::remove(path.c_str());
}

TEST(SnapshotTest, EntryWidthValidatedOnWrite) {
  std::string path = TempPath("snapshot_badwidth.db");
  EXPECT_TRUE(WriteSnapshot(path, 8, {{1, std::vector<uint8_t>(4)}})
                  .IsInvalidArgument());
}

TEST(SnapshotTest, AtomicReplace) {
  std::string path = TempPath("snapshot_atomic.db");
  std::remove(path.c_str());
  ASSERT_TRUE(WriteSnapshot(path, 8, {{1, std::vector<uint8_t>(8)}}).ok());
  ASSERT_TRUE(WriteSnapshot(path, 8, {{2, std::vector<uint8_t>(8)},
                                      {3, std::vector<uint8_t>(8)}})
                  .ok());
  std::vector<int64_t> keys;
  ASSERT_TRUE(ReadSnapshot(path, 8, [&](int64_t key, const uint8_t*) {
    keys.push_back(key);
    return Status::OK();
  }).ok());
  EXPECT_EQ(keys, (std::vector<int64_t>{2, 3}));
  // No temp file left behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(SnapshotTest, CrashBeforeRenameSyncKeepsOldSnapshot) {
  std::string path = TempPath("snapshot_pre_rename.db");
  std::remove(path.c_str());
  ASSERT_TRUE(WriteSnapshot(path, 8, {{1, std::vector<uint8_t>(8)}}).ok());

  // Die at the durability barrier between writing the temp file and
  // publishing it: the old snapshot must survive and no temp file may
  // leak (a real crash would leave it; the abort path cleans up).
  auto& registry = faults::CrashPointRegistry::Global();
  registry.Arm(faults::kSnapshotPreRenameSync, 1);
  Status s = WriteSnapshot(path, 8, {{2, std::vector<uint8_t>(8)},
                                     {3, std::vector<uint8_t>(8)}});
  registry.Reset();
  EXPECT_EQ(s.code(), StatusCode::kAborted) << s.ToString();

  std::vector<int64_t> keys;
  ASSERT_TRUE(ReadSnapshot(path, 8, [&](int64_t key, const uint8_t*) {
    keys.push_back(key);
    return Status::OK();
  }).ok());
  EXPECT_EQ(keys, (std::vector<int64_t>{1}));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(CopyFileTest, CopiesBytes) {
  std::string src = TempPath("copy_src.bin");
  std::string dst = TempPath("copy_dst.bin");
  FILE* f = std::fopen(src.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  for (int i = 0; i < 1000; ++i) std::fputc(i & 0xFF, f);
  std::fclose(f);
  ASSERT_TRUE(CopyFile(src, dst).ok());
  EXPECT_EQ(std::filesystem::file_size(dst), 1000u);
  EXPECT_TRUE(CopyFile(TempPath("missing"), dst).IsNotFound());
  std::remove(src.c_str());
  std::remove(dst.c_str());
}

}  // namespace
}  // namespace prorp::storage
