#include "storage/crc32.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace prorp::storage {
namespace {

std::vector<uint8_t> RandomBytes(Rng& rng, size_t n) {
  std::vector<uint8_t> out(n);
  for (auto& b : out) b = static_cast<uint8_t>(rng.NextBelow(256));
  return out;
}

TEST(Crc32Test, KnownVectors) {
  // The IEEE CRC-32 check value: CRC("123456789") == 0xCBF43926.
  const uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(digits, 9), 0xCBF43926u);
  EXPECT_EQ(internal::Crc32ByteAtATime(digits, 9), 0xCBF43926u);
  EXPECT_EQ(internal::Crc32SliceBy8(digits, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, SliceBy8MatchesReferenceAcrossSmallLengths) {
  // Every length 0..64 covers all alignments of the 8-byte main loop and
  // every possible tail length, on several random buffers.
  Rng rng(2024);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<uint8_t> buf = RandomBytes(rng, 64);
    for (size_t len = 0; len <= 64; ++len) {
      uint32_t ref = internal::Crc32ByteAtATime(buf.data(), len);
      EXPECT_EQ(internal::Crc32SliceBy8(buf.data(), len), ref)
          << "trial=" << trial << " len=" << len;
      EXPECT_EQ(Crc32(buf.data(), len), ref)
          << "trial=" << trial << " len=" << len;
    }
  }
}

TEST(Crc32Test, SliceBy8MatchesReferenceOnLargeRandomBuffers) {
  Rng rng(7);
  for (int trial = 0; trial < 4; ++trial) {
    size_t n = 1 + rng.NextBelow(1 << 20);
    std::vector<uint8_t> buf = RandomBytes(rng, n);
    uint32_t seed = static_cast<uint32_t>(rng.NextU64());
    EXPECT_EQ(internal::Crc32SliceBy8(buf.data(), n, seed),
              internal::Crc32ByteAtATime(buf.data(), n, seed))
        << "trial=" << trial << " n=" << n;
    // Misaligned start: the slice loop must not assume 8-byte alignment.
    size_t skew = 1 + rng.NextBelow(7);
    if (n > skew) {
      EXPECT_EQ(internal::Crc32SliceBy8(buf.data() + skew, n - skew),
                internal::Crc32ByteAtATime(buf.data() + skew, n - skew));
    }
  }
}

TEST(Crc32Test, ChainedSeedEqualsConcatenation) {
  // Crc32(a+b) == Crc32(b, seed=Crc32(a)): the property the WAL and the
  // page sealer rely on to checksum logically concatenated regions
  // without materializing them.
  Rng rng(99);
  for (int trial = 0; trial < 16; ++trial) {
    size_t na = rng.NextBelow(300);
    size_t nb = rng.NextBelow(300);
    std::vector<uint8_t> a = RandomBytes(rng, na);
    std::vector<uint8_t> b = RandomBytes(rng, nb);
    std::vector<uint8_t> ab = a;
    ab.insert(ab.end(), b.begin(), b.end());
    uint32_t whole = Crc32(ab.data(), ab.size());
    uint32_t chained = Crc32(b.data(), b.size(), Crc32(a.data(), a.size()));
    EXPECT_EQ(chained, whole) << "na=" << na << " nb=" << nb;
    // And the same property holds for each implementation on its own.
    EXPECT_EQ(internal::Crc32SliceBy8(
                  b.data(), b.size(),
                  internal::Crc32SliceBy8(a.data(), a.size())),
              whole);
    EXPECT_EQ(internal::Crc32ByteAtATime(
                  b.data(), b.size(),
                  internal::Crc32ByteAtATime(a.data(), a.size())),
              whole);
  }
}

TEST(Crc32Test, DispatchedImplementationIsBitIdentical) {
  // Whatever the runtime dispatch picked (slice-by-8 or ARM hardware), it
  // must agree with the byte-at-a-time reference — checksums already on
  // disk have to keep verifying.
  Rng rng(5);
  std::vector<uint8_t> buf = RandomBytes(rng, 65536);
  for (size_t len : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                     size_t{4096}, size_t{65536}}) {
    EXPECT_EQ(Crc32(buf.data(), len),
              internal::Crc32ByteAtATime(buf.data(), len))
        << "len=" << len << " hw=" << internal::Crc32UsesHardware();
  }
}

}  // namespace
}  // namespace prorp::storage
