// Scrubber property tests: every single-bit flip in a page header and a
// sample of payload bits must be flagged against exactly the corrupted
// page, and a scrub of the restored image must report no errors.

#include "storage/scrubber.h"

#include <cstring>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace prorp::storage {
namespace {

std::vector<uint8_t> Value64(int64_t v) {
  std::vector<uint8_t> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

/// Builds a multi-page sealed tree image in `disk` and returns the number
/// of entries inserted.
uint64_t BuildSealedTree(InMemoryDiskManager* disk, uint64_t entries) {
  BufferPool pool(disk, 128);
  auto tree = BPlusTree::Create(&pool, 8);
  EXPECT_TRUE(tree.ok());
  for (uint64_t i = 0; i < entries; ++i) {
    EXPECT_TRUE(
        (*tree)->Insert(static_cast<int64_t>(i), Value64(i * 7).data()).ok());
  }
  EXPECT_TRUE(pool.FlushAll().ok());
  return entries;
}

TEST(ScrubberTest, CleanTreeScrubsClean) {
  InMemoryDiskManager disk;
  BuildSealedTree(&disk, 600);
  ASSERT_GT(disk.num_pages(), 3u) << "tree should span several pages";

  auto report = ScrubPages(&disk);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->ToString();
  EXPECT_EQ(report->pages_scanned, disk.num_pages());
  EXPECT_EQ(report->checksum_errors, 0u);
  EXPECT_EQ(report->page_id_errors, 0u);
}

TEST(ScrubberTest, ScrubTreeChecksStructureToo) {
  InMemoryDiskManager disk;
  BuildSealedTree(&disk, 600);
  BufferPool pool(&disk, 128);
  auto tree = BPlusTree::Open(&pool);
  ASSERT_TRUE(tree.ok());
  auto report = ScrubTree(&pool, tree->get());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->ToString();
  EXPECT_EQ(report->structural_errors, 0u);
}

TEST(ScrubberTest, UnwrittenPageIsNotAnError) {
  InMemoryDiskManager disk;
  BuildSealedTree(&disk, 100);
  // Allocate a page that is never written back: all-zero on "disk".
  auto extra = disk.Allocate();
  ASSERT_TRUE(extra.ok());
  auto report = ScrubPages(&disk);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->ToString();
  EXPECT_GE(report->pages_unwritten, 1u);
}

/// Satellite property: every bit of one page's 16-byte integrity header,
/// flipped one at a time, is detected and attributed to exactly that page.
TEST(ScrubberTest, EveryHeaderBitFlipIsDetectedExactly) {
  InMemoryDiskManager disk;
  BuildSealedTree(&disk, 600);
  const PageId target = 1;  // the first node page

  uint8_t orig[kPageSize];
  uint8_t flipped[kPageSize];
  ASSERT_TRUE(disk.Read(target, orig).ok());

  for (uint64_t bit = 0; bit < kPageHeaderSize * 8; ++bit) {
    std::memcpy(flipped, orig, kPageSize);
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    ASSERT_TRUE(disk.Write(target, flipped).ok());

    auto report = ScrubPages(&disk);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->errors(), 1u) << "header bit " << bit;
    ASSERT_EQ(report->issues.size(), 1u) << "header bit " << bit;
    EXPECT_EQ(report->issues[0].page_id, target) << "header bit " << bit;

    // The buffer pool independently refuses the page.
    BufferPool probe(&disk, 4);
    auto guard = probe.Fetch(target);
    EXPECT_FALSE(guard.ok()) << "header bit " << bit;
    EXPECT_TRUE(guard.status().IsCorruption()) << "header bit " << bit;

    ASSERT_TRUE(disk.Write(target, orig).ok());
  }
  // No false positives on the restored image.
  auto report = ScrubPages(&disk);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->ToString();
}

/// Satellite property: sampled payload-bit flips across several seeds are
/// each detected against exactly the corrupted page, with no false
/// positives once restored.
TEST(ScrubberTest, SampledPayloadBitFlipsAreDetectedAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    InMemoryDiskManager disk;
    BuildSealedTree(&disk, 600);
    Rng rng(seed);
    const PageId target =
        static_cast<PageId>(rng.NextBelow(disk.num_pages()));

    uint8_t orig[kPageSize];
    uint8_t flipped[kPageSize];
    ASSERT_TRUE(disk.Read(target, orig).ok());

    for (int i = 0; i < 32; ++i) {
      uint64_t bit = kPageHeaderSize * 8 +
                     rng.NextBelow((kPageSize - kPageHeaderSize) * 8);
      std::memcpy(flipped, orig, kPageSize);
      flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      ASSERT_TRUE(disk.Write(target, flipped).ok());

      auto report = ScrubPages(&disk);
      ASSERT_TRUE(report.ok());
      EXPECT_EQ(report->errors(), 1u)
          << "seed " << seed << " page " << target << " bit " << bit;
      ASSERT_EQ(report->issues.size(), 1u);
      EXPECT_EQ(report->issues[0].page_id, target)
          << "seed " << seed << " bit " << bit;

      ASSERT_TRUE(disk.Write(target, orig).ok());
    }
    auto report = ScrubPages(&disk);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->clean())
        << "seed " << seed << ": " << report->ToString();
  }
}

/// Misdirected writes (a valid page image landing at the wrong offset)
/// are caught by the page-id self-reference, not the checksum.
TEST(ScrubberTest, MisdirectedPageImageIsFlagged) {
  InMemoryDiskManager disk;
  BuildSealedTree(&disk, 600);
  ASSERT_GT(disk.num_pages(), 2u);

  uint8_t page1[kPageSize];
  ASSERT_TRUE(disk.Read(1, page1).ok());
  ASSERT_TRUE(disk.Write(2, page1).ok());  // page 1's image lands on page 2

  auto report = ScrubPages(&disk);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->page_id_errors, 1u) << report->ToString();
  ASSERT_GE(report->issues.size(), 1u);
  EXPECT_EQ(report->issues[0].page_id, 2u);
}

TEST(ScrubberTest, IssueListIsCappedButCountersAreNot) {
  InMemoryDiskManager disk;
  BuildSealedTree(&disk, 8000);  // enough pages to exceed the issue cap
  ASSERT_GT(disk.num_pages(), kMaxScrubIssues + 2);

  uint8_t raw[kPageSize];
  for (PageId p = 0; p < disk.num_pages(); ++p) {
    ASSERT_TRUE(disk.Read(p, raw).ok());
    raw[kPageHeaderSize + 1] ^= 0x10;
    ASSERT_TRUE(disk.Write(p, raw).ok());
  }
  auto report = ScrubPages(&disk);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->checksum_errors, disk.num_pages());
  EXPECT_EQ(report->issues.size(), kMaxScrubIssues);
}

}  // namespace
}  // namespace prorp::storage
