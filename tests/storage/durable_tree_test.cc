#include "storage/durable_tree.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "faults/fault_plan.h"
#include "storage/page.h"

namespace prorp::storage {
namespace {

namespace fs = std::filesystem;

std::vector<uint8_t> Value64(int64_t v) {
  std::vector<uint8_t> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

class DurableTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/durable_tree_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  DurableTree::Options Opts() {
    DurableTree::Options o;
    o.dir = dir_;
    o.value_width = 8;
    o.checkpoint_wal_bytes = 0;  // manual checkpoints in tests
    return o;
  }

  std::string dir_;
};

TEST_F(DurableTreeTest, EphemeralModeWorksWithoutDir) {
  DurableTree::Options o;
  o.dir = "";
  auto t = DurableTree::Open(o);
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE((*t)->durable());
  ASSERT_TRUE((*t)->Insert(1, Value64(10).data()).ok());
  EXPECT_TRUE((*t)->Contains(1));
  EXPECT_TRUE((*t)->Checkpoint().code() == StatusCode::kFailedPrecondition);
  EXPECT_TRUE((*t)->Backup("/tmp/x").code() ==
              StatusCode::kFailedPrecondition);
}

TEST_F(DurableTreeTest, RecoversFromWalOnly) {
  {
    auto t = DurableTree::Open(Opts());
    ASSERT_TRUE(t.ok());
    for (int64_t k = 0; k < 100; ++k) {
      ASSERT_TRUE((*t)->Insert(k, Value64(k * 3).data()).ok());
    }
    ASSERT_TRUE((*t)->Delete(50).ok());
  }  // "crash" without checkpoint
  auto t = DurableTree::Open(Opts());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ((*t)->size(), 99u);
  EXPECT_TRUE((*t)->Find(50).status().IsNotFound());
  auto v = (*t)->Find(51);
  ASSERT_TRUE(v.ok());
  int64_t got;
  std::memcpy(&got, v->data(), 8);
  EXPECT_EQ(got, 153);
}

TEST_F(DurableTreeTest, RecoversFromSnapshotPlusWalTail) {
  {
    auto t = DurableTree::Open(Opts());
    ASSERT_TRUE(t.ok());
    for (int64_t k = 0; k < 50; ++k) {
      ASSERT_TRUE((*t)->Insert(k, Value64(k).data()).ok());
    }
    ASSERT_TRUE((*t)->Checkpoint().ok());
    // Post-checkpoint mutations live only in the WAL.
    for (int64_t k = 50; k < 80; ++k) {
      ASSERT_TRUE((*t)->Insert(k, Value64(k).data()).ok());
    }
    ASSERT_TRUE((*t)->DeleteRange(0, 9).ok());
  }
  auto t = DurableTree::Open(Opts());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->size(), 70u);
  EXPECT_TRUE((*t)->Find(0).status().IsNotFound());
  EXPECT_TRUE((*t)->Contains(79));
  ASSERT_TRUE((*t)->tree().CheckInvariants().ok());
}

TEST_F(DurableTreeTest, CheckpointTruncatesWal) {
  auto t = DurableTree::Open(Opts());
  ASSERT_TRUE(t.ok());
  for (int64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE((*t)->Insert(k, Value64(k).data()).ok());
  }
  ASSERT_TRUE((*t)->Checkpoint().ok());
  EXPECT_EQ(fs::file_size(dir_ + "/wal.log"), 0u);
  EXPECT_GT(fs::file_size(dir_ + "/snapshot.db"), 0u);
}

TEST_F(DurableTreeTest, AutoCheckpointTriggersOnWalGrowth) {
  DurableTree::Options o = Opts();
  o.checkpoint_wal_bytes = 512;
  auto t = DurableTree::Open(o);
  ASSERT_TRUE(t.ok());
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE((*t)->Insert(k, Value64(k).data()).ok());
  }
  // 100 records x ~29 bytes >> 512, so at least one auto checkpoint ran.
  EXPECT_LT(fs::file_size(dir_ + "/wal.log"), 600u);
  EXPECT_TRUE(fs::exists(dir_ + "/snapshot.db"));
}

TEST_F(DurableTreeTest, BackupAndRestoreModelsDatabaseMove) {
  std::string dest = dir_ + "_moved";
  fs::remove_all(dest);
  {
    auto t = DurableTree::Open(Opts());
    ASSERT_TRUE(t.ok());
    for (int64_t k = 0; k < 30; ++k) {
      ASSERT_TRUE((*t)->Insert(k * 100, Value64(k).data()).ok());
    }
    ASSERT_TRUE((*t)->Backup(dest).ok());
  }
  // "The database moves to another node": open the history at dest.
  DurableTree::Options o = Opts();
  o.dir = dest;
  auto moved = DurableTree::Open(o);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  EXPECT_EQ((*moved)->size(), 30u);
  EXPECT_TRUE((*moved)->Contains(2900));
  // History keeps working at the destination.
  ASSERT_TRUE((*moved)->Insert(9999, Value64(1).data()).ok());
  fs::remove_all(dest);
}

TEST_F(DurableTreeTest, LogicalSizeMatchesPaperArithmetic) {
  // Each history tuple is two 64-bit integers = 16 bytes (Section 9.3):
  // 500 tuples ~ the paper's "within 7 KB on average".
  auto t = DurableTree::Open(Opts());
  ASSERT_TRUE(t.ok());
  for (int64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE((*t)->Insert(k, Value64(k % 2).data()).ok());
  }
  EXPECT_EQ((*t)->LogicalSizeBytes(), 500u * 16u);
  EXPECT_LT((*t)->LogicalSizeBytes() / 1024.0, 8.0);
}

TEST_F(DurableTreeTest, CorruptSnapshotIsRejected) {
  {
    auto t = DurableTree::Open(Opts());
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->Insert(1, Value64(1).data()).ok());
    ASSERT_TRUE((*t)->Checkpoint().ok());
  }
  // Flip a byte inside the snapshot body.
  std::string snap = dir_ + "/snapshot.db";
  FILE* f = std::fopen(snap.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 10, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 10, SEEK_SET);
  std::fputc(c ^ 0xFF, f);
  std::fclose(f);
  auto t = DurableTree::Open(Opts());
  EXPECT_FALSE(t.ok());
  EXPECT_TRUE(t.status().IsCorruption());
}

TEST_F(DurableTreeTest, UpdateIsDurable) {
  {
    auto t = DurableTree::Open(Opts());
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->Insert(5, Value64(1).data()).ok());
    ASSERT_TRUE((*t)->Update(5, Value64(2).data()).ok());
  }
  auto t = DurableTree::Open(Opts());
  ASSERT_TRUE(t.ok());
  auto v = (*t)->Find(5);
  ASSERT_TRUE(v.ok());
  int64_t got;
  std::memcpy(&got, v->data(), 8);
  EXPECT_EQ(got, 2);
}

TEST_F(DurableTreeTest, CleanScrubCountsPasses) {
  auto t = DurableTree::Open(Opts());
  ASSERT_TRUE(t.ok());
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE((*t)->Insert(k, Value64(k).data()).ok());
  }
  auto report = (*t)->Scrub();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->clean()) << report->ToString();
  const IntegrityStats& stats = (*t)->integrity_stats();
  EXPECT_EQ(stats.scrub_passes, 1u);
  EXPECT_GT(stats.scrub_pages, 0u);
  EXPECT_EQ(stats.scrub_errors, 0u);
  EXPECT_EQ(stats.corruption_detected, 0u);
}

TEST_F(DurableTreeTest, ScrubDetectsAndRepairsDiskCorruption) {
  auto t = DurableTree::Open(Opts());
  ASSERT_TRUE(t.ok());
  for (int64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE((*t)->Insert(k, Value64(k * 3).data()).ok());
  }
  ASSERT_TRUE((*t)->Checkpoint().ok());
  ASSERT_TRUE((*t)->buffer_pool()->FlushAll().ok());

  // Flip a payload byte of page 1 straight on the page store.  The pool's
  // cached copy stays clean, so only the raw scrub pass can see it.
  uint8_t raw[kPageSize];
  ASSERT_TRUE((*t)->disk()->Read(1, raw).ok());
  raw[kPageHeaderSize + 5] ^= 0x40;
  ASSERT_TRUE((*t)->disk()->Write(1, raw).ok());

  auto report = (*t)->Scrub();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->clean()) << report->ToString();
  const IntegrityStats& stats = (*t)->integrity_stats();
  EXPECT_GE(stats.corruption_detected, 1u);
  EXPECT_GE(stats.corruption_repaired, 1u);
  EXPECT_EQ(stats.corruption_quarantined, 0u);
  EXPECT_GE(stats.scrub_errors, 1u);
  EXPECT_FALSE((*t)->quarantined());
  // The repair lost no acknowledged record.
  EXPECT_EQ((*t)->size(), 200u);
  for (int64_t k = 0; k < 200; ++k) {
    auto v = (*t)->Find(k);
    ASSERT_TRUE(v.ok()) << "key " << k;
    int64_t got;
    std::memcpy(&got, v->data(), 8);
    EXPECT_EQ(got, k * 3);
  }
}

TEST_F(DurableTreeTest, ReadsSelfHealAfterPageStoreCorruption) {
  DurableTree::Options o = Opts();
  o.buffer_pool_pages = 4;
  auto t = DurableTree::Open(o);
  ASSERT_TRUE(t.ok());
  for (int64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE((*t)->Insert(k, Value64(k * 2).data()).ok());
  }
  ASSERT_TRUE((*t)->Checkpoint().ok());
  ASSERT_TRUE((*t)->buffer_pool()->FlushAll().ok());

  // Corrupt every page on the store: the next cache miss trips checksum
  // verification and must drive a transparent rebuild mid-read.
  DiskManager* disk = (*t)->disk();
  uint8_t raw[kPageSize];
  for (PageId p = 0; p < disk->num_pages(); ++p) {
    ASSERT_TRUE(disk->Read(p, raw).ok());
    raw[kPageHeaderSize] ^= 0x01;
    ASSERT_TRUE(disk->Write(p, raw).ok());
  }
  for (int64_t k = 0; k < 1000; ++k) {
    auto v = (*t)->Find(k);
    ASSERT_TRUE(v.ok()) << "key " << k << ": " << v.status().ToString();
    int64_t got;
    std::memcpy(&got, v->data(), 8);
    EXPECT_EQ(got, k * 2);
  }
  EXPECT_GE((*t)->integrity_stats().corruption_detected, 1u);
  EXPECT_GE((*t)->integrity_stats().corruption_repaired, 1u);
  EXPECT_FALSE((*t)->quarantined());
  ASSERT_TRUE((*t)->tree().CheckInvariants().ok());
}

TEST_F(DurableTreeTest, EphemeralStoreQuarantinesOnCorruption) {
  DurableTree::Options o;
  o.dir = "";  // no snapshot or WAL to repair from
  auto t = DurableTree::Open(o);
  ASSERT_TRUE(t.ok());
  for (int64_t k = 0; k < 300; ++k) {
    ASSERT_TRUE((*t)->Insert(k, Value64(k).data()).ok());
  }
  ASSERT_TRUE((*t)->buffer_pool()->FlushAll().ok());

  uint8_t raw[kPageSize];
  ASSERT_TRUE((*t)->disk()->Read(1, raw).ok());
  raw[kPageHeaderSize + 9] ^= 0x08;
  ASSERT_TRUE((*t)->disk()->Write(1, raw).ok());

  auto report = (*t)->Scrub();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsCorruption())
      << report.status().ToString();
  EXPECT_TRUE((*t)->quarantined());
  EXPECT_EQ((*t)->integrity_stats().corruption_quarantined, 1u);
  // Every later operation keeps returning the typed quarantine status.
  EXPECT_TRUE((*t)->Insert(9999, Value64(1).data()).IsCorruption());
  EXPECT_TRUE((*t)->Find(1).status().IsCorruption());
}

TEST_F(DurableTreeTest, QuarantineMovesDurableFilesAside) {
  faults::FaultPlan plan(7);
  DurableTree::Options o = Opts();
  o.buffer_pool_pages = 4;
  o.fault_plan = &plan;
  auto t = DurableTree::Open(o);
  ASSERT_TRUE(t.ok());
  for (int64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE((*t)->Insert(k, Value64(k).data()).ok());
  }
  ASSERT_TRUE((*t)->Checkpoint().ok());

  // From here on every page-store read is silently bit-flipped, so a
  // rebuild can never stick: the store must give up and quarantine.
  plan.FailWithProbability(faults::FaultOp::kDiskRead, 1.0,
                           faults::FaultKind::kBitFlip);
  Status s = Status::OK();
  for (int64_t k = 0; k < 1000 && s.ok(); ++k) {
    s = (*t)->Find(k).status();
  }
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_TRUE((*t)->quarantined());
  EXPECT_GE((*t)->integrity_stats().corruption_quarantined, 1u);
  EXPECT_TRUE(fs::exists(dir_ + "/snapshot.db.quarantined"));
  EXPECT_TRUE(fs::exists(dir_ + "/wal.log.quarantined"));
  EXPECT_FALSE(fs::exists(dir_ + "/snapshot.db"));
  EXPECT_TRUE((*t)->Insert(5000, Value64(1).data()).IsCorruption());
}

}  // namespace
}  // namespace prorp::storage
