#include "storage/durable_tree.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

namespace prorp::storage {
namespace {

namespace fs = std::filesystem;

std::vector<uint8_t> Value64(int64_t v) {
  std::vector<uint8_t> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

class DurableTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/durable_tree_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  DurableTree::Options Opts() {
    DurableTree::Options o;
    o.dir = dir_;
    o.value_width = 8;
    o.checkpoint_wal_bytes = 0;  // manual checkpoints in tests
    return o;
  }

  std::string dir_;
};

TEST_F(DurableTreeTest, EphemeralModeWorksWithoutDir) {
  DurableTree::Options o;
  o.dir = "";
  auto t = DurableTree::Open(o);
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE((*t)->durable());
  ASSERT_TRUE((*t)->Insert(1, Value64(10).data()).ok());
  EXPECT_TRUE((*t)->Contains(1));
  EXPECT_TRUE((*t)->Checkpoint().code() == StatusCode::kFailedPrecondition);
  EXPECT_TRUE((*t)->Backup("/tmp/x").code() ==
              StatusCode::kFailedPrecondition);
}

TEST_F(DurableTreeTest, RecoversFromWalOnly) {
  {
    auto t = DurableTree::Open(Opts());
    ASSERT_TRUE(t.ok());
    for (int64_t k = 0; k < 100; ++k) {
      ASSERT_TRUE((*t)->Insert(k, Value64(k * 3).data()).ok());
    }
    ASSERT_TRUE((*t)->Delete(50).ok());
  }  // "crash" without checkpoint
  auto t = DurableTree::Open(Opts());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ((*t)->size(), 99u);
  EXPECT_TRUE((*t)->Find(50).status().IsNotFound());
  auto v = (*t)->Find(51);
  ASSERT_TRUE(v.ok());
  int64_t got;
  std::memcpy(&got, v->data(), 8);
  EXPECT_EQ(got, 153);
}

TEST_F(DurableTreeTest, RecoversFromSnapshotPlusWalTail) {
  {
    auto t = DurableTree::Open(Opts());
    ASSERT_TRUE(t.ok());
    for (int64_t k = 0; k < 50; ++k) {
      ASSERT_TRUE((*t)->Insert(k, Value64(k).data()).ok());
    }
    ASSERT_TRUE((*t)->Checkpoint().ok());
    // Post-checkpoint mutations live only in the WAL.
    for (int64_t k = 50; k < 80; ++k) {
      ASSERT_TRUE((*t)->Insert(k, Value64(k).data()).ok());
    }
    ASSERT_TRUE((*t)->DeleteRange(0, 9).ok());
  }
  auto t = DurableTree::Open(Opts());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->size(), 70u);
  EXPECT_TRUE((*t)->Find(0).status().IsNotFound());
  EXPECT_TRUE((*t)->Contains(79));
  ASSERT_TRUE((*t)->tree().CheckInvariants().ok());
}

TEST_F(DurableTreeTest, CheckpointTruncatesWal) {
  auto t = DurableTree::Open(Opts());
  ASSERT_TRUE(t.ok());
  for (int64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE((*t)->Insert(k, Value64(k).data()).ok());
  }
  ASSERT_TRUE((*t)->Checkpoint().ok());
  EXPECT_EQ(fs::file_size(dir_ + "/wal.log"), 0u);
  EXPECT_GT(fs::file_size(dir_ + "/snapshot.db"), 0u);
}

TEST_F(DurableTreeTest, AutoCheckpointTriggersOnWalGrowth) {
  DurableTree::Options o = Opts();
  o.checkpoint_wal_bytes = 512;
  auto t = DurableTree::Open(o);
  ASSERT_TRUE(t.ok());
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE((*t)->Insert(k, Value64(k).data()).ok());
  }
  // 100 records x ~29 bytes >> 512, so at least one auto checkpoint ran.
  EXPECT_LT(fs::file_size(dir_ + "/wal.log"), 600u);
  EXPECT_TRUE(fs::exists(dir_ + "/snapshot.db"));
}

TEST_F(DurableTreeTest, BackupAndRestoreModelsDatabaseMove) {
  std::string dest = dir_ + "_moved";
  fs::remove_all(dest);
  {
    auto t = DurableTree::Open(Opts());
    ASSERT_TRUE(t.ok());
    for (int64_t k = 0; k < 30; ++k) {
      ASSERT_TRUE((*t)->Insert(k * 100, Value64(k).data()).ok());
    }
    ASSERT_TRUE((*t)->Backup(dest).ok());
  }
  // "The database moves to another node": open the history at dest.
  DurableTree::Options o = Opts();
  o.dir = dest;
  auto moved = DurableTree::Open(o);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  EXPECT_EQ((*moved)->size(), 30u);
  EXPECT_TRUE((*moved)->Contains(2900));
  // History keeps working at the destination.
  ASSERT_TRUE((*moved)->Insert(9999, Value64(1).data()).ok());
  fs::remove_all(dest);
}

TEST_F(DurableTreeTest, LogicalSizeMatchesPaperArithmetic) {
  // Each history tuple is two 64-bit integers = 16 bytes (Section 9.3):
  // 500 tuples ~ the paper's "within 7 KB on average".
  auto t = DurableTree::Open(Opts());
  ASSERT_TRUE(t.ok());
  for (int64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE((*t)->Insert(k, Value64(k % 2).data()).ok());
  }
  EXPECT_EQ((*t)->LogicalSizeBytes(), 500u * 16u);
  EXPECT_LT((*t)->LogicalSizeBytes() / 1024.0, 8.0);
}

TEST_F(DurableTreeTest, CorruptSnapshotIsRejected) {
  {
    auto t = DurableTree::Open(Opts());
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->Insert(1, Value64(1).data()).ok());
    ASSERT_TRUE((*t)->Checkpoint().ok());
  }
  // Flip a byte inside the snapshot body.
  std::string snap = dir_ + "/snapshot.db";
  FILE* f = std::fopen(snap.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 10, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 10, SEEK_SET);
  std::fputc(c ^ 0xFF, f);
  std::fclose(f);
  auto t = DurableTree::Open(Opts());
  EXPECT_FALSE(t.ok());
  EXPECT_TRUE(t.status().IsCorruption());
}

TEST_F(DurableTreeTest, UpdateIsDurable) {
  {
    auto t = DurableTree::Open(Opts());
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->Insert(5, Value64(1).data()).ok());
    ASSERT_TRUE((*t)->Update(5, Value64(2).data()).ok());
  }
  auto t = DurableTree::Open(Opts());
  ASSERT_TRUE(t.ok());
  auto v = (*t)->Find(5);
  ASSERT_TRUE(v.ok());
  int64_t got;
  std::memcpy(&got, v->data(), 8);
  EXPECT_EQ(got, 2);
}

}  // namespace
}  // namespace prorp::storage
