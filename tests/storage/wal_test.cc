#include "storage/wal.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace prorp::storage {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

WalRecord Insert(int64_t key, std::vector<uint8_t> value) {
  WalRecord r;
  r.type = WalRecord::Type::kInsert;
  r.key = key;
  r.value = std::move(value);
  return r;
}

TEST(WalTest, AppendAndReplayRoundTrip) {
  std::string path = TempPath("wal_roundtrip.log");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Insert(1, {0xAA, 0xBB})).ok());
    WalRecord del;
    del.type = WalRecord::Type::kDelete;
    del.key = 2;
    ASSERT_TRUE((*wal)->Append(del).ok());
    WalRecord range;
    range.type = WalRecord::Type::kDeleteRange;
    range.key = 10;
    range.key2 = 20;
    ASSERT_TRUE((*wal)->Append(range).ok());
    WalRecord upd;
    upd.type = WalRecord::Type::kUpdate;
    upd.key = 3;
    upd.value = {0x01};
    ASSERT_TRUE((*wal)->Append(upd).ok());
  }
  std::vector<WalRecord> seen;
  auto n = WriteAheadLog::Replay(path, [&](const WalRecord& r) {
    seen.push_back(r);
    return Status::OK();
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4u);
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0].type, WalRecord::Type::kInsert);
  EXPECT_EQ(seen[0].key, 1);
  EXPECT_EQ(seen[0].value, (std::vector<uint8_t>{0xAA, 0xBB}));
  EXPECT_EQ(seen[1].type, WalRecord::Type::kDelete);
  EXPECT_EQ(seen[1].key, 2);
  EXPECT_EQ(seen[2].type, WalRecord::Type::kDeleteRange);
  EXPECT_EQ(seen[2].key, 10);
  EXPECT_EQ(seen[2].key2, 20);
  EXPECT_EQ(seen[3].type, WalRecord::Type::kUpdate);
  std::remove(path.c_str());
}

TEST(WalTest, ReplayMissingFileIsEmpty) {
  auto n = WriteAheadLog::Replay(TempPath("no_such_wal.log"),
                                 [](const WalRecord&) {
                                   ADD_FAILURE() << "should not be called";
                                   return Status::OK();
                                 });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST(WalTest, TornTailIsDiscarded) {
  std::string path = TempPath("wal_torn.log");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Insert(1, {0x01})).ok());
    ASSERT_TRUE((*wal)->Append(Insert(2, {0x02})).ok());
  }
  // Truncate mid-record to simulate a crash during append.
  FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  ASSERT_EQ(::truncate(path.c_str(), size - 3), 0);
  std::fclose(f);

  std::vector<int64_t> keys;
  auto n = WriteAheadLog::Replay(path, [&](const WalRecord& r) {
    keys.push_back(r.key);
    return Status::OK();
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  EXPECT_EQ(keys, (std::vector<int64_t>{1}));
  std::remove(path.c_str());
}

TEST(WalTest, CorruptRecordStopsReplay) {
  std::string path = TempPath("wal_corrupt.log");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Insert(1, {0x01})).ok());
    ASSERT_TRUE((*wal)->Append(Insert(2, {0x02})).ok());
  }
  // Flip a payload byte in the second record.
  FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, size - 6, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, size - 6, SEEK_SET);
  std::fputc(c ^ 0xFF, f);
  std::fclose(f);

  auto n = WriteAheadLog::Replay(path, [](const WalRecord&) {
    return Status::OK();
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  std::remove(path.c_str());
}

TEST(WalTest, TruncateEmptiesLog) {
  std::string path = TempPath("wal_truncate.log");
  std::remove(path.c_str());
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(Insert(1, {})).ok());
  ASSERT_GT(*(*wal)->SizeBytes(), 0u);
  ASSERT_TRUE((*wal)->Truncate().ok());
  EXPECT_EQ(*(*wal)->SizeBytes(), 0u);
  auto n = WriteAheadLog::Replay(path, [](const WalRecord&) {
    return Status::OK();
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
  std::remove(path.c_str());
}

TEST(WalTest, ShortWriteRollsBackTornFrame) {
  // Regression: a short append used to leave the torn frame bytes in the
  // file, so every subsequent (valid) append landed behind a corrupt
  // prefix and was lost at replay.  Append must ftruncate back to the
  // pre-append offset before reporting the IoError.
  std::string path = TempPath("wal_short_write.log");
  std::remove(path.c_str());
  faults::FaultPlan plan(1);
  plan.FailNth(faults::FaultOp::kWalAppend, 2,
               faults::FaultKind::kTornWrite);
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    (*wal)->set_fault_plan(&plan);
    ASSERT_TRUE((*wal)->Append(Insert(1, {0x01})).ok());
    Status torn = (*wal)->Append(Insert(2, {0x02}));
    ASSERT_TRUE(torn.IsIoError()) << torn.ToString();
    // The log is clean again: later appends must survive replay.
    ASSERT_TRUE((*wal)->Append(Insert(3, {0x03})).ok());
    ASSERT_TRUE((*wal)->Append(Insert(4, {0x04})).ok());
  }
  std::vector<int64_t> keys;
  auto n = WriteAheadLog::Replay(path, [&](const WalRecord& r) {
    keys.push_back(r.key);
    return Status::OK();
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 3, 4}));
  std::remove(path.c_str());
}

TEST(WalTest, ReplayTrimsTornTailSoNewAppendsAreReadable) {
  // Regression: Replay used to skip the torn tail but leave it in the
  // file; the next Append (O_APPEND) landed behind the garbage, so every
  // record written after recovery was invisible to the following replay.
  std::string path = TempPath("wal_trim_tail.log");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Insert(1, {0x01})).ok());
    ASSERT_TRUE((*wal)->Append(Insert(2, {0x02})).ok());
  }
  FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(::truncate(path.c_str(), size - 3), 0);  // torn second record

  auto first = WriteAheadLog::Replay(path, [](const WalRecord&) {
    return Status::OK();
  });
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 1u);
  {
    // Post-recovery writer: the append must land right after record 1.
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Insert(3, {0x03})).ok());
  }
  std::vector<int64_t> keys;
  auto again = WriteAheadLog::Replay(path, [&](const WalRecord& r) {
    keys.push_back(r.key);
    return Status::OK();
  });
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 3}));
  std::remove(path.c_str());
}

TEST(WalTest, ApplyErrorPropagates) {
  std::string path = TempPath("wal_apply_err.log");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Insert(1, {})).ok());
  }
  auto n = WriteAheadLog::Replay(path, [](const WalRecord&) {
    return Status::Corruption("apply failed");
  });
  EXPECT_FALSE(n.ok());
  EXPECT_TRUE(n.status().IsCorruption());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace prorp::storage
