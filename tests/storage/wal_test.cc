#include "storage/wal.h"

#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace prorp::storage {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

WalRecord Insert(int64_t key, std::vector<uint8_t> value) {
  WalRecord r;
  r.type = WalRecord::Type::kInsert;
  r.key = key;
  r.value = std::move(value);
  return r;
}

TEST(WalTest, AppendAndReplayRoundTrip) {
  std::string path = TempPath("wal_roundtrip.log");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Insert(1, {0xAA, 0xBB})).ok());
    WalRecord del;
    del.type = WalRecord::Type::kDelete;
    del.key = 2;
    ASSERT_TRUE((*wal)->Append(del).ok());
    WalRecord range;
    range.type = WalRecord::Type::kDeleteRange;
    range.key = 10;
    range.key2 = 20;
    ASSERT_TRUE((*wal)->Append(range).ok());
    WalRecord upd;
    upd.type = WalRecord::Type::kUpdate;
    upd.key = 3;
    upd.value = {0x01};
    ASSERT_TRUE((*wal)->Append(upd).ok());
  }
  std::vector<WalRecord> seen;
  auto n = WriteAheadLog::Replay(path, [&](const WalRecord& r) {
    seen.push_back(r);
    return Status::OK();
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4u);
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0].type, WalRecord::Type::kInsert);
  EXPECT_EQ(seen[0].key, 1);
  EXPECT_EQ(seen[0].value, (std::vector<uint8_t>{0xAA, 0xBB}));
  EXPECT_EQ(seen[1].type, WalRecord::Type::kDelete);
  EXPECT_EQ(seen[1].key, 2);
  EXPECT_EQ(seen[2].type, WalRecord::Type::kDeleteRange);
  EXPECT_EQ(seen[2].key, 10);
  EXPECT_EQ(seen[2].key2, 20);
  EXPECT_EQ(seen[3].type, WalRecord::Type::kUpdate);
  std::remove(path.c_str());
}

TEST(WalTest, ReplayMissingFileIsEmpty) {
  auto n = WriteAheadLog::Replay(TempPath("no_such_wal.log"),
                                 [](const WalRecord&) {
                                   ADD_FAILURE() << "should not be called";
                                   return Status::OK();
                                 });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST(WalTest, TornTailIsDiscarded) {
  std::string path = TempPath("wal_torn.log");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Insert(1, {0x01})).ok());
    ASSERT_TRUE((*wal)->Append(Insert(2, {0x02})).ok());
  }
  // Truncate mid-record to simulate a crash during append.
  FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  ASSERT_EQ(::truncate(path.c_str(), size - 3), 0);
  std::fclose(f);

  std::vector<int64_t> keys;
  auto n = WriteAheadLog::Replay(path, [&](const WalRecord& r) {
    keys.push_back(r.key);
    return Status::OK();
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  EXPECT_EQ(keys, (std::vector<int64_t>{1}));
  std::remove(path.c_str());
}

TEST(WalTest, CorruptRecordStopsReplay) {
  std::string path = TempPath("wal_corrupt.log");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Insert(1, {0x01})).ok());
    ASSERT_TRUE((*wal)->Append(Insert(2, {0x02})).ok());
  }
  // Flip a payload byte in the second record.
  FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, size - 6, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, size - 6, SEEK_SET);
  std::fputc(c ^ 0xFF, f);
  std::fclose(f);

  auto n = WriteAheadLog::Replay(path, [](const WalRecord&) {
    return Status::OK();
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  std::remove(path.c_str());
}

TEST(WalTest, TruncateEmptiesLog) {
  std::string path = TempPath("wal_truncate.log");
  std::remove(path.c_str());
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(Insert(1, {})).ok());
  ASSERT_GT(*(*wal)->SizeBytes(), 0u);
  ASSERT_TRUE((*wal)->Truncate().ok());
  EXPECT_EQ(*(*wal)->SizeBytes(), 0u);
  auto n = WriteAheadLog::Replay(path, [](const WalRecord&) {
    return Status::OK();
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
  std::remove(path.c_str());
}

TEST(WalTest, ShortWriteRollsBackTornFrame) {
  // Regression: a short append used to leave the torn frame bytes in the
  // file, so every subsequent (valid) append landed behind a corrupt
  // prefix and was lost at replay.  Append must ftruncate back to the
  // pre-append offset before reporting the IoError.
  std::string path = TempPath("wal_short_write.log");
  std::remove(path.c_str());
  faults::FaultPlan plan(1);
  plan.FailNth(faults::FaultOp::kWalAppend, 2,
               faults::FaultKind::kTornWrite);
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    (*wal)->set_fault_plan(&plan);
    ASSERT_TRUE((*wal)->Append(Insert(1, {0x01})).ok());
    Status torn = (*wal)->Append(Insert(2, {0x02}));
    ASSERT_TRUE(torn.IsIoError()) << torn.ToString();
    // The log is clean again: later appends must survive replay.
    ASSERT_TRUE((*wal)->Append(Insert(3, {0x03})).ok());
    ASSERT_TRUE((*wal)->Append(Insert(4, {0x04})).ok());
  }
  std::vector<int64_t> keys;
  auto n = WriteAheadLog::Replay(path, [&](const WalRecord& r) {
    keys.push_back(r.key);
    return Status::OK();
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 3, 4}));
  std::remove(path.c_str());
}

TEST(WalTest, ReplayTrimsTornTailSoNewAppendsAreReadable) {
  // Regression: Replay used to skip the torn tail but leave it in the
  // file; the next Append (O_APPEND) landed behind the garbage, so every
  // record written after recovery was invisible to the following replay.
  std::string path = TempPath("wal_trim_tail.log");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Insert(1, {0x01})).ok());
    ASSERT_TRUE((*wal)->Append(Insert(2, {0x02})).ok());
  }
  FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(::truncate(path.c_str(), size - 3), 0);  // torn second record

  auto first = WriteAheadLog::Replay(path, [](const WalRecord&) {
    return Status::OK();
  });
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 1u);
  {
    // Post-recovery writer: the append must land right after record 1.
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Insert(3, {0x03})).ok());
  }
  std::vector<int64_t> keys;
  auto again = WriteAheadLog::Replay(path, [&](const WalRecord& r) {
    keys.push_back(r.key);
    return Status::OK();
  });
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 3}));
  std::remove(path.c_str());
}

TEST(WalTest, AppendDurableSingleCallerRoundTrip) {
  std::string path = TempPath("wal_durable_single.log");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    auto lsn1 = (*wal)->AppendDurable(Insert(1, {0x01}));
    auto lsn2 = (*wal)->AppendDurable(Insert(2, {0x02}));
    ASSERT_TRUE(lsn1.ok());
    ASSERT_TRUE(lsn2.ok());
    EXPECT_LT(*lsn1, *lsn2);
    auto stats = (*wal)->group_commit_stats();
    EXPECT_EQ(stats.records, 2u);
    EXPECT_EQ(stats.commits, 2u);  // no concurrency, no batching
    EXPECT_EQ(stats.durable_lsn, *lsn2);
  }
  std::vector<int64_t> keys;
  auto n = WriteAheadLog::Replay(path, [&](const WalRecord& r) {
    keys.push_back(r.key);
    return Status::OK();
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 2}));
  std::remove(path.c_str());
}

TEST(WalTest, GroupCommitConcurrentAppendersReplayOnceInLsnOrder) {
  // N threads append disjoint records through the group-commit path.
  // After a clean join every acked record must replay exactly once, and
  // the file order must equal LSN order.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::string path = TempPath("wal_group_concurrent.log");
  std::remove(path.c_str());

  std::map<int64_t, uint64_t> lsn_by_key;
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    std::mutex mu;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          int64_t key = static_cast<int64_t>(t) * kPerThread + i;
          auto lsn = (*wal)->AppendDurable(
              Insert(key, {static_cast<uint8_t>(t), static_cast<uint8_t>(i)}));
          if (!lsn.ok()) {
            ++failures;
            continue;
          }
          std::lock_guard<std::mutex> lock(mu);
          lsn_by_key[key] = *lsn;
        }
      });
    }
    for (auto& th : threads) th.join();
    ASSERT_EQ(failures.load(), 0);

    auto stats = (*wal)->group_commit_stats();
    EXPECT_EQ(stats.records, static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_LE(stats.commits, stats.records);
    EXPECT_GE(stats.max_batch, 1u);
  }
  ASSERT_EQ(lsn_by_key.size(), static_cast<size_t>(kThreads * kPerThread));

  std::vector<int64_t> replayed_keys;
  auto n = WriteAheadLog::Replay(path, [&](const WalRecord& r) {
    replayed_keys.push_back(r.key);
    return Status::OK();
  });
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, static_cast<uint64_t>(kThreads * kPerThread));

  // Exactly once: every acked key appears, none twice; strictly
  // increasing LSNs prove file order == commit order.
  uint64_t prev_lsn = 0;
  std::map<int64_t, int> seen;
  for (int64_t key : replayed_keys) {
    ASSERT_EQ(++seen[key], 1) << "key " << key << " replayed twice";
    auto it = lsn_by_key.find(key);
    ASSERT_NE(it, lsn_by_key.end()) << "unacked key " << key << " replayed";
    ASSERT_GT(it->second, prev_lsn) << "LSN order violated at key " << key;
    prev_lsn = it->second;
  }
  std::remove(path.c_str());
}

TEST(WalTest, GroupCommitBatchesUnderPause) {
  // With leaders paused, concurrent appenders pile up and the un-pause
  // releases them as one deterministic batch: one commit round, one
  // contiguous write, all records durable.
  constexpr int kAppenders = 4;
  std::string path = TempPath("wal_group_pause.log");
  std::remove(path.c_str());
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  (*wal)->PauseGroupCommitForTest(true);

  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kAppenders; ++t) {
    threads.emplace_back([&, t] {
      auto lsn = (*wal)->AppendDurable(Insert(t, {static_cast<uint8_t>(t)}));
      if (lsn.ok()) ++ok;
    });
  }
  // Wait for every appender to enqueue; nothing may reach the file while
  // paused.
  while ((*wal)->QueuedForTest() < static_cast<size_t>(kAppenders)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(*(*wal)->SizeBytes(), 0u);
  (*wal)->PauseGroupCommitForTest(false);
  for (auto& th : threads) th.join();

  EXPECT_EQ(ok.load(), kAppenders);
  auto stats = (*wal)->group_commit_stats();
  EXPECT_EQ(stats.records, static_cast<uint64_t>(kAppenders));
  EXPECT_EQ(stats.commits, 1u) << "paused appenders must coalesce";
  EXPECT_EQ(stats.max_batch, static_cast<uint64_t>(kAppenders));
  std::remove(path.c_str());
}

TEST(WalTest, GroupCommitFailedBatchedWriteAcksNothing) {
  // A torn batched write must not acknowledge any record in the batch:
  // the file is rolled back to the batch start and every caller gets the
  // error.  Later appends land on a clean log.
  constexpr int kAppenders = 3;
  std::string path = TempPath("wal_group_torn_batch.log");
  std::remove(path.c_str());
  faults::FaultPlan plan(11);
  plan.FailNth(faults::FaultOp::kWalAppend, 1, faults::FaultKind::kTornWrite);
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  (*wal)->set_fault_plan(&plan);
  (*wal)->PauseGroupCommitForTest(true);

  std::atomic<int> io_errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kAppenders; ++t) {
    threads.emplace_back([&, t] {
      auto lsn = (*wal)->AppendDurable(Insert(t, {0xEE}));
      if (!lsn.ok() && lsn.status().IsIoError()) ++io_errors;
    });
  }
  while ((*wal)->QueuedForTest() < static_cast<size_t>(kAppenders)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  (*wal)->PauseGroupCommitForTest(false);
  for (auto& th : threads) th.join();

  ASSERT_EQ((*wal)->group_commit_stats().commits, 1u);
  EXPECT_EQ(io_errors.load(), kAppenders) << "no record may be acked";
  EXPECT_EQ((*wal)->group_commit_stats().durable_lsn, 0u);

  // The rollback left a clean log: a fresh append is replayable.
  (*wal)->set_fault_plan(nullptr);
  ASSERT_TRUE((*wal)->AppendDurable(Insert(100, {0x64})).ok());
  std::vector<int64_t> keys;
  auto n = WriteAheadLog::Replay(path, [&](const WalRecord& r) {
    keys.push_back(r.key);
    return Status::OK();
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(keys, (std::vector<int64_t>{100}));
  std::remove(path.c_str());
}

TEST(WalTest, GroupCommitInjectedIoErrorFailsOnlyThatRecord) {
  // A per-record injected IoError means "no bytes of this record reached
  // the medium"; the rest of the batch still commits and acks.
  constexpr int kAppenders = 3;
  std::string path = TempPath("wal_group_ioerror.log");
  std::remove(path.c_str());
  faults::FaultPlan plan(12);
  plan.FailNth(faults::FaultOp::kWalAppend, 2, faults::FaultKind::kIoError);
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  (*wal)->set_fault_plan(&plan);
  (*wal)->PauseGroupCommitForTest(true);

  std::atomic<int> acked{0};
  std::atomic<int> io_errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kAppenders; ++t) {
    threads.emplace_back([&, t] {
      auto lsn = (*wal)->AppendDurable(Insert(t, {0xAB}));
      if (lsn.ok()) {
        ++acked;
      } else if (lsn.status().IsIoError()) {
        ++io_errors;
      }
    });
  }
  while ((*wal)->QueuedForTest() < static_cast<size_t>(kAppenders)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  (*wal)->PauseGroupCommitForTest(false);
  for (auto& th : threads) th.join();

  ASSERT_EQ((*wal)->group_commit_stats().commits, 1u);
  EXPECT_EQ(acked.load(), kAppenders - 1);
  EXPECT_EQ(io_errors.load(), 1);

  uint64_t replayed = 0;
  auto n = WriteAheadLog::Replay(path, [&](const WalRecord&) {
    ++replayed;
    return Status::OK();
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(replayed, static_cast<uint64_t>(kAppenders - 1));
  std::remove(path.c_str());
}

TEST(WalTest, GroupCommitSyncFaultAcksNothing) {
  // An injected sync fault fails the whole round: the bytes may stay in
  // the file (same contract as a failed serial Sync) but no caller acks.
  constexpr int kAppenders = 3;
  std::string path = TempPath("wal_group_sync_fault.log");
  std::remove(path.c_str());
  faults::FaultPlan plan(13);
  plan.FailNth(faults::FaultOp::kWalSync, 1, faults::FaultKind::kIoError);
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  (*wal)->set_fault_plan(&plan);
  (*wal)->PauseGroupCommitForTest(true);

  std::atomic<int> io_errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kAppenders; ++t) {
    threads.emplace_back([&, t] {
      auto lsn = (*wal)->AppendDurable(Insert(t, {0x55}));
      if (!lsn.ok() && lsn.status().IsIoError()) ++io_errors;
    });
  }
  while ((*wal)->QueuedForTest() < static_cast<size_t>(kAppenders)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  (*wal)->PauseGroupCommitForTest(false);
  for (auto& th : threads) th.join();

  EXPECT_EQ(io_errors.load(), kAppenders);
  EXPECT_EQ((*wal)->group_commit_stats().durable_lsn, 0u);
  std::remove(path.c_str());
}

TEST(WalTest, ApplyErrorPropagates) {
  std::string path = TempPath("wal_apply_err.log");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Insert(1, {})).ok());
  }
  auto n = WriteAheadLog::Replay(path, [](const WalRecord&) {
    return Status::Corruption("apply failed");
  });
  EXPECT_FALSE(n.ok());
  EXPECT_TRUE(n.status().IsCorruption());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace prorp::storage
