#include "storage/disk_manager.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "storage/io_util.h"

namespace prorp::storage {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(InMemoryDiskManagerTest, AllocateReadWrite) {
  InMemoryDiskManager disk;
  EXPECT_EQ(disk.num_pages(), 0u);
  auto id = disk.Allocate();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  EXPECT_EQ(disk.num_pages(), 1u);

  uint8_t out[kPageSize];
  std::memset(out, 0xCD, kPageSize);
  ASSERT_TRUE(disk.Write(*id, out).ok());
  uint8_t in[kPageSize] = {};
  ASSERT_TRUE(disk.Read(*id, in).ok());
  EXPECT_EQ(std::memcmp(in, out, kPageSize), 0);
}

TEST(InMemoryDiskManagerTest, FreshPageIsZeroed) {
  InMemoryDiskManager disk;
  auto id = disk.Allocate();
  ASSERT_TRUE(id.ok());
  uint8_t in[kPageSize];
  std::memset(in, 0xFF, kPageSize);
  ASSERT_TRUE(disk.Read(*id, in).ok());
  for (uint32_t i = 0; i < kPageSize; ++i) ASSERT_EQ(in[i], 0);
}

TEST(InMemoryDiskManagerTest, OutOfRangeAccess) {
  InMemoryDiskManager disk;
  uint8_t buf[kPageSize];
  EXPECT_EQ(disk.Read(0, buf).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(disk.Write(0, buf).code(), StatusCode::kOutOfRange);
}

TEST(FileDiskManagerTest, PersistsAcrossReopen) {
  std::string path = TempPath("fdm_test.db");
  std::remove(path.c_str());
  {
    auto disk = FileDiskManager::Open(path);
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    auto id0 = (*disk)->Allocate();
    auto id1 = (*disk)->Allocate();
    ASSERT_TRUE(id0.ok());
    ASSERT_TRUE(id1.ok());
    uint8_t buf[kPageSize];
    std::memset(buf, 0x11, kPageSize);
    ASSERT_TRUE((*disk)->Write(*id0, buf).ok());
    std::memset(buf, 0x22, kPageSize);
    ASSERT_TRUE((*disk)->Write(*id1, buf).ok());
    ASSERT_TRUE((*disk)->Sync().ok());
  }
  {
    auto disk = FileDiskManager::Open(path);
    ASSERT_TRUE(disk.ok());
    EXPECT_EQ((*disk)->num_pages(), 2u);
    uint8_t buf[kPageSize];
    ASSERT_TRUE((*disk)->Read(0, buf).ok());
    EXPECT_EQ(buf[100], 0x11);
    ASSERT_TRUE((*disk)->Read(1, buf).ok());
    EXPECT_EQ(buf[100], 0x22);
  }
  std::remove(path.c_str());
}

/// Restores the interposed I/O faults even if an assertion bails out.
struct IoFaultGuard {
  ~IoFaultGuard() { io::ResetIoFaultsForTest(); }
};

TEST(FileDiskManagerTest, SurvivesPartialTransfersAndEintr) {
  // Regression: the pread/pwrite wrappers used to fail the whole page
  // operation on any partial transfer or EINTR.  With the syscall capped
  // to 97-byte chunks and an EINTR burst interposed, every page write and
  // read must still move the full kPageSize.
  std::string path = TempPath("fdm_partial_io.db");
  std::remove(path.c_str());
  IoFaultGuard guard;
  {
    auto disk = FileDiskManager::Open(path);
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    io::SetMaxBytesPerCallForTest(97);  // not a divisor of kPageSize
    io::SetEintrBurstForTest(25);
    auto id0 = (*disk)->Allocate();
    auto id1 = (*disk)->Allocate();
    ASSERT_TRUE(id0.ok()) << id0.status().ToString();
    ASSERT_TRUE(id1.ok()) << id1.status().ToString();
    uint8_t buf[kPageSize];
    for (uint32_t i = 0; i < kPageSize; ++i) {
      buf[i] = static_cast<uint8_t>(i * 31 + 7);
    }
    ASSERT_TRUE((*disk)->Write(*id1, buf).ok());
    io::SetEintrBurstForTest(25);
    uint8_t in[kPageSize] = {};
    ASSERT_TRUE((*disk)->Read(*id1, in).ok());
    EXPECT_EQ(std::memcmp(in, buf, kPageSize), 0);
    ASSERT_TRUE((*disk)->Sync().ok());
  }
  io::ResetIoFaultsForTest();
  {
    // The fragmented writes must have produced a well-formed page file.
    auto disk = FileDiskManager::Open(path);
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    EXPECT_EQ((*disk)->num_pages(), 2u);
    uint8_t in[kPageSize];
    ASSERT_TRUE((*disk)->Read(1, in).ok());
    EXPECT_EQ(in[100], static_cast<uint8_t>(100 * 31 + 7));
  }
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, ReadPastEofIsAnIoErrorNotAHang) {
  // A short read caused by true end-of-file must fail cleanly (pages are
  // never legitimately split by EOF), not loop forever.
  std::string path = TempPath("fdm_eof.db");
  std::remove(path.c_str());
  auto disk = FileDiskManager::Open(path);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->Allocate().ok());
  // Truncate the file behind the manager's back so page 0 is half gone.
  ASSERT_EQ(::truncate(path.c_str(), kPageSize / 2), 0);
  uint8_t buf[kPageSize];
  Status s = (*disk)->Read(0, buf);
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, RejectsNonPageAlignedFile) {
  std::string path = TempPath("fdm_misaligned.db");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a page file", f);
  std::fclose(f);
  auto disk = FileDiskManager::Open(path);
  EXPECT_FALSE(disk.ok());
  EXPECT_TRUE(disk.status().IsCorruption());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace prorp::storage
