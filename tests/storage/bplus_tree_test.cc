#include "storage/bplus_tree.h"

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace prorp::storage {
namespace {

std::vector<uint8_t> Value64(int64_t v) {
  std::vector<uint8_t> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

int64_t AsI64(const std::vector<uint8_t>& v) {
  int64_t out;
  std::memcpy(&out, v.data(), 8);
  return out;
}

class BPlusTreeTest : public ::testing::Test {
 protected:
  void Make(uint32_t value_width = 8, size_t pool_pages = 64) {
    disk_ = std::make_unique<InMemoryDiskManager>();
    pool_ = std::make_unique<BufferPool>(disk_.get(), pool_pages);
    auto tree = BPlusTree::Create(pool_.get(), value_width);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    tree_ = std::move(tree).value();
  }

  std::unique_ptr<InMemoryDiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BPlusTree> tree_;
};

TEST_F(BPlusTreeTest, EmptyTree) {
  Make();
  EXPECT_TRUE(tree_->empty());
  EXPECT_EQ(tree_->size(), 0u);
  EXPECT_TRUE(tree_->Find(42).status().IsNotFound());
  EXPECT_TRUE(tree_->MinKey().status().IsNotFound());
  EXPECT_TRUE(tree_->MaxKey().status().IsNotFound());
  EXPECT_TRUE(tree_->CheckInvariants().ok());
}

TEST_F(BPlusTreeTest, InsertAndFind) {
  Make();
  ASSERT_TRUE(tree_->Insert(10, Value64(100).data()).ok());
  ASSERT_TRUE(tree_->Insert(5, Value64(50).data()).ok());
  ASSERT_TRUE(tree_->Insert(20, Value64(200).data()).ok());
  EXPECT_EQ(tree_->size(), 3u);
  auto v = tree_->Find(5);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(AsI64(*v), 50);
  EXPECT_TRUE(tree_->Find(6).status().IsNotFound());
  EXPECT_EQ(*tree_->MinKey(), 5);
  EXPECT_EQ(*tree_->MaxKey(), 20);
}

TEST_F(BPlusTreeTest, DuplicateInsertRejected) {
  Make();
  ASSERT_TRUE(tree_->Insert(7, Value64(1).data()).ok());
  Status s = tree_->Insert(7, Value64(2).data());
  EXPECT_TRUE(s.IsAlreadyExists()) << s.ToString();
  EXPECT_EQ(tree_->size(), 1u);
  EXPECT_EQ(AsI64(*tree_->Find(7)), 1);
}

TEST_F(BPlusTreeTest, UpdateExisting) {
  Make();
  ASSERT_TRUE(tree_->Insert(7, Value64(1).data()).ok());
  ASSERT_TRUE(tree_->Update(7, Value64(99).data()).ok());
  EXPECT_EQ(AsI64(*tree_->Find(7)), 99);
  EXPECT_TRUE(tree_->Update(8, Value64(1).data()).IsNotFound());
}

TEST_F(BPlusTreeTest, DeleteSimple) {
  Make();
  for (int64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(tree_->Insert(k, Value64(k).data()).ok());
  }
  ASSERT_TRUE(tree_->Delete(5).ok());
  EXPECT_TRUE(tree_->Find(5).status().IsNotFound());
  EXPECT_EQ(tree_->size(), 9u);
  EXPECT_TRUE(tree_->Delete(5).IsNotFound());
  EXPECT_TRUE(tree_->CheckInvariants().ok());
}

TEST_F(BPlusTreeTest, SequentialInsertSplits) {
  Make();
  const int64_t n = 5000;  // forces multiple levels (leaf cap = 255)
  for (int64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(tree_->Insert(k, Value64(k * 2).data()).ok()) << k;
  }
  EXPECT_EQ(tree_->size(), static_cast<uint64_t>(n));
  ASSERT_TRUE(tree_->CheckInvariants().ok());
  EXPECT_GE(*tree_->Height(), 2u);
  for (int64_t k = 0; k < n; k += 97) {
    auto v = tree_->Find(k);
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(AsI64(*v), k * 2);
  }
}

TEST_F(BPlusTreeTest, ReverseInsert) {
  Make();
  const int64_t n = 3000;
  for (int64_t k = n; k > 0; --k) {
    ASSERT_TRUE(tree_->Insert(k, Value64(k).data()).ok());
  }
  ASSERT_TRUE(tree_->CheckInvariants().ok());
  EXPECT_EQ(*tree_->MinKey(), 1);
  EXPECT_EQ(*tree_->MaxKey(), n);
}

TEST_F(BPlusTreeTest, ScanRangeInclusive) {
  Make();
  for (int64_t k = 0; k < 100; k += 2) {
    ASSERT_TRUE(tree_->Insert(k, Value64(k).data()).ok());
  }
  std::vector<int64_t> seen;
  ASSERT_TRUE(tree_->ScanRange(10, 20, [&](int64_t k, const uint8_t*) {
    seen.push_back(k);
    return true;
  }).ok());
  EXPECT_EQ(seen, (std::vector<int64_t>{10, 12, 14, 16, 18, 20}));
}

TEST_F(BPlusTreeTest, ScanRangeEarlyStop) {
  Make();
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree_->Insert(k, Value64(k).data()).ok());
  }
  int count = 0;
  ASSERT_TRUE(tree_->ScanRange(0, 99, [&](int64_t, const uint8_t*) {
    return ++count < 5;
  }).ok());
  EXPECT_EQ(count, 5);
}

TEST_F(BPlusTreeTest, ScanEmptyRange) {
  Make();
  ASSERT_TRUE(tree_->Insert(10, Value64(1).data()).ok());
  int count = 0;
  ASSERT_TRUE(tree_->ScanRange(20, 30, [&](int64_t, const uint8_t*) {
    ++count;
    return true;
  }).ok());
  EXPECT_EQ(count, 0);
  // Inverted range is a no-op, not an error.
  ASSERT_TRUE(tree_->ScanRange(30, 20, [&](int64_t, const uint8_t*) {
    ++count;
    return true;
  }).ok());
  EXPECT_EQ(count, 0);
}

TEST_F(BPlusTreeTest, CountRange) {
  Make();
  for (int64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree_->Insert(k * 10, Value64(k).data()).ok());
  }
  EXPECT_EQ(*tree_->CountRange(0, 9989), 999u);
  EXPECT_EQ(*tree_->CountRange(0, 9990), 1000u);
  EXPECT_EQ(*tree_->CountRange(5, 14), 1u);
  EXPECT_EQ(*tree_->CountRange(10001, 20000), 0u);
}

TEST_F(BPlusTreeTest, DeleteRange) {
  Make();
  for (int64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree_->Insert(k, Value64(k).data()).ok());
  }
  auto n = tree_->DeleteRange(500, 1499);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1000u);
  EXPECT_EQ(tree_->size(), 1000u);
  EXPECT_TRUE(tree_->Find(500).status().IsNotFound());
  EXPECT_TRUE(tree_->Find(1499).status().IsNotFound());
  EXPECT_TRUE(tree_->Find(499).ok());
  EXPECT_TRUE(tree_->Find(1500).ok());
  ASSERT_TRUE(tree_->CheckInvariants().ok());
}

TEST_F(BPlusTreeTest, DeleteAllShrinksTree) {
  Make();
  const int64_t n = 4000;
  for (int64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(tree_->Insert(k, Value64(k).data()).ok());
  }
  EXPECT_GE(*tree_->Height(), 2u);
  for (int64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(tree_->Delete(k).ok()) << k;
  }
  EXPECT_TRUE(tree_->empty());
  EXPECT_EQ(*tree_->Height(), 1u);
  ASSERT_TRUE(tree_->CheckInvariants().ok());
  // Freed pages must be reusable: reinsert everything.
  uint32_t pages_after_delete = disk_->num_pages();
  for (int64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(tree_->Insert(k, Value64(k).data()).ok());
  }
  ASSERT_TRUE(tree_->CheckInvariants().ok());
  EXPECT_LE(disk_->num_pages(), pages_after_delete + 2);
}

TEST_F(BPlusTreeTest, NegativeAndExtremeKeys) {
  Make();
  std::vector<int64_t> keys = {INT64_MIN, -1000, -1, 0, 1, 1000,
                               INT64_MAX};
  for (int64_t k : keys) {
    ASSERT_TRUE(tree_->Insert(k, Value64(k ^ 0x55).data()).ok());
  }
  for (int64_t k : keys) {
    auto v = tree_->Find(k);
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(AsI64(*v), k ^ 0x55);
  }
  EXPECT_EQ(*tree_->MinKey(), INT64_MIN);
  EXPECT_EQ(*tree_->MaxKey(), INT64_MAX);
  std::vector<int64_t> scanned;
  ASSERT_TRUE(tree_->ScanRange(INT64_MIN, INT64_MAX,
                               [&](int64_t k, const uint8_t*) {
                                 scanned.push_back(k);
                                 return true;
                               })
                  .ok());
  EXPECT_EQ(scanned, keys);
}

TEST_F(BPlusTreeTest, WiderValues) {
  Make(/*value_width=*/64);
  std::vector<uint8_t> value(64);
  for (int64_t k = 0; k < 1000; ++k) {
    for (size_t i = 0; i < 64; ++i) {
      value[i] = static_cast<uint8_t>((k + i) & 0xFF);
    }
    ASSERT_TRUE(tree_->Insert(k, value.data()).ok());
  }
  ASSERT_TRUE(tree_->CheckInvariants().ok());
  auto v = tree_->Find(123);
  ASSERT_TRUE(v.ok());
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ((*v)[i], static_cast<uint8_t>((123 + i) & 0xFF));
  }
}

TEST_F(BPlusTreeTest, ZeroWidthValues) {
  Make(/*value_width=*/0);
  for (int64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(tree_->Insert(k, nullptr).ok());
  }
  EXPECT_TRUE(tree_->Contains(250));
  EXPECT_FALSE(tree_->Contains(1000));
  ASSERT_TRUE(tree_->CheckInvariants().ok());
}

TEST_F(BPlusTreeTest, SmallBufferPoolStillCorrect) {
  // With only 8 frames, nearly every access evicts; correctness must not
  // depend on residency.
  Make(/*value_width=*/8, /*pool_pages=*/8);
  const int64_t n = 3000;
  for (int64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(tree_->Insert((k * 7919) % 100000, Value64(k).data()).ok());
  }
  ASSERT_TRUE(tree_->CheckInvariants().ok());
  EXPECT_GT(pool_->stats().evictions, 0u);
}

TEST_F(BPlusTreeTest, OpenExistingTree) {
  Make();
  for (int64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree_->Insert(k, Value64(k + 7).data()).ok());
  }
  ASSERT_TRUE(pool_->FlushAll().ok());
  // Reopen through a fresh buffer pool over the same disk.
  BufferPool pool2(disk_.get(), 16);
  auto reopened = BPlusTree::Open(&pool2);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 1000u);
  EXPECT_EQ(AsI64(*(*reopened)->Find(500)), 507);
  ASSERT_TRUE((*reopened)->CheckInvariants().ok());
}

TEST_F(BPlusTreeTest, CreateRequiresEmptyStore) {
  Make();
  auto second = BPlusTree::Create(pool_.get(), 8);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
}

// Randomized differential test against std::map across mixed operations.
class BPlusTreeFuzzTest : public BPlusTreeTest,
                          public ::testing::WithParamInterface<uint64_t> {};

TEST_P(BPlusTreeFuzzTest, MatchesReferenceModel) {
  Make(/*value_width=*/8, /*pool_pages=*/32);
  Rng rng(GetParam());
  std::map<int64_t, int64_t> model;
  const int kOps = 20000;
  for (int op = 0; op < kOps; ++op) {
    int64_t key = rng.NextInt(0, 3000);
    double dice = rng.NextDouble();
    if (dice < 0.55) {
      int64_t value = rng.NextInt(0, 1'000'000);
      Status s = tree_->Insert(key, Value64(value).data());
      if (model.count(key)) {
        EXPECT_TRUE(s.IsAlreadyExists());
      } else {
        EXPECT_TRUE(s.ok()) << s.ToString();
        model[key] = value;
      }
    } else if (dice < 0.85) {
      Status s = tree_->Delete(key);
      if (model.count(key)) {
        EXPECT_TRUE(s.ok()) << s.ToString();
        model.erase(key);
      } else {
        EXPECT_TRUE(s.IsNotFound());
      }
    } else if (dice < 0.95) {
      auto v = tree_->Find(key);
      if (model.count(key)) {
        ASSERT_TRUE(v.ok());
        EXPECT_EQ(AsI64(*v), model[key]);
      } else {
        EXPECT_TRUE(v.status().IsNotFound());
      }
    } else {
      int64_t lo = rng.NextInt(0, 3000);
      int64_t hi = lo + rng.NextInt(0, 200);
      std::vector<int64_t> got;
      ASSERT_TRUE(tree_->ScanRange(lo, hi, [&](int64_t k, const uint8_t*) {
        got.push_back(k);
        return true;
      }).ok());
      std::vector<int64_t> expect;
      for (auto it = model.lower_bound(lo);
           it != model.end() && it->first <= hi; ++it) {
        expect.push_back(it->first);
      }
      EXPECT_EQ(got, expect);
    }
  }
  EXPECT_EQ(tree_->size(), model.size());
  ASSERT_TRUE(tree_->CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeFuzzTest,
                         ::testing::Values(1, 2, 3, 42, 20240609));

// Range deletion property sweep: delete random ranges until empty and keep
// invariants at every step.
class BPlusTreeRangeDeleteTest
    : public BPlusTreeTest,
      public ::testing::WithParamInterface<uint64_t> {};

TEST_P(BPlusTreeRangeDeleteTest, RepeatedRangeDeletes) {
  Make();
  Rng rng(GetParam());
  std::map<int64_t, int64_t> model;
  for (int i = 0; i < 5000; ++i) {
    int64_t key = rng.NextInt(0, 100000);
    if (tree_->Insert(key, Value64(key).data()).ok()) model[key] = key;
  }
  while (!model.empty()) {
    int64_t lo = rng.NextInt(0, 100000);
    int64_t hi = lo + rng.NextInt(0, 20000);
    auto n = tree_->DeleteRange(lo, hi);
    ASSERT_TRUE(n.ok());
    uint64_t expect = 0;
    for (auto it = model.lower_bound(lo);
         it != model.end() && it->first <= hi;) {
      it = model.erase(it);
      ++expect;
    }
    EXPECT_EQ(*n, expect);
    ASSERT_TRUE(tree_->CheckInvariants().ok());
    // Guarantee termination.
    if (expect == 0 && !model.empty()) {
      int64_t k = model.begin()->first;
      ASSERT_TRUE(tree_->Delete(k).ok());
      model.erase(k);
    }
  }
  EXPECT_TRUE(tree_->empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeRangeDeleteTest,
                         ::testing::Values(7, 1234));

// -----------------------------------------------------------------------
// Legacy (v1, unchecksummed) format: read-only open, sniffing, migration
// -----------------------------------------------------------------------

/// Hand-writes a v1 tree image: meta at page 0 (magic, value_width, root,
/// free head, entry count — no version field, no page headers) and a
/// single leaf at page 1 holding `keys.size()` entries of value_width 8.
/// This is the byte layout pre-checksum builds produced.
void SynthesizeLegacyImage(InMemoryDiskManager* disk,
                           const std::vector<int64_t>& keys) {
  constexpr uint32_t kLegacyLeafCap = (kPageSize - 8) / 16;
  ASSERT_LE(keys.size(), kLegacyLeafCap);
  ASSERT_TRUE(disk->Allocate().ok());  // page 0
  ASSERT_TRUE(disk->Allocate().ok());  // page 1

  uint8_t meta[kPageSize] = {};
  const uint32_t magic = 0x50525042;  // "PRPB"
  const uint32_t vw = 8;
  const uint32_t root = 1;
  const uint32_t free_head = kInvalidPageId;
  const uint64_t num = keys.size();
  std::memcpy(meta + 0, &magic, 4);
  std::memcpy(meta + 4, &vw, 4);
  std::memcpy(meta + 8, &root, 4);
  std::memcpy(meta + 12, &free_head, 4);
  std::memcpy(meta + 16, &num, 8);
  ASSERT_TRUE(disk->Write(0, meta).ok());

  uint8_t leaf[kPageSize] = {};
  const uint16_t type_leaf = 1;
  const uint16_t count = static_cast<uint16_t>(keys.size());
  const uint32_t next = kInvalidPageId;
  std::memcpy(leaf + 0, &type_leaf, 2);
  std::memcpy(leaf + 2, &count, 2);
  std::memcpy(leaf + 4, &next, 4);
  for (size_t i = 0; i < keys.size(); ++i) {
    std::memcpy(leaf + 8 + i * 8, &keys[i], 8);
    int64_t value = keys[i] * 11;
    std::memcpy(leaf + 8 + kLegacyLeafCap * 8 + i * 8, &value, 8);
  }
  ASSERT_TRUE(disk->Write(1, leaf).ok());
}

TEST(LegacyFormatTest, LegacyTreeOpensReadOnly) {
  InMemoryDiskManager disk;
  SynthesizeLegacyImage(&disk, {3, 8, 21, 55, 144});

  BufferPool pool(&disk, 64, PageFormat::kLegacyV1);
  auto tree = BPlusTree::Open(&pool);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_TRUE((*tree)->read_only());
  EXPECT_EQ((*tree)->size(), 5u);
  EXPECT_EQ((*tree)->value_width(), 8u);

  auto v = (*tree)->Find(21);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(AsI64(*v), 21 * 11);
  EXPECT_TRUE((*tree)->Find(4).status().IsNotFound());
  ASSERT_TRUE((*tree)->CheckInvariants().ok());

  // Mutations are refused with a pointer at the migration path.
  Status s = (*tree)->Insert(99, Value64(1).data());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("MigrateLegacyTree"), std::string::npos);
  EXPECT_EQ((*tree)->Update(3, Value64(1).data()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*tree)->Delete(3).code(), StatusCode::kFailedPrecondition);
}

TEST(LegacyFormatTest, DetectTreeFormatSniffsBothGenerations) {
  {
    InMemoryDiskManager legacy;
    SynthesizeLegacyImage(&legacy, {1, 2, 3});
    auto fmt = DetectTreeFormat(&legacy);
    ASSERT_TRUE(fmt.ok()) << fmt.status().ToString();
    EXPECT_EQ(*fmt, PageFormat::kLegacyV1);
  }
  {
    InMemoryDiskManager modern;
    BufferPool pool(&modern, 64);
    auto tree = BPlusTree::Create(&pool, 8);
    ASSERT_TRUE(tree.ok());
    ASSERT_TRUE((*tree)->Insert(1, Value64(1).data()).ok());
    ASSERT_TRUE(pool.FlushAll().ok());
    auto fmt = DetectTreeFormat(&modern);
    ASSERT_TRUE(fmt.ok()) << fmt.status().ToString();
    EXPECT_EQ(*fmt, PageFormat::kChecksummedV2);
  }
  {
    InMemoryDiskManager empty;
    EXPECT_TRUE(DetectTreeFormat(&empty).status().IsNotFound());
  }
  {
    InMemoryDiskManager garbage;
    ASSERT_TRUE(garbage.Allocate().ok());
    uint8_t junk[kPageSize];
    for (size_t i = 0; i < kPageSize; ++i) junk[i] = uint8_t(i * 31 + 7);
    ASSERT_TRUE(garbage.Write(0, junk).ok());
    EXPECT_TRUE(DetectTreeFormat(&garbage).status().IsCorruption());
  }
}

TEST(LegacyFormatTest, MigrateLegacyTreeRoundTripsContents) {
  InMemoryDiskManager legacy;
  std::vector<int64_t> keys;
  for (int64_t k = 0; k < 200; ++k) keys.push_back(k * 5 + 1);
  SynthesizeLegacyImage(&legacy, keys);

  InMemoryDiskManager fresh;
  BufferPool dst_pool(&fresh, 64);
  auto migrated = MigrateLegacyTree(&legacy, &dst_pool);
  ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
  EXPECT_FALSE((*migrated)->read_only());
  EXPECT_EQ((*migrated)->size(), keys.size());
  for (int64_t k : keys) {
    auto v = (*migrated)->Find(k);
    ASSERT_TRUE(v.ok()) << "key " << k;
    EXPECT_EQ(AsI64(*v), k * 11);
  }
  ASSERT_TRUE((*migrated)->CheckInvariants().ok());

  // The migrated tree is fully writable and survives sealing.
  ASSERT_TRUE((*migrated)->Insert(INT64_MAX / 2, Value64(42).data()).ok());
  ASSERT_TRUE(dst_pool.FlushAll().ok());
  auto fmt = DetectTreeFormat(&fresh);
  ASSERT_TRUE(fmt.ok());
  EXPECT_EQ(*fmt, PageFormat::kChecksummedV2);
}

}  // namespace
}  // namespace prorp::storage
