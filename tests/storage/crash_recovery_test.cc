// Crash-injection property test: a DurableTree whose WAL is truncated at
// an arbitrary byte (simulating a crash mid-append) must recover to a
// prefix of the committed operation sequence — never to a corrupt or
// reordered state.

#include <cstring>
#include <filesystem>
#include <map>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/durable_tree.h"

namespace prorp::storage {
namespace {

namespace fs = std::filesystem;

std::vector<uint8_t> Value64(int64_t v) {
  std::vector<uint8_t> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

class CrashRecoveryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashRecoveryTest, TruncatedWalRecoversToAPrefix) {
  std::string dir = testing::TempDir() + "/crash_recovery_" +
                    std::to_string(GetParam());
  fs::remove_all(dir);
  fs::create_directories(dir);
  DurableTree::Options opts;
  opts.dir = dir;
  opts.value_width = 8;
  opts.checkpoint_wal_bytes = 0;  // keep everything in the WAL

  // Apply a random operation sequence, remembering the model state after
  // every operation (the legal recovery points).
  Rng rng(GetParam());
  std::vector<std::map<int64_t, int64_t>> states;
  {
    auto tree = DurableTree::Open(opts);
    ASSERT_TRUE(tree.ok());
    std::map<int64_t, int64_t> model;
    states.push_back(model);
    for (int op = 0; op < 200; ++op) {
      int64_t key = rng.NextInt(0, 100);
      double dice = rng.NextDouble();
      if (dice < 0.6) {
        int64_t value = rng.NextInt(0, 1'000'000);
        if ((*tree)->Insert(key, Value64(value).data()).ok()) {
          model[key] = value;
        }
      } else if (dice < 0.8) {
        if ((*tree)->Delete(key).ok()) model.erase(key);
      } else {
        int64_t hi = key + rng.NextInt(0, 30);
        auto n = (*tree)->DeleteRange(key, hi);
        ASSERT_TRUE(n.ok());
        model.erase(model.lower_bound(key), model.upper_bound(hi));
      }
      states.push_back(model);
    }
  }

  // Crash: truncate the WAL at a random byte offset.
  std::string wal = dir + "/wal.log";
  uint64_t size = fs::file_size(wal);
  ASSERT_GT(size, 0u);
  uint64_t cut = rng.NextBelow(size + 1);
  ASSERT_EQ(::truncate(wal.c_str(), static_cast<off_t>(cut)), 0);

  // Recover and check the result equals SOME prefix state.
  auto recovered = DurableTree::Open(opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  std::map<int64_t, int64_t> got;
  ASSERT_TRUE((*recovered)
                  ->ScanRange(INT64_MIN, INT64_MAX,
                              [&](int64_t k, const uint8_t* v) {
                                int64_t value;
                                std::memcpy(&value, v, 8);
                                got[k] = value;
                                return true;
                              })
                  .ok());
  bool matches_prefix = false;
  for (const auto& state : states) {
    if (state == got) {
      matches_prefix = true;
      break;
    }
  }
  EXPECT_TRUE(matches_prefix)
      << "recovered state (size " << got.size()
      << ") is not a prefix of the committed sequence (cut at byte " << cut
      << " of " << size << ")";
  ASSERT_TRUE((*recovered)->tree().CheckInvariants().ok());

  // The recovered tree must remain fully usable.
  ASSERT_TRUE((*recovered)->Insert(1'000'000, Value64(1).data()).ok());
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashRecoveryTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace prorp::storage
