#include <gtest/gtest.h>

#include "scaling/autoscaler.h"
#include "scaling/demand_history.h"

namespace prorp::scaling {
namespace {

constexpr EpochSeconds kT0 = Days(1005);  // a Monday 00:00 UTC

TEST(CapacityLadderTest, CeilLevel) {
  CapacityLadder ladder({0, 0.5, 1, 2, 4, 8});
  EXPECT_DOUBLE_EQ(ladder.CeilLevel(0), 0);
  EXPECT_DOUBLE_EQ(ladder.CeilLevel(0.2), 0.5);
  EXPECT_DOUBLE_EQ(ladder.CeilLevel(0.5), 0.5);
  EXPECT_DOUBLE_EQ(ladder.CeilLevel(1.1), 2);
  EXPECT_DOUBLE_EQ(ladder.CeilLevel(8), 8);
  // Demand above the SKU maximum is clamped (the excess throttles).
  EXPECT_DOUBLE_EQ(ladder.CeilLevel(11), 8);
}

TEST(CapacityLadderTest, NormalizesLevels) {
  CapacityLadder ladder({4, 1, 2});  // missing 0, unsorted
  EXPECT_DOUBLE_EQ(ladder.levels().front(), 0);
  EXPECT_DOUBLE_EQ(ladder.max_level(), 4);
  EXPECT_DOUBLE_EQ(ladder.CeilLevel(1.5), 2);
}

TEST(DemandHistoryTest, RecordAndPeak) {
  DemandHistory history(Minutes(30), 7);
  EXPECT_EQ(history.slots_per_day(), 48);
  ASSERT_TRUE(history.Record(kT0 + Hours(9), 2.0).ok());
  ASSERT_TRUE(history.Record(kT0 + Hours(9) + Minutes(10), 3.5).ok());
  EXPECT_DOUBLE_EQ(history.PeakAt(kT0 + Hours(9) + Minutes(20)), 3.5);
  EXPECT_DOUBLE_EQ(history.PeakAt(kT0 + Hours(10)), 0);
}

TEST(DemandHistoryTest, RejectsBadSamples) {
  DemandHistory history;
  EXPECT_TRUE(history.Record(kT0, -1).IsInvalidArgument());
}

TEST(DemandHistoryTest, SlotPeaksLookBack) {
  DemandHistory history(Minutes(30), 7);
  // Same slot (9:00-9:30) on 5 previous days with rising demand.
  for (int d = 1; d <= 5; ++d) {
    ASSERT_TRUE(
        history.Record(kT0 - Days(d) + Hours(9), static_cast<double>(d))
            .ok());
  }
  auto peaks = history.SlotPeaksBefore(kT0 + Hours(9) + Minutes(5));
  // Only the 5 observed days count; earlier days are unknown, not idle.
  ASSERT_EQ(peaks.size(), 5u);
  EXPECT_DOUBLE_EQ(peaks[0], 1);  // yesterday
  EXPECT_DOUBLE_EQ(peaks[4], 5);  // five days ago
}

TEST(DemandHistoryTest, QuantileOfSlotPeaks) {
  DemandHistory history(Minutes(30), 4);
  for (int d = 1; d <= 4; ++d) {
    ASSERT_TRUE(
        history.Record(kT0 - Days(d) + Hours(9), static_cast<double>(d))
            .ok());
  }
  EXPECT_DOUBLE_EQ(history.SlotQuantileBefore(kT0 + Hours(9), 1.0), 4);
  EXPECT_DOUBLE_EQ(history.SlotQuantileBefore(kT0 + Hours(9), 0.0), 1);
  EXPECT_DOUBLE_EQ(history.SlotQuantileBefore(kT0 + Hours(9), 0.5), 2.5);
  // A slot with no history predicts 0.
  EXPECT_DOUBLE_EQ(history.SlotQuantileBefore(kT0 + Hours(15), 0.9), 0);
}

TEST(DemandHistoryTest, RingRollsOverOldDays) {
  DemandHistory history(Hours(1), 3);
  ASSERT_TRUE(history.Record(kT0 + Hours(9), 5.0).ok());
  // Advance 3 days: the old sample must have rolled out of the window.
  ASSERT_TRUE(history.Record(kT0 + Days(3) + Hours(9), 1.0).ok());
  auto peaks = history.SlotPeaksBefore(kT0 + Days(4) + Hours(9));
  // Look-back covers days 3,2,1 before day 4: only day 3 has data (1.0);
  // days 1-2 were observed implicitly by the ring roll (idle), and the
  // day-0 sample (5.0) is outside the 3-day window.
  ASSERT_EQ(peaks.size(), 3u);
  EXPECT_DOUBLE_EQ(peaks[0], 1.0);
  EXPECT_DOUBLE_EQ(peaks[1], 0.0);
  EXPECT_DOUBLE_EQ(peaks[2], 0.0);
  // Stale writes into rolled-over days are ignored, not resurrected.
  ASSERT_TRUE(history.Record(kT0 + Hours(9), 9.0).ok());
  EXPECT_DOUBLE_EQ(history.PeakAt(kT0 + Hours(9)), 0.0);
}

TEST(DemandHistoryTest, FootprintStaysSmall) {
  DemandHistory history;  // 28 days x 48 slots x 8 bytes
  EXPECT_EQ(history.SizeBytes(), 28u * 48u * 8u);
  EXPECT_LT(history.SizeBytes(), 16u * 1024u);
}

class ScalerReplayTest : public ::testing::Test {
 protected:
  static DemandTrace StepTrace() {
    // Three identical weekdays: ramp to 4 vCores 9:00-17:00.
    DemandTrace trace;
    for (int d = 0; d < 3; ++d) {
      EpochSeconds day = kT0 + Days(d);
      trace.push_back({day + Hours(9), day + Hours(11), 1});
      trace.push_back({day + Hours(11), day + Hours(15), 4});
      trace.push_back({day + Hours(15), day + Hours(17), 1});
    }
    return trace;
  }

  CapacityLadder ladder_{{0, 0.5, 1, 2, 4, 8}};
  ScalingSimOptions options_;
};

TEST_F(ScalerReplayTest, FixedNeverThrottlesButOverprovisions) {
  FixedScaler fixed(ladder_);
  auto report = ReplayDemandTrace(StepTrace(), fixed, kT0, kT0 + Days(3),
                                  options_);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->ThrottledPct(), 0);
  EXPECT_GT(report->OverprovisionedPct(), 80);  // 8 vCores around the clock
}

TEST_F(ScalerReplayTest, ReactiveThrottlesDuringRamps) {
  ReactiveScaler reactive(ladder_);
  auto report = ReplayDemandTrace(StepTrace(), reactive, kT0,
                                  kT0 + Days(3), options_);
  ASSERT_TRUE(report.ok());
  // Every upward step pays the reaction delay in throttled time.
  EXPECT_GT(report->throttled_seconds, 0);
  EXPECT_GT(report->scale_ups, 0u);
  EXPECT_GT(report->scale_downs, 0u);
  // But far less over-provisioning than fixed capacity.
  EXPECT_LT(report->OverprovisionedPct(), 50);
}

TEST_F(ScalerReplayTest, ProactiveBeatsReactiveOnRecurringPattern) {
  ReactiveScaler reactive(ladder_);
  ProactiveScaler proactive(ladder_, Minutes(30), 0.8);
  auto r = ReplayDemandTrace(StepTrace(), reactive, kT0, kT0 + Days(3),
                             options_);
  auto p = ReplayDemandTrace(StepTrace(), proactive, kT0, kT0 + Days(3),
                             options_);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(p.ok());
  // Day 1 is identical (no history); days 2-3 the proactive scaler has
  // learned the slot peaks and pre-scales ahead of the ramps.
  EXPECT_LT(p->throttled_vcore_seconds, r->throttled_vcore_seconds);
  // Pre-scaling costs some extra capacity but stays well below fixed.
  EXPECT_LT(p->OverprovisionedPct(), 60);
}

TEST_F(ScalerReplayTest, ReplayValidation) {
  FixedScaler fixed(ladder_);
  ScalingSimOptions bad;
  bad.tick = 0;
  EXPECT_FALSE(ReplayDemandTrace({}, fixed, kT0, kT0 + 10, bad).ok());
  EXPECT_FALSE(ReplayDemandTrace({}, fixed, kT0, kT0, options_).ok());
}

TEST(DemandTraceGeneratorTest, ShapeAndDeterminism) {
  Rng a(5), b(5);
  auto t1 = GenerateDailyDemandTrace(kT0, kT0 + Days(7), 4.0, a);
  auto t2 = GenerateDailyDemandTrace(kT0, kT0 + Days(7), 4.0, b);
  ASSERT_FALSE(t1.empty());
  ASSERT_EQ(t1.size(), t2.size());
  for (size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].start, t2[i].start);
    EXPECT_DOUBLE_EQ(t1[i].vcores, t2[i].vcores);
  }
  double max_v = 0;
  for (const auto& s : t1) {
    EXPECT_LT(s.start, s.end);
    EXPECT_GT(s.vcores, 0);
    max_v = std::max(max_v, s.vcores);
  }
  // Spikes can exceed the nominal peak.
  EXPECT_GT(max_v, 3.0);
}

}  // namespace
}  // namespace prorp::scaling
