#include "policy/lifecycle_controller.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "forecast/baseline_predictors.h"
#include "forecast/fast_predictor.h"
#include "history/mem_history_store.h"

namespace prorp::policy {
namespace {

using forecast::ActivityPrediction;
using forecast::FailingPredictor;
using forecast::FastPredictor;
using forecast::FixedDelayPredictor;
using forecast::NeverPredictor;
using history::MemHistoryStore;

constexpr EpochSeconds kT0 = Days(1000);

/// Test harness: drives a controller through scripted events, servicing
/// requested timers in order, and records transitions.
class ControllerHarness {
 public:
  ControllerHarness(PolicyMode mode, const forecast::Predictor* predictor,
                    EpochSeconds created_at = kT0,
                    PolicyConfig config = PolicyConfig{})
      : controller_(config, mode, &history_, predictor, created_at,
                    [this](const TransitionEvent& e) {
                      transitions_.push_back(e);
                    }) {}

  /// Advances virtual time to `t`, firing due controller timers in order.
  void AdvanceTo(EpochSeconds t) {
    for (;;) {
      EpochSeconds timer = controller_.NextTimerAt();
      if (timer == 0 || timer > t) break;
      ASSERT_TRUE(controller_.OnTimerCheck(timer).ok());
      ASSERT_GT(controller_.NextTimerAt() == 0
                    ? t + 1
                    : controller_.NextTimerAt(),
                timer)
          << "timer must move forward";
    }
    now_ = t;
  }

  LoginOutcome Login(EpochSeconds t) {
    AdvanceTo(t);
    auto r = controller_.OnActivityStart(t);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : LoginOutcome::kAlreadyActive;
  }

  void Logout(EpochSeconds t) {
    AdvanceTo(t);
    auto s = controller_.OnActivityEnd(t);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  MemHistoryStore history_;
  LifecycleController controller_;
  std::vector<TransitionEvent> transitions_;
  EpochSeconds now_ = kT0;
};

PolicyConfig DefaultConfig() { return PolicyConfig{}; }

TEST(ReactivePolicyTest, IdleGoesLogicalThenPhysicalAfterL) {
  ControllerHarness h(PolicyMode::kReactive, nullptr);
  EXPECT_EQ(h.controller_.state(), DbState::kResumed);
  h.Logout(kT0 + Hours(1));
  EXPECT_EQ(h.controller_.state(), DbState::kLogicallyPaused);
  // Still logically paused just before l = 7h elapses.
  h.AdvanceTo(kT0 + Hours(1) + Hours(7) - 1);
  EXPECT_EQ(h.controller_.state(), DbState::kLogicallyPaused);
  // Physically paused once the logical pause expires.
  h.AdvanceTo(kT0 + Hours(1) + Hours(7) + 1);
  EXPECT_EQ(h.controller_.state(), DbState::kPhysicallyPaused);
  ASSERT_EQ(h.transitions_.size(), 2u);
  EXPECT_EQ(h.transitions_[0].cause, TransitionCause::kActivityEndLogical);
  EXPECT_EQ(h.transitions_[1].cause, TransitionCause::kLogicalPauseExpired);
}

TEST(ReactivePolicyTest, LoginDuringLogicalPauseIsAvailable) {
  ControllerHarness h(PolicyMode::kReactive, nullptr);
  h.Logout(kT0 + Hours(1));
  EXPECT_EQ(h.Login(kT0 + Hours(2)), LoginOutcome::kResourcesAvailable);
  EXPECT_EQ(h.controller_.state(), DbState::kResumed);
  EXPECT_EQ(h.controller_.stats().logins_available, 1u);
  EXPECT_EQ(h.controller_.stats().logins_reactive, 0u);
}

TEST(ReactivePolicyTest, LoginAfterPhysicalPauseIsReactiveResume) {
  ControllerHarness h(PolicyMode::kReactive, nullptr);
  h.Logout(kT0 + Hours(1));
  EXPECT_EQ(h.Login(kT0 + Hours(20)), LoginOutcome::kReactiveResume);
  EXPECT_EQ(h.controller_.state(), DbState::kResumed);
  EXPECT_EQ(h.controller_.stats().logins_reactive, 1u);
}

TEST(ReactivePolicyTest, ActivityIsTrackedInHistory) {
  ControllerHarness h(PolicyMode::kReactive, nullptr);
  h.Logout(kT0 + Hours(1));
  h.Login(kT0 + Hours(2));
  h.Logout(kT0 + Hours(3));
  auto all = h.history_.ReadAll();
  ASSERT_TRUE(all.ok());
  // created_at login + 2 logouts + 1 login.
  ASSERT_EQ(all->size(), 4u);
  EXPECT_EQ((*all)[0].event_type, history::kEventLogin);
  EXPECT_EQ((*all)[1].event_type, history::kEventLogout);
}

TEST(AlwaysOnPolicyTest, NeverPauses) {
  ControllerHarness h(PolicyMode::kAlwaysOn, nullptr);
  h.Logout(kT0 + Hours(1));
  EXPECT_EQ(h.controller_.state(), DbState::kResumed);
  h.AdvanceTo(kT0 + Days(5));
  EXPECT_EQ(h.controller_.state(), DbState::kResumed);
  EXPECT_EQ(h.Login(kT0 + Days(5)), LoginOutcome::kResourcesAvailable);
  EXPECT_TRUE(h.transitions_.empty());
}

TEST(ProactivePolicyTest, NewDatabaseDefaultsToReactiveBehaviour) {
  // A database younger than h cannot be predicted: logical pause for l,
  // then physical pause (Algorithm 1 lines 19, 26 with !old).
  FastPredictor predictor(DefaultConfig().prediction);
  ControllerHarness h(PolicyMode::kProactive, &predictor);
  h.Logout(kT0 + Hours(1));
  EXPECT_EQ(h.controller_.state(), DbState::kLogicallyPaused);
  EXPECT_FALSE(h.controller_.is_old());
  h.AdvanceTo(kT0 + Hours(9));
  EXPECT_EQ(h.controller_.state(), DbState::kPhysicallyPaused);
}

TEST(ProactivePolicyTest, NoPredictedActivitySkipsLogicalPause) {
  // Old database with no predicted activity: Algorithm 1 line 10's
  // (old & nextActivity.start = 0) goes straight to physical pause.
  MemHistoryStore seeded;
  NeverPredictor never;
  PolicyConfig cfg = DefaultConfig();
  LifecycleController controller(cfg, PolicyMode::kProactive, &seeded,
                                 &never, kT0 - Days(40));
  // Make the database old: a login 40 days ago plus the creation login.
  ASSERT_TRUE(controller.OnActivityEnd(kT0 - Days(40) + Hours(1)).ok());
  ASSERT_TRUE(controller.OnActivityStart(kT0).ok());
  ASSERT_TRUE(controller.OnActivityEnd(kT0 + Hours(1)).ok());
  EXPECT_TRUE(controller.is_old());
  EXPECT_EQ(controller.state(), DbState::kPhysicallyPaused);
  EXPECT_EQ(controller.stats().physical_pauses >= 1, true);
}

TEST(ProactivePolicyTest, ImminentPredictionKeepsLogicalPause) {
  // Old database with activity predicted within l: logical pause.
  MemHistoryStore seeded;
  FixedDelayPredictor soon(Hours(2), Hours(1));
  LifecycleController controller(DefaultConfig(), PolicyMode::kProactive,
                                 &seeded, &soon, kT0 - Days(40));
  ASSERT_TRUE(controller.OnActivityEnd(kT0 - Days(40) + Hours(1)).ok());
  ASSERT_TRUE(controller.OnActivityStart(kT0).ok());
  ASSERT_TRUE(controller.OnActivityEnd(kT0 + Hours(1)).ok());
  EXPECT_EQ(controller.state(), DbState::kLogicallyPaused);
}

TEST(ProactivePolicyTest, DistantPredictionPausesImmediately) {
  // Activity predicted beyond l: reclaim immediately (line 10).
  MemHistoryStore seeded;
  FixedDelayPredictor distant(Hours(12), Hours(1));
  LifecycleController controller(DefaultConfig(), PolicyMode::kProactive,
                                 &seeded, &distant, kT0 - Days(40));
  ASSERT_TRUE(controller.OnActivityEnd(kT0 - Days(40) + Hours(1)).ok());
  ASSERT_TRUE(controller.OnActivityStart(kT0).ok());
  ASSERT_TRUE(controller.OnActivityEnd(kT0 + Hours(1)).ok());
  EXPECT_EQ(controller.state(), DbState::kPhysicallyPaused);
  // The prediction rides along for the metadata store (line 31).
  EXPECT_EQ(controller.next_activity().start, kT0 + Hours(1) + Hours(12));
}

TEST(ProactivePolicyTest, ProactiveResumeAwaitsPredictedLogin) {
  MemHistoryStore seeded;
  FixedDelayPredictor distant(Hours(12), Hours(2));
  LifecycleController controller(DefaultConfig(), PolicyMode::kProactive,
                                 &seeded, &distant, kT0 - Days(40));
  ASSERT_TRUE(controller.OnActivityEnd(kT0 - Days(40) + Hours(1)).ok());
  ASSERT_TRUE(controller.OnActivityStart(kT0).ok());
  ASSERT_TRUE(controller.OnActivityEnd(kT0 + Hours(1)).ok());
  ASSERT_EQ(controller.state(), DbState::kPhysicallyPaused);
  // Control plane pre-warms 5 minutes ahead of the predicted start.
  EpochSeconds prewarm = controller.next_activity().start - Minutes(5);
  ASSERT_TRUE(controller.OnProactiveResume(prewarm).ok());
  EXPECT_EQ(controller.state(), DbState::kLogicallyPaused);
  EXPECT_EQ(controller.stats().proactive_resumes, 1u);
  // Customer shows up: resources are available, no reactive resume.
  auto outcome = controller.OnActivityStart(prewarm + Minutes(5));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, LoginOutcome::kResourcesAvailable);
}

TEST(ProactivePolicyTest, ProactiveResumeRequiresPhysicalPause) {
  ControllerHarness h(PolicyMode::kReactive, nullptr);
  EXPECT_FALSE(h.controller_.OnProactiveResume(kT0 + 1).ok());
}

TEST(ProactivePolicyTest, PredictorFailureDefaultsToReactive) {
  FailingPredictor failing;
  ControllerHarness h(PolicyMode::kProactive, &failing);
  h.Logout(kT0 + Hours(1));
  // Despite proactive mode, the failure forces reactive behaviour:
  // logical pause now, physical pause after l.
  EXPECT_EQ(h.controller_.state(), DbState::kLogicallyPaused);
  EXPECT_GE(h.controller_.stats().reactive_fallbacks, 1u);
  h.AdvanceTo(kT0 + Hours(1) + Hours(8));
  EXPECT_EQ(h.controller_.state(), DbState::kPhysicallyPaused);
  EXPECT_FALSE(h.transitions_.back().used_prediction);
}

TEST(ProactivePolicyTest, ForcedEvictionReclaimsLogicalPause) {
  ControllerHarness h(PolicyMode::kReactive, nullptr);
  h.Logout(kT0 + Hours(1));
  ASSERT_EQ(h.controller_.state(), DbState::kLogicallyPaused);
  ASSERT_TRUE(h.controller_.OnForcedEviction(kT0 + Hours(2)).ok());
  EXPECT_EQ(h.controller_.state(), DbState::kPhysicallyPaused);
  EXPECT_EQ(h.transitions_.back().cause, TransitionCause::kForcedEviction);
  // A later login is a reactive resume: this is how capacity pressure
  // erodes the reactive policy's QoS.
  EXPECT_EQ(h.Login(kT0 + Hours(3)), LoginOutcome::kReactiveResume);
}

TEST(ProactivePolicyTest, ForcedEvictionInvalidWhenNotLogicallyPaused) {
  ControllerHarness h(PolicyMode::kReactive, nullptr);
  EXPECT_FALSE(h.controller_.OnForcedEviction(kT0 + 1).ok());
}

TEST(ProactivePolicyTest, EndToEndDailyPatternProactiveCycle) {
  // A database with a strict 9:00-17:00 daily pattern for 35 days, then
  // one more simulated day driven through the controller with a real
  // predictor: it must physically pause overnight and, once proactively
  // resumed, serve the 9:00 login with resources available.
  MemHistoryStore store;
  PolicyConfig cfg = DefaultConfig();
  FastPredictor predictor(cfg.prediction);
  EpochSeconds start = kT0 - Days(35) + Hours(9);
  LifecycleController controller(
      cfg, PolicyMode::kProactive, &store, &predictor, start);
  // Build up the daily history through the controller itself.
  EpochSeconds day = StartOfDay(start);
  ASSERT_TRUE(controller.OnActivityEnd(day + Hours(17)).ok());
  for (int d = 1; d < 35; ++d) {
    EpochSeconds t_login = day + Days(d) + Hours(9);
    EpochSeconds t_logout = day + Days(d) + Hours(17);
    // Fire any due timers first.
    while (controller.NextTimerAt() != 0 &&
           controller.NextTimerAt() <= t_login) {
      ASSERT_TRUE(controller.OnTimerCheck(controller.NextTimerAt()).ok());
    }
    ASSERT_TRUE(controller.OnActivityStart(t_login).ok());
    ASSERT_TRUE(controller.OnActivityEnd(t_logout).ok());
  }
  // After the 17:00 logout on the last day, no activity for 16 hours >
  // l=7h: the proactive policy should physically pause immediately.
  EXPECT_EQ(controller.state(), DbState::kPhysicallyPaused)
      << "prediction: " << controller.next_activity().ToString();
  EXPECT_TRUE(controller.is_old());
  // The stored prediction points at tomorrow ~9:00.
  EpochSeconds next9 = day + Days(35) + Hours(9);
  EXPECT_NEAR(static_cast<double>(controller.next_activity().start),
              static_cast<double>(next9), Hours(1));
  // Control plane pre-warms; the 9:00 login finds resources available.
  ASSERT_TRUE(
      controller.OnProactiveResume(controller.next_activity().start -
                                   Minutes(5))
          .ok());
  auto outcome = controller.OnActivityStart(next9);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, LoginOutcome::kResourcesAvailable);
}

TEST(ProactivePolicyTest, Line7SkipsRepredictionDuringPredictedActivity) {
  MemHistoryStore seeded;
  FixedDelayPredictor pred(Hours(1), Hours(6));
  LifecycleController controller(DefaultConfig(), PolicyMode::kProactive,
                                 &seeded, &pred, kT0 - Days(40));
  ASSERT_TRUE(controller.OnActivityEnd(kT0 - Days(40) + Hours(1)).ok());
  ASSERT_TRUE(controller.OnActivityStart(kT0).ok());
  ASSERT_TRUE(controller.OnActivityEnd(kT0 + Hours(1)).ok());
  uint64_t preds = controller.stats().predictions_made;
  // A short activity burst inside the predicted window: line 7 must skip
  // re-prediction because nextActivity.end is still in the future.
  ASSERT_TRUE(controller.OnActivityStart(kT0 + Hours(2)).ok());
  ASSERT_TRUE(controller.OnActivityEnd(kT0 + Hours(2) + Minutes(10)).ok());
  EXPECT_EQ(controller.stats().predictions_made, preds);
}

TEST(ProactivePolicyTest, DoubleLoginIsIdempotent) {
  ControllerHarness h(PolicyMode::kReactive, nullptr);
  EXPECT_EQ(h.Login(kT0 + 10), LoginOutcome::kAlreadyActive);
  EXPECT_EQ(h.controller_.state(), DbState::kResumed);
}

TEST(ProactivePolicyTest, ActivityEndWithoutActivityFails) {
  ControllerHarness h(PolicyMode::kReactive, nullptr);
  h.Logout(kT0 + Hours(1));
  EXPECT_FALSE(h.controller_.OnActivityEnd(kT0 + Hours(2)).ok());
}


TEST(PrewarmRestoreTest, EvictedPrewarmIsRescheduled) {
  // A pre-warm established by the control plane that gets evicted while
  // the predicted window is still ahead re-enters the metadata store with
  // a future start (the restore mechanism; see config.h).
  MemHistoryStore seeded;
  FixedDelayPredictor distant(Hours(12), Hours(14));  // long window
  PolicyConfig cfg = DefaultConfig();
  cfg.eviction_restore_delay = Minutes(10);
  LifecycleController controller(cfg, PolicyMode::kProactive, &seeded,
                                 &distant, kT0 - Days(40));
  ASSERT_TRUE(controller.OnActivityEnd(kT0 - Days(40) + Hours(1)).ok());
  ASSERT_TRUE(controller.OnActivityStart(kT0).ok());
  ASSERT_TRUE(controller.OnActivityEnd(kT0 + Hours(1)).ok());
  ASSERT_EQ(controller.state(), DbState::kPhysicallyPaused);
  EpochSeconds predicted = controller.next_activity().start;
  ASSERT_TRUE(controller.OnProactiveResume(predicted - Minutes(5)).ok());
  // Capacity pressure reclaims the pre-warm mid-window.
  EpochSeconds evict_at = predicted + Hours(1);
  ASSERT_TRUE(controller.OnForcedEviction(evict_at).ok());
  EXPECT_EQ(controller.state(), DbState::kPhysicallyPaused);
  // Restored: the stored prediction start moved at least restore_delay
  // into the future so Algorithm 5 can act on it again.
  EXPECT_GE(controller.next_activity().start, evict_at + Minutes(10));
  EXPECT_GE(controller.next_activity().end, controller.next_activity().start);
  // The control plane re-establishes the pre-warm and the login lands.
  ASSERT_TRUE(
      controller.OnProactiveResume(controller.next_activity().start).ok());
  auto outcome =
      controller.OnActivityStart(controller.next_activity().start + 60);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, LoginOutcome::kResourcesAvailable);
}

TEST(PrewarmRestoreTest, CooldownLimitsRestoreChurn) {
  MemHistoryStore seeded;
  FixedDelayPredictor distant(Hours(12), Hours(14));
  PolicyConfig cfg = DefaultConfig();
  cfg.eviction_restore_delay = Minutes(10);
  LifecycleController controller(cfg, PolicyMode::kProactive, &seeded,
                                 &distant, kT0 - Days(40));
  ASSERT_TRUE(controller.OnActivityEnd(kT0 - Days(40) + Hours(1)).ok());
  ASSERT_TRUE(controller.OnActivityStart(kT0).ok());
  ASSERT_TRUE(controller.OnActivityEnd(kT0 + Hours(1)).ok());
  EpochSeconds predicted = controller.next_activity().start;
  ASSERT_TRUE(controller.OnProactiveResume(predicted - Minutes(5)).ok());
  ASSERT_TRUE(controller.OnForcedEviction(predicted + Hours(1)).ok());
  EpochSeconds restored = controller.next_activity().start;
  ASSERT_GE(restored, predicted + Hours(1) + Minutes(10));
  // A second eviction within the cooldown window: the restore is denied
  // and the prediction stays put (the pressure wins for a while).
  ASSERT_TRUE(controller.OnProactiveResume(restored).ok());
  ASSERT_TRUE(controller.OnForcedEviction(restored + Minutes(5)).ok());
  EXPECT_EQ(controller.next_activity().start, restored);
  // After the cooldown elapses, restores are granted again.
  ASSERT_TRUE(controller.OnProactiveResume(restored + Minutes(6)).ok());
  EpochSeconds late_evict = restored + Minutes(40);
  ASSERT_TRUE(controller.OnForcedEviction(late_evict).ok());
  EXPECT_GE(controller.next_activity().start, late_evict + Minutes(10));
}

TEST(PrewarmRestoreTest, OrdinaryCoveredPauseIsRestoredToo) {
  // An ordinary (activity-end) logical pause that was protecting a still-
  // ahead predicted window is also restored: the policy knows activity is
  // imminent, which is exactly the edge it has over the reactive policy
  // under capacity pressure.
  MemHistoryStore seeded;
  FixedDelayPredictor soon(Hours(2), Hours(10));
  PolicyConfig cfg = DefaultConfig();
  cfg.eviction_restore_delay = Minutes(10);
  LifecycleController controller(cfg, PolicyMode::kProactive, &seeded,
                                 &soon, kT0 - Days(40));
  ASSERT_TRUE(controller.OnActivityEnd(kT0 - Days(40) + Hours(1)).ok());
  ASSERT_TRUE(controller.OnActivityStart(kT0).ok());
  ASSERT_TRUE(controller.OnActivityEnd(kT0 + Hours(1)).ok());
  ASSERT_EQ(controller.state(), DbState::kLogicallyPaused);  // start in 2h
  EpochSeconds evict_at = kT0 + Hours(2);
  ASSERT_TRUE(controller.OnForcedEviction(evict_at).ok());
  // Prediction start pushed to at least evict + restore delay, so the
  // control plane re-establishes coverage.
  EXPECT_GE(controller.next_activity().start, evict_at + Minutes(10));
}

TEST(PrewarmRestoreTest, DisabledByZeroDelay) {
  MemHistoryStore seeded;
  FixedDelayPredictor distant(Hours(12), Hours(14));
  PolicyConfig cfg = DefaultConfig();
  cfg.eviction_restore_delay = 0;
  LifecycleController controller(cfg, PolicyMode::kProactive, &seeded,
                                 &distant, kT0 - Days(40));
  ASSERT_TRUE(controller.OnActivityEnd(kT0 - Days(40) + Hours(1)).ok());
  ASSERT_TRUE(controller.OnActivityStart(kT0).ok());
  ASSERT_TRUE(controller.OnActivityEnd(kT0 + Hours(1)).ok());
  EpochSeconds predicted = controller.next_activity().start;
  ASSERT_TRUE(controller.OnProactiveResume(predicted - Minutes(5)).ok());
  ASSERT_TRUE(controller.OnForcedEviction(predicted + Hours(1)).ok());
  EXPECT_EQ(controller.next_activity().start, predicted);  // unchanged
}

/// History store whose writes can be scripted to fail, for the
/// graceful-degradation tests.  Reads keep working (the store process is
/// up; only the write path is broken — the common partial-outage shape).
class FlakyHistoryStore : public history::HistoryStore {
 public:
  Status InsertHistory(EpochSeconds time, int event_type) override {
    if (fail_writes) return Status::Unavailable("history store down");
    return inner.InsertHistory(time, event_type);
  }
  Result<bool> DeleteOldHistory(DurationSeconds h,
                                EpochSeconds now) override {
    if (fail_writes) return Status::Unavailable("history store down");
    return inner.DeleteOldHistory(h, now);
  }
  Result<history::LoginRangeAgg> LoginMinMax(
      EpochSeconds lo, EpochSeconds hi) const override {
    return inner.LoginMinMax(lo, hi);
  }
  Result<std::vector<EpochSeconds>> CollectLogins(
      EpochSeconds lo, EpochSeconds hi) const override {
    return inner.CollectLogins(lo, hi);
  }
  Result<std::vector<history::HistoryTuple>> ReadAll() const override {
    return inner.ReadAll();
  }
  Result<EpochSeconds> MinTimestamp() const override {
    return inner.MinTimestamp();
  }
  uint64_t NumTuples() const override { return inner.NumTuples(); }

  MemHistoryStore inner;
  bool fail_writes = false;
};

TEST(DegradedModeTest, HistoryWriteFailureDegradesInsteadOfFailing) {
  // Same distant-prediction setup as DistantPredictionPausesImmediately,
  // which physically pauses when healthy — but here the history store
  // starts failing, so the controller must degrade to reactive behaviour
  // (logical pause) and, crucially, never propagate the error.
  FlakyHistoryStore store;
  FixedDelayPredictor distant(Hours(12), Hours(1));
  LifecycleController controller(DefaultConfig(), PolicyMode::kProactive,
                                 &store, &distant, kT0 - Days(40));
  ASSERT_TRUE(controller.OnActivityEnd(kT0 - Days(40) + Hours(1)).ok());
  ASSERT_TRUE(controller.OnActivityStart(kT0).ok());
  store.fail_writes = true;
  ASSERT_TRUE(controller.OnActivityEnd(kT0 + Hours(1)).ok());
  EXPECT_TRUE(controller.degraded());
  EXPECT_EQ(controller.stats().degraded_enters, 1u);
  EXPECT_GE(controller.stats().history_errors, 1u);
  // Degraded => reactive: logical pause despite the distant prediction.
  EXPECT_EQ(controller.state(), DbState::kLogicallyPaused);

  // Logins while degraded still succeed (a login must never fail because
  // telemetry storage is down).
  auto outcome = controller.OnActivityStart(kT0 + Hours(2));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, LoginOutcome::kResourcesAvailable);
  EXPECT_TRUE(controller.degraded());

  // The store recovers: the next successful write exits degraded mode and
  // proactive decisions resume (distant prediction => physical pause).
  store.fail_writes = false;
  ASSERT_TRUE(controller.OnActivityEnd(kT0 + Hours(3)).ok());
  EXPECT_FALSE(controller.degraded());
  EXPECT_EQ(controller.stats().degraded_exits, 1u);
  EXPECT_EQ(controller.state(), DbState::kPhysicallyPaused);
}

TEST(DegradedModeTest, RepeatedErrorsCountOneEpisode) {
  FlakyHistoryStore store;
  FixedDelayPredictor distant(Hours(12), Hours(1));
  LifecycleController controller(DefaultConfig(), PolicyMode::kProactive,
                                 &store, &distant, kT0 - Days(40));
  ASSERT_TRUE(controller.OnActivityEnd(kT0 - Days(40) + Hours(1)).ok());
  store.fail_writes = true;
  ASSERT_TRUE(controller.OnActivityStart(kT0).ok());
  ASSERT_TRUE(controller.OnActivityEnd(kT0 + Hours(1)).ok());
  ASSERT_TRUE(controller.OnActivityStart(kT0 + Hours(2)).ok());
  // Several failed operations, one degraded episode.
  EXPECT_EQ(controller.stats().degraded_enters, 1u);
  EXPECT_GE(controller.stats().history_errors, 3u);
  EXPECT_EQ(controller.stats().degraded_exits, 0u);
  // Transitions taken while degraded must not claim a prediction.
  EXPECT_TRUE(controller.degraded());
}

TEST(PolicyModeNameTest, Names) {
  EXPECT_EQ(PolicyModeName(PolicyMode::kProactive), "proactive");
  EXPECT_EQ(PolicyModeName(PolicyMode::kReactive), "reactive");
  EXPECT_EQ(PolicyModeName(PolicyMode::kAlwaysOn), "always_on");
  EXPECT_EQ(DbStateName(DbState::kLogicallyPaused), "logically_paused");
  EXPECT_EQ(TransitionCauseName(TransitionCause::kProactiveResume),
            "proactive_resume");
}

}  // namespace
}  // namespace prorp::policy
