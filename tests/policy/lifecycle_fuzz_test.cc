// Randomized invariant testing of the Algorithm 1 FSM: drive the
// controller through long random (but legal) event sequences under every
// mode/predictor combination and assert that the state machine never
// wedges, never accepts an illegal transition, and keeps its bookkeeping
// consistent.

#include <gtest/gtest.h>

#include "common/random.h"
#include "forecast/baseline_predictors.h"
#include "forecast/fast_predictor.h"
#include "history/mem_history_store.h"
#include "policy/lifecycle_controller.h"

namespace prorp::policy {
namespace {

using forecast::FastPredictor;
using history::MemHistoryStore;

struct FuzzCase {
  PolicyMode mode;
  bool with_predictor;
  uint64_t seed;
};

class LifecycleFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(LifecycleFuzzTest, RandomEventSequencesKeepInvariants) {
  const FuzzCase& fuzz = GetParam();
  Rng rng(fuzz.seed);
  MemHistoryStore store;
  PredictionConfig pred_cfg;
  FastPredictor predictor(pred_cfg);
  PolicyConfig cfg;
  EpochSeconds now = Days(1005);

  uint64_t transitions = 0;
  DbState last_state = DbState::kResumed;
  LifecycleController controller(
      cfg, fuzz.mode, &store,
      fuzz.with_predictor ? &predictor : nullptr, now,
      [&](const TransitionEvent& e) {
        ++transitions;
        // Transition continuity: `from` matches the previous `to`.
        EXPECT_EQ(e.from, last_state);
        EXPECT_NE(e.from, e.to) << "self-transitions are not emitted";
        last_state = e.to;
      });

  for (int step = 0; step < 3000; ++step) {
    now += rng.NextInt(1, Hours(3));
    double dice = rng.NextDouble();
    if (dice < 0.30) {
      auto r = controller.OnActivityStart(now);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      if (*r != LoginOutcome::kAlreadyActive) {
        EXPECT_TRUE(controller.active());
        EXPECT_EQ(controller.state(), DbState::kResumed);
      }
    } else if (dice < 0.55) {
      Status s = controller.OnActivityEnd(now);
      if (controller.active()) {
        ADD_FAILURE() << "still active after OnActivityEnd: "
                      << s.ToString();
      }
      // Legal only when active; otherwise FailedPrecondition.
      if (!s.ok()) {
        EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
      }
    } else if (dice < 0.75) {
      // Fire the requested timer if one is due.
      EpochSeconds timer = controller.NextTimerAt();
      if (timer != 0 && timer <= now) {
        ASSERT_TRUE(controller.OnTimerCheck(timer).ok());
      } else {
        ASSERT_TRUE(controller.OnTimerCheck(now).ok());  // harmless
      }
    } else if (dice < 0.88) {
      Status s = controller.OnProactiveResume(now);
      if (s.ok()) {
        EXPECT_EQ(controller.state(), DbState::kLogicallyPaused);
      } else {
        EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
      }
    } else {
      Status s = controller.OnForcedEviction(now);
      if (s.ok()) {
        EXPECT_EQ(controller.state(), DbState::kPhysicallyPaused);
      } else {
        EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
      }
    }
    // Global invariants after every event.
    if (controller.active()) {
      EXPECT_EQ(controller.state(), DbState::kResumed);
    }
    EpochSeconds timer = controller.NextTimerAt();
    if (controller.state() == DbState::kLogicallyPaused &&
        !controller.active()) {
      EXPECT_NE(timer, 0) << "logically paused without a wake-up";
    }
    // Stats identities.
    const auto& stats = controller.stats();
    EXPECT_EQ(stats.logins_available + stats.logins_reactive +
                  stats.logical_pauses + stats.physical_pauses +
                  stats.proactive_resumes >=
              transitions / 2,
              true);
  }
  // The history only ever contains valid event types in sorted order.
  auto all = store.ReadAll();
  ASSERT_TRUE(all.ok());
  for (size_t i = 0; i < all->size(); ++i) {
    EXPECT_TRUE((*all)[i].event_type == history::kEventLogin ||
                (*all)[i].event_type == history::kEventLogout);
    if (i > 0) {
      EXPECT_GT((*all)[i].time_snapshot, (*all)[i - 1].time_snapshot);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LifecycleFuzzTest,
    ::testing::Values(FuzzCase{PolicyMode::kReactive, false, 1},
                      FuzzCase{PolicyMode::kReactive, false, 2},
                      FuzzCase{PolicyMode::kProactive, true, 3},
                      FuzzCase{PolicyMode::kProactive, true, 4},
                      FuzzCase{PolicyMode::kProactive, false, 5},
                      FuzzCase{PolicyMode::kAlwaysOn, false, 6}),
    [](const auto& info) {
      return std::string(PolicyModeName(info.param.mode)) +
             (info.param.with_predictor ? "_pred" : "_nopred") + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace prorp::policy
