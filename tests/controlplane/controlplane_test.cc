#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "controlplane/management_service.h"
#include "controlplane/metadata_store.h"

namespace prorp::controlplane {
namespace {

using policy::DbState;

TEST(MetadataStoreTest, UpsertAndCount) {
  auto store = MetadataStore::Open();
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->UpsertState(1, DbState::kResumed, 0).ok());
  ASSERT_TRUE((*store)->UpsertState(2, DbState::kPhysicallyPaused, 500).ok());
  ASSERT_TRUE((*store)->UpsertState(3, DbState::kLogicallyPaused, 0).ok());
  EXPECT_EQ((*store)->size(), 3u);
  EXPECT_EQ((*store)->CountInState(DbState::kPhysicallyPaused), 1u);
  // Update in place.
  ASSERT_TRUE((*store)->UpsertState(1, DbState::kPhysicallyPaused, 900).ok());
  EXPECT_EQ((*store)->CountInState(DbState::kPhysicallyPaused), 2u);
  EXPECT_EQ((*store)->size(), 3u);
}

TEST(MetadataStoreTest, SelectDueForResumeWindow) {
  auto store = MetadataStore::Open();
  ASSERT_TRUE(store.ok());
  // Predictions at 1000, 1060, 1120; k=60, period=60.
  ASSERT_TRUE((*store)->UpsertState(1, DbState::kPhysicallyPaused, 1000).ok());
  ASSERT_TRUE((*store)->UpsertState(2, DbState::kPhysicallyPaused, 1060).ok());
  ASSERT_TRUE((*store)->UpsertState(3, DbState::kPhysicallyPaused, 1120).ok());
  // Not physically paused: never selected.
  ASSERT_TRUE((*store)->UpsertState(4, DbState::kLogicallyPaused, 1000).ok());
  // No prediction: never selected.
  ASSERT_TRUE((*store)->UpsertState(5, DbState::kPhysicallyPaused, 0).ok());

  auto due = (*store)->SelectDueForResume(/*now=*/940, /*k=*/60,
                                          /*period=*/60);
  ASSERT_TRUE(due.ok());
  EXPECT_EQ(*due, (std::vector<telemetry::DbId>{1}));  // [1000, 1060)
  auto due2 = (*store)->SelectDueForResume(1000, 60, 60);
  ASSERT_TRUE(due2.ok());
  EXPECT_EQ(*due2, (std::vector<telemetry::DbId>{2}));  // [1060, 1120)
}

TEST(MetadataStoreTest, ResumedDbLeavesResumeIndex) {
  auto store = MetadataStore::Open();
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->UpsertState(1, DbState::kPhysicallyPaused, 1000).ok());
  ASSERT_TRUE((*store)->UpsertState(1, DbState::kResumed, 0).ok());
  auto due = (*store)->SelectDueForResume(940, 60, 60);
  ASSERT_TRUE(due.ok());
  EXPECT_TRUE(due->empty());
}

TEST(MetadataStoreTest, SqlScanMatchesIndexPath) {
  auto store = MetadataStore::Open();
  ASSERT_TRUE(store.ok());
  Rng rng(2024);
  for (telemetry::DbId db = 0; db < 500; ++db) {
    DbState state = static_cast<DbState>(rng.NextInt(0, 2));
    EpochSeconds pred = rng.NextBool(0.7) ? rng.NextInt(1000, 5000) : 0;
    ASSERT_TRUE((*store)->UpsertState(db, state, pred).ok());
  }
  // Randomly update a third of them.
  for (int i = 0; i < 150; ++i) {
    telemetry::DbId db = static_cast<telemetry::DbId>(rng.NextInt(0, 499));
    DbState state = static_cast<DbState>(rng.NextInt(0, 2));
    ASSERT_TRUE(
        (*store)->UpsertState(db, state, rng.NextInt(1000, 5000)).ok());
  }
  for (EpochSeconds now = 900; now <= 5000; now += 137) {
    auto fast = (*store)->SelectDueForResume(now, 60, 300);
    auto sql = (*store)->SelectDueForResumeSql(now, 60, 300);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(sql.ok());
    std::set<telemetry::DbId> a(fast->begin(), fast->end());
    std::set<telemetry::DbId> b(sql->begin(), sql->end());
    EXPECT_EQ(a, b) << "at now=" << now;
  }
}

class ManagementServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto store = MetadataStore::Open();
    ASSERT_TRUE(store.ok());
    metadata_ = std::move(*store);
  }

  ControlPlaneConfig Config() {
    ControlPlaneConfig cfg;
    cfg.prewarm_interval = Minutes(5);
    cfg.resume_operation_period = Minutes(1);
    return cfg;
  }

  std::unique_ptr<MetadataStore> metadata_;
};

TEST_F(ManagementServiceTest, ResumesDueDatabases) {
  std::vector<telemetry::DbId> resumed;
  ManagementService service(metadata_.get(), Config(),
                            [&](telemetry::DbId db, EpochSeconds) {
                              resumed.push_back(db);
                              // Mirror the state change a real controller
                              // performs.
                              return metadata_->UpsertState(
                                  db, DbState::kLogicallyPaused, 0);
                            });
  EpochSeconds now = 10000;
  ASSERT_TRUE(metadata_
                  ->UpsertState(1, DbState::kPhysicallyPaused,
                                now + Minutes(5) + 30)
                  .ok());
  ASSERT_TRUE(metadata_
                  ->UpsertState(2, DbState::kPhysicallyPaused,
                                now + Minutes(30))
                  .ok());
  auto n = service.RunOnce(now);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  EXPECT_EQ(resumed, (std::vector<telemetry::DbId>{1}));
  // The same database is not selected twice.
  auto n2 = service.RunOnce(now + Minutes(1));
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*n2, 0u);
  EXPECT_EQ(service.total_resumed(), 1u);
}

TEST_F(ManagementServiceTest, SqlScanPathWorksToo) {
  ManagementService service(metadata_.get(), Config(),
                            [&](telemetry::DbId db, EpochSeconds) {
                              return metadata_->UpsertState(
                                  db, DbState::kLogicallyPaused, 0);
                            });
  EpochSeconds now = 10000;
  ASSERT_TRUE(metadata_
                  ->UpsertState(9, DbState::kPhysicallyPaused,
                                now + Minutes(5) + 10)
                  .ok());
  auto n = service.RunOnce(now, /*use_sql_scan=*/true);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
}

TEST_F(ManagementServiceTest, StateChangedIsSkippedSilently) {
  ManagementService service(
      metadata_.get(), Config(), [&](telemetry::DbId, EpochSeconds) {
        return Status::FailedPrecondition("already resumed");
      });
  EpochSeconds now = 10000;
  ASSERT_TRUE(metadata_
                  ->UpsertState(1, DbState::kPhysicallyPaused,
                                now + Minutes(5) + 10)
                  .ok());
  auto n = service.RunOnce(now);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
  EXPECT_EQ(service.diagnostics().skipped_state_changed, 1u);
  EXPECT_EQ(service.diagnostics().incidents, 0u);
}

TEST_F(ManagementServiceTest, StuckWorkflowIsMitigatedByRetry) {
  int attempts = 0;
  ManagementService service(metadata_.get(), Config(),
                            [&](telemetry::DbId db, EpochSeconds) {
                              if (++attempts == 1) {
                                return Status::Unavailable("transient");
                              }
                              return metadata_->UpsertState(
                                  db, DbState::kLogicallyPaused, 0);
                            });
  EpochSeconds now = 10000;
  ASSERT_TRUE(metadata_
                  ->UpsertState(1, DbState::kPhysicallyPaused,
                                now + Minutes(5) + 10)
                  .ok());
  auto n = service.RunOnce(now);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);  // resumed within the iteration after mitigation
  EXPECT_EQ(service.diagnostics().stuck_workflows, 1u);
  EXPECT_EQ(service.diagnostics().mitigated, 1u);
  EXPECT_EQ(service.diagnostics().incidents, 0u);
}

TEST_F(ManagementServiceTest, ExhaustedRetriesRaiseIncident) {
  ManagementService service(
      metadata_.get(), Config(),
      [&](telemetry::DbId, EpochSeconds) {
        return Status::Unavailable("permanently stuck");
      },
      /*max_attempts=*/2);
  EpochSeconds now = 10000;
  ASSERT_TRUE(metadata_
                  ->UpsertState(1, DbState::kPhysicallyPaused,
                                now + Minutes(5) + 10)
                  .ok());
  auto n = service.RunOnce(now);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
  EXPECT_EQ(service.diagnostics().incidents, 1u);
  EXPECT_EQ(service.diagnostics().stuck_workflows, 1u);
}

TEST_F(ManagementServiceTest, PerIterationStatsFeedFigure11) {
  ManagementService service(metadata_.get(), Config(),
                            [&](telemetry::DbId db, EpochSeconds) {
                              return metadata_->UpsertState(
                                  db, DbState::kLogicallyPaused, 0);
                            });
  EpochSeconds now = 10000;
  // 3 due in the first window, 1 in the second, 0 in the third.
  for (telemetry::DbId db = 0; db < 3; ++db) {
    ASSERT_TRUE(metadata_
                    ->UpsertState(db, DbState::kPhysicallyPaused,
                                  now + Minutes(5) + 10 + db)
                    .ok());
  }
  ASSERT_TRUE(metadata_
                  ->UpsertState(10, DbState::kPhysicallyPaused,
                                now + Minutes(6) + 10)
                  .ok());
  ASSERT_TRUE(service.RunOnce(now).ok());
  ASSERT_TRUE(service.RunOnce(now + Minutes(1)).ok());
  ASSERT_TRUE(service.RunOnce(now + Minutes(2)).ok());
  BoxPlot box = service.resumed_per_iteration().ToBoxPlot();
  EXPECT_EQ(box.count, 3u);
  EXPECT_DOUBLE_EQ(box.max, 3);
  EXPECT_DOUBLE_EQ(box.min, 0);
  EXPECT_DOUBLE_EQ(box.median, 1);
}

}  // namespace
}  // namespace prorp::controlplane
