#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "controlplane/management_service.h"
#include "controlplane/metadata_store.h"

namespace prorp::controlplane {
namespace {

using policy::DbState;

TEST(MetadataStoreTest, UpsertAndCount) {
  auto store = MetadataStore::Open();
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->UpsertState(1, DbState::kResumed, 0).ok());
  ASSERT_TRUE((*store)->UpsertState(2, DbState::kPhysicallyPaused, 500).ok());
  ASSERT_TRUE((*store)->UpsertState(3, DbState::kLogicallyPaused, 0).ok());
  EXPECT_EQ((*store)->size(), 3u);
  EXPECT_EQ((*store)->CountInState(DbState::kPhysicallyPaused), 1u);
  // Update in place.
  ASSERT_TRUE((*store)->UpsertState(1, DbState::kPhysicallyPaused, 900).ok());
  EXPECT_EQ((*store)->CountInState(DbState::kPhysicallyPaused), 2u);
  EXPECT_EQ((*store)->size(), 3u);
}

TEST(MetadataStoreTest, SelectDueForResumeWindow) {
  auto store = MetadataStore::Open();
  ASSERT_TRUE(store.ok());
  // Predictions at 1000, 1060, 1120; k=60, period=60.
  ASSERT_TRUE((*store)->UpsertState(1, DbState::kPhysicallyPaused, 1000).ok());
  ASSERT_TRUE((*store)->UpsertState(2, DbState::kPhysicallyPaused, 1060).ok());
  ASSERT_TRUE((*store)->UpsertState(3, DbState::kPhysicallyPaused, 1120).ok());
  // Not physically paused: never selected.
  ASSERT_TRUE((*store)->UpsertState(4, DbState::kLogicallyPaused, 1000).ok());
  // No prediction: never selected.
  ASSERT_TRUE((*store)->UpsertState(5, DbState::kPhysicallyPaused, 0).ok());

  auto due = (*store)->SelectDueForResume(/*now=*/940, /*k=*/60,
                                          /*period=*/60);
  ASSERT_TRUE(due.ok());
  EXPECT_EQ(*due, (std::vector<telemetry::DbId>{1}));  // [1000, 1060)
  auto due2 = (*store)->SelectDueForResume(1000, 60, 60);
  ASSERT_TRUE(due2.ok());
  EXPECT_EQ(*due2, (std::vector<telemetry::DbId>{2}));  // [1060, 1120)
}

TEST(MetadataStoreTest, ResumedDbLeavesResumeIndex) {
  auto store = MetadataStore::Open();
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->UpsertState(1, DbState::kPhysicallyPaused, 1000).ok());
  ASSERT_TRUE((*store)->UpsertState(1, DbState::kResumed, 0).ok());
  auto due = (*store)->SelectDueForResume(940, 60, 60);
  ASSERT_TRUE(due.ok());
  EXPECT_TRUE(due->empty());
}

TEST(MetadataStoreTest, SqlScanMatchesIndexPath) {
  auto store = MetadataStore::Open();
  ASSERT_TRUE(store.ok());
  Rng rng(2024);
  for (telemetry::DbId db = 0; db < 500; ++db) {
    DbState state = static_cast<DbState>(rng.NextInt(0, 2));
    EpochSeconds pred = rng.NextBool(0.7) ? rng.NextInt(1000, 5000) : 0;
    ASSERT_TRUE((*store)->UpsertState(db, state, pred).ok());
  }
  // Randomly update a third of them.
  for (int i = 0; i < 150; ++i) {
    telemetry::DbId db = static_cast<telemetry::DbId>(rng.NextInt(0, 499));
    DbState state = static_cast<DbState>(rng.NextInt(0, 2));
    ASSERT_TRUE(
        (*store)->UpsertState(db, state, rng.NextInt(1000, 5000)).ok());
  }
  for (EpochSeconds now = 900; now <= 5000; now += 137) {
    auto fast = (*store)->SelectDueForResume(now, 60, 300);
    auto sql = (*store)->SelectDueForResumeSql(now, 60, 300);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(sql.ok());
    std::set<telemetry::DbId> a(fast->begin(), fast->end());
    std::set<telemetry::DbId> b(sql->begin(), sql->end());
    EXPECT_EQ(a, b) << "at now=" << now;
  }
}

class ManagementServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto store = MetadataStore::Open();
    ASSERT_TRUE(store.ok());
    metadata_ = std::move(*store);
  }

  ControlPlaneConfig Config() {
    ControlPlaneConfig cfg;
    cfg.prewarm_interval = Minutes(5);
    cfg.resume_operation_period = Minutes(1);
    return cfg;
  }

  std::unique_ptr<MetadataStore> metadata_;
};

TEST_F(ManagementServiceTest, ResumesDueDatabases) {
  std::vector<telemetry::DbId> resumed;
  ManagementService service(metadata_.get(), Config(),
                            [&](telemetry::DbId db, EpochSeconds) {
                              resumed.push_back(db);
                              // Mirror the state change a real controller
                              // performs.
                              return metadata_->UpsertState(
                                  db, DbState::kLogicallyPaused, 0);
                            });
  EpochSeconds now = 10000;
  ASSERT_TRUE(metadata_
                  ->UpsertState(1, DbState::kPhysicallyPaused,
                                now + Minutes(5) + 30)
                  .ok());
  ASSERT_TRUE(metadata_
                  ->UpsertState(2, DbState::kPhysicallyPaused,
                                now + Minutes(30))
                  .ok());
  auto n = service.RunOnce(now);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  EXPECT_EQ(resumed, (std::vector<telemetry::DbId>{1}));
  // The same database is not selected twice.
  auto n2 = service.RunOnce(now + Minutes(1));
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*n2, 0u);
  EXPECT_EQ(service.total_resumed(), 1u);
}

TEST_F(ManagementServiceTest, SqlScanPathWorksToo) {
  ManagementService service(metadata_.get(), Config(),
                            [&](telemetry::DbId db, EpochSeconds) {
                              return metadata_->UpsertState(
                                  db, DbState::kLogicallyPaused, 0);
                            });
  EpochSeconds now = 10000;
  ASSERT_TRUE(metadata_
                  ->UpsertState(9, DbState::kPhysicallyPaused,
                                now + Minutes(5) + 10)
                  .ok());
  auto n = service.RunOnce(now, /*use_sql_scan=*/true);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
}

TEST_F(ManagementServiceTest, StateChangedIsSkippedSilently) {
  ManagementService service(
      metadata_.get(), Config(), [&](telemetry::DbId, EpochSeconds) {
        return Status::FailedPrecondition("already resumed");
      });
  EpochSeconds now = 10000;
  ASSERT_TRUE(metadata_
                  ->UpsertState(1, DbState::kPhysicallyPaused,
                                now + Minutes(5) + 10)
                  .ok());
  auto n = service.RunOnce(now);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
  EXPECT_EQ(service.diagnostics().skipped_state_changed, 1u);
  EXPECT_EQ(service.diagnostics().incidents, 0u);
}

TEST_F(ManagementServiceTest, StuckWorkflowIsMitigatedByRetry) {
  int attempts = 0;
  ManagementService service(metadata_.get(), Config(),
                            [&](telemetry::DbId db, EpochSeconds) {
                              if (++attempts == 1) {
                                return Status::Unavailable("transient");
                              }
                              return metadata_->UpsertState(
                                  db, DbState::kLogicallyPaused, 0);
                            });
  EpochSeconds now = 10000;
  ASSERT_TRUE(metadata_
                  ->UpsertState(1, DbState::kPhysicallyPaused,
                                now + Minutes(5) + 10)
                  .ok());
  auto n = service.RunOnce(now);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);  // first attempt failed; retry is backed off
  EXPECT_EQ(service.diagnostics().stuck_workflows, 1u);
  EXPECT_EQ(service.diagnostics().backoff_retries_scheduled, 1u);
  EXPECT_EQ(service.pending_failed(), 1u);

  // Before the backoff deadline the item is held, not retried.
  auto held = service.RunOnce(now + 1);
  ASSERT_TRUE(held.ok());
  EXPECT_EQ(*held, 0u);
  EXPECT_EQ(attempts, 1);

  // After the deadline the retry runs and succeeds: mitigated.
  DurationSeconds delay = service.BackoffDelay(1, 1);
  auto n2 = service.RunOnce(now + delay);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*n2, 1u);
  EXPECT_EQ(service.diagnostics().mitigated, 1u);
  EXPECT_EQ(service.diagnostics().incidents, 0u);
  EXPECT_EQ(service.pending_failed(), 0u);
}

TEST_F(ManagementServiceTest, ExhaustedRetriesRaiseIncident) {
  int attempts = 0;
  ManagementService service(
      metadata_.get(), Config(),
      [&](telemetry::DbId, EpochSeconds) {
        ++attempts;
        return Status::Unavailable("permanently stuck");
      },
      /*max_attempts=*/2);
  EpochSeconds now = 10000;
  ASSERT_TRUE(metadata_
                  ->UpsertState(1, DbState::kPhysicallyPaused,
                                now + Minutes(5) + 10)
                  .ok());
  ASSERT_TRUE(service.RunOnce(now).ok());
  EXPECT_EQ(service.diagnostics().stuck_workflows, 1u);
  EXPECT_EQ(service.diagnostics().incidents, 0u);
  // The second (= last) attempt fails too: incident, nothing left queued.
  EpochSeconds retry_at = now + service.BackoffDelay(1, 1);
  ASSERT_TRUE(service.RunOnce(retry_at).ok());
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(service.diagnostics().incidents, 1u);
  EXPECT_EQ(service.diagnostics().stuck_workflows, 1u);
  EXPECT_EQ(service.pending_failed(), 0u);
  // Accounting invariant: every stuck workflow lands in exactly one
  // terminal bucket.
  const DiagnosticsReport& d = service.diagnostics();
  EXPECT_EQ(d.stuck_workflows, d.mitigated + d.incidents +
                                   d.failed_then_skipped +
                                   service.pending_failed());
}

TEST_F(ManagementServiceTest, FailedThenStateChangedIsDroppedOnce) {
  // First attempt fails transiently; by the retry the customer has
  // already resumed the database (FailedPrecondition).  The workflow must
  // be dropped and accounted as failed_then_skipped, not retried forever.
  int attempts = 0;
  ManagementService service(metadata_.get(), Config(),
                            [&](telemetry::DbId, EpochSeconds) {
                              if (++attempts == 1) {
                                return Status::Unavailable("transient");
                              }
                              return Status::FailedPrecondition(
                                  "already resumed");
                            });
  EpochSeconds now = 10000;
  ASSERT_TRUE(metadata_
                  ->UpsertState(1, DbState::kPhysicallyPaused,
                                now + Minutes(5) + 10)
                  .ok());
  ASSERT_TRUE(service.RunOnce(now).ok());
  ASSERT_TRUE(service.RunOnce(now + service.BackoffDelay(1, 1)).ok());
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(service.diagnostics().stuck_workflows, 1u);
  EXPECT_EQ(service.diagnostics().failed_then_skipped, 1u);
  EXPECT_EQ(service.diagnostics().skipped_state_changed, 1u);
  EXPECT_EQ(service.diagnostics().mitigated, 0u);
  EXPECT_EQ(service.diagnostics().incidents, 0u);
  EXPECT_EQ(service.pending_workflows(), 0u);
}

TEST_F(ManagementServiceTest, BackoffScheduleIsExponentialCappedJittered) {
  ControlPlaneConfig cfg = Config();
  cfg.retry_backoff_base = 60;   // seconds
  cfg.retry_backoff_cap = 480;
  cfg.retry_jitter_fraction = 0.25;
  ManagementService service(metadata_.get(), cfg,
                            [](telemetry::DbId, EpochSeconds) {
                              return Status::OK();
                            });
  for (int attempt = 1; attempt <= 12; ++attempt) {
    DurationSeconds raw = std::min<DurationSeconds>(
        480, 60 * (DurationSeconds{1} << (attempt - 1)));
    DurationSeconds d = service.BackoffDelay(7, attempt);
    EXPECT_GE(d, raw) << "attempt " << attempt;
    EXPECT_LE(d, raw + raw / 4) << "attempt " << attempt;
    // Deterministic: same (db, attempt) always hashes the same.
    EXPECT_EQ(d, service.BackoffDelay(7, attempt));
  }
  // Jitter decorrelates databases: not every db gets the same delay.
  std::set<DurationSeconds> delays;
  for (telemetry::DbId db = 0; db < 16; ++db) {
    delays.insert(service.BackoffDelay(db, 3));
  }
  EXPECT_GT(delays.size(), 1u);
}

TEST_F(ManagementServiceTest, BreakerOpensShedsThenRecovers) {
  ControlPlaneConfig cfg = Config();
  cfg.breaker_window = 4;
  cfg.breaker_failure_ratio = 0.5;
  cfg.breaker_open_duration = Minutes(5);
  cfg.breaker_half_open_probes = 2;
  bool healthy = false;
  uint64_t calls = 0;
  ManagementService service(
      metadata_.get(), cfg,
      [&](telemetry::DbId db, EpochSeconds) {
        ++calls;
        if (!healthy) return Status::Unavailable("resume path down");
        return metadata_->UpsertState(db, DbState::kLogicallyPaused, 0);
      },
      /*max_attempts=*/10);
  EpochSeconds now = 100000;
  for (telemetry::DbId db = 1; db <= 4; ++db) {
    ASSERT_TRUE(metadata_
                    ->UpsertState(db, DbState::kPhysicallyPaused,
                                  now + Minutes(5) + 10 + db)
                    .ok());
  }
  // A later database becomes due while the breaker is open: shed.
  ASSERT_TRUE(metadata_
                  ->UpsertState(50, DbState::kPhysicallyPaused,
                                now + Minutes(6) + 10)
                  .ok());

  // Iteration 1: four failures fill the window and trip the breaker.
  ASSERT_TRUE(service.RunOnce(now).ok());
  EXPECT_EQ(service.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(service.diagnostics().breaker_opens, 1u);
  EXPECT_EQ(service.diagnostics().stuck_workflows, 4u);
  EXPECT_EQ(calls, 4u);

  // Iteration 2 (still open): db 50 is due but shed; retries are held.
  ASSERT_TRUE(service.RunOnce(now + Minutes(1)).ok());
  EXPECT_EQ(service.diagnostics().shed_resumes, 1u);
  EXPECT_EQ(calls, 4u);  // no attempts while open
  EXPECT_EQ(service.pending_failed(), 4u);

  // After the cool-down the breaker half-opens; the path is healthy
  // again, so the probes succeed, the breaker closes, and every held
  // retry is mitigated.
  healthy = true;
  auto n = service.RunOnce(now + Minutes(5));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4u);
  EXPECT_EQ(service.breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(service.diagnostics().mitigated, 4u);
  EXPECT_EQ(service.diagnostics().breaker_state_changes, 3u);
  const DiagnosticsReport& d = service.diagnostics();
  EXPECT_EQ(d.stuck_workflows, d.mitigated + d.incidents +
                                   d.failed_then_skipped +
                                   service.pending_failed());
}

TEST_F(ManagementServiceTest, FailedHalfOpenProbeReopensBreaker) {
  ControlPlaneConfig cfg = Config();
  cfg.breaker_window = 2;
  cfg.breaker_failure_ratio = 0.5;
  cfg.breaker_open_duration = Minutes(5);
  cfg.breaker_half_open_probes = 1;
  uint64_t calls = 0;
  ManagementService service(
      metadata_.get(), cfg,
      [&](telemetry::DbId, EpochSeconds) {
        ++calls;
        return Status::Unavailable("still down");
      },
      /*max_attempts=*/10);
  EpochSeconds now = 100000;
  for (telemetry::DbId db = 1; db <= 2; ++db) {
    ASSERT_TRUE(metadata_
                    ->UpsertState(db, DbState::kPhysicallyPaused,
                                  now + Minutes(5) + 10 + db)
                    .ok());
  }
  ASSERT_TRUE(service.RunOnce(now).ok());
  EXPECT_EQ(service.breaker_state(), BreakerState::kOpen);
  // Half-open probe fails: the breaker re-opens after a single attempt.
  ASSERT_TRUE(service.RunOnce(now + Minutes(5)).ok());
  EXPECT_EQ(service.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(service.diagnostics().breaker_opens, 2u);
  EXPECT_EQ(calls, 3u);  // 2 initial failures + 1 probe
}

TEST_F(ManagementServiceTest, PerIterationStatsFeedFigure11) {
  ManagementService service(metadata_.get(), Config(),
                            [&](telemetry::DbId db, EpochSeconds) {
                              return metadata_->UpsertState(
                                  db, DbState::kLogicallyPaused, 0);
                            });
  EpochSeconds now = 10000;
  // 3 due in the first window, 1 in the second, 0 in the third.
  for (telemetry::DbId db = 0; db < 3; ++db) {
    ASSERT_TRUE(metadata_
                    ->UpsertState(db, DbState::kPhysicallyPaused,
                                  now + Minutes(5) + 10 + db)
                    .ok());
  }
  ASSERT_TRUE(metadata_
                  ->UpsertState(10, DbState::kPhysicallyPaused,
                                now + Minutes(6) + 10)
                  .ok());
  ASSERT_TRUE(service.RunOnce(now).ok());
  ASSERT_TRUE(service.RunOnce(now + Minutes(1)).ok());
  ASSERT_TRUE(service.RunOnce(now + Minutes(2)).ok());
  BoxPlot box = service.resumed_per_iteration().ToBoxPlot();
  EXPECT_EQ(box.count, 3u);
  EXPECT_DOUBLE_EQ(box.max, 3);
  EXPECT_DOUBLE_EQ(box.min, 0);
  EXPECT_DOUBLE_EQ(box.median, 1);
}

}  // namespace
}  // namespace prorp::controlplane
