#include "controlplane/failover.h"

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "controlplane/durable_control_plane.h"
#include "controlplane/management_service.h"
#include "controlplane/metadata_store.h"
#include "controlplane/node_health.h"

namespace prorp::controlplane {
namespace {

namespace fs = std::filesystem;
using policy::DbState;

constexpr EpochSeconds kT0 = 1'000'000;

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

ControlPlaneConfig SmallConfig() {
  ControlPlaneConfig config;
  config.prewarm_interval = 300;
  config.resume_operation_period = 60;
  config.retry_backoff_base = 60;
  config.retry_backoff_cap = 240;
  config.queue_capacity = 16;
  config.admission_control_enabled = true;
  config.deadline_hedging_enabled = true;
  return config;
}

NodeHealthTracker::Options TrackerOptions() {
  NodeHealthTracker::Options opt;
  opt.suspect_after = 150;
  opt.dead_grace = 60;
  opt.rejoin_after = 300;
  return opt;
}

/// Registers `node`, records one real renewal, and advances the clock
/// until the tracker declares it dead.  Returns the declaration time.
EpochSeconds KillNode(NodeHealthTracker* tracker, uint32_t node) {
  tracker->Register(node, kT0);
  tracker->OnRenewalSent(node, kT0, 240);
  tracker->AdvanceTime(kT0 + 151);  // suspect: grant silence
  const EpochSeconds death = kT0 + 241;  // past fence (kT0+240) and grace
  tracker->AdvanceTime(death);
  EXPECT_EQ(tracker->health(node), NodeHealth::kDead);
  return death;
}

// A death declaration re-places every database enumerated on the dead
// node as reactive-priority work, journaling the declaration first.
TEST(FailoverEngineTest, RequeuesDeadNodesDatabases) {
  auto meta = MetadataStore::Open();
  ASSERT_TRUE(meta.ok());
  std::vector<DbId> dispatched;
  ManagementService svc(meta->get(), SmallConfig(),
                        [&](const ResumeAttempt& a, EpochSeconds) -> Status {
                          dispatched.push_back(a.db);
                          return Status::OK();
                        });
  for (DbId db : {4u, 2u, 9u}) {
    ASSERT_TRUE(meta->get()->UpsertState(db, DbState::kResumed, 0).ok());
  }

  NodeHealthTracker tracker(TrackerOptions());
  const EpochSeconds death = KillNode(&tracker, 7);

  std::vector<std::pair<DbId, uint32_t>> requeued;
  FailoverEngine engine(&svc, &tracker, [](uint32_t node) {
    EXPECT_EQ(node, 7u);
    // Unsorted and with a duplicate: the engine must canonicalize.
    return std::vector<DbId>{9, 4, 2, 4};
  });
  engine.set_requeue_hook([&](DbId db, uint32_t node, EpochSeconds) {
    requeued.push_back({db, node});
  });

  ASSERT_TRUE(engine.Tick(death).ok());

  EXPECT_EQ(svc.diagnostics().node_failovers, 1u);
  EXPECT_EQ(svc.diagnostics().failover_requeues, 3u);
  ASSERT_EQ(engine.deaths().size(), 1u);
  EXPECT_EQ(engine.deaths()[0].node, 7u);
  EXPECT_EQ(engine.deaths()[0].requeued, 3u);
  EXPECT_EQ(engine.deaths()[0].deduped, 0u);
  ASSERT_EQ(requeued.size(), 3u);
  EXPECT_EQ(requeued[0], (std::pair<DbId, uint32_t>{2, 7}));
  EXPECT_EQ(svc.queued(ResumeClass::kReactiveLogin), 3u);
  EXPECT_TRUE(svc.AccountingReconciles());

  // The requeued work drains through the normal reactive pump.
  svc.Pump(death + 10);
  EXPECT_EQ(dispatched, (std::vector<DbId>{2, 4, 9}));
  EXPECT_TRUE(svc.AccountingReconciles());

  // A second Tick with no new deaths is a no-op.
  ASSERT_TRUE(engine.Tick(death + 20).ok());
  EXPECT_EQ(engine.deaths().size(), 1u);
}

// A failover never forks a second workflow: databases already queued,
// in flight, or unacked are deduplicated (queued non-reactive work is
// promoted instead).
TEST(FailoverEngineTest, DedupsAgainstLiveWorkflows) {
  auto meta = MetadataStore::Open();
  ASSERT_TRUE(meta.ok());
  ManagementService svc(meta->get(), SmallConfig(),
                        [&](const ResumeAttempt&, EpochSeconds) -> Status {
                          return Status::OK();  // async: parks in-flight
                        });
  ASSERT_TRUE(meta->get()->UpsertState(1, DbState::kPhysicallyPaused, 0).ok());
  ASSERT_TRUE(meta->get()->UpsertState(2, DbState::kPhysicallyPaused, 0).ok());

  // Db 1: already in flight (reactive login dispatched, awaiting its
  // completion).  Db 2: queued reactive, not yet drained.
  ASSERT_TRUE(svc.EnqueueReactive(1, kT0).ok());
  svc.Pump(kT0);
  ASSERT_EQ(svc.in_flight(), 1u);
  ASSERT_TRUE(svc.EnqueueReactive(2, kT0 + 1).ok());
  ASSERT_EQ(svc.queued(ResumeClass::kReactiveLogin), 1u);

  NodeHealthTracker tracker(TrackerOptions());
  const EpochSeconds death = KillNode(&tracker, 3);
  FailoverEngine engine(&svc, &tracker, [](uint32_t) {
    return std::vector<DbId>{1, 2};
  });
  ASSERT_TRUE(engine.Tick(death).ok());

  EXPECT_EQ(svc.diagnostics().failover_requeues, 0u);
  ASSERT_EQ(engine.deaths().size(), 1u);
  EXPECT_EQ(engine.deaths()[0].requeued, 0u);
  EXPECT_EQ(engine.deaths()[0].deduped, 2u);
  EXPECT_EQ(svc.queued(ResumeClass::kReactiveLogin), 1u);  // not duplicated
  EXPECT_TRUE(svc.AccountingReconciles());
}

// Satellite: the per-class accounting invariant holds through failover
// re-queues layered over an active mixed workload, including the
// promotion path (a queued proactive workflow re-placed by failover).
TEST(FailoverEngineTest, AccountingReconcilesUnderFailoverRequeues) {
  auto meta = MetadataStore::Open();
  ASSERT_TRUE(meta.ok());
  int fail_every = 0;
  ManagementService svc(meta->get(), SmallConfig(),
                        [&](const ResumeAttempt&, EpochSeconds) -> Status {
                          if (++fail_every % 3 == 0) {
                            return Status::Unavailable("transient");
                          }
                          return Status::OK();
                        });
  // A mixed backlog: due proactive work plus a couple of logins.
  for (DbId db = 1; db <= 8; ++db) {
    ASSERT_TRUE(
        meta->get()->UpsertState(db, DbState::kPhysicallyPaused, kT0 + 60)
            .ok());
  }
  ASSERT_TRUE(svc.RunOnce(kT0 + 120).ok());
  ASSERT_TRUE(svc.EnqueueReactive(2, kT0 + 130).ok());
  ASSERT_TRUE(svc.AccountingReconciles());

  NodeHealthTracker tracker(TrackerOptions());
  const EpochSeconds death = KillNode(&tracker, 1);
  FailoverEngine engine(&svc, &tracker, [](uint32_t) {
    // Overlaps queued/backing-off work AND names fresh databases.
    return std::vector<DbId>{1, 2, 3, 20, 21};
  });
  ASSERT_TRUE(engine.Tick(death).ok());
  EXPECT_TRUE(svc.AccountingReconciles());

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(svc.RunOnce(death + 60 + i * 60).ok());
    svc.Pump(death + 90 + i * 60);
    ASSERT_TRUE(svc.AccountingReconciles());
  }
  EXPECT_EQ(svc.diagnostics().node_failovers, 1u);
  EXPECT_GT(svc.diagnostics().failover_requeues, 0u);
}

// Tentpole: the declaration and its re-queues are exactly-once across a
// control-plane crash mid-failover.  Replay restores the failover
// counters and the queued work; re-running the same failover after
// recovery dedups instead of forking second workflows.
TEST(FailoverEngineTest, ExactlyOnceAcrossCrashAndReplay) {
  const std::string dir = FreshDir("failover_replay");
  bool node_has[32] = {false};

  DurableControlPlane::Options popt;
  popt.dir = dir;
  popt.config = SmallConfig();

  auto resume = [&](const ResumeAttempt&, EpochSeconds) -> Status {
    return Status::Pending("on the wire");  // outcome never arrives
  };
  auto oracle = [&](DbId db) { return node_has[db]; };

  NodeHealthTracker tracker(TrackerOptions());
  const EpochSeconds death = KillNode(&tracker, 5);

  {
    auto plane = DurableControlPlane::Open(popt, resume, oracle, kT0);
    ASSERT_TRUE(plane.ok());
    FailoverEngine engine(&(*plane)->service(), &tracker, [](uint32_t) {
      return std::vector<DbId>{11, 12, 13};
    });
    for (DbId db : {11u, 12u, 13u}) {
      ASSERT_TRUE((*plane)->metadata()
                      .UpsertState(db, DbState::kResumed, 0)
                      .ok());
    }
    ASSERT_TRUE(engine.Tick(death).ok());
    EXPECT_EQ((*plane)->service().diagnostics().node_failovers, 1u);
    EXPECT_EQ((*plane)->service().diagnostics().failover_requeues, 3u);
    // Crash here: the plane dies with the failover journaled but the
    // requeued work still queued/unacked.
  }

  auto recovered = DurableControlPlane::Open(popt, resume, oracle, death + 60);
  ASSERT_TRUE(recovered.ok());
  ManagementService& svc = (*recovered)->service();

  // Replay restored the counters exactly once...
  EXPECT_EQ(svc.diagnostics().node_failovers, 1u);
  EXPECT_EQ(svc.diagnostics().failover_requeues, 3u);
  // ...and the re-queued workflows themselves (queued or reconciled, but
  // alive and accounted).
  EXPECT_TRUE(svc.AccountingReconciles());
  const size_t live = svc.pending_workflows() + svc.in_flight() +
                      svc.unacked();
  EXPECT_EQ(live, 3u);

  // The new incarnation's detector re-declares the same node dead (its
  // grants are still absent); re-running the failover forks nothing.
  NodeHealthTracker tracker2(TrackerOptions());
  const EpochSeconds death2 = KillNode(&tracker2, 5);
  FailoverEngine engine2(&svc, &tracker2, [](uint32_t) {
    return std::vector<DbId>{11, 12, 13};
  });
  ASSERT_TRUE(engine2.Tick(death2).ok());
  EXPECT_EQ(engine2.deaths()[0].requeued + engine2.deaths()[0].deduped, 3u);
  EXPECT_EQ(engine2.deaths()[0].deduped, 3u);
  EXPECT_EQ(svc.diagnostics().node_failovers, 2u);
  EXPECT_EQ(svc.pending_workflows() + svc.in_flight() + svc.unacked(), 3u);
  EXPECT_TRUE(svc.AccountingReconciles());
}

// A failover requeue is NOT a reactive arrival: replaying a journal full
// of failover re-queues must not trip the storm detector's login-spike
// input.
TEST(FailoverEngineTest, FailoverRequeuesDoNotFeedStormDetector) {
  const std::string dir = FreshDir("failover_no_storm");
  DurableControlPlane::Options popt;
  popt.dir = dir;
  popt.config = SmallConfig();
  popt.config.storm_login_spike_threshold = 4;  // hair trigger

  auto resume = [](const ResumeAttempt&, EpochSeconds) -> Status {
    return Status::Pending("on the wire");
  };
  auto oracle = [](DbId) { return false; };

  {
    auto plane = DurableControlPlane::Open(popt, resume, oracle, kT0);
    ASSERT_TRUE(plane.ok());
    ManagementService& svc = (*plane)->service();
    for (DbId db = 1; db <= 8; ++db) {
      ASSERT_TRUE((*plane)->metadata()
                      .UpsertState(db, DbState::kPhysicallyPaused, 0)
                      .ok());
      ASSERT_TRUE(svc.EnqueueFailover(db, kT0 + 10).ok());
    }
    ASSERT_TRUE(svc.RunOnce(kT0 + 60).ok());
    EXPECT_FALSE(svc.storm_active());
  }
  auto recovered = DurableControlPlane::Open(popt, resume, oracle, kT0 + 120);
  ASSERT_TRUE(recovered.ok());
  ASSERT_TRUE((*recovered)->service().RunOnce(kT0 + 180).ok());
  EXPECT_FALSE((*recovered)->service().storm_active());
  EXPECT_EQ((*recovered)->service().diagnostics().failover_requeues, 8u);
}

}  // namespace
}  // namespace prorp::controlplane
