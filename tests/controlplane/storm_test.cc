// Storm-resilience suite of the control plane (DESIGN.md section 8): the
// multi-class bounded priority queue, brownout shedding, the storm
// detector with its slow-start admission quota, deadline hedging, and the
// breaker x storm interactions.  Labelled `storm` (ctest -L storm).

#include <vector>

#include <gtest/gtest.h>

#include "common/backoff.h"
#include "common/random.h"
#include "controlplane/management_service.h"
#include "controlplane/metadata_store.h"

namespace prorp::controlplane {
namespace {

using policy::DbState;

class StormServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto store = MetadataStore::Open();
    ASSERT_TRUE(store.ok());
    metadata_ = std::move(*store);
  }

  ControlPlaneConfig BaseConfig() {
    ControlPlaneConfig cfg;
    cfg.prewarm_interval = Minutes(5);
    cfg.resume_operation_period = Minutes(1);
    return cfg;
  }

  Status Paused(DbId db, EpochSeconds predicted_start) {
    return metadata_->UpsertState(db, DbState::kPhysicallyPaused,
                                  predicted_start);
  }

  // Mirrors the state change a real controller performs on a successful
  // resume: the database leaves the physically-paused resume index.
  Status MarkResumed(DbId db) {
    return metadata_->UpsertState(db, DbState::kLogicallyPaused, 0);
  }

  std::unique_ptr<MetadataStore> metadata_;
};

constexpr EpochSeconds kT0 = 100000;

TEST_F(StormServiceTest, DrainsInStrictClassPriorityOrder) {
  std::vector<ResumeClass> order;
  ManagementService service(
      metadata_.get(), BaseConfig(),
      ManagementService::ResumeCallback(
          [&](const ResumeAttempt& a, EpochSeconds) {
            order.push_back(a.cls);
            return MarkResumed(a.db);
          }));
  ASSERT_TRUE(Paused(1, kT0 + Minutes(5) + 30).ok());  // due this window
  ASSERT_TRUE(Paused(2, 0).ok());
  ASSERT_TRUE(Paused(3, 0).ok());
  ASSERT_TRUE(service.EnqueueMaintenance(2, kT0).ok());
  ASSERT_TRUE(service.EnqueueReactive(3, kT0).ok());
  ASSERT_TRUE(service.RunOnce(kT0).ok());
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], ResumeClass::kReactiveLogin);
  EXPECT_EQ(order[1], ResumeClass::kImminentProactive);
  EXPECT_EQ(order[2], ResumeClass::kMaintenance);
  EXPECT_TRUE(service.AccountingReconciles());
}

TEST_F(StormServiceTest, BoundedQueueEvictsTheLowestClassFirst) {
  ControlPlaneConfig cfg = BaseConfig();
  cfg.admission_control_enabled = true;
  cfg.queue_capacity = 2;
  // Disable the brownout ladder so the capacity bound is isolated.
  cfg.brownout_l1 = cfg.brownout_l2 = cfg.brownout_l3 = 10.0;
  ManagementService service(
      metadata_.get(), cfg,
      ManagementService::ResumeCallback(
          [&](const ResumeAttempt& a, EpochSeconds) {
            return MarkResumed(a.db);
          }));
  ASSERT_TRUE(Paused(1, kT0 + Minutes(5) + 30).ok());
  ASSERT_TRUE(Paused(11, 0).ok());
  ASSERT_TRUE(Paused(12, 0).ok());
  ASSERT_TRUE(service.EnqueueMaintenance(11, kT0).ok());
  ASSERT_TRUE(service.EnqueueMaintenance(12, kT0).ok());
  EXPECT_EQ(service.queued(ResumeClass::kMaintenance), 2u);
  // The due pre-warm arrives at full capacity: the newest maintenance
  // item is evicted to make room for the higher class.
  ASSERT_TRUE(service.RunOnce(kT0).ok());
  const DiagnosticsReport& d = service.diagnostics();
  EXPECT_EQ(d.cls(ResumeClass::kMaintenance).shed_evicted, 1u);
  EXPECT_EQ(d.cls(ResumeClass::kMaintenance).resumed, 1u);
  EXPECT_EQ(d.cls(ResumeClass::kImminentProactive).resumed, 1u);
  EXPECT_TRUE(service.AccountingReconciles());
}

TEST_F(StormServiceTest, BrownoutLadderShedsLowClassesAndSparesReactive) {
  ControlPlaneConfig cfg = BaseConfig();
  cfg.admission_control_enabled = true;
  cfg.queue_capacity = 4;  // levels engage at occupancy 2, 3, 3.8
  ManagementService service(
      metadata_.get(), cfg,
      ManagementService::ResumeCallback(
          [&](const ResumeAttempt&, EpochSeconds) {
            return Status::Unavailable("resume path degraded");
          }),
      /*max_attempts=*/10);
  for (DbId db : {1, 2, 3, 8}) ASSERT_TRUE(Paused(db, 0).ok());
  ASSERT_TRUE(Paused(4, kT0 + Minutes(5) + 30).ok());
  ASSERT_TRUE(Paused(5, kT0 + Minutes(5) + 30).ok());

  ASSERT_TRUE(service.EnqueueMaintenance(1, kT0).ok());
  ASSERT_TRUE(service.EnqueueMaintenance(2, kT0).ok());
  EXPECT_EQ(service.brownout_level(), 1);  // occupancy 2/4
  // Level 1 sheds fresh maintenance arrivals...
  ASSERT_TRUE(service.EnqueueMaintenance(3, kT0).ok());
  EXPECT_EQ(service.diagnostics().cls(ResumeClass::kMaintenance)
                .shed_admission,
            1u);
  // ...but the due pre-warms are still admitted below level 3; every
  // attempt fails, so all four items stay queued.
  ASSERT_TRUE(service.RunOnce(kT0).ok());
  EXPECT_EQ(service.brownout_level(), 3);  // occupancy 4/4
  ASSERT_TRUE(service.EnqueueMaintenance(8, kT0).ok());
  EXPECT_EQ(service.diagnostics().max_brownout_level, 3);
  // At level 3 even a due pre-warm is shed...
  ASSERT_TRUE(Paused(9, kT0 + 60 + Minutes(5) + 30).ok());
  ASSERT_TRUE(service.RunOnce(kT0 + 60).ok());
  EXPECT_EQ(service.diagnostics().cls(ResumeClass::kImminentProactive)
                .shed_admission,
            1u);
  // ...while reactive logins are admitted at any level.
  ASSERT_TRUE(service.EnqueueReactive(8, kT0 + 60).ok());
  EXPECT_EQ(service.queued(ResumeClass::kReactiveLogin), 1u);
  EXPECT_EQ(service.diagnostics().cls(ResumeClass::kReactiveLogin).shed(),
            0u);
  EXPECT_TRUE(service.AccountingReconciles());
}

TEST_F(StormServiceTest, ReactiveIsNeverBoundedByQueueCapacity) {
  ControlPlaneConfig cfg = BaseConfig();
  cfg.admission_control_enabled = true;
  cfg.queue_capacity = 1;
  ManagementService service(
      metadata_.get(), cfg,
      ManagementService::ResumeCallback(
          [&](const ResumeAttempt&, EpochSeconds) {
            return Status::Unavailable("down");
          }),
      /*max_attempts=*/10);
  for (DbId db : {1, 2, 3, 4}) ASSERT_TRUE(Paused(db, 0).ok());
  ASSERT_TRUE(service.EnqueueMaintenance(1, kT0).ok());
  for (DbId db : {2, 3, 4}) {
    ASSERT_TRUE(service.EnqueueReactive(db, kT0).ok());
  }
  EXPECT_EQ(service.queued(ResumeClass::kReactiveLogin), 3u);
  EXPECT_EQ(service.diagnostics().cls(ResumeClass::kReactiveLogin).shed(),
            0u);
}

TEST_F(StormServiceTest, ReactiveLoginPromotesAQueuedProactiveWorkflow) {
  bool fail_mode = true;
  ManagementService service(
      metadata_.get(), BaseConfig(),
      ManagementService::ResumeCallback(
          [&](const ResumeAttempt& a, EpochSeconds) -> Status {
            if (fail_mode) return Status::Unavailable("down");
            return MarkResumed(a.db);
          }),
      /*max_attempts=*/10);
  ASSERT_TRUE(Paused(1, kT0 + Minutes(5) + 30).ok());
  ASSERT_TRUE(service.RunOnce(kT0).ok());  // fails once, backs off
  EXPECT_EQ(service.queued(ResumeClass::kImminentProactive), 1u);
  // The customer's login outruns the queued pre-warm: the old item is
  // retired through its own class and a reactive workflow takes over.
  ASSERT_TRUE(service.EnqueueReactive(1, kT0 + 10).ok());
  EXPECT_EQ(service.queued(ResumeClass::kImminentProactive), 0u);
  EXPECT_EQ(service.queued(ResumeClass::kReactiveLogin), 1u);
  const DiagnosticsReport& d = service.diagnostics();
  EXPECT_EQ(d.cls(ResumeClass::kImminentProactive).skipped_state_changed,
            1u);
  EXPECT_EQ(d.cls(ResumeClass::kImminentProactive).failed_then_skipped, 1u);
  EXPECT_TRUE(service.AccountingReconciles());
  // A second login for the same database deduplicates.
  ASSERT_TRUE(service.EnqueueReactive(1, kT0 + 11).ok());
  EXPECT_EQ(d.cls(ResumeClass::kReactiveLogin).enqueued, 1u);
  fail_mode = false;
  EXPECT_EQ(service.Pump(kT0 + 20), 1u);
  EXPECT_EQ(d.cls(ResumeClass::kReactiveLogin).resumed, 1u);
  EXPECT_TRUE(service.AccountingReconciles());
}

TEST_F(StormServiceTest, DuePrewarmUpgradesAQueuedMaintenanceItem) {
  std::vector<ResumeClass> order;
  ManagementService service(
      metadata_.get(), BaseConfig(),
      ManagementService::ResumeCallback(
          [&](const ResumeAttempt& a, EpochSeconds) {
            order.push_back(a.cls);
            return MarkResumed(a.db);
          }));
  // The same database is queued for maintenance AND comes due: the
  // selection window only passes over it once, so the maintenance item
  // must not swallow the pre-warm.
  ASSERT_TRUE(Paused(1, kT0 + Minutes(5) + 30).ok());
  ASSERT_TRUE(service.EnqueueMaintenance(1, kT0 - 60).ok());
  ASSERT_TRUE(service.RunOnce(kT0).ok());
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], ResumeClass::kImminentProactive);
  const DiagnosticsReport& d = service.diagnostics();
  EXPECT_EQ(d.cls(ResumeClass::kMaintenance).skipped_state_changed, 1u);
  EXPECT_EQ(d.cls(ResumeClass::kMaintenance).resumed, 0u);
  EXPECT_EQ(d.cls(ResumeClass::kImminentProactive).resumed, 1u);
  EXPECT_TRUE(service.AccountingReconciles());
}

TEST_F(StormServiceTest, DeletedWhileQueuedRetiresTheWorkflow) {
  bool fail_mode = true;
  uint64_t attempts = 0;
  ManagementService service(
      metadata_.get(), BaseConfig(),
      ManagementService::ResumeCallback(
          [&](const ResumeAttempt& a, EpochSeconds) -> Status {
            ++attempts;
            if (fail_mode) return Status::Unavailable("down");
            return MarkResumed(a.db);
          }),
      /*max_attempts=*/10);
  ASSERT_TRUE(Paused(1, 0).ok());
  ASSERT_TRUE(service.EnqueueMaintenance(1, kT0).ok());
  // Fresh item whose database vanishes before the first attempt.
  ASSERT_TRUE(metadata_->Remove(1).ok());
  ASSERT_TRUE(service.RunOnce(kT0).ok());
  EXPECT_EQ(attempts, 0u);
  EXPECT_EQ(service.diagnostics().deleted_while_queued, 1u);
  EXPECT_EQ(service.diagnostics().cls(ResumeClass::kMaintenance)
                .skipped_state_changed,
            1u);
  // Item that already failed once, then its database is dropped: the open
  // accounting term must close through failed_then_skipped.
  ASSERT_TRUE(Paused(2, kT0 + 60 + Minutes(5) + 30).ok());
  ASSERT_TRUE(service.RunOnce(kT0 + 60).ok());  // one failed attempt
  ASSERT_TRUE(metadata_->Remove(2).ok());
  ASSERT_TRUE(service.RunOnce(kT0 + Minutes(10)).ok());
  EXPECT_EQ(service.diagnostics().deleted_while_queued, 2u);
  EXPECT_EQ(service.diagnostics().cls(ResumeClass::kImminentProactive)
                .failed_then_skipped,
            1u);
  EXPECT_EQ(service.pending_workflows(), 0u);
  EXPECT_TRUE(service.AccountingReconciles());
}

TEST_F(StormServiceTest, ResumedOnItsOwnWhileQueuedIsBreakerNeutral) {
  int failures_left = 1;
  ManagementService service(
      metadata_.get(), BaseConfig(),
      ManagementService::ResumeCallback(
          [&](const ResumeAttempt&, EpochSeconds) -> Status {
            if (failures_left-- > 0) return Status::Unavailable("down");
            return Status::FailedPrecondition("no longer physically paused");
          }),
      /*max_attempts=*/10);
  ASSERT_TRUE(Paused(1, kT0 + Minutes(5) + 30).ok());
  ASSERT_TRUE(service.RunOnce(kT0).ok());  // transient failure, backs off
  // The customer resumes it on their own; the retry finds the state
  // changed and retires the item without touching the breaker.
  ASSERT_TRUE(MarkResumed(1).ok());
  ASSERT_TRUE(service.RunOnce(kT0 + Minutes(10)).ok());
  const DiagnosticsReport& d = service.diagnostics();
  EXPECT_EQ(d.cls(ResumeClass::kImminentProactive).failed_then_skipped, 1u);
  EXPECT_EQ(service.breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(service.pending_workflows(), 0u);
  EXPECT_TRUE(service.AccountingReconciles());
}

TEST_F(StormServiceTest, DueBurstStormSlowStartsTheBacklog) {
  ControlPlaneConfig cfg = BaseConfig();
  cfg.admission_control_enabled = true;
  cfg.queue_capacity = 64;
  cfg.storm_due_burst_threshold = 4;
  cfg.storm_login_spike_threshold = 0;
  cfg.storm_recovery_backlog = 0;
  cfg.slow_start_initial_quota = 1;
  cfg.slow_start_jitter_fraction = 0;
  uint64_t attempts = 0;
  ManagementService service(
      metadata_.get(), cfg,
      ManagementService::ResumeCallback(
          [&](const ResumeAttempt& a, EpochSeconds) {
            ++attempts;
            return MarkResumed(a.db);
          }));
  for (DbId db = 1; db <= 6; ++db) {
    ASSERT_TRUE(Paused(db, kT0 + Minutes(5) + 10).ok());
  }
  // Six due databases trip the burst detector; the quota ramps 1, 2, 4.
  ASSERT_TRUE(service.RunOnce(kT0).ok());
  EXPECT_TRUE(service.storm_active());
  EXPECT_EQ(service.diagnostics().storms_detected, 1u);
  EXPECT_EQ(service.current_quota(), 1u);
  EXPECT_EQ(attempts, 1u);
  ASSERT_TRUE(service.RunOnce(kT0 + 60).ok());
  EXPECT_EQ(service.current_quota(), 2u);
  EXPECT_EQ(attempts, 3u);
  ASSERT_TRUE(service.RunOnce(kT0 + 120).ok());
  EXPECT_EQ(attempts, 6u);
  // The backlog has drained: the storm ends and the quota disengages.
  EXPECT_FALSE(service.storm_active());
  EXPECT_EQ(service.current_quota(), 0u);
  const DiagnosticsReport& d = service.diagnostics();
  EXPECT_EQ(d.storms_detected, 1u);
  EXPECT_EQ(d.slow_start_ticks, 3u);
  EXPECT_GT(d.quota_deferrals, 0u);
  EXPECT_EQ(d.cls(ResumeClass::kImminentProactive).resumed, 6u);
  EXPECT_TRUE(service.AccountingReconciles());
}

TEST_F(StormServiceTest, LoginSpikeTriggersAStormButNeverGatesReactive) {
  ControlPlaneConfig cfg = BaseConfig();
  cfg.admission_control_enabled = true;
  cfg.queue_capacity = 64;
  cfg.storm_due_burst_threshold = 0;
  cfg.storm_login_spike_threshold = 3;
  cfg.storm_recovery_backlog = 0;
  cfg.slow_start_initial_quota = 1;
  cfg.slow_start_jitter_fraction = 0;
  ManagementService service(
      metadata_.get(), cfg,
      ManagementService::ResumeCallback(
          [&](const ResumeAttempt& a, EpochSeconds) {
            return MarkResumed(a.db);
          }));
  for (DbId db : {1, 2, 3, 10, 11}) ASSERT_TRUE(Paused(db, 0).ok());
  ASSERT_TRUE(service.EnqueueMaintenance(10, kT0).ok());
  ASSERT_TRUE(service.EnqueueMaintenance(11, kT0).ok());
  for (DbId db : {1, 2, 3}) {
    ASSERT_TRUE(service.EnqueueReactive(db, kT0).ok());
  }
  ASSERT_TRUE(service.RunOnce(kT0).ok());
  const DiagnosticsReport& d = service.diagnostics();
  EXPECT_TRUE(service.storm_active());
  EXPECT_EQ(d.storms_detected, 1u);
  // All three logins were drained ungated; maintenance got quota 1.
  EXPECT_EQ(d.cls(ResumeClass::kReactiveLogin).resumed, 3u);
  EXPECT_EQ(d.cls(ResumeClass::kMaintenance).resumed, 1u);
  ASSERT_TRUE(service.RunOnce(kT0 + 60).ok());
  EXPECT_EQ(d.cls(ResumeClass::kMaintenance).resumed, 2u);
  EXPECT_FALSE(service.storm_active());
  EXPECT_TRUE(service.AccountingReconciles());
}

TEST_F(StormServiceTest, BreakerOpensMidStormAndHalfOpenProbesRespectQuota) {
  ControlPlaneConfig cfg = BaseConfig();
  cfg.admission_control_enabled = true;
  cfg.queue_capacity = 64;
  cfg.storm_due_burst_threshold = 4;
  cfg.storm_login_spike_threshold = 0;
  cfg.storm_recovery_backlog = 0;
  cfg.slow_start_initial_quota = 1;
  cfg.slow_start_quota_cap = 2;  // quota binds below the probe budget
  cfg.slow_start_jitter_fraction = 0;
  cfg.breaker_window = 4;
  cfg.breaker_failure_ratio = 0.5;
  cfg.breaker_open_duration = 120;
  cfg.breaker_half_open_probes = 5;
  bool fail_mode = true;
  uint64_t gated_attempts = 0;
  ManagementService service(
      metadata_.get(), cfg,
      ManagementService::ResumeCallback(
          [&](const ResumeAttempt& a, EpochSeconds) -> Status {
            if (a.cls != ResumeClass::kReactiveLogin) ++gated_attempts;
            if (a.cls == ResumeClass::kReactiveLogin || !fail_mode) {
              return MarkResumed(a.db);
            }
            return Status::Unavailable("resume path down");
          }),
      /*max_attempts=*/10);
  for (DbId db = 1; db <= 6; ++db) {
    ASSERT_TRUE(Paused(db, kT0 + Minutes(5) + 10).ok());
  }
  ASSERT_TRUE(Paused(7, 0).ok());
  ASSERT_TRUE(Paused(8, 0).ok());

  ASSERT_TRUE(service.RunOnce(kT0).ok());  // storm; quota 1, 1 failure
  EXPECT_TRUE(service.storm_active());
  EXPECT_EQ(gated_attempts, 1u);
  ASSERT_TRUE(service.RunOnce(kT0 + 60).ok());  // quota 2, 2 more failures
  EXPECT_EQ(gated_attempts, 3u);
  // The 4th failure fills the window: the breaker opens mid-drain and the
  // rest of the backlog is held, with the storm still active.
  ASSERT_TRUE(service.RunOnce(kT0 + 120).ok());
  EXPECT_EQ(gated_attempts, 4u);
  EXPECT_EQ(service.breaker_state(), BreakerState::kOpen);
  EXPECT_TRUE(service.storm_active());
  // Reactive logins keep flowing through the open breaker...
  ASSERT_TRUE(service.EnqueueReactive(7, kT0 + 120).ok());
  EXPECT_EQ(service.Pump(kT0 + 120), 1u);
  // ...while fresh gated arrivals are shed at admission.
  ASSERT_TRUE(service.EnqueueMaintenance(8, kT0 + 120).ok());
  EXPECT_EQ(service.diagnostics().cls(ResumeClass::kMaintenance)
                .shed_admission,
            1u);
  ASSERT_TRUE(service.RunOnce(kT0 + 180).ok());  // still open: no attempts
  EXPECT_EQ(gated_attempts, 4u);

  // Half-open: the path has healed.  The probe budget is 5, but the
  // slow-start quota (capped at 2) binds first — exactly 2 probes go out.
  fail_mode = false;
  uint64_t before = gated_attempts;
  ASSERT_TRUE(service.RunOnce(kT0 + 240).ok());
  EXPECT_EQ(service.current_quota(), 2u);
  EXPECT_EQ(gated_attempts - before, 2u);
  EXPECT_EQ(service.breaker_state(), BreakerState::kHalfOpen);

  EpochSeconds t = kT0 + 300;
  for (; service.storm_active() && t < kT0 + 3600; t += 60) {
    ASSERT_TRUE(service.RunOnce(t).ok());
  }
  EXPECT_FALSE(service.storm_active());
  EXPECT_EQ(service.breaker_state(), BreakerState::kClosed);
  const DiagnosticsReport& d = service.diagnostics();
  EXPECT_EQ(d.storms_detected, 1u);
  EXPECT_EQ(d.incidents, 0u);
  EXPECT_EQ(d.cls(ResumeClass::kImminentProactive).resumed, 6u);
  // Three distinct workflows failed before succeeding (the fourth failed
  // attempt was a retry of the first); deferred-only ones are not stuck.
  EXPECT_EQ(d.cls(ResumeClass::kImminentProactive).mitigated, 3u);
  EXPECT_GT(d.quota_deferrals, 0u);
  EXPECT_TRUE(service.AccountingReconciles());
}

TEST_F(StormServiceTest, RecoveryBacklogTriggersOnceAndCooldownHolds) {
  ControlPlaneConfig cfg = BaseConfig();
  cfg.admission_control_enabled = true;
  cfg.queue_capacity = 64;
  cfg.storm_due_burst_threshold = 0;
  cfg.storm_login_spike_threshold = 0;
  cfg.storm_recovery_backlog = 2;
  cfg.storm_cooldown = Minutes(30);
  cfg.slow_start_initial_quota = 4;
  cfg.slow_start_jitter_fraction = 0;
  cfg.breaker_window = 2;
  cfg.breaker_failure_ratio = 0.5;
  cfg.breaker_open_duration = 60;
  cfg.breaker_half_open_probes = 1;
  bool fail_mode = true;
  ManagementService service(
      metadata_.get(), cfg,
      ManagementService::ResumeCallback(
          [&](const ResumeAttempt& a, EpochSeconds) -> Status {
            if (fail_mode) return Status::Unavailable("down");
            return MarkResumed(a.db);
          }),
      /*max_attempts=*/10);

  // Wave 1: two failures open the breaker; three workflows stay queued.
  for (DbId db = 1; db <= 3; ++db) {
    ASSERT_TRUE(Paused(db, kT0 + Minutes(5) + 10).ok());
  }
  ASSERT_TRUE(service.RunOnce(kT0).ok());
  EXPECT_EQ(service.breaker_state(), BreakerState::kOpen);
  EXPECT_FALSE(service.storm_active());
  EXPECT_EQ(service.pending_workflows(), 3u);
  // The breaker half-opens onto the held backlog: that is the post-outage
  // thundering herd, and it starts a throttled storm.
  fail_mode = false;
  ASSERT_TRUE(service.RunOnce(kT0 + 60).ok());
  EXPECT_EQ(service.diagnostics().storms_detected, 1u);
  EpochSeconds t = kT0 + 120;
  for (; service.storm_active() && t < kT0 + 1200; t += 60) {
    ASSERT_TRUE(service.RunOnce(t).ok());
  }
  EXPECT_FALSE(service.storm_active());
  EXPECT_EQ(service.breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(service.diagnostics().cls(ResumeClass::kImminentProactive)
                .resumed,
            3u);

  // Wave 2, inside the cooldown: the same open -> half-open -> backlog
  // sequence must NOT re-trigger the detector.
  EpochSeconds t2 = t + 60;
  fail_mode = true;
  for (DbId db = 11; db <= 13; ++db) {
    ASSERT_TRUE(Paused(db, t2 + Minutes(5) + 10).ok());
  }
  ASSERT_TRUE(service.RunOnce(t2).ok());
  EXPECT_EQ(service.breaker_state(), BreakerState::kOpen);
  fail_mode = false;
  ASSERT_TRUE(service.RunOnce(t2 + 60).ok());
  EXPECT_EQ(service.diagnostics().storms_detected, 1u);
  EXPECT_FALSE(service.storm_active());
  for (EpochSeconds t3 = t2 + 120;
       service.pending_workflows() > 0 && t3 < t2 + 1200; t3 += 60) {
    ASSERT_TRUE(service.RunOnce(t3).ok());
  }
  EXPECT_EQ(service.pending_workflows(), 0u);
  EXPECT_EQ(service.diagnostics().storms_detected, 1u);
  EXPECT_EQ(service.diagnostics().cls(ResumeClass::kImminentProactive)
                .resumed,
            6u);
  EXPECT_TRUE(service.AccountingReconciles());
}

TEST_F(StormServiceTest, CatchUpSweepClassifiesMissedPrewarms) {
  ControlPlaneConfig cfg = BaseConfig();
  cfg.admission_control_enabled = true;
  cfg.catch_up_enabled = true;
  cfg.catch_up_lookback = Hours(2);
  cfg.queue_capacity = 64;
  cfg.storm_due_burst_threshold = 0;
  cfg.storm_login_spike_threshold = 1;
  cfg.storm_recovery_backlog = 0;
  cfg.slow_start_initial_quota = 8;
  cfg.slow_start_jitter_fraction = 0;
  ManagementService service(
      metadata_.get(), cfg,
      ManagementService::ResumeCallback(
          [&](const ResumeAttempt& a, EpochSeconds) {
            return MarkResumed(a.db);
          }));
  // db 1: predicted start long past -> speculative catch-up.
  ASSERT_TRUE(Paused(1, kT0 - 600).ok());
  // db 2: predicted start ahead but inside the already-passed window
  // [now, now + k) -> imminent catch-up.
  ASSERT_TRUE(Paused(2, kT0 + 100).ok());
  // db 9: no prediction; triggers the storm via a login spike.
  ASSERT_TRUE(Paused(9, 0).ok());
  ASSERT_TRUE(service.EnqueueReactive(9, kT0).ok());
  ASSERT_TRUE(service.RunOnce(kT0).ok());
  const DiagnosticsReport& d = service.diagnostics();
  EXPECT_EQ(d.storms_detected, 1u);
  EXPECT_EQ(d.catch_up_enqueued, 2u);
  EXPECT_EQ(d.cls(ResumeClass::kSpeculativeProactive).enqueued, 1u);
  EXPECT_EQ(d.cls(ResumeClass::kSpeculativeProactive).resumed, 1u);
  EXPECT_EQ(d.cls(ResumeClass::kImminentProactive).enqueued, 1u);
  EXPECT_EQ(d.cls(ResumeClass::kImminentProactive).resumed, 1u);
  EXPECT_EQ(d.cls(ResumeClass::kReactiveLogin).resumed, 1u);
  EXPECT_FALSE(service.storm_active());
  EXPECT_TRUE(service.AccountingReconciles());
}

TEST_F(StormServiceTest, DeadlineHedgeBypassesBackoffAndIsSpentOnce) {
  ControlPlaneConfig cfg = BaseConfig();
  cfg.deadline_hedging_enabled = true;
  cfg.deadline_imminent = 30;  // shorter than the first backoff (>= 60s)
  uint64_t attempts = 0;
  ManagementService service(
      metadata_.get(), cfg,
      ManagementService::ResumeCallback(
          [&](const ResumeAttempt& a, EpochSeconds) -> Status {
            ++attempts;
            if (a.hedge) {
              EXPECT_EQ(a.node_offset, 1);
              // db 1's hedge lands on a healthy node; db 2's fails too.
              if (a.db == 1) return MarkResumed(a.db);
              return Status::Unavailable("hedge node down too");
            }
            return Status::Unavailable("home node down");
          }),
      /*max_attempts=*/10);
  ASSERT_TRUE(Paused(1, kT0 + Minutes(5) + 10).ok());
  ASSERT_TRUE(Paused(2, kT0 + Minutes(5) + 10).ok());
  ASSERT_TRUE(service.RunOnce(kT0).ok());  // both fail, back off >= 60s
  EXPECT_EQ(attempts, 2u);
  // Past the 30s deadline but before the backoff expires: the hedge goes
  // out anyway (it bypasses the backoff), routed to another node.
  ASSERT_TRUE(service.RunOnce(kT0 + 40).ok());
  EXPECT_EQ(attempts, 4u);
  const DiagnosticsReport& d = service.diagnostics();
  const ClassDiagnostics& imm = d.cls(ResumeClass::kImminentProactive);
  EXPECT_EQ(imm.deadline_breaches, 2u);
  EXPECT_EQ(imm.hedged, 2u);
  EXPECT_EQ(imm.hedge_wins, 1u);
  EXPECT_EQ(imm.resumed, 1u);
  EXPECT_EQ(imm.mitigated, 1u);
  // The hedge is bounded at one per workflow: db 2 is back on its normal
  // backoff schedule and no further hedge goes out.
  ASSERT_TRUE(service.RunOnce(kT0 + 50).ok());
  EXPECT_EQ(attempts, 4u);
  EXPECT_EQ(imm.hedged, 2u);
  EXPECT_TRUE(service.AccountingReconciles());
}

TEST_F(StormServiceTest, WatchdogHedgesAnInFlightReactiveResume) {
  ControlPlaneConfig cfg = BaseConfig();
  cfg.deadline_hedging_enabled = true;
  cfg.deadline_reactive = Minutes(2);
  uint64_t hedges = 0;
  ManagementService service(
      metadata_.get(), cfg,
      ManagementService::ResumeCallback(
          [&](const ResumeAttempt& a, EpochSeconds) {
            if (a.hedge) {
              ++hedges;
              EXPECT_EQ(a.cls, ResumeClass::kReactiveLogin);
              EXPECT_EQ(a.node_offset, 1);
            }
            return Status::OK();  // resources arrive asynchronously
          }));
  ASSERT_TRUE(Paused(1, 0).ok());
  ASSERT_TRUE(service.EnqueueReactive(1, kT0).ok());
  EXPECT_EQ(service.Pump(kT0), 1u);
  EXPECT_EQ(service.in_flight(), 1u);  // awaiting async completion
  service.Pump(kT0 + 60);  // inside the deadline: no hedge
  EXPECT_EQ(hedges, 0u);
  service.Pump(kT0 + 130);  // past the deadline: the watchdog hedges once
  EXPECT_EQ(hedges, 1u);
  service.Pump(kT0 + 200);  // the single hedge is spent
  EXPECT_EQ(hedges, 1u);
  const DiagnosticsReport& d = service.diagnostics();
  EXPECT_EQ(d.cls(ResumeClass::kReactiveLogin).deadline_breaches, 1u);
  EXPECT_EQ(d.cls(ResumeClass::kReactiveLogin).hedge_wins, 1u);
  service.CompleteWorkflow(1, kT0 + 210);
  EXPECT_EQ(service.in_flight(), 0u);
  EXPECT_EQ(d.in_flight_duration.count(), 1u);
  EXPECT_EQ(d.in_flight_duration.max(), 210);
  EXPECT_GE(d.queue_wait.count(), 1u);
  EXPECT_TRUE(service.AccountingReconciles());
}

TEST_F(StormServiceTest, BackoffScheduleDelegatesToTheExtractedHelper) {
  ManagementService service(
      metadata_.get(), BaseConfig(),
      ManagementService::ResumeCallback(
          [&](const ResumeAttempt&, EpochSeconds) { return Status::OK(); }));
  for (DbId db : {0, 1, 7, 12345, 999999}) {
    for (int attempt = 1; attempt <= 8; ++attempt) {
      EXPECT_EQ(service.BackoffDelay(db, attempt),
                common::BackoffDelay(60, 480, 0.25,
                                     static_cast<uint64_t>(db), attempt));
    }
  }
  // Spot-check against the frozen golden schedule (backoff_test.cc).
  EXPECT_EQ(service.BackoffDelay(0, 1), 67);
  EXPECT_EQ(service.BackoffDelay(12345, 4), 504);
}

// Randomized chaos: shedding, eviction, promotion, hedging, deletion, and
// breaker flaps all interleave, and the per-class accounting invariant
// must reconcile after every single iteration.
TEST_F(StormServiceTest, PerClassInvariantHoldsUnderChaos) {
  ControlPlaneConfig cfg = BaseConfig();
  cfg.admission_control_enabled = true;
  cfg.catch_up_enabled = true;
  cfg.deadline_hedging_enabled = true;
  cfg.queue_capacity = 8;
  cfg.storm_due_burst_threshold = 6;
  cfg.storm_login_spike_threshold = 4;
  cfg.storm_recovery_backlog = 4;
  cfg.storm_cooldown = Minutes(5);
  cfg.deadline_reactive = Minutes(2);
  cfg.deadline_imminent = Minutes(5);
  cfg.deadline_speculative = Minutes(10);
  cfg.deadline_maintenance = Minutes(15);
  cfg.breaker_window = 6;
  cfg.breaker_open_duration = Minutes(2);
  Rng rng(7);
  ManagementService service(
      metadata_.get(), cfg,
      ManagementService::ResumeCallback(
          [&](const ResumeAttempt& a, EpochSeconds) -> Status {
            int roll = rng.NextInt(0, 99);
            if (roll < 60) {
              EXPECT_TRUE(MarkResumed(a.db).ok());
              return Status::OK();
            }
            if (roll < 85) return Status::Unavailable("flaky resume path");
            return Status::FailedPrecondition("state changed");
          }));
  constexpr int kNumDbs = 40;
  for (int iter = 0; iter < 150; ++iter) {
    EpochSeconds now = kT0 + iter * 60;
    int fresh = rng.NextInt(0, 3);
    for (int i = 0; i < fresh; ++i) {
      DbId db = static_cast<DbId>(rng.NextInt(0, kNumDbs - 1));
      EpochSeconds pred = rng.NextBool(0.5)
                              ? now + Minutes(5) + rng.NextInt(0, 59)
                              : now - rng.NextInt(0, 3600);
      ASSERT_TRUE(Paused(db, pred).ok());
    }
    int logins = rng.NextInt(0, 2);
    for (int i = 0; i < logins; ++i) {
      DbId db = static_cast<DbId>(rng.NextInt(0, kNumDbs - 1));
      ASSERT_TRUE(Paused(db, 0).ok());
      ASSERT_TRUE(service.EnqueueReactive(db, now).ok());
    }
    if (rng.NextBool(0.3)) {
      DbId db = static_cast<DbId>(rng.NextInt(0, kNumDbs - 1));
      if (metadata_->Contains(db)) {
        ASSERT_TRUE(service.EnqueueMaintenance(db, now).ok());
      }
    }
    if (rng.NextBool(0.1)) {
      ASSERT_TRUE(
          metadata_->Remove(static_cast<DbId>(rng.NextInt(0, kNumDbs - 1)))
              .ok());
    }
    ASSERT_TRUE(service.RunOnce(now).ok());
    ASSERT_TRUE(service.AccountingReconciles()) << "iteration " << iter;
    if (rng.NextBool(0.5)) {
      service.Pump(now + 30);
      ASSERT_TRUE(service.AccountingReconciles()) << "iteration " << iter;
    }
    for (int db = 0; db < kNumDbs; ++db) {
      if (rng.NextBool(0.3)) {
        service.CompleteWorkflow(static_cast<DbId>(db), now + 45);
      }
    }
  }
  const DiagnosticsReport& d = service.diagnostics();
  EXPECT_EQ(d.cls(ResumeClass::kReactiveLogin).shed(), 0u);
  EXPECT_GT(d.queue_wait.count(), 0u);
  EXPECT_TRUE(service.AccountingReconciles());
}

}  // namespace
}  // namespace prorp::controlplane
