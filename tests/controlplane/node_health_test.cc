#include "controlplane/node_health.h"

#include <gtest/gtest.h>

namespace prorp::controlplane {
namespace {

constexpr EpochSeconds kT0 = 1'000'000;

NodeHealthTracker::Options SmallOptions() {
  NodeHealthTracker::Options opt;
  opt.lease_ttl = 240;
  opt.suspect_after = 150;
  opt.dead_grace = 60;
  opt.rejoin_after = 300;
  opt.slow_p99_threshold = 0;
  opt.min_latency_samples = 4;
  return opt;
}

// Grants flowing on every renewal keep a node healthy indefinitely.
TEST(NodeHealthTest, GrantsKeepNodeHealthy) {
  NodeHealthTracker tracker(SmallOptions());
  tracker.Register(7, kT0);
  for (int i = 0; i < 20; ++i) {
    EpochSeconds t = kT0 + i * 60;
    tracker.OnRenewalSent(7, t, 240);
    tracker.OnLeaseGrant(7, /*latency=*/5, t);
    tracker.AdvanceTime(t);
    EXPECT_EQ(tracker.health(7), NodeHealth::kHealthy);
    EXPECT_TRUE(tracker.ShouldExtendLease(7));
  }
  EXPECT_EQ(tracker.lease_grants(7), 20u);
  EXPECT_EQ(tracker.stats().deaths, 0u);
}

// A fresh registration is not instantly suspect: the grant clock starts
// at registration time.
TEST(NodeHealthTest, FreshRegistrationStartsHealthy) {
  NodeHealthTracker tracker(SmallOptions());
  tracker.Register(3, kT0);
  tracker.AdvanceTime(kT0 + 100);
  EXPECT_EQ(tracker.health(3), NodeHealth::kHealthy);
}

// Grant silence past suspect_after demotes to suspect; a grant arriving
// while suspect recovers the node.
TEST(NodeHealthTest, GrantSilenceSuspectsThenGrantRecovers) {
  NodeHealthTracker tracker(SmallOptions());
  tracker.Register(1, kT0);
  tracker.AdvanceTime(kT0 + 150);
  EXPECT_EQ(tracker.health(1), NodeHealth::kHealthy);  // gap == bound: not yet
  tracker.AdvanceTime(kT0 + 151);
  EXPECT_EQ(tracker.health(1), NodeHealth::kSuspect);
  EXPECT_EQ(tracker.stats().suspects_missed_grants, 1u);
  EXPECT_FALSE(tracker.ShouldExtendLease(1));

  tracker.OnLeaseGrant(1, 5, kT0 + 200);
  EXPECT_EQ(tracker.health(1), NodeHealth::kHealthy);
  EXPECT_EQ(tracker.stats().recoveries, 1u);
  EXPECT_EQ(tracker.stats().deaths, 0u);
}

// Death requires BOTH the fence-safe bound to have passed and the
// suspicion to have dwelled dead_grace — whichever is later governs.
TEST(NodeHealthTest, DeathWaitsForFenceSafeAndGrace) {
  NodeHealthTracker tracker(SmallOptions());
  tracker.Register(2, kT0);
  // Real renewal at kT0+60: the node may believe it is leased until
  // kT0+300.
  tracker.OnRenewalSent(2, kT0 + 60, 240);
  EXPECT_EQ(tracker.fence_safe_at(2), kT0 + 300);

  tracker.AdvanceTime(kT0 + 151);  // suspect (silence since kT0)
  ASSERT_EQ(tracker.health(2), NodeHealth::kSuspect);

  // Grace (suspected_at + 60 = kT0 + 211) has passed, but the fence-safe
  // bound has not: still suspect.
  tracker.AdvanceTime(kT0 + 250);
  EXPECT_EQ(tracker.health(2), NodeHealth::kSuspect);
  EXPECT_FALSE(tracker.DeadAndFenced(2, kT0 + 250));

  // At exactly fence_safe the node may STILL believe it is leased.
  tracker.AdvanceTime(kT0 + 300);
  EXPECT_EQ(tracker.health(2), NodeHealth::kSuspect);

  tracker.AdvanceTime(kT0 + 301);
  EXPECT_EQ(tracker.health(2), NodeHealth::kDead);
  EXPECT_TRUE(tracker.DeadAndFenced(2, kT0 + 301));
  EXPECT_EQ(tracker.stats().deaths, 1u);
  EXPECT_EQ(tracker.TakeNewlyDead(), std::vector<uint32_t>{2});
  EXPECT_TRUE(tracker.TakeNewlyDead().empty());  // drained exactly once
}

// ttl=0 probes never advance the fence-safe bound — the probe channel
// exists precisely so a suspect node's lease can drain.
TEST(NodeHealthTest, ProbesDoNotAdvanceFenceSafe) {
  NodeHealthTracker tracker(SmallOptions());
  tracker.Register(4, kT0);
  tracker.OnRenewalSent(4, kT0, 240);
  EXPECT_EQ(tracker.fence_safe_at(4), kT0 + 240);
  for (int i = 1; i <= 10; ++i) {
    tracker.OnRenewalSent(4, kT0 + i * 60, /*ttl=*/0);
  }
  EXPECT_EQ(tracker.fence_safe_at(4), kT0 + 240);
}

// A delayed renewal cannot extend the fence past what the plane already
// accounted for: the bound is keyed to SEND time, and it only ratchets.
TEST(NodeHealthTest, FenceSafeIsMaxOverSendTimes) {
  NodeHealthTracker tracker(SmallOptions());
  tracker.Register(5, kT0);
  tracker.OnRenewalSent(5, kT0 + 120, 240);
  tracker.OnRenewalSent(5, kT0 + 60, 240);  // out-of-order bookkeeping
  EXPECT_EQ(tracker.fence_safe_at(5), kT0 + 360);
}

// Gray failure: p99 reply latency above the bar demotes a node even
// while its grants keep flowing; fast replies recover it.
TEST(NodeHealthTest, GrayFailureDemotesDespiteGrants) {
  NodeHealthTracker::Options opt = SmallOptions();
  opt.slow_p99_threshold = 50;
  opt.min_latency_samples = 4;
  NodeHealthTracker tracker(opt);
  tracker.Register(6, kT0);

  // Grants keep flowing, but replies are slow.
  for (int i = 0; i < 4; ++i) {
    tracker.OnLeaseGrant(6, /*latency=*/120, kT0 + i * 30);
  }
  EXPECT_GT(tracker.LatencyP99(6), 50);
  tracker.AdvanceTime(kT0 + 120);
  EXPECT_EQ(tracker.health(6), NodeHealth::kSuspect);
  EXPECT_EQ(tracker.stats().suspects_gray_failure, 1u);
  EXPECT_FALSE(tracker.ShouldExtendLease(6));

  // A grant alone does not recover a gray-suspect node while the score
  // is still over the bar...
  tracker.OnLeaseGrant(6, 120, kT0 + 150);
  EXPECT_EQ(tracker.health(6), NodeHealth::kSuspect);
  // ...but enough fast samples wash the ring clean and the next grant
  // re-admits it.
  for (int i = 0; i < 64; ++i) {
    tracker.OnAckLatency(6, 1, kT0 + 160 + i);
  }
  tracker.OnLeaseGrant(6, 1, kT0 + 230);
  EXPECT_EQ(tracker.health(6), NodeHealth::kHealthy);
}

// The latency score is not trusted below min_latency_samples.
TEST(NodeHealthTest, UnderFilledRingScoresZero) {
  NodeHealthTracker::Options opt = SmallOptions();
  opt.slow_p99_threshold = 50;
  opt.min_latency_samples = 8;
  NodeHealthTracker tracker(opt);
  tracker.Register(9, kT0);
  for (int i = 0; i < 7; ++i) tracker.OnAckLatency(9, 500, kT0 + i);
  EXPECT_EQ(tracker.LatencyP99(9), 0);
  tracker.AdvanceTime(kT0 + 10);
  EXPECT_EQ(tracker.health(9), NodeHealth::kHealthy);
}

// A dead node that grants again is only re-admitted after the rejoin
// cooldown — flapping hardware does not oscillate back into rotation.
TEST(NodeHealthTest, RejoinRequiresCooldown) {
  NodeHealthTracker tracker(SmallOptions());
  tracker.Register(8, kT0);
  tracker.OnRenewalSent(8, kT0, 240);
  tracker.AdvanceTime(kT0 + 151);
  tracker.AdvanceTime(kT0 + 241);
  ASSERT_EQ(tracker.health(8), NodeHealth::kDead);
  const EpochSeconds died_at = kT0 + 241;

  // Grants before the cooldown elapses change nothing.
  tracker.OnLeaseGrant(8, 5, died_at + 100);
  EXPECT_EQ(tracker.health(8), NodeHealth::kDead);
  EXPECT_EQ(tracker.stats().rejoins, 0u);

  tracker.OnLeaseGrant(8, 5, died_at + 300);
  EXPECT_EQ(tracker.health(8), NodeHealth::kHealthy);
  EXPECT_EQ(tracker.stats().rejoins, 1u);
  EXPECT_TRUE(tracker.ShouldExtendLease(8));
}

// Death declarations drain in ascending node id regardless of the order
// the nodes died in — failover order is deterministic.
TEST(NodeHealthTest, TakeNewlyDeadIsSorted) {
  NodeHealthTracker tracker(SmallOptions());
  tracker.Register(11, kT0);
  tracker.Register(3, kT0);
  tracker.Register(7, kT0);
  tracker.AdvanceTime(kT0 + 151);  // all suspect
  tracker.AdvanceTime(kT0 + 211);  // all dead (no fence bound recorded)
  EXPECT_EQ(tracker.TakeNewlyDead(), (std::vector<uint32_t>{3, 7, 11}));
}

// An unknown node reads healthy (the tracker only speaks for nodes the
// dispatcher actually leases).
TEST(NodeHealthTest, UnknownNodeReadsHealthy) {
  NodeHealthTracker tracker(SmallOptions());
  EXPECT_EQ(tracker.health(42), NodeHealth::kHealthy);
  EXPECT_EQ(tracker.fence_safe_at(42), 0u);
  EXPECT_FALSE(tracker.DeadAndFenced(42, kT0));
}

}  // namespace
}  // namespace prorp::controlplane
