#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "controlplane/checkpoint.h"
#include "controlplane/durable_control_plane.h"
#include "controlplane/journal.h"
#include "controlplane/management_service.h"
#include "controlplane/metadata_store.h"
#include "faults/crash_points.h"
#include "faults/fault_plan.h"

namespace prorp::controlplane {
namespace {

namespace fs = std::filesystem;
using policy::DbState;

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

ControlPlaneConfig SmallConfig() {
  ControlPlaneConfig config;
  config.prewarm_interval = 300;
  config.resume_operation_period = 60;
  config.retry_backoff_base = 60;
  config.retry_backoff_cap = 240;
  config.queue_capacity = 16;
  config.admission_control_enabled = true;
  config.deadline_hedging_enabled = true;
  return config;
}

constexpr EpochSeconds kT0 = 1'000'000;

/// Drives a deterministic mixed workload against a bare (journal-less)
/// metadata store + service pair: proactive selections, failures with
/// backoff, reactive logins, an in-flight asynchronous resume.
void DriveWorkload(MetadataStore* meta, ManagementService* svc) {
  for (DbId db = 1; db <= 12; ++db) {
    ASSERT_TRUE(meta->UpsertState(db, DbState::kPhysicallyPaused,
                                  kT0 + 400 + db * 60)
                    .ok());
  }
  ASSERT_TRUE(meta->UpsertState(20, DbState::kResumed, 0).ok());
  for (int step = 0; step < 8; ++step) {
    EpochSeconds now = kT0 + step * 60;
    if (step == 3) ASSERT_TRUE(svc->EnqueueReactive(2, now).ok());
    if (step == 5) ASSERT_TRUE(svc->EnqueueReactive(9, now).ok());
    ASSERT_TRUE(svc->RunOnce(now).ok());
    svc->Pump(now + 30);
  }
  ASSERT_TRUE(svc->AccountingReconciles());
}

// Satellite: checkpoint round-trip.  Save -> load into a fresh pair ->
// save again must be byte-identical, i.e. the codec loses nothing it
// writes.
TEST(CheckpointTest, SaveLoadSaveIsByteIdentical) {
  std::string dir = FreshDir("ckpt_roundtrip");
  auto meta = MetadataStore::Open();
  ASSERT_TRUE(meta.ok());
  int odd_fail = 0;
  ManagementService svc(
      meta->get(), SmallConfig(),
      [&](const ResumeAttempt& a, EpochSeconds) -> Status {
        if (a.db % 2 == 1 && odd_fail++ < 4) {
          return Status::Unavailable("transient");
        }
        return Status::OK();
      },
      /*max_attempts=*/4);
  DriveWorkload(meta->get(), &svc);

  std::string p1 = dir + "/c1.bin";
  ASSERT_TRUE(
      SaveCheckpoint(p1, **meta, svc, /*epoch=*/5, /*last_seq=*/42).ok());

  auto meta2 = MetadataStore::Open();
  ASSERT_TRUE(meta2.ok());
  ManagementService svc2(
      meta2->get(), SmallConfig(),
      [](const ResumeAttempt&, EpochSeconds) { return Status::OK(); },
      /*max_attempts=*/4);
  auto loaded = LoadCheckpoint(p1, meta2->get(), &svc2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->epoch, 5u);
  EXPECT_EQ(loaded->last_seq, 42u);

  // Observable state matches...
  EXPECT_EQ((*meta2)->size(), (*meta)->size());
  auto e1 = (*meta)->Export();
  auto e2 = (*meta2)->Export();
  ASSERT_EQ(e1.size(), e2.size());
  for (size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].db, e2[i].db);
    EXPECT_EQ(e1[i].state_code, e2[i].state_code);
    EXPECT_EQ(e1[i].predicted_start, e2[i].predicted_start);
  }
  EXPECT_EQ(svc2.pending_workflows(), svc.pending_workflows());
  EXPECT_EQ(svc2.in_flight(), svc.in_flight());
  EXPECT_EQ(svc2.total_resumed(), svc.total_resumed());
  EXPECT_EQ(svc2.diagnostics().stuck_workflows,
            svc.diagnostics().stuck_workflows);
  EXPECT_TRUE(svc2.AccountingReconciles());

  // ...and so do the bytes of a re-serialization.
  std::string p2 = dir + "/c2.bin";
  ASSERT_TRUE(SaveCheckpoint(p2, **meta2, svc2, 5, 42).ok());
  EXPECT_EQ(ReadFileBytes(p1), ReadFileBytes(p2));
}

// Satellite: a crash mid-checkpoint-write must leave the previous
// checkpoint untouched (atomic tmp -> rename publication), under both the
// generic snapshot_mid_copy point and the control-plane-specific one.
TEST(CheckpointTest, CrashMidWriteKeepsPreviousCheckpoint) {
  for (std::string_view point :
       {faults::kSnapshotMidCopy, faults::kCpCheckpointMidWrite}) {
    std::string dir =
        FreshDir(std::string("ckpt_midwrite_") + std::string(point));
    std::string path = dir + "/c.bin";
    auto meta = MetadataStore::Open();
    ASSERT_TRUE(meta.ok());
    ManagementService svc(
        meta->get(), SmallConfig(),
        [](const ResumeAttempt&, EpochSeconds) { return Status::OK(); });
    ASSERT_TRUE((*meta)->UpsertState(1, DbState::kPhysicallyPaused, 99).ok());
    ASSERT_TRUE(SaveCheckpoint(path, **meta, svc, 1, 10).ok());
    std::string before = ReadFileBytes(path);

    ASSERT_TRUE((*meta)->UpsertState(2, DbState::kResumed, 0).ok());
    auto& registry = faults::CrashPointRegistry::Global();
    registry.Reset();
    registry.Arm(point, 1, 0);
    EXPECT_FALSE(SaveCheckpoint(path, **meta, svc, 1, 20).ok());
    registry.Reset();

    EXPECT_EQ(ReadFileBytes(path), before);
    auto meta2 = MetadataStore::Open();
    ASSERT_TRUE(meta2.ok());
    ManagementService svc2(
        meta2->get(), SmallConfig(),
        [](const ResumeAttempt&, EpochSeconds) { return Status::OK(); });
    auto loaded = LoadCheckpoint(path, meta2->get(), &svc2);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded->last_seq, 10u);
    EXPECT_EQ((*meta2)->size(), 1u);
  }
}

TEST(DurableControlPlaneTest, ColdStartThenEpochsClimbAcrossRestarts) {
  std::string dir = FreshDir("dcp_epochs");
  DurableControlPlane::Options opt;
  opt.dir = dir;
  opt.config = SmallConfig();
  auto ok_cb = [](const ResumeAttempt&, EpochSeconds) { return Status::OK(); };
  auto not_resumed = [](DbId) { return false; };
  for (uint64_t expect_epoch = 1; expect_epoch <= 3; ++expect_epoch) {
    auto plane = DurableControlPlane::Open(opt, ok_cb, not_resumed,
                                           kT0 + expect_epoch);
    ASSERT_TRUE(plane.ok()) << plane.status().ToString();
    EXPECT_EQ((*plane)->recovery_stats().epoch, expect_epoch);
    EXPECT_TRUE((*plane)->healthy());
  }
}

// Tentpole guarantee 1: an acknowledged reactive login survives an
// abrupt control-plane death (no checkpoint, nothing but the journal).
TEST(DurableControlPlaneTest, AcceptedReactiveSurvivesAbruptDeath) {
  std::string dir = FreshDir("dcp_accept_survives");
  DurableControlPlane::Options opt;
  opt.dir = dir;
  opt.config = SmallConfig();
  int resumes = 0;
  auto count_cb = [&](const ResumeAttempt&, EpochSeconds) {
    ++resumes;
    return Status::OK();
  };
  auto not_resumed = [](DbId) { return false; };
  {
    auto plane = DurableControlPlane::Open(opt, count_cb, not_resumed, kT0);
    ASSERT_TRUE(plane.ok());
    ASSERT_TRUE((*plane)->metadata()
                    .UpsertState(7, DbState::kPhysicallyPaused, 0)
                    .ok());
    ASSERT_TRUE((*plane)->service().EnqueueReactive(7, kT0).ok());
    EXPECT_EQ((*plane)->service().pending_workflows(), 1u);
    // Death: the plane object is dropped without any orderly shutdown.
  }
  auto plane = DurableControlPlane::Open(opt, count_cb, not_resumed, kT0 + 60);
  ASSERT_TRUE(plane.ok());
  EXPECT_EQ((*plane)->service().pending_workflows(), 1u);
  (*plane)->service().Pump(kT0 + 60);
  EXPECT_EQ(resumes, 1);
  EXPECT_TRUE((*plane)->service().AccountingReconciles());
}

// Tentpole guarantee 2: a dispatch whose effect landed on the node but
// whose outcome was never journaled is reconciled as completed — the
// workflow is NOT re-dispatched (no double resume).
TEST(DurableControlPlaneTest, UnackedDispatchReconciledWithoutDoubleResume) {
  std::string dir = FreshDir("dcp_unacked_done");
  DurableControlPlane::Options opt;
  opt.dir = dir;
  opt.config = SmallConfig();
  std::map<DbId, int> resumes;
  bool node_has_it = false;
  auto cb = [&](const ResumeAttempt& a, EpochSeconds) {
    ++resumes[a.db];
    node_has_it = true;  // the node-side effect exists...
    return Status::OK();
  };
  auto node_resumed = [&](DbId) { return node_has_it; };
  {
    auto plane = DurableControlPlane::Open(opt, cb, node_resumed, kT0);
    ASSERT_TRUE(plane.ok());
    ASSERT_TRUE((*plane)->metadata()
                    .UpsertState(7, DbState::kPhysicallyPaused, 0)
                    .ok());
    ASSERT_TRUE((*plane)->service().EnqueueReactive(7, kT0).ok());
    auto& registry = faults::CrashPointRegistry::Global();
    registry.Reset();
    registry.Arm(faults::kCpDispatchPreAck, 1, 0);
    (*plane)->service().Pump(kT0);  // ...but the crash beats the outcome
    registry.Reset();
    EXPECT_FALSE((*plane)->healthy());
    EXPECT_EQ(resumes[7], 1);
  }
  auto plane = DurableControlPlane::Open(opt, cb, node_resumed, kT0 + 60);
  ASSERT_TRUE(plane.ok()) << plane.status().ToString();
  EXPECT_EQ((*plane)->recovery_stats().reconcile.completed, 1u);
  EXPECT_EQ((*plane)->recovery_stats().reconcile.requeued, 0u);
  // The reconciled workflow is accounted as a reactive-class resume.
  EXPECT_EQ(
      (*plane)->service().diagnostics().cls(ResumeClass::kReactiveLogin)
          .resumed,
      1u);
  for (int step = 1; step <= 4; ++step) {
    ASSERT_TRUE((*plane)->service().RunOnce(kT0 + 60 + step * 60).ok());
    (*plane)->service().Pump(kT0 + 90 + step * 60);
  }
  EXPECT_EQ(resumes[7], 1);  // never re-dispatched
  EXPECT_TRUE((*plane)->service().AccountingReconciles());
}

// Tentpole guarantee 2b: a dispatch that did NOT take effect on the node
// before the crash is requeued and eventually resumed exactly once.
TEST(DurableControlPlaneTest, UnackedDispatchRequeuedWhenNodeLostIt) {
  std::string dir = FreshDir("dcp_unacked_lost");
  DurableControlPlane::Options opt;
  opt.dir = dir;
  opt.config = SmallConfig();
  std::map<DbId, int> effects;
  bool fail_next = true;
  auto cb = [&](const ResumeAttempt& a, EpochSeconds) -> Status {
    if (fail_next) return Status::Unavailable("node never saw it");
    if (effects[a.db] > 0) {
      // Node-side idempotence: a hedge or stale attempt against an
      // already-resumed database does not resume it again.
      return Status::FailedPrecondition("already resumed");
    }
    ++effects[a.db];
    return Status::OK();
  };
  auto node_resumed = [&](DbId db) { return effects[db] > 0; };
  {
    auto plane = DurableControlPlane::Open(opt, cb, node_resumed, kT0);
    ASSERT_TRUE(plane.ok());
    ASSERT_TRUE((*plane)->metadata()
                    .UpsertState(7, DbState::kPhysicallyPaused, 0)
                    .ok());
    ASSERT_TRUE((*plane)->service().EnqueueReactive(7, kT0).ok());
    auto& registry = faults::CrashPointRegistry::Global();
    registry.Reset();
    registry.Arm(faults::kCpDispatchPreAck, 1, 0);
    (*plane)->service().Pump(kT0);
    registry.Reset();
    EXPECT_FALSE((*plane)->healthy());
  }
  fail_next = false;
  auto plane = DurableControlPlane::Open(opt, cb, node_resumed, kT0 + 60);
  ASSERT_TRUE(plane.ok());
  EXPECT_EQ((*plane)->recovery_stats().reconcile.requeued, 1u);
  for (int step = 1; step <= 4; ++step) {
    ASSERT_TRUE((*plane)->service().RunOnce(kT0 + 60 + step * 60).ok());
    (*plane)->service().Pump(kT0 + 90 + step * 60);
  }
  EXPECT_EQ(effects[7], 1);  // resumed exactly once, by the requeue
  EXPECT_TRUE((*plane)->service().AccountingReconciles());
}

// Satellite: restart amnesia.  An open breaker must recover open — a
// crash is not a path around the cool-down — and the outcome window
// restarts empty (conservative posture).
TEST(DurableControlPlaneTest, OpenBreakerSurvivesCrashOpen) {
  std::string dir = FreshDir("dcp_breaker");
  DurableControlPlane::Options opt;
  opt.dir = dir;
  opt.config = SmallConfig();
  opt.config.breaker_window = 4;
  opt.config.breaker_failure_ratio = 0.5;
  opt.config.breaker_open_duration = 600;
  opt.max_attempts = 10;
  bool fail_all = true;
  auto cb = [&](const ResumeAttempt&, EpochSeconds) -> Status {
    if (fail_all) return Status::Unavailable("node down");
    return Status::OK();
  };
  auto not_resumed = [](DbId) { return false; };
  EpochSeconds now = kT0;
  {
    auto plane = DurableControlPlane::Open(opt, cb, not_resumed, now);
    ASSERT_TRUE(plane.ok());
    for (DbId db = 1; db <= 6; ++db) {
      ASSERT_TRUE((*plane)->metadata()
                      .UpsertState(db, DbState::kPhysicallyPaused,
                                   kT0 + 360 + db)
                      .ok());
    }
    for (int step = 0; step < 6 &&
                       (*plane)->service().breaker_state() != BreakerState::kOpen;
         ++step) {
      now = kT0 + (step + 1) * 60;
      ASSERT_TRUE((*plane)->service().RunOnce(now).ok());
    }
    ASSERT_EQ((*plane)->service().breaker_state(), BreakerState::kOpen);
  }
  auto plane = DurableControlPlane::Open(opt, cb, not_resumed, now + 30);
  ASSERT_TRUE(plane.ok());
  // Recovered open; stays open until its cool-down elapses even though
  // the post-recovery outcome window is empty.
  EXPECT_EQ((*plane)->service().breaker_state(), BreakerState::kOpen);
  ASSERT_TRUE((*plane)->service().RunOnce(now + 60).ok());
  EXPECT_EQ((*plane)->service().breaker_state(), BreakerState::kOpen);
}

// Checkpoint + journal suffix replay: exactly-once across the
// checkpoint/truncate crash window (records folded into the checkpoint
// are skipped on replay).
TEST(DurableControlPlaneTest, CheckpointPlusSuffixReplaysExactlyOnce) {
  std::string dir = FreshDir("dcp_ckpt_suffix");
  DurableControlPlane::Options opt;
  opt.dir = dir;
  opt.config = SmallConfig();
  opt.checkpoint_every = 0;  // manual
  int resumes = 0;
  auto cb = [&](const ResumeAttempt&, EpochSeconds) {
    ++resumes;
    return Status::OK();
  };
  // Db 1's resume took effect before the crash; its in-flight entry must
  // survive recovery as in-flight, not be requeued.
  auto node_resumed = [](DbId db) { return db == 1; };
  {
    auto plane = DurableControlPlane::Open(opt, cb, node_resumed, kT0);
    ASSERT_TRUE(plane.ok());
    for (DbId db = 1; db <= 4; ++db) {
      ASSERT_TRUE((*plane)->metadata()
                      .UpsertState(db, DbState::kPhysicallyPaused, 0)
                      .ok());
    }
    ASSERT_TRUE((*plane)->service().EnqueueReactive(1, kT0).ok());
    (*plane)->service().Pump(kT0);
    ASSERT_TRUE((*plane)->Checkpoint().ok());
    // Post-checkpoint suffix: one more accepted workflow.
    ASSERT_TRUE((*plane)->service().EnqueueReactive(2, kT0 + 10).ok());
  }
  auto plane = DurableControlPlane::Open(opt, cb, node_resumed, kT0 + 60);
  ASSERT_TRUE(plane.ok());
  EXPECT_TRUE(plane.ok() && (*plane)->recovery_stats().checkpoint_loaded);
  // Db 1's resume came back from the checkpoint, exactly once.
  EXPECT_EQ(
      (*plane)->service().diagnostics().cls(ResumeClass::kReactiveLogin)
          .resumed,
      1u);
  EXPECT_EQ((*plane)->service().in_flight(), 1u);          // db 1, kept
  EXPECT_EQ((*plane)->service().pending_workflows(), 1u);  // from the suffix
  (*plane)->service().Pump(kT0 + 60);
  EXPECT_EQ(resumes, 2);
  EXPECT_TRUE((*plane)->service().AccountingReconciles());
}

// A journal append failure (ENOSPC) fences the service: nothing is
// acknowledged after the journal stopped recording, and recovery comes
// back exactly to the last acknowledged state.
TEST(DurableControlPlaneTest, JournalDiskFullFencesThenRecovers) {
  std::string dir = FreshDir("dcp_enospc");
  DurableControlPlane::Options opt;
  opt.dir = dir;
  opt.config = SmallConfig();
  faults::FaultPlan plan(11);
  auto cb = [](const ResumeAttempt&, EpochSeconds) { return Status::OK(); };
  auto not_resumed = [](DbId) { return false; };
  {
    auto plane = DurableControlPlane::Open(opt, cb, not_resumed, kT0);
    ASSERT_TRUE(plane.ok());
    ASSERT_TRUE((*plane)->metadata()
                    .UpsertState(7, DbState::kPhysicallyPaused, 0)
                    .ok());
    plan.FailNth(faults::FaultOp::kWalAppend, 1, faults::FaultKind::kDiskFull);
    (*plane)->journal().set_fault_plan(&plan);
    Status s = (*plane)->service().EnqueueReactive(7, kT0);
    EXPECT_FALSE(s.ok());  // the login was NOT acknowledged
    EXPECT_FALSE((*plane)->healthy());
    EXPECT_TRUE((*plane)->service().fenced());
    // Fenced: every later entry point refuses.
    EXPECT_FALSE((*plane)->service().EnqueueReactive(8, kT0).ok());
    EXPECT_EQ((*plane)->service().Pump(kT0), 0u);
  }
  auto plane = DurableControlPlane::Open(opt, cb, not_resumed, kT0 + 60);
  ASSERT_TRUE(plane.ok());
  // The unacknowledged login is (correctly) not there; the metadata
  // mutation that WAS acknowledged is.
  EXPECT_EQ((*plane)->service().pending_workflows(), 0u);
  EXPECT_TRUE((*plane)->metadata().Contains(7));
  EXPECT_TRUE((*plane)->service().AccountingReconciles());
}

}  // namespace
}  // namespace prorp::controlplane
