#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "controlplane/recovery_torture.h"
#include "faults/crash_points.h"

namespace prorp::controlplane {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void ExpectInvariants(const RecoveryTortureResult& r,
                      const std::string& label) {
  EXPECT_EQ(r.lost_reactive, 0u) << label << ": accepted reactive login lost";
  EXPECT_EQ(r.duplicate_resumes, 0u) << label << ": double resume";
  EXPECT_TRUE(r.accounting_ok) << label << ": accounting did not reconcile";
  EXPECT_FALSE(r.breaker_recovered_closed_early)
      << label << ": open breaker recovered closed";
}

TEST(RecoveryTortureTest, CleanRunHasNoRecoveries) {
  RecoveryTortureOptions opts;
  opts.dir = FreshDir("rt_clean");
  opts.seed = 1;
  auto result = RunRecoveryTorture(opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->crash_fired);
  EXPECT_EQ(result->recoveries, 0);
  EXPECT_GT(result->accepted_reactive, 0u);
  EXPECT_GT(result->total_resumed, 0u);
  ExpectInvariants(*result, "clean");
}

TEST(RecoveryTortureTest, CountingPassObservesEveryControlPlanePoint) {
  RecoveryTortureOptions opts;
  opts.dir = FreshDir("rt_observe");
  opts.seed = 2;
  opts.storm = true;
  auto hits = ObserveControlPlaneCrashPoints(opts);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  for (std::string_view point : faults::ControlPlaneCrashPoints()) {
    EXPECT_GT((*hits)[std::string(point)], 0u) << point;
  }
}

/// nth choices covering the first, a middle, and the last occurrence.
std::vector<uint64_t> NthChoices(uint64_t hits) {
  std::vector<uint64_t> nths{1};
  if (hits >= 3) nths.push_back((hits + 1) / 2);
  if (hits >= 2) nths.push_back(hits);
  return nths;
}

/// The crash-torture matrix of ISSUE 7: every control-plane crash point,
/// >= 8 seeds, under storm and outage pressure.  Each cell kills the
/// control plane at a crash site that the counting pass proved is
/// actually reached, recovers, and asserts the recovery guarantees.
TEST(RecoveryTortureTest, MatrixEveryPointManySeeds) {
  int cells = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RecoveryTortureOptions base;
    base.seed = seed;
    base.storm = (seed % 2 == 0);
    base.outage = (seed % 4 < 2);
    base.checkpoint_every = (seed % 3 == 0) ? 32 : 64;
    base.dir = FreshDir("rt_count_" + std::to_string(seed));
    auto hits = ObserveControlPlaneCrashPoints(base);
    ASSERT_TRUE(hits.ok()) << hits.status().ToString();
    for (std::string_view point : faults::ControlPlaneCrashPoints()) {
      uint64_t observed = (*hits)[std::string(point)];
      ASSERT_GT(observed, 0u) << "seed " << seed << " never reached "
                              << point;
      for (uint64_t nth : NthChoices(observed)) {
        RecoveryTortureOptions opts = base;
        opts.crash_point = std::string(point);
        opts.crash_nth = nth;
        // For the pre-sync point, odd seeds tear the frame (payload
        // selects a non-empty prefix), even seeds let it survive whole.
        if (point == faults::kCpJournalPreSync && seed % 2 == 1) {
          opts.crash_payload = 1 + seed;
        }
        std::string label = std::string(point) + "/seed" +
                            std::to_string(seed) + "/nth" +
                            std::to_string(nth);
        opts.dir = FreshDir("rt_" + std::to_string(seed) + "_" +
                            std::to_string(nth) + "_" +
                            std::string(point));
        auto result = RunRecoveryTorture(opts);
        ASSERT_TRUE(result.ok()) << label << ": "
                                 << result.status().ToString();
        EXPECT_TRUE(result->crash_fired) << label;
        EXPECT_GE(result->recoveries, 1) << label;
        ExpectInvariants(*result, label);
        ++cells;
      }
    }
  }
  // 8 seeds x 4 points x up to 3 nth choices.
  EXPECT_GE(cells, 32);
}

/// Journal I/O fault soak: every incarnation runs under a probabilistic
/// WAL append/sync fault plan (alternating plain I/O errors and ENOSPC),
/// so the run crashes and recovers many times at arbitrary transitions.
TEST(RecoveryTortureTest, JournalFaultSoakSurvivesRepeatedCrashes) {
  for (uint64_t seed : {3u, 11u, 27u}) {
    RecoveryTortureOptions opts;
    opts.dir = FreshDir("rt_soak_" + std::to_string(seed));
    opts.seed = seed;
    opts.storm = true;
    opts.outage = (seed % 2 == 1);
    opts.journal_fault_probability = 0.002;
    opts.max_recoveries = 128;
    auto result = RunRecoveryTorture(opts);
    ASSERT_TRUE(result.ok())
        << "seed " << seed << ": " << result.status().ToString();
    EXPECT_GE(result->recoveries, 1) << "seed " << seed;
    ExpectInvariants(*result, "soak/seed" + std::to_string(seed));
  }
}

}  // namespace
}  // namespace prorp::controlplane
