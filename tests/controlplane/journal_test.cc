#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "controlplane/journal.h"
#include "faults/crash_points.h"
#include "faults/fault_plan.h"

namespace prorp::controlplane {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

JournalRecord SampleRecord(uint64_t i) {
  JournalRecord rec;
  rec.event = JournalEvent::kAccepted;
  rec.epoch = 3;
  rec.db = static_cast<DbId>(100 + i);
  rec.cls = static_cast<uint8_t>(i % 4);
  rec.flags = kJfReactive | kJfFirstWait;
  rec.attempt = static_cast<int32_t>(i) - 2;
  rec.time = 1'000'000 + static_cast<EpochSeconds>(i);
  rec.enqueued_at = rec.time;
  rec.not_before = rec.time + 60;
  rec.deadline = rec.time + 120;
  rec.predicted_start = rec.time + 600;
  rec.stats = {i, i * 2, i * 3, i * 4};
  return rec;
}

TEST(ControlPlaneJournalTest, AppendReplayRoundTrip) {
  std::string path = FreshDir("journal_roundtrip") + "/j.wal";
  auto journal =
      ControlPlaneJournal::Open(path, ControlPlaneJournal::SyncMode::kDurable);
  ASSERT_TRUE(journal.ok());
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE((*journal)->Append(SampleRecord(i)).ok());
  }
  EXPECT_EQ((*journal)->appended_records(), 20u);
  EXPECT_EQ((*journal)->next_seq(), 21u);

  std::vector<uint64_t> seqs;
  std::vector<JournalRecord> records;
  auto replayed = ControlPlaneJournal::Replay(
      path, [&](uint64_t seq, const JournalRecord& rec) {
        seqs.push_back(seq);
        records.push_back(rec);
        return Status::OK();
      });
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, 20u);
  for (uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(seqs[i], i + 1);  // monotonic, 1-based
    JournalRecord want = SampleRecord(i);
    const JournalRecord& got = records[i];
    EXPECT_EQ(got.event, want.event);
    EXPECT_EQ(got.epoch, want.epoch);
    EXPECT_EQ(got.db, want.db);
    EXPECT_EQ(got.cls, want.cls);
    EXPECT_EQ(got.flags, want.flags);
    EXPECT_EQ(got.attempt, want.attempt);
    EXPECT_EQ(got.time, want.time);
    EXPECT_EQ(got.enqueued_at, want.enqueued_at);
    EXPECT_EQ(got.not_before, want.not_before);
    EXPECT_EQ(got.deadline, want.deadline);
    EXPECT_EQ(got.predicted_start, want.predicted_start);
    EXPECT_EQ(got.stats, want.stats);
  }
}

TEST(ControlPlaneJournalTest, ReplayOfMissingFileIsEmpty) {
  std::string path = FreshDir("journal_missing") + "/nope.wal";
  auto replayed = ControlPlaneJournal::Replay(
      path, [&](uint64_t, const JournalRecord&) { return Status::OK(); });
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, 0u);
}

TEST(ControlPlaneJournalTest, TruncateKeepsSequenceMonotonic) {
  std::string path = FreshDir("journal_truncate") + "/j.wal";
  auto journal =
      ControlPlaneJournal::Open(path, ControlPlaneJournal::SyncMode::kDurable);
  ASSERT_TRUE(journal.ok());
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE((*journal)->Append(SampleRecord(i)).ok());
  }
  ASSERT_TRUE((*journal)->TruncateAfterCheckpoint().ok());
  ASSERT_TRUE((*journal)->Append(SampleRecord(99)).ok());
  std::vector<uint64_t> seqs;
  auto replayed = ControlPlaneJournal::Replay(
      path, [&](uint64_t seq, const JournalRecord&) {
        seqs.push_back(seq);
        return Status::OK();
      });
  ASSERT_TRUE(replayed.ok());
  // Only the post-truncation record remains, and its sequence number
  // continued past the truncated prefix: record identity never repeats.
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0], 6u);
}

TEST(ControlPlaneJournalTest, TornTailIsTrimmedOnReplay) {
  std::string path = FreshDir("journal_torn") + "/j.wal";
  {
    auto journal = ControlPlaneJournal::Open(
        path, ControlPlaneJournal::SyncMode::kDurable);
    ASSERT_TRUE(journal.ok());
    for (uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE((*journal)->Append(SampleRecord(i)).ok());
    }
    // Arm the pre-sync crash point with a payload that tears the frame:
    // the record is cut to a non-zero prefix, as if the crash hit
    // mid-write.
    auto& registry = faults::CrashPointRegistry::Global();
    registry.Reset();
    registry.Arm(faults::kCpJournalPreSync, 1, /*payload=*/7);
    Status s = (*journal)->Append(SampleRecord(3));
    EXPECT_FALSE(s.ok());
    EXPECT_FALSE((*journal)->healthy());
    // Fail-stop: later appends refuse with the latched status.
    Status again = (*journal)->Append(SampleRecord(4));
    EXPECT_EQ(again.code(), s.code());
    registry.Reset();
  }
  std::vector<uint64_t> seqs;
  auto replayed = ControlPlaneJournal::Replay(
      path, [&](uint64_t seq, const JournalRecord&) {
        seqs.push_back(seq);
        return Status::OK();
      });
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  // The torn 4th record is trimmed; the intact prefix survives.
  EXPECT_EQ(*replayed, 3u);
  EXPECT_EQ(seqs, (std::vector<uint64_t>{1, 2, 3}));
}

TEST(ControlPlaneJournalTest, FullFrameSurvivesPreSyncCrash) {
  std::string path = FreshDir("journal_presync_full") + "/j.wal";
  {
    auto journal = ControlPlaneJournal::Open(
        path, ControlPlaneJournal::SyncMode::kDurable);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(SampleRecord(0)).ok());
    // Payload 0: the frame reached the medium intact, the crash only beat
    // the acknowledgment.  Replay must surface the record (recovery then
    // reconciles it), because the transition may have had side effects.
    auto& registry = faults::CrashPointRegistry::Global();
    registry.Reset();
    registry.Arm(faults::kCpJournalPreSync, 1, /*payload=*/0);
    EXPECT_FALSE((*journal)->Append(SampleRecord(1)).ok());
    registry.Reset();
  }
  auto replayed = ControlPlaneJournal::Replay(
      path, [&](uint64_t, const JournalRecord&) { return Status::OK(); });
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, 2u);  // the unacknowledged record IS durable
}

TEST(ControlPlaneJournalTest, DiskFullFailsStopCleanly) {
  std::string path = FreshDir("journal_enospc") + "/j.wal";
  auto journal =
      ControlPlaneJournal::Open(path, ControlPlaneJournal::SyncMode::kDurable);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append(SampleRecord(0)).ok());

  faults::FaultPlan plan(7);
  plan.FailNth(faults::FaultOp::kWalAppend, 1, faults::FaultKind::kDiskFull);
  (*journal)->set_fault_plan(&plan);
  Status s = (*journal)->Append(SampleRecord(1));
  EXPECT_TRUE(s.IsIoError());
  EXPECT_NE(s.message().find("disk full"), std::string::npos)
      << s.ToString();
  EXPECT_FALSE((*journal)->healthy());
  // Latched dead even after the plan would allow appends again.
  (*journal)->set_fault_plan(nullptr);
  EXPECT_FALSE((*journal)->Append(SampleRecord(2)).ok());

  // The failed append left no partial frame behind.
  auto replayed = ControlPlaneJournal::Replay(
      path, [&](uint64_t, const JournalRecord&) { return Status::OK(); });
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, 1u);
}

}  // namespace
}  // namespace prorp::controlplane
