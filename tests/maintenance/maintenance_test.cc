#include "maintenance/scheduler.h"

#include <gtest/gtest.h>

#include "forecast/fast_predictor.h"
#include "history/mem_history_store.h"
#include "workload/patterns.h"

namespace prorp::maintenance {
namespace {

constexpr EpochSeconds kT0 = Days(1005);  // Monday 00:00 UTC

/// 9:00-17:00 every day, deterministic.
workload::DbTrace StrictDailyTrace(EpochSeconds from, EpochSeconds to) {
  workload::DbTrace trace;
  for (EpochSeconds day = StartOfDay(from); day < to; day += Days(1)) {
    trace.sessions.push_back({day + Hours(9), day + Hours(17)});
  }
  trace.created_at = trace.sessions.front().start;
  return trace;
}

TEST(FixedHourSchedulerTest, PicksTheConfiguredHour) {
  FixedHourScheduler scheduler(Hours(3));
  history::MemHistoryStore empty;
  MaintenanceOp op;
  op.window_start = kT0;
  op.window_end = kT0 + Days(1);
  op.duration = Minutes(10);
  auto t = scheduler.Schedule(op, empty);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, kT0 + Hours(3));
}

TEST(FixedHourSchedulerTest, ClampsIntoWindow) {
  FixedHourScheduler scheduler(Hours(3));
  history::MemHistoryStore empty;
  MaintenanceOp op;
  op.window_start = kT0 + Hours(5);  // 03:00 already passed
  op.window_end = kT0 + Hours(8);
  op.duration = Minutes(10);
  auto t = scheduler.Schedule(op, empty);
  ASSERT_TRUE(t.ok());
  EXPECT_GE(*t, op.window_start);
  EXPECT_LE(*t + op.duration, op.window_end);
}

TEST(FixedHourSchedulerTest, RejectsTinyWindow) {
  FixedHourScheduler scheduler;
  history::MemHistoryStore empty;
  MaintenanceOp op;
  op.window_start = kT0;
  op.window_end = kT0 + Minutes(5);
  op.duration = Minutes(10);
  EXPECT_FALSE(scheduler.Schedule(op, empty).ok());
}

TEST(PredictionAlignedSchedulerTest, LandsInsidePredictedWindow) {
  history::MemHistoryStore history;
  for (int d = 1; d <= 28; ++d) {
    ASSERT_TRUE(
        history.InsertHistory(kT0 - Days(d) + Hours(9), history::kEventLogin)
            .ok());
    ASSERT_TRUE(history
                    .InsertHistory(kT0 - Days(d) + Hours(17),
                                   history::kEventLogout)
                    .ok());
  }
  PredictionConfig cfg;
  forecast::FastPredictor predictor(cfg);
  PredictionAlignedScheduler scheduler(&predictor);
  MaintenanceOp op;
  op.window_start = kT0;
  op.window_end = kT0 + Days(1);
  op.duration = Minutes(10);
  auto t = scheduler.Schedule(op, history);
  ASSERT_TRUE(t.ok());
  // Scheduled during the predicted business window, not at 03:00.
  EXPECT_GE(*t, kT0 + Hours(8));
  EXPECT_LE(*t, kT0 + Hours(18));
}

TEST(PredictionAlignedSchedulerTest, FallsBackWithoutHistory) {
  history::MemHistoryStore empty;
  PredictionConfig cfg;
  forecast::FastPredictor predictor(cfg);
  PredictionAlignedScheduler scheduler(&predictor, Hours(3));
  MaintenanceOp op;
  op.window_start = kT0;
  op.window_end = kT0 + Days(1);
  op.duration = Minutes(10);
  auto t = scheduler.Schedule(op, empty);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, kT0 + Hours(3));  // the fixed-hour fallback
}

TEST(ReplayMaintenanceTest, PredictionAlignedAvoidsDedicatedResumes) {
  // 28 days of warm-up history + 7 evaluation days.
  EpochSeconds from = kT0;
  EpochSeconds to = kT0 + Days(7);
  workload::DbTrace trace = StrictDailyTrace(kT0 - Days(28), to);

  FixedHourScheduler fixed(Hours(3));  // 03:00: customer always offline
  auto naive = ReplayMaintenance(trace, fixed, from, to);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive->ops_total, 7u);
  EXPECT_EQ(naive->ops_during_activity, 0u);
  EXPECT_EQ(naive->ops_dedicated_resume, 7u);

  PredictionConfig cfg;
  forecast::FastPredictor predictor(cfg);
  PredictionAlignedScheduler aligned(&predictor);
  auto smart = ReplayMaintenance(trace, aligned, from, to);
  ASSERT_TRUE(smart.ok());
  EXPECT_EQ(smart->ops_total, 7u);
  // A strict daily pattern is fully predictable: every op lands while the
  // customer is online.
  EXPECT_EQ(smart->ops_during_activity, 7u)
      << "co-scheduled " << smart->CoScheduledPct() << "%";
  EXPECT_DOUBLE_EQ(smart->CoScheduledPct(), 100.0);
}

TEST(ReplayMaintenanceTest, MixedPatternStillImproves) {
  Rng rng(21);
  workload::DbTrace trace = workload::GenerateTrace(
      workload::PatternType::kDailyBusiness, 0, kT0 - Days(28),
      kT0 + Days(7), rng);
  FixedHourScheduler fixed(Hours(3));
  PredictionConfig cfg;
  forecast::FastPredictor predictor(cfg);
  PredictionAlignedScheduler aligned(&predictor);
  auto naive = ReplayMaintenance(trace, fixed, kT0, kT0 + Days(7));
  auto smart = ReplayMaintenance(trace, aligned, kT0, kT0 + Days(7));
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(smart.ok());
  EXPECT_GE(smart->ops_during_activity, naive->ops_during_activity);
}

TEST(ReplayMaintenanceTest, Validation) {
  workload::DbTrace trace;
  FixedHourScheduler fixed;
  EXPECT_FALSE(ReplayMaintenance(trace, fixed, kT0, kT0).ok());
}

TEST(MaintenanceOpKindTest, Names) {
  EXPECT_EQ(MaintenanceOpKindName(MaintenanceOp::Kind::kBackup), "backup");
  EXPECT_EQ(MaintenanceOpKindName(MaintenanceOp::Kind::kSoftwareUpdate),
            "software_update");
}

}  // namespace
}  // namespace prorp::maintenance
