#include "net/transport.h"

#include <vector>

#include <gtest/gtest.h>

#include "faults/fault_plan.h"
#include "net/fault_injecting_transport.h"
#include "net/message.h"

namespace prorp::net {
namespace {

using faults::FaultKind;
using faults::FaultOp;
using faults::FaultPlan;

/// Records every delivery an endpoint sees.
struct Sink {
  std::vector<Envelope> received;
  std::vector<EpochSeconds> at;

  Transport::Handler Handler() {
    return [this](const Envelope& env, EpochSeconds now) {
      received.push_back(env);
      at.push_back(now);
    };
  }
};

Envelope Request(EndpointId dst, uint64_t rid, EpochSeconds sent_at) {
  Envelope env;
  env.type = MessageType::kResumeRequest;
  env.src = kControlPlaneEndpoint;
  env.dst = dst;
  env.request_id = rid;
  env.sent_at = sent_at;
  return env;
}

TEST(InProcessTransportTest, DeliversInlineAtSendTime) {
  InProcessTransport transport;
  Sink sink;
  transport.RegisterEndpoint(1, sink.Handler());

  transport.Send(Request(1, 7, 100));

  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0].request_id, 7u);
  EXPECT_EQ(sink.at[0], 100);
  EXPECT_EQ(transport.stats().sent, 1u);
  EXPECT_EQ(transport.stats().delivered, 1u);
  EXPECT_TRUE(transport.Idle());
}

TEST(InProcessTransportTest, UnregisteredDestinationIsCountedUnroutable) {
  InProcessTransport transport;
  transport.Send(Request(9, 1, 0));
  EXPECT_EQ(transport.stats().unroutable, 1u);
  EXPECT_EQ(transport.stats().delivered, 0u);
}

TEST(FaultInjectingTransportTest, NullPlanDeliversEverything) {
  FaultInjectingTransport transport(nullptr);
  Sink sink;
  transport.RegisterEndpoint(1, sink.Handler());
  for (uint64_t i = 0; i < 10; ++i) transport.Send(Request(1, i, 0));
  EXPECT_EQ(sink.received.size(), 10u);
  EXPECT_EQ(transport.stats().dropped, 0u);
  EXPECT_TRUE(transport.Idle());
}

TEST(FaultInjectingTransportTest, DropLosesExactlyTheTriggeredMessage) {
  FaultPlan plan(1);
  plan.FailNth(FaultOp::kMsgRequest, 2, FaultKind::kMsgDrop);
  FaultInjectingTransport transport(&plan);
  Sink sink;
  transport.RegisterEndpoint(1, sink.Handler());

  transport.Send(Request(1, 1, 0));
  transport.Send(Request(1, 2, 0));  // dropped
  transport.Send(Request(1, 3, 0));

  ASSERT_EQ(sink.received.size(), 2u);
  EXPECT_EQ(sink.received[0].request_id, 1u);
  EXPECT_EQ(sink.received[1].request_id, 3u);
  EXPECT_EQ(transport.stats().dropped, 1u);
  EXPECT_EQ(transport.stats().sent, 3u);
}

TEST(FaultInjectingTransportTest, DuplicateDeliversTwice) {
  FaultPlan plan(1);
  plan.FailNth(FaultOp::kMsgRequest, 1, FaultKind::kMsgDuplicate);
  FaultInjectingTransport transport(&plan);
  Sink sink;
  transport.RegisterEndpoint(1, sink.Handler());

  transport.Send(Request(1, 5, 0));

  ASSERT_EQ(sink.received.size(), 2u);
  EXPECT_EQ(sink.received[0].request_id, 5u);
  EXPECT_EQ(sink.received[1].request_id, 5u);
  EXPECT_EQ(transport.stats().duplicated, 1u);
  EXPECT_EQ(transport.stats().delivered, 2u);
}

TEST(FaultInjectingTransportTest, DelayDefersUntilDeliverDue) {
  FaultPlan plan(1);
  plan.FailNthWithArg(FaultOp::kMsgRequest, 1, FaultKind::kMsgDelay,
                      /*arg=*/0);
  FaultInjectingTransport::Options opt;
  opt.delay_min = 40;
  opt.delay_max = 40;
  FaultInjectingTransport transport(&plan, opt);
  Sink sink;
  transport.RegisterEndpoint(1, sink.Handler());

  transport.Send(Request(1, 1, 100));
  EXPECT_TRUE(sink.received.empty());
  EXPECT_FALSE(transport.Idle());
  EXPECT_EQ(transport.next_delivery_at(), 140);

  transport.DeliverDue(139);  // not due yet
  EXPECT_TRUE(sink.received.empty());

  transport.DeliverDue(140);
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.at[0], 140);
  EXPECT_TRUE(transport.Idle());
}

TEST(FaultInjectingTransportTest, DelayedMessageIsOvertaken) {
  // Reordering is emergent: the delayed first message arrives after the
  // undelayed second one.
  FaultPlan plan(1);
  plan.FailNthWithArg(FaultOp::kMsgRequest, 1, FaultKind::kMsgDelay, 0);
  FaultInjectingTransport::Options opt;
  opt.delay_min = 60;
  opt.delay_max = 60;
  FaultInjectingTransport transport(&plan, opt);
  Sink sink;
  transport.RegisterEndpoint(1, sink.Handler());

  transport.Send(Request(1, 1, 100));  // delayed to 160
  transport.Send(Request(1, 2, 110));  // inline
  transport.DeliverDue(200);

  ASSERT_EQ(sink.received.size(), 2u);
  EXPECT_EQ(sink.received[0].request_id, 2u);
  EXPECT_EQ(sink.received[1].request_id, 1u);
  EXPECT_EQ(transport.stats().delayed, 1u);
}

TEST(FaultInjectingTransportTest, DelayedDeliveriesKeepDueThenSendOrder) {
  FaultPlan plan(1);
  // Delay every request by a fixed 50s: equal due times must surface in
  // send order.
  plan.FailNthWithArg(FaultOp::kMsgRequest, 1, FaultKind::kMsgDelay, 0);
  plan.FailNthWithArg(FaultOp::kMsgRequest, 2, FaultKind::kMsgDelay, 0);
  plan.FailNthWithArg(FaultOp::kMsgRequest, 3, FaultKind::kMsgDelay, 0);
  FaultInjectingTransport::Options opt;
  opt.delay_min = 50;
  opt.delay_max = 50;
  FaultInjectingTransport transport(&plan, opt);
  Sink sink;
  transport.RegisterEndpoint(1, sink.Handler());

  transport.Send(Request(1, 1, 100));
  transport.Send(Request(1, 2, 100));
  transport.Send(Request(1, 3, 100));
  transport.DeliverDue(150);

  ASSERT_EQ(sink.received.size(), 3u);
  EXPECT_EQ(sink.received[0].request_id, 1u);
  EXPECT_EQ(sink.received[1].request_id, 2u);
  EXPECT_EQ(sink.received[2].request_id, 3u);
}

TEST(FaultInjectingTransportTest, DiskKindsAreIgnoredAtMessageSites) {
  FaultPlan plan(1);
  plan.FailNth(FaultOp::kMsgRequest, 1, FaultKind::kIoError);
  plan.FailNth(FaultOp::kMsgRequest, 2, FaultKind::kBitFlip);
  FaultInjectingTransport transport(&plan);
  Sink sink;
  transport.RegisterEndpoint(1, sink.Handler());

  transport.Send(Request(1, 1, 0));
  transport.Send(Request(1, 2, 0));

  EXPECT_EQ(sink.received.size(), 2u);
  EXPECT_EQ(transport.stats().dropped, 0u);
}

TEST(FaultInjectingTransportTest, SymmetricPartitionCutsBothDirections) {
  FaultInjectingTransport transport(nullptr);
  Sink plane;
  Sink node;
  transport.RegisterEndpoint(kControlPlaneEndpoint, plane.Handler());
  transport.RegisterEndpoint(1, node.Handler());
  PartitionSpec p;
  p.from = 100;
  p.until = 200;
  p.direction = PartitionSpec::Direction::kBoth;
  transport.AddPartition(p);

  transport.Send(Request(1, 1, 150));  // plane -> node, inside window
  Envelope reply;
  reply.type = MessageType::kAck;
  reply.src = 1;
  reply.dst = kControlPlaneEndpoint;
  reply.sent_at = 150;
  transport.Send(reply);  // node -> plane, inside window

  EXPECT_TRUE(node.received.empty());
  EXPECT_TRUE(plane.received.empty());
  EXPECT_EQ(transport.stats().partitioned, 2u);

  // Outside the window both directions flow again.
  transport.Send(Request(1, 2, 200));
  reply.sent_at = 200;
  transport.Send(reply);
  EXPECT_EQ(node.received.size(), 1u);
  EXPECT_EQ(plane.received.size(), 1u);
}

TEST(FaultInjectingTransportTest, OneWayPartitionLosesOnlyOneDirection) {
  FaultInjectingTransport transport(nullptr);
  Sink plane;
  Sink node;
  transport.RegisterEndpoint(kControlPlaneEndpoint, plane.Handler());
  transport.RegisterEndpoint(1, node.Handler());
  PartitionSpec p;
  p.from = 0;
  p.until = 1000;
  p.direction = PartitionSpec::Direction::kToNodes;
  transport.AddPartition(p);

  transport.Send(Request(1, 1, 10));  // lost
  Envelope reply;
  reply.type = MessageType::kNack;
  reply.src = 1;
  reply.dst = kControlPlaneEndpoint;
  reply.sent_at = 10;
  transport.Send(reply);  // still arrives

  EXPECT_TRUE(node.received.empty());
  EXPECT_EQ(plane.received.size(), 1u);
  EXPECT_EQ(transport.stats().partitioned, 1u);
}

TEST(FaultInjectingTransportTest, PartitionAppliesOnlyToItsNodeRange) {
  FaultInjectingTransport transport(nullptr);
  Sink node1;
  Sink node3;
  transport.RegisterEndpoint(1, node1.Handler());
  transport.RegisterEndpoint(3, node3.Handler());
  PartitionSpec p;
  p.from = 0;
  p.until = 1000;
  p.direction = PartitionSpec::Direction::kBoth;
  p.first_node = 1;
  p.last_node = 2;
  transport.AddPartition(p);

  transport.Send(Request(1, 1, 10));  // node 1: partitioned
  transport.Send(Request(3, 2, 10));  // node 3: outside the range

  EXPECT_TRUE(node1.received.empty());
  EXPECT_EQ(node3.received.size(), 1u);
}

TEST(FaultInjectingTransportTest, SameSeedSamePlanIsBitIdentical) {
  // A probabilistic plan draws only from its own seed, so two identical
  // (seed, message sequence) pairs fault identically.
  TransportStats stats[2];
  std::vector<uint64_t> delivered[2];
  for (int run = 0; run < 2; ++run) {
    FaultPlan plan(99);
    plan.FailWithProbability(FaultOp::kMsgRequest, 0.3, FaultKind::kMsgDrop);
    FaultInjectingTransport transport(&plan);
    transport.RegisterEndpoint(1, [&](const Envelope& env, EpochSeconds) {
      delivered[run].push_back(env.request_id);
    });
    for (uint64_t i = 0; i < 200; ++i) transport.Send(Request(1, i, 0));
    stats[run] = transport.stats();
  }
  EXPECT_GT(stats[0].dropped, 0u);
  EXPECT_EQ(stats[0].dropped, stats[1].dropped);
  EXPECT_EQ(delivered[0], delivered[1]);
}

TEST(FaultInjectingTransportTest, SwappingThePlanOutStopsFaulting) {
  FaultPlan plan(1);
  plan.FailWithProbability(FaultOp::kMsgRequest, 1.0, FaultKind::kMsgDrop);
  FaultInjectingTransport transport(&plan);
  Sink sink;
  transport.RegisterEndpoint(1, sink.Handler());

  transport.Send(Request(1, 1, 0));
  EXPECT_TRUE(sink.received.empty());

  transport.set_fault_plan(nullptr);
  transport.Send(Request(1, 2, 0));
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0].request_id, 2u);
}

}  // namespace
}  // namespace prorp::net
