// Fleet-level regression for the transport integration: routing every
// control-plane resume dispatch through the typed message transport
// (SimOptions::use_transport) must be behavior-neutral on a fault-free
// wire.  Acks arrive inline, so the transported run replays the exact
// decision sequence of the legacy direct-call run — bit for bit, across
// the in-memory, durable-journal, and mid-run-crash configurations.

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/fleet_simulator.h"
#include "workload/region.h"

namespace prorp::sim {
namespace {

using policy::PolicyMode;

constexpr EpochSeconds kT0 = Days(1004);  // a Monday
constexpr EpochSeconds kMeasureFrom = kT0 + Days(30);
constexpr EpochSeconds kEnd = kT0 + Days(35);

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

SimOptions BaseOptions() {
  SimOptions options;
  options.mode = PolicyMode::kProactive;
  options.measure_from = kMeasureFrom;
  options.end = kEnd;
  options.seed = 7;
  // Exercise retry/mitigation paths so the identity check covers the
  // failure plumbing, not just the happy path.
  options.eviction_per_hour = 0.1;
  options.resume_failure_probability = 0.02;
  return options;
}

void ExpectIdenticalRuns(const SimReport& a, const SimReport& b) {
  EXPECT_EQ(a.kpi.logins_total, b.kpi.logins_total);
  EXPECT_EQ(a.kpi.logins_available, b.kpi.logins_available);
  EXPECT_EQ(a.kpi.logins_reactive, b.kpi.logins_reactive);
  EXPECT_EQ(a.kpi.proactive_resumes, b.kpi.proactive_resumes);
  EXPECT_EQ(a.kpi.physical_pauses, b.kpi.physical_pauses);
  EXPECT_EQ(a.kpi.forced_evictions, b.kpi.forced_evictions);
  EXPECT_EQ(a.kpi.predictions, b.kpi.predictions);
  EXPECT_DOUBLE_EQ(a.usage.active, b.usage.active);
  EXPECT_DOUBLE_EQ(a.usage.reclaimed, b.usage.reclaimed);
  EXPECT_DOUBLE_EQ(a.usage.unavailable, b.usage.unavailable);
  EXPECT_EQ(a.recorder.size(), b.recorder.size());
  EXPECT_EQ(a.diagnostics.observed_iterations,
            b.diagnostics.observed_iterations);
  EXPECT_EQ(a.diagnostics.mitigated, b.diagnostics.mitigated);
  EXPECT_EQ(a.diagnostics.incidents, b.diagnostics.incidents);
  EXPECT_EQ(a.robustness.resume_failures_injected,
            b.robustness.resume_failures_injected);
}

TEST(TransportSimTest, FaultFreeTransportMatchesDirectCallBitExactly) {
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 40, kT0,
                                        kEnd, 13);
  SimOptions direct = BaseOptions();
  SimOptions transported = direct;
  transported.use_transport = true;
  auto a = RunFleetSimulation(traces, direct);
  auto b = RunFleetSimulation(traces, transported);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  // The path under test actually ran.
  EXPECT_GT(b->kpi.proactive_resumes, 0u);
  EXPECT_GT(b->robustness.resume_failures_injected, 0u);
  // Fault-free acks resolve inline: the service never parks a dispatch.
  EXPECT_EQ(b->diagnostics.unacked_dispatches, 0u);
  EXPECT_EQ(b->diagnostics.dispatch_timeouts, 0u);
  EXPECT_EQ(b->diagnostics.late_acks, 0u);
  ExpectIdenticalRuns(*a, *b);
}

TEST(TransportSimTest, TransportIsNeutralUnderDurableJournal) {
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 40, kT0,
                                        kEnd, 13);
  SimOptions direct = BaseOptions();
  direct.control_plane_journal_dir = FreshDir("net_sim_journal_direct");
  direct.control_plane_checkpoint_every = 512;
  SimOptions transported = direct;
  transported.control_plane_journal_dir =
      FreshDir("net_sim_journal_transport");
  transported.use_transport = true;
  auto a = RunFleetSimulation(traces, direct);
  auto b = RunFleetSimulation(traces, transported);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(b->control_plane_recoveries, 0u);
  EXPECT_GT(b->kpi.proactive_resumes, 0u);
  ExpectIdenticalRuns(*a, *b);
}

TEST(TransportSimTest, TransportSurvivesControlPlaneCrash) {
  // The transport stack outlives the control-plane incarnation: after the
  // mid-run crash the dispatcher re-points at the recovered service and
  // the node fence moves to the new epoch.  KPIs must still match a
  // crash-free transported run bit for bit.
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 40, kT0,
                                        kEnd, 13);
  SimOptions smooth = BaseOptions();
  smooth.use_transport = true;
  smooth.control_plane_journal_dir = FreshDir("net_sim_crash_smooth");
  smooth.control_plane_checkpoint_every = 512;
  SimOptions crashed = smooth;
  crashed.control_plane_journal_dir = FreshDir("net_sim_crash_crashed");
  crashed.control_plane_crash_at = kMeasureFrom + Days(2) + Hours(3);
  auto a = RunFleetSimulation(traces, smooth);
  auto b = RunFleetSimulation(traces, crashed);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->control_plane_recoveries, 0u);
  EXPECT_EQ(b->control_plane_recoveries, 1u);
  EXPECT_GT(b->control_plane_replayed, 0u);
  EXPECT_GT(b->kpi.proactive_resumes, 0u);
  ExpectIdenticalRuns(*a, *b);
}

}  // namespace
}  // namespace prorp::sim
