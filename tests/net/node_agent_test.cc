#include "net/node_agent.h"

#include <vector>

#include <gtest/gtest.h>

#include "net/message.h"
#include "net/transport.h"

namespace prorp::net {
namespace {

using controlplane::ResumeAttempt;

/// Captures the replies the agent sends back to the plane.
struct PlaneSink {
  std::vector<Envelope> replies;
};

struct Fixture {
  InProcessTransport transport;
  PlaneSink plane;
  std::vector<ResumeAttempt> executed;
  Status next_verdict = Status::OK();

  Fixture() {
    transport.RegisterEndpoint(
        kControlPlaneEndpoint,
        [this](const Envelope& env, EpochSeconds) {
          plane.replies.push_back(env);
        });
  }

  NodeAgent::Executor Executor() {
    return [this](const ResumeAttempt& a, EpochSeconds) {
      executed.push_back(a);
      return next_verdict;
    };
  }

  Envelope Request(uint64_t rid, uint64_t epoch,
                   MessageType type = MessageType::kResumeRequest) {
    Envelope env;
    env.type = type;
    env.src = kControlPlaneEndpoint;
    env.dst = 1;
    env.request_id = rid;
    env.epoch = epoch;
    env.sent_at = 100;
    env.db = 7;
    env.cls = 0;
    env.attempt = 2;
    return env;
  }
};

TEST(NodeAgentTest, ExecutesAndAcksWithRequestIdentity) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());

  f.transport.Send(f.Request(/*rid=*/42, /*epoch=*/3));

  ASSERT_EQ(f.executed.size(), 1u);
  EXPECT_EQ(f.executed[0].db, 7u);
  EXPECT_EQ(f.executed[0].attempt, 2);
  EXPECT_EQ(f.executed[0].request_id, 42u);
  ASSERT_EQ(f.plane.replies.size(), 1u);
  const Envelope& ack = f.plane.replies[0];
  EXPECT_EQ(ack.type, MessageType::kAck);
  EXPECT_EQ(ack.request_id, 42u);
  EXPECT_EQ(ack.epoch, 3u);  // echoes the request's epoch
  EXPECT_EQ(ack.code, StatusCode::kOk);
  EXPECT_EQ(agent.stats().executed, 1u);
}

TEST(NodeAgentTest, RedeliveryOfAppliedRequestIsSuppressed) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());

  f.transport.Send(f.Request(42, 3));
  f.transport.Send(f.Request(42, 3));  // redelivery

  // The side effect ran once; the second delivery re-acked the recorded
  // verdict with the duplicate flag.
  EXPECT_EQ(f.executed.size(), 1u);
  EXPECT_EQ(agent.stats().duplicate_suppressed, 1u);
  ASSERT_EQ(f.plane.replies.size(), 2u);
  EXPECT_EQ(f.plane.replies[1].type, MessageType::kAck);
  EXPECT_EQ(f.plane.replies[1].code, StatusCode::kOk);
  EXPECT_NE(f.plane.replies[1].flags & kMfDuplicateDelivery, 0u);
  EXPECT_EQ(f.plane.replies[0].flags & kMfDuplicateDelivery, 0u);
}

TEST(NodeAgentTest, FailedAttemptIsNotRecordedSoRetransmissionRetries) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());

  f.next_verdict = Status::Unavailable("transient");
  f.transport.Send(f.Request(42, 3));
  ASSERT_EQ(f.plane.replies.size(), 1u);
  EXPECT_EQ(f.plane.replies[0].type, MessageType::kNack);
  EXPECT_EQ(f.plane.replies[0].code, StatusCode::kUnavailable);

  // A failed attempt had no side effect, so the retransmission doubles as
  // a retry and this time executes.
  f.next_verdict = Status::OK();
  f.transport.Send(f.Request(42, 3));
  EXPECT_EQ(f.executed.size(), 2u);
  EXPECT_EQ(agent.stats().duplicate_suppressed, 0u);
  EXPECT_EQ(f.plane.replies[1].type, MessageType::kAck);
}

TEST(NodeAgentTest, RequestBelowTheFenceIsNackedNeverExecuted) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());
  agent.FenceEpoch(5);

  f.transport.Send(f.Request(42, /*epoch=*/4));  // predecessor straggler

  EXPECT_TRUE(f.executed.empty());
  EXPECT_EQ(agent.stats().stale_epoch_rejected, 1u);
  ASSERT_EQ(f.plane.replies.size(), 1u);
  EXPECT_EQ(f.plane.replies[0].type, MessageType::kNack);
  EXPECT_EQ(f.plane.replies[0].code, StatusCode::kFailedPrecondition);
  EXPECT_NE(f.plane.replies[0].flags & kMfStaleEpoch, 0u);
  EXPECT_EQ(f.plane.replies[0].epoch, 4u);  // old epoch comes back
}

TEST(NodeAgentTest, EveryMessageRaisesTheFenceRatchet) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());

  f.transport.Send(f.Request(1, 6));
  EXPECT_EQ(agent.fence_epoch(), 6u);

  // A later message from epoch 5 is now stale even though no explicit
  // FenceEpoch call happened.
  f.transport.Send(f.Request(2, 5));
  EXPECT_EQ(f.executed.size(), 1u);
  EXPECT_EQ(agent.stats().stale_epoch_rejected, 1u);

  // FenceEpoch never lowers the ratchet.
  agent.FenceEpoch(2);
  EXPECT_EQ(agent.fence_epoch(), 6u);
}

TEST(NodeAgentTest, LeaseRenewalRaisesFenceAndGrants) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());

  f.transport.Send(f.Request(0, 9, MessageType::kLeaseRenew));

  EXPECT_EQ(agent.fence_epoch(), 9u);
  EXPECT_EQ(agent.stats().leases_granted, 1u);
  ASSERT_EQ(f.plane.replies.size(), 1u);
  EXPECT_EQ(f.plane.replies[0].type, MessageType::kLeaseGrant);

  // The fence raised by the lease now rejects an older incarnation's
  // request even though no workflow ever reached this node before.
  f.transport.Send(f.Request(1, 8));
  EXPECT_TRUE(f.executed.empty());
  EXPECT_EQ(agent.stats().stale_epoch_rejected, 1u);
}

TEST(NodeAgentTest, PauseWithoutExecutorIsNackedNotSupported) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());  // pause executor omitted

  f.transport.Send(f.Request(42, 3, MessageType::kPauseRequest));

  EXPECT_TRUE(f.executed.empty());
  ASSERT_EQ(f.plane.replies.size(), 1u);
  EXPECT_EQ(f.plane.replies[0].type, MessageType::kNack);
  EXPECT_EQ(f.plane.replies[0].code, StatusCode::kNotSupported);
}

TEST(NodeAgentTest, PauseExecutorRunsAndDedupsLikeResume) {
  Fixture f;
  int pauses = 0;
  NodeAgent agent(1, &f.transport, f.Executor(),
                  [&pauses](const ResumeAttempt&, EpochSeconds) {
                    ++pauses;
                    return Status::OK();
                  });

  f.transport.Send(f.Request(42, 3, MessageType::kPauseRequest));
  f.transport.Send(f.Request(42, 3, MessageType::kPauseRequest));

  EXPECT_EQ(pauses, 1);
  EXPECT_EQ(agent.stats().duplicate_suppressed, 1u);
  ASSERT_EQ(f.plane.replies.size(), 2u);
  EXPECT_EQ(f.plane.replies[0].type, MessageType::kAck);
}

Envelope Renewal(uint64_t epoch, EpochSeconds sent_at,
                 DurationSeconds ttl) {
  Envelope env;
  env.type = MessageType::kLeaseRenew;
  env.src = kControlPlaneEndpoint;
  env.dst = 1;
  env.epoch = epoch;
  env.sent_at = sent_at;
  env.lease_ttl = ttl;
  return env;
}

TEST(NodeAgentLeaseTest, LapsedLeaseSelfQuiescesAndRefusesWork) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());
  std::vector<EpochSeconds> quiesces;
  agent.set_quiesce_handler(
      [&quiesces](EpochSeconds t) { quiesces.push_back(t); });

  // A real renewal makes the agent lease-enforced until sent_at + ttl.
  f.transport.Send(Renewal(3, /*sent_at=*/100, /*ttl=*/240));
  EXPECT_TRUE(agent.LeaseValid(340));
  EXPECT_FALSE(agent.LeaseValid(341));

  Envelope ok = f.Request(41, 3);
  ok.sent_at = 300;
  f.transport.Send(ok);
  EXPECT_EQ(f.executed.size(), 1u);

  // Past the deadline the agent fences itself: the arrival itself trips
  // the quiesce, and the request is refused, never executed.
  Envelope late = f.Request(42, 3);
  late.sent_at = 341;
  f.transport.Send(late);
  EXPECT_EQ(f.executed.size(), 1u);
  EXPECT_EQ(agent.stats().self_quiesces, 1u);
  EXPECT_EQ(agent.stats().lease_expired_rejected, 1u);
  ASSERT_EQ(quiesces.size(), 1u);
  EXPECT_EQ(quiesces[0], 341);
  const Envelope& nack = f.plane.replies.back();
  EXPECT_EQ(nack.type, MessageType::kNack);
  EXPECT_EQ(nack.code, StatusCode::kUnavailable);
  EXPECT_NE(nack.flags & kMfLeaseExpired, 0u);
}

TEST(NodeAgentLeaseTest, ProbeGrantsButDoesNotExtendTheLease) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());

  f.transport.Send(Renewal(3, 100, 240));  // lease until 340
  f.transport.Send(Renewal(3, 200, 0));    // probe
  EXPECT_EQ(agent.stats().leases_granted, 2u);
  ASSERT_EQ(f.plane.replies.size(), 2u);
  EXPECT_EQ(f.plane.replies[1].type, MessageType::kLeaseGrant);
  // The probe solicited liveness evidence but the deadline stands: the
  // probe channel is how a suspect node's lease drains.
  EXPECT_FALSE(agent.LeaseValid(341));
}

TEST(NodeAgentLeaseTest, DelayedRenewalExtendsOnlyFromItsSendTime) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());

  // A renewal that sat in the network: sent at 100, ttl 240 — whenever it
  // arrives, the node may not believe itself leased past 340, because
  // 340 is all the plane accounted for when it sent it.
  f.transport.Send(Renewal(3, 100, 240));
  EXPECT_FALSE(agent.LeaseValid(400));

  Envelope late = f.Request(42, 3);
  late.sent_at = 400;
  f.transport.Send(late);
  EXPECT_TRUE(f.executed.empty());
  EXPECT_EQ(agent.stats().lease_expired_rejected, 1u);
}

// The quiesce voids the applied-request table: the recorded verdicts
// describe side effects the quiesce destroyed, so after a re-lease a
// redelivery must RE-EXECUTE (the work has to be redone), not re-ack.
TEST(NodeAgentLeaseTest, QuiesceVoidsDedupSoReExecutionIsCorrect) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());

  f.transport.Send(Renewal(3, 100, 240));
  Envelope req = f.Request(42, 3);
  req.sent_at = 200;
  f.transport.Send(req);
  ASSERT_EQ(f.executed.size(), 1u);

  agent.AdvanceTime(341);  // lease lapses; side effects released
  EXPECT_EQ(agent.stats().self_quiesces, 1u);

  f.transport.Send(Renewal(3, 350, 240));  // re-leased until 590
  Envelope redelivery = f.Request(42, 3);
  redelivery.sent_at = 360;
  f.transport.Send(redelivery);
  EXPECT_EQ(f.executed.size(), 2u);
  EXPECT_EQ(agent.stats().duplicate_suppressed, 0u);
}

// A floater sent BEFORE the quiesce must not execute after the re-lease:
// its world (and the plane state that produced it) predates the fence.
TEST(NodeAgentLeaseTest, PreQuiesceFloaterIsRefusedAfterReLease) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());

  f.transport.Send(Renewal(3, 100, 240));
  agent.AdvanceTime(341);
  f.transport.Send(Renewal(3, 350, 240));  // re-leased

  Envelope floater = f.Request(7, 3);
  floater.sent_at = 320;  // sent while the old lease was still live
  f.transport.Send(floater);
  EXPECT_TRUE(f.executed.empty());
  EXPECT_EQ(agent.stats().lease_expired_rejected, 1u);
}

TEST(NodeAgentLeaseTest, CrashedAgentIsDeafUntilRestart) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());

  agent.Crash();
  EXPECT_TRUE(agent.down());
  f.transport.Send(f.Request(42, 3));
  EXPECT_TRUE(f.executed.empty());
  EXPECT_TRUE(f.plane.replies.empty());

  agent.Restart(500);
  EXPECT_FALSE(agent.down());
  // A pre-restart floater is refused: the incarnation that could have
  // honored it died.
  Envelope floater = f.Request(42, 3);
  floater.sent_at = 400;
  f.transport.Send(floater);
  EXPECT_TRUE(f.executed.empty());
  EXPECT_EQ(agent.stats().lease_expired_rejected, 1u);

  // Fresh requests execute again.
  Envelope fresh = f.Request(43, 3);
  fresh.sent_at = 501;
  f.transport.Send(fresh);
  EXPECT_EQ(f.executed.size(), 1u);
}

// Restart clears the dedup table: the crash destroyed every side effect
// it described, so re-execution — not re-ack — is the correct answer to
// a redelivery of pre-crash work.
TEST(NodeAgentLeaseTest, RestartVoidsDedupTable) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());

  Envelope req = f.Request(42, 3);
  req.sent_at = 100;
  f.transport.Send(req);
  ASSERT_EQ(f.executed.size(), 1u);

  agent.Crash();
  agent.Restart(200);

  Envelope redelivery = f.Request(42, 3);
  redelivery.sent_at = 250;
  f.transport.Send(redelivery);
  EXPECT_EQ(f.executed.size(), 2u);
  EXPECT_EQ(agent.stats().duplicate_suppressed, 0u);
}

// An unleased agent never self-quiesces: lease enforcement switches on
// only at the first real renewal, so pre-failover deployments are
// untouched.
TEST(NodeAgentLeaseTest, NeverLeasedAgentIsNeverFenced) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());
  agent.AdvanceTime(1'000'000);
  EXPECT_EQ(agent.stats().self_quiesces, 0u);
  EXPECT_TRUE(agent.LeaseValid(1'000'000));

  Envelope req = f.Request(42, 3);
  req.sent_at = 1'000'001;
  f.transport.Send(req);
  EXPECT_EQ(f.executed.size(), 1u);
}

// Replies echo the transmission's send time in enqueued_at — the plane's
// per-transmission round-trip clock for gray-failure scoring.
TEST(NodeAgentLeaseTest, RepliesEchoTransmissionSendTime) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());

  Envelope req = f.Request(42, 3);
  req.sent_at = 777;
  req.enqueued_at = 123;  // workflow enqueue time; must NOT be echoed
  f.transport.Send(req);
  ASSERT_EQ(f.plane.replies.size(), 1u);
  EXPECT_EQ(f.plane.replies[0].enqueued_at, 777u);

  f.transport.Send(Renewal(3, 888, 240));
  ASSERT_EQ(f.plane.replies.size(), 2u);
  EXPECT_EQ(f.plane.replies[1].enqueued_at, 888u);
}

}  // namespace
}  // namespace prorp::net
