#include "net/node_agent.h"

#include <vector>

#include <gtest/gtest.h>

#include "net/message.h"
#include "net/transport.h"

namespace prorp::net {
namespace {

using controlplane::ResumeAttempt;

/// Captures the replies the agent sends back to the plane.
struct PlaneSink {
  std::vector<Envelope> replies;
};

struct Fixture {
  InProcessTransport transport;
  PlaneSink plane;
  std::vector<ResumeAttempt> executed;
  Status next_verdict = Status::OK();

  Fixture() {
    transport.RegisterEndpoint(
        kControlPlaneEndpoint,
        [this](const Envelope& env, EpochSeconds) {
          plane.replies.push_back(env);
        });
  }

  NodeAgent::Executor Executor() {
    return [this](const ResumeAttempt& a, EpochSeconds) {
      executed.push_back(a);
      return next_verdict;
    };
  }

  Envelope Request(uint64_t rid, uint64_t epoch,
                   MessageType type = MessageType::kResumeRequest) {
    Envelope env;
    env.type = type;
    env.src = kControlPlaneEndpoint;
    env.dst = 1;
    env.request_id = rid;
    env.epoch = epoch;
    env.sent_at = 100;
    env.db = 7;
    env.cls = 0;
    env.attempt = 2;
    return env;
  }
};

TEST(NodeAgentTest, ExecutesAndAcksWithRequestIdentity) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());

  f.transport.Send(f.Request(/*rid=*/42, /*epoch=*/3));

  ASSERT_EQ(f.executed.size(), 1u);
  EXPECT_EQ(f.executed[0].db, 7u);
  EXPECT_EQ(f.executed[0].attempt, 2);
  EXPECT_EQ(f.executed[0].request_id, 42u);
  ASSERT_EQ(f.plane.replies.size(), 1u);
  const Envelope& ack = f.plane.replies[0];
  EXPECT_EQ(ack.type, MessageType::kAck);
  EXPECT_EQ(ack.request_id, 42u);
  EXPECT_EQ(ack.epoch, 3u);  // echoes the request's epoch
  EXPECT_EQ(ack.code, StatusCode::kOk);
  EXPECT_EQ(agent.stats().executed, 1u);
}

TEST(NodeAgentTest, RedeliveryOfAppliedRequestIsSuppressed) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());

  f.transport.Send(f.Request(42, 3));
  f.transport.Send(f.Request(42, 3));  // redelivery

  // The side effect ran once; the second delivery re-acked the recorded
  // verdict with the duplicate flag.
  EXPECT_EQ(f.executed.size(), 1u);
  EXPECT_EQ(agent.stats().duplicate_suppressed, 1u);
  ASSERT_EQ(f.plane.replies.size(), 2u);
  EXPECT_EQ(f.plane.replies[1].type, MessageType::kAck);
  EXPECT_EQ(f.plane.replies[1].code, StatusCode::kOk);
  EXPECT_NE(f.plane.replies[1].flags & kMfDuplicateDelivery, 0u);
  EXPECT_EQ(f.plane.replies[0].flags & kMfDuplicateDelivery, 0u);
}

TEST(NodeAgentTest, FailedAttemptIsNotRecordedSoRetransmissionRetries) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());

  f.next_verdict = Status::Unavailable("transient");
  f.transport.Send(f.Request(42, 3));
  ASSERT_EQ(f.plane.replies.size(), 1u);
  EXPECT_EQ(f.plane.replies[0].type, MessageType::kNack);
  EXPECT_EQ(f.plane.replies[0].code, StatusCode::kUnavailable);

  // A failed attempt had no side effect, so the retransmission doubles as
  // a retry and this time executes.
  f.next_verdict = Status::OK();
  f.transport.Send(f.Request(42, 3));
  EXPECT_EQ(f.executed.size(), 2u);
  EXPECT_EQ(agent.stats().duplicate_suppressed, 0u);
  EXPECT_EQ(f.plane.replies[1].type, MessageType::kAck);
}

TEST(NodeAgentTest, RequestBelowTheFenceIsNackedNeverExecuted) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());
  agent.FenceEpoch(5);

  f.transport.Send(f.Request(42, /*epoch=*/4));  // predecessor straggler

  EXPECT_TRUE(f.executed.empty());
  EXPECT_EQ(agent.stats().stale_epoch_rejected, 1u);
  ASSERT_EQ(f.plane.replies.size(), 1u);
  EXPECT_EQ(f.plane.replies[0].type, MessageType::kNack);
  EXPECT_EQ(f.plane.replies[0].code, StatusCode::kFailedPrecondition);
  EXPECT_NE(f.plane.replies[0].flags & kMfStaleEpoch, 0u);
  EXPECT_EQ(f.plane.replies[0].epoch, 4u);  // old epoch comes back
}

TEST(NodeAgentTest, EveryMessageRaisesTheFenceRatchet) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());

  f.transport.Send(f.Request(1, 6));
  EXPECT_EQ(agent.fence_epoch(), 6u);

  // A later message from epoch 5 is now stale even though no explicit
  // FenceEpoch call happened.
  f.transport.Send(f.Request(2, 5));
  EXPECT_EQ(f.executed.size(), 1u);
  EXPECT_EQ(agent.stats().stale_epoch_rejected, 1u);

  // FenceEpoch never lowers the ratchet.
  agent.FenceEpoch(2);
  EXPECT_EQ(agent.fence_epoch(), 6u);
}

TEST(NodeAgentTest, LeaseRenewalRaisesFenceAndGrants) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());

  f.transport.Send(f.Request(0, 9, MessageType::kLeaseRenew));

  EXPECT_EQ(agent.fence_epoch(), 9u);
  EXPECT_EQ(agent.stats().leases_granted, 1u);
  ASSERT_EQ(f.plane.replies.size(), 1u);
  EXPECT_EQ(f.plane.replies[0].type, MessageType::kLeaseGrant);

  // The fence raised by the lease now rejects an older incarnation's
  // request even though no workflow ever reached this node before.
  f.transport.Send(f.Request(1, 8));
  EXPECT_TRUE(f.executed.empty());
  EXPECT_EQ(agent.stats().stale_epoch_rejected, 1u);
}

TEST(NodeAgentTest, PauseWithoutExecutorIsNackedNotSupported) {
  Fixture f;
  NodeAgent agent(1, &f.transport, f.Executor());  // pause executor omitted

  f.transport.Send(f.Request(42, 3, MessageType::kPauseRequest));

  EXPECT_TRUE(f.executed.empty());
  ASSERT_EQ(f.plane.replies.size(), 1u);
  EXPECT_EQ(f.plane.replies[0].type, MessageType::kNack);
  EXPECT_EQ(f.plane.replies[0].code, StatusCode::kNotSupported);
}

TEST(NodeAgentTest, PauseExecutorRunsAndDedupsLikeResume) {
  Fixture f;
  int pauses = 0;
  NodeAgent agent(1, &f.transport, f.Executor(),
                  [&pauses](const ResumeAttempt&, EpochSeconds) {
                    ++pauses;
                    return Status::OK();
                  });

  f.transport.Send(f.Request(42, 3, MessageType::kPauseRequest));
  f.transport.Send(f.Request(42, 3, MessageType::kPauseRequest));

  EXPECT_EQ(pauses, 1);
  EXPECT_EQ(agent.stats().duplicate_suppressed, 1u);
  ASSERT_EQ(f.plane.replies.size(), 2u);
  EXPECT_EQ(f.plane.replies[0].type, MessageType::kAck);
}

}  // namespace
}  // namespace prorp::net
