// The network-torture matrix (ISSUE: tentpole acceptance): every
// message-fault kind x seeds x storm/outage/control-plane-crash overlays,
// through the full plane -> dispatcher -> faulty wire -> node-agent stack.
// Every cell must show zero accepted-login loss, zero double-applies,
// zero stale-epoch applies, and reconciled accounting after the drain.

#include "net/network_torture.h"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

namespace prorp::net {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// The exactly-once/fencing/accounting invariants every cell must hold.
void ExpectInvariants(const NetworkTortureResult& r, const std::string& tag) {
  EXPECT_EQ(r.lost_reactive, 0u) << tag;
  EXPECT_EQ(r.double_applies, 0u) << tag;
  EXPECT_EQ(r.stale_epoch_applied, 0u) << tag;
  EXPECT_TRUE(r.accounting_ok) << tag;
  EXPECT_TRUE(r.drained) << tag;
}

TEST(NetworkTortureTest, FaultFreeWireIsQuiet) {
  NetworkTortureOptions opt;
  opt.dir = FreshDir("net_torture_quiet");
  opt.seed = 1;
  opt.fail_probability = 0;  // nothing to retry, nothing to hedge
  auto r = RunNetworkTorture(opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectInvariants(*r, "fault-free");
  EXPECT_GT(r->total_resumed, 0u);
  EXPECT_GT(r->accepted_reactive, 0u);
  // A clean wire never loses, defers, or repeats anything.
  EXPECT_EQ(r->transport.dropped, 0u);
  EXPECT_EQ(r->transport.duplicated, 0u);
  EXPECT_EQ(r->transport.delayed, 0u);
  EXPECT_EQ(r->transport.partitioned, 0u);
  EXPECT_EQ(r->retransmissions, 0u);
  EXPECT_EQ(r->dispatch_timeouts, 0u);
  EXPECT_EQ(r->duplicate_suppressed, 0u);
  EXPECT_EQ(r->stale_epoch_rejected, 0u);
}

struct Cell {
  const char* name;
  double drop_p;
  double duplicate_p;
  double delay_p;
  bool partition;
};

constexpr Cell kCells[] = {
    {"drop", 0.15, 0, 0, false},
    {"duplicate", 0, 0.20, 0, false},
    {"delay", 0, 0, 0.20, false},
    {"partition", 0, 0, 0, true},
    {"mixed", 0.08, 0.08, 0.08, true},
};

TEST(NetworkTortureTest, MatrixEveryFaultKindAcrossSeedsAndOverlays) {
  // 5 fault kinds x 8 seeds; the overlay (none / storm / outage /
  // control-plane crash) rotates with the seed so every kind meets every
  // overlay somewhere in the matrix.
  NetworkTortureResult total;
  uint64_t crash_cells = 0;
  for (const Cell& cell : kCells) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      NetworkTortureOptions opt;
      opt.dir = FreshDir("net_torture_" + std::string(cell.name) + "_" +
                         std::to_string(seed));
      opt.seed = seed;
      opt.drop_p = cell.drop_p;
      opt.duplicate_p = cell.duplicate_p;
      opt.delay_p = cell.delay_p;
      opt.partition = cell.partition;
      switch (seed % 4) {
        case 1: opt.storm = true; break;
        case 2: opt.outage = true; break;
        case 3: opt.crash_at_step = opt.steps / 2; ++crash_cells; break;
        default: break;  // no overlay
      }
      const std::string tag =
          std::string(cell.name) + " seed=" + std::to_string(seed);
      auto r = RunNetworkTorture(opt);
      ASSERT_TRUE(r.ok()) << tag << ": " << r.status().ToString();
      ExpectInvariants(*r, tag);
      EXPECT_GT(r->total_resumed, 0u) << tag;
      if (opt.crash_at_step >= 0) EXPECT_EQ(r->recoveries, 1) << tag;
      // The configured fault actually fired in this cell.
      if (cell.drop_p > 0) EXPECT_GT(r->transport.dropped, 0u) << tag;
      if (cell.duplicate_p > 0)
        EXPECT_GT(r->transport.duplicated, 0u) << tag;
      if (cell.delay_p > 0) EXPECT_GT(r->transport.delayed, 0u) << tag;
      if (cell.partition) EXPECT_GT(r->transport.partitioned, 0u) << tag;

      total.retransmissions += r->retransmissions;
      total.dispatch_timeouts += r->dispatch_timeouts;
      total.duplicate_suppressed += r->duplicate_suppressed;
      total.stale_epoch_rejected += r->stale_epoch_rejected;
      total.late_acks += r->late_acks;
      total.stale_epoch_acks += r->stale_epoch_acks;
      total.hedges += r->hedges;
    }
  }
  EXPECT_EQ(crash_cells, 10u);  // 2 crash seeds per kind
  // Across the whole matrix every defense mechanism was provoked: lost
  // requests retransmitted, exhausted dispatches timed out, redeliveries
  // deduped, and predecessor stragglers fenced after the crashes.
  EXPECT_GT(total.retransmissions, 0u);
  EXPECT_GT(total.dispatch_timeouts, 0u);
  EXPECT_GT(total.duplicate_suppressed, 0u);
  EXPECT_GT(total.stale_epoch_rejected, 0u);
  EXPECT_GT(total.late_acks, 0u);
}

/// Asymmetric partitions, both one-way directions forced explicitly.
/// kToNodes (direction 1) starves the node of requests AND renewals while
/// its old acks still arrive.  kFromNodes (direction 2) is the zombie
/// shape: the node keeps receiving and executing, every reply and grant
/// it sends is lost — exactly-once then rests entirely on the node dedup
/// table absorbing the blind retransmissions.
TEST(NetworkTortureTest, AsymmetricPartitionsHoldTheInvariants) {
  for (int direction : {1, 2}) {
    for (uint64_t seed : {5u, 9u}) {
      NetworkTortureOptions opt;
      opt.dir = FreshDir("net_torture_oneway_" + std::to_string(direction) +
                         "_" + std::to_string(seed));
      opt.seed = seed;
      opt.partition = true;
      opt.partition_direction = direction;
      const std::string tag = "direction=" + std::to_string(direction) +
                              " seed=" + std::to_string(seed);
      auto r = RunNetworkTorture(opt);
      ASSERT_TRUE(r.ok()) << tag << ": " << r.status().ToString();
      ExpectInvariants(*r, tag);
      EXPECT_GT(r->total_resumed, 0u) << tag;
      EXPECT_GT(r->transport.partitioned, 0u) << tag;
      if (direction == 2) {
        // The reply-loss direction forces blind retransmissions into a
        // node that already executed: the dedup table must have absorbed
        // some of them for the run to stay exactly-once.
        EXPECT_GT(r->duplicate_suppressed, 0u) << tag;
      }
    }
  }
}

TEST(NetworkTortureTest, EverythingAtOnceSoak) {
  // The worst corner: every fault kind live at once, storm + outage
  // overlays, and a mid-run control-plane crash, over a longer horizon.
  for (uint64_t seed : {3u, 11u, 29u}) {
    NetworkTortureOptions opt;
    opt.dir = FreshDir("net_torture_soak_" + std::to_string(seed));
    opt.seed = seed;
    opt.steps = 320;
    opt.drop_p = 0.10;
    opt.duplicate_p = 0.10;
    opt.delay_p = 0.10;
    opt.partition = true;
    opt.storm = true;
    opt.outage = true;
    opt.crash_at_step = 150;
    const std::string tag = "soak seed=" + std::to_string(seed);
    auto r = RunNetworkTorture(opt);
    ASSERT_TRUE(r.ok()) << tag << ": " << r.status().ToString();
    ExpectInvariants(*r, tag);
    EXPECT_EQ(r->recoveries, 1) << tag;
    EXPECT_GT(r->total_resumed, 0u) << tag;
    EXPECT_GT(r->retransmissions, 0u) << tag;
  }
}

}  // namespace
}  // namespace prorp::net
