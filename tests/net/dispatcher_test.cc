#include "net/dispatcher.h"

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "common/config.h"
#include "controlplane/management_service.h"
#include "controlplane/metadata_store.h"
#include "controlplane/node_health.h"
#include "faults/fault_plan.h"
#include "net/fault_injecting_transport.h"
#include "net/node_agent.h"
#include "net/transport.h"

namespace prorp::net {
namespace {

using controlplane::ManagementService;
using controlplane::MetadataStore;
using controlplane::ResumeAttempt;
using controlplane::ResumeClass;
using faults::FaultKind;
using faults::FaultOp;
using faults::FaultPlan;

constexpr EpochSeconds kT0 = 1000;

/// A plane + transport + one node, with an idempotence-aware node
/// executor: resuming an already resumed database is a FailedPrecondition,
/// exactly like the real lifecycle FSM.
struct Fixture {
  explicit Fixture(Transport* transport,
                   TransportDispatcher::Options dopt = {})
      : dispatcher(transport, dopt),
        agent(1, transport,
              [this](const ResumeAttempt& a, EpochSeconds) {
                ++executions;
                if (!resumed.insert(a.db).second) {
                  return Status::FailedPrecondition("already resumed");
                }
                return Status::OK();
              }) {}

  void StartService(ControlPlaneConfig config, uint64_t epoch = 1,
                    int max_attempts = 3) {
    auto meta = MetadataStore::Open();
    ASSERT_TRUE(meta.ok());
    metadata = std::move(*meta);
    service = std::make_unique<ManagementService>(
        metadata.get(), config,
        [this](const ResumeAttempt& a, EpochSeconds now) {
          return dispatcher.DispatchResume(a, now);
        },
        max_attempts);
    service->set_epoch(epoch);
    dispatcher.set_service(service.get());
    agent.FenceEpoch(epoch);
  }

  /// Registers the database as physically paused so a resume workflow
  /// has something to act on (a non-paused db is retired undispatched).
  void MarkPaused(DbId db) {
    ASSERT_TRUE(
        metadata->UpsertState(db, policy::DbState::kPhysicallyPaused, 0)
            .ok());
  }

  static ControlPlaneConfig Config(bool hedging = false) {
    ControlPlaneConfig config;
    config.retry_backoff_base = 60;
    config.retry_backoff_cap = 240;
    config.queue_capacity = 32;
    config.deadline_hedging_enabled = hedging;
    config.deadline_reactive = 120;
    return config;
  }

  TransportDispatcher dispatcher;
  NodeAgent agent;
  std::unique_ptr<MetadataStore> metadata;
  std::unique_ptr<ManagementService> service;
  std::set<DbId> resumed;
  int executions = 0;
};

TEST(TransportDispatcherTest, FaultFreeDispatchResolvesInline) {
  InProcessTransport transport;
  Fixture f(&transport);
  f.StartService(Fixture::Config());

  f.MarkPaused(3);
  ASSERT_TRUE(f.service->EnqueueReactive(3, kT0).ok());
  f.service->Pump(kT0);

  EXPECT_EQ(f.executions, 1);
  EXPECT_EQ(f.resumed.count(3), 1u);
  EXPECT_EQ(f.dispatcher.stats().inline_acked, 1u);
  EXPECT_EQ(f.dispatcher.stats().async_acked, 0u);
  EXPECT_TRUE(f.dispatcher.Idle());
  // The service never saw kPending: no unacked parking, no transport
  // telemetry — indistinguishable from the legacy direct call.
  EXPECT_EQ(f.service->unacked(), 0u);
  EXPECT_EQ(f.service->diagnostics().unacked_dispatches, 0u);
  EXPECT_EQ(f.service->diagnostics().cls(ResumeClass::kReactiveLogin).resumed,
            1u);
  EXPECT_TRUE(f.service->AccountingReconciles());
}

TEST(TransportDispatcherTest, DroppedRequestRetransmitsThenResolves) {
  FaultPlan plan(1);
  plan.FailNth(FaultOp::kMsgRequest, 1, FaultKind::kMsgDrop);
  FaultInjectingTransport transport(&plan);
  TransportDispatcher::Options dopt;
  dopt.retransmit_after = 30;
  Fixture f(&transport, dopt);
  f.StartService(Fixture::Config());

  f.MarkPaused(3);
  ASSERT_TRUE(f.service->EnqueueReactive(3, kT0).ok());
  f.service->Pump(kT0);

  // The first transmission was dropped: the workflow is parked unacked.
  EXPECT_EQ(f.executions, 0);
  EXPECT_EQ(f.service->unacked(), 1u);
  EXPECT_EQ(f.service->diagnostics().unacked_dispatches, 1u);
  EXPECT_FALSE(f.dispatcher.Idle());

  // The retransmission gets through and the async ack resolves it.
  f.dispatcher.Tick(kT0 + 30);
  EXPECT_EQ(f.executions, 1);
  EXPECT_EQ(f.service->unacked(), 0u);
  EXPECT_EQ(f.dispatcher.stats().retransmissions, 1u);
  EXPECT_EQ(f.dispatcher.stats().async_acked, 1u);
  EXPECT_EQ(f.dispatcher.stats().timeouts, 0u);
  EXPECT_EQ(f.service->diagnostics().cls(ResumeClass::kReactiveLogin).resumed,
            1u);
  EXPECT_TRUE(f.service->AccountingReconciles());
}

/// Regression (satellite 2): a dispatch whose every transmission vanished
/// is UNACKED, not failed — the outcome is unknown, so it must not touch
/// the failure/stuck/incident accounting, and the item requeues with its
/// attempt count unchanged.
TEST(TransportDispatcherTest, ExhaustedTransmissionsAreUnackedNotFailed) {
  FaultPlan plan(1);
  for (uint64_t n = 1; n <= 4; ++n) {
    plan.FailNth(FaultOp::kMsgRequest, n, FaultKind::kMsgDrop);
  }
  FaultInjectingTransport transport(&plan);
  TransportDispatcher::Options dopt;
  dopt.retransmit_after = 30;
  dopt.max_transmissions = 4;
  Fixture f(&transport, dopt);
  f.StartService(Fixture::Config());

  f.MarkPaused(3);
  ASSERT_TRUE(f.service->EnqueueReactive(3, kT0).ok());
  f.service->Pump(kT0);
  for (DurationSeconds dt = 30; dt <= 120; dt += 30) {
    f.dispatcher.Tick(kT0 + dt);
  }

  // Budget exhausted: one timeout, zero failures.
  const auto& diag = f.service->diagnostics();
  EXPECT_EQ(f.dispatcher.stats().timeouts, 1u);
  EXPECT_EQ(diag.dispatch_timeouts, 1u);
  EXPECT_EQ(diag.stuck_workflows, 0u);
  EXPECT_EQ(diag.mitigated, 0u);
  EXPECT_EQ(diag.incidents, 0u);
  EXPECT_EQ(diag.cls(ResumeClass::kReactiveLogin).stuck, 0u);
  EXPECT_EQ(f.service->unacked(), 0u);
  EXPECT_EQ(f.service->pending_workflows(), 1u);  // requeued, not dropped

  // The redispatch (faults exhausted) succeeds; mitigated stays zero
  // because the attempt count never moved — the timeout was not a retry.
  f.service->Pump(kT0 + 120);
  EXPECT_EQ(f.resumed.count(3), 1u);
  EXPECT_EQ(diag.cls(ResumeClass::kReactiveLogin).resumed, 1u);
  EXPECT_EQ(diag.mitigated, 0u);
  EXPECT_EQ(f.service->pending_workflows(), 0u);
  EXPECT_TRUE(f.service->AccountingReconciles());
}

/// Satellite 3: an ack that arrives after the workflow already resolved
/// (here: the node's first ack was delayed past the retransmission that
/// re-acked it) is telemetry only — no state transition, no double count.
TEST(TransportDispatcherTest, LateDuplicateAckIsTelemetryOnly) {
  FaultPlan plan(1);
  plan.FailNthWithArg(FaultOp::kMsgAck, 1, FaultKind::kMsgDelay, /*arg=*/0);
  FaultInjectingTransport::Options topt;
  topt.delay_min = 50;
  topt.delay_max = 50;
  FaultInjectingTransport transport(&plan, topt);
  TransportDispatcher::Options dopt;
  dopt.retransmit_after = 30;
  Fixture f(&transport, dopt);
  f.StartService(Fixture::Config());

  f.MarkPaused(3);
  ASSERT_TRUE(f.service->EnqueueReactive(3, kT0).ok());
  f.service->Pump(kT0);
  // Executed once, but the ack floats: parked unacked.
  EXPECT_EQ(f.executions, 1);
  EXPECT_EQ(f.service->unacked(), 1u);

  // Retransmission: the node dedups (no second side effect) and re-acks;
  // this second ack is undelayed and resolves the workflow.
  f.dispatcher.Tick(kT0 + 30);
  EXPECT_EQ(f.executions, 1);
  EXPECT_EQ(f.agent.stats().duplicate_suppressed, 1u);
  EXPECT_EQ(f.service->unacked(), 0u);
  const auto& diag = f.service->diagnostics();
  EXPECT_EQ(diag.cls(ResumeClass::kReactiveLogin).resumed, 1u);

  // The delayed original ack surfaces: late, counted, ignored.
  f.dispatcher.Tick(kT0 + 60);
  EXPECT_EQ(f.dispatcher.stats().late_acks, 1u);
  EXPECT_EQ(diag.late_acks, 1u);
  EXPECT_EQ(diag.cls(ResumeClass::kReactiveLogin).resumed, 1u);
  EXPECT_EQ(f.executions, 1);
  EXPECT_TRUE(f.service->AccountingReconciles());
}

/// Satellite 3: a predecessor incarnation's delayed ack surfaces after a
/// crash/recovery.  The epoch mismatch routes it into the stale-ack
/// counter; the recovered service never interprets it.
TEST(TransportDispatcherTest, StaleEpochAckAfterRecoveryIsCounted) {
  FaultPlan plan(1);
  plan.FailNthWithArg(FaultOp::kMsgAck, 1, FaultKind::kMsgDelay, 0);
  FaultInjectingTransport::Options topt;
  topt.delay_min = 500;
  topt.delay_max = 500;
  FaultInjectingTransport transport(&plan, topt);
  TransportDispatcher::Options dopt;
  dopt.retransmit_after = 10'000;  // no retransmissions in this test
  Fixture f(&transport, dopt);
  f.StartService(Fixture::Config(), /*epoch=*/1);

  f.MarkPaused(3);
  ASSERT_TRUE(f.service->EnqueueReactive(3, kT0).ok());
  f.service->Pump(kT0);
  EXPECT_EQ(f.executions, 1);  // executed; only the ack floats

  // Crash/recovery: a new incarnation takes over at epoch 2.  The
  // dispatcher forgets the predecessor's outstanding table and the node
  // is fenced before anything else is delivered.
  f.StartService(Fixture::Config(), /*epoch=*/2);

  // The old incarnation's ack finally surfaces: its epoch no longer
  // matches, so it is counted stale and applied nowhere.
  f.dispatcher.Tick(kT0 + 600);
  EXPECT_EQ(f.dispatcher.stats().stale_epoch_acks, 1u);
  EXPECT_EQ(f.service->diagnostics().stale_epoch_acks, 1u);
  EXPECT_EQ(f.service->diagnostics().late_acks, 0u);
  EXPECT_EQ(f.service->unacked(), 0u);
  EXPECT_TRUE(f.service->AccountingReconciles());
}

/// A predecessor's delayed REQUEST delivered after recovery is dead on
/// arrival at the node: the fence rejects it before it can execute, and
/// its stale-epoch nack is recognized as a straggler by the plane.
TEST(TransportDispatcherTest, StaleEpochRequestIsFencedNeverExecuted) {
  FaultPlan plan(1);
  plan.FailNthWithArg(FaultOp::kMsgRequest, 1, FaultKind::kMsgDelay, 0);
  FaultInjectingTransport::Options topt;
  topt.delay_min = 500;
  topt.delay_max = 500;
  FaultInjectingTransport transport(&plan, topt);
  TransportDispatcher::Options dopt;
  dopt.retransmit_after = 10'000;
  Fixture f(&transport, dopt);
  f.StartService(Fixture::Config(), /*epoch=*/1);

  f.MarkPaused(3);
  ASSERT_TRUE(f.service->EnqueueReactive(3, kT0).ok());
  f.service->Pump(kT0);
  EXPECT_EQ(f.executions, 0);  // request still floating

  f.StartService(Fixture::Config(), /*epoch=*/2);

  f.dispatcher.Tick(kT0 + 600);
  EXPECT_EQ(f.executions, 0);  // fenced, never executed
  EXPECT_EQ(f.agent.stats().stale_epoch_rejected, 1u);
  // The fence nack echoed epoch 1, so the plane counts it stale too.
  EXPECT_EQ(f.dispatcher.stats().stale_epoch_acks, 1u);
  EXPECT_EQ(f.service->diagnostics().stale_epoch_acks, 1u);
}

/// The exactly-once core: a hedge racing a delayed original must produce
/// one side effect and one resolution, whichever side lands first.
TEST(TransportDispatcherTest, HedgePlusDelayedOriginalIsExactlyOnce) {
  FaultPlan plan(1);
  plan.FailNthWithArg(FaultOp::kMsgRequest, 1, FaultKind::kMsgDelay, 0);
  FaultInjectingTransport::Options topt;
  topt.delay_min = 500;
  topt.delay_max = 500;
  FaultInjectingTransport transport(&plan, topt);
  TransportDispatcher::Options dopt;
  dopt.retransmit_after = 10'000;  // isolate the hedge from retransmits
  Fixture f(&transport, dopt);
  f.StartService(Fixture::Config(/*hedging=*/true));

  f.MarkPaused(3);
  ASSERT_TRUE(f.service->EnqueueReactive(3, kT0).ok());
  f.service->Pump(kT0);
  EXPECT_EQ(f.service->unacked(), 1u);  // original floats until kT0+500

  // Past the reactive deadline the watchdog hedges the unacked dispatch;
  // the hedge's request is undelayed and wins inline.
  f.service->Pump(kT0 + 130);
  EXPECT_EQ(f.executions, 1);
  EXPECT_EQ(f.resumed.count(3), 1u);
  EXPECT_EQ(f.service->unacked(), 0u);
  const auto& cd =
      f.service->diagnostics().cls(ResumeClass::kReactiveLogin);
  EXPECT_EQ(cd.resumed, 1u);
  EXPECT_EQ(cd.hedged, 1u);
  EXPECT_EQ(cd.hedge_wins, 1u);

  // The delayed original surfaces at the node: a fresh request id, so the
  // dedup table does not absorb it — the node-side state check does (the
  // database is already resumed), and its nack lands as a late ack.
  f.dispatcher.Tick(kT0 + 600);
  EXPECT_EQ(f.resumed.size(), 1u);
  EXPECT_EQ(cd.resumed, 1u);
  EXPECT_EQ(f.service->diagnostics().late_acks, 1u);
  EXPECT_TRUE(f.service->AccountingReconciles());
}

TEST(TransportDispatcherTest, PauseDispatchResolvesInline) {
  InProcessTransport transport;
  int pauses = 0;
  TransportDispatcher dispatcher(&transport, {});
  NodeAgent agent(1, &transport,
                  [](const ResumeAttempt&, EpochSeconds) {
                    return Status::OK();
                  },
                  [&pauses](const ResumeAttempt&, EpochSeconds) {
                    ++pauses;
                    return Status::OK();
                  });

  Status s = dispatcher.DispatchPause(5, 1, kT0);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(pauses, 1);
  EXPECT_TRUE(dispatcher.Idle());

  // A node without a pause executor nacks NotSupported — still inline.
  NodeAgent bare(2, &transport,
                 [](const ResumeAttempt&, EpochSeconds) {
                   return Status::OK();
                 });
  s = dispatcher.DispatchPause(5, 2, kT0);
  EXPECT_EQ(s.code(), StatusCode::kNotSupported);
  EXPECT_TRUE(dispatcher.Idle());
}

TEST(TransportDispatcherTest, LeaseRenewalsAdvertiseTheEpochToEveryNode) {
  InProcessTransport transport;
  TransportDispatcher::Options dopt;
  dopt.lease_interval = 300;
  dopt.first_node = 1;
  dopt.num_nodes = 2;
  Fixture f(&transport, dopt);
  NodeAgent second(2, &transport,
                   [](const ResumeAttempt&, EpochSeconds) {
                     return Status::OK();
                   });
  f.StartService(Fixture::Config(), /*epoch=*/7);
  // StartService fences agent 1 explicitly; agent 2 learns the epoch only
  // through the lease.
  EXPECT_EQ(second.fence_epoch(), 0u);

  f.dispatcher.Tick(kT0);

  EXPECT_EQ(f.dispatcher.stats().lease_renewals, 2u);
  EXPECT_EQ(f.dispatcher.stats().lease_grants, 2u);
  EXPECT_EQ(second.fence_epoch(), 7u);

  // Within the interval no further renewals go out.
  f.dispatcher.Tick(kT0 + 100);
  EXPECT_EQ(f.dispatcher.stats().lease_renewals, 2u);
  f.dispatcher.Tick(kT0 + 300);
  EXPECT_EQ(f.dispatcher.stats().lease_renewals, 4u);
}

/// Lease grants are disaggregated by granting node: the aggregate count
/// cannot tell a healthy pool from one dead node hidden behind a chatty
/// neighbor.  Once the tracker demotes the silent node its renewals turn
/// into ttl=0 probes, its fence-safe bound stops advancing, and after
/// lease TTL + grace it is declared dead.
TEST(TransportDispatcherTest, DeadNodeIsProbedItsLeaseDrainsAndDeathIsDeclared) {
  InProcessTransport transport;
  TransportDispatcher::Options dopt;
  dopt.lease_interval = 60;
  dopt.lease_ttl = 240;
  dopt.num_nodes = 2;
  Fixture f(&transport, dopt);
  NodeAgent second(2, &transport,
                   [](const ResumeAttempt&, EpochSeconds) {
                     return Status::OK();
                   });
  controlplane::NodeHealthTracker::Options hopt;
  hopt.lease_ttl = 240;
  hopt.suspect_after = 150;
  hopt.dead_grace = 60;
  controlplane::NodeHealthTracker tracker(hopt);
  f.dispatcher.set_health_tracker(&tracker);
  f.StartService(Fixture::Config());

  second.Crash();
  for (DurationSeconds dt = 0; dt <= 480; dt += 60) {
    f.dispatcher.Tick(kT0 + dt);
  }

  // Node 1 granted every interval; node 2 never did.
  EXPECT_EQ(f.dispatcher.lease_grants_from(1), 9u);
  EXPECT_EQ(f.dispatcher.lease_grants_from(2), 0u);
  EXPECT_EQ(f.dispatcher.stats().lease_grants, 9u);

  // Node 2 got real renewals until the silence demoted it (ticks kT0 ..
  // kT0+180), probes after; node 1 got real renewals throughout.
  EXPECT_EQ(f.dispatcher.stats().lease_renewals, 13u);
  EXPECT_EQ(f.dispatcher.stats().lease_probes, 5u);
  EXPECT_EQ(tracker.stats().suspects_missed_grants, 1u);

  // Last real renewal went out at kT0+180, so the node may believe
  // itself leased until kT0+420; strictly past that (plus grace) it is
  // dead, and the declaration drains exactly once.
  EXPECT_EQ(tracker.fence_safe_at(2), kT0 + 420);
  EXPECT_EQ(tracker.health(2), controlplane::NodeHealth::kDead);
  EXPECT_EQ(tracker.health(1), controlplane::NodeHealth::kHealthy);
  EXPECT_EQ(tracker.TakeNewlyDead(), std::vector<uint32_t>{2});
  EXPECT_TRUE(tracker.TakeNewlyDead().empty());
}

/// Gray failure end to end through the dispatcher: a node whose grants
/// keep flowing but arrive late accumulates p99 reply latency through
/// the enqueued_at echo, is demoted on the score (never on silence), and
/// its renewals turn into probes.
TEST(TransportDispatcherTest, SlowGrantLatencyDemotesToGrayFailureProbes) {
  FaultPlan plan(1);  // trigger-free: no drops, no injected delays
  FaultInjectingTransport transport(&plan);
  SlowNodeSpec slow;
  slow.node = 1;
  slow.from = 0;
  slow.until = kT0 + 100'000;
  slow.delay = 80;
  transport.AddSlowNode(slow);
  TransportDispatcher::Options dopt;
  dopt.lease_interval = 60;
  dopt.lease_ttl = 240;
  dopt.num_nodes = 1;
  Fixture f(&transport, dopt);
  controlplane::NodeHealthTracker::Options hopt;
  hopt.slow_p99_threshold = 50;
  hopt.min_latency_samples = 4;
  controlplane::NodeHealthTracker tracker(hopt);
  f.dispatcher.set_health_tracker(&tracker);
  f.StartService(Fixture::Config());

  for (DurationSeconds dt = 0; dt <= 360; dt += 60) {
    f.dispatcher.Tick(kT0 + dt);
  }

  // Every grant arrived (the node is alive) — two intervals late, so
  // each carried ~120s of round trip against its renewal's send time.
  EXPECT_GT(f.dispatcher.lease_grants_from(1), 0u);
  EXPECT_GT(tracker.LatencyP99(1), 50);
  EXPECT_EQ(tracker.health(1), controlplane::NodeHealth::kSuspect);
  EXPECT_EQ(tracker.stats().suspects_gray_failure, 1u);
  EXPECT_EQ(tracker.stats().suspects_missed_grants, 0u);
  EXPECT_GT(f.dispatcher.stats().lease_probes, 0u);
}

}  // namespace
}  // namespace prorp::net
