#include "sim/resume_capacity.h"

#include <gtest/gtest.h>

namespace prorp::sim {
namespace {

CapacityOptions Base() {
  CapacityOptions o;
  o.num_nodes = 1;
  o.concurrency_per_node = 2;
  o.service_time = 60;
  o.admission_rate = 0;  // token bucket off unless a test opts in
  o.queue_jitter_max = 0;
  return o;
}

TEST(NodeCapacityModelTest, UncontendedGrantsStartImmediately) {
  NodeCapacityModel m(Base());
  NodeCapacityModel::Grant g = m.Acquire(0, 100, 1);
  EXPECT_EQ(g.start, 100);
  EXPECT_EQ(g.wait, 0);
  EXPECT_EQ(g.done, 160);
  // The second slot is free too.
  EXPECT_EQ(m.Acquire(0, 100, 2).start, 100);
  EXPECT_EQ(m.grants(), 2u);
  EXPECT_DOUBLE_EQ(m.waits().Max(), 0.0);
}

TEST(NodeCapacityModelTest, SlotContentionQueuesExactly) {
  CapacityOptions o = Base();
  o.concurrency_per_node = 1;
  NodeCapacityModel m(o);
  EXPECT_EQ(m.Acquire(0, 100, 1).done, 160);
  NodeCapacityModel::Grant g2 = m.Acquire(0, 100, 2);
  EXPECT_EQ(g2.start, 160);
  EXPECT_EQ(g2.wait, 60);
  EXPECT_EQ(g2.done, 220);
  EXPECT_EQ(m.Acquire(0, 100, 3).start, 220);
  EXPECT_EQ(m.waits().count(), 3u);
  EXPECT_DOUBLE_EQ(m.waits().Max(), 120.0);
}

TEST(NodeCapacityModelTest, JitterAppliesOnlyToContendedGrants) {
  CapacityOptions o = Base();
  o.concurrency_per_node = 1;
  o.queue_jitter_max = 5;
  NodeCapacityModel m(o);
  // Uncontended: exact, even with jitter configured.  This is what keeps
  // a fault-free simulator run bit-identical to the scalar-latency model.
  EXPECT_EQ(m.Acquire(0, 100, 1).start, 100);
  NodeCapacityModel::Grant g2 = m.Acquire(0, 100, 2);
  EXPECT_GE(g2.start, 160);
  EXPECT_LE(g2.start, 165);
}

TEST(NodeCapacityModelTest, TokenBucketPacesGrantsFromTheDeficit) {
  CapacityOptions o = Base();
  o.concurrency_per_node = 8;  // slots never bind here
  o.admission_rate = 0.5;      // one token every 2 seconds
  o.admission_burst = 1;
  NodeCapacityModel m(o);
  EXPECT_EQ(m.Acquire(0, 100, 1).start, 100);  // burst token
  EXPECT_EQ(m.Acquire(0, 100, 2).start, 102);
  // Deficit waits must stack: the third grant pays for a token accrued
  // AFTER the one promised to the second grant, not from `now`.
  EXPECT_EQ(m.Acquire(0, 100, 3).start, 104);
  EXPECT_EQ(m.Acquire(0, 100, 4).start, 106);
}

TEST(NodeCapacityModelTest, BurstAllowsBackToBackGrantsAfterIdle) {
  CapacityOptions o = Base();
  o.concurrency_per_node = 8;
  o.admission_rate = 0.5;
  o.admission_burst = 2;
  NodeCapacityModel m(o);
  // A long idle period refills the bucket to the burst cap, no further.
  EXPECT_EQ(m.Acquire(0, 1000, 1).start, 1000);
  EXPECT_EQ(m.Acquire(0, 1000, 2).start, 1000);
  EXPECT_EQ(m.Acquire(0, 1000, 3).start, 1002);
}

TEST(NodeCapacityModelTest, UnlimitedGrantBypassesTheTokenBucket) {
  CapacityOptions o = Base();
  o.concurrency_per_node = 8;
  o.admission_rate = 0.01;
  o.admission_burst = 1;
  NodeCapacityModel m(o);
  EXPECT_EQ(m.Acquire(0, 100, 1).start, 100);  // consumes the only token
  // Reactive logins (limited = false) are slot- and outage-bound only.
  EXPECT_EQ(m.Acquire(0, 100, 2, 0, /*limited=*/false).start, 100);
  EXPECT_EQ(m.Acquire(0, 100, 3, 0, /*limited=*/false).start, 100);
  // Control-plane work still pays: one token per 100 seconds.
  EXPECT_EQ(m.Acquire(0, 100, 4).start, 200);
}

TEST(NodeCapacityModelTest, OutageDefersTheStart) {
  NodeCapacityModel m(Base());
  NodeCapacityModel::Grant g = m.Acquire(0, 100, 1, /*blocked_until=*/500);
  EXPECT_EQ(g.start, 500);
  EXPECT_EQ(g.wait, 400);
  EXPECT_EQ(g.done, 560);
}

TEST(NodeCapacityModelTest, NodeIndexWrapsModuloNodeCount) {
  CapacityOptions o = Base();
  o.num_nodes = 3;
  o.concurrency_per_node = 1;
  NodeCapacityModel m(o);
  m.Acquire(4, 100, 1);  // node 1
  // Node 1's single slot is busy until 160; nodes 0 and 2 are idle.
  EXPECT_EQ(m.Acquire(1, 100, 2).start, 160);
  EXPECT_EQ(m.Acquire(0, 100, 3).start, 100);
}

TEST(NodeCapacityModelTest, LeastLoadedOtherPicksEarliestFreeNode) {
  CapacityOptions o = Base();
  o.num_nodes = 3;
  o.concurrency_per_node = 1;
  NodeCapacityModel m(o);
  m.Acquire(1, 100, 1);  // node 1 free at 160
  m.Acquire(2, 100, 2);  // node 2 free at 220 after the second grant
  m.Acquire(2, 160, 3);
  EXPECT_EQ(m.LeastLoadedOther(0, 100), 1u);
  // The home node is excluded even when it is the idlest.
  EXPECT_EQ(m.LeastLoadedOther(1, 100), 0u);
}

TEST(NodeCapacityModelTest, SingleNodeHedgesBackToHome) {
  NodeCapacityModel m(Base());
  EXPECT_EQ(m.LeastLoadedOther(0, 100), 0u);
}

TEST(NodeCapacityModelTest, IdenticalCallSequencesYieldIdenticalGrants) {
  CapacityOptions o;
  o.num_nodes = 4;
  o.concurrency_per_node = 2;
  o.service_time = 45;
  o.admission_rate = 0.3;
  o.admission_burst = 2;
  o.queue_jitter_max = 7;
  o.seed = 42;
  NodeCapacityModel a(o);
  NodeCapacityModel b(o);
  for (int i = 0; i < 50; ++i) {
    EpochSeconds now = 1000 + i * 3;
    EpochSeconds blocked = (i % 7 == 0) ? now + 30 : 0;
    bool limited = (i % 5) != 0;
    NodeCapacityModel::Grant ga =
        a.Acquire(i % 4, now, 100 + i, blocked, limited);
    NodeCapacityModel::Grant gb =
        b.Acquire(i % 4, now, 100 + i, blocked, limited);
    EXPECT_EQ(ga.start, gb.start) << "grant " << i;
    EXPECT_EQ(ga.done, gb.done) << "grant " << i;
    EXPECT_EQ(ga.wait, gb.wait) << "grant " << i;
  }
  EXPECT_EQ(a.grants(), b.grants());
  EXPECT_DOUBLE_EQ(a.waits().Sum(), b.waits().Sum());
}

}  // namespace
}  // namespace prorp::sim
