#include "sim/timer_wheel.h"

#include <cstdint>
#include <queue>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace prorp::sim {
namespace {

struct Ev {
  int64_t time = 0;
  uint64_t seq = 0;

  bool operator==(const Ev& o) const {
    return time == o.time && seq == o.seq;
  }
  bool operator>(const Ev& o) const {
    if (time != o.time) return time > o.time;
    return seq > o.seq;
  }
};

using RefQueue = std::priority_queue<Ev, std::vector<Ev>, std::greater<>>;

/// Drains one tick from the reference queue in (time, seq) order.
std::vector<Ev> RefPopTick(RefQueue& pq) {
  std::vector<Ev> tick;
  if (pq.empty()) return tick;
  int64_t t = pq.top().time;
  while (!pq.empty() && pq.top().time == t) {
    tick.push_back(pq.top());
    pq.pop();
  }
  return tick;
}

TEST(TimerWheelTest, EmptyWheelPopsNothing) {
  TimerWheel<Ev> wheel;
  std::vector<Ev> out;
  EXPECT_TRUE(wheel.empty());
  EXPECT_FALSE(wheel.PopNextTick(&out));
  EXPECT_TRUE(out.empty());
}

TEST(TimerWheelTest, SameTickEventsComeOutInSeqOrder) {
  TimerWheel<Ev> wheel;
  // Same deadline pushed out of seq order, from different starting levels:
  // seq 2 goes far (level 1+), seq 1 near, after popping an earlier event.
  wheel.Push({100, 0});
  wheel.Push({5000, 2});
  wheel.Push({5000, 1});
  std::vector<Ev> out;
  ASSERT_TRUE(wheel.PopNextTick(&out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Ev{100, 0}));
  out.clear();
  ASSERT_TRUE(wheel.PopNextTick(&out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Ev{5000, 1}));
  EXPECT_EQ(out[1], (Ev{5000, 2}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, OverdueEventsDeliveredFirstWithoutMovingTime) {
  TimerWheel<Ev> wheel;
  wheel.Push({50, 0});
  std::vector<Ev> out;
  ASSERT_TRUE(wheel.PopNextTick(&out));
  EXPECT_EQ(wheel.now(), 50);
  // Pushed at/before now(): legal, delivered ahead of future events.
  wheel.Push({50, 1});
  wheel.Push({10, 2});
  wheel.Push({200, 3});
  out.clear();
  ASSERT_TRUE(wheel.PopNextTick(&out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Ev{10, 2}));  // (time, seq) order within the bucket
  EXPECT_EQ(out[1], (Ev{50, 1}));
  EXPECT_EQ(wheel.now(), 50);  // overdue delivery does not advance time
  out.clear();
  ASSERT_TRUE(wheel.PopNextTick(&out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Ev{200, 3}));
}

TEST(TimerWheelTest, FarFutureEventsSurviveTheOverflowLevel) {
  TimerWheel<Ev> wheel;
  // Beyond the deepest level's horizon (2048^3 s): parks in overflow.
  const int64_t far = int64_t{1} << 40;
  wheel.Push({far, 0});
  wheel.Push({far + 1, 1});
  wheel.Push({7, 2});
  std::vector<Ev> out;
  ASSERT_TRUE(wheel.PopNextTick(&out));
  EXPECT_EQ(out[0], (Ev{7, 2}));
  out.clear();
  ASSERT_TRUE(wheel.PopNextTick(&out));
  EXPECT_EQ(out[0], (Ev{far, 0}));
  out.clear();
  ASSERT_TRUE(wheel.PopNextTick(&out));
  EXPECT_EQ(out[0], (Ev{far + 1, 1}));
  EXPECT_TRUE(wheel.empty());
}

// Regression: an event whose raw delta fits under a level's horizon can
// still be a full rotation of slots away once `now` sits late in its own
// slot; placing it by raw delta wraps its index onto the slot holding
// `now`, which the occupancy scan then misreads.  Level fit must be
// judged by slot distance.
TEST(TimerWheelTest, DeltaJustUnderHorizonDoesNotWrapOntoBaseSlot) {
  TimerWheel<Ev> wheel;
  // Advance now to 4194256: level-1 slot 2047, 48 s before the 2^22
  // boundary.
  wheel.Push({4194256, 0});
  std::vector<Ev> drained;
  ASSERT_TRUE(wheel.PopNextTick(&drained));
  ASSERT_EQ(wheel.now(), 4194256);
  // Delta 4193744 < 2^22, but level-1 slot distance is exactly 2048.
  wheel.Push({8388000, 1});
  wheel.Push({8390000, 2});
  drained.clear();
  ASSERT_TRUE(wheel.PopNextTick(&drained));
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0], (Ev{8388000, 1}));
  drained.clear();
  ASSERT_TRUE(wheel.PopNextTick(&drained));
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0], (Ev{8390000, 2}));
  EXPECT_TRUE(wheel.empty());
}

// Regression: cascading a level-2 slot advances `now` to a window
// boundary that a lower level can share (a 2^22-aligned instant is also
// 2^11-aligned).  The occupied level-1 slot then CONTAINS `now`, and a
// circular scan that only reports slots strictly after the base slot
// would skip it, draining a later window first.
TEST(TimerWheelTest, CascadeLandingOnSharedWindowBoundaryKeepsOrder) {
  TimerWheel<Ev> wheel;
  wheel.Push({3000, 0});
  // From now = 0, slot distance at level 1 is 2051 - 0 >= 2048: level 2.
  wheel.Push({4200839, 1});
  std::vector<Ev> drained;
  ASSERT_TRUE(wheel.PopNextTick(&drained));
  ASSERT_EQ(wheel.now(), 3000);
  // From now = 3000, level-1 slot distance 2047: level 1, slot 0 — the
  // window [4194304, 4196352) that the level-2 cascade will land on.
  wheel.Push({4195690, 2});
  drained.clear();
  ASSERT_TRUE(wheel.PopNextTick(&drained));
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0], (Ev{4195690, 2}));
  drained.clear();
  ASSERT_TRUE(wheel.PopNextTick(&drained));
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0], (Ev{4200839, 1}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, StormSlotGivesCapacityBackAfterDraining) {
  TimerWheel<Ev> wheel;
  // One tick ballooning past the shrink threshold (1024), as a login
  // storm does, must not hold its high-water capacity afterwards.
  const size_t kStorm = 20'000;
  for (size_t i = 0; i < kStorm; ++i) {
    wheel.Push({1000, i});
  }
  size_t flooded = wheel.MemoryBytes();
  EXPECT_GE(flooded, kStorm * sizeof(Ev));
  std::vector<Ev> out;
  ASSERT_TRUE(wheel.PopNextTick(&out));
  EXPECT_EQ(out.size(), kStorm);
  EXPECT_LT(wheel.MemoryBytes(), flooded / 8);
  // The wheel stays fully usable after the shrink.
  wheel.Push({2000, kStorm});
  out.clear();
  ASSERT_TRUE(wheel.PopNextTick(&out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].time, 2000);
}

TEST(TimerWheelTest, MatchesReferenceQueueOnRandomWorkloads) {
  std::mt19937_64 rng(123);
  for (int trial = 0; trial < 300; ++trial) {
    TimerWheel<Ev> wheel;
    RefQueue pq;
    uint64_t seq = 0;
    auto push_delta = [&](int64_t now, int64_t delta) {
      Ev e{now + delta, seq++};
      wheel.Push(e);
      pq.push(e);
    };
    // Horizon mix crossing every level: same-tick bursts, level-0 and
    // level-1 deltas, level-2 deltas, and overflow-range deltas.
    auto random_delta = [&]() -> int64_t {
      uint64_t r = rng() % 100;
      if (r < 50) return static_cast<int64_t>(rng() % 100);
      if (r < 80) return static_cast<int64_t>(rng() % 5'000);
      if (r < 95) return static_cast<int64_t>(rng() % 5'000'000);
      return static_cast<int64_t>(rng() % 20'000'000'000LL);
    };
    int initial = 1 + static_cast<int>(rng() % 50);
    for (int i = 0; i < initial; ++i) push_delta(0, random_delta());
    int64_t now = 0;
    while (!pq.empty()) {
      std::vector<Ev> expect = RefPopTick(pq);
      std::vector<Ev> got;
      ASSERT_TRUE(wheel.PopNextTick(&got))
          << "trial " << trial << ": wheel empty before reference";
      ASSERT_EQ(got, expect) << "trial " << trial;
      now = expect.front().time;
      EXPECT_EQ(wheel.now(), now);
      // Handler-style follow-on pushes strictly after the drained tick.
      int extra = static_cast<int>(rng() % 4);
      for (int i = 0; i < extra && seq < 3'000; ++i) {
        push_delta(now, 1 + random_delta());
      }
    }
    EXPECT_TRUE(wheel.empty()) << "trial " << trial;
    EXPECT_EQ(wheel.size(), 0u);
  }
}

}  // namespace
}  // namespace prorp::sim
