#include "sim/failover_torture.h"

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace prorp::sim {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

NodeFaultSpec Fault(NodeFaultSpec::Kind kind, uint32_t node, int at_step,
                    int duration_steps) {
  NodeFaultSpec f;
  f.kind = kind;
  f.node = node;
  f.at_step = at_step;
  f.duration_steps = duration_steps;
  return f;
}

/// Runs one cell and asserts the invariants every failover-torture run
/// must uphold, whatever the fault mix.
FailoverTortureResult RunCell(const std::string& name,
                              FailoverTortureOptions opt) {
  opt.dir = FreshDir(name);
  auto result = RunFailoverTorture(opt);
  EXPECT_TRUE(result.ok()) << name << ": " << result.status().ToString();
  if (!result.ok()) return {};
  EXPECT_TRUE(result->drained) << name;
  EXPECT_EQ(result->lost_reactive, 0u) << name;
  EXPECT_EQ(result->double_applies, 0u) << name;
  EXPECT_EQ(result->stale_epoch_applied, 0u) << name;
  EXPECT_EQ(result->double_live, 0u) << name;
  EXPECT_EQ(result->fence_violations, 0u) << name;
  EXPECT_TRUE(result->accounting_ok) << name;
  EXPECT_GT(result->total_resumed, 0u) << name;
  return *result;
}

// Tentpole: a crashed node is detected, declared dead, and every
// database placed on it is re-dispatched to survivors.
TEST(FailoverTortureTest, NodeCrashIsDetectedAndFailedOver) {
  FailoverTortureOptions opt;
  opt.seed = 11;
  opt.faults = {Fault(NodeFaultSpec::Kind::kCrash, 2, 40, 60)};
  auto r = RunCell("fo_crash", opt);
  EXPECT_GE(r.deaths_declared, 1u);
  EXPECT_GT(r.failover_requeues, 0u);
  EXPECT_GT(r.diverted_dispatches, 0u);
  EXPECT_GT(r.lease_probes, 0u);
  ASSERT_GT(r.detection_delay.count(), 0u);
  // Detection cannot beat the suspicion gap and must not dawdle past the
  // lease TTL + grace by more than a couple of lease periods.
  EXPECT_GE(r.detection_delay.Min(), static_cast<double>(opt.suspect_after));
  EXPECT_LE(r.detection_delay.Max(),
            static_cast<double>(opt.lease_ttl + opt.dead_grace + 120));
}

// Tentpole: a zombie node (keeps receiving and executing; everything it
// sends is lost) self-quiesces by the lease fence before the plane
// declares it dead — so its databases are re-placed with zero
// double-lives even though the node was still executing work.
TEST(FailoverTortureTest, ZombiePartitionSelfQuiescesBeforeFailover) {
  FailoverTortureOptions opt;
  opt.seed = 12;
  opt.faults = {Fault(NodeFaultSpec::Kind::kZombie, 1, 50, 30)};
  auto r = RunCell("fo_zombie", opt);
  EXPECT_GE(r.deaths_declared, 1u);
  EXPECT_GE(r.self_quiesces, 1u);
  EXPECT_GT(r.lease_expired_rejected, 0u);
}

// Tentpole: a gray-slow node (alive, correct, late) is demoted on its
// p99 reply latency, drains its lease, and fails over cleanly.
TEST(FailoverTortureTest, SlowNodeIsDemotedOnLatencyScore) {
  FailoverTortureOptions opt;
  opt.seed = 13;
  opt.steps = 240;
  // The delay must stay below suspect_after - lease_interval (else the
  // delayed grants trip the silence detector first and the cell tests
  // the wrong path) while clearing slow_p99_threshold.
  NodeFaultSpec slow = Fault(NodeFaultSpec::Kind::kSlow, 3, 40, 80);
  slow.slow_delay = 80;
  opt.faults = {slow};
  auto r = RunCell("fo_slow", opt);
  EXPECT_GE(r.suspects_gray_failure, 1u);
  EXPECT_GE(r.deaths_declared, 1u);
}

// Crash composed with message chaos: drops, duplicates, delays.
TEST(FailoverTortureTest, CrashUnderMessageChaos) {
  for (uint64_t seed : {21, 22, 23}) {
    FailoverTortureOptions opt;
    opt.seed = seed;
    opt.drop_p = 0.10;
    opt.duplicate_p = 0.10;
    opt.delay_p = 0.10;
    opt.faults = {Fault(NodeFaultSpec::Kind::kCrash, 3, 60, 50)};
    auto r = RunCell("fo_chaos_" + std::to_string(seed), opt);
    EXPECT_GE(r.deaths_declared, 1u);
  }
}

// Crash composed with a login storm: failover re-queues ride the
// reactive class but must not amplify the storm accounting.
TEST(FailoverTortureTest, CrashDuringStorm) {
  FailoverTortureOptions opt;
  opt.seed = 31;
  opt.storm = true;
  opt.faults = {Fault(NodeFaultSpec::Kind::kCrash, 1, 95, 40)};
  auto r = RunCell("fo_storm", opt);
  EXPECT_GE(r.deaths_declared, 1u);
}

// Crash composed with a resume-path outage window.
TEST(FailoverTortureTest, CrashDuringOutage) {
  FailoverTortureOptions opt;
  opt.seed = 32;
  opt.outage = true;
  opt.faults = {Fault(NodeFaultSpec::Kind::kCrash, 2, 66, 40)};
  RunCell("fo_outage", opt);
}

// Tentpole: plane crash mid-failover — the control plane dies after the
// node fault but around the detection window; the new incarnation's
// fresh detector re-detects and the journaled declarations/re-queues
// replay exactly once.
TEST(FailoverTortureTest, PlaneCrashMidFailoverIsExactlyOnce) {
  for (int crash_at : {44, 48, 52}) {
    FailoverTortureOptions opt;
    opt.seed = 41 + static_cast<uint64_t>(crash_at);
    opt.crash_at_step = crash_at;
    opt.faults = {Fault(NodeFaultSpec::Kind::kCrash, 2, 40, 60)};
    auto r =
        RunCell("fo_plane_crash_" + std::to_string(crash_at), opt);
    EXPECT_EQ(r.recoveries, 1);
    EXPECT_GE(r.deaths_declared, 1u);
  }
}

// Zombie composed with a plane crash: both fences (epoch and lease) are
// load-bearing in the same run.
TEST(FailoverTortureTest, ZombieWithPlaneCrash) {
  FailoverTortureOptions opt;
  opt.seed = 51;
  opt.crash_at_step = 60;
  opt.faults = {Fault(NodeFaultSpec::Kind::kZombie, 2, 50, 30)};
  auto r = RunCell("fo_zombie_plane", opt);
  EXPECT_EQ(r.recoveries, 1);
}

// Two overlapping node faults of different kinds.
TEST(FailoverTortureTest, ConcurrentCrashAndZombie) {
  FailoverTortureOptions opt;
  opt.seed = 61;
  opt.num_nodes = 5;
  opt.faults = {Fault(NodeFaultSpec::Kind::kCrash, 1, 40, 60),
                Fault(NodeFaultSpec::Kind::kZombie, 4, 45, 30)};
  auto r = RunCell("fo_concurrent", opt);
  EXPECT_GE(r.deaths_declared, 2u);
}

// Detection-threshold sweep: tighter and looser suspicion gaps and
// grace dwells all converge with the invariants intact.
TEST(FailoverTortureTest, DetectionThresholdSweep) {
  struct Cell {
    DurationSeconds suspect_after;
    DurationSeconds dead_grace;
    DurationSeconds lease_ttl;
  };
  const std::vector<Cell> cells = {
      {90, 60, 180}, {150, 120, 240}, {240, 180, 360}};
  int idx = 0;
  for (const Cell& c : cells) {
    FailoverTortureOptions opt;
    opt.seed = 71 + static_cast<uint64_t>(idx);
    opt.suspect_after = c.suspect_after;
    opt.dead_grace = c.dead_grace;
    opt.lease_ttl = c.lease_ttl;
    opt.faults = {Fault(NodeFaultSpec::Kind::kCrash, 2, 50, 60)};
    auto r = RunCell("fo_sweep_" + std::to_string(idx), opt);
    EXPECT_GE(r.deaths_declared, 1u);
    ++idx;
  }
}

// The passive baseline (detection disabled) still converges — recovery
// happens purely through retry/timeout attrition once the node returns —
// and serves as the latency comparison floor for bench_failover.
TEST(FailoverTortureTest, PassiveBaselineStillConverges) {
  FailoverTortureOptions opt;
  opt.seed = 81;
  opt.detection_enabled = false;
  opt.faults = {Fault(NodeFaultSpec::Kind::kCrash, 2, 40, 40)};
  auto r = RunCell("fo_passive", opt);
  EXPECT_EQ(r.deaths_declared, 0u);
  EXPECT_EQ(r.failover_requeues, 0u);
  EXPECT_EQ(r.diverted_dispatches, 0u);
  EXPECT_EQ(r.self_quiesces, 0u);
}

// A fault-free run with detection enabled must behave exactly like the
// workload without the subsystem: no deaths, no quiesces, no refusals —
// the detector is pure observation on the healthy path.
TEST(FailoverTortureTest, FaultFreeRunIsQuiet) {
  FailoverTortureOptions opt;
  opt.seed = 91;
  auto r = RunCell("fo_quiet", opt);
  EXPECT_EQ(r.deaths_declared, 0u);
  EXPECT_EQ(r.failover_requeues, 0u);
  EXPECT_EQ(r.self_quiesces, 0u);
  EXPECT_EQ(r.lease_expired_rejected, 0u);
  EXPECT_EQ(r.lease_probes, 0u);
  EXPECT_EQ(r.suspects_gray_failure, 0u);
}

// Fault-free equivalence: the accepted/resumed workload of a run with
// the detector on equals the run with it off — on the healthy path the
// subsystem changes nothing observable.
TEST(FailoverTortureTest, FaultFreeDetectionIsObservationOnly) {
  FailoverTortureOptions on;
  on.seed = 92;
  auto r_on = RunCell("fo_eq_on", on);

  FailoverTortureOptions off;
  off.seed = 92;
  off.detection_enabled = false;
  auto r_off = RunCell("fo_eq_off", off);

  EXPECT_EQ(r_on.accepted_reactive, r_off.accepted_reactive);
  EXPECT_EQ(r_on.total_resumed, r_off.total_resumed);
  EXPECT_EQ(r_on.transport.dropped, r_off.transport.dropped);
  EXPECT_EQ(r_on.retransmissions, r_off.retransmissions);
}

}  // namespace
}  // namespace prorp::sim
