// Fleet-level regression for the failure-detection subsystem
// (SimOptions::failure_detection_enabled) and the injected node crash:
//  * fault-free, detection is pure observation — the run's workload
//    output is identical to a plain transported run (the ISSUE's
//    bit-identity acceptance criterion);
//  * under a node crash, the lease tracker declares the node dead and
//    the failover engine re-places its evicted databases on survivors,
//    beating the passive baseline's login QoS without losing a login;
//  * under the storm layer, login waits caused by the crash are
//    attributed to failover (vs outage) wait, and detection shrinks them.

#include <gtest/gtest.h>

#include "sim/fleet_simulator.h"
#include "workload/region.h"

namespace prorp::sim {
namespace {

using policy::PolicyMode;

constexpr EpochSeconds kT0 = Days(1004);  // a Monday
constexpr EpochSeconds kMeasureFrom = kT0 + Days(30);
constexpr EpochSeconds kEnd = kT0 + Days(35);

SimOptions BaseOptions() {
  SimOptions options;
  options.mode = PolicyMode::kProactive;
  options.measure_from = kMeasureFrom;
  options.end = kEnd;
  options.seed = 7;
  options.num_nodes = 4;  // outage_rate_per_day stays 0: no outages
  options.use_transport = true;
  return options;
}

void ExpectIdenticalWorkload(const SimReport& a, const SimReport& b) {
  EXPECT_EQ(a.kpi.logins_total, b.kpi.logins_total);
  EXPECT_EQ(a.kpi.logins_available, b.kpi.logins_available);
  EXPECT_EQ(a.kpi.logins_reactive, b.kpi.logins_reactive);
  EXPECT_EQ(a.kpi.proactive_resumes, b.kpi.proactive_resumes);
  EXPECT_EQ(a.kpi.physical_pauses, b.kpi.physical_pauses);
  EXPECT_EQ(a.kpi.forced_evictions, b.kpi.forced_evictions);
  EXPECT_EQ(a.kpi.predictions, b.kpi.predictions);
  EXPECT_DOUBLE_EQ(a.usage.active, b.usage.active);
  EXPECT_DOUBLE_EQ(a.usage.reclaimed, b.usage.reclaimed);
  EXPECT_DOUBLE_EQ(a.usage.unavailable, b.usage.unavailable);
  EXPECT_EQ(a.recorder.size(), b.recorder.size());
  EXPECT_EQ(a.diagnostics.observed_iterations,
            b.diagnostics.observed_iterations);
  EXPECT_EQ(a.diagnostics.mitigated, b.diagnostics.mitigated);
  EXPECT_EQ(a.diagnostics.incidents, b.diagnostics.incidents);
  EXPECT_EQ(a.robustness.resume_failures_injected,
            b.robustness.resume_failures_injected);
}

TEST(FleetFailoverTest, DetectionIsPureObservationOnFaultFreeRun) {
  // The acceptance bar: with the tracker enabled but no fault injected,
  // the lease loop rides alongside the workload without perturbing a
  // single decision — only the event count (lease ticks) may differ.
  auto traces =
      workload::GenerateFleet(workload::RegionEU1(), 40, kT0, kEnd, 13);
  SimOptions plain = BaseOptions();
  // Exercise retry/mitigation paths so the identity check covers the
  // failure plumbing, not just the happy path.
  plain.eviction_per_hour = 0.1;
  plain.resume_failure_probability = 0.02;
  SimOptions detected = plain;
  detected.failure_detection_enabled = true;
  auto a = RunFleetSimulation(traces, plain);
  auto b = RunFleetSimulation(traces, detected);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_GT(b->kpi.proactive_resumes, 0u);
  ExpectIdenticalWorkload(*a, *b);
  // Healthy fleet: the detector saw grants everywhere and stayed quiet.
  EXPECT_EQ(b->robustness.node_deaths, 0u);
  EXPECT_EQ(b->robustness.node_rejoins, 0u);
  EXPECT_EQ(b->robustness.failover_requeues, 0u);
  EXPECT_EQ(b->robustness.resume_failures_node_down, 0u);
}

TEST(FleetFailoverTest, NodeCrashDetectionRePlacesAndBeatsPassiveQos) {
  auto traces =
      workload::GenerateFleet(workload::RegionEU1(), 60, kT0, kEnd, 13);
  SimOptions passive = BaseOptions();
  passive.node_crash_node = 1;
  // Early evening: the day's databases idle in logical pause, so the
  // node still hosts warm resources worth losing.
  passive.node_crash_at = kMeasureFrom + Days(1) + Hours(18);
  passive.node_crash_duration = Days(1);
  SimOptions active = passive;
  active.failure_detection_enabled = true;
  auto a = RunFleetSimulation(traces, passive);
  auto b = RunFleetSimulation(traces, active);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  // The crash fired identically in both arms: the pre-crash prefix is
  // fault-free and bit-identical, so the evicted set is the same.
  EXPECT_GT(a->kpi.forced_evictions, 0u);
  EXPECT_EQ(a->kpi.forced_evictions, b->kpi.forced_evictions);
  EXPECT_EQ(a->robustness.node_crash_windows, 1u);
  EXPECT_EQ(b->robustness.node_crash_windows, 1u);

  // No accepted login is lost in either arm.
  EXPECT_GT(a->kpi.logins_total, 0u);
  EXPECT_EQ(a->kpi.logins_total, b->kpi.logins_total);

  // Passive arm: nobody declares anything; the evicted databases stay
  // cold until their logins find them.
  EXPECT_EQ(a->robustness.node_deaths, 0u);
  EXPECT_EQ(a->robustness.failover_requeues, 0u);

  // Active arm: the tracker declared the death, the engine re-placed the
  // evicted databases on survivors, and the node rejoined after its
  // restart + cooldown.
  EXPECT_GE(b->robustness.node_deaths, 1u);
  EXPECT_GT(b->robustness.failover_requeues, 0u);
  EXPECT_GE(b->robustness.node_rejoins, 1u);

  // The QoS claim: re-placing cold databases before their logins arrive
  // converts reactive logins into available ones.
  EXPECT_GT(b->kpi.logins_available, a->kpi.logins_available);
  EXPECT_LT(b->kpi.logins_reactive, a->kpi.logins_reactive);
}

TEST(FleetFailoverTest, CrashRunsAreDeterministicInSeed) {
  auto traces =
      workload::GenerateFleet(workload::RegionEU1(), 40, kT0, kEnd, 13);
  SimOptions opt = BaseOptions();
  opt.failure_detection_enabled = true;
  opt.node_crash_node = 2;
  opt.node_crash_at = kMeasureFrom + Days(2);
  opt.node_crash_duration = Hours(6);
  auto a = RunFleetSimulation(traces, opt);
  auto b = RunFleetSimulation(traces, opt);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectIdenticalWorkload(*a, *b);
  EXPECT_EQ(a->events_processed, b->events_processed);
  EXPECT_EQ(a->robustness.node_deaths, b->robustness.node_deaths);
  EXPECT_EQ(a->robustness.failover_requeues,
            b->robustness.failover_requeues);
  EXPECT_EQ(a->robustness.failover_deduped, b->robustness.failover_deduped);
  EXPECT_EQ(a->robustness.resume_failures_node_down,
            b->robustness.resume_failures_node_down);
}

TEST(FleetFailoverTest, StormLoginWaitsAttributeToFailoverAndShrink) {
  // Under the storm layer every reactive login's wait is measured; waits
  // that start inside the crash window on the crashed node are
  // attributed to failover (S2's split).  Detection both shortens them
  // (diversion to survivors) and pre-warms the evicted databases.
  auto traces =
      workload::GenerateFleet(workload::RegionEU1(), 60, kT0, kEnd, 13);
  SimOptions passive = BaseOptions();
  passive.resume_concurrency_per_node = 2;  // storm layer on
  passive.node_crash_node = 1;
  passive.node_crash_at = kMeasureFrom + Days(1) + Hours(18);
  passive.node_crash_duration = Days(1);
  SimOptions active = passive;
  active.failure_detection_enabled = true;
  auto a = RunFleetSimulation(traces, passive);
  auto b = RunFleetSimulation(traces, active);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  // No outages configured: every attributed wait is a failover wait.
  EXPECT_EQ(a->robustness.outage_waited_logins, 0u);
  EXPECT_EQ(b->robustness.outage_waited_logins, 0u);
  // The passive arm's crash-window logins wait on the dead node's
  // retransmit/timeout machinery; with detection the dispatcher diverts
  // them to survivors, so the total attributed wait shrinks.
  EXPECT_GT(a->robustness.failover_wait_seconds, 0u);
  EXPECT_LT(b->robustness.failover_wait_seconds,
            a->robustness.failover_wait_seconds);
  EXPECT_GT(b->robustness.failover_requeues, 0u);
}

}  // namespace
}  // namespace prorp::sim
