#include "sim/fleet_simulator.h"

#include <gtest/gtest.h>

#include "workload/region.h"

namespace prorp::sim {
namespace {

using policy::PolicyMode;
using workload::DbTrace;
using workload::Session;

constexpr EpochSeconds kT0 = Days(1004);  // a Monday
constexpr EpochSeconds kMeasureFrom = kT0 + Days(30);
constexpr EpochSeconds kEnd = kT0 + Days(35);

/// A database with two sessions per working day: 9:00-12:00 and
/// 13:00-17:00.  The 1 h lunch gap stays within any logical pause; the
/// 16 h overnight gap exceeds l = 7 h.
DbTrace DailyTwoSessionTrace(uint32_t id) {
  DbTrace trace;
  trace.db_id = id;
  trace.pattern = workload::PatternType::kDaily;
  for (EpochSeconds day = kT0; day < kEnd; day += Days(1)) {
    trace.sessions.push_back({day + Hours(9), day + Hours(12)});
    trace.sessions.push_back({day + Hours(13), day + Hours(17)});
  }
  trace.created_at = trace.sessions.front().start;
  return trace;
}

SimOptions BaseOptions(PolicyMode mode) {
  SimOptions options;
  options.mode = mode;
  options.measure_from = kMeasureFrom;
  options.end = kEnd;
  options.seed = 7;
  return options;
}

TEST(FleetSimulatorTest, RequiresEndTime) {
  SimOptions options;
  options.end = 0;
  auto r = RunFleetSimulation({}, options);
  EXPECT_FALSE(r.ok());
}

TEST(FleetSimulatorTest, ReactivePolicyOnDailyPattern) {
  std::vector<DbTrace> traces = {DailyTwoSessionTrace(0)};
  auto report = RunFleetSimulation(traces, BaseOptions(PolicyMode::kReactive));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const auto& kpi = report->kpi;
  // 5 measured days x 2 logins/day = 10 first-logins-after-idle.
  EXPECT_EQ(kpi.logins_total, 10u);
  // Lunch logins (5) find the logical pause; morning logins (5) hit a
  // physically paused database.
  EXPECT_EQ(kpi.logins_available, 5u);
  EXPECT_EQ(kpi.logins_reactive, 5u);
  EXPECT_DOUBLE_EQ(kpi.QosAvailablePct(), 50.0);
  // Idle time: 1 h lunch + 7 h logical pause tail per day out of 24 h.
  EXPECT_NEAR(kpi.IdleTotalPct(), 100.0 * 8.0 / 24.0, 1.5);
  EXPECT_GT(kpi.unavailable_pct, 0.0);
  EXPECT_EQ(kpi.proactive_resumes, 0u);
}

TEST(FleetSimulatorTest, ProactivePolicyOnDailyPattern) {
  std::vector<DbTrace> traces = {DailyTwoSessionTrace(0)};
  auto report =
      RunFleetSimulation(traces, BaseOptions(PolicyMode::kProactive));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const auto& kpi = report->kpi;
  EXPECT_EQ(kpi.logins_total, 10u);
  // The overnight pause ends with a control-plane pre-warm: all logins
  // find resources available.
  EXPECT_EQ(kpi.logins_available, 10u) << kpi.ToString();
  EXPECT_GT(kpi.proactive_resumes, 0u);
  // Proactively pre-warmed idle time exists but is small (5 min/day).
  EXPECT_GT(kpi.idle_proactive_correct_pct, 0.0);
  // The proactive policy reclaims the overnight idle the reactive policy
  // burns: its idle total must be far below reactive's ~33%.
  EXPECT_LT(kpi.IdleTotalPct(), 15.0);
  EXPECT_DOUBLE_EQ(kpi.unavailable_pct, 0.0);
}

TEST(FleetSimulatorTest, AlwaysOnNeverReclaims) {
  std::vector<DbTrace> traces = {DailyTwoSessionTrace(0)};
  auto report =
      RunFleetSimulation(traces, BaseOptions(PolicyMode::kAlwaysOn));
  ASSERT_TRUE(report.ok());
  const auto& kpi = report->kpi;
  EXPECT_DOUBLE_EQ(kpi.QosAvailablePct(), 100.0);
  EXPECT_DOUBLE_EQ(kpi.reclaimed_pct, 0.0);
  // 24h/day allocated, 7h/day used => ~70% idle.
  EXPECT_NEAR(kpi.IdleTotalPct(), 100.0 * 17.0 / 24.0, 1.5);
  EXPECT_EQ(kpi.physical_pauses, 0u);
}

TEST(FleetSimulatorTest, EvictionPressureDegradesReactiveQos) {
  std::vector<DbTrace> traces = {DailyTwoSessionTrace(0)};
  SimOptions options = BaseOptions(PolicyMode::kReactive);
  options.eviction_per_hour = 5.0;  // brutal pressure: ~12 min to eviction
  auto report = RunFleetSimulation(traces, options);
  ASSERT_TRUE(report.ok());
  // Even the 1 h lunch gap now mostly ends physically paused.
  EXPECT_LT(report->kpi.QosAvailablePct(), 30.0);
  EXPECT_GT(report->kpi.forced_evictions, 0u);
}

TEST(FleetSimulatorTest, ResumeFailureInjectionRaisesIncidents) {
  std::vector<DbTrace> traces = {DailyTwoSessionTrace(0)};
  SimOptions options = BaseOptions(PolicyMode::kProactive);
  options.resume_failure_probability = 1.0;  // every attempt fails
  auto report = RunFleetSimulation(traces, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->kpi.proactive_resumes, 0u);
  EXPECT_GT(report->diagnostics.incidents, 0u);
  // Morning logins degrade to reactive resumes.
  EXPECT_EQ(report->kpi.logins_reactive, 5u);
}

TEST(FleetSimulatorTest, TransientFailuresAreMitigated) {
  std::vector<DbTrace> traces = {DailyTwoSessionTrace(0)};
  SimOptions options = BaseOptions(PolicyMode::kProactive);
  options.resume_failure_probability = 0.5;
  auto report = RunFleetSimulation(traces, options);
  ASSERT_TRUE(report.ok());
  // Retries inside the iteration mitigate most transient failures; the
  // customer experience stays intact.
  EXPECT_GT(report->kpi.proactive_resumes, 0u);
  EXPECT_GT(report->diagnostics.stuck_workflows, 0u);
  EXPECT_GT(report->diagnostics.mitigated, 0u);
}

TEST(FleetSimulatorTest, DisablingProactiveResumeLosesQos) {
  std::vector<DbTrace> traces = {DailyTwoSessionTrace(0)};
  SimOptions options = BaseOptions(PolicyMode::kProactive);
  options.proactive_resume_enabled = false;  // ablation
  auto report = RunFleetSimulation(traces, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->kpi.proactive_resumes, 0u);
  EXPECT_EQ(report->kpi.logins_reactive, 5u);  // mornings unprotected
}

TEST(FleetSimulatorTest, SqlScanPathMatchesIndexPath) {
  std::vector<DbTrace> traces;
  for (uint32_t i = 0; i < 5; ++i) {
    traces.push_back(DailyTwoSessionTrace(i));
  }
  SimOptions fast = BaseOptions(PolicyMode::kProactive);
  SimOptions slow = fast;
  slow.use_sql_scan_for_resume_op = true;
  auto a = RunFleetSimulation(traces, fast);
  auto b = RunFleetSimulation(traces, slow);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->kpi.logins_available, b->kpi.logins_available);
  EXPECT_EQ(a->kpi.proactive_resumes, b->kpi.proactive_resumes);
  EXPECT_EQ(a->kpi.physical_pauses, b->kpi.physical_pauses);
  EXPECT_DOUBLE_EQ(a->kpi.IdleTotalPct(), b->kpi.IdleTotalPct());
}

TEST(FleetSimulatorTest, DeterministicInSeed) {
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 50, kT0,
                                        kEnd, 11);
  SimOptions options = BaseOptions(PolicyMode::kProactive);
  options.eviction_per_hour = 0.05;
  auto a = RunFleetSimulation(traces, options);
  auto b = RunFleetSimulation(traces, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->kpi.logins_available, b->kpi.logins_available);
  EXPECT_EQ(a->kpi.logins_reactive, b->kpi.logins_reactive);
  EXPECT_DOUBLE_EQ(a->kpi.IdleTotalPct(), b->kpi.IdleTotalPct());
  EXPECT_EQ(a->recorder.size(), b->recorder.size());
}

TEST(FleetSimulatorTest, HistoryStaysCompact) {
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 60, kT0,
                                        kEnd, 3);
  SimOptions options = BaseOptions(PolicyMode::kProactive);
  auto report = RunFleetSimulation(traces, options);
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->history_tuples.count(), 0u);
  // Histories are pruned to h = 28 days; even bursty databases stay within
  // the paper's worst case of a few thousand tuples / under ~74 KB.
  EXPECT_LT(report->history_bytes.Max(), 80.0 * 1024.0);
}

TEST(FleetSimulatorTest, AllocationCensusIsSane) {
  std::vector<DbTrace> traces = {DailyTwoSessionTrace(0)};
  auto report =
      RunFleetSimulation(traces, BaseOptions(PolicyMode::kProactive));
  ASSERT_TRUE(report.ok());
  // Samples every 5 minutes across the 5-day measurement window.
  EXPECT_GT(report->allocated_samples.count(), 1000u);
  // One database: allocation count is always 0 or 1.
  EXPECT_GE(report->allocated_samples.Min(), 0.0);
  EXPECT_LE(report->allocated_samples.Max(), 1.0);
  EXPECT_GT(report->allocated_samples.Mean(), 0.0);
  // The always-on policy keeps it allocated the whole time.
  auto always = RunFleetSimulation(
      traces, BaseOptions(PolicyMode::kAlwaysOn));
  ASSERT_TRUE(always.ok());
  EXPECT_DOUBLE_EQ(always->allocated_samples.Min(), 1.0);
}

TEST(FleetSimulatorTest, PredictionsCountedInKpi) {
  std::vector<DbTrace> traces = {DailyTwoSessionTrace(0)};
  auto proactive =
      RunFleetSimulation(traces, BaseOptions(PolicyMode::kProactive));
  auto reactive =
      RunFleetSimulation(traces, BaseOptions(PolicyMode::kReactive));
  ASSERT_TRUE(proactive.ok());
  ASSERT_TRUE(reactive.ok());
  EXPECT_GT(proactive->kpi.predictions, 0u);
  EXPECT_EQ(reactive->kpi.predictions, 0u);
}

TEST(FleetSimulatorTest, MixedFleetProactiveBeatsReactive) {
  // The headline comparison on a realistic region mix.
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 150, kT0,
                                        kEnd, 5);
  SimOptions reactive = BaseOptions(PolicyMode::kReactive);
  reactive.eviction_per_hour = 0.05;
  SimOptions proactive = BaseOptions(PolicyMode::kProactive);
  proactive.eviction_per_hour = 0.05;
  auto r = RunFleetSimulation(traces, reactive);
  auto p = RunFleetSimulation(traces, proactive);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(p.ok());
  EXPECT_GT(p->kpi.QosAvailablePct(), r->kpi.QosAvailablePct())
      << "reactive: " << r->kpi.ToString()
      << "\nproactive: " << p->kpi.ToString();
  EXPECT_GT(p->kpi.proactive_resumes, 0u);
}

}  // namespace
}  // namespace prorp::sim
