#include "sim/fleet_simulator.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "workload/region.h"

namespace prorp::sim {
namespace {

using policy::PolicyMode;
using workload::DbTrace;
using workload::Session;

constexpr EpochSeconds kT0 = Days(1004);  // a Monday
constexpr EpochSeconds kMeasureFrom = kT0 + Days(30);
constexpr EpochSeconds kEnd = kT0 + Days(35);

/// A database with two sessions per working day: 9:00-12:00 and
/// 13:00-17:00.  The 1 h lunch gap stays within any logical pause; the
/// 16 h overnight gap exceeds l = 7 h.
DbTrace DailyTwoSessionTrace(uint32_t id) {
  DbTrace trace;
  trace.db_id = id;
  trace.pattern = workload::PatternType::kDaily;
  for (EpochSeconds day = kT0; day < kEnd; day += Days(1)) {
    trace.sessions.push_back({day + Hours(9), day + Hours(12)});
    trace.sessions.push_back({day + Hours(13), day + Hours(17)});
  }
  trace.created_at = trace.sessions.front().start;
  return trace;
}

SimOptions BaseOptions(PolicyMode mode) {
  SimOptions options;
  options.mode = mode;
  options.measure_from = kMeasureFrom;
  options.end = kEnd;
  options.seed = 7;
  return options;
}

TEST(FleetSimulatorTest, RequiresEndTime) {
  SimOptions options;
  options.end = 0;
  auto r = RunFleetSimulation({}, options);
  EXPECT_FALSE(r.ok());
}

TEST(FleetSimulatorTest, ReactivePolicyOnDailyPattern) {
  std::vector<DbTrace> traces = {DailyTwoSessionTrace(0)};
  auto report = RunFleetSimulation(traces, BaseOptions(PolicyMode::kReactive));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const auto& kpi = report->kpi;
  // 5 measured days x 2 logins/day = 10 first-logins-after-idle.
  EXPECT_EQ(kpi.logins_total, 10u);
  // Lunch logins (5) find the logical pause; morning logins (5) hit a
  // physically paused database.
  EXPECT_EQ(kpi.logins_available, 5u);
  EXPECT_EQ(kpi.logins_reactive, 5u);
  EXPECT_DOUBLE_EQ(kpi.QosAvailablePct(), 50.0);
  // Idle time: 1 h lunch + 7 h logical pause tail per day out of 24 h.
  EXPECT_NEAR(kpi.IdleTotalPct(), 100.0 * 8.0 / 24.0, 1.5);
  EXPECT_GT(kpi.unavailable_pct, 0.0);
  EXPECT_EQ(kpi.proactive_resumes, 0u);
}

TEST(FleetSimulatorTest, ProactivePolicyOnDailyPattern) {
  std::vector<DbTrace> traces = {DailyTwoSessionTrace(0)};
  auto report =
      RunFleetSimulation(traces, BaseOptions(PolicyMode::kProactive));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const auto& kpi = report->kpi;
  EXPECT_EQ(kpi.logins_total, 10u);
  // The overnight pause ends with a control-plane pre-warm: all logins
  // find resources available.
  EXPECT_EQ(kpi.logins_available, 10u) << kpi.ToString();
  EXPECT_GT(kpi.proactive_resumes, 0u);
  // Proactively pre-warmed idle time exists but is small (5 min/day).
  EXPECT_GT(kpi.idle_proactive_correct_pct, 0.0);
  // The proactive policy reclaims the overnight idle the reactive policy
  // burns: its idle total must be far below reactive's ~33%.
  EXPECT_LT(kpi.IdleTotalPct(), 15.0);
  EXPECT_DOUBLE_EQ(kpi.unavailable_pct, 0.0);
}

TEST(FleetSimulatorTest, AlwaysOnNeverReclaims) {
  std::vector<DbTrace> traces = {DailyTwoSessionTrace(0)};
  auto report =
      RunFleetSimulation(traces, BaseOptions(PolicyMode::kAlwaysOn));
  ASSERT_TRUE(report.ok());
  const auto& kpi = report->kpi;
  EXPECT_DOUBLE_EQ(kpi.QosAvailablePct(), 100.0);
  EXPECT_DOUBLE_EQ(kpi.reclaimed_pct, 0.0);
  // 24h/day allocated, 7h/day used => ~70% idle.
  EXPECT_NEAR(kpi.IdleTotalPct(), 100.0 * 17.0 / 24.0, 1.5);
  EXPECT_EQ(kpi.physical_pauses, 0u);
}

TEST(FleetSimulatorTest, EvictionPressureDegradesReactiveQos) {
  std::vector<DbTrace> traces = {DailyTwoSessionTrace(0)};
  SimOptions options = BaseOptions(PolicyMode::kReactive);
  options.eviction_per_hour = 5.0;  // brutal pressure: ~12 min to eviction
  auto report = RunFleetSimulation(traces, options);
  ASSERT_TRUE(report.ok());
  // Even the 1 h lunch gap now mostly ends physically paused.
  EXPECT_LT(report->kpi.QosAvailablePct(), 30.0);
  EXPECT_GT(report->kpi.forced_evictions, 0u);
}

TEST(FleetSimulatorTest, ResumeFailureInjectionRaisesIncidents) {
  std::vector<DbTrace> traces = {DailyTwoSessionTrace(0)};
  SimOptions options = BaseOptions(PolicyMode::kProactive);
  options.resume_failure_probability = 1.0;  // every attempt fails
  auto report = RunFleetSimulation(traces, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->kpi.proactive_resumes, 0u);
  EXPECT_GT(report->diagnostics.incidents, 0u);
  // Morning logins degrade to reactive resumes.
  EXPECT_EQ(report->kpi.logins_reactive, 5u);
}

TEST(FleetSimulatorTest, TransientFailuresAreMitigated) {
  std::vector<DbTrace> traces = {DailyTwoSessionTrace(0)};
  SimOptions options = BaseOptions(PolicyMode::kProactive);
  options.resume_failure_probability = 0.5;
  auto report = RunFleetSimulation(traces, options);
  ASSERT_TRUE(report.ok());
  // Retries inside the iteration mitigate most transient failures; the
  // customer experience stays intact.
  EXPECT_GT(report->kpi.proactive_resumes, 0u);
  EXPECT_GT(report->diagnostics.stuck_workflows, 0u);
  EXPECT_GT(report->diagnostics.mitigated, 0u);
}

TEST(FleetSimulatorTest, DisablingProactiveResumeLosesQos) {
  std::vector<DbTrace> traces = {DailyTwoSessionTrace(0)};
  SimOptions options = BaseOptions(PolicyMode::kProactive);
  options.proactive_resume_enabled = false;  // ablation
  auto report = RunFleetSimulation(traces, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->kpi.proactive_resumes, 0u);
  EXPECT_EQ(report->kpi.logins_reactive, 5u);  // mornings unprotected
}

TEST(FleetSimulatorTest, SqlScanPathMatchesIndexPath) {
  std::vector<DbTrace> traces;
  for (uint32_t i = 0; i < 5; ++i) {
    traces.push_back(DailyTwoSessionTrace(i));
  }
  SimOptions fast = BaseOptions(PolicyMode::kProactive);
  SimOptions slow = fast;
  slow.use_sql_scan_for_resume_op = true;
  auto a = RunFleetSimulation(traces, fast);
  auto b = RunFleetSimulation(traces, slow);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->kpi.logins_available, b->kpi.logins_available);
  EXPECT_EQ(a->kpi.proactive_resumes, b->kpi.proactive_resumes);
  EXPECT_EQ(a->kpi.physical_pauses, b->kpi.physical_pauses);
  EXPECT_DOUBLE_EQ(a->kpi.IdleTotalPct(), b->kpi.IdleTotalPct());
}

TEST(FleetSimulatorTest, DeterministicInSeed) {
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 50, kT0,
                                        kEnd, 11);
  SimOptions options = BaseOptions(PolicyMode::kProactive);
  options.eviction_per_hour = 0.05;
  auto a = RunFleetSimulation(traces, options);
  auto b = RunFleetSimulation(traces, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->kpi.logins_available, b->kpi.logins_available);
  EXPECT_EQ(a->kpi.logins_reactive, b->kpi.logins_reactive);
  EXPECT_DOUBLE_EQ(a->kpi.IdleTotalPct(), b->kpi.IdleTotalPct());
  EXPECT_EQ(a->recorder.size(), b->recorder.size());
}

/// Regression for the cancelled-timer bookkeeping bug.  SyncTimer() used
/// to leave `scheduled_timer` pointing at the old timestamp when the
/// controller cancelled its timer (NextTimerAt() == 0, e.g. on physical
/// pause).  When a later logical pause re-requested a timer at that same
/// timestamp — the prediction boundary is stable across an eviction /
/// pre-warm cycle — the re-arm was suppressed and the stale event from
/// the previous lifecycle generation was honoured in its original queue
/// position.  In this trace that flips the order of a timer check and a
/// coincident capacity eviction: the timer-initiated expiry pause wins
/// and the forced eviction (whose restore path re-schedules the pre-warm)
/// is silently dropped, changing the QoS of every subsequent login.
///
/// The expected counters below are the fixed behaviour; the pre-fix code
/// yields logins_available=8, physical_pauses=9, proactive_resumes=8,
/// forced_evictions=3 on the same trace.
TEST(FleetSimulatorTest, CancelledTimerDoesNotSwallowReArmedTimer) {
  constexpr EpochSeconds kStart = Days(1005);
  // Activity trace distilled from GenerateFleet(RegionEU1(), 40, seed 4),
  // database 21, which deterministically hits the timer/eviction race
  // under eviction_per_hour = 1 and a 1 h logical pause.
  DbTrace busy;
  busy.db_id = 1;
  busy.sessions = {
      {86874441, 86883444}, {86884544, 86892447}, {87049653, 87071129},
      {87135539, 87142128}, {87220990, 87225852}, {87227500, 87230714},
      {87309359, 87312695}, {87314530, 87316031}, {87393287, 87401008},
      {87402387, 87408729}, {87479526, 87485074}, {87485386, 87490623},
      {87566043, 87572075}, {87654175, 87657351}, {87659396, 87660527},
      {87740872, 87758246}, {87827125, 87829494}, {87830007, 87831863},
      {87912853, 87917678}, {88000004, 88009271}, {88086285, 88092594},
      {88094681, 88098904}, {88171349, 88180470}, {88257738, 88259766},
      {88431345, 88434139}, {88435884, 88436933}, {88517488, 88532991},
      {88604539, 88607328}, {88608225, 88610117}, {88691049, 88696967},
      {88699177, 88702885}, {88862398, 88864885}, {88865556, 88867372},
      {88947893, 88954188}, {88954887, 88960483}, {89035155, 89038689},
      {89040646, 89042223}, {89122495, 89126537}, {89129001, 89130580},
      {89207843, 89222344}, {89295543, 89298495}, {89300121, 89301448},
      {89381837, 89387694}, {89389743, 89393551}, {89467049, 89477163},
      {89478148, 89487277}, {89553620, 89566733}, {89639697, 89647512},
      {89649593, 89655327},
  };
  busy.created_at = busy.sessions.front().start;
  // A single-session pacemaker database anchors the proactive resume
  // operation's tick schedule at the time the original fleet's earliest
  // database would have.
  DbTrace pacemaker;
  pacemaker.db_id = 0;
  pacemaker.sessions = {{86834012, 86834072}};
  pacemaker.created_at = pacemaker.sessions.front().start;
  std::vector<DbTrace> traces = {pacemaker, busy};

  SimOptions options;
  options.mode = PolicyMode::kProactive;
  options.measure_from = kStart + Days(28);
  options.end = kStart + Days(33);
  options.eviction_per_hour = 1.0;
  // Reproduces the eviction hazard stream database 21 drew in the
  // original 40-database fleet (seed 4007): the per-database stream is
  // seeded with seed ^ (kGolden * (id + 1)), so XOR-ing the old and new
  // id mixes re-targets it to fleet position 1.
  options.seed = 0xa4aa86820ef25e43ULL;
  options.config.policy.logical_pause_duration = Hours(1);

  auto report = RunFleetSimulation(traces, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const auto& kpi = report->kpi;
  EXPECT_EQ(kpi.logins_total, 9u) << kpi.ToString();
  EXPECT_EQ(kpi.logins_available, 7u) << kpi.ToString();
  EXPECT_EQ(kpi.logins_reactive, 2u) << kpi.ToString();
  EXPECT_EQ(kpi.physical_pauses, 7u) << kpi.ToString();
  EXPECT_EQ(kpi.proactive_resumes, 5u) << kpi.ToString();
  EXPECT_EQ(kpi.forced_evictions, 2u) << kpi.ToString();
}

TEST(FleetSimulatorTest, ShardedRunMatchesSerialBitExactly) {
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 50, kT0,
                                        kEnd, 11);
  for (PolicyMode mode : {PolicyMode::kReactive, PolicyMode::kAlwaysOn}) {
    SimOptions serial = BaseOptions(mode);
    serial.eviction_per_hour = 0.2;
    SimOptions sharded = serial;
    sharded.num_threads = 4;
    auto a = RunFleetSimulation(traces, serial);
    auto b = RunFleetSimulation(traces, sharded);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->kpi.logins_total, b->kpi.logins_total);
    EXPECT_EQ(a->kpi.logins_available, b->kpi.logins_available);
    EXPECT_EQ(a->kpi.logins_reactive, b->kpi.logins_reactive);
    EXPECT_EQ(a->kpi.logical_pauses, b->kpi.logical_pauses);
    EXPECT_EQ(a->kpi.physical_pauses, b->kpi.physical_pauses);
    EXPECT_EQ(a->kpi.forced_evictions, b->kpi.forced_evictions);
    EXPECT_EQ(a->kpi.predictions, b->kpi.predictions);
    // Phase durations are integer-second sums, so the shard merge must be
    // exact, not merely close.
    EXPECT_DOUBLE_EQ(a->usage.active, b->usage.active);
    EXPECT_DOUBLE_EQ(a->usage.idle_logical, b->usage.idle_logical);
    EXPECT_DOUBLE_EQ(a->usage.reclaimed, b->usage.reclaimed);
    EXPECT_DOUBLE_EQ(a->usage.unavailable, b->usage.unavailable);
    EXPECT_DOUBLE_EQ(a->kpi.IdleTotalPct(), b->kpi.IdleTotalPct());
    EXPECT_EQ(a->recorder.size(), b->recorder.size());
    EXPECT_DOUBLE_EQ(a->allocated_samples.Mean(),
                     b->allocated_samples.Mean());
    EXPECT_DOUBLE_EQ(a->allocated_samples.Max(), b->allocated_samples.Max());
  }
}

TEST(FleetSimulatorTest, ProactiveModeIgnoresThreadCount) {
  // Proactive databases share the metadata store and management service,
  // so the sharded mode must fall back to the serial event loop.
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 20, kT0,
                                        kEnd, 11);
  SimOptions serial = BaseOptions(PolicyMode::kProactive);
  serial.eviction_per_hour = 0.2;
  SimOptions threaded = serial;
  threaded.num_threads = 4;
  auto a = RunFleetSimulation(traces, serial);
  auto b = RunFleetSimulation(traces, threaded);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->kpi.logins_available, b->kpi.logins_available);
  EXPECT_EQ(a->kpi.proactive_resumes, b->kpi.proactive_resumes);
  EXPECT_EQ(a->recorder.size(), b->recorder.size());
  EXPECT_DOUBLE_EQ(a->kpi.IdleTotalPct(), b->kpi.IdleTotalPct());
}

TEST(FleetSimulatorTest, HistoryStaysCompact) {
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 60, kT0,
                                        kEnd, 3);
  SimOptions options = BaseOptions(PolicyMode::kProactive);
  auto report = RunFleetSimulation(traces, options);
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->history_tuples.count(), 0u);
  // Histories are pruned to h = 28 days; even bursty databases stay within
  // the paper's worst case of a few thousand tuples / under ~74 KB.
  EXPECT_LT(report->history_bytes.Max(), 80.0 * 1024.0);
}

TEST(FleetSimulatorTest, AllocationCensusIsSane) {
  std::vector<DbTrace> traces = {DailyTwoSessionTrace(0)};
  auto report =
      RunFleetSimulation(traces, BaseOptions(PolicyMode::kProactive));
  ASSERT_TRUE(report.ok());
  // Samples every 5 minutes across the 5-day measurement window.
  EXPECT_GT(report->allocated_samples.count(), 1000u);
  // One database: allocation count is always 0 or 1.
  EXPECT_GE(report->allocated_samples.Min(), 0.0);
  EXPECT_LE(report->allocated_samples.Max(), 1.0);
  EXPECT_GT(report->allocated_samples.Mean(), 0.0);
  // The always-on policy keeps it allocated the whole time.
  auto always = RunFleetSimulation(
      traces, BaseOptions(PolicyMode::kAlwaysOn));
  ASSERT_TRUE(always.ok());
  EXPECT_DOUBLE_EQ(always->allocated_samples.Min(), 1.0);
}

TEST(FleetSimulatorTest, PredictionsCountedInKpi) {
  std::vector<DbTrace> traces = {DailyTwoSessionTrace(0)};
  auto proactive =
      RunFleetSimulation(traces, BaseOptions(PolicyMode::kProactive));
  auto reactive =
      RunFleetSimulation(traces, BaseOptions(PolicyMode::kReactive));
  ASSERT_TRUE(proactive.ok());
  ASSERT_TRUE(reactive.ok());
  EXPECT_GT(proactive->kpi.predictions, 0u);
  EXPECT_EQ(reactive->kpi.predictions, 0u);
}

TEST(FleetSimulatorTest, NodeOutagesFailResumesButDegradeGracefully) {
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 40, kT0,
                                        kEnd, 9);
  SimOptions healthy = BaseOptions(PolicyMode::kProactive);
  SimOptions outages = healthy;
  outages.num_nodes = 4;
  outages.outage_rate_per_day = 24;  // heavy: ~one 10-min outage/hour/node
  outages.outage_duration = Minutes(10);
  auto a = RunFleetSimulation(traces, healthy);
  auto b = RunFleetSimulation(traces, outages);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->robustness.outage_windows, 0u);
  EXPECT_GT(b->robustness.outage_windows, 0u);
  EXPECT_GT(b->robustness.resume_failures_outage, 0u);
  EXPECT_GT(b->diagnostics.stuck_workflows, 0u);
  // Graceful: outages shrink proactive QoS but every login still lands
  // (failed pre-warms fall back to reactive resume, never an error).
  EXPECT_EQ(a->kpi.logins_total, b->kpi.logins_total);
  EXPECT_LE(b->kpi.QosAvailablePct(), a->kpi.QosAvailablePct());
  // The same fleet under the reactive policy is the floor.
  auto r = RunFleetSimulation(traces, BaseOptions(PolicyMode::kReactive));
  ASSERT_TRUE(r.ok());
  EXPECT_GE(b->kpi.QosAvailablePct(), r->kpi.QosAvailablePct());
}

TEST(FleetSimulatorTest, MitigationAccountingReconcilesExactly) {
  // Every workflow that failed at least once must land in exactly one
  // terminal bucket — across outage failures, injected transient
  // failures, and retries cut short by the end of the run.
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 60, kT0,
                                        kEnd, 13);
  SimOptions options = BaseOptions(PolicyMode::kProactive);
  options.num_nodes = 4;
  options.outage_rate_per_day = 12;
  options.resume_failure_probability = 0.3;
  options.eviction_per_hour = 0.05;
  auto report = RunFleetSimulation(traces, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const auto& d = report->diagnostics;
  EXPECT_GT(d.stuck_workflows, 0u);
  EXPECT_EQ(d.stuck_workflows, d.mitigated + d.incidents +
                                   d.failed_then_skipped +
                                   report->pending_failed)
      << "stuck=" << d.stuck_workflows << " mitigated=" << d.mitigated
      << " incidents=" << d.incidents
      << " failed_then_skipped=" << d.failed_then_skipped
      << " pending=" << report->pending_failed;
  EXPECT_EQ(d.backoff_retries_scheduled > 0,
            d.backoff_delay_seconds_total > 0);
}

TEST(FleetSimulatorTest, OutageRunsAreDeterministicInSeed) {
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 30, kT0,
                                        kEnd, 17);
  SimOptions options = BaseOptions(PolicyMode::kProactive);
  options.num_nodes = 4;
  options.outage_rate_per_day = 24;
  auto a = RunFleetSimulation(traces, options);
  auto b = RunFleetSimulation(traces, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->robustness.outage_windows, b->robustness.outage_windows);
  EXPECT_EQ(a->robustness.outage_seconds, b->robustness.outage_seconds);
  EXPECT_EQ(a->robustness.resume_failures_outage,
            b->robustness.resume_failures_outage);
  EXPECT_EQ(a->kpi.logins_available, b->kpi.logins_available);
  EXPECT_EQ(a->diagnostics.breaker_opens, b->diagnostics.breaker_opens);
  EXPECT_EQ(a->recorder.size(), b->recorder.size());
}

TEST(FleetSimulatorTest, ShardedOutageScheduleMatchesSerial) {
  // The outage schedule is derived from (seed, node) only; a sharded
  // reactive run must report the identical fleet-global schedule and
  // bit-identical KPIs.
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 50, kT0,
                                        kEnd, 11);
  SimOptions serial = BaseOptions(PolicyMode::kReactive);
  serial.num_nodes = 4;
  serial.outage_rate_per_day = 24;
  SimOptions sharded = serial;
  sharded.num_threads = 4;
  auto a = RunFleetSimulation(traces, serial);
  auto b = RunFleetSimulation(traces, sharded);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a->robustness.outage_windows, 0u);
  EXPECT_EQ(a->robustness.outage_windows, b->robustness.outage_windows);
  EXPECT_EQ(a->robustness.outage_seconds, b->robustness.outage_seconds);
  EXPECT_EQ(a->kpi.logins_available, b->kpi.logins_available);
  EXPECT_DOUBLE_EQ(a->usage.active, b->usage.active);
  EXPECT_EQ(a->recorder.size(), b->recorder.size());
}

TEST(FleetSimulatorTest, ScrubbingIsKpiNeutralOnFaultFreeRun) {
  // Acceptance gate: enabling SQL-backed history stores and periodic
  // scrubbing on a fault-free fleet must not move a single policy KPI.
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 20, kT0,
                                        kEnd, 11);
  SimOptions plain = BaseOptions(PolicyMode::kProactive);
  SimOptions scrubbed = plain;
  scrubbed.sql_history_count = 5;
  scrubbed.scrub_interval = Hours(6);
  auto a = RunFleetSimulation(traces, plain);
  auto b = RunFleetSimulation(traces, scrubbed);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->kpi.logins_total, b->kpi.logins_total);
  EXPECT_EQ(a->kpi.logins_available, b->kpi.logins_available);
  EXPECT_EQ(a->kpi.logins_reactive, b->kpi.logins_reactive);
  EXPECT_EQ(a->kpi.proactive_resumes, b->kpi.proactive_resumes);
  EXPECT_EQ(a->kpi.physical_pauses, b->kpi.physical_pauses);
  EXPECT_EQ(a->kpi.predictions, b->kpi.predictions);
  EXPECT_DOUBLE_EQ(a->kpi.IdleTotalPct(), b->kpi.IdleTotalPct());
  EXPECT_EQ(a->recorder.size(), b->recorder.size());

  // The scrubber actually ran — and found a healthy fleet.
  EXPECT_GT(b->robustness.scrub_passes, 0u);
  EXPECT_GT(b->robustness.scrub_pages, 0u);
  EXPECT_EQ(b->robustness.scrub_errors, 0u);
  EXPECT_EQ(b->robustness.corruption_detected, 0u);
  EXPECT_EQ(b->robustness.corruption_repaired, 0u);
  EXPECT_EQ(b->robustness.corruption_quarantined, 0u);
  EXPECT_EQ(b->robustness.corruption_errors, 0u);
  EXPECT_EQ(a->robustness.scrub_passes, 0u);
}

TEST(FleetSimulatorTest, SqlHistoryBackendIsKpiNeutral) {
  // The SQL-backed history store answers the same queries as the
  // in-memory one, so swapping backends must not change policy outcomes.
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 10, kT0,
                                        kEnd, 3);
  SimOptions mem = BaseOptions(PolicyMode::kProactive);
  SimOptions sql = mem;
  sql.sql_history_count = 10;  // every database
  auto a = RunFleetSimulation(traces, mem);
  auto b = RunFleetSimulation(traces, sql);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->kpi.logins_available, b->kpi.logins_available);
  EXPECT_EQ(a->kpi.proactive_resumes, b->kpi.proactive_resumes);
  EXPECT_EQ(a->kpi.predictions, b->kpi.predictions);
  EXPECT_DOUBLE_EQ(a->kpi.IdleTotalPct(), b->kpi.IdleTotalPct());
  EXPECT_EQ(a->history_tuples.count(), b->history_tuples.count());
}

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(FleetSimulatorTest, CrashAtRequiresJournalDir) {
  std::vector<DbTrace> traces = {DailyTwoSessionTrace(0)};
  SimOptions options = BaseOptions(PolicyMode::kProactive);
  options.control_plane_crash_at = kMeasureFrom;
  auto r = RunFleetSimulation(traces, options);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(FleetSimulatorTest, DurableControlPlaneMatchesLegacyBitExactly) {
  // Journaling every control-plane transition must be behavior-neutral:
  // the durable run replays the exact decision sequence of the legacy
  // in-memory run, including transient-failure mitigation draws.
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 40, kT0,
                                        kEnd, 13);
  SimOptions legacy = BaseOptions(PolicyMode::kProactive);
  legacy.eviction_per_hour = 0.1;
  legacy.resume_failure_probability = 0.02;
  SimOptions durable = legacy;
  durable.control_plane_journal_dir = FreshDir("sim_cp_identity");
  durable.control_plane_checkpoint_every = 512;
  auto a = RunFleetSimulation(traces, legacy);
  auto b = RunFleetSimulation(traces, durable);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(b->control_plane_recoveries, 0u);
  EXPECT_EQ(a->kpi.logins_total, b->kpi.logins_total);
  EXPECT_EQ(a->kpi.logins_available, b->kpi.logins_available);
  EXPECT_EQ(a->kpi.logins_reactive, b->kpi.logins_reactive);
  EXPECT_EQ(a->kpi.proactive_resumes, b->kpi.proactive_resumes);
  EXPECT_EQ(a->kpi.physical_pauses, b->kpi.physical_pauses);
  EXPECT_EQ(a->kpi.forced_evictions, b->kpi.forced_evictions);
  EXPECT_EQ(a->kpi.predictions, b->kpi.predictions);
  EXPECT_DOUBLE_EQ(a->usage.active, b->usage.active);
  EXPECT_DOUBLE_EQ(a->usage.reclaimed, b->usage.reclaimed);
  EXPECT_DOUBLE_EQ(a->usage.unavailable, b->usage.unavailable);
  EXPECT_EQ(a->recorder.size(), b->recorder.size());
  EXPECT_EQ(a->diagnostics.observed_iterations,
            b->diagnostics.observed_iterations);
  EXPECT_EQ(a->diagnostics.mitigated, b->diagnostics.mitigated);
  EXPECT_EQ(a->diagnostics.incidents, b->diagnostics.incidents);
  EXPECT_EQ(a->robustness.resume_failures_injected,
            b->robustness.resume_failures_injected);
}

TEST(FleetSimulatorTest, DurableControlPlaneSurvivesMidRunRestart) {
  // Kill the control plane in the middle of the measurement window; the
  // recovered incarnation must pick up the exact journaled state, so the
  // run's KPIs match a crash-free durable run bit for bit.
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 40, kT0,
                                        kEnd, 13);
  SimOptions smooth = BaseOptions(PolicyMode::kProactive);
  smooth.control_plane_journal_dir = FreshDir("sim_cp_smooth");
  smooth.control_plane_checkpoint_every = 512;
  SimOptions crashed = smooth;
  crashed.control_plane_journal_dir = FreshDir("sim_cp_crashed");
  crashed.control_plane_crash_at = kMeasureFrom + Days(2) + Hours(3);
  auto a = RunFleetSimulation(traces, smooth);
  auto b = RunFleetSimulation(traces, crashed);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->control_plane_recoveries, 0u);
  EXPECT_EQ(b->control_plane_recoveries, 1u);
  EXPECT_GT(b->control_plane_replayed, 0u);
  EXPECT_EQ(a->kpi.logins_total, b->kpi.logins_total);
  EXPECT_EQ(a->kpi.logins_available, b->kpi.logins_available);
  EXPECT_EQ(a->kpi.logins_reactive, b->kpi.logins_reactive);
  EXPECT_EQ(a->kpi.proactive_resumes, b->kpi.proactive_resumes);
  EXPECT_EQ(a->kpi.physical_pauses, b->kpi.physical_pauses);
  EXPECT_EQ(a->kpi.predictions, b->kpi.predictions);
  EXPECT_DOUBLE_EQ(a->usage.active, b->usage.active);
  EXPECT_DOUBLE_EQ(a->usage.unavailable, b->usage.unavailable);
  EXPECT_EQ(a->recorder.size(), b->recorder.size());
}

TEST(FleetSimulatorTest, MixedFleetProactiveBeatsReactive) {
  // The headline comparison on a realistic region mix.
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 150, kT0,
                                        kEnd, 5);
  SimOptions reactive = BaseOptions(PolicyMode::kReactive);
  reactive.eviction_per_hour = 0.05;
  SimOptions proactive = BaseOptions(PolicyMode::kProactive);
  proactive.eviction_per_hour = 0.05;
  auto r = RunFleetSimulation(traces, reactive);
  auto p = RunFleetSimulation(traces, proactive);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(p.ok());
  EXPECT_GT(p->kpi.QosAvailablePct(), r->kpi.QosAvailablePct())
      << "reactive: " << r->kpi.ToString()
      << "\nproactive: " << p->kpi.ToString();
  EXPECT_GT(p->kpi.proactive_resumes, 0u);
}

}  // namespace
}  // namespace prorp::sim
