#include <filesystem>
#include <vector>

#include <gtest/gtest.h>

#include "sim/fleet_simulator.h"
#include "workload/region.h"

// The legacy event heap is kept as the differential-testing oracle for
// the timer wheel: both backends must drain the same ticks in the same
// order, so every number a run publishes — counters, percentages, phase
// durations, histogram buckets — must match bit-for-bit, not just
// approximately.  EXPECT_EQ on the doubles is deliberate.

namespace prorp::sim {
namespace {

using policy::PolicyMode;

constexpr EpochSeconds kT0 = Days(1004);  // a Monday
constexpr EpochSeconds kMeasureFrom = kT0 + Days(30);
constexpr EpochSeconds kEnd = kT0 + Days(35);

SimOptions BaseOptions(PolicyMode mode, uint64_t seed = 7) {
  SimOptions options;
  options.mode = mode;
  options.measure_from = kMeasureFrom;
  options.end = kEnd;
  options.seed = seed;
  return options;
}

void ExpectBitIdentical(const SimReport& a, const SimReport& b) {
  // Event volume and per-kind counters.
  EXPECT_EQ(a.events_processed, b.events_processed);
  for (size_t i = 0; i < telemetry::kNumEventKinds; ++i) {
    auto kind = static_cast<telemetry::EventKind>(i);
    EXPECT_EQ(a.counts.Count(kind), b.counts.Count(kind))
        << telemetry::EventKindName(kind);
  }

  // KPI.
  EXPECT_EQ(a.kpi.logins_total, b.kpi.logins_total);
  EXPECT_EQ(a.kpi.logins_available, b.kpi.logins_available);
  EXPECT_EQ(a.kpi.logins_reactive, b.kpi.logins_reactive);
  EXPECT_EQ(a.kpi.logical_pauses, b.kpi.logical_pauses);
  EXPECT_EQ(a.kpi.physical_pauses, b.kpi.physical_pauses);
  EXPECT_EQ(a.kpi.proactive_resumes, b.kpi.proactive_resumes);
  EXPECT_EQ(a.kpi.forced_evictions, b.kpi.forced_evictions);
  EXPECT_EQ(a.kpi.predictions, b.kpi.predictions);
  EXPECT_EQ(a.kpi.idle_logical_pct, b.kpi.idle_logical_pct);
  EXPECT_EQ(a.kpi.idle_proactive_correct_pct, b.kpi.idle_proactive_correct_pct);
  EXPECT_EQ(a.kpi.idle_proactive_wrong_pct, b.kpi.idle_proactive_wrong_pct);
  EXPECT_EQ(a.kpi.active_pct, b.kpi.active_pct);
  EXPECT_EQ(a.kpi.reclaimed_pct, b.kpi.reclaimed_pct);
  EXPECT_EQ(a.kpi.unavailable_pct, b.kpi.unavailable_pct);

  // Phase durations (integer-second sums; exact).
  EXPECT_EQ(a.usage.active, b.usage.active);
  EXPECT_EQ(a.usage.idle_logical, b.usage.idle_logical);
  EXPECT_EQ(a.usage.idle_proactive_correct, b.usage.idle_proactive_correct);
  EXPECT_EQ(a.usage.idle_proactive_wrong, b.usage.idle_proactive_wrong);
  EXPECT_EQ(a.usage.reclaimed, b.usage.reclaimed);
  EXPECT_EQ(a.usage.unavailable, b.usage.unavailable);

  // Robustness counters (outage windows, injected failures, scrubbing).
  EXPECT_EQ(a.robustness.outage_windows, b.robustness.outage_windows);
  EXPECT_EQ(a.robustness.outage_seconds, b.robustness.outage_seconds);
  EXPECT_EQ(a.robustness.resume_failures_outage,
            b.robustness.resume_failures_outage);
  EXPECT_EQ(a.robustness.resume_failures_injected,
            b.robustness.resume_failures_injected);
  EXPECT_EQ(a.robustness.degraded_enters, b.robustness.degraded_enters);
  EXPECT_EQ(a.robustness.degraded_exits, b.robustness.degraded_exits);
  EXPECT_EQ(a.robustness.history_errors, b.robustness.history_errors);
  EXPECT_EQ(a.robustness.maintenance_touches,
            b.robustness.maintenance_touches);

  // Mitigation / graceful-degradation diagnostics.
  EXPECT_EQ(a.diagnostics.observed_iterations, b.diagnostics.observed_iterations);
  EXPECT_EQ(a.diagnostics.max_queue_depth, b.diagnostics.max_queue_depth);
  EXPECT_EQ(a.diagnostics.stuck_workflows, b.diagnostics.stuck_workflows);
  EXPECT_EQ(a.diagnostics.mitigated, b.diagnostics.mitigated);
  EXPECT_EQ(a.diagnostics.skipped_state_changed,
            b.diagnostics.skipped_state_changed);
  EXPECT_EQ(a.diagnostics.failed_then_skipped,
            b.diagnostics.failed_then_skipped);
  EXPECT_EQ(a.diagnostics.failed_then_shed, b.diagnostics.failed_then_shed);
  EXPECT_EQ(a.diagnostics.incidents, b.diagnostics.incidents);
  EXPECT_EQ(a.diagnostics.backoff_retries_scheduled,
            b.diagnostics.backoff_retries_scheduled);
  EXPECT_EQ(a.diagnostics.shed_resumes, b.diagnostics.shed_resumes);
  EXPECT_EQ(a.diagnostics.breaker_opens, b.diagnostics.breaker_opens);
  EXPECT_EQ(a.pending_failed, b.pending_failed);
  EXPECT_EQ(a.control_plane_recoveries, b.control_plane_recoveries);
  EXPECT_EQ(a.control_plane_replayed, b.control_plane_replayed);

  // Streaming histograms: bucket-wise exact.
  auto expect_hist_eq = [](const telemetry::Histogram& x,
                           const telemetry::Histogram& y) {
    EXPECT_EQ(x.count(), y.count());
    EXPECT_EQ(x.max(), y.max());
    EXPECT_EQ(x.sum(), y.sum());
    EXPECT_EQ(x.buckets(), y.buckets());
  };
  expect_hist_eq(a.login_delay_hist, b.login_delay_hist);
  expect_hist_eq(a.history_tuples_hist, b.history_tuples_hist);
  expect_hist_eq(a.history_bytes_hist, b.history_bytes_hist);

  // Per-event summaries and the buffered recorder (full telemetry only).
  EXPECT_EQ(a.recorder.size(), b.recorder.size());
  EXPECT_EQ(a.resumed_per_iteration.count(), b.resumed_per_iteration.count());
  EXPECT_EQ(a.login_delay.count(), b.login_delay.count());
  EXPECT_EQ(a.allocated_samples.count(), b.allocated_samples.count());
  if (!a.allocated_samples.empty()) {
    EXPECT_EQ(a.allocated_samples.Sum(), b.allocated_samples.Sum());
    EXPECT_EQ(a.allocated_samples.Max(), b.allocated_samples.Max());
  }
  if (!a.login_delay.empty()) {
    EXPECT_EQ(a.login_delay.Sum(), b.login_delay.Sum());
    EXPECT_EQ(a.login_delay.Max(), b.login_delay.Max());
  }
}

/// Runs the same fleet through both queue backends and compares the
/// full reports.
void RunBothBackends(const std::vector<workload::DbTrace>& traces,
                     SimOptions options) {
  options.use_legacy_event_heap = false;
  auto wheel = RunFleetSimulation(traces, options);
  options.use_legacy_event_heap = true;
  auto heap = RunFleetSimulation(traces, options);
  ASSERT_TRUE(wheel.ok()) << wheel.status().ToString();
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  ExpectBitIdentical(*wheel, *heap);
}

TEST(TimerWheelDifferentialTest, AllModesAndRegions) {
  for (PolicyMode mode : {PolicyMode::kReactive, PolicyMode::kProactive,
                          PolicyMode::kAlwaysOn}) {
    for (const auto& profile : {workload::RegionEU1(), workload::RegionUS1()}) {
      auto traces = workload::GenerateFleet(profile, 40, kT0, kEnd, 11);
      RunBothBackends(traces, BaseOptions(mode));
    }
  }
}

TEST(TimerWheelDifferentialTest, AcrossSeeds) {
  auto traces = workload::GenerateFleet(workload::RegionEU2(), 40, kT0,
                                        kEnd, 23);
  for (uint64_t seed : {1u, 7u, 99u}) {
    SimOptions options = BaseOptions(PolicyMode::kProactive, seed);
    options.eviction_per_hour = 0.2;
    RunBothBackends(traces, options);
  }
}

TEST(TimerWheelDifferentialTest, ShardedRuns) {
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 40, kT0,
                                        kEnd, 11);
  for (PolicyMode mode : {PolicyMode::kReactive, PolicyMode::kAlwaysOn}) {
    SimOptions options = BaseOptions(mode);
    options.eviction_per_hour = 0.2;
    options.num_threads = 4;
    RunBothBackends(traces, options);
  }
}

TEST(TimerWheelDifferentialTest, UnderNodeOutages) {
  auto traces = workload::GenerateFleet(workload::RegionUS2(), 40, kT0,
                                        kEnd, 5);
  SimOptions options = BaseOptions(PolicyMode::kProactive);
  options.num_nodes = 4;
  options.outage_rate_per_day = 1.0;
  options.outage_duration = Minutes(20);
  options.resume_failure_probability = 0.05;
  RunBothBackends(traces, options);
}

TEST(TimerWheelDifferentialTest, UnderResumeStorm) {
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 40, kT0,
                                        kEnd, 9);
  SimOptions options = BaseOptions(PolicyMode::kProactive);
  options.resume_concurrency_per_node = 2;
  options.node_admission_rate = 0.5;
  options.fleet_outage_at = kMeasureFrom + Days(1);
  options.fleet_outage_duration = Minutes(30);
  RunBothBackends(traces, options);
}

TEST(TimerWheelDifferentialTest, UnderControlPlaneCrash) {
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 30, kT0,
                                        kEnd, 13);
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "prorp_wheel_diff_journal";
  SimOptions options = BaseOptions(PolicyMode::kProactive);
  options.control_plane_crash_at = kMeasureFrom + Days(2);
  options.control_plane_journal_dir = dir.string();

  options.use_legacy_event_heap = false;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  auto wheel = RunFleetSimulation(traces, options);

  options.use_legacy_event_heap = true;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  auto heap = RunFleetSimulation(traces, options);

  ASSERT_TRUE(wheel.ok()) << wheel.status().ToString();
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  EXPECT_GE(wheel->control_plane_recoveries, 1u);
  ExpectBitIdentical(*wheel, *heap);
  std::filesystem::remove_all(dir);
}

TEST(TimerWheelDifferentialTest, StreamingTelemetryMatchesFull) {
  // kStreaming must lose nothing the KPI pipeline consumes: identical
  // counters, percentages and histograms, with only the buffered
  // recorder and per-event summaries dropped.
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 40, kT0,
                                        kEnd, 11);
  SimOptions options = BaseOptions(PolicyMode::kProactive);
  options.eviction_per_hour = 0.2;
  options.telemetry = SimOptions::Telemetry::kFull;
  auto full = RunFleetSimulation(traces, options);
  options.telemetry = SimOptions::Telemetry::kStreaming;
  auto streaming = RunFleetSimulation(traces, options);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();

  EXPECT_GT(full->recorder.size(), 0u);
  EXPECT_EQ(streaming->recorder.size(), 0u);
  EXPECT_EQ(full->events_processed, streaming->events_processed);
  for (size_t i = 0; i < telemetry::kNumEventKinds; ++i) {
    auto kind = static_cast<telemetry::EventKind>(i);
    EXPECT_EQ(full->counts.Count(kind), streaming->counts.Count(kind));
  }
  // The running counters agree with a recount of the buffered log.
  auto recount = telemetry::EventCounts::FromRecorder(full->recorder);
  for (size_t i = 0; i < telemetry::kNumEventKinds; ++i) {
    auto kind = static_cast<telemetry::EventKind>(i);
    EXPECT_EQ(full->counts.Count(kind), recount.Count(kind));
  }
  EXPECT_EQ(full->kpi.logins_available, streaming->kpi.logins_available);
  EXPECT_EQ(full->kpi.active_pct, streaming->kpi.active_pct);
  EXPECT_EQ(full->kpi.IdleTotalPct(), streaming->kpi.IdleTotalPct());
  EXPECT_EQ(full->usage.active, streaming->usage.active);
  EXPECT_EQ(full->login_delay_hist.buckets(),
            streaming->login_delay_hist.buckets());
  EXPECT_EQ(full->history_tuples_hist.buckets(),
            streaming->history_tuples_hist.buckets());
  EXPECT_EQ(full->history_bytes_hist.buckets(),
            streaming->history_bytes_hist.buckets());
}

TEST(TimerWheelDifferentialTest, QueueShrinksAfterSameTickStorm) {
  // Every database logs in at the identical instant: one tick holding
  // the whole fleet, the worst case the post-storm shrink policy exists
  // for.  Without it the burst's high-water slot capacity (and the
  // legacy heap's) would be held for the rest of the run.
  const size_t kFleet = 20'000;
  std::vector<workload::DbTrace> traces;
  traces.reserve(kFleet);
  for (uint32_t i = 0; i < kFleet; ++i) {
    workload::DbTrace t;
    t.db_id = i;
    t.pattern = workload::PatternType::kDaily;
    // Two sessions with a >l overnight-sized gap: the second login is a
    // fleet-wide simultaneous login-after-idle storm.
    t.sessions.push_back({kT0 + Hours(1), kT0 + Hours(2)});
    t.sessions.push_back({kT0 + Hours(12), kT0 + Hours(13)});
    t.created_at = kT0 + Hours(1);
    traces.push_back(std::move(t));
  }
  SimOptions options;
  options.mode = PolicyMode::kReactive;
  options.end = kT0 + Days(1);
  options.seed = 7;
  for (bool legacy : {false, true}) {
    options.use_legacy_event_heap = legacy;
    auto report = RunFleetSimulation(traces, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->kpi.logins_total, kFleet);
    // 20k simultaneous events transit the queue; at >= 32 bytes per
    // event that's >= 640 KB at the high-water mark.  The run must not
    // still be holding it at the end.
    EXPECT_LT(report->event_queue_bytes, 600u * 1024)
        << (legacy ? "legacy heap" : "timer wheel");
  }
}

}  // namespace
}  // namespace prorp::sim
