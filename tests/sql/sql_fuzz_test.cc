// Differential fuzzing of the SQL executor: random INSERT / DELETE /
// UPDATE / SELECT statements run against both the engine and a
// std::map-based reference model; every result set must match.

#include <map>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "sql/database.h"

namespace prorp::sql {
namespace {

struct ModelRow {
  int64_t a = 0;
  int64_t b = 0;
};

class SqlFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlFuzzTest, ExecutorMatchesReferenceModel) {
  Rng rng(GetParam());
  Database db;
  ASSERT_TRUE(
      db.Execute("CREATE TABLE t (k BIGINT PRIMARY KEY, a INT, b INT)")
          .ok());
  std::map<int64_t, ModelRow> model;

  auto rand_key = [&]() { return rng.NextInt(-50, 200); };

  for (int op = 0; op < 4000; ++op) {
    double dice = rng.NextDouble();
    if (dice < 0.40) {
      int64_t k = rand_key();
      int64_t a = rng.NextInt(0, 9);
      int64_t b = rng.NextInt(0, 4);
      sql::Params params{{"k", k}, {"a", a}, {"b", b}};
      auto r = db.Execute("INSERT INTO t VALUES (@k, @a, @b)", params);
      if (model.count(k)) {
        EXPECT_TRUE(r.status().IsAlreadyExists()) << "key " << k;
      } else {
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        model[k] = {a, b};
      }
    } else if (dice < 0.55) {
      int64_t lo = rand_key();
      int64_t hi = lo + rng.NextInt(0, 40);
      sql::Params params{{"lo", lo}, {"hi", hi}};
      auto r = db.Execute(
          "DELETE FROM t WHERE k BETWEEN @lo AND @hi", params);
      ASSERT_TRUE(r.ok());
      uint64_t expect = 0;
      for (auto it = model.lower_bound(lo);
           it != model.end() && it->first <= hi;) {
        it = model.erase(it);
        ++expect;
      }
      EXPECT_EQ(r->affected_rows, expect);
    } else if (dice < 0.65) {
      int64_t b = rng.NextInt(0, 4);
      int64_t a = rng.NextInt(0, 9);
      sql::Params params{{"b", b}, {"a", a}};
      auto r = db.Execute("UPDATE t SET a = @a WHERE b = @b", params);
      ASSERT_TRUE(r.ok());
      uint64_t expect = 0;
      for (auto& [k, row] : model) {
        if (row.b == b) {
          row.a = a;
          ++expect;
        }
      }
      EXPECT_EQ(r->affected_rows, expect);
    } else if (dice < 0.85) {
      // Range + residual SELECT.
      int64_t lo = rand_key();
      int64_t hi = lo + rng.NextInt(0, 60);
      int64_t b = rng.NextInt(0, 4);
      sql::Params params{{"lo", lo}, {"hi", hi}, {"b", b}};
      auto r = db.Execute(
          "SELECT k, a FROM t WHERE k >= @lo AND k <= @hi AND b != @b",
          params);
      ASSERT_TRUE(r.ok());
      std::vector<Row> expect;
      for (auto it = model.lower_bound(lo);
           it != model.end() && it->first <= hi; ++it) {
        if (it->second.b != b) {
          expect.push_back({it->first, it->second.a});
        }
      }
      EXPECT_EQ(r->rows, expect) << "range [" << lo << "," << hi << "]";
    } else {
      // Aggregates.
      int64_t b = rng.NextInt(0, 4);
      sql::Params params{{"b", b}};
      auto r = db.Execute(
          "SELECT MIN(k), MAX(a), COUNT(*) FROM t WHERE b = @b", params);
      ASSERT_TRUE(r.ok());
      int64_t min_k = 0, max_a = 0, count = 0;
      bool any = false;
      for (const auto& [k, row] : model) {
        if (row.b != b) continue;
        if (!any) {
          min_k = k;
          max_a = row.a;
        } else {
          min_k = std::min(min_k, k);
          max_a = std::max(max_a, row.a);
        }
        any = true;
        ++count;
      }
      EXPECT_EQ(r->rows[0][2], count);
      EXPECT_EQ(r->nulls[0], !any);
      if (any) {
        EXPECT_EQ(r->rows[0][0], min_k);
        EXPECT_EQ(r->rows[0][1], max_a);
      }
    }
  }
  // Final full-table comparison.
  auto all = db.Execute("SELECT * FROM t");
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->rows.size(), model.size());
  size_t i = 0;
  for (const auto& [k, row] : model) {
    EXPECT_EQ(all->rows[i], (Row{k, row.a, row.b}));
    ++i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlFuzzTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace prorp::sql
