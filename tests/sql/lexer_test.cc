#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace prorp::sql {
namespace {

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("select FROM WhErE");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);  // 3 + end
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "FROM");
  EXPECT_EQ((*tokens)[2].text, "WHERE");
  EXPECT_EQ((*tokens)[3].type, TokenType::kEnd);
}

TEST(LexerTest, IdentifiersKeepCase) {
  auto tokens = Tokenize("time_snapshot Event_Type");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "time_snapshot");
  EXPECT_EQ((*tokens)[1].text, "Event_Type");
}

TEST(LexerTest, IntegersAndParameters) {
  auto tokens = Tokenize("@now 1693526400 @h");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kParameter);
  EXPECT_EQ((*tokens)[0].text, "now");
  EXPECT_EQ((*tokens)[1].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[1].int_value, 1693526400);
  EXPECT_EQ((*tokens)[2].text, "h");
}

TEST(LexerTest, ComparisonOperators) {
  auto tokens = Tokenize("a <= b >= c != d <> e < f > g = h");
  ASSERT_TRUE(tokens.ok());
  std::vector<std::string> ops;
  for (const Token& t : *tokens) {
    if (t.type == TokenType::kSymbol) ops.push_back(t.text);
  }
  EXPECT_EQ(ops, (std::vector<std::string>{"<=", ">=", "!=", "!=", "<", ">",
                                           "="}));
}

TEST(LexerTest, QualifiedNameTokens) {
  auto tokens = Tokenize("sys.pause_resume_history");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);
  EXPECT_EQ((*tokens)[0].text, "sys");
  EXPECT_EQ((*tokens)[1].text, ".");
  EXPECT_EQ((*tokens)[2].text, "pause_resume_history");
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Tokenize("SELECT %").ok());
  EXPECT_FALSE(Tokenize("a ~ b").ok());
}

TEST(LexerTest, RejectsDanglingAt) {
  EXPECT_FALSE(Tokenize("WHERE @ now").ok());
  EXPECT_FALSE(Tokenize("@1abc").ok());
}

TEST(LexerTest, RejectsMalformedNumber) {
  EXPECT_FALSE(Tokenize("123abc").ok());
  EXPECT_FALSE(Tokenize("1.5").ok());
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = Tokenize("   ");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ((*tokens)[0].type, TokenType::kEnd);
}

}  // namespace
}  // namespace prorp::sql
