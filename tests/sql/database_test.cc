#include "sql/database.h"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

namespace prorp::sql {
namespace {

namespace fs = std::filesystem;

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE t (k BIGINT PRIMARY KEY, a INT, "
                            "b INT)")
                    .ok());
    for (int64_t k = 0; k < 10; ++k) {
      auto r = db_.Execute("INSERT INTO t VALUES (" + std::to_string(k) +
                           ", " + std::to_string(k * 10) + ", " +
                           std::to_string(k % 3) + ")");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
  }

  Database db_;
};

TEST_F(DatabaseTest, SelectStar) {
  auto r = db_.Execute("SELECT * FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->columns, (std::vector<std::string>{"k", "a", "b"}));
  ASSERT_EQ(r->rows.size(), 10u);
  EXPECT_EQ(r->rows[3], (Row{3, 30, 0}));
}

TEST_F(DatabaseTest, SelectWithKeyRange) {
  auto r = db_.Execute("SELECT k FROM t WHERE k >= 3 AND k < 6");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->rows[0][0], 3);
  EXPECT_EQ(r->rows[2][0], 5);
}

TEST_F(DatabaseTest, SelectWithResidualFilter) {
  auto r = db_.Execute("SELECT k FROM t WHERE b = 1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 3u);  // k = 1, 4, 7
  EXPECT_EQ(r->rows[0][0], 1);
  EXPECT_EQ(r->rows[1][0], 4);
  EXPECT_EQ(r->rows[2][0], 7);
}

TEST_F(DatabaseTest, SelectCombinedRangeAndResidual) {
  auto r = db_.Execute("SELECT k FROM t WHERE k BETWEEN 2 AND 8 AND b = 0");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);  // k = 3, 6
}

TEST_F(DatabaseTest, NotEqualsOnKeyIsResidual) {
  auto r = db_.Execute("SELECT k FROM t WHERE k != 5");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 9u);
}

TEST_F(DatabaseTest, Aggregates) {
  auto r = db_.Execute(
      "SELECT MIN(k), MAX(k), COUNT(*) FROM t WHERE k >= 4");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0], (Row{4, 9, 6}));
  EXPECT_FALSE(r->nulls[0]);
}

TEST_F(DatabaseTest, AggregatesOverEmptyRangeAreNull) {
  auto r = db_.Execute("SELECT MIN(k), COUNT(*) FROM t WHERE k > 100");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->nulls[0]);           // MIN over empty set is NULL
  EXPECT_FALSE(r->nulls[1]);          // COUNT is 0, not NULL
  EXPECT_EQ(r->rows[0][1], 0);
  EXPECT_TRUE(r->Cell().is_null);
}

TEST_F(DatabaseTest, AggregateOfNonKeyColumn) {
  auto r = db_.Execute("SELECT MAX(a) FROM t WHERE b = 2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], 80);  // k=8 has b=2, a=80
}

TEST_F(DatabaseTest, OrderByAndLimit) {
  auto r = db_.Execute("SELECT k FROM t ORDER BY a DESC LIMIT 3");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->rows[0][0], 9);
  EXPECT_EQ(r->rows[2][0], 7);
}

TEST_F(DatabaseTest, Parameters) {
  Params params{{"lo", 2}, {"hi", 4}};
  auto r = db_.Execute(
      "SELECT COUNT(*) FROM t WHERE @lo <= k AND k <= @hi", params);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], 3);
}

TEST_F(DatabaseTest, UnboundParameterFails) {
  auto r = db_.Execute("SELECT * FROM t WHERE k = @missing");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(DatabaseTest, DuplicateKeyRejected) {
  auto r = db_.Execute("INSERT INTO t VALUES (5, 0, 0)");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsAlreadyExists());
}

TEST_F(DatabaseTest, InsertWithColumnReordering) {
  auto r = db_.Execute("INSERT INTO t (b, k, a) VALUES (1, 100, 2)");
  ASSERT_TRUE(r.ok());
  auto check = db_.Execute("SELECT * FROM t WHERE k = 100");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->rows[0], (Row{100, 2, 1}));
}

TEST_F(DatabaseTest, InsertMissingColumnFails) {
  auto r = db_.Execute("INSERT INTO t (k, a) VALUES (200, 1)");
  EXPECT_FALSE(r.ok());
}

TEST_F(DatabaseTest, DeleteRangeUsesKeyBounds) {
  auto r = db_.Execute("DELETE FROM t WHERE 3 < k AND k < 7");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->affected_rows, 3u);  // 4, 5, 6
  auto count = db_.Execute("SELECT COUNT(*) FROM t");
  EXPECT_EQ(count->rows[0][0], 7);
}

TEST_F(DatabaseTest, DeleteWithResidual) {
  auto r = db_.Execute("DELETE FROM t WHERE b = 0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->affected_rows, 4u);  // k = 0, 3, 6, 9
}

TEST_F(DatabaseTest, DeleteEverything) {
  auto r = db_.Execute("DELETE FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->affected_rows, 10u);
  EXPECT_EQ(db_.Execute("SELECT COUNT(*) FROM t")->rows[0][0], 0);
}

TEST_F(DatabaseTest, UpdateNonKey) {
  auto r = db_.Execute("UPDATE t SET a = 999 WHERE k >= 8");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->affected_rows, 2u);
  EXPECT_EQ(db_.Execute("SELECT a FROM t WHERE k = 9")->rows[0][0], 999);
}

TEST_F(DatabaseTest, UpdateKeyMovesRow) {
  auto r = db_.Execute("UPDATE t SET k = 500 WHERE k = 5");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(db_.Execute("SELECT * FROM t WHERE k = 5")->rows.empty());
  EXPECT_EQ(db_.Execute("SELECT a FROM t WHERE k = 500")->rows[0][0], 50);
}

TEST_F(DatabaseTest, MixedAggregatesAndColumnsRejected) {
  auto r = db_.Execute("SELECT k, COUNT(*) FROM t");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
}

TEST_F(DatabaseTest, UnknownTableAndColumn) {
  EXPECT_TRUE(db_.Execute("SELECT * FROM nope").status().IsNotFound());
  EXPECT_TRUE(
      db_.Execute("SELECT nope FROM t").status().IsInvalidArgument());
}

TEST_F(DatabaseTest, CreateDuplicateTableFails) {
  auto r = db_.Execute("CREATE TABLE t (x BIGINT PRIMARY KEY)");
  EXPECT_TRUE(r.status().IsAlreadyExists());
}

TEST_F(DatabaseTest, CreateWithoutPrimaryKeyFails) {
  auto r = db_.Execute("CREATE TABLE u (x BIGINT, y INT)");
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(DatabaseTest, DropTable) {
  ASSERT_TRUE(db_.Execute("DROP TABLE t").ok());
  EXPECT_TRUE(db_.Execute("SELECT * FROM t").status().IsNotFound());
  EXPECT_TRUE(db_.Execute("DROP TABLE t").status().IsNotFound());
}

TEST_F(DatabaseTest, NonFirstColumnPrimaryKey) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE u (payload INT, id BIGINT PRIMARY "
                          "KEY)")
                  .ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO u VALUES (7, 1)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO u VALUES (8, 2)").ok());
  auto r = db_.Execute("SELECT payload FROM u WHERE id = 2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], 8);
  // Duplicate pk in second position still rejected.
  EXPECT_TRUE(
      db_.Execute("INSERT INTO u VALUES (9, 2)").status().IsAlreadyExists());
}

TEST(DatabaseDurabilityTest, TablesRecoverAcrossReopen) {
  std::string dir = testing::TempDir() + "/sql_db_recover";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    Database db(dir);
    ASSERT_TRUE(
        db.Execute("CREATE TABLE sys.history (ts BIGINT PRIMARY KEY, "
                   "ev INT)")
            .ok());
    ASSERT_TRUE(db.Execute("INSERT INTO sys.history VALUES (100, 1)").ok());
    ASSERT_TRUE(db.Execute("INSERT INTO sys.history VALUES (200, 0)").ok());
  }
  {
    // "The database moved": re-attach by re-running CREATE TABLE.
    Database db(dir);
    ASSERT_TRUE(
        db.Execute("CREATE TABLE sys.history (ts BIGINT PRIMARY KEY, "
                   "ev INT)")
            .ok());
    auto r = db.Execute("SELECT COUNT(*) FROM sys.history");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->rows[0][0], 2);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace prorp::sql
