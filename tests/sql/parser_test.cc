#include "sql/parser.h"

#include <gtest/gtest.h>

namespace prorp::sql {
namespace {

TEST(ParserTest, CreateTable) {
  auto stmt = Parse(
      "CREATE TABLE sys.pause_resume_history ("
      "time_snapshot BIGINT PRIMARY KEY, event_type INT)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& create = std::get<CreateTableStmt>(*stmt);
  EXPECT_EQ(create.table, "sys.pause_resume_history");
  ASSERT_EQ(create.columns.size(), 2u);
  EXPECT_EQ(create.columns[0].name, "time_snapshot");
  EXPECT_TRUE(create.columns[0].primary_key);
  EXPECT_EQ(create.columns[1].name, "event_type");
  EXPECT_FALSE(create.columns[1].primary_key);
}

TEST(ParserTest, InsertWithColumns) {
  auto stmt = Parse(
      "INSERT INTO t (time_snapshot, event_type) VALUES (@time, 1)");
  ASSERT_TRUE(stmt.ok());
  const auto& ins = std::get<InsertStmt>(*stmt);
  EXPECT_EQ(ins.table, "t");
  EXPECT_EQ(ins.columns,
            (std::vector<std::string>{"time_snapshot", "event_type"}));
  ASSERT_EQ(ins.values.size(), 2u);
  EXPECT_EQ(ins.values[0].kind, Operand::Kind::kParameter);
  EXPECT_EQ(ins.values[0].parameter, "time");
  EXPECT_EQ(ins.values[1].kind, Operand::Kind::kLiteral);
  EXPECT_EQ(ins.values[1].literal, 1);
}

TEST(ParserTest, InsertWithoutColumnsAndNegativeLiteral) {
  auto stmt = Parse("INSERT INTO t VALUES (-5, 7)");
  ASSERT_TRUE(stmt.ok());
  const auto& ins = std::get<InsertStmt>(*stmt);
  EXPECT_TRUE(ins.columns.empty());
  EXPECT_EQ(ins.values[0].literal, -5);
}

TEST(ParserTest, SelectAggregates) {
  auto stmt = Parse(
      "SELECT MIN(time_snapshot) AS first_login, MAX(time_snapshot), "
      "COUNT(*) FROM sys.pause_resume_history WHERE event_type = 1 AND "
      "@winStart <= time_snapshot AND time_snapshot <= @winEnd");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& sel = std::get<SelectStmt>(*stmt);
  ASSERT_EQ(sel.items.size(), 3u);
  EXPECT_EQ(sel.items[0].kind, SelectItem::Kind::kMin);
  EXPECT_EQ(sel.items[0].alias, "first_login");
  EXPECT_EQ(sel.items[1].kind, SelectItem::Kind::kMax);
  EXPECT_EQ(sel.items[2].kind, SelectItem::Kind::kCountStar);
  ASSERT_EQ(sel.where.size(), 3u);
  // "@winStart <= time_snapshot" must be normalized to
  // "time_snapshot >= @winStart".
  EXPECT_EQ(sel.where[1].column, "time_snapshot");
  EXPECT_EQ(sel.where[1].op, Comparison::Op::kGe);
  EXPECT_EQ(sel.where[1].rhs.parameter, "winStart");
}

TEST(ParserTest, SelectStarOrderLimit) {
  auto stmt =
      Parse("SELECT * FROM t WHERE a > 3 ORDER BY b DESC LIMIT 10;");
  ASSERT_TRUE(stmt.ok());
  const auto& sel = std::get<SelectStmt>(*stmt);
  EXPECT_EQ(sel.items[0].kind, SelectItem::Kind::kStar);
  ASSERT_TRUE(sel.order_by.has_value());
  EXPECT_EQ(sel.order_by->column, "b");
  EXPECT_FALSE(sel.order_by->ascending);
  EXPECT_EQ(sel.limit, 10);
}

TEST(ParserTest, BetweenExpandsToTwoConjuncts) {
  auto stmt = Parse("SELECT * FROM t WHERE k BETWEEN 5 AND 10 AND v = 1");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& sel = std::get<SelectStmt>(*stmt);
  ASSERT_EQ(sel.where.size(), 3u);
  EXPECT_EQ(sel.where[0].op, Comparison::Op::kGe);
  EXPECT_EQ(sel.where[0].rhs.literal, 5);
  EXPECT_EQ(sel.where[1].op, Comparison::Op::kLe);
  EXPECT_EQ(sel.where[1].rhs.literal, 10);
  EXPECT_EQ(sel.where[2].column, "v");
}

TEST(ParserTest, DeleteWithRange) {
  auto stmt = Parse(
      "DELETE FROM sys.pause_resume_history "
      "WHERE @minTimestamp < time_snapshot AND time_snapshot < "
      "@historyStart");
  ASSERT_TRUE(stmt.ok());
  const auto& del = std::get<DeleteStmt>(*stmt);
  ASSERT_EQ(del.where.size(), 2u);
  EXPECT_EQ(del.where[0].op, Comparison::Op::kGt);  // normalized
  EXPECT_EQ(del.where[1].op, Comparison::Op::kLt);
}

TEST(ParserTest, Update) {
  auto stmt =
      Parse("UPDATE sys.databases SET state = 2, start_of_pred_activity = "
            "@pred WHERE database_id = 17");
  ASSERT_TRUE(stmt.ok());
  const auto& upd = std::get<UpdateStmt>(*stmt);
  EXPECT_EQ(upd.table, "sys.databases");
  ASSERT_EQ(upd.assignments.size(), 2u);
  EXPECT_EQ(upd.assignments[0].first, "state");
  EXPECT_EQ(upd.assignments[0].second.literal, 2);
  EXPECT_EQ(upd.assignments[1].second.parameter, "pred");
  ASSERT_EQ(upd.where.size(), 1u);
}

TEST(ParserTest, DropTable) {
  auto stmt = Parse("DROP TABLE t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(std::get<DropTableStmt>(*stmt).table, "t");
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT * FROM").ok());
  EXPECT_FALSE(Parse("INSERT INTO t VALUES 1, 2").ok());
  EXPECT_FALSE(Parse("CREATE TABLE t").ok());
  EXPECT_FALSE(Parse("DELETE t WHERE a = 1").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE a = 1 extra_token").ok());
  EXPECT_FALSE(Parse("SELECT COUNT(x) FROM t").ok());  // only COUNT(*)
  EXPECT_FALSE(Parse("UPDATE t SET a WHERE b = 1").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t LIMIT x").ok());
}

TEST(ParserTest, CannotNegateParameter) {
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE a = -@p").ok());
}

}  // namespace
}  // namespace prorp::sql
