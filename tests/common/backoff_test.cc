#include "common/backoff.h"

#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "common/config.h"

namespace prorp::common {
namespace {

struct GoldenEntry {
  uint64_t key;
  int attempt;
  DurationSeconds delay;
};

// Golden retry schedule captured from ManagementService before the backoff
// helpers were extracted into common/backoff.h: the extraction must stay
// bit-identical, because the simulator's KPI-identity self-check (and every
// sharded run) depends on the deterministic schedule never drifting.
//
// Default control-plane config: base = 60s, cap = 480s, jitter = 0.25.
constexpr GoldenEntry kDefaultGolden[] = {
    {0, 1, 67},      {0, 2, 131},      {0, 3, 297},      {0, 4, 578},
    {0, 5, 557},     {0, 6, 501},      {0, 7, 500},      {0, 8, 591},
    {1, 1, 69},      {1, 2, 145},      {1, 3, 283},      {1, 4, 538},
    {1, 5, 559},     {1, 6, 508},      {1, 7, 578},      {1, 8, 522},
    {7, 1, 73},      {7, 2, 125},      {7, 3, 246},      {7, 4, 515},
    {7, 5, 561},     {7, 6, 582},      {7, 7, 533},      {7, 8, 512},
    {12345, 1, 70},  {12345, 2, 121},  {12345, 3, 281},  {12345, 4, 504},
    {12345, 5, 504}, {12345, 6, 573},  {12345, 7, 553},  {12345, 8, 530},
    {999999, 1, 66}, {999999, 2, 123}, {999999, 3, 253}, {999999, 4, 527},
    {999999, 5, 507}, {999999, 6, 506}, {999999, 7, 595}, {999999, 8, 515},
};

// A second configuration (base = 30s, cap = 3600s, jitter = 0.5) so the
// goldens cover the cap transition and a different jitter fraction.
constexpr GoldenEntry kAltGolden[] = {
    {3, 1, 42},   {3, 2, 77},   {3, 3, 172},  {3, 4, 350},  {3, 5, 497},
    {3, 6, 1437}, {3, 7, 2301}, {3, 8, 4054}, {3, 9, 4082}, {3, 10, 5054},
    {42, 1, 30},  {42, 2, 75},  {42, 3, 138}, {42, 4, 295}, {42, 5, 632},
    {42, 6, 1391}, {42, 7, 1938}, {42, 8, 3663}, {42, 9, 3741},
    {42, 10, 3803},
};

TEST(BackoffTest, GoldenScheduleDefaultConfig) {
  for (const GoldenEntry& e : kDefaultGolden) {
    EXPECT_EQ(BackoffDelay(60, 480, 0.25, e.key, e.attempt), e.delay)
        << "key=" << e.key << " attempt=" << e.attempt;
  }
}

TEST(BackoffTest, GoldenScheduleAltConfig) {
  for (const GoldenEntry& e : kAltGolden) {
    EXPECT_EQ(BackoffDelay(30, 3600, 0.5, e.key, e.attempt), e.delay)
        << "key=" << e.key << " attempt=" << e.attempt;
  }
}

TEST(BackoffTest, GoldensMatchControlPlaneDefaults) {
  // The default golden table above is only a regression guard if the
  // shipped configuration still uses the captured parameters.
  ControlPlaneConfig cfg;
  EXPECT_EQ(cfg.retry_backoff_base, 60);
  EXPECT_EQ(cfg.retry_backoff_cap, 480);
  EXPECT_DOUBLE_EQ(cfg.retry_jitter_fraction, 0.25);
}

TEST(BackoffTest, NoJitterIsCappedPowerOfTwoSchedule) {
  const DurationSeconds expected[] = {60, 120, 240, 480, 480, 480};
  for (int attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_EQ(BackoffDelay(60, 480, 0.0, 17, attempt),
              expected[attempt - 1]);
  }
}

TEST(BackoffTest, JitterStaysWithinFractionOfBase) {
  for (uint64_t key : {0ull, 5ull, 123456789ull}) {
    for (int attempt = 1; attempt <= 10; ++attempt) {
      DurationSeconds base = CappedExponential(60, 480, attempt - 1);
      DurationSeconds d = BackoffDelay(60, 480, 0.25, key, attempt);
      EXPECT_GE(d, base);
      EXPECT_LE(d, base + base / 4);
    }
  }
}

TEST(BackoffTest, CappedExponentialSaturatesAndClamps) {
  EXPECT_EQ(CappedExponential(60, 480, 0), 60);
  EXPECT_EQ(CappedExponential(60, 480, 3), 480);
  EXPECT_EQ(CappedExponential(60, 480, 100), 480);  // shift-overflow guard
  EXPECT_EQ(CappedExponential(60, 480, -5), 60);    // step clamped at 0
  EXPECT_EQ(CappedExponential(1, std::numeric_limits<int64_t>::max(), 62),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(CappedExponential(1, std::numeric_limits<int64_t>::max(), 10),
            1024);
}

TEST(BackoffTest, WithJitterDegenerateRangesReturnValueUnchanged) {
  EXPECT_EQ(WithJitter(0, 0.5, 1, 2), 0);
  EXPECT_EQ(WithJitter(100, 0.0, 1, 2), 100);
  // fraction * value rounds to a zero-width range.
  EXPECT_EQ(WithJitter(3, 0.1, 1, 2), 3);
}

TEST(BackoffTest, JitterHashIsDeterministicAndInputSensitive) {
  EXPECT_EQ(JitterHash(1, 2), JitterHash(1, 2));
  EXPECT_NE(JitterHash(1, 2), JitterHash(1, 3));
  EXPECT_NE(JitterHash(1, 2), JitterHash(2, 2));
}

}  // namespace
}  // namespace prorp::common
