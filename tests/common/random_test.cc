#include "common/random.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace prorp {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(RngTest, NextDoubleUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RngTest, NextBoolFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 50000; ++i) {
    double v = rng.NextExponential(120.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 50000, 120.0, 5.0);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng a(42);
  Rng child1 = a.Fork();
  Rng b(42);
  Rng child2 = b.Fork();
  // Same parent seed => same child stream.
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(child1.NextU64(), child2.NextU64());
  }
}

TEST(RngTest, ForkStreamIsAPureFunctionOfSeedAndId) {
  // Same (seed, id) always yields the same stream — regardless of how
  // much the parent has been consumed in between.
  Rng a(42);
  Rng early = a.ForkStream(7);
  for (int i = 0; i < 100; ++i) a.NextU64();
  Rng late = a.ForkStream(7);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(early.NextU64(), late.NextU64());
  }
}

TEST(RngTest, ForkStreamDoesNotAdvanceTheParent) {
  // This is the bit-identity property the transport layer leans on:
  // carving off a fault stream must not shift any draw every existing
  // consumer makes.  (Fork(), by contrast, consumes a draw.)
  Rng with(42), without(42);
  std::vector<uint64_t> a, b;
  for (int i = 0; i < 64; ++i) {
    (void)with.ForkStream(static_cast<uint64_t>(i));
    a.push_back(with.NextU64());
    b.push_back(without.NextU64());
  }
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkStreamIdsAreIndependentStreams) {
  Rng parent(42);
  Rng s1 = parent.ForkStream(1);
  Rng s2 = parent.ForkStream(2);
  Rng forked = parent.Fork();
  int same12 = 0, same1f = 0;
  for (int i = 0; i < 64; ++i) {
    uint64_t v1 = s1.NextU64(), v2 = s2.NextU64(), vf = forked.NextU64();
    if (v1 == v2) ++same12;
    if (v1 == vf) ++same1f;
  }
  EXPECT_LT(same12, 2);
  EXPECT_LT(same1f, 2);
}

}  // namespace
}  // namespace prorp
