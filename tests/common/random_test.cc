#include "common/random.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace prorp {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(RngTest, NextDoubleUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RngTest, NextBoolFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 50000; ++i) {
    double v = rng.NextExponential(120.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 50000, 120.0, 5.0);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng a(42);
  Rng child1 = a.Fork();
  Rng b(42);
  Rng child2 = b.Fork();
  // Same parent seed => same child stream.
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(child1.NextU64(), child2.NextU64());
  }
}

}  // namespace
}  // namespace prorp
