#include "common/arena.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace prorp {
namespace {

struct Tracked {
  Tracked(int v, std::vector<int>* log) : value(v), destroy_log(log) {}
  ~Tracked() { destroy_log->push_back(value); }

  int value;
  std::vector<int>* destroy_log;
};

TEST(ArenaPoolTest, PointersStayValidAcrossChunkBoundaries) {
  ArenaPool<uint64_t> pool(/*chunk_capacity=*/4);
  std::vector<uint64_t*> ptrs;
  for (uint64_t i = 0; i < 100; ++i) {
    ptrs.push_back(pool.Emplace(i));
  }
  EXPECT_EQ(pool.size(), 100u);
  // Every pointer handed out earlier still reads back its value, even
  // though 25 chunks were appended after the first one filled.
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(*ptrs[i], i);
  }
  EXPECT_GE(pool.MemoryBytes(), 100 * sizeof(uint64_t));
}

TEST(ArenaPoolTest, ClearDestroysInCreationOrderAndResets) {
  std::vector<int> destroyed;
  ArenaPool<Tracked> pool(/*chunk_capacity=*/3);
  for (int i = 0; i < 10; ++i) {
    pool.Emplace(i, &destroyed);
  }
  pool.Clear();
  ASSERT_EQ(destroyed.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(destroyed[i], i);
  }
  EXPECT_EQ(pool.size(), 0u);
  // The pool is reusable after Clear.
  Tracked* t = pool.Emplace(42, &destroyed);
  EXPECT_EQ(t->value, 42);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ArenaPoolTest, NonTrivialElementsSurviveGrowth) {
  ArenaPool<std::string> pool(/*chunk_capacity=*/2);
  std::string* a = pool.Emplace("a long string that defeats SSO for sure");
  std::string* b = pool.Emplace(100, 'x');
  for (int i = 0; i < 20; ++i) {
    pool.Emplace("filler");
  }
  EXPECT_EQ(*a, "a long string that defeats SSO for sure");
  EXPECT_EQ(b->size(), 100u);
}

TEST(ArenaPoolTest, ZeroChunkCapacityIsClampedToOne) {
  ArenaPool<int> pool(/*chunk_capacity=*/0);
  int* p = pool.Emplace(7);
  EXPECT_EQ(*p, 7);
  EXPECT_EQ(pool.size(), 1u);
}

}  // namespace
}  // namespace prorp
