#include "common/time_util.h"

#include <gtest/gtest.h>

namespace prorp {
namespace {

TEST(TimeUtilTest, UnitConstants) {
  EXPECT_EQ(Minutes(5), 300);
  EXPECT_EQ(Hours(7), 25200);
  EXPECT_EQ(Days(1), 86400);
  EXPECT_EQ(Weeks(1), 604800);
}

TEST(TimeUtilTest, StartOfDay) {
  EXPECT_EQ(StartOfDay(0), 0);
  EXPECT_EQ(StartOfDay(1), 0);
  EXPECT_EQ(StartOfDay(86399), 0);
  EXPECT_EQ(StartOfDay(86400), 86400);
  EXPECT_EQ(StartOfDay(86401), 86400);
}

TEST(TimeUtilTest, SecondsIntoDay) {
  EXPECT_EQ(SecondsIntoDay(0), 0);
  EXPECT_EQ(SecondsIntoDay(Hours(7) + 30), Hours(7) + 30);
  EXPECT_EQ(SecondsIntoDay(Days(3) + Hours(12)), Hours(12));
}

TEST(TimeUtilTest, WeekdayIndex) {
  // 1970-01-01 was a Thursday => Monday-based index 3.
  EXPECT_EQ(WeekdayIndex(0), 3);
  EXPECT_EQ(WeekdayIndex(Days(1)), 4);   // Friday
  EXPECT_EQ(WeekdayIndex(Days(2)), 5);   // Saturday
  EXPECT_EQ(WeekdayIndex(Days(3)), 6);   // Sunday
  EXPECT_EQ(WeekdayIndex(Days(4)), 0);   // Monday
  EXPECT_TRUE(IsWeekend(Days(2)));
  EXPECT_TRUE(IsWeekend(Days(3)));
  EXPECT_FALSE(IsWeekend(Days(4)));
}

TEST(TimeUtilTest, FormatTimestamp) {
  EXPECT_EQ(FormatTimestamp(0), "1970-01-01 00:00:00");
  // 2023-09-01 00:00:00 UTC == 1693526400 (a paper evaluation day).
  EXPECT_EQ(FormatTimestamp(1693526400), "2023-09-01 00:00:00");
  EXPECT_EQ(FormatTimestamp(1693526400 + Hours(13) + Minutes(5) + 9),
            "2023-09-01 13:05:09");
}

TEST(TimeUtilTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(0), "00:00:00");
  EXPECT_EQ(FormatDuration(Minutes(5)), "00:05:00");
  EXPECT_EQ(FormatDuration(Hours(7)), "07:00:00");
  EXPECT_EQ(FormatDuration(Days(2) + Hours(3) + Minutes(15) + 7),
            "2d 03:15:07");
  EXPECT_EQ(FormatDuration(-Minutes(1)), "-00:01:00");
}

TEST(TimeUtilTest, DayIndexMonotone) {
  EXPECT_EQ(DayIndex(0), 0);
  EXPECT_EQ(DayIndex(86399), 0);
  EXPECT_EQ(DayIndex(86400), 1);
  EXPECT_EQ(DayIndex(Days(100) + 5), 100);
}

}  // namespace
}  // namespace prorp
