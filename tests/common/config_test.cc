#include "common/config.h"

#include <gtest/gtest.h>

namespace prorp {
namespace {

// Table 1 of the paper fixes these defaults; the training pipeline and the
// benches rely on them, so pin them here.
TEST(ConfigTest, Table1Defaults) {
  ProrpConfig cfg;
  EXPECT_EQ(cfg.policy.logical_pause_duration, Hours(7));          // l
  EXPECT_EQ(cfg.policy.prediction.history_length, Days(28));       // h
  EXPECT_EQ(cfg.policy.prediction.prediction_horizon, Days(1));    // p
  EXPECT_DOUBLE_EQ(cfg.policy.prediction.confidence_threshold, 0.1);  // c
  EXPECT_EQ(cfg.policy.prediction.window_size, Hours(7));          // w
  EXPECT_EQ(cfg.policy.prediction.window_slide, Minutes(5));       // s
  EXPECT_EQ(cfg.policy.prediction.seasonality, Days(1));
  EXPECT_EQ(cfg.control_plane.prewarm_interval, Minutes(5));       // k
  EXPECT_EQ(cfg.control_plane.resume_operation_period, Minutes(1));
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigTest, NumWindows) {
  PredictionConfig p;  // p = 24h, w = 7h, s = 5min
  EXPECT_EQ(p.NumWindows(), (Hours(17)) / Minutes(5) + 1);
  p.window_size = Hours(25);
  EXPECT_EQ(p.NumWindows(), 0);
}

TEST(ConfigTest, NumSeasons) {
  PredictionConfig p;
  EXPECT_EQ(p.NumSeasons(), 28);
  p.seasonality = Weeks(1);
  EXPECT_EQ(p.NumSeasons(), 4);
}

TEST(ConfigTest, RejectsNonPositiveDurations) {
  PredictionConfig p;
  p.history_length = 0;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = PredictionConfig{};
  p.window_slide = -1;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = PredictionConfig{};
  p.window_size = 0;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST(ConfigTest, RejectsSlideExceedingWindow) {
  PredictionConfig p;
  p.window_size = Minutes(5);
  p.window_slide = Minutes(10);
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST(ConfigTest, RejectsConfidenceOutsideUnitInterval) {
  PredictionConfig p;
  p.confidence_threshold = -0.1;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p.confidence_threshold = 1.5;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p.confidence_threshold = 1.0;
  EXPECT_TRUE(p.Validate().ok());
}

TEST(ConfigTest, RejectsHorizonBeyondSeason) {
  PredictionConfig p;
  p.prediction_horizon = Days(2);  // daily seasonality repeats after 1 day
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p.seasonality = Weeks(1);
  EXPECT_TRUE(p.Validate().ok());
}

TEST(ConfigTest, RejectsHistoryShorterThanSeason) {
  PredictionConfig p;
  p.seasonality = Weeks(1);
  p.history_length = Days(5);
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST(ConfigTest, WeeklySeasonalityValidates) {
  PredictionConfig p;
  p.seasonality = Weeks(1);
  p.prediction_horizon = Days(7);
  EXPECT_TRUE(p.Validate().ok()) << p.Validate().ToString();
}

TEST(ConfigTest, PolicyAndControlPlaneValidation) {
  PolicyConfig pol;
  pol.logical_pause_duration = 0;
  EXPECT_TRUE(pol.Validate().IsInvalidArgument());

  ControlPlaneConfig cp;
  cp.resume_operation_period = 0;
  EXPECT_TRUE(cp.Validate().IsInvalidArgument());
  cp = ControlPlaneConfig{};
  cp.prewarm_interval = -1;
  EXPECT_TRUE(cp.Validate().IsInvalidArgument());
  cp.prewarm_interval = 0;  // immediate resume is allowed
  EXPECT_TRUE(cp.Validate().ok());
}

TEST(ConfigTest, ToStringMentionsEveryKnob) {
  ProrpConfig cfg;
  std::string s = cfg.ToString();
  EXPECT_NE(s.find("l=7h"), std::string::npos) << s;
  EXPECT_NE(s.find("h=28d"), std::string::npos) << s;
  EXPECT_NE(s.find("c=0.10"), std::string::npos) << s;
  EXPECT_NE(s.find("w=7h"), std::string::npos) << s;
  EXPECT_NE(s.find("s=5m"), std::string::npos) << s;
  EXPECT_NE(s.find("k=5m"), std::string::npos) << s;
}

}  // namespace
}  // namespace prorp
