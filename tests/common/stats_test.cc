#include "common/stats.h"

#include <gtest/gtest.h>

namespace prorp {
namespace {

TEST(SummaryTest, EmptySample) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.Mean(), 0);
  EXPECT_EQ(s.Percentile(0.5), 0);
  EXPECT_EQ(s.ToBoxPlot().count, 0u);
}

TEST(SummaryTest, BasicMoments) {
  Summary s;
  s.AddAll({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 15.0);
}

TEST(SummaryTest, ExactPercentiles) {
  Summary s;
  s.AddAll({10, 20, 30, 40, 50});
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 10);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 30);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 50);
  EXPECT_DOUBLE_EQ(s.Percentile(0.25), 20);
  // Interpolation between ranks.
  Summary t;
  t.AddAll({0, 10});
  EXPECT_DOUBLE_EQ(t.Percentile(0.5), 5);
}

TEST(SummaryTest, BoxPlotFiveNumbers) {
  Summary s;
  for (int i = 1; i <= 101; ++i) s.Add(i);
  BoxPlot b = s.ToBoxPlot();
  EXPECT_DOUBLE_EQ(b.min, 1);
  EXPECT_DOUBLE_EQ(b.q1, 26);
  EXPECT_DOUBLE_EQ(b.median, 51);
  EXPECT_DOUBLE_EQ(b.q3, 76);
  EXPECT_DOUBLE_EQ(b.max, 101);
  EXPECT_EQ(b.count, 101u);
  EXPECT_NE(b.ToString().find("med=51.0"), std::string::npos);
}

TEST(CdfTest, CoversFullRange) {
  Summary s;
  for (int i = 1; i <= 1000; ++i) s.Add(i);
  auto cdf = BuildCdf(s, 10);
  ASSERT_EQ(cdf.size(), 10u);
  EXPECT_DOUBLE_EQ(cdf.back().value, 1000);
  EXPECT_DOUBLE_EQ(cdf.back().cumulative_fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.front().cumulative_fraction, 0.1);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].cumulative_fraction, cdf[i - 1].cumulative_fraction);
  }
}

TEST(CdfTest, SmallSample) {
  Summary s;
  s.AddAll({5, 1, 3});
  auto cdf = BuildCdf(s, 10);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1);
  EXPECT_DOUBLE_EQ(cdf[2].value, 5);
  EXPECT_DOUBLE_EQ(cdf[2].cumulative_fraction, 1.0);
}

TEST(CdfTest, EmptyInputs) {
  Summary s;
  EXPECT_TRUE(BuildCdf(s).empty());
  s.Add(1);
  EXPECT_TRUE(BuildCdf(s, 0).empty());
}

TEST(CdfTest, FormatContainsLabelAndRows) {
  Summary s;
  s.AddAll({1, 2, 3, 4});
  std::string text = FormatCdf(BuildCdf(s, 4), "history KB");
  EXPECT_NE(text.find("history KB"), std::string::npos);
  EXPECT_NE(text.find("100.0%"), std::string::npos);
}

}  // namespace
}  // namespace prorp
