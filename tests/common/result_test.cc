#include "common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace prorp {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  PRORP_ASSIGN_OR_RETURN(int h, Half(x));
  PRORP_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnChains) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  auto fail_outer = Quarter(7);
  EXPECT_TRUE(fail_outer.status().IsInvalidArgument());

  auto fail_inner = Quarter(6);  // 6/2 = 3 is odd
  EXPECT_TRUE(fail_inner.status().IsInvalidArgument());
}

}  // namespace
}  // namespace prorp
