#include "common/status.h"

#include <gtest/gtest.h>

namespace prorp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, PredicatesMatchOnlyTheirCode) {
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_FALSE(Status::AlreadyExists("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kTimedOut), "TimedOut");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

Status FailsAtStep(int failing, int step) {
  if (step == failing) return Status::Aborted("step failed");
  return Status::OK();
}

Status RunSteps(int failing) {
  for (int i = 0; i < 3; ++i) {
    PRORP_RETURN_IF_ERROR(FailsAtStep(failing, i));
  }
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(RunSteps(-1).ok());
  EXPECT_EQ(RunSteps(1).code(), StatusCode::kAborted);
}

}  // namespace
}  // namespace prorp
