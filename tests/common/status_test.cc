#include "common/status.h"

#include <gtest/gtest.h>

namespace prorp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, PredicatesMatchOnlyTheirCode) {
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_FALSE(Status::AlreadyExists("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kTimedOut), "TimedOut");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

TEST(StatusTest, CorruptionContextRoundTrips) {
  CorruptionContext ctx;
  ctx.page_id = 17;
  ctx.expected_crc = 0xDEADBEEF;
  ctx.actual_crc = 0x12345678;
  ctx.file = "/data/history/snapshot.db";
  Status s = Status::Corruption("checksum mismatch", ctx);
  EXPECT_TRUE(s.IsCorruption());
  ASSERT_NE(s.corruption_context(), nullptr);
  EXPECT_EQ(s.corruption_context()->page_id, 17u);
  EXPECT_EQ(s.corruption_context()->expected_crc, 0xDEADBEEFu);
  EXPECT_EQ(s.corruption_context()->actual_crc, 0x12345678u);
  EXPECT_EQ(s.corruption_context()->file, "/data/history/snapshot.db");
  // The context survives Status copies (it is shared, not re-parsed).
  Status copy = s;
  ASSERT_NE(copy.corruption_context(), nullptr);
  EXPECT_EQ(copy.corruption_context()->page_id, 17u);
}

TEST(StatusTest, CorruptionContextInToString) {
  CorruptionContext ctx;
  ctx.page_id = 3;
  ctx.expected_crc = 0xAB;
  ctx.actual_crc = 0xCD;
  ctx.file = "x.db";
  std::string text = Status::Corruption("bad page", ctx).ToString();
  EXPECT_NE(text.find("page=3"), std::string::npos) << text;
  EXPECT_NE(text.find("expected=000000ab"), std::string::npos) << text;
  EXPECT_NE(text.find("actual=000000cd"), std::string::npos) << text;
  EXPECT_NE(text.find("file=x.db"), std::string::npos) << text;
}

TEST(StatusTest, PlainCorruptionHasNoContext) {
  Status s = Status::Corruption("just a message");
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.corruption_context(), nullptr);
  EXPECT_EQ(s.ToString().find("page="), std::string::npos);
}

Status FailsAtStep(int failing, int step) {
  if (step == failing) return Status::Aborted("step failed");
  return Status::OK();
}

Status RunSteps(int failing) {
  for (int i = 0; i < 3; ++i) {
    PRORP_RETURN_IF_ERROR(FailsAtStep(failing, i));
  }
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(RunSteps(-1).ok());
  EXPECT_EQ(RunSteps(1).code(), StatusCode::kAborted);
}

}  // namespace
}  // namespace prorp
