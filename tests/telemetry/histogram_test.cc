#include "telemetry/histogram.h"

#include <gtest/gtest.h>

namespace prorp::telemetry {
namespace {

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
  EXPECT_EQ(h.ToString(), "n=0 p50=0 p95=0 p99=0 max=0");
}

TEST(HistogramTest, ZeroSamplesLandInBucketZero) {
  Histogram h;
  h.Add(0);
  h.Add(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 0.0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, NegativeSamplesClampToZero) {
  // Clock-skew guard: waits are non-negative by construction.
  Histogram h;
  h.Add(-7);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, PercentileReturnsBucketUpperEdgeClampedToMax) {
  Histogram h;
  h.Add(1);  // bucket [1, 2): upper edge 1
  h.Add(5);  // bucket [4, 8): upper edge 7, clamped to the observed max
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 5.0);
  EXPECT_EQ(h.max(), 5);
}

TEST(HistogramTest, UniformRampEstimatesWithinBucketResolution) {
  Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Add(v);
  EXPECT_EQ(h.count(), 1000u);
  // Rank 500 falls in bucket [256, 512) whose inclusive upper edge is 511.
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 511.0);
  // Rank 950 falls in the last occupied bucket; the edge clamps to max.
  EXPECT_DOUBLE_EQ(h.Percentile(0.95), 1000.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 500.5);  // the mean is exact (true sum kept)
}

TEST(HistogramTest, MergeAccumulatesCountsMaxAndSum) {
  Histogram a;
  a.Add(1);
  a.Add(2);
  a.Add(3);
  Histogram b;
  b.Add(100);
  b.Add(200);
  a.Merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.max(), 200);
  EXPECT_DOUBLE_EQ(a.Mean(), 306.0 / 5.0);
  EXPECT_DOUBLE_EQ(a.Percentile(1.0), 200.0);
  // Merging an empty histogram changes nothing.
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.max(), 200);
}

TEST(HistogramTest, ToStringRendersBenchRow) {
  Histogram h;
  h.Add(60);
  EXPECT_EQ(h.ToString(), "n=1 p50=60 p95=60 p99=60 max=60");
}

}  // namespace
}  // namespace prorp::telemetry
