#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "telemetry/events.h"
#include "telemetry/kpi.h"
#include "telemetry/usage_ledger.h"

namespace prorp::telemetry {
namespace {

TEST(RecorderTest, RecordsAndCounts) {
  Recorder r;
  r.Record(100, 1, EventKind::kLoginAvailable);
  r.Record(200, 2, EventKind::kLoginReactive);
  r.Record(300, 1, EventKind::kLoginAvailable);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.Count(EventKind::kLoginAvailable), 2u);
  EXPECT_EQ(r.Count(EventKind::kPhysicalPause), 0u);
}

TEST(RecorderTest, CsvExport) {
  Recorder r;
  r.Record(100, 7, EventKind::kProactiveResume);
  std::string path = testing::TempDir() + "/events.csv";
  ASSERT_TRUE(r.ExportCsv(path).ok());
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "time,db,kind");
  EXPECT_EQ(row, "100,7,proactive_resume");
  std::filesystem::remove(path);
}

TEST(UsageLedgerTest, IntegratesPhases) {
  UsageLedger ledger(1, 0);
  ledger.SetPhase(0, Phase::kActive, 0);
  ledger.SetPhase(0, Phase::kIdleLogical, 100);
  ledger.SetPhase(0, Phase::kReclaimed, 150);
  ledger.Finish(400);
  const TimeBreakdown& t = ledger.fleet_total();
  EXPECT_DOUBLE_EQ(t.active, 100);
  EXPECT_DOUBLE_EQ(t.idle_logical, 50);
  EXPECT_DOUBLE_EQ(t.reclaimed, 250);
  EXPECT_DOUBLE_EQ(t.Total(), 400);
}

TEST(UsageLedgerTest, ProactiveIdleClassifiedByOutcome) {
  UsageLedger ledger(2, 0);
  // DB 0: pre-warm used by the customer => correct.
  ledger.SetPhase(0, Phase::kIdleProactive, 0);
  ledger.SetPhase(0, Phase::kActive, 300);
  // DB 1: pre-warm reclaimed unused => wrong.
  ledger.SetPhase(1, Phase::kIdleProactive, 0);
  ledger.SetPhase(1, Phase::kReclaimed, 500);
  ledger.Finish(1000);
  EXPECT_DOUBLE_EQ(ledger.db_total(0).idle_proactive_correct, 300);
  EXPECT_DOUBLE_EQ(ledger.db_total(0).idle_proactive_wrong, 0);
  EXPECT_DOUBLE_EQ(ledger.db_total(1).idle_proactive_wrong, 500);
  EXPECT_DOUBLE_EQ(ledger.fleet_total().idle_proactive_correct, 300);
  EXPECT_DOUBLE_EQ(ledger.fleet_total().idle_proactive_wrong, 500);
}

TEST(UsageLedgerTest, OpenProactiveSegmentAtEndCountsWrong) {
  UsageLedger ledger(1, 0);
  ledger.SetPhase(0, Phase::kIdleProactive, 100);
  ledger.Finish(400);
  EXPECT_DOUBLE_EQ(ledger.db_total(0).idle_proactive_wrong, 300);
}

TEST(UsageLedgerTest, DbWithNoPhasesContributesNothing) {
  UsageLedger ledger(3, 0);
  ledger.SetPhase(1, Phase::kActive, 0);
  ledger.Finish(100);
  EXPECT_DOUBLE_EQ(ledger.db_total(0).Total(), 0);
  EXPECT_DOUBLE_EQ(ledger.db_total(2).Total(), 0);
  EXPECT_DOUBLE_EQ(ledger.fleet_total().Total(), 100);
}

TEST(UsageLedgerTest, UnavailableTimeTracked) {
  UsageLedger ledger(1, 0);
  ledger.SetPhase(0, Phase::kUnavailable, 0);
  ledger.SetPhase(0, Phase::kActive, 60);
  ledger.Finish(100);
  EXPECT_DOUBLE_EQ(ledger.fleet_total().unavailable, 60);
  EXPECT_DOUBLE_EQ(ledger.fleet_total().active, 40);
}

TEST(KpiTest, ComputesQosAndIdlePercentages) {
  Recorder recorder;
  recorder.Record(10, 0, EventKind::kLoginAvailable);
  recorder.Record(20, 0, EventKind::kLoginAvailable);
  recorder.Record(30, 0, EventKind::kLoginAvailable);
  recorder.Record(40, 0, EventKind::kLoginReactive);
  recorder.Record(50, 0, EventKind::kLogicalPause);
  recorder.Record(60, 0, EventKind::kPhysicalPause);
  recorder.Record(70, 0, EventKind::kProactiveResume);

  UsageLedger ledger(1, 0);
  ledger.SetPhase(0, Phase::kActive, 0);
  ledger.SetPhase(0, Phase::kIdleLogical, 500);
  ledger.SetPhase(0, Phase::kReclaimed, 600);
  ledger.Finish(1000);

  KpiReport kpi = ComputeKpi(recorder, ledger);
  EXPECT_EQ(kpi.logins_total, 4u);
  EXPECT_DOUBLE_EQ(kpi.QosAvailablePct(), 75.0);
  EXPECT_DOUBLE_EQ(kpi.idle_logical_pct, 10.0);
  EXPECT_DOUBLE_EQ(kpi.active_pct, 50.0);
  EXPECT_DOUBLE_EQ(kpi.reclaimed_pct, 40.0);
  EXPECT_EQ(kpi.logical_pauses, 1u);
  EXPECT_EQ(kpi.physical_pauses, 1u);
  EXPECT_EQ(kpi.proactive_resumes, 1u);
  std::string s = kpi.ToString();
  EXPECT_NE(s.find("QoS avail= 75.0%"), std::string::npos) << s;
}

TEST(KpiTest, EmptyInputsAreZero) {
  Recorder recorder;
  UsageLedger ledger(0, 0);
  ledger.Finish(0);
  KpiReport kpi = ComputeKpi(recorder, ledger);
  EXPECT_EQ(kpi.logins_total, 0u);
  EXPECT_DOUBLE_EQ(kpi.QosAvailablePct(), 0.0);
  EXPECT_DOUBLE_EQ(kpi.IdleTotalPct(), 0.0);
}

TEST(WorkflowFrequencyTest, BucketsAndBoxPlot) {
  Recorder recorder;
  // 3 resumes in bucket 0, 1 in bucket 1, 0 in buckets 2-3.
  recorder.Record(10, 0, EventKind::kProactiveResume);
  recorder.Record(20, 1, EventKind::kProactiveResume);
  recorder.Record(59, 2, EventKind::kProactiveResume);
  recorder.Record(61, 3, EventKind::kProactiveResume);
  recorder.Record(70, 4, EventKind::kPhysicalPause);  // other kind
  BoxPlot box = WorkflowFrequency(recorder, EventKind::kProactiveResume,
                                  60, 0, 240);
  EXPECT_EQ(box.count, 4u);  // 4 one-minute buckets
  EXPECT_DOUBLE_EQ(box.max, 3);
  EXPECT_DOUBLE_EQ(box.min, 0);
  EXPECT_DOUBLE_EQ(box.median, 0.5);
}

TEST(WorkflowFrequencyTest, DegenerateInputs) {
  Recorder recorder;
  EXPECT_EQ(WorkflowFrequency(recorder, EventKind::kPhysicalPause, 0, 0,
                              100)
                .count,
            0u);
  EXPECT_EQ(WorkflowFrequency(recorder, EventKind::kPhysicalPause, 60, 100,
                              100)
                .count,
            0u);
}

TEST(WorkflowFrequencyTest, IgnoresEventsOutsideWindow) {
  Recorder recorder;
  recorder.Record(10, 0, EventKind::kPhysicalPause);    // before window
  recorder.Record(150, 0, EventKind::kPhysicalPause);   // inside
  recorder.Record(400, 0, EventKind::kPhysicalPause);   // after window
  BoxPlot box = WorkflowFrequency(recorder, EventKind::kPhysicalPause, 60,
                                  100, 300);
  EXPECT_EQ(box.count, 4u);  // ceil(200/60) buckets
  EXPECT_DOUBLE_EQ(box.max, 1);
  EXPECT_DOUBLE_EQ(box.min, 0);
}

TEST(RecorderTest, CsvCoversEveryKind) {
  Recorder r;
  for (int k = 0; k <= static_cast<int>(EventKind::kPrediction); ++k) {
    r.Record(k, 0, static_cast<EventKind>(k));
  }
  std::string path = testing::TempDir() + "/all_kinds.csv";
  ASSERT_TRUE(r.ExportCsv(path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  for (int k = 0; k <= static_cast<int>(EventKind::kPrediction); ++k) {
    EXPECT_NE(content.find(std::string(
                  EventKindName(static_cast<EventKind>(k)))),
              std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(EventKindNameTest, AllNamed) {
  EXPECT_EQ(EventKindName(EventKind::kLoginAvailable), "login_available");
  EXPECT_EQ(EventKindName(EventKind::kForcedEviction), "forced_eviction");
  EXPECT_EQ(EventKindName(EventKind::kPrediction), "prediction");
}

}  // namespace
}  // namespace prorp::telemetry
