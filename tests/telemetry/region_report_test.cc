#include "telemetry/region_report.h"

#include <gtest/gtest.h>

namespace prorp::telemetry {
namespace {

KpiReport SampleKpi() {
  KpiReport kpi;
  kpi.logins_total = 1000;
  kpi.logins_available = 820;
  kpi.logins_reactive = 180;
  kpi.active_pct = 12.5;
  kpi.idle_logical_pct = 4.0;
  kpi.idle_proactive_correct_pct = 1.2;
  kpi.idle_proactive_wrong_pct = 5.0;
  kpi.reclaimed_pct = 77.3;
  kpi.unavailable_pct = 0.02;
  kpi.logical_pauses = 5000;
  kpi.physical_pauses = 6000;
  kpi.proactive_resumes = 4000;
  kpi.forced_evictions = 700;
  kpi.predictions = 9000;
  return kpi;
}

TEST(RegionReportTest, ContainsAllSections) {
  RegionReportInput input;
  input.region_name = "EU1";
  input.policy_name = "proactive";
  input.from = Days(1033);
  input.to = Days(1037);
  input.num_databases = 4000;
  input.kpi = SampleKpi();
  std::string report = RenderRegionReport(input);
  EXPECT_NE(report.find("# ProRP region report — EU1 (proactive policy)"),
            std::string::npos);
  EXPECT_NE(report.find("**82.0%** found resources available"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("| active (billed) | 12.5 |"), std::string::npos);
  EXPECT_NE(report.find("| idle, wrong pre-warm | 5.0 |"),
            std::string::npos);
  EXPECT_NE(report.find("proactive resumes 4000"), std::string::npos);
  // No baseline section when none given.
  EXPECT_EQ(report.find("## vs "), std::string::npos);
}

TEST(RegionReportTest, BaselineComparisonDeltas) {
  RegionReportInput input;
  input.region_name = "EU1";
  input.policy_name = "proactive";
  input.num_databases = 4000;
  input.kpi = SampleKpi();
  KpiReport base = SampleKpi();
  base.logins_available = 640;  // 64.0% QoS
  base.logins_reactive = 360;
  input.baseline = &base;
  input.baseline_name = "reactive";
  std::string report = RenderRegionReport(input);
  EXPECT_NE(report.find("## vs reactive"), std::string::npos);
  EXPECT_NE(report.find("| QoS available % | 82.0 | 64.0 | +18.0 |"),
            std::string::npos)
      << report;
}

}  // namespace
}  // namespace prorp::telemetry
