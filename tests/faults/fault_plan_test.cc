#include "faults/fault_plan.h"

#include <gtest/gtest.h>

#include "faults/crash_points.h"

namespace prorp::faults {
namespace {

TEST(FaultPlanTest, ScriptedTriggerFiresExactlyOnNthOp) {
  FaultPlan plan(7);
  plan.FailNth(FaultOp::kDiskWrite, 3, FaultKind::kIoError);
  EXPECT_FALSE(plan.Next(FaultOp::kDiskWrite).has_value());
  EXPECT_FALSE(plan.Next(FaultOp::kDiskWrite).has_value());
  auto d = plan.Next(FaultOp::kDiskWrite);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, FaultKind::kIoError);
  EXPECT_FALSE(plan.Next(FaultOp::kDiskWrite).has_value());
  EXPECT_EQ(plan.ops_seen(FaultOp::kDiskWrite), 4u);
  EXPECT_EQ(plan.injected(), 1u);
}

TEST(FaultPlanTest, ScriptedTriggersAreIndependentPerOp) {
  FaultPlan plan(7);
  plan.FailNth(FaultOp::kDiskRead, 1, FaultKind::kBitFlip);
  plan.FailNth(FaultOp::kWalAppend, 2, FaultKind::kTornWrite);
  // The disk-write stream sees no triggers at all.
  EXPECT_FALSE(plan.Next(FaultOp::kDiskWrite).has_value());
  auto r = plan.Next(FaultOp::kDiskRead);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->kind, FaultKind::kBitFlip);
  EXPECT_FALSE(plan.Next(FaultOp::kWalAppend).has_value());
  auto w = plan.Next(FaultOp::kWalAppend);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->kind, FaultKind::kTornWrite);
}

TEST(FaultPlanTest, MultipleScriptedTriggersOnOneOp) {
  FaultPlan plan(1);
  plan.FailNth(FaultOp::kWalAppend, 2, FaultKind::kIoError);
  plan.FailNth(FaultOp::kWalAppend, 4, FaultKind::kTornWrite);
  EXPECT_FALSE(plan.Next(FaultOp::kWalAppend).has_value());
  EXPECT_TRUE(plan.Next(FaultOp::kWalAppend).has_value());
  EXPECT_FALSE(plan.Next(FaultOp::kWalAppend).has_value());
  auto d = plan.Next(FaultOp::kWalAppend);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, FaultKind::kTornWrite);
  EXPECT_EQ(plan.injected(), 2u);
}

TEST(FaultPlanTest, ProbabilisticFiringIsDeterministicInSeed) {
  auto firing_pattern = [](uint64_t seed) {
    FaultPlan plan(seed);
    plan.FailWithProbability(FaultOp::kDiskWrite, 0.3, FaultKind::kIoError);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(plan.Next(FaultOp::kDiskWrite).has_value());
    }
    return fired;
  };
  EXPECT_EQ(firing_pattern(42), firing_pattern(42));
  EXPECT_NE(firing_pattern(42), firing_pattern(43));
}

TEST(FaultPlanTest, ProbabilisticRateIsRoughlyHonored) {
  FaultPlan plan(99);
  plan.FailWithProbability(FaultOp::kDiskRead, 0.25, FaultKind::kBitFlip);
  int fired = 0;
  for (int i = 0; i < 4000; ++i) {
    if (plan.Next(FaultOp::kDiskRead).has_value()) ++fired;
  }
  EXPECT_GT(fired, 800);   // ~1000 expected
  EXPECT_LT(fired, 1200);
  EXPECT_EQ(plan.injected(), static_cast<uint64_t>(fired));
}

TEST(FaultPlanTest, ZeroProbabilityNeverFires) {
  FaultPlan plan(5);
  plan.FailWithProbability(FaultOp::kWalSync, 0.0, FaultKind::kIoError);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(plan.Next(FaultOp::kWalSync).has_value());
  }
}

TEST(CrashPointRegistryTest, ArmedPointFiresOnceAtNthHit) {
  CrashPointRegistry& reg = CrashPointRegistry::Global();
  reg.Arm(kWalAppendPartial, 3, 1234);
  EXPECT_TRUE(HitCrashPoint(kWalAppendPartial).ok());
  EXPECT_TRUE(HitCrashPoint(kWalPreSync).ok());  // other points unaffected
  EXPECT_TRUE(HitCrashPoint(kWalAppendPartial).ok());
  Status s = HitCrashPoint(kWalAppendPartial);
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_TRUE(reg.fired());
  EXPECT_EQ(reg.payload(), 1234u);
  // Fires exactly once, then stays quiet.
  EXPECT_TRUE(HitCrashPoint(kWalAppendPartial).ok());
  reg.Reset();
}

TEST(CrashPointRegistryTest, CountingModeObservesWithoutFiring) {
  CrashPointRegistry& reg = CrashPointRegistry::Global();
  reg.Reset();
  reg.SetCounting(true);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(HitCrashPoint(kBtreeMidSplit).ok());
  }
  EXPECT_TRUE(HitCrashPoint(kSnapshotMidCopy).ok());
  EXPECT_EQ(reg.hits(kBtreeMidSplit), 5u);
  EXPECT_EQ(reg.hits(kSnapshotMidCopy), 1u);
  EXPECT_EQ(reg.hits(kWalPreSync), 0u);
  auto observed = reg.observed_points();
  EXPECT_EQ(observed.size(), 2u);
  reg.Reset();
  EXPECT_EQ(reg.hits(kBtreeMidSplit), 0u);
}

TEST(CrashPointRegistryTest, DisarmedHitsAreFree) {
  CrashPointRegistry& reg = CrashPointRegistry::Global();
  reg.Reset();
  // No counters accumulate while disarmed.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(HitCrashPoint(kWalAppendPartial).ok());
  }
  EXPECT_EQ(reg.hits(kWalAppendPartial), 0u);
}

TEST(CrashPointRegistryTest, AllCrashPointsAreEnumerated) {
  auto points = AllCrashPoints();
  EXPECT_EQ(points.size(), 10u);
  EXPECT_EQ(StorageCrashPoints().size(), 6u);
  EXPECT_EQ(ControlPlaneCrashPoints().size(), 4u);
}

}  // namespace
}  // namespace prorp::faults
