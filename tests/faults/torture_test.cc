// Crash-torture matrix: for every registered crash point, across many
// seeds, crash the storage engine at that point, reopen, and verify that
// recovery succeeds, no acknowledged operation is lost, and the B+tree
// invariants hold.  Registered under the `torture` ctest label.

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "faults/crash_points.h"
#include "faults/torture.h"

namespace prorp::faults {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// nth choices covering the first, a middle, and the last occurrence.
std::vector<uint64_t> NthChoices(uint64_t hits) {
  std::vector<uint64_t> nths{1};
  if (hits >= 3) nths.push_back((hits + 1) / 2);
  if (hits >= 2) nths.push_back(hits);
  return nths;
}

class TortureMatrixTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TortureMatrixTest, TreeSurvivesCrashesAtEveryPoint) {
  const uint64_t seed = GetParam();

  // Config A exercises append, split, and checkpoint crash points.
  TortureOptions opts;
  opts.seed = seed;
  opts.num_ops = 500;
  opts.checkpoint_wal_bytes = 4096;  // several checkpoints per run

  auto hits_or =
      ObserveCrashPoints(opts, FreshDir("torture_observe_" +
                                        std::to_string(seed)));
  ASSERT_TRUE(hits_or.ok()) << hits_or.status().ToString();
  auto& hits = *hits_or;
  ASSERT_GT(hits[std::string(kWalAppendPartial)], 0u);
  ASSERT_GT(hits[std::string(kBtreeMidSplit)], 0u);
  ASSERT_GT(hits[std::string(kSnapshotMidCopy)], 0u);

  for (const auto& [point, count] : hits) {
    if (count == 0) continue;
    for (uint64_t nth : NthChoices(count)) {
      std::string dir =
          FreshDir("torture_" + point + "_" + std::to_string(seed) + "_" +
                   std::to_string(nth));
      auto result = RunCrashTorture(opts, dir, point, nth);
      ASSERT_TRUE(result.ok())
          << "point=" << point << " nth=" << nth
          << " seed=" << seed << ": " << result.status().ToString();
      EXPECT_TRUE(result->crashed)
          << "point=" << point << " nth=" << nth << " never fired";
      EXPECT_LE(result->acked_ops, opts.num_ops);
    }
  }
}

TEST_P(TortureMatrixTest, TreeSurvivesCrashBeforeSync) {
  const uint64_t seed = GetParam();

  // Config B: fsync on every append reaches wal_pre_sync.
  TortureOptions opts;
  opts.seed = seed;
  opts.num_ops = 200;
  opts.fsync_each_append = true;
  opts.checkpoint_wal_bytes = 0;

  auto hits_or = ObserveCrashPoints(
      opts, FreshDir("torture_sync_observe_" + std::to_string(seed)));
  ASSERT_TRUE(hits_or.ok()) << hits_or.status().ToString();

  // wal_group_pre_sync sits after the batched write but before the group
  // fsync: crashing there is exactly the "batch written, nothing durable,
  // nothing acked" window the group-commit rollback audit cares about.
  for (std::string_view point : {kWalPreSync, kWalGroupPreSync}) {
    uint64_t count = (*hits_or)[std::string(point)];
    ASSERT_GT(count, 0u) << point;

    for (uint64_t nth : NthChoices(count)) {
      std::string dir = FreshDir("torture_sync_" + std::string(point) + "_" +
                                 std::to_string(seed) + "_" +
                                 std::to_string(nth));
      auto result = RunCrashTorture(opts, dir, point, nth);
      ASSERT_TRUE(result.ok())
          << "point=" << point << " nth=" << nth << " seed=" << seed << ": "
          << result.status().ToString();
      EXPECT_TRUE(result->crashed) << point;
    }
  }
}

TEST_P(TortureMatrixTest, SqlHistoryStoreSurvivesCrashes) {
  const uint64_t seed = GetParam();

  TortureOptions opts;
  opts.seed = seed;
  opts.num_ops = 400;
  opts.checkpoint_wal_bytes = 4096;

  auto hits_or = ObserveSqlCrashPoints(
      opts, FreshDir("sql_torture_observe_" + std::to_string(seed)));
  ASSERT_TRUE(hits_or.ok()) << hits_or.status().ToString();

  for (const auto& [point, count] : *hits_or) {
    if (count == 0) continue;
    // First and last occurrence: the SQL stack is slower, so torture a
    // smaller slice of the matrix per seed.
    std::vector<uint64_t> nths{1};
    if (count >= 2) nths.push_back(count);
    for (uint64_t nth : nths) {
      std::string dir =
          FreshDir("sql_torture_" + point + "_" + std::to_string(seed) +
                   "_" + std::to_string(nth));
      auto result = RunSqlCrashTorture(opts, dir, point, nth);
      ASSERT_TRUE(result.ok())
          << "point=" << point << " nth=" << nth
          << " seed=" << seed << ": " << result.status().ToString();
      EXPECT_TRUE(result->crashed)
          << "point=" << point << " nth=" << nth << " never fired";
    }
  }
}

// >= 20 seeds, as the acceptance bar demands.
INSTANTIATE_TEST_SUITE_P(Seeds, TortureMatrixTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(TortureHarnessTest, UnreachedNthDegeneratesToCleanRun) {
  TortureOptions opts;
  opts.seed = 3;
  opts.num_ops = 50;
  std::string dir = FreshDir("torture_unreached");
  auto result = RunCrashTorture(opts, dir, kWalAppendPartial, 1'000'000);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->crashed);
  EXPECT_EQ(result->acked_ops, 50u);
}

TEST(TortureHarnessTest, ObserveReportsAllPointsForSyncedWorkload) {
  TortureOptions opts;
  opts.seed = 5;
  opts.num_ops = 400;
  opts.fsync_each_append = true;
  opts.checkpoint_wal_bytes = 4096;
  auto hits = ObserveCrashPoints(opts, FreshDir("torture_observe_all"));
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  for (std::string_view point : StorageCrashPoints()) {
    EXPECT_GT((*hits)[std::string(point)], 0u) << point;
  }
}

}  // namespace
}  // namespace prorp::faults
