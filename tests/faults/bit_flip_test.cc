// Bit-flip torture: the offline sweep must detect 100% of single-bit
// flips with exact page attribution, and the online campaign must end
// every scripted-flip run with zero acked-record loss.

#include <cstdlib>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "faults/torture.h"

namespace prorp::faults {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/bit_flip_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(BitFlipSweepTest, EveryFlipIsDetectedAndLocated) {
  BitFlipSweepOptions options;
  options.seed = 42;
  auto r = RunBitFlipSweep(options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->pages, 4u) << "tree should span several pages";
  // Every header bit plus the sampled payload bits of every page.
  EXPECT_EQ(r->flips,
            r->pages * (16 * 8 + options.payload_bits_per_page));
  EXPECT_EQ(r->detected, r->flips) << "silent corruption slipped through";
  EXPECT_EQ(r->mislocated, 0u);
  EXPECT_EQ(r->false_positives, 0u);
}

TEST(BitFlipSweepTest, DetectionHoldsAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    BitFlipSweepOptions options;
    options.seed = seed;
    options.num_entries = 300;
    options.payload_bits_per_page = 8;
    auto r = RunBitFlipSweep(options);
    ASSERT_TRUE(r.ok()) << "seed " << seed << ": "
                        << r.status().ToString();
    EXPECT_EQ(r->detected, r->flips) << "seed " << seed;
    EXPECT_EQ(r->mislocated, 0u) << "seed " << seed;
    EXPECT_EQ(r->false_positives, 0u) << "seed " << seed;
  }
}

TEST(BitFlipCampaignTest, NoAckedRecordLossUnderScriptedFlips) {
  BitFlipCampaignOptions options;
  options.seed = 42;
  auto r = RunBitFlipCampaign(options, FreshDir("campaign"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->runs, 0u);
  // Scripted triggers land on a deterministic workload, so every case's
  // flip actually fires; a miss means the case tested nothing.
  EXPECT_EQ(r->flips_fired, r->runs);
  // Every operation of every run acknowledged despite the flip.
  EXPECT_EQ(r->acked_ops, r->runs * options.num_ops);
  // Self-healing always sticks: nothing had to be quarantined.
  EXPECT_EQ(r->corruption_quarantined, 0u);
}

TEST(BitFlipCampaignTest, AlternateSeedAlsoHolds) {
  BitFlipCampaignOptions options;
  options.seed = 7;
  options.num_ops = 1200;
  options.cases_per_op = 4;
  auto r = RunBitFlipCampaign(options, FreshDir("campaign_seed7"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->runs, 0u);
  EXPECT_EQ(r->flips_fired, r->runs);
  EXPECT_EQ(r->acked_ops, r->runs * options.num_ops);
  EXPECT_EQ(r->corruption_quarantined, 0u);
}

}  // namespace
}  // namespace prorp::faults
