// Fault-injecting disk manager semantics, and end-to-end behavior of a
// DurableTree opened over a fault plan.

#include <cstring>
#include <filesystem>

#include <gtest/gtest.h>

#include "faults/fault_injecting_disk_manager.h"
#include "faults/fault_plan.h"
#include "storage/durable_tree.h"

namespace prorp::faults {
namespace {

namespace fs = std::filesystem;
using storage::DurableTree;
using storage::InMemoryDiskManager;
using storage::kPageSize;
using storage::PageId;

std::vector<uint8_t> Value64(int64_t v) {
  std::vector<uint8_t> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(FaultInjectingDiskManagerTest, IoErrorFailsExactlyTheScriptedWrite) {
  FaultPlan plan(3);
  plan.FailNth(FaultOp::kDiskWrite, 2, FaultKind::kIoError);
  FaultInjectingDiskManager dm(std::make_unique<InMemoryDiskManager>(),
                               &plan);
  auto id = dm.Allocate();
  ASSERT_TRUE(id.ok());
  uint8_t page[kPageSize] = {};
  EXPECT_TRUE(dm.Write(*id, page).ok());
  Status s = dm.Write(*id, page);
  EXPECT_TRUE(s.IsIoError());
  EXPECT_TRUE(dm.Write(*id, page).ok());
}

TEST(FaultInjectingDiskManagerTest, BitFlipOnReadFlipsExactlyOneBit) {
  FaultPlan plan(11);
  plan.FailNth(FaultOp::kDiskRead, 1, FaultKind::kBitFlip);
  FaultInjectingDiskManager dm(std::make_unique<InMemoryDiskManager>(),
                               &plan);
  auto id = dm.Allocate();
  ASSERT_TRUE(id.ok());
  uint8_t page[kPageSize] = {};
  ASSERT_TRUE(dm.Write(*id, page).ok());

  uint8_t corrupt[kPageSize];
  ASSERT_TRUE(dm.Read(*id, corrupt).ok());
  int flipped_bits = 0;
  for (size_t i = 0; i < kPageSize; ++i) {
    flipped_bits += __builtin_popcount(corrupt[i]);
  }
  EXPECT_EQ(flipped_bits, 1);

  // The medium itself is untouched: a clean re-read sees zeros.
  uint8_t clean[kPageSize];
  ASSERT_TRUE(dm.Read(*id, clean).ok());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(clean[i], 0);
}

TEST(FaultInjectingDiskManagerTest, BitFlipOnWriteCorruptsTheMedium) {
  FaultPlan plan(13);
  plan.FailNth(FaultOp::kDiskWrite, 1, FaultKind::kBitFlip);
  FaultInjectingDiskManager dm(std::make_unique<InMemoryDiskManager>(),
                               &plan);
  auto id = dm.Allocate();
  ASSERT_TRUE(id.ok());
  uint8_t page[kPageSize] = {};
  EXPECT_TRUE(dm.Write(*id, page).ok());  // reports success: silent fault
  uint8_t got[kPageSize];
  ASSERT_TRUE(dm.Read(*id, got).ok());
  int flipped_bits = 0;
  for (size_t i = 0; i < kPageSize; ++i) {
    flipped_bits += __builtin_popcount(got[i]);
  }
  EXPECT_EQ(flipped_bits, 1);
}

TEST(FaultInjectingDiskManagerTest, TornWritePersistsPrefixOnly) {
  FaultPlan plan(17);
  plan.FailNth(FaultOp::kDiskWrite, 2, FaultKind::kTornWrite);
  FaultInjectingDiskManager dm(std::make_unique<InMemoryDiskManager>(),
                               &plan);
  auto id = dm.Allocate();
  ASSERT_TRUE(id.ok());
  uint8_t old_page[kPageSize];
  std::memset(old_page, 0xAA, kPageSize);
  ASSERT_TRUE(dm.Write(*id, old_page).ok());

  uint8_t new_page[kPageSize];
  std::memset(new_page, 0x55, kPageSize);
  Status s = dm.Write(*id, new_page);
  EXPECT_TRUE(s.IsIoError());

  // The page must now be a prefix of the new contents followed by the old
  // tail — never interleaved garbage.
  uint8_t got[kPageSize];
  ASSERT_TRUE(dm.Read(*id, got).ok());
  size_t cut = 0;
  while (cut < kPageSize && got[cut] == 0x55) ++cut;
  for (size_t i = cut; i < kPageSize; ++i) {
    ASSERT_EQ(got[i], 0xAA) << "interleaved bytes at offset " << i;
  }
}

TEST(FaultInjectingDiskManagerTest, AllocateAndSyncCanFail) {
  FaultPlan plan(19);
  plan.FailNth(FaultOp::kDiskAllocate, 1, FaultKind::kIoError);
  plan.FailNth(FaultOp::kDiskSync, 1, FaultKind::kIoError);
  FaultInjectingDiskManager dm(std::make_unique<InMemoryDiskManager>(),
                               &plan);
  EXPECT_FALSE(dm.Allocate().ok());
  EXPECT_TRUE(dm.Allocate().ok());
  EXPECT_TRUE(dm.Sync().IsIoError());
  EXPECT_TRUE(dm.Sync().ok());
}

TEST(FaultInjectionTest, FailedWalAppendLosesOnlyTheUnackedOp) {
  std::string dir = FreshDir("fault_injection_append");
  FaultPlan plan(23);
  plan.FailNth(FaultOp::kWalAppend, 3, FaultKind::kIoError);
  DurableTree::Options opts;
  opts.dir = dir;
  opts.checkpoint_wal_bytes = 0;
  opts.fault_plan = &plan;

  {
    auto tree = DurableTree::Open(opts);
    ASSERT_TRUE(tree.ok());
    EXPECT_TRUE((*tree)->Insert(1, Value64(10).data()).ok());
    EXPECT_TRUE((*tree)->Insert(2, Value64(20).data()).ok());
    // Applied to the in-memory tree but its WAL append fails: the caller
    // sees an error and must treat the op as not-durable.
    EXPECT_TRUE((*tree)->Insert(3, Value64(30).data()).IsIoError());
    EXPECT_TRUE((*tree)->Insert(4, Value64(40).data()).ok());
  }

  opts.fault_plan = nullptr;
  auto recovered = DurableTree::Open(opts);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE((*recovered)->tree().CheckInvariants().ok());
  EXPECT_TRUE((*recovered)->Contains(1));
  EXPECT_TRUE((*recovered)->Contains(2));
  EXPECT_FALSE((*recovered)->Contains(3));  // unacked: legitimately lost
  EXPECT_TRUE((*recovered)->Contains(4));   // acked after the fault: kept
}

TEST(FaultInjectionTest, DiskFullWalAppendFailsStopWithoutCorruption) {
  std::string dir = FreshDir("fault_injection_enospc");
  FaultPlan plan(29);
  plan.FailNth(FaultOp::kWalAppend, 3, FaultKind::kDiskFull);
  DurableTree::Options opts;
  opts.dir = dir;
  opts.checkpoint_wal_bytes = 0;
  opts.fault_plan = &plan;

  {
    auto tree = DurableTree::Open(opts);
    ASSERT_TRUE(tree.ok());
    EXPECT_TRUE((*tree)->Insert(1, Value64(10).data()).ok());
    EXPECT_TRUE((*tree)->Insert(2, Value64(20).data()).ok());
    // ENOSPC: the append fails cleanly — error surfaced to the caller, no
    // partial frame written, the log still appendable once space returns.
    Status s = (*tree)->Insert(3, Value64(30).data());
    EXPECT_TRUE(s.IsIoError());
    EXPECT_NE(s.message().find("disk full"), std::string::npos)
        << s.ToString();
    EXPECT_TRUE((*tree)->Insert(4, Value64(40).data()).ok());
  }

  opts.fault_plan = nullptr;
  auto recovered = DurableTree::Open(opts);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE((*recovered)->tree().CheckInvariants().ok());
  EXPECT_TRUE((*recovered)->Contains(1));
  EXPECT_TRUE((*recovered)->Contains(2));
  EXPECT_FALSE((*recovered)->Contains(3));  // unacked: legitimately lost
  EXPECT_TRUE((*recovered)->Contains(4));
}

TEST(FaultInjectionTest, TornWalAppendDoesNotBlockLaterAppends) {
  // Regression for the torn-frame leak: a short WAL write used to leave a
  // partial frame in the file, and every append after it — though
  // acknowledged OK — was unreachable at replay.  The fix rolls the file
  // back to the pre-append offset.
  std::string dir = FreshDir("fault_injection_torn");
  FaultPlan plan(29);
  plan.FailNth(FaultOp::kWalAppend, 2, FaultKind::kTornWrite);
  DurableTree::Options opts;
  opts.dir = dir;
  opts.checkpoint_wal_bytes = 0;
  opts.fault_plan = &plan;

  {
    auto tree = DurableTree::Open(opts);
    ASSERT_TRUE(tree.ok());
    EXPECT_TRUE((*tree)->Insert(1, Value64(10).data()).ok());
    EXPECT_TRUE((*tree)->Insert(2, Value64(20).data()).IsIoError());
    EXPECT_TRUE((*tree)->Insert(3, Value64(30).data()).ok());
    EXPECT_TRUE((*tree)->Insert(4, Value64(40).data()).ok());
  }

  opts.fault_plan = nullptr;
  auto recovered = DurableTree::Open(opts);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE((*recovered)->Contains(1));
  EXPECT_FALSE((*recovered)->Contains(2));
  EXPECT_TRUE((*recovered)->Contains(3));
  EXPECT_TRUE((*recovered)->Contains(4));
  EXPECT_EQ((*recovered)->size(), 3u);
}

TEST(FaultInjectionTest, ProbabilisticWalFaultsAreDeterministicInSeed) {
  auto survivors = [](uint64_t seed) {
    std::string dir =
        FreshDir("fault_injection_prob_" + std::to_string(seed));
    FaultPlan plan(seed);
    plan.FailWithProbability(FaultOp::kWalAppend, 0.2,
                             FaultKind::kIoError);
    DurableTree::Options opts;
    opts.dir = dir;
    opts.checkpoint_wal_bytes = 0;
    opts.fault_plan = &plan;
    std::vector<int64_t> acked;
    {
      auto tree = DurableTree::Open(opts);
      EXPECT_TRUE(tree.ok());
      for (int64_t k = 0; k < 100; ++k) {
        if ((*tree)->Insert(k, Value64(k).data()).ok()) acked.push_back(k);
      }
    }
    return acked;
  };
  auto a = survivors(77);
  auto b = survivors(77);
  EXPECT_EQ(a, b);
  EXPECT_LT(a.size(), 100u);  // some appends really failed
  EXPECT_GT(a.size(), 50u);
}

}  // namespace
}  // namespace prorp::faults
