#include "training/tuner.h"

#include <gtest/gtest.h>

#include "workload/region.h"

namespace prorp::training {
namespace {

constexpr EpochSeconds kT0 = Days(1005);
constexpr EpochSeconds kTrainFrom = kT0 + Days(28);

class TunerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    profile_ = workload::RegionEU1();
    traces_ = workload::GenerateFleet(profile_, 250, kT0,
                                      kTrainFrom + Days(4), 31);
    options_.base.eviction_per_hour = profile_.eviction_per_hour;
    options_.base.seed = 3;
    options_.train_from = kTrainFrom;
    options_.train_to = kTrainFrom + Days(2);
    options_.test_from = kTrainFrom + Days(2);
    options_.test_to = kTrainFrom + Days(4);
  }

  workload::RegionProfile profile_;
  std::vector<workload::DbTrace> traces_;
  TuningOptions options_;
};

TEST_F(TunerTest, GridCoversAllCombinations) {
  options_.window_sizes = {Hours(2), Hours(7)};
  options_.confidence_thresholds = {0.1, 0.5};
  auto report = RunTuningPipeline(traces_, options_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->trials.size(), 4u);
  // Trials sorted by score descending.
  for (size_t i = 1; i < report->trials.size(); ++i) {
    EXPECT_GE(report->trials[i - 1].score, report->trials[i].score);
  }
  EXPECT_EQ(report->best.score, report->trials[0].score);
}

TEST_F(TunerTest, HighConfidenceLosesQos) {
  // The Figure 9 trend must be visible to the tuner: c = 0.8 serves fewer
  // logins proactively than c = 0.1.
  options_.confidence_thresholds = {0.1, 0.8};
  auto report = RunTuningPipeline(traces_, options_);
  ASSERT_TRUE(report.ok());
  const Trial* low = nullptr;
  const Trial* high = nullptr;
  for (const Trial& t : report->trials) {
    if (t.prediction.confidence_threshold == 0.1) low = &t;
    if (t.prediction.confidence_threshold == 0.8) high = &t;
  }
  ASSERT_NE(low, nullptr);
  ASSERT_NE(high, nullptr);
  EXPECT_GT(low->kpi.QosAvailablePct(), high->kpi.QosAvailablePct());
  EXPECT_LT(high->kpi.IdleTotalPct(), low->kpi.IdleTotalPct());
}

TEST_F(TunerTest, ValidationRunsOnHeldOutInterval) {
  options_.window_sizes = {Hours(7)};
  auto report = RunTuningPipeline(traces_, options_);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->test_kpi.logins_total, 0u);
  // Winner generalizes: test QoS within a loose band of train QoS.
  EXPECT_NEAR(report->test_kpi.QosAvailablePct(),
              report->best.kpi.QosAvailablePct(), 20.0);
}

TEST_F(TunerTest, IdleWeightShiftsTheWinner) {
  options_.confidence_thresholds = {0.1, 0.5};
  TuningOptions qos_first = options_;
  qos_first.idle_weight = 0.1;  // prioritize quality of service
  TuningOptions cost_first = options_;
  cost_first.idle_weight = 25.0;  // prioritize operational cost
  auto a = RunTuningPipeline(traces_, qos_first);
  auto b = RunTuningPipeline(traces_, cost_first);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Aggressive idle weighting must not pick a *lower* threshold than the
  // QoS-first weighting (higher c = fewer resumes = less idle).
  EXPECT_GE(b->best.prediction.confidence_threshold,
            a->best.prediction.confidence_threshold);
}

TEST_F(TunerTest, InvalidIntervalsRejected) {
  TuningOptions bad = options_;
  bad.train_to = bad.train_from;
  EXPECT_FALSE(RunTuningPipeline(traces_, bad).ok());
  bad = options_;
  bad.test_to = 0;
  EXPECT_FALSE(RunTuningPipeline(traces_, bad).ok());
}

TEST_F(TunerTest, InfeasibleGridPointsAreSkipped) {
  // Weekly seasonality with the default 28-day history is feasible;
  // window > horizon is pruned by validation, leaving only valid trials.
  options_.window_sizes = {Hours(7), Hours(30)};  // 30h > horizon 24h
  auto report = RunTuningPipeline(traces_, options_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->trials.size(), 2u);  // both run; 30h yields no windows
}

TEST_F(TunerTest, KnobSensitivityRanksVariedKnobs) {
  options_.window_sizes = {Hours(1), Hours(7)};
  options_.confidence_thresholds = {0.1, 0.8};
  auto report = RunTuningPipeline(traces_, options_);
  ASSERT_TRUE(report.ok());
  auto ranking = RankKnobSensitivity(*report);
  // Only the two varied knobs appear.
  ASSERT_EQ(ranking.size(), 2u);
  for (size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_GE(ranking[i - 1].score_spread, ranking[i].score_spread);
  }
  // Figure 9 shows confidence dominating the trade-off; the ranking must
  // reflect that on this grid.
  EXPECT_EQ(ranking[0].knob, "confidence_threshold");
  EXPECT_GT(ranking[0].score_spread, 0);
}

TEST_F(TunerTest, KnobSensitivityEmptyForSingleton) {
  auto report = RunTuningPipeline(traces_, options_);  // no axes varied
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(RankKnobSensitivity(*report).empty());
}

TEST_F(TunerTest, SeasonalityAxis) {
  options_.seasonalities = {Days(1), Weeks(1)};
  auto report = RunTuningPipeline(traces_, options_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->trials.size(), 2u);
}

}  // namespace
}  // namespace prorp::training
