#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "forecast/baseline_predictors.h"
#include "forecast/fast_predictor.h"
#include "forecast/sliding_window_predictor.h"
#include "history/mem_history_store.h"
#include "history/sql_history_store.h"

namespace prorp::forecast {
namespace {

using history::kEventLogin;
using history::kEventLogout;
using history::MemHistoryStore;

// A Monday 00:00 UTC anchor well in the future of epoch 0 so that 28 days
// of history fit comfortably.
constexpr EpochSeconds kAnchor = Days(1000) + Days(4);  // day 1004: Monday

/// Fills `store` with one activity session per day at the given offsets
/// for `days` days ending the day before `now`'s day.
void AddDailySessions(MemHistoryStore& store, EpochSeconds now, int days,
                      DurationSeconds login_offset,
                      DurationSeconds logout_offset) {
  EpochSeconds today = StartOfDay(now);
  for (int d = 1; d <= days; ++d) {
    EpochSeconds day = today - Days(d);
    ASSERT_TRUE(store.InsertHistory(day + login_offset, kEventLogin).ok());
    ASSERT_TRUE(store.InsertHistory(day + logout_offset, kEventLogout).ok());
  }
}

PredictionConfig DefaultConfig() { return PredictionConfig{}; }

TEST(SlidingWindowPredictorTest, DetectsPerfectDailyPattern) {
  MemHistoryStore store;
  EpochSeconds now = kAnchor;  // midnight
  AddDailySessions(store, now, 28, Hours(9), Hours(17));
  SlidingWindowPredictor predictor(DefaultConfig());
  auto pred = predictor.PredictNextActivity(store, now);
  ASSERT_TRUE(pred.ok()) << pred.status().ToString();
  ASSERT_TRUE(pred->HasPrediction());
  // The 9:00 login must fall inside the predicted interval; prediction
  // starts at (or just before) the historical login hour.
  EpochSeconds expected_login = now + Hours(9);
  EXPECT_LE(pred->start, expected_login);
  EXPECT_GE(pred->end, expected_login);
  EXPECT_GT(pred->confidence, 0.9);
}

TEST(SlidingWindowPredictorTest, NoHistoryNoPrediction) {
  MemHistoryStore store;
  SlidingWindowPredictor predictor(DefaultConfig());
  auto pred = predictor.PredictNextActivity(store, kAnchor);
  ASSERT_TRUE(pred.ok());
  EXPECT_FALSE(pred->HasPrediction());
  EXPECT_EQ(pred->start, 0);  // Algorithm 1 checks start = 0
}

TEST(SlidingWindowPredictorTest, SparsePatternBelowConfidenceThreshold) {
  MemHistoryStore store;
  EpochSeconds now = kAnchor;
  // Activity on only 2 of 28 days => probability 2/28 ~ 0.07 < 0.1.
  EpochSeconds today = StartOfDay(now);
  for (int d : {3, 17}) {
    ASSERT_TRUE(
        store.InsertHistory(today - Days(d) + Hours(9), kEventLogin).ok());
  }
  SlidingWindowPredictor predictor(DefaultConfig());
  auto pred = predictor.PredictNextActivity(store, now);
  ASSERT_TRUE(pred.ok());
  EXPECT_FALSE(pred->HasPrediction());
  // Lowering the threshold makes the same pattern predictable.
  PredictionConfig loose = DefaultConfig();
  loose.confidence_threshold = 0.05;
  SlidingWindowPredictor loose_predictor(loose);
  auto pred2 = loose_predictor.PredictNextActivity(store, now);
  ASSERT_TRUE(pred2.ok());
  EXPECT_TRUE(pred2->HasPrediction());
}

TEST(SlidingWindowPredictorTest, LiteralBreakMissesLaterActivity) {
  // With activity at 9:00 and "now" at midnight, the first window
  // [00:00, 07:00] has zero confidence; the printed ELSE BREAK aborts
  // immediately and predicts nothing, while the corrected scan finds it.
  MemHistoryStore store;
  EpochSeconds now = kAnchor;
  AddDailySessions(store, now, 28, Hours(9), Hours(10));
  PredictionConfig literal = DefaultConfig();
  literal.literal_break = true;
  SlidingWindowPredictor literal_predictor(literal);
  auto p1 = literal_predictor.PredictNextActivity(store, now);
  ASSERT_TRUE(p1.ok());
  EXPECT_FALSE(p1->HasPrediction());

  SlidingWindowPredictor corrected(DefaultConfig());
  auto p2 = corrected.PredictNextActivity(store, now);
  ASSERT_TRUE(p2.ok());
  EXPECT_TRUE(p2->HasPrediction());
}

TEST(SlidingWindowPredictorTest, WeeklySeasonalityFindsWeeklyPattern) {
  MemHistoryStore store;
  EpochSeconds now = kAnchor;  // Monday 00:00
  // Logins only on Mondays at 8:00 for 8 weeks.
  for (int wk = 1; wk <= 8; ++wk) {
    ASSERT_TRUE(store
                    .InsertHistory(StartOfDay(now) - Weeks(wk) + Hours(8),
                                   kEventLogin)
                    .ok());
  }
  // Daily seasonality sees activity on only 8 of 56 days spread across
  // weekdays => the Monday pattern is invisible at c = 0.5.
  PredictionConfig daily = DefaultConfig();
  daily.history_length = Weeks(8);
  daily.confidence_threshold = 0.5;
  SlidingWindowPredictor daily_pred(daily);
  auto p_daily = daily_pred.PredictNextActivity(store, now);
  ASSERT_TRUE(p_daily.ok());
  EXPECT_FALSE(p_daily->HasPrediction());

  // Weekly seasonality looks back Monday-to-Monday: confidence 1.0.
  PredictionConfig weekly = DefaultConfig();
  weekly.history_length = Weeks(8);
  weekly.seasonality = Weeks(1);
  weekly.confidence_threshold = 0.5;
  SlidingWindowPredictor weekly_pred(weekly);
  auto p_weekly = weekly_pred.PredictNextActivity(store, now);
  ASSERT_TRUE(p_weekly.ok());
  ASSERT_TRUE(p_weekly->HasPrediction());
  EXPECT_LE(p_weekly->start, now + Hours(8));
  EXPECT_GE(p_weekly->end, now + Hours(8));
  EXPECT_DOUBLE_EQ(p_weekly->confidence, 1.0);
}

TEST(SlidingWindowPredictorTest, PredictionNeverStartsInThePast) {
  MemHistoryStore store;
  EpochSeconds now = kAnchor + Hours(11);  // mid-day
  AddDailySessions(store, now, 28, Hours(9), Hours(17));
  SlidingWindowPredictor predictor(DefaultConfig());
  auto pred = predictor.PredictNextActivity(store, now);
  ASSERT_TRUE(pred.ok());
  if (pred->HasPrediction()) {
    EXPECT_GE(pred->start, now);
    EXPECT_GE(pred->end, pred->start);
  }
}

// Figure 5 of the paper: 5 days of history, a window with confidence 4/5
// and a window with confidence 5/5; the prediction takes the
// higher-confidence window's extremes.
TEST(SlidingWindowPredictorTest, Figure5Example) {
  MemHistoryStore store;
  EpochSeconds now = kAnchor;
  EpochSeconds today = StartOfDay(now);
  // Days 1-5 (1 = yesterday ... 5): logins around 10:00; day 3 has two
  // separate logins inside the window (as in the figure); day 2 has none
  // early but one at 11:15 (so narrow early windows have confidence 4/5).
  struct DayLogins {
    int day;
    std::vector<DurationSeconds> logins;
  };
  std::vector<DayLogins> days = {
      {1, {Hours(10)}},
      {2, {Hours(11) + Minutes(15)}},
      {3, {Hours(9) + Minutes(30), Hours(12)}},
      {4, {Hours(10) + Minutes(15)}},
      {5, {Hours(10) + Minutes(45)}},
  };
  for (const auto& d : days) {
    for (DurationSeconds offset : d.logins) {
      ASSERT_TRUE(
          store.InsertHistory(today - Days(d.day) + offset, kEventLogin)
              .ok());
    }
  }
  PredictionConfig cfg;
  cfg.history_length = Days(5);
  cfg.window_size = Hours(3);
  cfg.window_slide = Minutes(30);
  cfg.confidence_threshold = 0.8;
  SlidingWindowPredictor predictor(cfg);
  auto pred = predictor.PredictNextActivity(store, now);
  ASSERT_TRUE(pred.ok());
  ASSERT_TRUE(pred->HasPrediction());
  // The selected window covers all five days' logins => confidence 1.
  EXPECT_DOUBLE_EQ(pred->confidence, 1.0);
  // Predicted interval spans the earliest and latest observed login
  // offsets of the winning window.
  EXPECT_LE(pred->start, now + Hours(9) + Minutes(30) + Hours(1));
  EXPECT_GE(pred->end, now + Hours(11) + Minutes(15));
}

TEST(SlidingWindowPredictorTest, BoundaryLoginNotDoubleCounted) {
  // Regression for the inclusive season-window bound: a login exactly at
  // prev_start + window_size used to be counted in two adjacent sliding
  // windows, inflating seasons_with_activity past the confidence
  // threshold.
  MemHistoryStore store;
  EpochSeconds now = kAnchor;
  EpochSeconds today = StartOfDay(now);
  // Three logins exactly window_size (2 h) apart: no half-open 2 h window
  // can contain more than one of them.
  ASSERT_TRUE(
      store.InsertHistory(today - Days(1) + Hours(8), kEventLogin).ok());
  ASSERT_TRUE(
      store.InsertHistory(today - Days(2) + Hours(10), kEventLogin).ok());
  ASSERT_TRUE(
      store.InsertHistory(today - Days(3) + Hours(12), kEventLogin).ok());
  PredictionConfig cfg;
  cfg.history_length = Days(5);
  cfg.window_size = Hours(2);
  cfg.window_slide = Minutes(30);
  cfg.confidence_threshold = 0.4;  // 2 of 5 seasons
  SlidingWindowPredictor faithful(cfg);
  FastPredictor fast(cfg);
  auto a = faithful.PredictNextActivity(store, now);
  auto b = fast.PredictNextActivity(store, now);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // With the inclusive bound, window [8:00, 10:00] counted both the 8:00
  // and the boundary 10:00 login (2 of 5 seasons) and emitted a spurious
  // prediction; with half-open windows every window sees at most one
  // active season, below the threshold.
  EXPECT_FALSE(a->HasPrediction());
  EXPECT_EQ(*a, *b);
}

TEST(FastPredictorTest, MatchesFaithfulOnDailyPattern) {
  MemHistoryStore store;
  EpochSeconds now = kAnchor + Hours(3);
  AddDailySessions(store, now, 28, Hours(8) + Minutes(17),
                   Hours(16) + Minutes(42));
  SlidingWindowPredictor slow(DefaultConfig());
  FastPredictor fast(DefaultConfig());
  auto a = slow.PredictNextActivity(store, now);
  auto b = fast.PredictNextActivity(store, now);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_TRUE(a->HasPrediction());
}

// Property sweep: on random histories and random configurations the
// faithful and vectorized predictors are bit-identical.
class PredictorEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(PredictorEquivalenceTest, FastEqualsFaithful) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    MemHistoryStore store;
    EpochSeconds now =
        kAnchor + rng.NextInt(0, Days(1) - 1);
    // Random history: sessions with random day coverage and jitter.
    int days = static_cast<int>(rng.NextInt(0, 35));
    for (int d = 1; d <= days; ++d) {
      if (!rng.NextBool(0.7)) continue;
      int sessions = static_cast<int>(rng.NextInt(1, 3));
      for (int s = 0; s < sessions; ++s) {
        EpochSeconds login = StartOfDay(now) - Days(d) +
                             rng.NextInt(0, Days(1) - Hours(1));
        ASSERT_TRUE(store.InsertHistory(login, kEventLogin).ok());
        ASSERT_TRUE(
            store.InsertHistory(login + rng.NextInt(60, Hours(3)),
                                kEventLogout)
                .ok());
      }
    }
    PredictionConfig cfg;
    cfg.history_length = Days(rng.NextInt(7, 28));
    cfg.window_size = Hours(rng.NextInt(1, 8));
    cfg.window_slide = Minutes(rng.NextInt(1, 12) * 5);
    cfg.confidence_threshold = rng.NextDouble();
    cfg.literal_break = rng.NextBool(0.3);
    if (rng.NextBool(0.25)) {
      cfg.seasonality = Weeks(1);
      cfg.prediction_horizon = Days(rng.NextInt(1, 7));
      cfg.history_length = Weeks(rng.NextInt(1, 4));
    }
    SlidingWindowPredictor slow(cfg);
    FastPredictor fast(cfg);
    auto a = slow.PredictNextActivity(store, now);
    auto b = fast.PredictNextActivity(store, now);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(*a, *b) << "trial " << trial << " cfg "
                      << cfg.window_size << "/" << cfg.window_slide << "/"
                      << cfg.confidence_threshold;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredictorEquivalenceTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

TEST(PredictorEquivalenceTest, SqlStoreMatchesMemStore) {
  // End-to-end: the faithful predictor over the real SQL store equals the
  // fast predictor over the in-memory store for the same history.
  auto sql_store = history::SqlHistoryStore::Open();
  ASSERT_TRUE(sql_store.ok());
  MemHistoryStore mem_store;
  Rng rng(99);
  EpochSeconds now = kAnchor;
  for (int d = 1; d <= 28; ++d) {
    if (!rng.NextBool(0.8)) continue;
    EpochSeconds login =
        StartOfDay(now) - Days(d) + Hours(9) + rng.NextInt(0, Minutes(40));
    ASSERT_TRUE((*sql_store)->InsertHistory(login, kEventLogin).ok());
    ASSERT_TRUE(mem_store.InsertHistory(login, kEventLogin).ok());
    ASSERT_TRUE(
        (*sql_store)->InsertHistory(login + Hours(8), kEventLogout).ok());
    ASSERT_TRUE(mem_store.InsertHistory(login + Hours(8), kEventLogout).ok());
  }
  SlidingWindowPredictor slow(DefaultConfig());
  FastPredictor fast(DefaultConfig());
  auto a = slow.PredictNextActivity(**sql_store, now);
  auto b = fast.PredictNextActivity(mem_store, now);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_TRUE(a->HasPrediction());
}

TEST(BaselinePredictorsTest, NeverPredictsNothing) {
  MemHistoryStore store;
  NeverPredictor never;
  auto p = never.PredictNextActivity(store, kAnchor);
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->HasPrediction());
}

TEST(BaselinePredictorsTest, FailingIsUnavailable) {
  MemHistoryStore store;
  FailingPredictor failing;
  auto p = failing.PredictNextActivity(store, kAnchor);
  EXPECT_FALSE(p.ok());
  EXPECT_TRUE(p.status().IsUnavailable());
}

TEST(BaselinePredictorsTest, FixedDelayIsControllable) {
  MemHistoryStore store;
  FixedDelayPredictor fixed(Hours(2), Hours(1));
  auto p = fixed.PredictNextActivity(store, 1000);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->start, 1000 + Hours(2));
  EXPECT_EQ(p->end, 1000 + Hours(3));
}

TEST(PredictionConfigValidationTest, InvalidConfigSurfacesAsError) {
  MemHistoryStore store;
  PredictionConfig bad;
  bad.window_slide = 0;
  SlidingWindowPredictor p1(bad);
  EXPECT_FALSE(p1.PredictNextActivity(store, kAnchor).ok());
  FastPredictor p2(bad);
  EXPECT_FALSE(p2.PredictNextActivity(store, kAnchor).ok());
}

}  // namespace
}  // namespace prorp::forecast
