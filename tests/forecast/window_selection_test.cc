#include "forecast/window_selection.h"

#include <map>

#include <gtest/gtest.h>

namespace prorp::forecast {
namespace {

PredictionConfig SmallConfig() {
  PredictionConfig cfg;
  cfg.history_length = Days(10);
  cfg.prediction_horizon = Hours(10);
  cfg.window_size = Hours(1);
  cfg.window_slide = Hours(1);  // 10 disjoint windows
  cfg.confidence_threshold = 0.3;
  return cfg;
}

/// Builds a stats function from per-window (seasons_with_activity,
/// first_offset, last_offset) triples keyed by window index.
auto StatsFromTable(const PredictionConfig& cfg, EpochSeconds now,
                    std::map<int64_t, WindowStats> table) {
  return [cfg, now, table = std::move(table)](
             EpochSeconds win_start) -> Result<WindowStats> {
    int64_t index = (win_start - now) / cfg.window_slide;
    auto it = table.find(index);
    if (it != table.end()) return it->second;
    WindowStats empty;
    empty.first_login_offset = cfg.window_size;
    return empty;
  };
}

TEST(WindowSelectionTest, NoQualifyingWindowYieldsNone) {
  PredictionConfig cfg = SmallConfig();
  auto r = SelectPrediction(cfg, 0, StatsFromTable(cfg, 0, {}));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->HasPrediction());
}

TEST(WindowSelectionTest, SkipsSubThresholdWindowsThenSelects) {
  PredictionConfig cfg = SmallConfig();
  // Window 4 has confidence 5/10 = 0.5 >= 0.3; earlier windows are empty.
  std::map<int64_t, WindowStats> table;
  table[4] = {5, Minutes(10), Minutes(40)};
  auto r = SelectPrediction(cfg, 0, StatsFromTable(cfg, 0, table));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->HasPrediction());
  EXPECT_EQ(r->start, 4 * Hours(1) + Minutes(10));
  EXPECT_EQ(r->end, 4 * Hours(1) + Minutes(40));
  EXPECT_DOUBLE_EQ(r->confidence, 0.5);
}

TEST(WindowSelectionTest, KeepsSlidingWhileConfidenceIncreases) {
  PredictionConfig cfg = SmallConfig();
  std::map<int64_t, WindowStats> table;
  table[2] = {4, Minutes(30), Minutes(50)};   // 0.4
  table[3] = {7, Minutes(5), Minutes(45)};    // 0.7 — improves
  table[4] = {7, Minutes(1), Minutes(59)};    // plateau — stops before
  table[5] = {9, 0, Minutes(59)};             // never reached
  auto r = SelectPrediction(cfg, 0, StatsFromTable(cfg, 0, table));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->start, 3 * Hours(1) + Minutes(5));
  EXPECT_DOUBLE_EQ(r->confidence, 0.7);
}

TEST(WindowSelectionTest, LiteralBreakAbortsAtFirstNonQualifier) {
  PredictionConfig cfg = SmallConfig();
  cfg.literal_break = true;
  std::map<int64_t, WindowStats> table;
  table[4] = {9, Minutes(10), Minutes(40)};  // unreachable: window 0 fails
  auto r = SelectPrediction(cfg, 0, StatsFromTable(cfg, 0, table));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->HasPrediction());
  // But a qualifying window 0 is found and kept while improving.
  table[0] = {4, Minutes(1), Minutes(2)};
  auto r2 = SelectPrediction(cfg, 0, StatsFromTable(cfg, 0, table));
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->HasPrediction());
  EXPECT_DOUBLE_EQ(r2->confidence, 0.4);
}

TEST(WindowSelectionTest, ZeroConfidenceWindowsNeverSelectedEvenAtCZero) {
  PredictionConfig cfg = SmallConfig();
  cfg.confidence_threshold = 0.0;
  auto r = SelectPrediction(cfg, 0, StatsFromTable(cfg, 0, {}));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->HasPrediction());  // degenerate c=0 guard
}

TEST(WindowSelectionTest, StatsErrorPropagates) {
  PredictionConfig cfg = SmallConfig();
  auto r = SelectPrediction(cfg, 0, [](EpochSeconds) -> Result<WindowStats> {
    return Status::Unavailable("store down");
  });
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
}

TEST(WindowSelectionTest, InvalidConfigRejected) {
  PredictionConfig cfg = SmallConfig();
  cfg.window_slide = 0;
  auto r = SelectPrediction(cfg, 0, StatsFromTable(cfg, 0, {}));
  EXPECT_FALSE(r.ok());
}

TEST(WindowSelectionTest, PredictionToString) {
  ActivityPrediction none;
  EXPECT_EQ(none.ToString(), "no activity predicted");
  ActivityPrediction p;
  p.start = Days(1005) + Hours(9);
  p.end = p.start + Hours(1);
  p.confidence = 0.75;
  EXPECT_NE(p.ToString().find("conf=0.75"), std::string::npos);
}

}  // namespace
}  // namespace prorp::forecast
