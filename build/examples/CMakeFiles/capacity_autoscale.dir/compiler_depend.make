# Empty compiler generated dependencies file for capacity_autoscale.
# This may be replaced when dependencies are built.
