file(REMOVE_RECURSE
  "CMakeFiles/capacity_autoscale.dir/capacity_autoscale.cpp.o"
  "CMakeFiles/capacity_autoscale.dir/capacity_autoscale.cpp.o.d"
  "capacity_autoscale"
  "capacity_autoscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_autoscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
