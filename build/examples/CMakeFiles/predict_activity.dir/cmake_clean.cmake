file(REMOVE_RECURSE
  "CMakeFiles/predict_activity.dir/predict_activity.cpp.o"
  "CMakeFiles/predict_activity.dir/predict_activity.cpp.o.d"
  "predict_activity"
  "predict_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
