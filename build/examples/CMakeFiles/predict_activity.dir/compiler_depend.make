# Empty compiler generated dependencies file for predict_activity.
# This may be replaced when dependencies are built.
