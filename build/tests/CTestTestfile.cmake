# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/history_test[1]_include.cmake")
include("/root/repo/build/tests/forecast_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/telemetry_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/controlplane_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/training_test[1]_include.cmake")
include("/root/repo/build/tests/scaling_test[1]_include.cmake")
include("/root/repo/build/tests/maintenance_test[1]_include.cmake")
