
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/controlplane/controlplane_test.cc" "tests/CMakeFiles/controlplane_test.dir/controlplane/controlplane_test.cc.o" "gcc" "tests/CMakeFiles/controlplane_test.dir/controlplane/controlplane_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/controlplane/CMakeFiles/prorp_controlplane.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/prorp_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/prorp_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/history/CMakeFiles/prorp_history.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/prorp_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/prorp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/prorp_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prorp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
