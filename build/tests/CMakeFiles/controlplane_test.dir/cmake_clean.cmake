file(REMOVE_RECURSE
  "CMakeFiles/controlplane_test.dir/controlplane/controlplane_test.cc.o"
  "CMakeFiles/controlplane_test.dir/controlplane/controlplane_test.cc.o.d"
  "controlplane_test"
  "controlplane_test.pdb"
  "controlplane_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controlplane_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
