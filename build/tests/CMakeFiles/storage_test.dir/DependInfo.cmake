
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage/bplus_tree_test.cc" "tests/CMakeFiles/storage_test.dir/storage/bplus_tree_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/bplus_tree_test.cc.o.d"
  "/root/repo/tests/storage/buffer_pool_test.cc" "tests/CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o.d"
  "/root/repo/tests/storage/crash_recovery_test.cc" "tests/CMakeFiles/storage_test.dir/storage/crash_recovery_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/crash_recovery_test.cc.o.d"
  "/root/repo/tests/storage/disk_manager_test.cc" "tests/CMakeFiles/storage_test.dir/storage/disk_manager_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/disk_manager_test.cc.o.d"
  "/root/repo/tests/storage/durable_tree_test.cc" "tests/CMakeFiles/storage_test.dir/storage/durable_tree_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/durable_tree_test.cc.o.d"
  "/root/repo/tests/storage/snapshot_test.cc" "tests/CMakeFiles/storage_test.dir/storage/snapshot_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/snapshot_test.cc.o.d"
  "/root/repo/tests/storage/wal_test.cc" "tests/CMakeFiles/storage_test.dir/storage/wal_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/wal_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/prorp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prorp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
