
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scaling/autoscaler.cc" "src/scaling/CMakeFiles/prorp_scaling.dir/autoscaler.cc.o" "gcc" "src/scaling/CMakeFiles/prorp_scaling.dir/autoscaler.cc.o.d"
  "/root/repo/src/scaling/demand_history.cc" "src/scaling/CMakeFiles/prorp_scaling.dir/demand_history.cc.o" "gcc" "src/scaling/CMakeFiles/prorp_scaling.dir/demand_history.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prorp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
