file(REMOVE_RECURSE
  "CMakeFiles/prorp_scaling.dir/autoscaler.cc.o"
  "CMakeFiles/prorp_scaling.dir/autoscaler.cc.o.d"
  "CMakeFiles/prorp_scaling.dir/demand_history.cc.o"
  "CMakeFiles/prorp_scaling.dir/demand_history.cc.o.d"
  "libprorp_scaling.a"
  "libprorp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prorp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
