# Empty dependencies file for prorp_scaling.
# This may be replaced when dependencies are built.
