file(REMOVE_RECURSE
  "libprorp_scaling.a"
)
