file(REMOVE_RECURSE
  "libprorp_forecast.a"
)
