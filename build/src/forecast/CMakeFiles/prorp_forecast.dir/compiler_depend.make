# Empty compiler generated dependencies file for prorp_forecast.
# This may be replaced when dependencies are built.
