file(REMOVE_RECURSE
  "CMakeFiles/prorp_forecast.dir/fast_predictor.cc.o"
  "CMakeFiles/prorp_forecast.dir/fast_predictor.cc.o.d"
  "CMakeFiles/prorp_forecast.dir/sliding_window_predictor.cc.o"
  "CMakeFiles/prorp_forecast.dir/sliding_window_predictor.cc.o.d"
  "CMakeFiles/prorp_forecast.dir/window_selection.cc.o"
  "CMakeFiles/prorp_forecast.dir/window_selection.cc.o.d"
  "libprorp_forecast.a"
  "libprorp_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prorp_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
