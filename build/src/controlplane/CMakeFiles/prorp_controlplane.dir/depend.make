# Empty dependencies file for prorp_controlplane.
# This may be replaced when dependencies are built.
