file(REMOVE_RECURSE
  "CMakeFiles/prorp_controlplane.dir/management_service.cc.o"
  "CMakeFiles/prorp_controlplane.dir/management_service.cc.o.d"
  "CMakeFiles/prorp_controlplane.dir/metadata_store.cc.o"
  "CMakeFiles/prorp_controlplane.dir/metadata_store.cc.o.d"
  "libprorp_controlplane.a"
  "libprorp_controlplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prorp_controlplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
