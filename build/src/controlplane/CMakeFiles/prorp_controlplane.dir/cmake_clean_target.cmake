file(REMOVE_RECURSE
  "libprorp_controlplane.a"
)
