# CMake generated Testfile for 
# Source directory: /root/repo/src/maintenance
# Build directory: /root/repo/build/src/maintenance
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
