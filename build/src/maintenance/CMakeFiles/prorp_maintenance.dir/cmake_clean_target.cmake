file(REMOVE_RECURSE
  "libprorp_maintenance.a"
)
