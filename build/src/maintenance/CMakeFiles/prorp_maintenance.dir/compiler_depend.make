# Empty compiler generated dependencies file for prorp_maintenance.
# This may be replaced when dependencies are built.
