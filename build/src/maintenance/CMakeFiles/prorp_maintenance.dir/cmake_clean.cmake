file(REMOVE_RECURSE
  "CMakeFiles/prorp_maintenance.dir/scheduler.cc.o"
  "CMakeFiles/prorp_maintenance.dir/scheduler.cc.o.d"
  "libprorp_maintenance.a"
  "libprorp_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prorp_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
