file(REMOVE_RECURSE
  "CMakeFiles/prorp_workload.dir/patterns.cc.o"
  "CMakeFiles/prorp_workload.dir/patterns.cc.o.d"
  "CMakeFiles/prorp_workload.dir/region.cc.o"
  "CMakeFiles/prorp_workload.dir/region.cc.o.d"
  "CMakeFiles/prorp_workload.dir/trace.cc.o"
  "CMakeFiles/prorp_workload.dir/trace.cc.o.d"
  "CMakeFiles/prorp_workload.dir/trace_io.cc.o"
  "CMakeFiles/prorp_workload.dir/trace_io.cc.o.d"
  "libprorp_workload.a"
  "libprorp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prorp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
