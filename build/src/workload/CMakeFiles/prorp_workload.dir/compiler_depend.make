# Empty compiler generated dependencies file for prorp_workload.
# This may be replaced when dependencies are built.
