file(REMOVE_RECURSE
  "libprorp_workload.a"
)
