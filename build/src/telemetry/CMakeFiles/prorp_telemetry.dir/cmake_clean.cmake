file(REMOVE_RECURSE
  "CMakeFiles/prorp_telemetry.dir/events.cc.o"
  "CMakeFiles/prorp_telemetry.dir/events.cc.o.d"
  "CMakeFiles/prorp_telemetry.dir/kpi.cc.o"
  "CMakeFiles/prorp_telemetry.dir/kpi.cc.o.d"
  "CMakeFiles/prorp_telemetry.dir/region_report.cc.o"
  "CMakeFiles/prorp_telemetry.dir/region_report.cc.o.d"
  "CMakeFiles/prorp_telemetry.dir/usage_ledger.cc.o"
  "CMakeFiles/prorp_telemetry.dir/usage_ledger.cc.o.d"
  "libprorp_telemetry.a"
  "libprorp_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prorp_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
