
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/events.cc" "src/telemetry/CMakeFiles/prorp_telemetry.dir/events.cc.o" "gcc" "src/telemetry/CMakeFiles/prorp_telemetry.dir/events.cc.o.d"
  "/root/repo/src/telemetry/kpi.cc" "src/telemetry/CMakeFiles/prorp_telemetry.dir/kpi.cc.o" "gcc" "src/telemetry/CMakeFiles/prorp_telemetry.dir/kpi.cc.o.d"
  "/root/repo/src/telemetry/region_report.cc" "src/telemetry/CMakeFiles/prorp_telemetry.dir/region_report.cc.o" "gcc" "src/telemetry/CMakeFiles/prorp_telemetry.dir/region_report.cc.o.d"
  "/root/repo/src/telemetry/usage_ledger.cc" "src/telemetry/CMakeFiles/prorp_telemetry.dir/usage_ledger.cc.o" "gcc" "src/telemetry/CMakeFiles/prorp_telemetry.dir/usage_ledger.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prorp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
