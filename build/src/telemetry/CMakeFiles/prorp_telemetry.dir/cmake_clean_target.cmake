file(REMOVE_RECURSE
  "libprorp_telemetry.a"
)
