# Empty dependencies file for prorp_telemetry.
# This may be replaced when dependencies are built.
