file(REMOVE_RECURSE
  "CMakeFiles/prorp_training.dir/tuner.cc.o"
  "CMakeFiles/prorp_training.dir/tuner.cc.o.d"
  "libprorp_training.a"
  "libprorp_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prorp_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
