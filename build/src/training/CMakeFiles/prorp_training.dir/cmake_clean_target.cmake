file(REMOVE_RECURSE
  "libprorp_training.a"
)
