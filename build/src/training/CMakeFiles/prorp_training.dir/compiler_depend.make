# Empty compiler generated dependencies file for prorp_training.
# This may be replaced when dependencies are built.
