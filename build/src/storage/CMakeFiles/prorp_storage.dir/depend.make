# Empty dependencies file for prorp_storage.
# This may be replaced when dependencies are built.
