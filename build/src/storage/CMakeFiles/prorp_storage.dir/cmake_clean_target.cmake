file(REMOVE_RECURSE
  "libprorp_storage.a"
)
