file(REMOVE_RECURSE
  "CMakeFiles/prorp_storage.dir/bplus_tree.cc.o"
  "CMakeFiles/prorp_storage.dir/bplus_tree.cc.o.d"
  "CMakeFiles/prorp_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/prorp_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/prorp_storage.dir/crc32.cc.o"
  "CMakeFiles/prorp_storage.dir/crc32.cc.o.d"
  "CMakeFiles/prorp_storage.dir/disk_manager.cc.o"
  "CMakeFiles/prorp_storage.dir/disk_manager.cc.o.d"
  "CMakeFiles/prorp_storage.dir/durable_tree.cc.o"
  "CMakeFiles/prorp_storage.dir/durable_tree.cc.o.d"
  "CMakeFiles/prorp_storage.dir/snapshot.cc.o"
  "CMakeFiles/prorp_storage.dir/snapshot.cc.o.d"
  "CMakeFiles/prorp_storage.dir/wal.cc.o"
  "CMakeFiles/prorp_storage.dir/wal.cc.o.d"
  "libprorp_storage.a"
  "libprorp_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prorp_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
