# Empty dependencies file for prorp_history.
# This may be replaced when dependencies are built.
