file(REMOVE_RECURSE
  "CMakeFiles/prorp_history.dir/mem_history_store.cc.o"
  "CMakeFiles/prorp_history.dir/mem_history_store.cc.o.d"
  "CMakeFiles/prorp_history.dir/sql_history_store.cc.o"
  "CMakeFiles/prorp_history.dir/sql_history_store.cc.o.d"
  "libprorp_history.a"
  "libprorp_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prorp_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
