file(REMOVE_RECURSE
  "libprorp_history.a"
)
