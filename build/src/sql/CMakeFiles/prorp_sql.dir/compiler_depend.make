# Empty compiler generated dependencies file for prorp_sql.
# This may be replaced when dependencies are built.
