file(REMOVE_RECURSE
  "CMakeFiles/prorp_sql.dir/database.cc.o"
  "CMakeFiles/prorp_sql.dir/database.cc.o.d"
  "CMakeFiles/prorp_sql.dir/lexer.cc.o"
  "CMakeFiles/prorp_sql.dir/lexer.cc.o.d"
  "CMakeFiles/prorp_sql.dir/parser.cc.o"
  "CMakeFiles/prorp_sql.dir/parser.cc.o.d"
  "CMakeFiles/prorp_sql.dir/table.cc.o"
  "CMakeFiles/prorp_sql.dir/table.cc.o.d"
  "libprorp_sql.a"
  "libprorp_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prorp_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
