file(REMOVE_RECURSE
  "libprorp_sql.a"
)
