file(REMOVE_RECURSE
  "libprorp_common.a"
)
