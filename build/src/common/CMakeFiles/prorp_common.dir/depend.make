# Empty dependencies file for prorp_common.
# This may be replaced when dependencies are built.
