file(REMOVE_RECURSE
  "CMakeFiles/prorp_common.dir/clock.cc.o"
  "CMakeFiles/prorp_common.dir/clock.cc.o.d"
  "CMakeFiles/prorp_common.dir/config.cc.o"
  "CMakeFiles/prorp_common.dir/config.cc.o.d"
  "CMakeFiles/prorp_common.dir/random.cc.o"
  "CMakeFiles/prorp_common.dir/random.cc.o.d"
  "CMakeFiles/prorp_common.dir/stats.cc.o"
  "CMakeFiles/prorp_common.dir/stats.cc.o.d"
  "CMakeFiles/prorp_common.dir/status.cc.o"
  "CMakeFiles/prorp_common.dir/status.cc.o.d"
  "CMakeFiles/prorp_common.dir/time_util.cc.o"
  "CMakeFiles/prorp_common.dir/time_util.cc.o.d"
  "libprorp_common.a"
  "libprorp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prorp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
