# Empty dependencies file for prorp_policy.
# This may be replaced when dependencies are built.
