file(REMOVE_RECURSE
  "CMakeFiles/prorp_policy.dir/lifecycle.cc.o"
  "CMakeFiles/prorp_policy.dir/lifecycle.cc.o.d"
  "CMakeFiles/prorp_policy.dir/lifecycle_controller.cc.o"
  "CMakeFiles/prorp_policy.dir/lifecycle_controller.cc.o.d"
  "libprorp_policy.a"
  "libprorp_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prorp_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
