file(REMOVE_RECURSE
  "libprorp_policy.a"
)
