# Empty compiler generated dependencies file for prorp_sim.
# This may be replaced when dependencies are built.
