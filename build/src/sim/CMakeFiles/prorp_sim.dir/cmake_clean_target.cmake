file(REMOVE_RECURSE
  "libprorp_sim.a"
)
