file(REMOVE_RECURSE
  "CMakeFiles/prorp_sim.dir/fleet_simulator.cc.o"
  "CMakeFiles/prorp_sim.dir/fleet_simulator.cc.o.d"
  "libprorp_sim.a"
  "libprorp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prorp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
