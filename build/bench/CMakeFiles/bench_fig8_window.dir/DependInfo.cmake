
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_window.cc" "bench/CMakeFiles/bench_fig8_window.dir/bench_fig8_window.cc.o" "gcc" "bench/CMakeFiles/bench_fig8_window.dir/bench_fig8_window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/prorp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/training/CMakeFiles/prorp_training.dir/DependInfo.cmake"
  "/root/repo/build/src/controlplane/CMakeFiles/prorp_controlplane.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/prorp_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/prorp_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/history/CMakeFiles/prorp_history.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/prorp_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/prorp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/prorp_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/prorp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prorp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
