# Empty compiler generated dependencies file for bench_fig12_pause_freq.
# This may be replaced when dependencies are built.
