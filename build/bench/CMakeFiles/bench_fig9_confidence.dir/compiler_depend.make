# Empty compiler generated dependencies file for bench_fig9_confidence.
# This may be replaced when dependencies are built.
