file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_confidence.dir/bench_fig9_confidence.cc.o"
  "CMakeFiles/bench_fig9_confidence.dir/bench_fig9_confidence.cc.o.d"
  "bench_fig9_confidence"
  "bench_fig9_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
