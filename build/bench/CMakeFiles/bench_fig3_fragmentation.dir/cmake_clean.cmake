file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_fragmentation.dir/bench_fig3_fragmentation.cc.o"
  "CMakeFiles/bench_fig3_fragmentation.dir/bench_fig3_fragmentation.cc.o.d"
  "bench_fig3_fragmentation"
  "bench_fig3_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
