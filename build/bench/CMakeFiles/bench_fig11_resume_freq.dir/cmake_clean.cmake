file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_resume_freq.dir/bench_fig11_resume_freq.cc.o"
  "CMakeFiles/bench_fig11_resume_freq.dir/bench_fig11_resume_freq.cc.o.d"
  "bench_fig11_resume_freq"
  "bench_fig11_resume_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_resume_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
