# Empty compiler generated dependencies file for bench_fig11_resume_freq.
# This may be replaced when dependencies are built.
