# Empty dependencies file for bench_fig7_days.
# This may be replaced when dependencies are built.
