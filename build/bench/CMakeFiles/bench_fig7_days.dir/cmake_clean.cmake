file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_days.dir/bench_fig7_days.cc.o"
  "CMakeFiles/bench_fig7_days.dir/bench_fig7_days.cc.o.d"
  "bench_fig7_days"
  "bench_fig7_days.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_days.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
