// Quickstart: the ProRP public API on one serverless database.
//
// Builds a per-database activity history, runs the probabilistic
// next-activity prediction (Algorithm 4), and drives the proactive
// lifecycle controller (Algorithm 1) through one simulated day — then
// renders the Figure 2 style comparison of the reactive, proactive, and
// optimal allocation time lines.

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.h"
#include "forecast/fast_predictor.h"
#include "history/mem_history_store.h"
#include "policy/lifecycle_controller.h"

using namespace prorp;  // NOLINT: example brevity

namespace {

// One month of a 9:00-17:00 weekday workload with a lunch break.
void SeedHistory(history::MemHistoryStore& store, EpochSeconds today) {
  for (int d = 1; d <= 28; ++d) {
    EpochSeconds day = today - Days(d);
    if (IsWeekend(day)) continue;
    store.InsertHistory(day + Hours(9), history::kEventLogin);
    store.InsertHistory(day + Hours(12), history::kEventLogout);
    store.InsertHistory(day + Hours(13), history::kEventLogin);
    store.InsertHistory(day + Hours(17), history::kEventLogout);
  }
}

// Renders one day as 48 half-hour slots.
std::string Timeline(const std::vector<std::pair<double, double>>& spans,
                     char mark) {
  std::string line(48, '.');
  for (auto [from_h, to_h] : spans) {
    for (int slot = 0; slot < 48; ++slot) {
      double h = slot / 2.0;
      if (h >= from_h && h < to_h) line[slot] = mark;
    }
  }
  return line;
}

}  // namespace

int main() {
  EpochSeconds today = Days(1005);  // a Monday, 00:00 UTC
  std::printf("=== ProRP quickstart: one serverless database ===\n\n");

  // 1. Customer activity tracking (Section 5).
  history::MemHistoryStore store;
  SeedHistory(store, today);
  std::printf("history: %llu tuples, %.1f KB (compact per Figure 10)\n",
              static_cast<unsigned long long>(store.NumTuples()),
              store.SizeBytes() / 1024.0);

  // 2. Next-activity prediction (Algorithm 4, Table 1 defaults).
  PredictionConfig pred_cfg;  // h=28d, p=1d, c=0.1, w=7h, s=5min
  forecast::FastPredictor predictor(pred_cfg);
  auto prediction = predictor.PredictNextActivity(store, today);
  if (!prediction.ok()) {
    std::printf("prediction failed: %s\n",
                prediction.status().ToString().c_str());
    return 1;
  }
  std::printf("predicted next activity: %s\n",
              prediction->ToString().c_str());

  // 3. The proactive lifecycle (Algorithm 1) across one idle evening.
  PolicyConfig policy_cfg;
  history::MemHistoryStore live;
  SeedHistory(live, today);
  policy::LifecycleController controller(
      policy_cfg, policy::PolicyMode::kProactive, &live, &predictor,
      today - Days(40),
      [](const policy::TransitionEvent& e) {
        std::printf("  [%s] %s -> %s (%s)%s\n",
                    FormatTimestamp(e.time).c_str(),
                    std::string(DbStateName(e.from)).c_str(),
                    std::string(DbStateName(e.to)).c_str(),
                    std::string(TransitionCauseName(e.cause)).c_str(),
                    e.used_prediction ? "" : " [reactive fallback]");
      });
  std::printf("\nDriving Friday 17:00 logout .. Monday 9:00 login\n");
  std::printf("(watch the daily-seasonality predictor pre-warm on the\n"
              " weekend too — the 'wrong proactive resume' cost of\n"
              " Section 9.2):\n");
  EpochSeconds friday_17 = today - Days(3) + Hours(17);
  (void)controller.OnActivityEnd(friday_17);
  // Replay controller timers and control-plane pre-warms until Monday.
  EpochSeconds monday_9 = today + Hours(9);
  for (;;) {
    EpochSeconds timer = controller.NextTimerAt();
    EpochSeconds prewarm = 0;
    if (controller.state() == policy::DbState::kPhysicallyPaused &&
        controller.next_activity().HasPrediction()) {
      prewarm = controller.next_activity().start - Minutes(5);
    }
    EpochSeconds next = 0;
    if (timer != 0 && (prewarm == 0 || timer <= prewarm)) next = timer;
    else if (prewarm != 0) next = prewarm;
    if (next == 0 || next >= monday_9) break;
    if (next == timer) {
      (void)controller.OnTimerCheck(next);
    } else {
      (void)controller.OnProactiveResume(next);
    }
  }
  auto outcome = controller.OnActivityStart(monday_9);
  std::printf("Monday 9:00 login outcome: %s\n\n",
              outcome.ok() && *outcome ==
                      policy::LoginOutcome::kResourcesAvailable
                  ? "resources AVAILABLE (proactive resume worked)"
                  : "reactive resume (delay visible to customer)");

  // 4. Figure 2: policy time lines for the 9-12 / 13-17 workday.
  std::printf("=== Figure 2: allocation time lines (one weekday) ===\n");
  std::printf("hour        0     3     6     9     12    15    18    21\n");
  std::printf("demand      %s\n",
              Timeline({{9, 12}, {13, 17}}, '#').c_str());
  std::printf("reactive    %s  (idle 17:00-24:00 logical pause)\n",
              Timeline({{9, 12}, {12, 13}, {13, 17}, {17, 24}}, '=')
                  .c_str());
  std::printf("proactive   %s  (pre-warm 8:55, pause at 17:00)\n",
              Timeline({{8.9, 17}}, '=').c_str());
  std::printf("optimal     %s  (allocation == demand)\n",
              Timeline({{9, 12}, {13, 17}}, '=').c_str());
  return 0;
}
