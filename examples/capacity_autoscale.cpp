// Example: proactive auto-scaling in small capacity increments (paper
// Section 11, future work 1).  Shows the per-slot demand history learning
// a recurring ramp and the proactive scaler pre-scaling ahead of it.
//
// Usage: capacity_autoscale [days=7]

#include <cstdio>
#include <cstdlib>

#include "scaling/autoscaler.h"

using namespace prorp;  // NOLINT: example brevity

int main(int argc, char** argv) {
  int days = argc > 1 ? std::atoi(argv[1]) : 7;
  EpochSeconds from = Days(1005);  // Monday 00:00 UTC
  EpochSeconds to = from + Days(days);

  Rng rng(42);
  scaling::DemandTrace trace =
      scaling::GenerateDailyDemandTrace(from, to, /*peak=*/4.0, rng);
  std::printf("Generated %zu demand segments over %d days "
              "(recurring ramp to ~4 vCores with spikes).\n\n",
              trace.size(), days);

  scaling::CapacityLadder ladder({0, 0.5, 1, 2, 4, 8});
  scaling::ScalingSimOptions options;

  std::printf("%-10s %14s %12s %12s\n", "scaler", "throttled %",
              "overprov %", "scale ops");
  scaling::FixedScaler fixed(ladder);
  scaling::ReactiveScaler reactive(ladder);
  scaling::ProactiveScaler proactive(ladder, Minutes(30), 0.8);
  scaling::AutoScaler* scalers[] = {&fixed, &reactive, &proactive};
  for (scaling::AutoScaler* scaler : scalers) {
    auto report =
        scaling::ReplayDemandTrace(trace, *scaler, from, to, options);
    if (!report.ok()) {
      std::printf("replay failed: %s\n",
                  report.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s %13.2f%% %11.1f%% %12llu\n",
                scaler->name().c_str(), report->ThrottledPct(),
                report->OverprovisionedPct(),
                static_cast<unsigned long long>(report->scale_ups +
                                                report->scale_downs));
  }

  // Peek inside the learned demand history: tomorrow's 10:00 slot.
  EpochSeconds probe = StartOfDay(to) + Hours(10);
  std::printf("\nLearned p80 demand for the 10:00 slot after %d days: "
              "%.1f vCores\n",
              days, proactive.history().SlotQuantileBefore(probe, 0.8));
  std::printf("Demand history footprint: %.1f KB per database "
              "(compact, like the pause/resume history of Figure 10).\n",
              proactive.history().SizeBytes() / 1024.0);
  return 0;
}
