// Walk-through of the next-activity prediction (paper Section 6 and
// Figure 5): builds the Figure 5 history, executes the prediction both as
// the faithful SQL stored procedure over a real sys.pause_resume_history
// table and as the vectorized in-memory variant, and prints the
// customer-facing materialized view of the history.

#include <cstdio>

#include "common/config.h"
#include "forecast/fast_predictor.h"
#include "forecast/sliding_window_predictor.h"
#include "history/sql_history_store.h"

using namespace prorp;  // NOLINT: example brevity

int main() {
  EpochSeconds today = Days(1005);  // Day 6 of the Figure 5 example
  auto store_or = history::SqlHistoryStore::Open();
  if (!store_or.ok()) {
    std::printf("open failed: %s\n", store_or.status().ToString().c_str());
    return 1;
  }
  history::SqlHistoryStore& store = **store_or;

  // Figure 5: five previous days with logins clustered around 10:00;
  // day 3 has two separate logins inside the window.
  struct DayLogins {
    int day;
    std::vector<DurationSeconds> logins;
  };
  std::vector<DayLogins> days = {
      {1, {Hours(10)}},
      {2, {Hours(11) + Minutes(30)}},
      {3, {Hours(9) + Minutes(30), Hours(12)}},
      {4, {Hours(10) + Minutes(15)}},
      {5, {Hours(10) + Minutes(45)}},
  };
  for (const auto& d : days) {
    for (DurationSeconds offset : d.logins) {
      EpochSeconds login = today - Days(d.day) + offset;
      (void)store.InsertHistory(login, history::kEventLogin);
      (void)store.InsertHistory(login + Hours(1), history::kEventLogout);
    }
  }

  std::printf("=== sys.pause_resume_history (customer view) ===\n%s\n",
              history::FormatHistoryView(*store.ReadAll()).c_str());

  PredictionConfig cfg;
  cfg.history_length = Days(5);
  cfg.window_size = Hours(3);
  cfg.window_slide = Minutes(30);
  cfg.confidence_threshold = 0.8;

  std::printf("=== window confidences (w=3h, slide=30m, c=0.8) ===\n");
  for (EpochSeconds win_start = today + Hours(8);
       win_start <= today + Hours(11); win_start += Minutes(30)) {
    int with_activity = 0;
    for (int d = 1; d <= 5; ++d) {
      auto agg = store.LoginMinMax(win_start - Days(d),
                                   win_start - Days(d) + cfg.window_size);
      if (agg.ok() && agg->any) ++with_activity;
    }
    std::printf("  window %s + %ldh%02ldm: confidence %d/5 = %.1f\n",
                "today",
                static_cast<long>((win_start - today) / kSecondsPerHour),
                static_cast<long>(((win_start - today) % kSecondsPerHour) /
                                  60),
                with_activity, with_activity / 5.0);
  }

  forecast::SlidingWindowPredictor faithful(cfg);
  forecast::FastPredictor fast(cfg);
  auto a = faithful.PredictNextActivity(store, today);
  auto b = fast.PredictNextActivity(store, today);
  if (!a.ok() || !b.ok()) {
    std::printf("prediction failed\n");
    return 1;
  }
  std::printf("\nfaithful SQL predictor : %s\n", a->ToString().c_str());
  std::printf("vectorized predictor   : %s\n", b->ToString().c_str());
  std::printf("identical              : %s\n", (*a == *b) ? "yes" : "NO");
  std::printf(
      "\nThe control plane would pre-warm the database at %s\n"
      "(k = 5 minutes ahead of the predicted start, Algorithm 5).\n",
      FormatTimestamp(a->start - Minutes(5)).c_str());
  return 0;
}
