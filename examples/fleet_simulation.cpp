// Region-scale simulation: generates a synthetic serverless fleet for one
// of the EU1/EU2/US1/US2 profiles and compares the reactive baseline, the
// ProRP proactive policy, and a fixed (always-on) allocation.
//
// Usage: fleet_simulation [region=EU1] [num_dbs=2000] [eval_days=4]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/fleet_simulator.h"
#include "telemetry/region_report.h"
#include "workload/region.h"

using namespace prorp;  // NOLINT: example brevity

int main(int argc, char** argv) {
  std::string region_name = argc > 1 ? argv[1] : "EU1";
  size_t num_dbs = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2000;
  int eval_days = argc > 3 ? std::atoi(argv[3]) : 4;

  workload::RegionProfile profile;
  bool found = false;
  for (const auto& candidate : workload::AllRegions()) {
    if (candidate.name == region_name) {
      profile = candidate;
      found = true;
    }
  }
  if (!found) {
    std::printf("unknown region '%s' (use EU1, EU2, US1, US2)\n",
                region_name.c_str());
    return 1;
  }

  EpochSeconds t0 = Days(1005);
  EpochSeconds measure_from = t0 + Days(28);  // warm-up = history length
  EpochSeconds end = measure_from + Days(eval_days);
  std::printf("Generating %zu databases for region %s "
              "(28 warm-up days + %d evaluation days)...\n",
              num_dbs, profile.name.c_str(), eval_days);
  auto traces = workload::GenerateFleet(profile, num_dbs, t0, end, 2024,
                                        measure_from);
  auto gaps = workload::ComputeGapStats(traces);
  std::printf("idle-gap fragmentation: %.0f%% of gaps < 1h, "
              "contributing %.1f%% of idle time\n\n",
              100 * gaps.short_gap_count_fraction,
              100 * gaps.short_gap_duration_fraction);

  std::printf("%-10s %s\n", "policy", "KPI report (Section 8 metrics)");
  telemetry::KpiReport reactive_kpi, proactive_kpi;
  for (auto mode :
       {policy::PolicyMode::kReactive, policy::PolicyMode::kProactive,
        policy::PolicyMode::kAlwaysOn}) {
    sim::SimOptions options;
    options.mode = mode;
    options.measure_from = measure_from;
    options.end = end;
    options.eviction_per_hour = profile.eviction_per_hour;
    options.seed = 7;
    auto report = sim::RunFleetSimulation(traces, options);
    if (!report.ok()) {
      std::printf("simulation failed: %s\n",
                  report.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s %s\n",
                std::string(policy::PolicyModeName(mode)).c_str(),
                report->kpi.ToString().c_str());
    if (mode == policy::PolicyMode::kReactive) reactive_kpi = report->kpi;
    if (mode == policy::PolicyMode::kProactive) proactive_kpi = report->kpi;
    if (mode == policy::PolicyMode::kProactive) {
      std::printf("%-10s   proactive resumes=%llu physical pauses=%llu "
                  "incidents=%llu\n",
                  "",
                  static_cast<unsigned long long>(
                      report->kpi.proactive_resumes),
                  static_cast<unsigned long long>(
                      report->kpi.physical_pauses),
                  static_cast<unsigned long long>(
                      report->diagnostics.incidents));
    }
  }
  std::printf(
      "\nReading guide: the proactive policy should serve 80-90%% of first\n"
      "logins with resources available (reactive: 60-68%%) at a modest\n"
      "increase in idle time split across logical pauses and correct/wrong\n"
      "proactive resumes (paper Figures 6-7).\n");

  // The monitoring dashboard's view of the same run.
  telemetry::RegionReportInput report_input;
  report_input.region_name = profile.name;
  report_input.policy_name = "proactive";
  report_input.from = measure_from;
  report_input.to = end;
  report_input.num_databases = num_dbs;
  report_input.kpi = proactive_kpi;
  report_input.baseline = &reactive_kpi;
  report_input.baseline_name = "reactive";
  std::printf("\n%s",
              telemetry::RenderRegionReport(report_input).c_str());
  return 0;
}
