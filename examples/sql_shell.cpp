// Interactive shell over the embedded SQL engine — the same engine that
// hosts sys.pause_resume_history and sys.databases.  Starts with the
// ProRP history schema pre-created and seeded so the paper's Algorithms
// 2-4 queries can be typed directly.
//
// Usage: sql_shell            (interactive; reads statements from stdin)
//        echo "SELECT ..." | sql_shell
//
// Try:
//   SELECT COUNT(*) FROM sys.pause_resume_history;
//   SELECT MIN(time_snapshot), MAX(time_snapshot)
//     FROM sys.pause_resume_history WHERE event_type = 1;
//   SELECT * FROM sys.pause_resume_history
//     WHERE time_snapshot BETWEEN 86822000 AND 86890000 LIMIT 5;

#include <cstdio>
#include <iostream>
#include <string>

#include "common/time_util.h"
#include "sql/database.h"

using namespace prorp;  // NOLINT: example brevity

namespace {

void PrintResult(const sql::QueryResult& result) {
  if (result.columns.empty()) {
    std::printf("ok (%llu row(s) affected)\n",
                static_cast<unsigned long long>(result.affected_rows));
    return;
  }
  for (const std::string& col : result.columns) {
    std::printf("%-22s", col.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < result.columns.size(); ++i) {
    std::printf("%-22s", "--------------------");
  }
  std::printf("\n");
  for (const sql::Row& row : result.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (!result.nulls.empty() && result.nulls[i] && result.rows.size() == 1) {
        std::printf("%-22s", "NULL");
      } else {
        std::printf("%-22lld", static_cast<long long>(row[i]));
      }
    }
    std::printf("\n");
  }
  std::printf("(%zu row(s))\n", result.rows.size());
}

}  // namespace

int main() {
  sql::Database db;
  // The ProRP history schema with a month of a 9:00-17:00 weekday pattern.
  (void)db.Execute("CREATE TABLE sys.pause_resume_history ("
                   "time_snapshot BIGINT PRIMARY KEY, event_type INT)");
  EpochSeconds today = Days(1005);
  for (int d = 1; d <= 28; ++d) {
    EpochSeconds day = today - Days(d);
    if (IsWeekend(day)) continue;
    sql::Params login{{"t", day + Hours(9)}};
    sql::Params logout{{"t", day + Hours(17)}};
    (void)db.Execute("INSERT INTO sys.pause_resume_history VALUES (@t, 1)",
                     login);
    (void)db.Execute("INSERT INTO sys.pause_resume_history VALUES (@t, 0)",
                     logout);
  }
  std::printf("ProRP SQL shell — table sys.pause_resume_history seeded "
              "with 28 days of activity.\nEnd statements with Enter; "
              "Ctrl-D or 'quit' to exit.\n\n");

  std::string line;
  while (true) {
    std::printf("prorp> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line == "quit" || line == "exit") break;
    if (line.empty()) continue;
    auto result = db.Execute(line);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintResult(*result);
  }
  return 0;
}
