// The offline training pipeline (paper Section 8): a grid search over the
// prediction knobs on a training interval, validated on a held-out test
// interval — the stand-in for the monthly Azure ML tuning run.
//
// Usage: training_pipeline [num_dbs=800]

#include <cstdio>
#include <cstdlib>

#include "training/tuner.h"
#include "workload/region.h"

using namespace prorp;  // NOLINT: example brevity

int main(int argc, char** argv) {
  size_t num_dbs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 800;

  EpochSeconds t0 = Days(1005);
  EpochSeconds train_from = t0 + Days(28);
  EpochSeconds train_to = train_from + Days(2);
  EpochSeconds test_from = train_to;
  EpochSeconds test_to = test_from + Days(2);

  auto profile = workload::RegionEU1();
  auto traces =
      workload::GenerateFleet(profile, num_dbs, t0, test_to, 99, train_from);

  training::TuningOptions options;
  options.base.eviction_per_hour = profile.eviction_per_hour;
  options.base.seed = 5;
  options.train_from = train_from;
  options.train_to = train_to;
  options.test_from = test_from;
  options.test_to = test_to;
  options.window_sizes = {Hours(2), Hours(5), Hours(7)};
  options.confidence_thresholds = {0.1, 0.4, 0.7};
  options.idle_weight = 1.0;

  std::printf("Training on %zu databases, %d grid points "
              "(window size x confidence)...\n\n",
              num_dbs, 9);
  auto report = training::RunTuningPipeline(traces, options);
  if (!report.ok()) {
    std::printf("tuning failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%-8s %-6s %-8s %-7s %-7s\n", "window", "conf", "QoS%",
              "idle%", "score");
  for (const auto& trial : report->trials) {
    std::printf("%-8lld %-6.1f %-8.1f %-7.2f %-7.1f\n",
                static_cast<long long>(trial.prediction.window_size /
                                       kSecondsPerHour),
                trial.prediction.confidence_threshold,
                trial.kpi.QosAvailablePct(), trial.kpi.IdleTotalPct(),
                trial.score);
  }
  std::printf("\nwinner: w=%lldh c=%.1f  (train QoS %.1f%%, idle %.2f%%)\n",
              static_cast<long long>(report->best.prediction.window_size /
                                     kSecondsPerHour),
              report->best.prediction.confidence_threshold,
              report->best.kpi.QosAvailablePct(),
              report->best.kpi.IdleTotalPct());
  std::printf("held-out validation: QoS %.1f%%, idle %.2f%%\n",
              report->test_kpi.QosAvailablePct(),
              report->test_kpi.IdleTotalPct());
  std::printf("\nknob sensitivity (Section 11 future work 2 — which knobs "
              "deserve tuning):\n");
  for (const auto& k : training::RankKnobSensitivity(*report)) {
    std::printf("  %-22s score spread %.1f\n", k.knob.c_str(),
                k.score_spread);
  }
  std::printf("\nProduction would now roll this configuration out through\n"
              "the regular deployment infrastructure (paper Section 8).\n");
  return 0;
}
