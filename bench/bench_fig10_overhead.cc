// Figure 10: overhead of the online ProRP components.
// (a) number of tuples per database history (paper: avg within ~500,
//     max can exceed 4K),
// (b) size of the history in KB (paper: avg within ~7 KB, max ~74 KB),
// (c) latency of one next-activity prediction in milliseconds, measured
//     with the faithful SQL stored procedure over the real B+tree-backed
//     history table (paper: avg within 90 ms, max within 700 ms on
//     production hardware; absolute numbers differ on this substrate, the
//     CDF shape and the <1 s bound are the claims under test).

#include <chrono>

#include "bench/bench_util.h"
#include "forecast/sliding_window_predictor.h"
#include "history/sql_history_store.h"

using namespace prorp;         // NOLINT: bench brevity
using namespace prorp::bench;  // NOLINT

int main() {
  PrintHeader("Figure 10: overhead of the proactive policy",
              "(a) tuples avg<~500 max>4K; (b) KB avg<~7 max<~74; "
              "(c) prediction latency avg<90ms max<700ms, always <1s");

  // (a)+(b): history sizes across a simulated EU1 fleet.
  FleetSetup setup = MakeFleet(workload::RegionEU1(), 4000, 4);
  auto report = sim::RunFleetSimulation(
      setup.traces, MakeOptions(setup, policy::PolicyMode::kProactive));
  if (!report.ok()) {
    std::printf("FAILED: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("(a) tuples per database history (CDF):\n%s",
              FormatCdf(BuildCdf(report->history_tuples, 10), "tuples")
                  .c_str());
  std::printf("    mean=%.0f max=%.0f\n\n", report->history_tuples.Mean(),
              report->history_tuples.Max());
  Summary kb;
  for (double b : report->history_bytes.Sorted()) kb.Add(b / 1024.0);
  std::printf("(b) history size in KB (CDF):\n%s",
              FormatCdf(BuildCdf(kb, 10), "KB").c_str());
  std::printf("    mean=%.1f KB max=%.1f KB\n\n", kb.Mean(), kb.Max());

  // (c): faithful prediction latency vs history size.  Databases sampled
  // across the fleet's size distribution.
  std::printf("(c) prediction latency, faithful SQL procedure "
              "(p/s x h range queries over the clustered B+tree):\n");
  Summary latency_ms;
  PredictionConfig cfg;  // Table 1 defaults
  // Trials are independent (each builds its own history store), so they
  // run concurrently; every trial owns an Rng forked up front from the
  // base stream, which makes the sampled history profiles identical
  // whatever PRORP_NUM_THREADS says.
  const int kTrials = 60;
  Rng base(17);
  std::vector<Rng> trial_rngs;
  trial_rngs.reserve(kTrials);
  for (int trial = 0; trial < kTrials; ++trial) {
    trial_rngs.push_back(base.Fork());
  }
  std::vector<std::function<Result<double>()>> jobs;
  jobs.reserve(kTrials);
  for (int trial = 0; trial < kTrials; ++trial) {
    jobs.emplace_back([&cfg, rng = trial_rngs[trial]]() mutable
                      -> Result<double> {
      PRORP_ASSIGN_OR_RETURN(auto store, history::SqlHistoryStore::Open());
      // Sample a history size profile: light, typical, heavy, worst-case.
      int sessions_per_day = 1 << rng.NextInt(0, 6);  // 1..32
      // Predictions fire at arbitrary times of day; the scan length (how
      // many sub-threshold windows it slides past) dominates the latency.
      EpochSeconds now = kT0 + rng.NextInt(0, Days(1) - 1);
      for (int d = 1; d <= 28; ++d) {
        EpochSeconds day = StartOfDay(now) - Days(d);
        for (int s = 0; s < sessions_per_day; ++s) {
          EpochSeconds login = day + Hours(6) + s * Minutes(30) +
                               rng.NextInt(0, Minutes(20));
          (void)store->InsertHistory(login, history::kEventLogin);
          (void)store->InsertHistory(login + Minutes(25),
                                     history::kEventLogout);
        }
      }
      forecast::SlidingWindowPredictor predictor(cfg);
      auto t0 = std::chrono::steady_clock::now();
      PRORP_RETURN_IF_ERROR(predictor.PredictNextActivity(*store, now)
                                .status());
      auto t1 = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::milli>(t1 - t0).count();
    });
  }
  std::vector<Result<double>> trial_results =
      common::RunOnPool<Result<double>>(std::move(jobs),
                                        common::ThreadPool::DefaultThreads());
  for (const Result<double>& r : trial_results) {
    if (!r.ok()) return 1;
    latency_ms.Add(r.value());
  }
  std::printf("%s", FormatCdf(BuildCdf(latency_ms, 10), "ms").c_str());
  std::printf("    mean=%.2f ms max=%.2f ms  (bound under test: < 1000 ms)\n",
              latency_ms.Mean(), latency_ms.Max());
  return 0;
}
