// Fleet-scale benchmark of the simulation hot loop (DESIGN.md section 13):
// how fast the simulator pushes a reactive fleet through 60 days of
// virtual time as the fleet grows 10k -> 100k -> 1M databases.
//
// Two configurations per size:
//  * scale_*  — the million-database path: streaming trace source (no
//    materialized session vectors), hierarchical timer wheel, streaming
//    KPI telemetry, shared null history store, index-only metadata store.
//  * legacy_* — the pre-scale path kept as the differential-testing
//    oracle: fleet materialized up front, global binary event heap, full
//    per-event telemetry recorder, one in-memory history store per
//    database, SQL-mirrored metadata store.  Timed end-to-end including
//    trace materialization, because not materializing is part of what the
//    scale path buys.  Run at 10k and 100k only — at 1M the recorder and
//    traces alone would hold hundreds of millions of events.
//
// Both configurations produce bit-identical KPIs at equal fleet size and
// source (tests/sim/timer_wheel_differential_test.cc holds that pledge);
// this binary measures only speed and footprint.
//
// Usage:
//   bench_fleet_scale [--smoke] [--out=PATH | --no-out]
//
// --smoke drops the 1M run and the 100k legacy arm for CI, emits the same
// JSON, and exits non-zero if the 100k scale configuration regresses: its
// events/sec falling below the committed floor, its peak RSS exceeding
// the committed budget, or its 10k speedup over the legacy path falling
// below 3x (the committed full-run ratio is >10x; 3x survives slow or
// noisy CI hardware while still catching the loss of any scale-path
// ingredient).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/fleet_simulator.h"
#include "workload/region.h"
#include "workload/trace_source.h"

namespace prorp::bench {
namespace {

using Clock = std::chrono::steady_clock;

// 28 warm-up days (the default history length) + 32 evaluation days.
constexpr int kVirtualDays = 60;
constexpr EpochSeconds kScaleEnd = kT0 + Days(kVirtualDays);

// Committed smoke-gate constants for the 100k scale configuration.  The
// committed full run (BENCH_fleet_scale.json) measured ~2.5M events/sec
// and < 300 MB peak RSS on CI-class hardware; the floors leave ~5x and
// ~4x headroom so slower machines pass while an order-of-magnitude
// regression (losing the wheel, the streaming telemetry, or the
// index-only metadata store) still fails.
constexpr double kSmokeEventsPerSecFloor100k = 500'000;
constexpr uint64_t kSmokeRssBudget100k = uint64_t{1200} * 1024 * 1024;
constexpr double kSmokeSpeedupFloor10k = 3.0;

struct ScaleResult {
  std::string name;
  size_t num_dbs = 0;
  uint64_t events = 0;
  double seconds = 0;
  uint64_t peak_rss_bytes = 0;  // attributed to this run via ResetPeakRss
  uint64_t allocations = 0;     // 0 under sanitizers = not measured

  double events_per_sec() const { return seconds > 0 ? events / seconds : 0; }
  double dbs_per_sec() const { return seconds > 0 ? num_dbs / seconds : 0; }
};

workload::RegionProfile ScaleProfile() {
  workload::RegionProfile profile = workload::RegionEU1();
  // Keep both configurations eviction-free: forced evictions perturb
  // event counts without exercising anything the scale layer changed.
  profile.eviction_per_hour = 0;
  return profile;
}

sim::SimOptions BaseOptions() {
  sim::SimOptions options;
  options.mode = policy::PolicyMode::kReactive;
  options.measure_from = kMeasureFrom;
  options.end = kScaleEnd;
  options.seed = 7;
  return options;
}

/// The million-database configuration: everything streams.
Result<ScaleResult> RunScaleConfig(const std::string& name, size_t num_dbs) {
  ResetPeakRss();
  uint64_t allocs_before = AllocationCount();
  workload::StreamingFleetSource source(ScaleProfile(), num_dbs, kT0,
                                        kScaleEnd, 2024, kMeasureFrom);
  sim::SimOptions options = BaseOptions();
  options.telemetry = sim::SimOptions::Telemetry::kStreaming;
  options.use_null_history = true;
  options.use_lite_metadata = true;

  Clock::time_point t0 = Clock::now();
  PRORP_ASSIGN_OR_RETURN(sim::SimReport report,
                         sim::RunFleetSimulation(source, options));
  ScaleResult r;
  r.name = name;
  r.num_dbs = num_dbs;
  r.events = report.events_processed;
  r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  r.peak_rss_bytes = PeakRssSinceResetBytes();
  r.allocations = AllocationsSince(allocs_before);
  return r;
}

/// The pre-scale oracle configuration; materialization is inside the
/// timed region on purpose (see file comment).
Result<ScaleResult> RunLegacyConfig(const std::string& name,
                                    size_t num_dbs) {
  ResetPeakRss();
  uint64_t allocs_before = AllocationCount();
  sim::SimOptions options = BaseOptions();
  options.use_legacy_event_heap = true;

  Clock::time_point t0 = Clock::now();
  std::vector<workload::DbTrace> traces = workload::GenerateFleet(
      ScaleProfile(), num_dbs, kT0, kScaleEnd, 2024, kMeasureFrom);
  PRORP_ASSIGN_OR_RETURN(sim::SimReport report,
                         sim::RunFleetSimulation(traces, options));
  ScaleResult r;
  r.name = name;
  r.num_dbs = num_dbs;
  r.events = report.events_processed;
  r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  r.peak_rss_bytes = PeakRssSinceResetBytes();
  r.allocations = AllocationsSince(allocs_before);
  return r;
}

void PrintRow(const ScaleResult& r) {
  std::printf("%-12s dbs=%-8zu events=%-11llu wall=%8.2fs  "
              "%10.0f events/s  %8.0f dbs/s  rss=%llu MB\n",
              r.name.c_str(), r.num_dbs,
              static_cast<unsigned long long>(r.events), r.seconds,
              r.events_per_sec(), r.dbs_per_sec(),
              static_cast<unsigned long long>(r.peak_rss_bytes >> 20));
}

bool WriteScaleJson(const std::string& path, const std::string& mode,
                    const std::vector<ScaleResult>& results,
                    const std::vector<std::pair<std::string, double>>& derived) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"fleet_scale\",\n"
               "  \"mode\": \"%s\",\n  \"virtual_days\": %d,\n",
               mode.c_str(), kVirtualDays);
  std::fprintf(f, "  \"peak_rss_bytes\": %llu,\n  \"allocations\": %llu,\n",
               static_cast<unsigned long long>(PeakRssBytes()),
               static_cast<unsigned long long>(AllocationCount()));
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"num_dbs\": %zu, "
                 "\"events\": %llu, \"seconds\": %.3f, "
                 "\"events_per_sec\": %.0f, \"dbs_per_sec\": %.1f, "
                 "\"peak_rss_bytes\": %llu, \"allocations\": %llu}%s\n",
                 r.name.c_str(), r.num_dbs,
                 static_cast<unsigned long long>(r.events), r.seconds,
                 r.events_per_sec(), r.dbs_per_sec(),
                 static_cast<unsigned long long>(r.peak_rss_bytes),
                 static_cast<unsigned long long>(r.allocations),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"derived\": {\n");
  for (size_t i = 0; i < derived.size(); ++i) {
    std::fprintf(f, "    \"%s\": %.3f%s\n", derived[i].first.c_str(),
                 derived[i].second, i + 1 < derived.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  return std::fclose(f) == 0;
}

const ScaleResult* Find(const std::vector<ScaleResult>& results,
                        const std::string& name) {
  for (const ScaleResult& r : results) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

int Run(bool smoke, const std::string& out_path) {
  PrintHeader("bench_fleet_scale: simulator throughput 10k -> 100k -> 1M",
              "Section 7 operates on a fleet of millions of serverless "
              "databases; the simulator must cover months of fleet time "
              "in minutes");

  struct Job {
    const char* name;
    size_t num_dbs;
    bool legacy;
    bool smoke_too;
  };
  // Scale configs run smallest-first so each attributed peak reflects its
  // own fleet (the watermark reset is best-effort; without it the peak is
  // monotone and only the largest run's number is meaningful).
  const Job jobs[] = {
      {"scale_10k", 10'000, false, true},
      {"legacy_10k", 10'000, true, true},
      {"scale_100k", 100'000, false, true},
      {"legacy_100k", 100'000, true, false},
      {"scale_1m", 1'000'000, false, false},
  };

  std::vector<ScaleResult> results;
  for (const Job& job : jobs) {
    if (smoke && !job.smoke_too) continue;
    Result<ScaleResult> r = job.legacy
                                ? RunLegacyConfig(job.name, job.num_dbs)
                                : RunScaleConfig(job.name, job.num_dbs);
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", job.name,
                   r.status().ToString().c_str());
      return 2;
    }
    PrintRow(*r);
    results.push_back(std::move(*r));
  }

  std::vector<std::pair<std::string, double>> derived;
  const ScaleResult* scale10k = Find(results, "scale_10k");
  const ScaleResult* legacy10k = Find(results, "legacy_10k");
  const ScaleResult* scale100k = Find(results, "scale_100k");
  const ScaleResult* legacy100k = Find(results, "legacy_100k");
  const ScaleResult* scale1m = Find(results, "scale_1m");
  double speedup10k = 0;
  if (scale10k != nullptr && legacy10k != nullptr &&
      legacy10k->events_per_sec() > 0) {
    speedup10k = scale10k->events_per_sec() / legacy10k->events_per_sec();
    derived.emplace_back("speedup_10k", speedup10k);
  }
  if (scale100k != nullptr && legacy100k != nullptr &&
      legacy100k->events_per_sec() > 0) {
    derived.emplace_back(
        "speedup_100k",
        scale100k->events_per_sec() / legacy100k->events_per_sec());
  }
  if (scale1m != nullptr) {
    derived.emplace_back("minutes_1m", scale1m->seconds / 60.0);
  }

  for (const auto& [name, value] : derived) {
    std::printf("%-24s %.2f\n", name.c_str(), value);
  }

  if (!out_path.empty() &&
      !WriteScaleJson(out_path, smoke ? "smoke" : "full", results, derived)) {
    return 2;
  }
  if (!out_path.empty()) {
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (smoke && scale100k != nullptr) {
    if (scale100k->events_per_sec() < kSmokeEventsPerSecFloor100k) {
      std::fprintf(stderr,
                   "FAIL: 100k-database scale config at %.0f events/s, "
                   "below the committed floor of %.0f\n",
                   scale100k->events_per_sec(), kSmokeEventsPerSecFloor100k);
      return 1;
    }
    if (scale100k->peak_rss_bytes > kSmokeRssBudget100k) {
      std::fprintf(stderr,
                   "FAIL: 100k-database scale config peaked at %llu MB "
                   "RSS, above the committed budget of %llu MB\n",
                   static_cast<unsigned long long>(
                       scale100k->peak_rss_bytes >> 20),
                   static_cast<unsigned long long>(
                       kSmokeRssBudget100k >> 20));
      return 1;
    }
    if (speedup10k > 0 && speedup10k < kSmokeSpeedupFloor10k) {
      std::fprintf(stderr,
                   "FAIL: scale config only %.2fx the legacy event-heap "
                   "path at 10k databases (floor %.1fx)\n",
                   speedup10k, kSmokeSpeedupFloor10k);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace prorp::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_fleet_scale.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--no-out") {
      out_path.clear();
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH | --no-out]\n",
                   argv[0]);
      return 2;
    }
  }
  return prorp::bench::Run(smoke, out_path);
}
