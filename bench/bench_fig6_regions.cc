// Figure 6: validation across Azure regions EU1, EU2, US1, US2.
// (a) QoS: % of first logins after idle intervals with resources
//     available — reactive 60-68%, proactive 80-90%;
// (b) idle time % — reactive 5-12% (all logical pause), proactive 7-14%
//     split into logical pause (3-7%), wrong proactive resume (1-4%), and
//     correct proactive resume (1-5%).

#include "bench/bench_util.h"

using namespace prorp;         // NOLINT: bench brevity
using namespace prorp::bench;  // NOLINT

int main() {
  PrintHeader("Figure 6: validation across regions (4 eval days)",
              "(a) QoS reactive 60-68% vs proactive 80-90%; (b) idle "
              "reactive 5-12% vs proactive 7-14% (3-7 logical + 1-4 wrong "
              "+ 1-5 correct)");
  std::printf("%-4s %-9s %7s | %7s %7s %7s %7s\n", "reg", "policy",
              "QoS%", "idle%", "logic%", "wrong%", "corr%");
  // All region fleets are generated up front so every region x mode arm
  // can run concurrently; arms hold pointers into `setups`.
  std::vector<FleetSetup> setups;
  for (const auto& region : workload::AllRegions()) {
    setups.push_back(MakeFleet(region, 4000, /*eval_days=*/4));
  }
  std::vector<Arm> arms;
  for (const FleetSetup& setup : setups) {
    for (auto mode :
         {policy::PolicyMode::kReactive, policy::PolicyMode::kProactive}) {
      Arm arm;
      arm.label = setup.profile.name + " " +
                  std::string(policy::PolicyModeName(mode));
      arm.traces = &setup.traces;
      arm.options = MakeOptions(setup, mode);
      arms.push_back(std::move(arm));
    }
  }
  std::vector<Result<sim::SimReport>> reports = RunArms(arms);
  for (size_t i = 0; i < arms.size(); ++i) {
    if (!reports[i].ok()) {
      std::printf("FAILED: %s\n", reports[i].status().ToString().c_str());
      return 1;
    }
    const auto& kpi = reports[i]->kpi;
    const FleetSetup& setup = setups[i / 2];
    auto mode = i % 2 == 0 ? policy::PolicyMode::kReactive
                           : policy::PolicyMode::kProactive;
    std::printf("%-4s %-9s %7.1f | %7.1f %7.1f %7.1f %7.1f\n",
                setup.profile.name.c_str(),
                std::string(policy::PolicyModeName(mode)).c_str(),
                kpi.QosAvailablePct(), kpi.IdleTotalPct(),
                kpi.idle_logical_pct, kpi.idle_proactive_wrong_pct,
                kpi.idle_proactive_correct_pct);
  }
  return 0;
}
