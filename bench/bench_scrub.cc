// Scrubber overhead: scrub throughput (pages/s) and self-healing repair
// latency as a function of history size.  The paper's premise is that the
// pause/resume history stays tiny (Section 9.3: a few KB per database),
// so a full-integrity scrub and even a worst-case rebuild must cost
// microseconds to low milliseconds — cheap enough to run from the fleet
// maintenance loop.  Exits non-zero if a scrub misses planted corruption
// or a repair loses records.
//
// Usage: bench_scrub [iters]   (default: 5 iterations per size)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "storage/durable_tree.h"
#include "storage/page.h"

namespace fs = std::filesystem;
using namespace prorp;           // NOLINT: bench brevity
using namespace prorp::storage;  // NOLINT

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string FreshDir(const std::string& name) {
  std::string dir = fs::temp_directory_path().string() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<uint8_t> Value64(int64_t v) {
  std::vector<uint8_t> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

struct SizePoint {
  uint64_t entries = 0;
  uint64_t pages = 0;
  double scrub_ms = 0;    // clean full-integrity pass
  double repair_ms = 0;   // detect + rebuild + verifying re-scrub
  double scrub_pages_per_sec = 0;
};

int RunPoint(uint64_t entries, uint64_t iters, SizePoint* point) {
  std::string dir =
      FreshDir("bench_scrub_" + std::to_string(entries));
  DurableTree::Options options;
  options.dir = dir;
  options.value_width = 8;
  options.buffer_pool_pages = 256;
  options.checkpoint_wal_bytes = 0;
  auto tree = DurableTree::Open(options);
  if (!tree.ok()) {
    std::fprintf(stderr, "open: %s\n", tree.status().ToString().c_str());
    return 1;
  }
  for (uint64_t i = 0; i < entries; ++i) {
    Status s =
        (*tree)->Insert(static_cast<int64_t>(i) * 3, Value64(i).data());
    if (!s.ok()) {
      std::fprintf(stderr, "insert: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (Status s = (*tree)->Checkpoint(); !s.ok()) {
    std::fprintf(stderr, "checkpoint: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = (*tree)->buffer_pool()->FlushAll(); !s.ok()) {
    std::fprintf(stderr, "flush: %s\n", s.ToString().c_str());
    return 1;
  }
  point->entries = entries;
  point->pages = (*tree)->disk()->num_pages();

  // Clean scrub throughput.
  double scrub_total = 0;
  for (uint64_t i = 0; i < iters; ++i) {
    auto start = Clock::now();
    auto report = (*tree)->Scrub();
    scrub_total += SecondsSince(start);
    if (!report.ok() || !report->clean()) {
      std::fprintf(stderr, "clean scrub failed at %llu entries\n",
                   static_cast<unsigned long long>(entries));
      return 1;
    }
  }
  point->scrub_ms = scrub_total / iters * 1e3;
  point->scrub_pages_per_sec = point->pages / (scrub_total / iters);

  // Repair latency: plant one corrupt page, then time the scrub that
  // detects it, rebuilds from snapshot + WAL, and re-verifies.
  double repair_total = 0;
  uint8_t raw[kPageSize];
  for (uint64_t i = 0; i < iters; ++i) {
    PageId victim = 1 + static_cast<PageId>(i % (point->pages - 1));
    if (!(*tree)->disk()->Read(victim, raw).ok()) return 1;
    raw[kPageHeaderSize + 7] ^= 0x20;
    if (!(*tree)->disk()->Write(victim, raw).ok()) return 1;
    auto start = Clock::now();
    auto report = (*tree)->Scrub();
    repair_total += SecondsSince(start);
    if (!report.ok() || !report->clean() || (*tree)->quarantined()) {
      std::fprintf(stderr, "repair failed at %llu entries\n",
                   static_cast<unsigned long long>(entries));
      return 1;
    }
  }
  point->repair_ms = repair_total / iters * 1e3;

  const IntegrityStats& integrity = (*tree)->integrity_stats();
  if (integrity.corruption_detected != iters ||
      integrity.corruption_repaired != iters ||
      integrity.corruption_quarantined != 0) {
    std::fprintf(stderr, "integrity accounting off at %llu entries\n",
                 static_cast<unsigned long long>(entries));
    return 1;
  }
  if ((*tree)->size() != entries) {
    std::fprintf(stderr, "repair lost records at %llu entries\n",
                 static_cast<unsigned long long>(entries));
    return 1;
  }
  fs::remove_all(dir);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t iters =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  std::printf("Scrub throughput and repair latency vs history size "
              "(%llu iterations per size)\n",
              static_cast<unsigned long long>(iters));
  std::printf("Each history tuple is 16 bytes; the paper's fleet p99 is "
              "a few thousand tuples.\n\n");
  std::printf("%10s %8s %10s %12s %14s %12s\n", "entries", "pages",
              "KB", "scrub ms", "pages/s", "repair ms");

  int rc = 0;
  for (uint64_t entries : {500u, 5000u, 50000u, 200000u}) {
    SizePoint point;
    if (RunPoint(entries, iters, &point) != 0) {
      rc = 1;
      continue;
    }
    std::printf("%10llu %8llu %10.1f %12.3f %14.0f %12.3f\n",
                static_cast<unsigned long long>(point.entries),
                static_cast<unsigned long long>(point.pages),
                point.entries * 16 / 1024.0, point.scrub_ms,
                point.scrub_pages_per_sec, point.repair_ms);
  }
  if (rc == 0) {
    std::printf("\nPASS: every planted corruption detected and repaired "
                "with zero record loss\n");
  }
  return rc;
}
