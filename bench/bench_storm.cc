// Resume-storm resilience experiment (DESIGN.md section 8): login-delay
// QoS vs storm intensity.  A fleet-wide correlated outage knocks every
// node down; on heal, the backlog of missed pre-warms, held retries and
// queued customer logins lands on finite node capacity at once.  The
// naive proactive arm dumps its catch-up backlog immediately and inflates
// the reactive login tail; the admission-controlled arm detects the storm,
// sheds the lower classes, and slow-starts the backlog, so customer
// logins keep the capacity headroom.
//
// Self-checks (the harness exits nonzero when any fails):
//   1. KPI identity: a fault-free run with the whole storm layer enabled
//      (admission control, hedging, catch-up, brownouts, finite queue) is
//      KPI-identical to the legacy scalar-latency run.
//   2. Reactive logins are never shed, at any brownout level, in any arm.
//   3. With a storm, admission control's reactive login-delay p99 is no
//      worse than the naive proactive arm's.
//   4. The admission-controlled arm stays at or above the reactive floor.
//   5. The mitigation accounting invariant reconciles on every arm.

#include <cinttypes>
#include <cstdlib>

#include "bench/bench_util.h"

using namespace prorp;         // NOLINT: bench brevity
using namespace prorp::bench;  // NOLINT

namespace {

using controlplane::ResumeClass;

bool AccountingReconciles(const sim::SimReport& report) {
  const auto& d = report.diagnostics;
  return d.stuck_workflows == d.mitigated + d.incidents +
                                  d.failed_then_skipped +
                                  d.failed_then_shed +
                                  report.pending_failed;
}

/// Storm-layer knobs shared by every storm arm: finite per-node resume
/// capacity plus a token-bucket limiter, sized so a fault-free run has
/// zero congestion (self-check 1 depends on that headroom).
void EnableStormLayer(sim::SimOptions& options, DurationSeconds intensity,
                      EpochSeconds outage_at) {
  options.num_nodes = 8;
  options.resume_concurrency_per_node = 6;
  options.node_admission_rate = 0.10;  // per node per second
  options.node_admission_burst = 6;
  options.resume_queue_jitter_max = 7;
  options.fleet_outage_at = outage_at;
  options.fleet_outage_duration = intensity;
  if (intensity > 0) {
    // A storm is rarely one clean window: per-node random outages ride
    // along, so some nodes flap while the rest of the fleet is up.  This
    // is where the deadline watchdog earns its keep — a login blocked on
    // a down node is hedged to a healthy one instead of waiting the
    // outage out.
    options.outage_rate_per_day = 4;
    options.outage_duration = Minutes(10);
  }
  // Background maintenance load gives the brownout ladder something to
  // shed before any customer-visible class.
  options.maintenance_interval = Minutes(30);
  options.maintenance_batch = 8;
  // Bench-scale detector thresholds (the production-scale defaults would
  // never trip with a few hundred databases); a fault-free run must stay
  // under them — self-check 1 would fail otherwise.
  auto& cp = options.config.control_plane;
  cp.storm_due_burst_threshold = 16;
  cp.storm_login_spike_threshold = 8;
  cp.storm_recovery_backlog = 8;
  // Long enough for the recovery sweep to cover a whole storm window.
  cp.catch_up_lookback = Hours(3);
}

void EnableAdmissionControl(sim::SimOptions& options) {
  auto& cp = options.config.control_plane;
  cp.admission_control_enabled = true;
  cp.catch_up_enabled = true;
  cp.deadline_hedging_enabled = true;
  cp.queue_capacity = 16;
}

void PrintRow(const char* label, DurationSeconds intensity,
              const sim::SimReport& r) {
  const auto& d = r.diagnostics;
  std::printf("%-8.0f %-9s %6.2f %7.0f %7.0f %7.0f %7.0f %7" PRIu64
              " %4d %6" PRIu64 " %6" PRIu64 " %6" PRIu64 " %6" PRIu64 "\n",
              static_cast<double>(intensity) / 60.0, label,
              r.kpi.QosAvailablePct(), r.login_delay.Percentile(0.50),
              r.login_delay.Percentile(0.95), r.login_delay.Percentile(0.99),
              r.resume_waits.empty() ? 0.0 : r.resume_waits.Max(),
              d.storms_detected, d.max_brownout_level,
              d.cls(ResumeClass::kMaintenance).shed() +
                  d.cls(ResumeClass::kSpeculativeProactive).shed() +
                  d.cls(ResumeClass::kImminentProactive).shed(),
              d.cls(ResumeClass::kReactiveLogin).hedged,
              d.cls(ResumeClass::kReactiveLogin).hedge_wins, d.incidents);
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_dbs = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 120;
  int eval_days = argc > 2 ? std::atoi(argv[2]) : 4;
  PrintHeader("Resume-storm resilience: login-delay QoS vs storm intensity",
              "admission control + slow-start keeps the reactive login tail "
              "at or below the naive proactive arm and above the reactive "
              "floor");
  FleetSetup setup = MakeFleet(workload::RegionEU1(), num_dbs, eval_days);
  EpochSeconds outage_at = kMeasureFrom + Days(1);

  const DurationSeconds intensities[] = {0, Minutes(30), Minutes(120)};

  // Arm 0: the legacy scalar-latency proactive run (storm layer off) —
  // the KPI-identity reference of self-check 1.
  std::vector<Arm> arms;
  {
    Arm arm;
    arm.label = "legacy";
    arm.traces = &setup.traces;
    arm.options = MakeOptions(setup, policy::PolicyMode::kProactive);
    arms.push_back(std::move(arm));
  }
  // Then, per intensity: naive proactive, admission-controlled proactive,
  // reactive floor — all on the same storm layer.
  for (DurationSeconds intensity : intensities) {
    Arm naive;
    naive.label = "naive";
    naive.traces = &setup.traces;
    naive.options = MakeOptions(setup, policy::PolicyMode::kProactive);
    EnableStormLayer(naive.options, intensity, outage_at);
    naive.options.config.control_plane.catch_up_enabled = true;
    arms.push_back(std::move(naive));

    Arm admctl;
    admctl.label = "admctl";
    admctl.traces = &setup.traces;
    admctl.options = MakeOptions(setup, policy::PolicyMode::kProactive);
    EnableStormLayer(admctl.options, intensity, outage_at);
    EnableAdmissionControl(admctl.options);
    arms.push_back(std::move(admctl));

    Arm reactive;
    reactive.label = "reactive";
    reactive.traces = &setup.traces;
    reactive.options = MakeOptions(setup, policy::PolicyMode::kReactive);
    EnableStormLayer(reactive.options, intensity, outage_at);
    reactive.options.config.control_plane.deadline_hedging_enabled = true;
    arms.push_back(std::move(reactive));
  }

  std::vector<Result<sim::SimReport>> reports = RunArms(arms);
  for (const auto& r : reports) {
    if (!r.ok()) {
      std::printf("FAILED: %s\n", r.status().ToString().c_str());
      return 1;
    }
  }

  std::printf("%-8s %-9s %6s %7s %7s %7s %7s %7s %4s %6s %6s %6s %6s\n",
              "min", "arm", "qos%", "lg_p50", "lg_p95", "lg_p99", "wait_mx",
              "storms", "bl", "shed", "hedge", "hwin", "incid");
  bool ok = true;
  const sim::SimReport& legacy = *reports[0];
  for (size_t i = 1; i < arms.size(); ++i) {
    DurationSeconds intensity = intensities[(i - 1) / 3];
    PrintRow(arms[i].label.c_str(), intensity, *reports[i]);
    const auto& d = reports[i]->diagnostics;
    if (d.cls(ResumeClass::kReactiveLogin).shed() != 0) {
      std::printf("REACTIVE SHED VIOLATION in %s at %.0f min\n",
                  arms[i].label.c_str(),
                  static_cast<double>(intensity) / 60.0);
      ok = false;
    }
    if (!AccountingReconciles(*reports[i])) {
      std::printf("ACCOUNTING MISMATCH in %s at %.0f min\n",
                  arms[i].label.c_str(),
                  static_cast<double>(intensity) / 60.0);
      ok = false;
    }
  }
  std::printf("%-8s %-9s %6.2f (scalar-latency reference, no storm layer)\n",
              "-", "legacy", legacy.kpi.QosAvailablePct());

  // Self-check 1: fault-free storm-layer run is KPI-identical to legacy.
  const sim::SimReport& admctl0 = *reports[2];
  if (admctl0.kpi.ToString() != legacy.kpi.ToString()) {
    std::printf("KPI IDENTITY VIOLATION (fault-free storm layer):\n"
                "  legacy: %s\n  storm0: %s\n",
                legacy.kpi.ToString().c_str(), admctl0.kpi.ToString().c_str());
    ok = false;
  }
  if (admctl0.diagnostics.storms_detected != 0) {
    std::printf("STORM DETECTOR TRIPPED FAULT-FREE (%" PRIu64 " storms)\n",
                admctl0.diagnostics.storms_detected);
    ok = false;
  }
  if (!admctl0.resume_waits.empty() && admctl0.resume_waits.Max() > 0) {
    std::printf("FAULT-FREE CONTENTION: max capacity wait %.0fs != 0\n",
                admctl0.resume_waits.Max());
    ok = false;
  }

  // Self-checks 3 and 4 at each nonzero intensity.
  for (size_t block = 1; block < 3; ++block) {
    DurationSeconds intensity = intensities[block];
    const sim::SimReport& naive = *reports[1 + 3 * block];
    const sim::SimReport& admctl = *reports[2 + 3 * block];
    const sim::SimReport& reactive = *reports[3 + 3 * block];
    double naive_p99 = naive.login_delay.Percentile(0.99);
    double admctl_p99 = admctl.login_delay.Percentile(0.99);
    // Tolerance: the deterministic de-synchronization jitter on contended
    // grants (admission control must never make the tail worse than the
    // naive arm by more than one jitter bound).
    if (admctl_p99 > naive_p99 + 7) {
      std::printf("TAIL VIOLATION at %.0f min: admctl p99 %.0fs > naive "
                  "p99 %.0fs\n",
                  static_cast<double>(intensity) / 60.0, admctl_p99,
                  naive_p99);
      ok = false;
    }
    if (admctl.kpi.QosAvailablePct() + 1e-9 <
        reactive.kpi.QosAvailablePct()) {
      std::printf("FLOOR VIOLATION at %.0f min: admctl QoS %.2f%% < "
                  "reactive %.2f%%\n",
                  static_cast<double>(intensity) / 60.0,
                  admctl.kpi.QosAvailablePct(),
                  reactive.kpi.QosAvailablePct());
      ok = false;
    }
  }

  std::printf(ok ? "STORM SWEEP PASSED\n" : "STORM SWEEP FAILED\n");
  return ok ? 0 : 1;
}
