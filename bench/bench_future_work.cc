// The paper's Section 11 future-work directions, implemented and measured:
//  (1) proactive auto-scale in small increments of capacity — FixedScaler
//      vs ReactiveScaler vs ProactiveScaler on recurring multi-level
//      demand (generalizes Figure 2 beyond binary allocation);
//  (4) maintenance scheduling aligned with predicted customer activity —
//      fixed-hour vs prediction-aligned backup scheduling (the Seagull
//      idea folded into ProRP).

#include <cmath>

#include "bench/bench_util.h"
#include "forecast/fast_predictor.h"
#include "maintenance/scheduler.h"
#include "scaling/autoscaler.h"

using namespace prorp;         // NOLINT: bench brevity
using namespace prorp::bench;  // NOLINT

namespace {

void RunAutoScale() {
  PrintHeader("Future work 1: auto-scale in small capacity increments",
              "the proactive scaler pre-scales ahead of recurring ramps: "
              "less throttling than reactive at far less over-provisioning "
              "than fixed capacity");
  scaling::CapacityLadder ladder({0, 0.5, 1, 2, 4, 8});
  EpochSeconds from = kT0;
  EpochSeconds to = kT0 + Days(14);
  scaling::ScalingSimOptions options;

  // A small fleet of recurring-demand databases.
  const int kDbs = 50;
  std::printf("%-10s %14s %14s %12s %12s\n", "scaler", "throttled vc-h",
              "avoidable %", "overprov %", "scale ops");
  double floor_vcs = 0;  // fixed capacity's unavoidable SKU-limit throttle
  for (int which = 0; which < 3; ++which) {
    double throttled_vcs = 0, demand_vcs = 0, overprov_vcs = 0,
           alloc_vcs = 0;
    uint64_t ops = 0;
    std::string name;
    for (int db = 0; db < kDbs; ++db) {
      Rng rng(1000 + db);
      scaling::DemandTrace trace = scaling::GenerateDailyDemandTrace(
          from, to, /*peak=*/1.5 + (db % 4) * 1.5, rng);
      std::unique_ptr<scaling::AutoScaler> scaler;
      if (which == 0) {
        scaler = std::make_unique<scaling::FixedScaler>(ladder);
      } else if (which == 1) {
        scaler = std::make_unique<scaling::ReactiveScaler>(ladder);
      } else {
        scaler = std::make_unique<scaling::ProactiveScaler>(ladder);
      }
      name = scaler->name();
      auto report = scaling::ReplayDemandTrace(trace, *scaler, from, to,
                                               options);
      if (!report.ok()) return;
      throttled_vcs += report->throttled_vcore_seconds;
      demand_vcs += report->demand_vcore_seconds;
      overprov_vcs += report->overprov_vcore_seconds;
      alloc_vcs += report->allocated_vcore_seconds;
      ops += report->scale_ups + report->scale_downs;
    }
    if (which == 0) floor_vcs = throttled_vcs;
    double avoidable = throttled_vcs - floor_vcs;
    std::printf("%-10s %14.1f %13.2f%% %11.1f%% %12llu\n", name.c_str(),
                throttled_vcs / 3600.0,
                demand_vcs == 0 ? 0 : 100.0 * avoidable / demand_vcs,
                alloc_vcs == 0 ? 0 : 100.0 * overprov_vcs / alloc_vcs,
                static_cast<unsigned long long>(ops));
  }
}

void RunMaintenance() {
  PrintHeader("Future work 4: maintenance aligned with predicted activity",
              "scheduling backups inside the predicted customer-activity "
              "window avoids dedicated resume/pause cycles");
  EpochSeconds from = kMeasureFrom;
  EpochSeconds to = from + Days(7);
  auto traces = workload::GenerateFleet(workload::RegionEU1(), 400, kT0,
                                        to, 77);
  PredictionConfig cfg;
  forecast::FastPredictor predictor(cfg);
  maintenance::FixedHourScheduler fixed(Hours(3));
  maintenance::PredictionAlignedScheduler aligned(&predictor);

  maintenance::MaintenanceReport naive_total, aligned_total;
  maintenance::MaintenanceReport naive_daily, aligned_daily;
  for (const auto& trace : traces) {
    if (trace.sessions.empty()) continue;
    auto a = maintenance::ReplayMaintenance(trace, fixed, from, to);
    auto b = maintenance::ReplayMaintenance(trace, aligned, from, to);
    if (!a.ok() || !b.ok()) return;
    bool daily = trace.pattern == workload::PatternType::kDailyBusiness ||
                 trace.pattern == workload::PatternType::kDaily;
    auto add = [](maintenance::MaintenanceReport& sum,
                  const maintenance::MaintenanceReport& r) {
      sum.ops_total += r.ops_total;
      sum.ops_during_activity += r.ops_during_activity;
      sum.ops_dedicated_resume += r.ops_dedicated_resume;
    };
    add(naive_total, *a);
    add(aligned_total, *b);
    if (daily) {
      add(naive_daily, *a);
      add(aligned_daily, *b);
    }
  }
  std::printf("%-22s %10s %16s %18s\n", "scheduler", "ops",
              "co-scheduled %", "dedicated resumes");
  std::printf("%-22s %10llu %15.1f%% %18llu\n", "fixed 03:00",
              static_cast<unsigned long long>(naive_total.ops_total),
              naive_total.CoScheduledPct(),
              static_cast<unsigned long long>(
                  naive_total.ops_dedicated_resume));
  std::printf("%-22s %10llu %15.1f%% %18llu\n", "prediction-aligned",
              static_cast<unsigned long long>(aligned_total.ops_total),
              aligned_total.CoScheduledPct(),
              static_cast<unsigned long long>(
                  aligned_total.ops_dedicated_resume));
  std::printf("\n(daily-patterned databases only)\n");
  std::printf("%-22s %10llu %15.1f%% %18llu\n", "fixed 03:00",
              static_cast<unsigned long long>(naive_daily.ops_total),
              naive_daily.CoScheduledPct(),
              static_cast<unsigned long long>(
                  naive_daily.ops_dedicated_resume));
  std::printf("%-22s %10llu %15.1f%% %18llu\n", "prediction-aligned",
              static_cast<unsigned long long>(aligned_daily.ops_total),
              aligned_daily.CoScheduledPct(),
              static_cast<unsigned long long>(
                  aligned_daily.ops_dedicated_resume));
}

void RunMachineSavings() {
  PrintHeader("Future work 3: alignment with tenant placement",
              "reclaimed resources only save money if they reduce the "
              "number of physical machines; peak concurrent allocation is "
              "the machine count driver");
  FleetSetup setup = MakeFleet(workload::RegionEU1(), 4000, 2);
  const double kDbsPerNode = 50;  // packing density
  std::printf("%-10s %18s %18s %16s\n", "policy", "mean allocated",
              "peak allocated", "machines (peak)");
  std::vector<Arm> arms;
  for (auto mode :
       {policy::PolicyMode::kAlwaysOn, policy::PolicyMode::kReactive,
        policy::PolicyMode::kProactive}) {
    Arm arm;
    arm.label = std::string(policy::PolicyModeName(mode));
    arm.traces = &setup.traces;
    arm.options = MakeOptions(setup, mode);
    arms.push_back(std::move(arm));
  }
  std::vector<Result<sim::SimReport>> reports = RunArms(arms);
  for (size_t i = 0; i < arms.size(); ++i) {
    if (!reports[i].ok()) return;
    double mean = reports[i]->allocated_samples.Mean();
    double peak = reports[i]->allocated_samples.Max();
    std::printf("%-10s %18.0f %18.0f %16.0f\n", arms[i].label.c_str(),
                mean, peak, std::ceil(peak / kDbsPerNode));
  }
  std::printf("\nThe proactive policy's extra pre-warms raise allocation "
              "slightly above\nreactive; both are far below fixed "
              "provisioning.  Packing the paused\nmajority tighter is the "
              "tenant-placement opportunity the paper cites.\n");
}

}  // namespace

int main() {
  RunAutoScale();
  std::printf("\n");
  RunMaintenance();
  std::printf("\n");
  RunMachineSavings();
  return 0;
}
