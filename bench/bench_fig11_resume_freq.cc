// Figure 11: frequency of resource allocation workflows.  The number of
// proactively resumed databases in ONE iteration of the proactive resume
// operation as its period varies 1..15 minutes (gray box plots; paper max
// grows 29 -> 406 in a region of hundreds of thousands of databases), and
// the reactive policy's resume workflows per interval (white box plots).
// Our region is ~4k databases, so absolute counts are scaled down ~100x;
// the shape claim is linear growth with the period and proactive ~2x
// reactive.

#include "bench/bench_util.h"

using namespace prorp;         // NOLINT: bench brevity
using namespace prorp::bench;  // NOLINT

int main() {
  PrintHeader("Figure 11: frequency of resume workflows (per iteration)",
              "max resumed/iteration grows ~linearly with the operation "
              "period (paper: 29 -> 406 for 1 -> 15 min); proactive "
              "roughly doubles the reactive workflow rate");
  FleetSetup setup = MakeFleet(workload::RegionEU1(), 4000, 2);

  const std::vector<int> periods = {1, 2, 5, 10, 15};
  // Arm 0 is the reactive baseline (reactive resumes bucketed per
  // interval); arms 1..N sweep the proactive operation period.
  std::vector<Arm> arms;
  {
    Arm arm;
    arm.label = "reactive";
    arm.traces = &setup.traces;
    arm.options = MakeOptions(setup, policy::PolicyMode::kReactive);
    arms.push_back(std::move(arm));
  }
  for (int minutes : periods) {
    Arm arm;
    arm.traces = &setup.traces;
    arm.options = MakeOptions(setup, policy::PolicyMode::kProactive);
    arm.options.config.control_plane.resume_operation_period =
        Minutes(minutes);
    arms.push_back(std::move(arm));
  }
  std::vector<Result<sim::SimReport>> reports = RunArms(arms);
  for (const auto& r : reports) {
    if (!r.ok()) return 1;
  }
  const auto& reactive = reports[0];

  std::printf("%-8s | %-52s | %s\n", "period", "proactive resumes/iteration",
              "reactive resumes/interval (white)");
  for (size_t i = 0; i < periods.size(); ++i) {
    BoxPlot gray = reports[i + 1]->resumed_per_iteration.ToBoxPlot();
    BoxPlot white = telemetry::WorkflowFrequency(
        reactive->recorder, telemetry::EventKind::kLoginReactive,
        Minutes(periods[i]), setup.measure_from, setup.end);
    std::printf("%3d min  | %-52s | %s\n", periods[i],
                gray.ToString().c_str(), white.ToString().c_str());
  }
  return 0;
}
