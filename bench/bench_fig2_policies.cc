// Figure 2: resource allocation policies on one database — reactive,
// proactive, and optimal.  Reproduces the figure's message quantitatively:
// per-policy breakdown of used / idle / saved / unavailable time
// (Definition 2.2) for a canonical business-hours database, with the
// optimal policy as the analytic bound (allocation == demand).

#include "bench/bench_util.h"

using namespace prorp;        // NOLINT: bench brevity
using namespace prorp::bench; // NOLINT

namespace {

workload::DbTrace BusinessDb(EpochSeconds end) {
  workload::DbTrace trace;
  trace.db_id = 0;
  trace.pattern = workload::PatternType::kDailyBusiness;
  for (EpochSeconds day = kT0; day < end; day += Days(1)) {
    if (IsWeekend(day)) continue;
    trace.sessions.push_back({day + Hours(9), day + Hours(12)});
    trace.sessions.push_back({day + Hours(13), day + Hours(17)});
  }
  trace.created_at = trace.sessions.front().start;
  return trace;
}

}  // namespace

int main() {
  PrintHeader("Figure 2: resource allocation policies (one database)",
              "optimal = minimal bounding box of demand; proactive "
              "approaches it; reactive wastes idle resources and delays "
              "resumes");
  FleetSetup setup;
  setup.profile = workload::RegionEU1();
  setup.profile.eviction_per_hour = 0;  // the figure has no node pressure
  setup.end = kMeasureFrom + Days(7);
  setup.traces = {BusinessDb(setup.end)};

  std::printf("%-10s %9s %9s %9s %12s\n", "policy", "used%", "idle%",
              "saved%", "unavailable%");
  std::vector<Arm> arms;
  for (auto mode :
       {policy::PolicyMode::kAlwaysOn, policy::PolicyMode::kReactive,
        policy::PolicyMode::kProactive}) {
    Arm arm;
    arm.label = mode == policy::PolicyMode::kAlwaysOn
                    ? "fixed"
                    : std::string(policy::PolicyModeName(mode));
    arm.traces = &setup.traces;
    arm.options = MakeOptions(setup, mode);
    arm.options.eviction_per_hour = 0;
    arms.push_back(std::move(arm));
  }
  std::vector<Result<sim::SimReport>> reports = RunArms(arms);
  double active_pct = 0;
  for (size_t i = 0; i < arms.size(); ++i) {
    if (!reports[i].ok()) {
      std::printf("FAILED: %s\n", reports[i].status().ToString().c_str());
      return 1;
    }
    const auto& kpi = reports[i]->kpi;
    active_pct = kpi.active_pct + kpi.unavailable_pct;
    std::printf("%-10s %9.1f %9.1f %9.1f %12.2f\n", arms[i].label.c_str(),
                kpi.active_pct,
                kpi.IdleTotalPct(), kpi.reclaimed_pct, kpi.unavailable_pct);
  }
  // The optimal policy of Figure 2(c): A(d,t) = D(d,t).
  std::printf("%-10s %9.1f %9.1f %9.1f %12.2f   (analytic bound)\n",
              "optimal", active_pct, 0.0, 100.0 - active_pct, 0.0);
  return 0;
}
