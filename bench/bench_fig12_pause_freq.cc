// Figure 12: frequency of resource reclamation workflows — physically
// paused databases per time interval (1..15 minutes) under the proactive
// policy (gray) and the reactive policy (white).  Paper: max grows
// 31 -> 458 with the interval; the proactive policy roughly doubles the
// reactive policy's pause rate (it skips logical pauses when no activity
// is predicted, and wrong proactive resumes re-pause).

#include "bench/bench_util.h"

using namespace prorp;         // NOLINT: bench brevity
using namespace prorp::bench;  // NOLINT

int main() {
  PrintHeader("Figure 12: frequency of reclamation workflows (per interval)",
              "max physically paused/interval grows ~linearly with the "
              "interval (paper: 31 -> 458 for 1 -> 15 min); proactive "
              "~2x reactive");
  FleetSetup setup = MakeFleet(workload::RegionEU1(), 4000, 2);
  std::vector<Arm> arms(2);
  arms[0].traces = &setup.traces;
  arms[0].options = MakeOptions(setup, policy::PolicyMode::kProactive);
  arms[1].traces = &setup.traces;
  arms[1].options = MakeOptions(setup, policy::PolicyMode::kReactive);
  std::vector<Result<sim::SimReport>> reports = RunArms(arms);
  const auto& proactive = reports[0];
  const auto& reactive = reports[1];
  if (!proactive.ok() || !reactive.ok()) return 1;

  std::printf("total physical pauses: proactive=%llu reactive=%llu "
              "(ratio %.2fx)\n\n",
              static_cast<unsigned long long>(
                  proactive->kpi.physical_pauses),
              static_cast<unsigned long long>(reactive->kpi.physical_pauses),
              static_cast<double>(proactive->kpi.physical_pauses) /
                  static_cast<double>(reactive->kpi.physical_pauses));
  std::printf("%-8s | %-52s | %s\n", "interval", "proactive pauses (gray)",
              "reactive pauses (white)");
  for (int minutes : {1, 2, 5, 10, 15}) {
    BoxPlot gray = telemetry::WorkflowFrequency(
        proactive->recorder, telemetry::EventKind::kPhysicalPause,
        Minutes(minutes), setup.measure_from, setup.end);
    BoxPlot white = telemetry::WorkflowFrequency(
        reactive->recorder, telemetry::EventKind::kPhysicalPause,
        Minutes(minutes), setup.measure_from, setup.end);
    std::printf("%3d min  | %-52s | %s\n", minutes, gray.ToString().c_str(),
                white.ToString().c_str());
  }
  return 0;
}
