// Control-plane recovery cost: journal replay throughput as a function
// of journal length, and the recovery-time bound checkpoints buy.  The
// durability design (DESIGN.md section 10) journals every externally
// visible control-plane transition, so the practical question is how
// fast a restarted control plane gets back to serving — replay must be
// memory-speed, and a checkpoint must cap the replayed tail at the
// checkpoint interval regardless of journal age.  Exits non-zero if a
// recovery fails, loses state (metadata export differs from the
// pre-crash export), breaks the accounting invariant, or replays a
// different record count than was appended.
//
// Usage: bench_recovery [--smoke]
//   --smoke runs one bounded-time point (100k-record journal, with and
//   without checkpoints) for CI gating.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <unordered_set>
#include <vector>

#include "controlplane/durable_control_plane.h"

namespace fs = std::filesystem;
using namespace prorp;                // NOLINT: bench brevity
using namespace prorp::controlplane;  // NOLINT

namespace {

using Clock = std::chrono::steady_clock;

constexpr EpochSeconds kStart = 1'000'000;
constexpr int kNumDbs = 512;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string FreshDir(const std::string& name) {
  std::string dir = fs::temp_directory_path().string() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

struct Point {
  uint64_t records = 0;        // journal records at the simulated crash
  uint64_t checkpoint_every = 0;  // 0 = no checkpoints
  uint64_t replayed = 0;       // records replayed by recovery
  uint64_t skipped = 0;        // records folded into the checkpoint
  double journal_mb = 0;
  double build_s = 0;
  double recover_ms = 0;
  double replay_per_sec = 0;
};

/// Always-succeeding node side: resumes take effect immediately and the
/// oracle answers from the effect set.
struct NodeSide {
  std::unordered_set<DbId> resumed;

  ManagementService::ResumeCallback Callback() {
    return [this](const ResumeAttempt& a, EpochSeconds) -> Status {
      resumed.insert(a.db);
      return Status::OK();
    };
  }
  std::function<bool(DbId)> Oracle() {
    return [this](DbId db) { return resumed.count(db) != 0; };
  }
};

/// Drives metadata churn + reactive logins through a DurableControlPlane
/// until the journal holds at least `target_records`, then kills the
/// plane abruptly and times the recovery Open.  Returns non-zero on any
/// correctness failure.
int RunPoint(uint64_t target_records, uint64_t checkpoint_every,
             Point* point) {
  std::string dir = FreshDir("bench_recovery_" +
                             std::to_string(target_records) + "_" +
                             std::to_string(checkpoint_every));
  DurableControlPlane::Options options;
  options.dir = dir;
  options.sync_mode = ControlPlaneJournal::SyncMode::kBuffered;
  options.checkpoint_every = checkpoint_every;
  NodeSide node;

  auto plane = DurableControlPlane::Open(options, node.Callback(),
                                         node.Oracle(), kStart);
  if (!plane.ok()) {
    std::fprintf(stderr, "open: %s\n", plane.status().ToString().c_str());
    return 1;
  }

  // Each step journals ~4 records: a metadata upsert (physical pause with
  // a predicted start), an accepted reactive login, its dispatch, and its
  // completion — the same record mix a real region produces.
  auto build_start = Clock::now();
  EpochSeconds now = kStart;
  DbId db = 0;
  while ((*plane)->journal().appended_records() < target_records) {
    db = (db + 1) % kNumDbs;
    now += 1;
    node.resumed.erase(db);
    if (Status s = (*plane)->metadata().UpsertState(
            db, policy::DbState::kPhysicallyPaused, now + 600);
        !s.ok()) {
      std::fprintf(stderr, "upsert: %s\n", s.ToString().c_str());
      return 1;
    }
    if (Status s = (*plane)->service().EnqueueReactive(db, now); !s.ok()) {
      std::fprintf(stderr, "enqueue: %s\n", s.ToString().c_str());
      return 1;
    }
    (void)(*plane)->service().Pump(now);
    (*plane)->service().CompleteWorkflow(db, now + 30);
    if (Status s = (*plane)->metadata().UpsertState(
            db, policy::DbState::kResumed, 0);
        !s.ok()) {
      std::fprintf(stderr, "upsert: %s\n", s.ToString().c_str());
      return 1;
    }
    if (checkpoint_every > 0) {
      if (Status s = (*plane)->MaybeCheckpoint(); !s.ok()) {
        std::fprintf(stderr, "checkpoint: %s\n", s.ToString().c_str());
        return 1;
      }
    }
  }
  point->records = (*plane)->journal().appended_records();
  point->checkpoint_every = checkpoint_every;
  point->build_s = SecondsSince(build_start);
  if (auto sz = (*plane)->journal().SizeBytes(); sz.ok()) {
    point->journal_mb = static_cast<double>(*sz) / (1024.0 * 1024.0);
  }
  std::vector<MetadataStore::ExportedEntry> before =
      (*plane)->metadata().Export();

  // Abrupt death: no shutdown handshake, no final checkpoint.
  plane->reset();

  auto recover_start = Clock::now();
  auto recovered = DurableControlPlane::Open(options, node.Callback(),
                                             node.Oracle(), now + 1);
  double recover_s = SecondsSince(recover_start);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recover: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  point->replayed = (*recovered)->recovery_stats().replayed;
  point->skipped = (*recovered)->recovery_stats().skipped;
  point->recover_ms = recover_s * 1e3;
  point->replay_per_sec =
      recover_s > 0 ? static_cast<double>(point->replayed) / recover_s : 0;

  // Correctness gates: nothing replayed twice or dropped, metadata state
  // bit-identical, accounting invariant intact.  Without checkpoints the
  // whole journal must replay; with them the truncated journal's tail —
  // and so the replay — is capped by the interval (plus one step's worth
  // of records between the threshold crossing and the MaybeCheckpoint).
  if (checkpoint_every == 0 &&
      point->replayed + point->skipped < point->records) {
    std::fprintf(stderr, "replayed %llu + skipped %llu < appended %llu\n",
                 static_cast<unsigned long long>(point->replayed),
                 static_cast<unsigned long long>(point->skipped),
                 static_cast<unsigned long long>(point->records));
    return 1;
  }
  if (checkpoint_every > 0 && point->replayed > checkpoint_every + 16) {
    std::fprintf(stderr,
                 "checkpoint interval %llu did not cap replay (%llu)\n",
                 static_cast<unsigned long long>(checkpoint_every),
                 static_cast<unsigned long long>(point->replayed));
    return 1;
  }
  std::vector<MetadataStore::ExportedEntry> after =
      (*recovered)->metadata().Export();
  if (before.size() != after.size()) {
    std::fprintf(stderr, "metadata size diverged: %zu != %zu\n",
                 before.size(), after.size());
    return 1;
  }
  for (size_t i = 0; i < before.size(); ++i) {
    if (before[i].db != after[i].db ||
        before[i].state_code != after[i].state_code ||
        before[i].predicted_start != after[i].predicted_start) {
      std::fprintf(stderr, "metadata entry %zu diverged after recovery\n",
                   i);
      return 1;
    }
  }
  if (!(*recovered)->service().AccountingReconciles()) {
    std::fprintf(stderr, "accounting invariant broken after recovery\n");
    return 1;
  }
  if (!(*recovered)->healthy()) {
    std::fprintf(stderr, "recovered plane unhealthy\n");
    return 1;
  }
  fs::remove_all(dir);
  return 0;
}

void PrintRow(const Point& p) {
  char every[24];
  if (p.checkpoint_every == 0) {
    std::snprintf(every, sizeof(every), "%s", "never");
  } else {
    std::snprintf(every, sizeof(every), "%llu",
                  static_cast<unsigned long long>(p.checkpoint_every));
  }
  std::printf("  %9llu %11s %9.2f %10llu %9llu %12.2f %14.0f\n",
              static_cast<unsigned long long>(p.records), every,
              p.journal_mb, static_cast<unsigned long long>(p.replayed),
              static_cast<unsigned long long>(p.skipped), p.recover_ms,
              p.replay_per_sec);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::printf("Control-plane recovery: journal replay cost vs length and "
              "checkpoint interval%s\n", smoke ? " (smoke)" : "");
  std::printf("Pass criteria: recovery succeeds, metadata bit-identical, "
              "accounting reconciles, replayed+skipped covers the "
              "journal\n\n");
  std::printf("  %9s %11s %9s %10s %9s %12s %14s\n", "records",
              "ckpt every", "journalMB", "replayed", "skipped",
              "recover ms", "replayed/s");

  int failures = 0;
  if (smoke) {
    // One bounded-time point each for the uncheckpointed worst case and
    // the checkpoint-capped common case.
    for (auto [records, every] :
         std::vector<std::pair<uint64_t, uint64_t>>{{100'000, 0},
                                                    {100'000, 8'192}}) {
      Point p;
      failures += RunPoint(records, every, &p);
      PrintRow(p);
    }
  } else {
    // Journal-length sweep: replay cost must scale linearly.
    for (uint64_t records : {10'000, 50'000, 100'000, 200'000}) {
      Point p;
      failures += RunPoint(records, 0, &p);
      PrintRow(p);
    }
    // Checkpoint-interval sweep at fixed journal age: the replayed tail
    // — and with it recovery time — must track the interval, not the
    // total history.
    for (uint64_t every : {2'048, 16'384, 65'536}) {
      Point p;
      failures += RunPoint(200'000, every, &p);
      PrintRow(p);
    }
  }

  if (failures > 0) {
    std::printf("\nFAIL: %d recovery point(s) failed\n", failures);
    return 1;
  }
  std::printf("\nPASS\n");
  return 0;
}
