// Figure 8: varying the window size w from 1 to 8 hours (EU1, c = 0.1).
// Paper: as w grows, more historical logins fall into each window, more
// windows clear the confidence threshold, resources are resumed
// proactively more often — QoS rises 67% -> 87% while idle time grows
// 3% -> 8%.

#include "bench/bench_util.h"

using namespace prorp;         // NOLINT: bench brevity
using namespace prorp::bench;  // NOLINT

int main() {
  PrintHeader("Figure 8: varying window size (hours)",
              "(a) QoS rises ~67% -> ~87% as w grows 1h -> 8h; "
              "(b) idle %% grows ~3% -> ~8%");
  FleetSetup setup = MakeFleet(workload::RegionEU1(), 4000, 4);
  std::printf("%-6s %8s %8s %8s %8s\n", "w(h)", "QoS%", "idle%",
              "wrong%", "resumes");
  std::vector<Arm> arms;
  for (int w = 1; w <= 8; ++w) {
    Arm arm;
    arm.traces = &setup.traces;
    arm.options = MakeOptions(setup, policy::PolicyMode::kProactive);
    arm.options.config.policy.prediction.window_size = Hours(w);
    arms.push_back(std::move(arm));
  }
  std::vector<Result<sim::SimReport>> reports = RunArms(arms);
  for (size_t i = 0; i < arms.size(); ++i) {
    if (!reports[i].ok()) {
      std::printf("FAILED: %s\n", reports[i].status().ToString().c_str());
      return 1;
    }
    std::printf("%-6d %8.1f %8.1f %8.1f %8llu\n", static_cast<int>(i) + 1,
                reports[i]->kpi.QosAvailablePct(),
                reports[i]->kpi.IdleTotalPct(),
                reports[i]->kpi.idle_proactive_wrong_pct,
                static_cast<unsigned long long>(
                    reports[i]->kpi.proactive_resumes));
  }
  return 0;
}
