// Crash-torture sweep: crashes the storage engine at every registered
// crash point, at several occurrence indices, across many seeds, and
// verifies recovery after each crash — for both the raw DurableTree and
// the full SQL history-store stack.  Prints one row per crash point with
// the run/crash/recovery accounting.  Exits non-zero on any torture
// failure (lost acked op, failed recovery, broken B+tree invariant).
//
// Usage: bench_torture [seeds] [ops]   (defaults: 25 seeds, 500 ops)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>

#include "faults/crash_points.h"
#include "faults/torture.h"

namespace fs = std::filesystem;
using namespace prorp;          // NOLINT: bench brevity
using namespace prorp::faults;  // NOLINT

namespace {

struct PointStats {
  uint64_t runs = 0;
  uint64_t crashes = 0;
  uint64_t acked = 0;
  uint64_t recovered = 0;
  uint64_t failures = 0;
};

std::string FreshDir(const std::string& name) {
  std::string dir = fs::temp_directory_path().string() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<uint64_t> NthChoices(uint64_t hits) {
  std::vector<uint64_t> nths{1};
  if (hits >= 3) nths.push_back((hits + 1) / 2);
  if (hits >= 2) nths.push_back(hits);
  return nths;
}

void PrintTable(const char* title,
                const std::map<std::string, PointStats>& stats) {
  std::printf("%s\n", title);
  std::printf("  %-22s %6s %8s %10s %12s %9s\n", "crash point", "runs",
              "crashes", "acked ops", "recovered", "failures");
  for (const auto& [point, s] : stats) {
    std::printf("  %-22s %6llu %8llu %10llu %12llu %9llu\n", point.c_str(),
                static_cast<unsigned long long>(s.runs),
                static_cast<unsigned long long>(s.crashes),
                static_cast<unsigned long long>(s.acked),
                static_cast<unsigned long long>(s.recovered),
                static_cast<unsigned long long>(s.failures));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t num_seeds = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 25;
  const uint64_t num_ops = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                    : 500;
  std::printf("Crash torture: every crash point x %llu seeds, %llu-op "
              "workloads\n",
              static_cast<unsigned long long>(num_seeds),
              static_cast<unsigned long long>(num_ops));
  std::printf("Pass criteria: recovery succeeds, zero loss of acked "
              "records, B+tree invariants hold\n\n");

  std::map<std::string, PointStats> tree_stats;
  std::map<std::string, PointStats> sql_stats;
  uint64_t total_failures = 0;

  for (uint64_t seed = 1; seed <= num_seeds; ++seed) {
    // fsync on every append so wal_pre_sync is reachable; a small
    // checkpoint threshold so snapshot_mid_copy is reachable.
    TortureOptions opts;
    opts.seed = seed;
    opts.num_ops = num_ops;
    opts.fsync_each_append = true;
    opts.checkpoint_wal_bytes = 4096;

    auto hits = ObserveCrashPoints(opts, FreshDir("bench_torture_observe"));
    if (!hits.ok()) {
      std::printf("FAILED: counting pass (seed %llu): %s\n",
                  static_cast<unsigned long long>(seed),
                  hits.status().ToString().c_str());
      return 1;
    }
    for (const auto& [point, count] : *hits) {
      if (count == 0) continue;
      for (uint64_t nth : NthChoices(count)) {
        PointStats& s = tree_stats[point];
        ++s.runs;
        auto r = RunCrashTorture(opts, FreshDir("bench_torture_run"),
                                 point, nth);
        if (!r.ok()) {
          ++s.failures;
          ++total_failures;
          std::printf("FAILED: tree point=%s nth=%llu seed=%llu: %s\n",
                      point.c_str(),
                      static_cast<unsigned long long>(nth),
                      static_cast<unsigned long long>(seed),
                      r.status().ToString().c_str());
          continue;
        }
        if (r->crashed) ++s.crashes;
        s.acked += r->acked_ops;
        s.recovered += r->recovered_entries;
      }
    }

    auto sql_hits =
        ObserveSqlCrashPoints(opts, FreshDir("bench_torture_sql_observe"));
    if (!sql_hits.ok()) {
      std::printf("FAILED: SQL counting pass (seed %llu): %s\n",
                  static_cast<unsigned long long>(seed),
                  sql_hits.status().ToString().c_str());
      return 1;
    }
    for (const auto& [point, count] : *sql_hits) {
      if (count == 0) continue;
      std::vector<uint64_t> nths{1};
      if (count >= 2) nths.push_back(count);
      for (uint64_t nth : nths) {
        PointStats& s = sql_stats[point];
        ++s.runs;
        auto r = RunSqlCrashTorture(
            opts, FreshDir("bench_torture_sql_run"), point, nth);
        if (!r.ok()) {
          ++s.failures;
          ++total_failures;
          std::printf("FAILED: sql point=%s nth=%llu seed=%llu: %s\n",
                      point.c_str(),
                      static_cast<unsigned long long>(nth),
                      static_cast<unsigned long long>(seed),
                      r.status().ToString().c_str());
          continue;
        }
        if (r->crashed) ++s.crashes;
        s.acked += r->acked_ops;
        s.recovered += r->recovered_entries;
      }
    }
  }

  PrintTable("DurableTree (raw storage engine):", tree_stats);
  PrintTable("SqlHistoryStore (full SQL stack):", sql_stats);

  if (total_failures > 0) {
    std::printf("TORTURE FAILED: %llu failing runs\n",
                static_cast<unsigned long long>(total_failures));
    return 1;
  }
  std::printf("TORTURE PASSED: all crashes recovered with zero loss of "
              "acked records\n");
  return 0;
}
