// Robustness experiment: fleet KPIs vs correlated node-outage rate.
// Not a paper figure — it quantifies the graceful-degradation claim of
// the control plane: as the resume path degrades (node outages fail
// proactive-resume workflows), the proactive policy's QoS decays toward
// the reactive baseline but never below it, because every failed
// pre-warm leaves the database on the reactive path rather than
// erroring out.  Also checks the mitigation-runner accounting invariant
// on every arm: each workflow that failed at least once lands in exactly
// one terminal bucket.

#include <cinttypes>
#include <cstdlib>

#include "bench/bench_util.h"

using namespace prorp;         // NOLINT: bench brevity
using namespace prorp::bench;  // NOLINT

namespace {

bool AccountingReconciles(const sim::SimReport& report) {
  const auto& d = report.diagnostics;
  return d.stuck_workflows == d.mitigated + d.incidents +
                                  d.failed_then_skipped +
                                  d.failed_then_shed +
                                  report.pending_failed;
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_dbs = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 120;
  int eval_days = argc > 2 ? std::atoi(argv[2]) : 5;
  PrintHeader("Robustness: KPIs vs node-outage rate",
              "proactive QoS degrades gracefully toward (never below) the "
              "reactive baseline as outages fail pre-warm workflows");
  FleetSetup setup = MakeFleet(workload::RegionEU1(), num_dbs, eval_days);

  const double rates[] = {0, 2, 8, 24, 96};  // outages/day/node
  std::printf("%-10s %-10s %8s %8s %8s %8s %8s %8s %8s  %s\n", "rate/day",
              "policy", "qos%", "stuck", "mitig", "incid", "shed",
              "br_open", "pend", "outage schedule");

  std::vector<Arm> arms;
  for (double rate : rates) {
    for (auto mode :
         {policy::PolicyMode::kProactive, policy::PolicyMode::kReactive}) {
      Arm arm;
      arm.label = std::string(policy::PolicyModeName(mode));
      arm.traces = &setup.traces;
      arm.options = MakeOptions(setup, mode);
      arm.options.num_nodes = 8;
      arm.options.outage_rate_per_day = rate;
      arm.options.outage_duration = Minutes(10);
      arms.push_back(std::move(arm));
    }
  }
  std::vector<Result<sim::SimReport>> reports = RunArms(arms);

  bool ok = true;
  double reactive_qos = 0;
  for (size_t i = 0; i < arms.size(); ++i) {
    if (!reports[i].ok()) {
      std::printf("FAILED: %s\n", reports[i].status().ToString().c_str());
      return 1;
    }
    const sim::SimReport& r = *reports[i];
    double rate = rates[i / 2];
    if (!AccountingReconciles(r)) {
      std::printf("ACCOUNTING MISMATCH at rate=%.0f %s\n", rate,
                  arms[i].label.c_str());
      ok = false;
    }
    if (arms[i].label == "reactive") reactive_qos = r.kpi.QosAvailablePct();
    std::printf("%-10.0f %-10s %8.1f %8" PRIu64 " %8" PRIu64 " %8" PRIu64
                " %8" PRIu64 " %8" PRIu64 " %8" PRIu64 "  %s\n",
                rate, arms[i].label.c_str(), r.kpi.QosAvailablePct(),
                r.diagnostics.stuck_workflows, r.diagnostics.mitigated,
                r.diagnostics.incidents, r.diagnostics.shed_resumes,
                r.diagnostics.breaker_opens, r.pending_failed,
                r.robustness.ToString().c_str());
    // Graceful degradation: proactive never falls below the reactive
    // baseline of the same outage rate (checked pairwise; proactive is
    // printed first, reactive second).
    if (i % 2 == 1) {
      double proactive_qos = reports[i - 1]->kpi.QosAvailablePct();
      if (proactive_qos + 1e-9 < reactive_qos) {
        std::printf("DEGRADATION VIOLATION at rate=%.0f: proactive %.2f%% "
                    "< reactive %.2f%%\n",
                    rate, proactive_qos, reactive_qos);
        ok = false;
      }
    }
  }
  std::printf(ok ? "OUTAGE SWEEP PASSED\n" : "OUTAGE SWEEP FAILED\n");
  return ok ? 0 : 1;
}
