// Ablations of the design choices DESIGN.md calls out:
//  1. Algorithm 4 literal ELSE BREAK vs the corrected window scan.
//  2. Prediction disabled entirely (NeverPredictor semantics via the
//     proactive policy with prediction unusable == reactive behaviour) —
//     covered by the reactive row.
//  3. The control plane's proactive resume operation disabled (proactive
//     pauses without pre-warm).
//  4. Pre-warm restore after capacity evictions on/off.
//  5. Weekly vs daily seasonality.

#include "bench/bench_util.h"

using namespace prorp;         // NOLINT: bench brevity
using namespace prorp::bench;  // NOLINT

int main() {
  PrintHeader("Ablation: contribution of each ProRP design choice (EU1)",
              "each row removes or alters one mechanism; compare QoS and "
              "idle against the full proactive configuration");
  FleetSetup setup = MakeFleet(workload::RegionEU1(), 3000, 3);

  struct Variant {
    std::string name;
    sim::SimOptions options;
  };
  std::vector<Variant> variants;

  variants.push_back({"reactive baseline",
                      MakeOptions(setup, policy::PolicyMode::kReactive)});
  variants.push_back({"proactive (full)",
                      MakeOptions(setup, policy::PolicyMode::kProactive)});
  {
    auto o = MakeOptions(setup, policy::PolicyMode::kProactive);
    o.config.policy.prediction.literal_break = true;
    variants.push_back({"literal ELSE BREAK (Alg 4 as printed)", o});
  }
  {
    auto o = MakeOptions(setup, policy::PolicyMode::kProactive);
    o.proactive_resume_enabled = false;
    variants.push_back({"no proactive resume op", o});
  }
  {
    auto o = MakeOptions(setup, policy::PolicyMode::kProactive);
    o.config.policy.eviction_restore_delay = 0;
    variants.push_back({"no pre-warm restore after eviction", o});
  }
  {
    auto o = MakeOptions(setup, policy::PolicyMode::kProactive);
    o.config.policy.prediction.seasonality = Weeks(1);
    o.config.policy.prediction.prediction_horizon = Days(1);
    variants.push_back({"weekly seasonality (horizon 1d)", o});
  }

  std::printf("%-40s %7s %7s %7s %9s\n", "variant", "QoS%", "idle%",
              "wrong%", "resumes");
  std::vector<Arm> arms;
  for (const Variant& v : variants) {
    Arm arm;
    arm.label = v.name;
    arm.traces = &setup.traces;
    arm.options = v.options;
    arms.push_back(std::move(arm));
  }
  std::vector<Result<sim::SimReport>> reports = RunArms(arms);
  for (size_t i = 0; i < arms.size(); ++i) {
    if (!reports[i].ok()) {
      std::printf("%-40s FAILED: %s\n", arms[i].label.c_str(),
                  reports[i].status().ToString().c_str());
      continue;
    }
    std::printf("%-40s %7.1f %7.1f %7.1f %9llu\n", arms[i].label.c_str(),
                reports[i]->kpi.QosAvailablePct(),
                reports[i]->kpi.IdleTotalPct(),
                reports[i]->kpi.idle_proactive_wrong_pct,
                static_cast<unsigned long long>(
                    reports[i]->kpi.proactive_resumes));
  }
  return 0;
}
