// Figure 3: fragmentation of idle time.  Two months of EU1 activity:
// (a) the CDF of idle-interval counts (paper: 72% of idle intervals are
//     within one hour), and
// (b) their share of the total idle duration (paper: those short
//     intervals contribute only 5% of the idle time).

#include "bench/bench_util.h"

#include "common/stats.h"

using namespace prorp;         // NOLINT: bench brevity
using namespace prorp::bench;  // NOLINT

int main() {
  PrintHeader("Figure 3: fragmentation of idle time (2 months, EU1)",
              "(a) ~72% of idle intervals < 1 hour; (b) they contribute "
              "only ~5% of the total idle duration");
  auto profile = workload::RegionEU1();
  EpochSeconds end = kT0 + Days(60);
  auto traces = workload::GenerateFleet(profile, 8000, kT0, end, 2024);
  workload::GapStats stats = workload::ComputeGapStats(traces);

  std::printf("idle intervals analyzed: %llu across %zu databases\n\n",
              static_cast<unsigned long long>(stats.gap_count),
              traces.size());
  std::printf("(a) CDF of idle-interval durations (by count):\n");
  const DurationSeconds buckets[] = {Minutes(5),  Minutes(15), Minutes(30),
                                     Hours(1),    Hours(2),    Hours(7),
                                     Hours(24),   Days(7)};
  std::vector<double> sorted = stats.gap_durations.Sorted();
  for (DurationSeconds b : buckets) {
    size_t below = std::lower_bound(sorted.begin(), sorted.end(),
                                    static_cast<double>(b)) -
                   sorted.begin();
    std::printf("  <= %-10s %6.1f%%\n", FormatDuration(b).c_str(),
                100.0 * static_cast<double>(below) /
                    static_cast<double>(sorted.size()));
  }
  std::printf("\n(b) share of total idle duration from intervals < 1 h:\n");
  std::printf("  measured: %.1f%%   (paper: ~5%%)\n",
              100.0 * stats.short_gap_duration_fraction);
  std::printf("\nheadline: %.1f%% of idle intervals < 1 h (paper: ~72%%); "
              "%.1f%% within l = 7 h\n",
              100.0 * stats.short_gap_count_fraction,
              100.0 * stats.within_l_count_fraction);
  std::printf("\nNote: the short-gap count share and the reactive policy's "
              "QoS band\n(Figure 6) jointly constrain the trace generator; "
              "see EXPERIMENTS.md.\n");
  return 0;
}
