#ifndef PRORP_BENCH_BENCH_UTIL_H_
#define PRORP_BENCH_BENCH_UTIL_H_

// Shared setup for the figure-reproduction harnesses.  Every bench prints
// the same rows/series the paper's figure reports, prefixed with the
// paper's expected band so the shape comparison is one glance.

#include <cstdio>
#include <string>
#include <vector>

#include "sim/fleet_simulator.h"
#include "workload/region.h"

namespace prorp::bench {

/// Simulation anchor: day 1005 is a Monday 00:00 UTC.
inline constexpr EpochSeconds kT0 = Days(1005);
/// Warm-up equals the default history length.
inline constexpr EpochSeconds kMeasureFrom = kT0 + Days(28);

struct FleetSetup {
  workload::RegionProfile profile;
  std::vector<workload::DbTrace> traces;
  EpochSeconds measure_from = kMeasureFrom;
  EpochSeconds end = 0;
};

/// Generates a fleet with warm-up plus `eval_days` of evaluation.
inline FleetSetup MakeFleet(const workload::RegionProfile& profile,
                            size_t num_dbs, int eval_days,
                            uint64_t seed = 2024) {
  FleetSetup setup;
  setup.profile = profile;
  setup.end = kMeasureFrom + Days(eval_days);
  setup.traces = workload::GenerateFleet(profile, num_dbs, kT0, setup.end,
                                         seed, kMeasureFrom);
  return setup;
}

inline sim::SimOptions MakeOptions(const FleetSetup& setup,
                                   policy::PolicyMode mode,
                                   uint64_t seed = 7) {
  sim::SimOptions options;
  options.mode = mode;
  options.measure_from = setup.measure_from;
  options.end = setup.end;
  options.eviction_per_hour = setup.profile.eviction_per_hour;
  options.seed = seed;
  return options;
}

inline void PrintHeader(const char* figure, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper: %s\n", claim);
  std::printf("==============================================================\n");
}

inline void PrintKpiRow(const std::string& label,
                        const telemetry::KpiReport& kpi) {
  std::printf("%-16s %s\n", label.c_str(), kpi.ToString().c_str());
}

}  // namespace prorp::bench

#endif  // PRORP_BENCH_BENCH_UTIL_H_
