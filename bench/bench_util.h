#ifndef PRORP_BENCH_BENCH_UTIL_H_
#define PRORP_BENCH_BENCH_UTIL_H_

// Shared setup for the figure-reproduction harnesses.  Every bench prints
// the same rows/series the paper's figure reports, prefixed with the
// paper's expected band so the shape comparison is one glance.

#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "sim/fleet_simulator.h"
#include "workload/region.h"

namespace prorp::bench {

/// Simulation anchor: day 1005 is a Monday 00:00 UTC.
inline constexpr EpochSeconds kT0 = Days(1005);
/// Warm-up equals the default history length.
inline constexpr EpochSeconds kMeasureFrom = kT0 + Days(28);

struct FleetSetup {
  workload::RegionProfile profile;
  std::vector<workload::DbTrace> traces;
  EpochSeconds measure_from = kMeasureFrom;
  EpochSeconds end = 0;
};

/// Generates a fleet with warm-up plus `eval_days` of evaluation.
inline FleetSetup MakeFleet(const workload::RegionProfile& profile,
                            size_t num_dbs, int eval_days,
                            uint64_t seed = 2024) {
  FleetSetup setup;
  setup.profile = profile;
  setup.end = kMeasureFrom + Days(eval_days);
  setup.traces = workload::GenerateFleet(profile, num_dbs, kT0, setup.end,
                                         seed, kMeasureFrom);
  return setup;
}

inline sim::SimOptions MakeOptions(const FleetSetup& setup,
                                   policy::PolicyMode mode,
                                   uint64_t seed = 7) {
  sim::SimOptions options;
  options.mode = mode;
  options.measure_from = setup.measure_from;
  options.end = setup.end;
  options.eviction_per_hour = setup.profile.eviction_per_hour;
  options.seed = seed;
  // Reactive / always-on databases share no cross-database state, so those
  // arms additionally shard the fleet across workers (the simulator clamps
  // and falls back to the serial loop for proactive mode).  Sharded output
  // is bit-identical to serial, so this only changes wall-clock time.
  if (mode != policy::PolicyMode::kProactive) {
    options.num_threads =
        static_cast<int>(common::ThreadPool::DefaultThreads());
  }
  return options;
}

/// One independent experiment arm of a figure harness: a label plus the
/// traces and options of a RunFleetSimulation call.  Arms share nothing —
/// each run builds its own history stores, controllers, metadata store and
/// RNG streams from `options.seed` — so they can execute concurrently with
/// results identical to a serial loop.
struct Arm {
  std::string label;
  const std::vector<workload::DbTrace>* traces = nullptr;
  sim::SimOptions options;
};

/// Runs the arms on a thread pool sized by PRORP_NUM_THREADS (default:
/// hardware concurrency) and returns the reports in arm order, so the
/// printed figure is byte-identical whether the arms ran serially
/// (PRORP_NUM_THREADS=1) or concurrently.
inline std::vector<Result<sim::SimReport>> RunArms(
    const std::vector<Arm>& arms) {
  std::vector<std::function<Result<sim::SimReport>()>> jobs;
  jobs.reserve(arms.size());
  for (const Arm& arm : arms) {
    jobs.emplace_back([&arm] {
      return sim::RunFleetSimulation(*arm.traces, arm.options);
    });
  }
  return common::RunOnPool<Result<sim::SimReport>>(
      std::move(jobs), common::ThreadPool::DefaultThreads());
}

inline void PrintHeader(const char* figure, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper: %s\n", claim);
  std::printf("==============================================================\n");
}

inline void PrintKpiRow(const std::string& label,
                        const telemetry::KpiReport& kpi) {
  std::printf("%-16s %s\n", label.c_str(), kpi.ToString().c_str());
}

/// "p50=.. p95=.. p99=.. max=.." row of a latency Summary.  The Summary
/// keeps every sample, so the tail percentiles are exact, unlike the
/// log-bucketed telemetry histograms.
inline void PrintLatencyRow(const std::string& label, const Summary& s) {
  std::printf("%-16s n=%zu p50=%.0fs p95=%.0fs p99=%.0fs max=%.0fs\n",
              label.c_str(), s.count(), s.Percentile(0.50),
              s.Percentile(0.95), s.Percentile(0.99),
              s.empty() ? 0.0 : s.Max());
}

}  // namespace prorp::bench

#endif  // PRORP_BENCH_BENCH_UTIL_H_
