#ifndef PRORP_BENCH_BENCH_UTIL_H_
#define PRORP_BENCH_BENCH_UTIL_H_

// Shared setup for the figure-reproduction harnesses.  Every bench prints
// the same rows/series the paper's figure reports, prefixed with the
// paper's expected band so the shape comparison is one glance.

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "sim/fleet_simulator.h"
#include "workload/region.h"

// ---------------------------------------------------------------------------
// Process-wide allocation counting.
//
// Every bench binary is a single translation unit including this header,
// so the replaceable global operator new/delete can be (non-inline)
// defined here: each executable gets exactly one definition, and every
// allocation in the process — simulator, control plane, history stores —
// bumps one relaxed atomic.  Disabled under sanitizers, whose runtimes
// interpose their own allocator and poison redzones around it; there the
// counter helpers report zero and the default operators stay in place.
// ---------------------------------------------------------------------------

#ifndef PRORP_BENCH_COUNT_ALLOCATIONS
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PRORP_BENCH_COUNT_ALLOCATIONS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define PRORP_BENCH_COUNT_ALLOCATIONS 0
#else
#define PRORP_BENCH_COUNT_ALLOCATIONS 1
#endif
#else
#define PRORP_BENCH_COUNT_ALLOCATIONS 1
#endif
#endif

namespace prorp::bench {

inline std::atomic<uint64_t> g_allocation_count{0};

/// Heap allocations made by the process so far (operator-new calls).
/// Zero under sanitizer builds, where the default allocator stays in
/// place — callers treat zero as "not measured".
inline uint64_t AllocationCount() {
  return g_allocation_count.load(std::memory_order_relaxed);
}

/// Allocations since a captured baseline — the per-phase helper:
///   uint64_t before = AllocationCount();
///   ...workload...
///   uint64_t allocs = AllocationsSince(before);
inline uint64_t AllocationsSince(uint64_t baseline) {
  uint64_t now = AllocationCount();
  return now >= baseline ? now - baseline : 0;
}

/// Peak resident set size of the process in bytes (Linux ru_maxrss is
/// reported in kilobytes).  Monotone over the process lifetime: a sweep
/// measuring several fleet sizes must run smallest-first for per-size
/// peaks to be attributable.
inline uint64_t PeakRssBytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

/// Best-effort reset of the kernel's peak-RSS watermark (Linux: writing
/// "5" to /proc/self/clear_refs resets VmHWM).  Returns false where
/// unsupported; PeakRssSinceResetBytes then degrades to the monotone peak.
inline bool ResetPeakRss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
}

/// Peak RSS honoring the last ResetPeakRss (reads VmHWM, which clear_refs
/// resets; ru_maxrss does not).  Falls back to PeakRssBytes when
/// /proc/self/status is unavailable.  Lets a sweep attribute a peak to
/// each phase instead of only to the largest phase so far.
inline uint64_t PeakRssSinceResetBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return PeakRssBytes();
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) break;
  }
  std::fclose(f);
  if (kb < 0) return PeakRssBytes();
  return static_cast<uint64_t>(kb) * 1024;
}

}  // namespace prorp::bench

#if PRORP_BENCH_COUNT_ALLOCATIONS
// Replaceable allocation functions (non-inline by [replacement.functions]).
// GCC flags std::free on operator-new results as mismatched; here every
// new variant allocates via malloc/posix_memalign, both free()-able.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  prorp::bench::g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  prorp::bench::g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ::operator new(size, std::nothrow);
}
void* operator new(std::size_t size, std::align_val_t align) {
  prorp::bench::g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, std::max(static_cast<std::size_t>(align),
                                  sizeof(void*)),
                     size == 0 ? 1 : size) == 0) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#endif  // PRORP_BENCH_COUNT_ALLOCATIONS

namespace prorp::bench {

/// Simulation anchor: day 1005 is a Monday 00:00 UTC.
inline constexpr EpochSeconds kT0 = Days(1005);
/// Warm-up equals the default history length.
inline constexpr EpochSeconds kMeasureFrom = kT0 + Days(28);

struct FleetSetup {
  workload::RegionProfile profile;
  std::vector<workload::DbTrace> traces;
  EpochSeconds measure_from = kMeasureFrom;
  EpochSeconds end = 0;
};

/// Generates a fleet with warm-up plus `eval_days` of evaluation.
inline FleetSetup MakeFleet(const workload::RegionProfile& profile,
                            size_t num_dbs, int eval_days,
                            uint64_t seed = 2024) {
  FleetSetup setup;
  setup.profile = profile;
  setup.end = kMeasureFrom + Days(eval_days);
  setup.traces = workload::GenerateFleet(profile, num_dbs, kT0, setup.end,
                                         seed, kMeasureFrom);
  return setup;
}

inline sim::SimOptions MakeOptions(const FleetSetup& setup,
                                   policy::PolicyMode mode,
                                   uint64_t seed = 7) {
  sim::SimOptions options;
  options.mode = mode;
  options.measure_from = setup.measure_from;
  options.end = setup.end;
  options.eviction_per_hour = setup.profile.eviction_per_hour;
  options.seed = seed;
  // Reactive / always-on databases share no cross-database state, so those
  // arms additionally shard the fleet across workers (the simulator clamps
  // and falls back to the serial loop for proactive mode).  Sharded output
  // is bit-identical to serial, so this only changes wall-clock time.
  if (mode != policy::PolicyMode::kProactive) {
    options.num_threads =
        static_cast<int>(common::ThreadPool::DefaultThreads());
  }
  return options;
}

/// One independent experiment arm of a figure harness: a label plus the
/// traces and options of a RunFleetSimulation call.  Arms share nothing —
/// each run builds its own history stores, controllers, metadata store and
/// RNG streams from `options.seed` — so they can execute concurrently with
/// results identical to a serial loop.
struct Arm {
  std::string label;
  const std::vector<workload::DbTrace>* traces = nullptr;
  sim::SimOptions options;
};

/// Runs the arms on a thread pool sized by PRORP_NUM_THREADS (default:
/// hardware concurrency) and returns the reports in arm order, so the
/// printed figure is byte-identical whether the arms ran serially
/// (PRORP_NUM_THREADS=1) or concurrently.
inline std::vector<Result<sim::SimReport>> RunArms(
    const std::vector<Arm>& arms) {
  std::vector<std::function<Result<sim::SimReport>()>> jobs;
  jobs.reserve(arms.size());
  for (const Arm& arm : arms) {
    jobs.emplace_back([&arm] {
      return sim::RunFleetSimulation(*arm.traces, arm.options);
    });
  }
  return common::RunOnPool<Result<sim::SimReport>>(
      std::move(jobs), common::ThreadPool::DefaultThreads());
}

inline void PrintHeader(const char* figure, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper: %s\n", claim);
  std::printf("==============================================================\n");
}

inline void PrintKpiRow(const std::string& label,
                        const telemetry::KpiReport& kpi) {
  std::printf("%-16s %s\n", label.c_str(), kpi.ToString().c_str());
}

/// "p50=.. p95=.. p99=.. max=.." row of a latency Summary.  The Summary
/// keeps every sample, so the tail percentiles are exact, unlike the
/// log-bucketed telemetry histograms.
inline void PrintLatencyRow(const std::string& label, const Summary& s) {
  std::printf("%-16s n=%zu p50=%.0fs p95=%.0fs p99=%.0fs max=%.0fs\n",
              label.c_str(), s.count(), s.Percentile(0.50),
              s.Percentile(0.95), s.Percentile(0.99),
              s.empty() ? 0.0 : s.Max());
}

// ---------------------------------------------------------------------------
// Machine-readable microbench output (BENCH_*.json).
//
// The micro harnesses persist one JSON document per run so the perf
// trajectory of the storage hot path is diffable across PRs instead of
// living in scrollback.  The schema is intentionally flat: one row per
// workload plus a "derived" map of cross-workload ratios (speedups) that
// the CI smoke gate asserts on.
// ---------------------------------------------------------------------------

/// One measured workload of a micro harness.
struct MicroResult {
  std::string name;    // e.g. "wal_append_group_sync" — snake_case, no quotes
  int threads = 1;     // concurrent worker threads driving the workload
  double ops = 0;      // total operations completed across all threads
  double seconds = 0;  // wall-clock duration of the measured region
  double p50_us = 0;   // per-op latency percentiles, microseconds
  double p95_us = 0;
  double p99_us = 0;

  double ops_per_sec() const { return seconds > 0 ? ops / seconds : 0; }
};

inline void PrintMicroRow(const MicroResult& r) {
  std::printf("%-28s threads=%-2d ops=%-9.0f %12.0f ops/s  "
              "p50=%8.2fus p95=%8.2fus p99=%8.2fus\n",
              r.name.c_str(), r.threads, r.ops, r.ops_per_sec(), r.p50_us,
              r.p95_us, r.p99_us);
}

/// Writes `results` (+ derived ratios) as a JSON document at `path`.
/// Returns false (after printing to stderr) if the file cannot be written;
/// the numbers on stdout are unaffected.
inline bool WriteMicroJson(
    const std::string& path, const std::string& benchmark,
    const std::string& mode, const std::vector<MicroResult>& results,
    const std::vector<std::pair<std::string, double>>& derived) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n  \"mode\": \"%s\",\n",
               benchmark.c_str(), mode.c_str());
  // Process-wide resource footprint at write time: peak RSS always,
  // allocation count when the counting allocator is active (0 under
  // sanitizers = not measured).
  std::fprintf(f, "  \"peak_rss_bytes\": %llu,\n  \"allocations\": %llu,\n",
               static_cast<unsigned long long>(PeakRssBytes()),
               static_cast<unsigned long long>(AllocationCount()));
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const MicroResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"threads\": %d, \"ops\": %.0f, "
                 "\"seconds\": %.6f, \"ops_per_sec\": %.1f, "
                 "\"p50_us\": %.3f, \"p95_us\": %.3f, \"p99_us\": %.3f}%s\n",
                 r.name.c_str(), r.threads, r.ops, r.seconds, r.ops_per_sec(),
                 r.p50_us, r.p95_us, r.p99_us,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"derived\": {\n");
  for (size_t i = 0; i < derived.size(); ++i) {
    std::fprintf(f, "    \"%s\": %.3f%s\n", derived[i].first.c_str(),
                 derived[i].second, i + 1 < derived.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace prorp::bench

#endif  // PRORP_BENCH_BENCH_UTIL_H_
