// Microbenchmarks of the next-activity prediction (Algorithm 4):
// the faithful SQL stored procedure (p/s x h range queries, the paper's
// production implementation whose latency Figure 10(c) reports) versus
// the vectorized FastPredictor the fleet simulator uses, across history
// sizes.

#include <benchmark/benchmark.h>

#include "forecast/fast_predictor.h"
#include "forecast/sliding_window_predictor.h"
#include "history/mem_history_store.h"
#include "history/sql_history_store.h"

namespace prorp::forecast {
namespace {

constexpr EpochSeconds kNow = Days(1004);

template <typename Store>
void Fill(Store& store, int sessions_per_day) {
  for (int d = 1; d <= 28; ++d) {
    EpochSeconds day = kNow - Days(d);
    for (int s = 0; s < sessions_per_day; ++s) {
      EpochSeconds login = day + Hours(6) + s * Minutes(30);
      (void)store.InsertHistory(login, history::kEventLogin);
      (void)store.InsertHistory(login + Minutes(20),
                                history::kEventLogout);
    }
  }
}

void BM_FaithfulSqlPrediction(benchmark::State& state) {
  auto store = history::SqlHistoryStore::Open().value();
  Fill(*store, static_cast<int>(state.range(0)));
  SlidingWindowPredictor predictor(PredictionConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.PredictNextActivity(*store, kNow));
  }
  state.SetLabel(std::to_string(store->NumTuples()) + " tuples");
}
BENCHMARK(BM_FaithfulSqlPrediction)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_FaithfulOverMemStore(benchmark::State& state) {
  history::MemHistoryStore store;
  Fill(store, static_cast<int>(state.range(0)));
  SlidingWindowPredictor predictor(PredictionConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.PredictNextActivity(store, kNow));
  }
}
BENCHMARK(BM_FaithfulOverMemStore)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_FastPrediction(benchmark::State& state) {
  history::MemHistoryStore store;
  Fill(store, static_cast<int>(state.range(0)));
  FastPredictor predictor(PredictionConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.PredictNextActivity(store, kNow));
  }
  state.SetLabel(std::to_string(store.NumTuples()) + " tuples");
}
BENCHMARK(BM_FastPrediction)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_WeeklySeasonality(benchmark::State& state) {
  history::MemHistoryStore store;
  Fill(store, 4);
  PredictionConfig cfg;
  cfg.seasonality = Weeks(1);
  cfg.prediction_horizon = Days(7);
  FastPredictor predictor(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.PredictNextActivity(store, kNow));
  }
}
BENCHMARK(BM_WeeklySeasonality)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace prorp::forecast

BENCHMARK_MAIN();
