// Figure 9: varying the confidence threshold c from 0.1 to 0.8 (EU1,
// w = 7h).  Paper: as c rises, fewer windows qualify, resources are
// proactively resumed less often — QoS falls 86% -> 50% while idle time
// shrinks 6% -> 2%.

#include "bench/bench_util.h"

using namespace prorp;         // NOLINT: bench brevity
using namespace prorp::bench;  // NOLINT

int main() {
  PrintHeader("Figure 9: varying confidence of prediction",
              "(a) QoS falls ~86% -> ~50% as c grows 0.1 -> 0.8; "
              "(b) idle %% shrinks ~6% -> ~2%");
  FleetSetup setup = MakeFleet(workload::RegionEU1(), 4000, 4);
  std::printf("%-6s %8s %8s %8s %8s\n", "c", "QoS%", "idle%", "wrong%",
              "resumes");
  const std::vector<double> thresholds = {0.1, 0.2, 0.3, 0.4,
                                          0.5, 0.6, 0.7, 0.8};
  std::vector<Arm> arms;
  for (double c : thresholds) {
    Arm arm;
    arm.traces = &setup.traces;
    arm.options = MakeOptions(setup, policy::PolicyMode::kProactive);
    arm.options.config.policy.prediction.confidence_threshold = c;
    arms.push_back(std::move(arm));
  }
  std::vector<Result<sim::SimReport>> reports = RunArms(arms);
  for (size_t i = 0; i < arms.size(); ++i) {
    if (!reports[i].ok()) {
      std::printf("FAILED: %s\n", reports[i].status().ToString().c_str());
      return 1;
    }
    std::printf("%-6.1f %8.1f %8.1f %8.1f %8llu\n", thresholds[i],
                reports[i]->kpi.QosAvailablePct(),
                reports[i]->kpi.IdleTotalPct(),
                reports[i]->kpi.idle_proactive_wrong_pct,
                static_cast<unsigned long long>(
                    reports[i]->kpi.proactive_resumes));
  }
  return 0;
}
