// Robustness experiment: node-loss QoS with lease-driven failure
// detection + fenced failover vs the passive-outage baseline.
//
// Two sections:
//  1. Failover-torture cells (crash / zombie partition / gray-slow node),
//     each run with detection on and off: detection latency (fault onset
//     -> death declaration), re-placement latency (failover re-queue ->
//     successful re-execution on a survivor), and the login waits each
//     arm inflicted — plus the exactly-once/fencing invariants every
//     cell must hold (zero lost logins, zero double-applies, zero
//     double-lives, zero fence violations, reconciled accounting).
//  2. A fleet-simulator node-crash evening: the crashed node's warm idle
//     databases are force-evicted; with detection the failover engine
//     re-places them on survivors before their morning logins arrive,
//     with attribution splitting failover waits from outage waits.
//
// Exit code asserts the QoS claim (detection beats passive on node
// loss), the detection-latency bound, and every invariant; results
// persist as BENCH_failover.json (--out=PATH / --no-out).

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/failover_torture.h"

using namespace prorp;         // NOLINT: bench brevity
using namespace prorp::bench;  // NOLINT

namespace prorp::bench {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = "/tmp/prorp_bench_failover/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

struct Cell {
  const char* name;
  sim::NodeFaultSpec fault;
  int steps = 200;
};

bool InvariantsHold(const sim::FailoverTortureResult& r, const char* tag,
                    bool detect) {
  bool ok = true;
  auto fail = [&](const char* what, uint64_t v) {
    std::printf("INVARIANT FAILURE %s[%s]: %s=%" PRIu64 "\n", tag,
                detect ? "detect" : "passive", what, v);
    ok = false;
  };
  if (r.lost_reactive != 0) fail("lost_reactive", r.lost_reactive);
  if (r.double_applies != 0) fail("double_applies", r.double_applies);
  if (r.stale_epoch_applied != 0)
    fail("stale_epoch_applied", r.stale_epoch_applied);
  if (r.double_live != 0) fail("double_live", r.double_live);
  if (r.fence_violations != 0)
    fail("fence_violations", r.fence_violations);
  if (!r.accounting_ok) fail("accounting_ok", 0);
  if (!r.drained) fail("drained", 0);
  return ok;
}

void PrintCellRow(const char* tag, bool detect,
                  const sim::FailoverTortureResult& r) {
  std::printf("%-8s %-8s %6" PRIu64 " %6" PRIu64 " %6" PRIu64 " %6" PRIu64
              "  det p50/p99 %5.0f/%5.0fs  repl %5.0f/%5.0fs  "
              "wait n=%-4zu p99 %6.0fs\n",
              tag, detect ? "detect" : "passive", r.deaths_declared,
              r.failover_requeues, r.diverted_dispatches,
              r.lease_expired_rejected, r.detection_delay.Percentile(0.50),
              r.detection_delay.Percentile(0.99),
              r.replacement_delay.Percentile(0.50),
              r.replacement_delay.Percentile(0.99), r.login_wait.count(),
              r.login_wait.Percentile(0.99));
}

int Run(bool smoke, std::string out_path) {
  PrintHeader("Robustness: node loss with lease-driven failover",
              "detection + fenced re-placement beats the passive-outage "
              "baseline on login QoS during node loss, with zero "
              "double-lives and zero lost logins");

  sim::FailoverTortureOptions base;
  base.num_dbs = smoke ? 32 : 48;

  sim::NodeFaultSpec crash;
  crash.kind = sim::NodeFaultSpec::Kind::kCrash;
  crash.node = 2;
  crash.at_step = 40;
  crash.duration_steps = 60;
  sim::NodeFaultSpec zombie;
  zombie.kind = sim::NodeFaultSpec::Kind::kZombie;
  zombie.node = 1;
  zombie.at_step = 50;
  zombie.duration_steps = 30;
  sim::NodeFaultSpec slow;
  slow.kind = sim::NodeFaultSpec::Kind::kSlow;
  slow.node = 3;
  slow.at_step = 40;
  slow.duration_steps = 80;
  slow.slow_delay = 80;

  const Cell cells[] = {
      {"crash", crash, 200},
      {"zombie", zombie, 200},
      {"slow", slow, 240},
  };

  bool ok = true;
  std::printf("%-8s %-8s %6s %6s %6s %6s\n", "fault", "arm", "deaths",
              "requeu", "divert", "fenced");
  sim::FailoverTortureResult crash_detect, crash_passive;
  std::vector<MicroResult> rows;
  for (const Cell& cell : cells) {
    for (bool detect : {true, false}) {
      sim::FailoverTortureOptions opt = base;
      opt.dir = FreshDir(std::string(cell.name) +
                         (detect ? "_detect" : "_passive"));
      opt.seed = 11;
      opt.steps = cell.steps;
      opt.detection_enabled = detect;
      opt.faults = {cell.fault};
      auto t0 = std::chrono::steady_clock::now();
      auto r = sim::RunFailoverTorture(opt);
      double secs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
      if (!r.ok()) {
        std::printf("FAILED %s: %s\n", cell.name,
                    r.status().ToString().c_str());
        return 1;
      }
      PrintCellRow(cell.name, detect, *r);
      ok &= InvariantsHold(*r, cell.name, detect);
      if (detect) {
        if (r->deaths_declared == 0) {
          std::printf("NO DEATH DECLARED in %s/detect\n", cell.name);
          ok = false;
        }
        // The detection-latency bound: suspicion gap + fence drain +
        // grace, with a couple of lease periods of tick slack.
        double bound =
            static_cast<double>(opt.lease_ttl + opt.dead_grace + 120);
        if (r->detection_delay.count() > 0 &&
            r->detection_delay.Percentile(0.99) > bound) {
          std::printf("DETECTION LATENCY BOUND EXCEEDED in %s: "
                      "p99 %.0fs > %.0fs\n",
                      cell.name, r->detection_delay.Percentile(0.99),
                      bound);
          ok = false;
        }
      }
      if (std::strcmp(cell.name, "crash") == 0) {
        if (detect) {
          crash_detect = *r;
        } else {
          crash_passive = *r;
        }
      }
      MicroResult row;
      row.name = std::string(cell.name) + "_" +
                 (detect ? "detect" : "passive");
      row.ops = static_cast<double>(r->total_resumed);
      row.seconds = secs;
      row.p50_us = r->login_wait.Percentile(0.50) * 1e6;
      row.p95_us = r->login_wait.Percentile(0.95) * 1e6;
      row.p99_us = r->login_wait.Percentile(0.99) * 1e6;
      rows.push_back(row);
    }
  }
  if (crash_detect.failover_requeues == 0) {
    std::printf("CRASH CELL RE-PLACED NOTHING\n");
    ok = false;
  }
  // The QoS claim on the torture workload: with detection the waiting
  // logins ride diversion + re-placement instead of the dead node's
  // retry attrition.
  if (crash_detect.login_wait.count() > 0 &&
      crash_passive.login_wait.count() > 0 &&
      crash_detect.login_wait.Percentile(0.99) >
          crash_passive.login_wait.Percentile(0.99)) {
    std::printf("QOS REGRESSION: crash login-wait p99 %.0fs (detect) > "
                "%.0fs (passive)\n",
                crash_detect.login_wait.Percentile(0.99),
                crash_passive.login_wait.Percentile(0.99));
    ok = false;
  }

  // --- Section 2: fleet-simulator evening node crash ---
  size_t num_dbs = smoke ? 60 : 120;
  FleetSetup setup = MakeFleet(workload::RegionEU1(), num_dbs, 5);
  std::vector<Arm> arms;
  for (bool detect : {false, true}) {
    Arm arm;
    arm.label = detect ? "detect" : "passive";
    arm.traces = &setup.traces;
    arm.options = MakeOptions(setup, policy::PolicyMode::kProactive);
    // Isolate the node crash: no background random evictions, and the
    // storm layer on so every reactive wait is measured and attributed.
    arm.options.eviction_per_hour = 0;
    arm.options.resume_concurrency_per_node = 2;
    arm.options.num_nodes = 4;
    arm.options.use_transport = true;
    arm.options.node_crash_node = 1;
    arm.options.node_crash_at = kMeasureFrom + Days(1) + Hours(18);
    arm.options.node_crash_duration = Days(1);
    arm.options.failure_detection_enabled = detect;
    arms.push_back(std::move(arm));
  }
  std::vector<Result<sim::SimReport>> reports = RunArms(arms);
  for (size_t i = 0; i < arms.size(); ++i) {
    if (!reports[i].ok()) {
      std::printf("FLEET ARM FAILED: %s\n",
                  reports[i].status().ToString().c_str());
      return 1;
    }
    const sim::SimReport& r = *reports[i];
    std::printf("fleet %-8s avail=%" PRIu64 " reactive=%" PRIu64
                " evicted=%" PRIu64 " requeued=%" PRIu64
                " failover_waits=%" PRIu64 " (%" PRIu64 "s) "
                "outage_waits=%" PRIu64 "\n",
                arms[i].label.c_str(), r.kpi.logins_available,
                r.kpi.logins_reactive, r.kpi.forced_evictions,
                r.robustness.failover_requeues,
                r.robustness.failover_waited_logins,
                r.robustness.failover_wait_seconds,
                r.robustness.outage_waited_logins);
  }
  const sim::SimReport& fp = *reports[0];  // passive
  const sim::SimReport& fd = *reports[1];  // detect
  if (fp.kpi.logins_total != fd.kpi.logins_total) {
    std::printf("LOGIN LOSS: passive %" PRIu64 " vs detect %" PRIu64 "\n",
                fp.kpi.logins_total, fd.kpi.logins_total);
    ok = false;
  }
  if (fd.robustness.failover_requeues == 0) {
    std::printf("FLEET DETECT ARM RE-PLACED NOTHING\n");
    ok = false;
  }
  if (fd.kpi.logins_available <= fp.kpi.logins_available) {
    std::printf("QOS REGRESSION: fleet avail %" PRIu64 " (detect) <= %" PRIu64
                " (passive)\n",
                fd.kpi.logins_available, fp.kpi.logins_available);
    ok = false;
  }
  if (fd.robustness.failover_wait_seconds >
      fp.robustness.failover_wait_seconds) {
    std::printf("ATTRIBUTION REGRESSION: failover wait %" PRIu64
                "s (detect) > %" PRIu64 "s (passive)\n",
                fd.robustness.failover_wait_seconds,
                fp.robustness.failover_wait_seconds);
    ok = false;
  }

  if (!out_path.empty()) {
    std::vector<std::pair<std::string, double>> derived = {
        {"detection_delay_p50_s", crash_detect.detection_delay.Percentile(0.50)},
        {"detection_delay_p99_s", crash_detect.detection_delay.Percentile(0.99)},
        {"replacement_delay_p50_s",
         crash_detect.replacement_delay.Percentile(0.50)},
        {"replacement_delay_p99_s",
         crash_detect.replacement_delay.Percentile(0.99)},
        {"crash_login_wait_p99_s_detect",
         crash_detect.login_wait.Percentile(0.99)},
        {"crash_login_wait_p99_s_passive",
         crash_passive.login_wait.Percentile(0.99)},
        {"fleet_logins_available_detect",
         static_cast<double>(fd.kpi.logins_available)},
        {"fleet_logins_available_passive",
         static_cast<double>(fp.kpi.logins_available)},
        {"fleet_failover_wait_s_detect",
         static_cast<double>(fd.robustness.failover_wait_seconds)},
        {"fleet_failover_wait_s_passive",
         static_cast<double>(fp.robustness.failover_wait_seconds)},
        {"fleet_failover_requeues",
         static_cast<double>(fd.robustness.failover_requeues)},
    };
    if (!WriteMicroJson(out_path, "failover", smoke ? "smoke" : "full",
                        rows, derived)) {
      ok = false;
    }
  }
  std::printf(ok ? "FAILOVER BENCH PASSED\n" : "FAILOVER BENCH FAILED\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace prorp::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_failover.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--no-out") {
      out_path.clear();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out=PATH | --no-out]\n", argv[0]);
      return 2;
    }
  }
  return prorp::bench::Run(smoke, std::move(out_path));
}
