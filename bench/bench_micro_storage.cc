// Microbenchmarks of the storage substrate: the clustered B+tree behind
// sys.pause_resume_history, the WAL, and the SQL layer.  Verifies the
// complexity claims of the paper's Section 5 "Complexity Analysis":
// O(log n) insert/search, O(log n + m) range scans.

#include <benchmark/benchmark.h>

#include <cstring>

#include "common/random.h"
#include "history/sql_history_store.h"
#include "sql/database.h"
#include "sql/parser.h"
#include "storage/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"

namespace prorp::storage {
namespace {

std::unique_ptr<BPlusTree> MakeTree(BufferPool& pool, int64_t n) {
  auto tree = BPlusTree::Create(&pool, 8).value();
  Rng rng(42);
  int64_t v = 0;
  for (int64_t i = 0; i < n; ++i) {
    while (true) {
      int64_t key = rng.NextInt(0, n * 16);
      if (tree->Insert(key, reinterpret_cast<const uint8_t*>(&v)).ok()) {
        break;
      }
    }
  }
  return tree;
}

void BM_BPlusTreeInsertSequential(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    InMemoryDiskManager disk;
    BufferPool pool(&disk, 1024);
    auto tree = BPlusTree::Create(&pool, 8).value();
    state.ResumeTiming();
    int64_t v = 0;
    for (int64_t i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(
          tree->Insert(i, reinterpret_cast<const uint8_t*>(&v)));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BPlusTreeInsertSequential)->Arg(1000)->Arg(10000);

void BM_BPlusTreePointLookup(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 1024);
  auto tree = MakeTree(pool, state.range(0));
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree->Find(rng.NextInt(0, state.range(0) * 16)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreePointLookup)->Arg(1000)->Arg(100000);

void BM_BPlusTreeRangeScan100(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 1024);
  auto tree = MakeTree(pool, state.range(0));
  Rng rng(7);
  for (auto _ : state) {
    int64_t lo = rng.NextInt(0, state.range(0) * 16);
    uint64_t count = 0;
    (void)tree->ScanRange(lo, lo + 1600, [&](int64_t, const uint8_t*) {
      ++count;
      return count < 100;
    });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeRangeScan100)->Arg(10000)->Arg(100000);

void BM_WalAppend(benchmark::State& state) {
  std::string path = "/tmp/prorp_bench_wal.log";
  std::remove(path.c_str());
  auto wal = WriteAheadLog::Open(path).value();
  WalRecord rec;
  rec.type = WalRecord::Type::kInsert;
  rec.value.resize(8);
  int64_t key = 0;
  for (auto _ : state) {
    rec.key = key++;
    benchmark::DoNotOptimize(wal->Append(rec));
  }
  state.SetItemsProcessed(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_WalAppend);

void BM_SqlHistoryInsert(benchmark::State& state) {
  // Algorithm 2 end to end: the IF NOT EXISTS probe plus the insert, both
  // through the SQL executor.
  auto store = history::SqlHistoryStore::Open().value();
  EpochSeconds t = 1'600'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store->InsertHistory(t++, history::kEventLogin));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqlHistoryInsert);

void BM_SqlLoginMinMax(benchmark::State& state) {
  // Algorithm 4's inner range query over a realistic history size.
  auto store = history::SqlHistoryStore::Open().value();
  EpochSeconds base = 1'600'000'000;
  for (int i = 0; i < state.range(0); ++i) {
    (void)store->InsertHistory(base + i * 600, i % 2);
  }
  Rng rng(3);
  for (auto _ : state) {
    EpochSeconds lo = base + rng.NextInt(0, state.range(0) * 600);
    benchmark::DoNotOptimize(store->LoginMinMax(lo, lo + Hours(7)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqlLoginMinMax)->Arg(500)->Arg(4000);

void BM_SqlParse(benchmark::State& state) {
  const std::string q =
      "SELECT MIN(time_snapshot), MAX(time_snapshot) FROM "
      "sys.pause_resume_history WHERE event_type = 1 AND "
      "@winStartPrevDay <= time_snapshot AND time_snapshot <= "
      "@winEndPrevDay";
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::Parse(q));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqlParse);

}  // namespace
}  // namespace prorp::storage

BENCHMARK_MAIN();
