// Microbenchmarks of the storage substrate hot path: CRC32 (slice-by-8 vs
// the byte-at-a-time reference), the clustered B+tree behind
// sys.pause_resume_history, the SQL history insert, and the WAL — serial
// buffered appends, serial per-append fsync, and the group-commit path
// under 2/4/8 concurrent appenders.
//
// Unlike the figure harnesses this binary is self-timed (no
// google-benchmark): each workload reports throughput plus exact
// p50/p95/p99 per-op latency, prints a table, and persists
// BENCH_micro_storage.json for the committed perf trajectory.
//
// Usage:
//   bench_micro_storage [--smoke] [--out=PATH]
//
// --smoke shrinks op counts for CI, emits the same JSON, and exits
// non-zero if 8-appender group-commit throughput falls below the serial
// per-append-sync baseline — the regression the group-commit path exists
// to prevent.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "history/sql_history_store.h"
#include "storage/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/crc32.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"

namespace prorp::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Scratch directory for WAL files.  /tmp may be tmpfs on some hosts,
/// which would make fsync free and the serial-vs-group comparison
/// meaningless; prefer the current directory (a real filesystem in CI and
/// dev checkouts) and fall back to /tmp.
std::string WalPath(const std::string& name) {
  std::FILE* probe = std::fopen(("./" + name + ".probe").c_str(), "w");
  if (probe != nullptr) {
    std::fclose(probe);
    std::remove(("./" + name + ".probe").c_str());
    return "./" + name;
  }
  return "/tmp/" + name;
}

/// Times `total_ops` executions of `op` in batches of `batch` (per-op
/// clock reads would distort nanosecond-scale work), recording the mean
/// per-op latency of each batch as one Summary sample.
template <typename Fn>
MicroResult MeasureBatched(std::string name, uint64_t total_ops,
                           uint64_t batch, Fn&& op) {
  MicroResult r;
  r.name = std::move(name);
  Summary lat_us;
  Clock::time_point start = Clock::now();
  for (uint64_t done = 0; done < total_ops;) {
    uint64_t n = std::min(batch, total_ops - done);
    Clock::time_point t0 = Clock::now();
    for (uint64_t i = 0; i < n; ++i) op();
    lat_us.Add(SecondsSince(t0) * 1e6 / static_cast<double>(n));
    done += n;
  }
  r.ops = static_cast<double>(total_ops);
  r.seconds = SecondsSince(start);
  r.p50_us = lat_us.Percentile(0.50);
  r.p95_us = lat_us.Percentile(0.95);
  r.p99_us = lat_us.Percentile(0.99);
  return r;
}

MicroResult BenchCrc32(const std::string& name, uint64_t total_ops,
                       bool slice) {
  Rng rng(11);
  std::vector<uint8_t> buf(4096);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.NextBelow(256));
  volatile uint32_t sink = 0;
  return MeasureBatched(name, total_ops, 64, [&] {
    sink = slice ? storage::internal::Crc32SliceBy8(buf.data(), buf.size())
                 : storage::internal::Crc32ByteAtATime(buf.data(), buf.size());
  });
}

MicroResult BenchBtreeInsert(uint64_t total_ops) {
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 1024);
  auto tree = storage::BPlusTree::Create(&pool, 8).value();
  int64_t v = 0;
  int64_t key = 0;
  return MeasureBatched("btree_insert_sequential", total_ops, 256, [&] {
    (void)tree->Insert(key++, reinterpret_cast<const uint8_t*>(&v));
  });
}

MicroResult BenchBtreeLookup(uint64_t total_ops, int64_t n) {
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 1024);
  auto tree = storage::BPlusTree::Create(&pool, 8).value();
  int64_t v = 0;
  for (int64_t i = 0; i < n; ++i) {
    (void)tree->Insert(i * 16, reinterpret_cast<const uint8_t*>(&v));
  }
  Rng rng(7);
  return MeasureBatched("btree_point_lookup", total_ops, 256, [&] {
    (void)tree->Find(rng.NextInt(0, n * 16));
  });
}

MicroResult BenchBtreeScan(uint64_t total_ops, int64_t n) {
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 1024);
  auto tree = storage::BPlusTree::Create(&pool, 8).value();
  int64_t v = 0;
  for (int64_t i = 0; i < n; ++i) {
    (void)tree->Insert(i * 16, reinterpret_cast<const uint8_t*>(&v));
  }
  Rng rng(7);
  return MeasureBatched("btree_range_scan_100", total_ops, 64, [&] {
    int64_t lo = rng.NextInt(0, n * 16);
    uint64_t count = 0;
    (void)tree->ScanRange(lo, lo + 1600, [&](int64_t, const uint8_t*) {
      ++count;
      return count < 100;
    });
  });
}

MicroResult BenchSqlHistoryInsert(uint64_t total_ops) {
  // Algorithm 2 end to end: the IF NOT EXISTS probe plus the insert, both
  // through the SQL executor.
  auto store = history::SqlHistoryStore::Open().value();
  EpochSeconds t = 1'600'000'000;
  return MeasureBatched("sql_history_insert", total_ops, 64, [&] {
    (void)store->InsertHistory(t++, history::kEventLogin);
  });
}

storage::WalRecord MakeRecord(int64_t key) {
  storage::WalRecord rec;
  rec.type = storage::WalRecord::Type::kInsert;
  rec.key = key;
  rec.value.assign(64, static_cast<uint8_t>(key));
  return rec;
}

MicroResult BenchWalAppendNoSync(uint64_t total_ops) {
  std::string path = WalPath("prorp_bench_wal_nosync.log");
  std::remove(path.c_str());
  auto wal = storage::WriteAheadLog::Open(path).value();
  int64_t key = 0;
  MicroResult r = MeasureBatched("wal_append_nosync", total_ops, 64, [&] {
    (void)wal->Append(MakeRecord(key++));
  });
  wal.reset();
  std::remove(path.c_str());
  return r;
}

MicroResult BenchWalSerialSync(uint64_t total_ops) {
  // The pre-group-commit durability story: one fsync per record.
  std::string path = WalPath("prorp_bench_wal_serial.log");
  std::remove(path.c_str());
  auto wal = storage::WriteAheadLog::Open(path).value();
  int64_t key = 0;
  MicroResult r = MeasureBatched("wal_append_serial_sync", total_ops, 1, [&] {
    (void)wal->Append(MakeRecord(key++));
    (void)wal->Sync();
  });
  wal.reset();
  std::remove(path.c_str());
  return r;
}

MicroResult BenchWalGroupSync(int threads, uint64_t ops_per_thread) {
  std::string path = WalPath("prorp_bench_wal_group.log");
  std::remove(path.c_str());
  auto wal = storage::WriteAheadLog::Open(path).value();

  std::vector<Summary> lat(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  Clock::time_point start = Clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        Clock::time_point t0 = Clock::now();
        (void)wal->AppendDurable(
            MakeRecord(static_cast<int64_t>(t) * 1'000'000 +
                       static_cast<int64_t>(i)));
        lat[t].Add(SecondsSince(t0) * 1e6);
      }
    });
  }
  for (auto& w : workers) w.join();
  double secs = SecondsSince(start);

  Summary all;
  for (const Summary& s : lat) all.Merge(s);
  MicroResult r;
  r.name = "wal_append_group_sync";
  r.threads = threads;
  r.ops = static_cast<double>(ops_per_thread) * threads;
  r.seconds = secs;
  r.p50_us = all.Percentile(0.50);
  r.p95_us = all.Percentile(0.95);
  r.p99_us = all.Percentile(0.99);

  auto stats = wal->group_commit_stats();
  std::printf("  [group %d appenders: %llu records over %llu commits, "
              "max batch %llu]\n",
              threads, static_cast<unsigned long long>(stats.records),
              static_cast<unsigned long long>(stats.commits),
              static_cast<unsigned long long>(stats.max_batch));
  wal.reset();
  std::remove(path.c_str());
  return r;
}

int Run(bool smoke, const std::string& out_path) {
  PrintHeader("micro_storage: history-store hot path",
              "O(log n) tree ops; group commit amortizes fsync across "
              "appenders; slice-by-8 CRC32 is bit-identical but >=4x faster");

  // Smoke keeps CI fast but still exercises every workload; full mode
  // sizes runs so the WAL arms take O(seconds) each.
  const uint64_t kCrcOps = smoke ? 4'000 : 40'000;
  const uint64_t kTreeOps = smoke ? 20'000 : 200'000;
  const uint64_t kSqlOps = smoke ? 2'000 : 20'000;
  const uint64_t kWalNoSync = smoke ? 10'000 : 100'000;
  const uint64_t kWalSerial = smoke ? 400 : 4'000;
  const uint64_t kWalGroupPerThread = smoke ? 400 : 4'000;

  std::vector<MicroResult> results;
  results.push_back(BenchCrc32("crc32_bytewise_4k", kCrcOps, false));
  results.push_back(BenchCrc32("crc32_slice8_4k", kCrcOps, true));
  results.push_back(BenchBtreeInsert(kTreeOps));
  results.push_back(BenchBtreeLookup(kTreeOps, 100'000));
  results.push_back(BenchBtreeScan(kTreeOps / 4, 100'000));
  results.push_back(BenchSqlHistoryInsert(kSqlOps));
  results.push_back(BenchWalAppendNoSync(kWalNoSync));
  results.push_back(BenchWalSerialSync(kWalSerial));
  for (int threads : {2, 4, 8}) {
    results.push_back(BenchWalGroupSync(threads, kWalGroupPerThread));
  }

  for (const MicroResult& r : results) PrintMicroRow(r);

  auto find = [&](const std::string& name, int threads) -> const MicroResult* {
    for (const MicroResult& r : results) {
      if (r.name == name && r.threads == threads) return &r;
    }
    return nullptr;
  };
  const MicroResult* bytewise = find("crc32_bytewise_4k", 1);
  const MicroResult* slice = find("crc32_slice8_4k", 1);
  const MicroResult* serial = find("wal_append_serial_sync", 1);
  const MicroResult* group8 = find("wal_append_group_sync", 8);
  double crc_speedup = slice->ops_per_sec() / bytewise->ops_per_sec();
  double wal_speedup = group8->ops_per_sec() / serial->ops_per_sec();

  std::vector<std::pair<std::string, double>> derived = {
      {"crc32_slice8_vs_bytewise_speedup", crc_speedup},
      {"wal_group8_vs_serial_sync_speedup", wal_speedup},
  };
  std::printf("\nderived: crc32 slice-by-8 %.2fx bytewise; "
              "group commit (8 appenders) %.2fx serial per-append sync\n",
              crc_speedup, wal_speedup);

  if (!out_path.empty() &&
      !WriteMicroJson(out_path, "micro_storage", smoke ? "smoke" : "full",
                      results, derived)) {
    return 2;
  }
  if (!out_path.empty()) {
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (smoke && wal_speedup < 1.0) {
    std::fprintf(stderr,
                 "FAIL: group-commit throughput with 8 appenders "
                 "(%.0f ops/s) fell below the serial per-append-sync "
                 "baseline (%.0f ops/s)\n",
                 group8->ops_per_sec(), serial->ops_per_sec());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace prorp::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_micro_storage.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--no-out") {
      out_path.clear();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out=PATH | --no-out]\n", argv[0]);
      return 2;
    }
  }
  return prorp::bench::Run(smoke, out_path);
}
