// Figure 7: validation across four evaluation days (the paper uses
// September 1-4, 2023, in EU1).  Reproduced as four consecutive simulated
// evaluation days of the EU1 fleet, measured independently.

#include "bench/bench_util.h"

using namespace prorp;         // NOLINT: bench brevity
using namespace prorp::bench;  // NOLINT

int main() {
  PrintHeader("Figure 7: validation across evaluation days (EU1)",
              "per-day QoS reactive 60-68% vs proactive 80-90%; idle "
              "reactive 5-12% vs proactive 7-14%");
  auto region = workload::RegionEU1();
  // One fleet covering all four days; each day measured separately.
  FleetSetup setup = MakeFleet(region, 4000, /*eval_days=*/4);
  std::printf("%-6s %-9s %7s | %7s %7s %7s %7s\n", "day", "policy",
              "QoS%", "idle%", "logic%", "wrong%", "corr%");
  std::vector<Arm> arms;
  for (int day = 0; day < 4; ++day) {
    for (auto mode :
         {policy::PolicyMode::kReactive, policy::PolicyMode::kProactive}) {
      Arm arm;
      arm.traces = &setup.traces;
      arm.options = MakeOptions(setup, mode);
      arm.options.measure_from = kMeasureFrom + Days(day);
      arm.options.end = kMeasureFrom + Days(day + 1);
      arms.push_back(std::move(arm));
    }
  }
  std::vector<Result<sim::SimReport>> reports = RunArms(arms);
  for (size_t i = 0; i < arms.size(); ++i) {
    if (!reports[i].ok()) {
      std::printf("FAILED: %s\n", reports[i].status().ToString().c_str());
      return 1;
    }
    const auto& kpi = reports[i]->kpi;
    auto mode = i % 2 == 0 ? policy::PolicyMode::kReactive
                           : policy::PolicyMode::kProactive;
    std::printf("day %-2d %-9s %7.1f | %7.1f %7.1f %7.1f %7.1f\n",
                static_cast<int>(i / 2) + 1,
                std::string(policy::PolicyModeName(mode)).c_str(),
                kpi.QosAvailablePct(), kpi.IdleTotalPct(),
                kpi.idle_logical_pct, kpi.idle_proactive_wrong_pct,
                kpi.idle_proactive_correct_pct);
  }
  return 0;
}
