// Transport-path microbench: dispatch throughput and ack-resolution
// latency of the control-plane <-> node message stack (DESIGN.md
// section 11), fault-free vs a 1% message-drop wire.
//
// Two arms, each driving one reactive resume workflow per database
// through ManagementService -> TransportDispatcher -> transport ->
// NodeAgent and waiting (on the virtual clock) until the ack resolves it:
//
//   fault-free  InProcessTransport: every ack arrives inline, so the ack
//               delay must be exactly zero and no retransmission or
//               timeout machinery may move — the bit-identity regime.
//   drop_1pct   FaultInjectingTransport dropping 1% of requests and acks:
//               every workflow must still resolve (retransmissions cover
//               the losses), and the virtual ack-delay p99 must stay
//               within two retransmit rounds.
//
// Self-checks gate the exit code, so CI can run this as a smoke step.
// Results persist as BENCH_network.json (--out=PATH / --no-out).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "controlplane/management_service.h"
#include "controlplane/metadata_store.h"
#include "faults/fault_plan.h"
#include "net/dispatcher.h"
#include "net/fault_injecting_transport.h"
#include "net/node_agent.h"
#include "net/transport.h"

namespace prorp::bench {
namespace {

using controlplane::ManagementService;
using controlplane::MetadataStore;
using controlplane::ResumeAttempt;
using telemetry::DbId;

constexpr EpochSeconds kStart = 1'000'000;

double Pct(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t i = static_cast<size_t>(q * static_cast<double>(v.size() - 1));
  return v[i];
}

struct ArmOutcome {
  MicroResult micro;
  double ack_p50_s = 0;  // virtual seconds, dispatch -> resolution
  double ack_p99_s = 0;
  double ack_max_s = 0;
  uint64_t executions = 0;
  uint64_t resumed = 0;
  net::TransportDispatcher::Stats dispatcher;
  bool accounting_ok = false;
  bool drained = true;
};

/// Runs one arm: `n` reactive workflows, each driven to resolution on the
/// virtual clock before the next dispatches (so the per-workflow ack
/// delay is exact).  Wall-clock time around the whole loop yields the
/// real dispatch throughput.
ArmOutcome RunArm(const std::string& name, net::Transport* transport,
                  int n) {
  ArmOutcome out;
  net::TransportDispatcher::Options dopt;
  dopt.retransmit_after = 30;
  dopt.max_transmissions = 4;
  net::TransportDispatcher dispatcher(transport, dopt);

  std::vector<bool> resumed(static_cast<size_t>(n), false);
  net::NodeAgent agent(1, transport,
                       [&out, &resumed](const ResumeAttempt& a,
                                        EpochSeconds) {
                         ++out.executions;
                         if (resumed[a.db]) {
                           return Status::FailedPrecondition(
                               "already resumed");
                         }
                         resumed[a.db] = true;
                         return Status::OK();
                       });

  auto meta = MetadataStore::Open();
  if (!meta.ok()) return out;
  ControlPlaneConfig config;
  config.retry_backoff_base = 60;
  config.retry_backoff_cap = 240;
  auto service = std::make_unique<ManagementService>(
      meta->get(), config,
      [&dispatcher](const ResumeAttempt& a, EpochSeconds now) {
        return dispatcher.DispatchResume(a, now);
      });
  service->set_epoch(1);
  dispatcher.set_service(service.get());
  agent.FenceEpoch(1);

  std::vector<double> op_us;
  std::vector<double> ack_s;
  op_us.reserve(static_cast<size_t>(n));
  ack_s.reserve(static_cast<size_t>(n));

  EpochSeconds now = kStart;
  auto wall_start = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    auto op_start = std::chrono::steady_clock::now();
    const DbId db = static_cast<DbId>(i);
    if (!meta->get()
             ->UpsertState(db, policy::DbState::kPhysicallyPaused, 0)
             .ok()) {
      out.drained = false;
      break;
    }
    const EpochSeconds enqueued = now;
    if (!service->EnqueueReactive(db, now).ok()) {
      out.drained = false;
      break;
    }
    service->Pump(now);
    // Drive the virtual clock until the workflow resolves (the fault-free
    // arm never enters this loop: its ack arrived inside Pump).
    int guard = 0;
    while (service->unacked() != 0 || service->pending_workflows() != 0) {
      now += 10;
      dispatcher.Tick(now);
      service->Pump(now);
      if (++guard > 10'000) {
        out.drained = false;
        break;
      }
    }
    ack_s.push_back(static_cast<double>(now - enqueued));
    op_us.push_back(std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - op_start)
                        .count());
    now += 1;  // workflows dispatch at distinct virtual instants
  }
  double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();

  out.micro.name = name;
  out.micro.ops = static_cast<double>(n);
  out.micro.seconds = wall;
  out.micro.p50_us = Pct(op_us, 0.50);
  out.micro.p95_us = Pct(op_us, 0.95);
  out.micro.p99_us = Pct(op_us, 0.99);
  out.ack_p50_s = Pct(ack_s, 0.50);
  out.ack_p99_s = Pct(ack_s, 0.99);
  out.ack_max_s = ack_s.empty() ? 0 : *std::max_element(ack_s.begin(),
                                                        ack_s.end());
  for (bool r : resumed) out.resumed += r ? 1 : 0;
  out.dispatcher = dispatcher.stats();
  out.accounting_ok = service->AccountingReconciles();
  out.drained = out.drained && service->unacked() == 0 &&
                service->pending_workflows() == 0 && dispatcher.Idle();
  return out;
}

int Run(bool smoke, const std::string& out_path) {
  const int n = smoke ? 2000 : 20000;
  std::printf("# bench_network: %d reactive dispatches per arm "
              "(plane -> dispatcher -> wire -> node agent)\n",
              n);

  net::InProcessTransport clean;
  ArmOutcome fault_free = RunArm("dispatch_fault_free", &clean, n);
  PrintMicroRow(fault_free.micro);

  faults::FaultPlan plan(2024);
  plan.FailWithProbability(faults::FaultOp::kMsgRequest, 0.01,
                           faults::FaultKind::kMsgDrop);
  plan.FailWithProbability(faults::FaultOp::kMsgAck, 0.01,
                           faults::FaultKind::kMsgDrop);
  net::FaultInjectingTransport lossy(&plan);
  ArmOutcome drop = RunArm("dispatch_drop_1pct", &lossy, n);
  PrintMicroRow(drop.micro);

  std::printf("ack delay (virtual s): fault-free p99=%.0f max=%.0f | "
              "1%% drop p50=%.0f p99=%.0f max=%.0f retransmissions=%llu\n",
              fault_free.ack_p99_s, fault_free.ack_max_s, drop.ack_p50_s,
              drop.ack_p99_s, drop.ack_max_s,
              static_cast<unsigned long long>(
                  drop.dispatcher.retransmissions));

  bool ok = true;
  // Fault-free: inline resolution only, nothing on the retry machinery.
  if (fault_free.resumed != static_cast<uint64_t>(n) ||
      fault_free.executions != static_cast<uint64_t>(n)) {
    std::printf("FAULT-FREE LOSS: resumed %llu executions %llu of %d\n",
                static_cast<unsigned long long>(fault_free.resumed),
                static_cast<unsigned long long>(fault_free.executions), n);
    ok = false;
  }
  if (fault_free.dispatcher.inline_acked != static_cast<uint64_t>(n) ||
      fault_free.dispatcher.retransmissions != 0 ||
      fault_free.dispatcher.timeouts != 0 || fault_free.ack_max_s != 0) {
    std::printf("FAULT-FREE WIRE NOT QUIET: inline=%llu retx=%llu "
                "timeouts=%llu ack_max=%.0fs\n",
                static_cast<unsigned long long>(
                    fault_free.dispatcher.inline_acked),
                static_cast<unsigned long long>(
                    fault_free.dispatcher.retransmissions),
                static_cast<unsigned long long>(
                    fault_free.dispatcher.timeouts),
                fault_free.ack_max_s);
    ok = false;
  }
  // 1% drop: every workflow still lands, losses covered by retransmits,
  // and the tail stays within two retransmit rounds.
  if (drop.resumed != static_cast<uint64_t>(n)) {
    std::printf("DROP LOSS: resumed %llu of %d\n",
                static_cast<unsigned long long>(drop.resumed), n);
    ok = false;
  }
  if (drop.dispatcher.retransmissions == 0) {
    std::printf("DROP ARM NEVER RETRANSMITTED (wire not lossy?)\n");
    ok = false;
  }
  if (drop.ack_p99_s > 2 * 30) {
    std::printf("ACK TAIL VIOLATION: p99 %.0fs > %ds\n", drop.ack_p99_s,
                2 * 30);
    ok = false;
  }
  if (!fault_free.accounting_ok || !drop.accounting_ok ||
      !fault_free.drained || !drop.drained) {
    std::printf("ACCOUNTING/DRAIN FAILURE: ff(acct=%d drain=%d) "
                "drop(acct=%d drain=%d)\n",
                fault_free.accounting_ok, fault_free.drained,
                drop.accounting_ok, drop.drained);
    ok = false;
  }

  if (!out_path.empty()) {
    std::vector<std::pair<std::string, double>> derived = {
        {"ack_p99_s_fault_free", fault_free.ack_p99_s},
        {"ack_p99_s_drop_1pct", drop.ack_p99_s},
        {"ack_max_s_drop_1pct", drop.ack_max_s},
        {"retransmissions_drop_1pct",
         static_cast<double>(drop.dispatcher.retransmissions)},
        {"throughput_ratio_drop_vs_clean",
         fault_free.micro.ops_per_sec() > 0
             ? drop.micro.ops_per_sec() / fault_free.micro.ops_per_sec()
             : 0},
    };
    if (!WriteMicroJson(out_path, "network", smoke ? "smoke" : "full",
                        {fault_free.micro, drop.micro}, derived)) {
      ok = false;
    }
  }
  std::printf(ok ? "NETWORK BENCH PASSED\n" : "NETWORK BENCH FAILED\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace prorp::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_network.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--no-out") {
      out_path.clear();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out=PATH | --no-out]\n", argv[0]);
      return 2;
    }
  }
  return prorp::bench::Run(smoke, out_path);
}
