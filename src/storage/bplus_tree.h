#ifndef PRORP_STORAGE_BPLUS_TREE_H_
#define PRORP_STORAGE_BPLUS_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace prorp::storage {

/// A clustered B+tree over 64-bit integer keys with fixed-width opaque
/// values, stored in 4 KiB pages managed by a BufferPool.
///
/// This is the index structure backing sys.pause_resume_history: the paper
/// requires a clustered B-tree index on the time_snapshot column so that
/// point lookups and inserts are O(log n) and the range queries of
/// Algorithms 3 and 4 are O(log n + m) (Section 5, "Complexity Analysis").
///
/// Keys are unique (the history table enforces unique timestamps).  Values
/// are `value_width` bytes; the SQL layer packs non-key columns into them.
///
/// Node layouts live inside the buffer pool's usable payload, so their
/// capacities depend on the pool's page format: checksummed pages lose
/// kPageHeaderSize bytes to the integrity header.  The meta page carries a
/// format version; v2 (checksummed) is what Create writes, v1 files open
/// read-only through a legacy-format pool (see MigrateLegacyTree).
///
/// Single-writer; not internally synchronized.
class BPlusTree {
 public:
  /// Callback for range scans.  Return false to stop the scan early.
  using ScanCallback =
      std::function<bool(int64_t key, const uint8_t* value)>;

  /// Creates a fresh tree in `pool`'s backing store.  The first page
  /// allocated becomes the tree's meta page; `Create` requires an empty
  /// backing store (page 0 not yet allocated).
  static Result<std::unique_ptr<BPlusTree>> Create(BufferPool* pool,
                                                   uint32_t value_width);

  /// Opens an existing tree (meta page 0 must exist and be valid).  The
  /// pool's page format must match the file's: a v2 file needs a
  /// checksummed pool, a v1 file a legacy pool (and opens read-only).
  static Result<std::unique_ptr<BPlusTree>> Open(BufferPool* pool);

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts a unique key.  Returns AlreadyExists if the key is present.
  Status Insert(int64_t key, const uint8_t* value);

  /// Overwrites the value of an existing key.  NotFound if absent.
  Status Update(int64_t key, const uint8_t* value);

  /// Point lookup.  NotFound if absent.
  Result<std::vector<uint8_t>> Find(int64_t key) const;

  bool Contains(int64_t key) const { return Find(key).ok(); }

  /// Removes a key.  NotFound if absent.
  Status Delete(int64_t key);

  /// Visits all entries with lo <= key <= hi in ascending key order.
  Status ScanRange(int64_t lo, int64_t hi, const ScanCallback& cb) const;

  /// Deletes all entries with lo <= key <= hi; returns how many.
  Result<uint64_t> DeleteRange(int64_t lo, int64_t hi);

  /// Number of entries with lo <= key <= hi.
  Result<uint64_t> CountRange(int64_t lo, int64_t hi) const;

  /// Smallest / largest key.  NotFound when the tree is empty.
  Result<int64_t> MinKey() const;
  Result<int64_t> MaxKey() const;

  uint64_t size() const { return num_entries_; }
  bool empty() const { return num_entries_ == 0; }
  uint32_t value_width() const { return value_width_; }

  /// Depth of the tree (1 = root is a leaf).
  Result<uint32_t> Height() const;

  /// Exhaustively validates structural invariants: uniform depth, sorted
  /// unique keys, separator bounds, minimum fill of non-root nodes, and a
  /// sorted leaf chain.  Used by property tests.
  Status CheckInvariants() const;

  /// Maximum number of entries a leaf holds (depends on value_width).
  uint32_t leaf_capacity() const { return leaf_capacity_; }
  /// Maximum number of keys an internal node holds.
  uint32_t internal_capacity() const { return internal_capacity_; }

  /// True for trees opened from a legacy (v1) file: reads work, mutating
  /// operations return FailedPrecondition.
  bool read_only() const { return read_only_; }

 private:
  struct SplitResult {
    bool did_split = false;
    int64_t separator = 0;
    PageId new_page = kInvalidPageId;
  };

  BPlusTree(BufferPool* pool, uint32_t value_width);

  Status LoadMeta();
  Status StoreMeta();

  Result<PageId> AllocNodePage();
  Status FreeNodePage(PageId id);

  Result<SplitResult> InsertRec(PageId node_id, int64_t key,
                                const uint8_t* value);
  Status DeleteRec(PageId node_id, int64_t key);
  Status RebalanceChild(uint8_t* parent, uint32_t child_index);

  /// Finds the leaf that would contain `key`; returns its page id.
  Result<PageId> FindLeaf(int64_t key) const;

  Status CheckSubtree(PageId node_id, uint32_t depth, uint32_t expect_depth,
                      bool is_root, int64_t lower, bool has_lower,
                      int64_t upper, bool has_upper,
                      uint64_t* entries) const;

  BufferPool* pool_;
  uint32_t value_width_;
  uint32_t leaf_capacity_ = 0;
  uint32_t internal_capacity_ = 0;
  PageId root_ = kInvalidPageId;
  PageId free_list_head_ = kInvalidPageId;
  uint64_t num_entries_ = 0;
  bool read_only_ = false;
};

/// Sniffs the on-disk format of an existing tree file by inspecting page 0
/// raw: a sealed page whose payload carries the v2 meta layout is
/// kChecksummedV2, a bare v1 meta page is kLegacyV1.  Errors when the
/// store is empty or page 0 matches neither.
Result<PageFormat> DetectTreeFormat(DiskManager* disk);

/// One-shot migration of a legacy (v1, unchecksummed) tree into the
/// checksummed format.  Node capacities differ between formats, so pages
/// cannot be copied verbatim: the legacy tree is opened read-only and its
/// entries bulk-inserted into a fresh v2 tree created in `dst_pool`
/// (which must be checksummed and backed by an empty store).  Returns the
/// migrated tree; the legacy store is left untouched.
Result<std::unique_ptr<BPlusTree>> MigrateLegacyTree(DiskManager* legacy_disk,
                                                     BufferPool* dst_pool);

}  // namespace prorp::storage

#endif  // PRORP_STORAGE_BPLUS_TREE_H_
