#include "storage/io_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <string>

namespace prorp::storage::io {
namespace {

std::atomic<size_t> g_max_bytes_per_call{0};
std::atomic<uint64_t> g_eintr_burst{0};

/// Returns true when this call should fail with EINTR (test hook).
bool ConsumeEintr() {
  uint64_t n = g_eintr_burst.load(std::memory_order_relaxed);
  while (n > 0) {
    if (g_eintr_burst.compare_exchange_weak(n, n - 1,
                                            std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

size_t ClampChunk(size_t n) {
  size_t cap = g_max_bytes_per_call.load(std::memory_order_relaxed);
  return (cap != 0 && cap < n) ? cap : n;
}

Status Errno(const char* what, const char* verb) {
  return Status::IoError(std::string(what) + ": " + verb + " failed: " +
                         std::strerror(errno));
}

}  // namespace

Status PReadFull(int fd, void* buf, size_t n, off_t off, const char* what) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    if (ConsumeEintr()) {
      errno = EINTR;
      continue;
    }
    ssize_t got = ::pread(fd, p + done, ClampChunk(n - done),
                          off + static_cast<off_t>(done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno(what, "pread");
    }
    if (got == 0) {
      return Status::IoError(std::string(what) + ": short read (" +
                             std::to_string(done) + " of " +
                             std::to_string(n) + " bytes)");
    }
    done += static_cast<size_t>(got);
  }
  return Status::OK();
}

Status PWriteFull(int fd, const void* buf, size_t n, off_t off,
                  const char* what) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    if (ConsumeEintr()) {
      errno = EINTR;
      continue;
    }
    ssize_t put = ::pwrite(fd, p + done, ClampChunk(n - done),
                           off + static_cast<off_t>(done));
    if (put < 0) {
      if (errno == EINTR) continue;
      return Errno(what, "pwrite");
    }
    if (put == 0) {
      return Status::IoError(std::string(what) + ": pwrite made no progress");
    }
    done += static_cast<size_t>(put);
  }
  return Status::OK();
}

Result<size_t> ReadUpTo(int fd, void* buf, size_t n, const char* what) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    if (ConsumeEintr()) {
      errno = EINTR;
      continue;
    }
    ssize_t got = ::read(fd, p + done, ClampChunk(n - done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno(what, "read");
    }
    if (got == 0) break;  // true end-of-file
    done += static_cast<size_t>(got);
  }
  return done;
}

Status WriteFull(int fd, const void* buf, size_t n, const char* what) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    if (ConsumeEintr()) {
      errno = EINTR;
      continue;
    }
    ssize_t put = ::write(fd, p + done, ClampChunk(n - done));
    if (put < 0) {
      if (errno == EINTR) continue;
      return Errno(what, "write");
    }
    if (put == 0) {
      return Status::IoError(std::string(what) + ": write made no progress");
    }
    done += static_cast<size_t>(put);
  }
  return Status::OK();
}

Status SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open parent dir: " + dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError("parent dir fsync failed: " + dir);
  return Status::OK();
}

void SetMaxBytesPerCallForTest(size_t max_bytes) {
  g_max_bytes_per_call.store(max_bytes, std::memory_order_relaxed);
}

void SetEintrBurstForTest(uint64_t count) {
  g_eintr_burst.store(count, std::memory_order_relaxed);
}

void ResetIoFaultsForTest() {
  g_max_bytes_per_call.store(0, std::memory_order_relaxed);
  g_eintr_burst.store(0, std::memory_order_relaxed);
}

}  // namespace prorp::storage::io
