#include "storage/page.h"

#include <cstring>

#include "storage/crc32.h"

namespace prorp::storage {
namespace {

template <typename T>
T Load(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void Store(uint8_t* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

}  // namespace

PageHeader ReadPageHeader(const uint8_t* page) {
  PageHeader h;
  h.crc = Load<uint32_t>(page);
  h.page_id = Load<uint32_t>(page + 4);
  h.lsn = Load<uint64_t>(page + 8);
  return h;
}

uint32_t ComputePageCrc(const uint8_t* page) {
  return Crc32(page + 4, kPageSize - 4);
}

void SealPage(uint8_t* page, PageId id, uint64_t lsn) {
  Store<uint32_t>(page + 4, id);
  Store<uint64_t>(page + 8, lsn);
  Store<uint32_t>(page, ComputePageCrc(page));
}

bool IsAllZeroPage(const uint8_t* page) {
  for (uint32_t i = 0; i < kPageSize; ++i) {
    if (page[i] != 0) return false;
  }
  return true;
}

Status VerifyPage(const uint8_t* page, PageId expected_id,
                  const std::string& file) {
  PageHeader h = ReadPageHeader(page);
  uint32_t actual = ComputePageCrc(page);
  if (IsAllZeroPage(page)) {
    // An all-zero image where a sealed page was expected means the
    // writeback never reached the medium (lost write).
    return Status::Corruption(
        "page image is all zero (lost write)",
        CorruptionContext{expected_id, h.crc, actual, file});
  }
  if (h.crc != actual) {
    return Status::Corruption(
        "page checksum mismatch",
        CorruptionContext{expected_id, h.crc, actual, file});
  }
  if (h.page_id != expected_id) {
    // CRC is intact, so the image is a valid page — just the wrong one:
    // a misdirected read or write.
    return Status::Corruption(
        "page id self-reference mismatch (misdirected I/O)",
        CorruptionContext{expected_id, h.crc, actual, file});
  }
  return Status::OK();
}

}  // namespace prorp::storage
