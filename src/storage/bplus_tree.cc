#include "storage/bplus_tree.h"

#include <cassert>
#include <cstring>

#include "faults/crash_points.h"

namespace prorp::storage {
namespace {

// On-page node layout (little-endian, raw byte access, offsets within the
// buffer pool's usable payload — checksummed pages prepend an integrity
// header below this layer, see storage/page.h):
//   offset 0: uint16 type   (0 = free, 1 = leaf, 2 = internal)
//   offset 2: uint16 count  (leaf: entries; internal: keys)
//   offset 4: uint32 next   (leaf: next leaf page; free: next free page)
//   offset 8: payload
// Leaf payload:     int64 keys[leaf_cap]; uint8 values[leaf_cap][vw]
// Internal payload: int64 keys[int_cap];  uint32 children[int_cap + 1]
//
// Meta page (page 0), format v2 (checksummed — what Create writes):
//   uint32 magic; uint32 version (= 2); uint32 value_width; uint32 root;
//   uint32 free_head; uint64 num_entries
// Meta page, legacy format v1 (read-only; no version field):
//   uint32 magic; uint32 value_width; uint32 root; uint32 free_head;
//   uint64 num_entries

constexpr uint32_t kMagic = 0x50525042;  // "PRPB"
constexpr uint32_t kFormatV2 = 2;
constexpr uint16_t kTypeFree = 0;
constexpr uint16_t kTypeLeaf = 1;
constexpr uint16_t kTypeInternal = 2;
constexpr uint32_t kHeaderSize = 8;

const char* kReadOnlyMsg =
    "legacy (v1) tree file is read-only: migrate it to the checksummed "
    "format with MigrateLegacyTree";

template <typename T>
T Load(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void Store(uint8_t* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

uint16_t NodeType(const uint8_t* p) { return Load<uint16_t>(p); }
void SetNodeType(uint8_t* p, uint16_t t) { Store<uint16_t>(p, t); }
uint16_t NodeCount(const uint8_t* p) { return Load<uint16_t>(p + 2); }
void SetNodeCount(uint8_t* p, uint16_t c) { Store<uint16_t>(p + 2, c); }
PageId NodeNext(const uint8_t* p) { return Load<uint32_t>(p + 4); }
void SetNodeNext(uint8_t* p, PageId n) { Store<uint32_t>(p + 4, n); }

/// Accessors over a leaf page image.
struct LeafView {
  uint8_t* p;
  uint32_t cap;
  uint32_t vw;

  uint16_t count() const { return NodeCount(p); }
  void set_count(uint16_t c) { SetNodeCount(p, c); }
  PageId next() const { return NodeNext(p); }
  void set_next(PageId n) { SetNodeNext(p, n); }

  int64_t key(uint32_t i) const {
    return Load<int64_t>(p + kHeaderSize + i * 8);
  }
  void set_key(uint32_t i, int64_t k) {
    Store<int64_t>(p + kHeaderSize + i * 8, k);
  }
  uint8_t* value(uint32_t i) const {
    return p + kHeaderSize + cap * 8 + i * vw;
  }

  /// First index with key(i) >= k; count() if none.
  uint32_t LowerBound(int64_t k) const {
    uint32_t lo = 0, hi = count();
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      if (key(mid) < k) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  void InsertAt(uint32_t pos, int64_t k, const uint8_t* v) {
    uint32_t n = count();
    std::memmove(p + kHeaderSize + (pos + 1) * 8, p + kHeaderSize + pos * 8,
                 (n - pos) * 8);
    if (vw > 0) {
      std::memmove(value(pos + 1), value(pos), (n - pos) * vw);
      std::memcpy(value(pos), v, vw);
    }
    set_key(pos, k);
    set_count(static_cast<uint16_t>(n + 1));
  }

  void RemoveAt(uint32_t pos) {
    uint32_t n = count();
    std::memmove(p + kHeaderSize + pos * 8, p + kHeaderSize + (pos + 1) * 8,
                 (n - pos - 1) * 8);
    if (vw > 0) {
      std::memmove(value(pos), value(pos + 1), (n - pos - 1) * vw);
    }
    set_count(static_cast<uint16_t>(n - 1));
  }
};

/// Accessors over an internal-node page image.
struct InternalView {
  uint8_t* p;
  uint32_t cap;

  uint16_t count() const { return NodeCount(p); }
  void set_count(uint16_t c) { SetNodeCount(p, c); }

  int64_t key(uint32_t i) const {
    return Load<int64_t>(p + kHeaderSize + i * 8);
  }
  void set_key(uint32_t i, int64_t k) {
    Store<int64_t>(p + kHeaderSize + i * 8, k);
  }
  PageId child(uint32_t i) const {
    return Load<uint32_t>(p + kHeaderSize + cap * 8 + i * 4);
  }
  void set_child(uint32_t i, PageId c) {
    Store<uint32_t>(p + kHeaderSize + cap * 8 + i * 4, c);
  }

  /// Index of the child subtree that would contain `k`: the number of keys
  /// <= k (separator keys are minimums of their right subtrees).
  uint32_t ChildIndexFor(int64_t k) const {
    uint32_t lo = 0, hi = count();
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      if (key(mid) <= k) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Inserts separator `k` at key index `pos` with `new_child` becoming
  /// children[pos + 1].
  void InsertAt(uint32_t pos, int64_t k, PageId new_child) {
    uint32_t n = count();
    std::memmove(p + kHeaderSize + (pos + 1) * 8, p + kHeaderSize + pos * 8,
                 (n - pos) * 8);
    uint8_t* children = p + kHeaderSize + cap * 8;
    std::memmove(children + (pos + 2) * 4, children + (pos + 1) * 4,
                 (n - pos) * 4);
    set_key(pos, k);
    set_child(pos + 1, new_child);
    set_count(static_cast<uint16_t>(n + 1));
  }

  /// Removes separator key `pos` and child pointer `pos + 1`.
  void RemoveAt(uint32_t pos) {
    uint32_t n = count();
    std::memmove(p + kHeaderSize + pos * 8, p + kHeaderSize + (pos + 1) * 8,
                 (n - pos - 1) * 8);
    uint8_t* children = p + kHeaderSize + cap * 8;
    std::memmove(children + (pos + 1) * 4, children + (pos + 2) * 4,
                 (n - pos - 1) * 4);
    set_count(static_cast<uint16_t>(n - 1));
  }
};

}  // namespace

BPlusTree::BPlusTree(BufferPool* pool, uint32_t value_width)
    : pool_(pool), value_width_(value_width) {
  uint32_t usable = pool->usable_size();
  leaf_capacity_ = (usable - kHeaderSize) / (8 + value_width);
  internal_capacity_ = (usable - kHeaderSize - 4) / 12;
}

Result<std::unique_ptr<BPlusTree>> BPlusTree::Create(BufferPool* pool,
                                                     uint32_t value_width) {
  if (pool->format() != PageFormat::kChecksummedV2) {
    return Status::FailedPrecondition(
        "new trees are always created in the checksummed format");
  }
  if (value_width > pool->usable_size() / 4) {
    return Status::InvalidArgument("value_width too large for page size");
  }
  if (pool->disk()->num_pages() != 0) {
    return Status::FailedPrecondition(
        "BPlusTree::Create requires an empty backing store");
  }
  std::unique_ptr<BPlusTree> tree(new BPlusTree(pool, value_width));
  if (tree->leaf_capacity_ < 4 || tree->internal_capacity_ < 4) {
    return Status::InvalidArgument("value_width leaves node capacity < 4");
  }
  PRORP_ASSIGN_OR_RETURN(PageGuard meta, pool->New());
  if (meta.id() != 0) {
    return Status::Internal("meta page must be page 0");
  }
  PRORP_ASSIGN_OR_RETURN(PageGuard root, pool->New());
  uint8_t* rp = root.mutable_data();
  SetNodeType(rp, kTypeLeaf);
  SetNodeCount(rp, 0);
  SetNodeNext(rp, kInvalidPageId);
  tree->root_ = root.id();
  tree->free_list_head_ = kInvalidPageId;
  tree->num_entries_ = 0;
  meta.MarkDirty();
  meta.Release();
  PRORP_RETURN_IF_ERROR(tree->StoreMeta());
  return tree;
}

Result<std::unique_ptr<BPlusTree>> BPlusTree::Open(BufferPool* pool) {
  if (pool->disk()->num_pages() == 0) {
    return Status::NotFound("no meta page: backing store is empty");
  }
  PRORP_ASSIGN_OR_RETURN(PageGuard meta, pool->Fetch(0));
  const uint8_t* mp = meta.data();
  if (Load<uint32_t>(mp) != kMagic) {
    return Status::Corruption("bad B+tree magic");
  }
  bool legacy = pool->format() == PageFormat::kLegacyV1;
  uint32_t value_width = Load<uint32_t>(mp + (legacy ? 4 : 8));
  meta.Release();
  std::unique_ptr<BPlusTree> tree(new BPlusTree(pool, value_width));
  tree->read_only_ = legacy;
  PRORP_RETURN_IF_ERROR(tree->LoadMeta());
  return tree;
}

Status BPlusTree::LoadMeta() {
  PRORP_ASSIGN_OR_RETURN(PageGuard meta, pool_->Fetch(0));
  const uint8_t* mp = meta.data();
  if (Load<uint32_t>(mp) != kMagic) {
    return Status::Corruption("bad B+tree magic");
  }
  uint32_t base;
  if (pool_->format() == PageFormat::kLegacyV1) {
    base = 4;  // v1: no version field
  } else {
    if (Load<uint32_t>(mp + 4) != kFormatV2) {
      return Status::Corruption("unsupported B+tree format version");
    }
    base = 8;
  }
  value_width_ = Load<uint32_t>(mp + base);
  uint32_t usable = pool_->usable_size();
  leaf_capacity_ = (usable - kHeaderSize) / (8 + value_width_);
  internal_capacity_ = (usable - kHeaderSize - 4) / 12;
  root_ = Load<uint32_t>(mp + base + 4);
  free_list_head_ = Load<uint32_t>(mp + base + 8);
  num_entries_ = Load<uint64_t>(mp + base + 12);
  return Status::OK();
}

Status BPlusTree::StoreMeta() {
  PRORP_ASSIGN_OR_RETURN(PageGuard meta, pool_->Fetch(0));
  uint8_t* mp = meta.mutable_data();
  Store<uint32_t>(mp, kMagic);
  Store<uint32_t>(mp + 4, kFormatV2);
  Store<uint32_t>(mp + 8, value_width_);
  Store<uint32_t>(mp + 12, root_);
  Store<uint32_t>(mp + 16, free_list_head_);
  Store<uint64_t>(mp + 20, num_entries_);
  return Status::OK();
}

Result<PageId> BPlusTree::AllocNodePage() {
  if (free_list_head_ != kInvalidPageId) {
    PageId id = free_list_head_;
    PRORP_ASSIGN_OR_RETURN(PageGuard page, pool_->Fetch(id));
    free_list_head_ = NodeNext(page.data());
    return id;
  }
  PRORP_ASSIGN_OR_RETURN(PageGuard page, pool_->New());
  return page.id();
}

Status BPlusTree::FreeNodePage(PageId id) {
  PRORP_ASSIGN_OR_RETURN(PageGuard page, pool_->Fetch(id));
  uint8_t* p = page.mutable_data();
  SetNodeType(p, kTypeFree);
  SetNodeCount(p, 0);
  SetNodeNext(p, free_list_head_);
  free_list_head_ = id;
  return Status::OK();
}

Result<PageId> BPlusTree::FindLeaf(int64_t key) const {
  PageId cur = root_;
  for (;;) {
    PRORP_ASSIGN_OR_RETURN(PageGuard page, pool_->Fetch(cur));
    const uint8_t* p = page.data();
    if (NodeType(p) == kTypeLeaf) return cur;
    if (NodeType(p) != kTypeInternal) {
      return Status::Corruption("unexpected node type in descent");
    }
    InternalView node{const_cast<uint8_t*>(p), internal_capacity_};
    cur = node.child(node.ChildIndexFor(key));
  }
}

Result<std::vector<uint8_t>> BPlusTree::Find(int64_t key) const {
  PRORP_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(key));
  PRORP_ASSIGN_OR_RETURN(PageGuard page, pool_->Fetch(leaf_id));
  LeafView leaf{const_cast<uint8_t*>(page.data()), leaf_capacity_,
                value_width_};
  uint32_t pos = leaf.LowerBound(key);
  if (pos >= leaf.count() || leaf.key(pos) != key) {
    return Status::NotFound("key not found");
  }
  return std::vector<uint8_t>(leaf.value(pos), leaf.value(pos) + value_width_);
}

Status BPlusTree::Update(int64_t key, const uint8_t* value) {
  if (read_only_) return Status::FailedPrecondition(kReadOnlyMsg);
  PRORP_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(key));
  PRORP_ASSIGN_OR_RETURN(PageGuard page, pool_->Fetch(leaf_id));
  LeafView leaf{page.mutable_data(), leaf_capacity_, value_width_};
  uint32_t pos = leaf.LowerBound(key);
  if (pos >= leaf.count() || leaf.key(pos) != key) {
    return Status::NotFound("key not found");
  }
  if (value_width_ > 0) std::memcpy(leaf.value(pos), value, value_width_);
  return Status::OK();
}

Status BPlusTree::Insert(int64_t key, const uint8_t* value) {
  if (read_only_) return Status::FailedPrecondition(kReadOnlyMsg);
  PRORP_ASSIGN_OR_RETURN(SplitResult split, InsertRec(root_, key, value));
  if (split.did_split) {
    // Grow a new root.
    PRORP_ASSIGN_OR_RETURN(PageId new_root_id, AllocNodePage());
    PRORP_ASSIGN_OR_RETURN(PageGuard page, pool_->Fetch(new_root_id));
    uint8_t* p = page.mutable_data();
    SetNodeType(p, kTypeInternal);
    SetNodeCount(p, 1);
    SetNodeNext(p, kInvalidPageId);
    InternalView node{p, internal_capacity_};
    node.set_key(0, split.separator);
    node.set_child(0, root_);
    node.set_child(1, split.new_page);
    root_ = new_root_id;
  }
  ++num_entries_;
  return StoreMeta();
}

Result<BPlusTree::SplitResult> BPlusTree::InsertRec(PageId node_id,
                                                    int64_t key,
                                                    const uint8_t* value) {
  PRORP_ASSIGN_OR_RETURN(PageGuard page, pool_->Fetch(node_id));
  uint8_t* p = const_cast<uint8_t*>(page.data());

  if (NodeType(p) == kTypeLeaf) {
    LeafView leaf{p, leaf_capacity_, value_width_};
    uint32_t pos = leaf.LowerBound(key);
    if (pos < leaf.count() && leaf.key(pos) == key) {
      return Status::AlreadyExists("duplicate key");
    }
    if (leaf.count() < leaf_capacity_) {
      page.MarkDirty();
      leaf.InsertAt(pos, key, value);
      return SplitResult{};
    }
    // Split the full leaf, then insert into the proper half.
    PRORP_ASSIGN_OR_RETURN(PageId right_id, AllocNodePage());
    // Crash simulation: die with the right sibling allocated but not yet
    // linked — the most state-scattered instant of a leaf split.  The
    // mutation never reaches the WAL (apply-then-log), so recovery must
    // reconstruct a tree without it.
    PRORP_CRASH_POINT(faults::kBtreeMidSplit);
    PRORP_ASSIGN_OR_RETURN(PageGuard right_page, pool_->Fetch(right_id));
    uint8_t* rp = right_page.mutable_data();
    SetNodeType(rp, kTypeLeaf);
    SetNodeCount(rp, 0);
    LeafView right{rp, leaf_capacity_, value_width_};
    uint32_t left_count = (leaf_capacity_ + 1) / 2;
    uint32_t move = leaf_capacity_ - left_count;
    std::memcpy(rp + kHeaderSize, p + kHeaderSize + left_count * 8,
                move * 8);
    if (value_width_ > 0) {
      std::memcpy(right.value(0), leaf.value(left_count),
                  move * value_width_);
    }
    right.set_count(static_cast<uint16_t>(move));
    page.MarkDirty();
    leaf.set_count(static_cast<uint16_t>(left_count));
    right.set_next(leaf.next());
    leaf.set_next(right_id);
    if (key < right.key(0)) {
      leaf.InsertAt(leaf.LowerBound(key), key, value);
    } else {
      right.InsertAt(right.LowerBound(key), key, value);
    }
    SplitResult r;
    r.did_split = true;
    r.separator = right.key(0);
    r.new_page = right_id;
    return r;
  }

  if (NodeType(p) != kTypeInternal) {
    return Status::Corruption("unexpected node type during insert");
  }
  InternalView node{p, internal_capacity_};
  uint32_t ci = node.ChildIndexFor(key);
  PageId child_id = node.child(ci);
  // Release before recursing to keep the pinned set small.
  page.Release();
  PRORP_ASSIGN_OR_RETURN(SplitResult child_split,
                         InsertRec(child_id, key, value));
  if (!child_split.did_split) return SplitResult{};

  PRORP_ASSIGN_OR_RETURN(PageGuard page2, pool_->Fetch(node_id));
  uint8_t* p2 = page2.mutable_data();
  InternalView node2{p2, internal_capacity_};
  if (node2.count() < internal_capacity_) {
    node2.InsertAt(ci, child_split.separator, child_split.new_page);
    return SplitResult{};
  }

  // Node is full: materialize keys/children with the new separator
  // inserted, then split around the middle key (which moves up).
  uint32_t n = node2.count();
  std::vector<int64_t> keys(n + 1);
  std::vector<PageId> children(n + 2);
  for (uint32_t i = 0; i < ci; ++i) keys[i] = node2.key(i);
  keys[ci] = child_split.separator;
  for (uint32_t i = ci; i < n; ++i) keys[i + 1] = node2.key(i);
  for (uint32_t i = 0; i <= ci; ++i) children[i] = node2.child(i);
  children[ci + 1] = child_split.new_page;
  for (uint32_t i = ci + 1; i <= n; ++i) children[i + 1] = node2.child(i);

  uint32_t total_keys = n + 1;
  uint32_t left_keys = total_keys / 2;
  int64_t up_key = keys[left_keys];
  uint32_t right_keys = total_keys - left_keys - 1;

  PRORP_ASSIGN_OR_RETURN(PageId right_id, AllocNodePage());
  PRORP_ASSIGN_OR_RETURN(PageGuard right_page, pool_->Fetch(right_id));
  uint8_t* rp = right_page.mutable_data();
  SetNodeType(rp, kTypeInternal);
  SetNodeNext(rp, kInvalidPageId);
  InternalView right{rp, internal_capacity_};
  right.set_count(static_cast<uint16_t>(right_keys));
  for (uint32_t i = 0; i < right_keys; ++i) {
    right.set_key(i, keys[left_keys + 1 + i]);
  }
  for (uint32_t i = 0; i <= right_keys; ++i) {
    right.set_child(i, children[left_keys + 1 + i]);
  }

  node2.set_count(static_cast<uint16_t>(left_keys));
  for (uint32_t i = 0; i < left_keys; ++i) node2.set_key(i, keys[i]);
  for (uint32_t i = 0; i <= left_keys; ++i) node2.set_child(i, children[i]);

  SplitResult r;
  r.did_split = true;
  r.separator = up_key;
  r.new_page = right_id;
  return r;
}

Status BPlusTree::Delete(int64_t key) {
  if (read_only_) return Status::FailedPrecondition(kReadOnlyMsg);
  PRORP_RETURN_IF_ERROR(DeleteRec(root_, key));
  // Shrink the root if it became a pass-through internal node.
  PRORP_ASSIGN_OR_RETURN(PageGuard page, pool_->Fetch(root_));
  const uint8_t* p = page.data();
  if (NodeType(p) == kTypeInternal && NodeCount(p) == 0) {
    InternalView node{const_cast<uint8_t*>(p), internal_capacity_};
    PageId old_root = root_;
    root_ = node.child(0);
    page.Release();
    PRORP_RETURN_IF_ERROR(FreeNodePage(old_root));
  }
  --num_entries_;
  return StoreMeta();
}

Status BPlusTree::DeleteRec(PageId node_id, int64_t key) {
  PRORP_ASSIGN_OR_RETURN(PageGuard page, pool_->Fetch(node_id));
  uint8_t* p = const_cast<uint8_t*>(page.data());

  if (NodeType(p) == kTypeLeaf) {
    LeafView leaf{p, leaf_capacity_, value_width_};
    uint32_t pos = leaf.LowerBound(key);
    if (pos >= leaf.count() || leaf.key(pos) != key) {
      return Status::NotFound("key not found");
    }
    page.MarkDirty();
    leaf.RemoveAt(pos);
    return Status::OK();
  }

  if (NodeType(p) != kTypeInternal) {
    return Status::Corruption("unexpected node type during delete");
  }
  InternalView node{p, internal_capacity_};
  uint32_t ci = node.ChildIndexFor(key);
  PageId child_id = node.child(ci);
  page.Release();
  PRORP_RETURN_IF_ERROR(DeleteRec(child_id, key));

  // Re-fetch and rebalance the child if it underflowed.
  PRORP_ASSIGN_OR_RETURN(PageGuard page2, pool_->Fetch(node_id));
  uint8_t* p2 = const_cast<uint8_t*>(page2.data());
  PRORP_ASSIGN_OR_RETURN(PageGuard child_page, pool_->Fetch(child_id));
  const uint8_t* cp = child_page.data();
  uint32_t min_fill = (NodeType(cp) == kTypeLeaf) ? leaf_capacity_ / 2
                                                  : internal_capacity_ / 2;
  bool underflow = NodeCount(cp) < min_fill;
  child_page.Release();
  if (!underflow) return Status::OK();
  page2.MarkDirty();
  return RebalanceChild(p2, ci);
}

Status BPlusTree::RebalanceChild(uint8_t* parent, uint32_t child_index) {
  InternalView par{parent, internal_capacity_};
  PageId child_id = par.child(child_index);
  PRORP_ASSIGN_OR_RETURN(PageGuard child_page, pool_->Fetch(child_id));
  uint8_t* cp = const_cast<uint8_t*>(child_page.data());
  bool child_is_leaf = NodeType(cp) == kTypeLeaf;
  uint32_t min_fill = child_is_leaf ? leaf_capacity_ / 2
                                    : internal_capacity_ / 2;

  // Try to borrow from the left sibling.
  if (child_index > 0) {
    PageId left_id = par.child(child_index - 1);
    PRORP_ASSIGN_OR_RETURN(PageGuard left_page, pool_->Fetch(left_id));
    uint8_t* lp = const_cast<uint8_t*>(left_page.data());
    if (NodeCount(lp) > min_fill) {
      child_page.MarkDirty();
      left_page.MarkDirty();
      if (child_is_leaf) {
        LeafView child{cp, leaf_capacity_, value_width_};
        LeafView left{lp, leaf_capacity_, value_width_};
        uint32_t last = left.count() - 1;
        child.InsertAt(0, left.key(last), left.value(last));
        left.RemoveAt(last);
        par.set_key(child_index - 1, child.key(0));
      } else {
        InternalView child{cp, internal_capacity_};
        InternalView left{lp, internal_capacity_};
        uint32_t n = child.count();
        // Shift child right by one (keys and children).
        for (uint32_t i = n; i > 0; --i) child.set_key(i, child.key(i - 1));
        for (uint32_t i = n + 1; i > 0; --i) {
          child.set_child(i, child.child(i - 1));
        }
        child.set_key(0, par.key(child_index - 1));
        child.set_child(0, left.child(left.count()));
        child.set_count(static_cast<uint16_t>(n + 1));
        par.set_key(child_index - 1, left.key(left.count() - 1));
        left.set_count(static_cast<uint16_t>(left.count() - 1));
      }
      return Status::OK();
    }
  }

  // Try to borrow from the right sibling.
  if (child_index < par.count()) {
    PageId right_id = par.child(child_index + 1);
    PRORP_ASSIGN_OR_RETURN(PageGuard right_page, pool_->Fetch(right_id));
    uint8_t* rp = const_cast<uint8_t*>(right_page.data());
    if (NodeCount(rp) > min_fill) {
      child_page.MarkDirty();
      right_page.MarkDirty();
      if (child_is_leaf) {
        LeafView child{cp, leaf_capacity_, value_width_};
        LeafView right{rp, leaf_capacity_, value_width_};
        child.InsertAt(child.count(), right.key(0), right.value(0));
        right.RemoveAt(0);
        par.set_key(child_index, right.key(0));
      } else {
        InternalView child{cp, internal_capacity_};
        InternalView right{rp, internal_capacity_};
        uint32_t n = child.count();
        child.set_key(n, par.key(child_index));
        child.set_child(n + 1, right.child(0));
        child.set_count(static_cast<uint16_t>(n + 1));
        par.set_key(child_index, right.key(0));
        uint32_t rn = right.count();
        for (uint32_t i = 0; i + 1 < rn; ++i) {
          right.set_key(i, right.key(i + 1));
        }
        for (uint32_t i = 0; i < rn; ++i) {
          right.set_child(i, right.child(i + 1));
        }
        right.set_count(static_cast<uint16_t>(rn - 1));
      }
      return Status::OK();
    }
  }

  // Merge with a sibling.  Prefer merging into the left sibling.
  uint32_t sep_idx;
  PageId left_id, right_id;
  if (child_index > 0) {
    sep_idx = child_index - 1;
    left_id = par.child(child_index - 1);
    right_id = child_id;
  } else {
    sep_idx = child_index;
    left_id = child_id;
    right_id = par.child(child_index + 1);
  }
  child_page.Release();
  PRORP_ASSIGN_OR_RETURN(PageGuard left_page, pool_->Fetch(left_id));
  PRORP_ASSIGN_OR_RETURN(PageGuard right_page, pool_->Fetch(right_id));
  uint8_t* lp = left_page.mutable_data();
  uint8_t* rp = const_cast<uint8_t*>(right_page.data());

  if (NodeType(lp) == kTypeLeaf) {
    LeafView left{lp, leaf_capacity_, value_width_};
    LeafView right{rp, leaf_capacity_, value_width_};
    uint32_t ln = left.count();
    uint32_t rn = right.count();
    std::memcpy(lp + kHeaderSize + ln * 8, rp + kHeaderSize, rn * 8);
    if (value_width_ > 0) {
      std::memcpy(left.value(ln), right.value(0), rn * value_width_);
    }
    left.set_count(static_cast<uint16_t>(ln + rn));
    left.set_next(right.next());
  } else {
    InternalView left{lp, internal_capacity_};
    InternalView right{rp, internal_capacity_};
    uint32_t ln = left.count();
    uint32_t rn = right.count();
    left.set_key(ln, par.key(sep_idx));
    for (uint32_t i = 0; i < rn; ++i) left.set_key(ln + 1 + i, right.key(i));
    for (uint32_t i = 0; i <= rn; ++i) {
      left.set_child(ln + 1 + i, right.child(i));
    }
    left.set_count(static_cast<uint16_t>(ln + 1 + rn));
  }
  right_page.Release();
  PRORP_RETURN_IF_ERROR(FreeNodePage(right_id));
  par.RemoveAt(sep_idx);
  return Status::OK();
}

Status BPlusTree::ScanRange(int64_t lo, int64_t hi,
                            const ScanCallback& cb) const {
  if (lo > hi || num_entries_ == 0) return Status::OK();
  PRORP_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(lo));
  PageId cur = leaf_id;
  while (cur != kInvalidPageId) {
    PRORP_ASSIGN_OR_RETURN(PageGuard page, pool_->Fetch(cur));
    LeafView leaf{const_cast<uint8_t*>(page.data()), leaf_capacity_,
                  value_width_};
    uint32_t pos = leaf.LowerBound(lo);
    for (uint32_t i = pos; i < leaf.count(); ++i) {
      int64_t k = leaf.key(i);
      if (k > hi) return Status::OK();
      if (!cb(k, leaf.value(i))) return Status::OK();
    }
    cur = leaf.next();
  }
  return Status::OK();
}

Result<uint64_t> BPlusTree::DeleteRange(int64_t lo, int64_t hi) {
  std::vector<int64_t> keys;
  PRORP_RETURN_IF_ERROR(ScanRange(lo, hi, [&](int64_t k, const uint8_t*) {
    keys.push_back(k);
    return true;
  }));
  for (int64_t k : keys) {
    PRORP_RETURN_IF_ERROR(Delete(k));
  }
  return static_cast<uint64_t>(keys.size());
}

Result<uint64_t> BPlusTree::CountRange(int64_t lo, int64_t hi) const {
  uint64_t count = 0;
  PRORP_RETURN_IF_ERROR(ScanRange(lo, hi, [&](int64_t, const uint8_t*) {
    ++count;
    return true;
  }));
  return count;
}

Result<int64_t> BPlusTree::MinKey() const {
  if (num_entries_ == 0) return Status::NotFound("tree is empty");
  PageId cur = root_;
  for (;;) {
    PRORP_ASSIGN_OR_RETURN(PageGuard page, pool_->Fetch(cur));
    const uint8_t* p = page.data();
    if (NodeType(p) == kTypeLeaf) {
      LeafView leaf{const_cast<uint8_t*>(p), leaf_capacity_, value_width_};
      if (leaf.count() == 0) return Status::Corruption("empty leaf on path");
      return leaf.key(0);
    }
    InternalView node{const_cast<uint8_t*>(p), internal_capacity_};
    cur = node.child(0);
  }
}

Result<int64_t> BPlusTree::MaxKey() const {
  if (num_entries_ == 0) return Status::NotFound("tree is empty");
  PageId cur = root_;
  for (;;) {
    PRORP_ASSIGN_OR_RETURN(PageGuard page, pool_->Fetch(cur));
    const uint8_t* p = page.data();
    if (NodeType(p) == kTypeLeaf) {
      LeafView leaf{const_cast<uint8_t*>(p), leaf_capacity_, value_width_};
      if (leaf.count() == 0) return Status::Corruption("empty leaf on path");
      return leaf.key(leaf.count() - 1);
    }
    InternalView node{const_cast<uint8_t*>(p), internal_capacity_};
    cur = node.child(node.count());
  }
}

Result<uint32_t> BPlusTree::Height() const {
  uint32_t height = 1;
  PageId cur = root_;
  for (;;) {
    PRORP_ASSIGN_OR_RETURN(PageGuard page, pool_->Fetch(cur));
    const uint8_t* p = page.data();
    if (NodeType(p) == kTypeLeaf) return height;
    InternalView node{const_cast<uint8_t*>(p), internal_capacity_};
    cur = node.child(0);
    ++height;
  }
}

Status BPlusTree::CheckInvariants() const {
  PRORP_ASSIGN_OR_RETURN(uint32_t depth, Height());
  uint64_t entries = 0;
  PRORP_RETURN_IF_ERROR(CheckSubtree(root_, 1, depth, /*is_root=*/true,
                                     0, false, 0, false, &entries));
  if (entries != num_entries_) {
    return Status::Corruption("entry count mismatch vs meta");
  }
  // Verify the leaf chain is globally sorted and complete.
  if (num_entries_ > 0) {
    PRORP_ASSIGN_OR_RETURN(int64_t min_key, MinKey());
    PRORP_ASSIGN_OR_RETURN(PageId cur, FindLeaf(min_key));
    uint64_t seen = 0;
    bool have_prev = false;
    int64_t prev = 0;
    while (cur != kInvalidPageId) {
      PRORP_ASSIGN_OR_RETURN(PageGuard page, pool_->Fetch(cur));
      LeafView leaf{const_cast<uint8_t*>(page.data()), leaf_capacity_,
                    value_width_};
      for (uint32_t i = 0; i < leaf.count(); ++i) {
        if (have_prev && leaf.key(i) <= prev) {
          return Status::Corruption("leaf chain not strictly ascending");
        }
        prev = leaf.key(i);
        have_prev = true;
        ++seen;
      }
      cur = leaf.next();
    }
    if (seen != num_entries_) {
      return Status::Corruption("leaf chain entry count mismatch");
    }
  }
  return Status::OK();
}

Status BPlusTree::CheckSubtree(PageId node_id, uint32_t depth,
                               uint32_t expect_depth, bool is_root,
                               int64_t lower, bool has_lower, int64_t upper,
                               bool has_upper, uint64_t* entries) const {
  PRORP_ASSIGN_OR_RETURN(PageGuard page, pool_->Fetch(node_id));
  const uint8_t* p = page.data();
  uint16_t type = NodeType(p);
  uint16_t count = NodeCount(p);

  if (type == kTypeLeaf) {
    if (depth != expect_depth) {
      return Status::Corruption("leaf at wrong depth");
    }
    LeafView leaf{const_cast<uint8_t*>(p), leaf_capacity_, value_width_};
    if (!is_root && count < leaf_capacity_ / 2) {
      return Status::Corruption("leaf underfull");
    }
    if (count > leaf_capacity_) return Status::Corruption("leaf overfull");
    for (uint32_t i = 0; i < count; ++i) {
      int64_t k = leaf.key(i);
      if (i > 0 && k <= leaf.key(i - 1)) {
        return Status::Corruption("leaf keys not strictly ascending");
      }
      if (has_lower && k < lower) return Status::Corruption("key < lower");
      if (has_upper && k >= upper) return Status::Corruption("key >= upper");
    }
    *entries += count;
    return Status::OK();
  }

  if (type != kTypeInternal) {
    return Status::Corruption("unexpected node type");
  }
  if (depth >= expect_depth) {
    return Status::Corruption("internal node at leaf depth");
  }
  InternalView node{const_cast<uint8_t*>(p), internal_capacity_};
  uint32_t min_keys = is_root ? 1 : internal_capacity_ / 2;
  if (count < min_keys) return Status::Corruption("internal underfull");
  if (count > internal_capacity_) {
    return Status::Corruption("internal overfull");
  }
  for (uint32_t i = 0; i < count; ++i) {
    int64_t k = node.key(i);
    if (i > 0 && k <= node.key(i - 1)) {
      return Status::Corruption("internal keys not strictly ascending");
    }
    if (has_lower && k < lower) {
      return Status::Corruption("separator < lower");
    }
    if (has_upper && k >= upper) {
      return Status::Corruption("separator >= upper");
    }
  }
  // Copy out children and key bounds before recursing (the guard's frame
  // may be evicted during recursion).
  std::vector<PageId> children(count + 1);
  std::vector<int64_t> keys(count);
  for (uint32_t i = 0; i <= count; ++i) children[i] = node.child(i);
  for (uint32_t i = 0; i < count; ++i) keys[i] = node.key(i);
  page.Release();
  for (uint32_t i = 0; i <= count; ++i) {
    int64_t child_lower = (i == 0) ? lower : keys[i - 1];
    bool child_has_lower = (i == 0) ? has_lower : true;
    int64_t child_upper = (i == count) ? upper : keys[i];
    bool child_has_upper = (i == count) ? has_upper : true;
    PRORP_RETURN_IF_ERROR(CheckSubtree(
        children[i], depth + 1, expect_depth, /*is_root=*/false, child_lower,
        child_has_lower, child_upper, child_has_upper, entries));
  }
  return Status::OK();
}

Result<PageFormat> DetectTreeFormat(DiskManager* disk) {
  if (disk->num_pages() == 0) {
    return Status::NotFound("no meta page: backing store is empty");
  }
  uint8_t raw[kPageSize];
  PRORP_RETURN_IF_ERROR(disk->Read(0, raw));
  // A sealed v2 meta page verifies against its header and carries the
  // magic + version at the payload offset.
  if (VerifyPage(raw, 0, disk->path()).ok() &&
      Load<uint32_t>(raw + kPageHeaderSize) == kMagic &&
      Load<uint32_t>(raw + kPageHeaderSize + 4) == kFormatV2) {
    return PageFormat::kChecksummedV2;
  }
  if (Load<uint32_t>(raw) == kMagic) {
    return PageFormat::kLegacyV1;
  }
  return Status::Corruption("page 0 matches no known tree format",
                            CorruptionContext{0, 0, 0, disk->path()});
}

Result<std::unique_ptr<BPlusTree>> MigrateLegacyTree(DiskManager* legacy_disk,
                                                     BufferPool* dst_pool) {
  if (dst_pool->format() != PageFormat::kChecksummedV2) {
    return Status::InvalidArgument(
        "migration destination pool must use the checksummed format");
  }
  BufferPool legacy_pool(legacy_disk, 64, PageFormat::kLegacyV1);
  PRORP_ASSIGN_OR_RETURN(std::unique_ptr<BPlusTree> src,
                         BPlusTree::Open(&legacy_pool));
  PRORP_ASSIGN_OR_RETURN(std::unique_ptr<BPlusTree> dst,
                         BPlusTree::Create(dst_pool, src->value_width()));
  Status insert_status = Status::OK();
  PRORP_RETURN_IF_ERROR(src->ScanRange(
      INT64_MIN, INT64_MAX, [&](int64_t key, const uint8_t* value) {
        insert_status = dst->Insert(key, value);
        return insert_status.ok();
      }));
  PRORP_RETURN_IF_ERROR(insert_status);
  if (dst->size() != src->size()) {
    return Status::Internal("migration lost entries");
  }
  return dst;
}

}  // namespace prorp::storage
