#include "storage/scrubber.h"

#include <cstdio>

namespace prorp::storage {
namespace {

void AddIssue(ScrubReport* report, PageId id, std::string detail) {
  if (report->issues.size() < kMaxScrubIssues) {
    report->issues.push_back(ScrubIssue{id, std::move(detail)});
  }
}

}  // namespace

std::string ScrubReport::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "scrub: pages=%llu unwritten=%llu crc_errors=%llu "
                "id_errors=%llu structural_errors=%llu max_lsn=%llu",
                static_cast<unsigned long long>(pages_scanned),
                static_cast<unsigned long long>(pages_unwritten),
                static_cast<unsigned long long>(checksum_errors),
                static_cast<unsigned long long>(page_id_errors),
                static_cast<unsigned long long>(structural_errors),
                static_cast<unsigned long long>(max_lsn));
  std::string out(buf);
  for (const ScrubIssue& issue : issues) {
    out += "\n  page ";
    out += std::to_string(issue.page_id);
    out += ": ";
    out += issue.detail;
  }
  return out;
}

Result<ScrubReport> ScrubPages(DiskManager* disk) {
  ScrubReport report;
  std::vector<uint8_t> buf(kPageSize);
  uint32_t n = disk->num_pages();
  for (PageId id = 0; id < n; ++id) {
    PRORP_RETURN_IF_ERROR(disk->Read(id, buf.data()));
    ++report.pages_scanned;
    if (IsAllZeroPage(buf.data())) {
      ++report.pages_unwritten;
      continue;
    }
    PageHeader h = ReadPageHeader(buf.data());
    uint32_t actual = ComputePageCrc(buf.data());
    if (h.crc != actual) {
      ++report.checksum_errors;
      char detail[96];
      std::snprintf(detail, sizeof(detail),
                    "checksum mismatch: header %08x, bytes hash to %08x",
                    h.crc, actual);
      AddIssue(&report, id, detail);
      continue;
    }
    if (h.page_id != id) {
      ++report.page_id_errors;
      char detail[96];
      std::snprintf(detail, sizeof(detail),
                    "page-id self-reference mismatch: header says %u",
                    h.page_id);
      AddIssue(&report, id, detail);
      continue;
    }
    if (h.lsn > report.max_lsn) report.max_lsn = h.lsn;
  }
  return report;
}

Result<ScrubReport> ScrubTree(BufferPool* pool, const BPlusTree* tree) {
  // Dirty frames would make the file disagree with the cached truth and
  // show up as false positives; write them out first.
  PRORP_RETURN_IF_ERROR(pool->FlushAll());

  ScrubReport report;
  if (pool->format() == PageFormat::kChecksummedV2) {
    PRORP_ASSIGN_OR_RETURN(report, ScrubPages(pool->disk()));
  } else {
    report.pages_scanned = pool->disk()->num_pages();
  }

  // Structural pass.  CheckInvariants fetches through the pool, so every
  // page it touches is checksum-verified on the way in as well.
  Status s = tree->CheckInvariants();
  if (!s.ok()) {
    ++report.structural_errors;
    PageId id = kInvalidPageId;
    if (const CorruptionContext* ctx = s.corruption_context()) {
      id = ctx->page_id;
    }
    AddIssue(&report, id, s.ToString());
  }
  return report;
}

}  // namespace prorp::storage
