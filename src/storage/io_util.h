#ifndef PRORP_STORAGE_IO_UTIL_H_
#define PRORP_STORAGE_IO_UTIL_H_

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace prorp::storage::io {

/// Full-transfer syscall wrappers.  POSIX allows pread/pwrite/read/write
/// to transfer fewer bytes than requested (signal interruption, pipe-ish
/// media, RLIMIT_FSIZE edges) and to fail outright with EINTR.  The
/// storage engine treats any partial transfer of a page or WAL frame as
/// an I/O error, so every call site goes through these wrappers, which
/// retry on EINTR and resume after short transfers until the full count
/// is moved or a real error occurs.
///
/// `what` names the caller in error messages ("WAL append", "page read").

/// Reads exactly `n` bytes at `off`.  Hitting end-of-file before `n`
/// bytes is an IoError (pages and frames are never legitimately split by
/// EOF at these call sites).
Status PReadFull(int fd, void* buf, size_t n, off_t off, const char* what);

/// Writes exactly `n` bytes at `off`.
Status PWriteFull(int fd, const void* buf, size_t n, off_t off,
                  const char* what);

/// Reads up to `n` bytes from the current offset, retrying EINTR and
/// resuming after short reads.  Returns the number of bytes actually
/// read, which is < `n` only at end-of-file.  The WAL replay loop uses
/// this: a genuinely missing tail is a torn record, but a signal must
/// not masquerade as one.
Result<size_t> ReadUpTo(int fd, void* buf, size_t n, const char* what);

/// Writes exactly `n` bytes at the current offset (append-mode fds).
Status WriteFull(int fd, const void* buf, size_t n, const char* what);

/// fsyncs the directory containing `path`, making the entry itself (a
/// rename or creation) durable.  Every atomic-publish writer (snapshots,
/// control-plane checkpoints) needs this: without it a crash can roll the
/// directory entry back even though the data blocks were synced.
Status SyncParentDir(const std::string& path);

// ---------------------------------------------------------------------------
// Test-only fault interposition
// ---------------------------------------------------------------------------

/// Caps the bytes any single underlying syscall transfers (0 = no cap).
/// Lets tests prove the wrappers reassemble partial transfers.
void SetMaxBytesPerCallForTest(size_t max_bytes);

/// Makes the next `count` underlying syscalls fail with EINTR before
/// touching the fd.  Decrements per intercepted call across all wrappers.
void SetEintrBurstForTest(uint64_t count);

/// Clears both interposition hooks.
void ResetIoFaultsForTest();

}  // namespace prorp::storage::io

#endif  // PRORP_STORAGE_IO_UTIL_H_
