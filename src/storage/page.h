#ifndef PRORP_STORAGE_PAGE_H_
#define PRORP_STORAGE_PAGE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace prorp::storage {

/// Fixed database page size.  4 KiB matches the common unit of the SQL
/// Server storage engine family the paper's history table lives in.
inline constexpr uint32_t kPageSize = 4096;

/// Pages are addressed by dense 32-bit ids starting at 0.
using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// On-disk page formats.  The buffer pool owns the format: disk managers
/// move raw kPageSize blobs either way.
///
/// kChecksummedV2 prefixes every page with a 16-byte integrity header
/// (below); clients see kPageUsableSize bytes of payload.  kLegacyV1 is
/// the pre-header format — the full page is payload and nothing is
/// verified.  Legacy files open read-only; MigrateLegacyTree rebuilds
/// them into the checksummed format (capacities differ, so pages cannot
/// be copied verbatim).
enum class PageFormat : uint32_t {
  kLegacyV1 = 1,
  kChecksummedV2 = 2,
};

/// Integrity header prefixed to every checksummed page:
///   offset  0: uint32 crc      CRC-32 over bytes [4, kPageSize)
///   offset  4: uint32 page_id  the page's own id (catches misdirected I/O)
///   offset  8: uint64 lsn      last-writer LSN (diagnostics)
/// The CRC covers the id and LSN as well as the payload, so a flip
/// anywhere in the page — header included — fails verification.
inline constexpr uint32_t kPageHeaderSize = 16;
inline constexpr uint32_t kPageUsableSize = kPageSize - kPageHeaderSize;

struct PageHeader {
  uint32_t crc = 0;
  PageId page_id = kInvalidPageId;
  uint64_t lsn = 0;
};

/// Decodes the header from a raw kPageSize image.
PageHeader ReadPageHeader(const uint8_t* page);

/// CRC-32 over bytes [4, kPageSize) of a raw page image — what the header
/// crc field must equal.
uint32_t ComputePageCrc(const uint8_t* page);

/// Stamps the header (id, lsn, then crc) into a raw page image.  Called by
/// the buffer pool on every writeback.
void SealPage(uint8_t* page, PageId id, uint64_t lsn);

/// True when all kPageSize bytes are zero: a page the disk manager
/// allocated but that never saw a writeback.  The scrubber counts these
/// separately instead of flagging them.
bool IsAllZeroPage(const uint8_t* page);

/// Verifies a raw page image read from disk: non-zero, crc matches, and
/// the header's page_id is `expected_id`.  Returns OK or a Corruption
/// status carrying structured context (page id, expected/actual CRC,
/// `file` naming the backing store).
Status VerifyPage(const uint8_t* page, PageId expected_id,
                  const std::string& file);

}  // namespace prorp::storage

#endif  // PRORP_STORAGE_PAGE_H_
