#ifndef PRORP_STORAGE_PAGE_H_
#define PRORP_STORAGE_PAGE_H_

#include <cstdint>

namespace prorp::storage {

/// Fixed database page size.  4 KiB matches the common unit of the SQL
/// Server storage engine family the paper's history table lives in.
inline constexpr uint32_t kPageSize = 4096;

/// Pages are addressed by dense 32-bit ids starting at 0.
using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

}  // namespace prorp::storage

#endif  // PRORP_STORAGE_PAGE_H_
