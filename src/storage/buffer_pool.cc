#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

namespace prorp::storage {

void PageGuard::MarkDirty() {
  if (pool_ != nullptr) pool_->SetDirty(id_);
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity, PageFormat format)
    : disk_(disk), capacity_(capacity < 2 ? 2 : capacity), format_(format) {
  frames_.resize(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    frames_[i].data = std::make_unique<uint8_t[]>(kPageSize);
    free_frames_.push_back(capacity_ - 1 - i);
  }
}

BufferPool::~BufferPool() {
  // Best-effort writeback; errors here have nowhere to go.
  (void)FlushAll();
}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    ++stats_.hits;
    Frame& f = frames_[it->second];
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pin_count;
    return PageGuard(this, id, f.data.get() + payload_offset());
  }
  ++stats_.misses;
  PRORP_ASSIGN_OR_RETURN(size_t frame_idx, AcquireFrame());
  Frame& f = frames_[frame_idx];
  Status s = disk_->Read(id, f.data.get());
  if (!s.ok()) {
    free_frames_.push_back(frame_idx);
    return s;
  }
  if (format_ == PageFormat::kChecksummedV2) {
    ++stats_.pages_verified;
    Status v = VerifyPage(f.data.get(), id, disk_->path());
    if (!v.ok()) {
      // The corrupt image never reaches a caller: drop the frame so a
      // retry after repair re-reads from disk.
      ++stats_.checksum_failures;
      free_frames_.push_back(frame_idx);
      return v;
    }
  }
  f.id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.in_lru = false;
  page_to_frame_[id] = frame_idx;
  return PageGuard(this, id, f.data.get() + payload_offset());
}

Result<PageGuard> BufferPool::New() {
  PRORP_ASSIGN_OR_RETURN(PageId id, disk_->Allocate());
  Result<size_t> frame = AcquireFrame();
  if (!frame.ok()) {
    // All frames pinned: hand the fresh id back so it is not leaked.
    (void)disk_->Release(id);
    return frame.status();
  }
  size_t frame_idx = frame.value();
  Frame& f = frames_[frame_idx];
  std::memset(f.data.get(), 0, kPageSize);
  f.id = id;
  f.pin_count = 1;
  // The zeroed image must reach disk even if never otherwise written.
  f.dirty = true;
  f.in_lru = false;
  page_to_frame_[id] = frame_idx;
  return PageGuard(this, id, f.data.get() + payload_offset());
}

Status BufferPool::WriteBack(Frame& f) {
  if (format_ == PageFormat::kChecksummedV2) {
    SealPage(f.data.get(), f.id, current_lsn_);
    ++stats_.pages_sealed;
  }
  PRORP_RETURN_IF_ERROR(disk_->Write(f.id, f.data.get()));
  ++stats_.dirty_writebacks;
  f.dirty = false;
  return Status::OK();
}

Status BufferPool::Flush(PageId id) {
  auto it = page_to_frame_.find(id);
  if (it == page_to_frame_.end()) return Status::OK();
  Frame& f = frames_[it->second];
  if (f.dirty) {
    PRORP_RETURN_IF_ERROR(WriteBack(f));
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.id != kInvalidPageId && f.dirty) {
      PRORP_RETURN_IF_ERROR(WriteBack(f));
    }
  }
  return Status::OK();
}

void BufferPool::Unpin(PageId id) {
  auto it = page_to_frame_.find(id);
  assert(it != page_to_frame_.end());
  Frame& f = frames_[it->second];
  assert(f.pin_count > 0);
  if (--f.pin_count == 0) {
    lru_.push_back(it->second);
    f.lru_pos = std::prev(lru_.end());
    f.in_lru = true;
  }
}

void BufferPool::SetDirty(PageId id) {
  auto it = page_to_frame_.find(id);
  assert(it != page_to_frame_.end());
  frames_[it->second].dirty = true;
}

Result<size_t> BufferPool::AcquireFrame() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted(
        "buffer pool exhausted: all frames pinned");
  }
  size_t victim = lru_.front();
  lru_.pop_front();
  Frame& f = frames_[victim];
  f.in_lru = false;
  if (f.dirty) {
    PRORP_RETURN_IF_ERROR(WriteBack(f));
  }
  page_to_frame_.erase(f.id);
  f.id = kInvalidPageId;
  ++stats_.evictions;
  return victim;
}

}  // namespace prorp::storage
