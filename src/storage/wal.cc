#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "faults/crash_points.h"
#include "storage/crc32.h"
#include "storage/io_util.h"

namespace prorp::storage {
namespace {

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out.insert(out.end(), p, p + 4);
}

void PutI64(std::vector<uint8_t>& out, int64_t v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out.insert(out.end(), p, p + 8);
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

int64_t GetI64(const uint8_t* p) {
  int64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

std::vector<uint8_t> EncodePayload(const WalRecord& r) {
  std::vector<uint8_t> payload;
  payload.push_back(static_cast<uint8_t>(r.type));
  PutI64(payload, r.key);
  if (r.type == WalRecord::Type::kDeleteRange) {
    PutI64(payload, r.key2);
  }
  if (r.type == WalRecord::Type::kInsert ||
      r.type == WalRecord::Type::kUpdate) {
    PutU32(payload, static_cast<uint32_t>(r.value.size()));
    payload.insert(payload.end(), r.value.begin(), r.value.end());
  }
  return payload;
}

std::vector<uint8_t> EncodeFrame(const WalRecord& r) {
  std::vector<uint8_t> payload = EncodePayload(r);
  std::vector<uint8_t> frame;
  frame.reserve(payload.size() + 8);
  PutU32(frame, static_cast<uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  PutU32(frame, Crc32(payload.data(), payload.size()));
  return frame;
}

Result<WalRecord> DecodePayload(const uint8_t* p, size_t len) {
  if (len < 9) return Status::Corruption("WAL payload too short");
  WalRecord r;
  r.type = static_cast<WalRecord::Type>(p[0]);
  r.key = GetI64(p + 1);
  size_t off = 9;
  switch (r.type) {
    case WalRecord::Type::kDelete:
      break;
    case WalRecord::Type::kDeleteRange:
      if (len < off + 8) return Status::Corruption("truncated range record");
      r.key2 = GetI64(p + off);
      off += 8;
      break;
    case WalRecord::Type::kInsert:
    case WalRecord::Type::kUpdate: {
      if (len < off + 4) return Status::Corruption("truncated value length");
      uint32_t vlen = GetU32(p + off);
      off += 4;
      if (len < off + vlen) return Status::Corruption("truncated value");
      r.value.assign(p + off, p + off + vlen);
      off += vlen;
      break;
    }
    default:
      return Status::Corruption("unknown WAL record type");
  }
  if (off != len) return Status::Corruption("trailing bytes in WAL record");
  return r;
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError("open WAL failed: " +
                           std::string(strerror(errno)));
  }
  return std::unique_ptr<WriteAheadLog>(new WriteAheadLog(fd, path));
}

WriteAheadLog::~WriteAheadLog() {
  // Drain any in-flight commit round before closing the fd.  Callers are
  // expected to have joined their appender threads; this only guards
  // against closing mid-write.
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !committing_; });
  }
  if (fd_ >= 0) ::close(fd_);
}

void WriteAheadLog::AcquireCommitSlot(std::unique_lock<std::mutex>& lock) {
  cv_.wait(lock, [&] { return !committing_; });
  committing_ = true;
}

void WriteAheadLog::ReleaseCommitSlot(std::unique_lock<std::mutex>& lock) {
  committing_ = false;
  lock.unlock();
  cv_.notify_all();
}

Status WriteAheadLog::Append(const WalRecord& record) {
  std::unique_lock<std::mutex> lock(mu_);
  AcquireCommitSlot(lock);
  lock.unlock();
  Status s = AppendExclusive(record);
  lock.lock();
  ReleaseCommitSlot(lock);
  return s;
}

Status WriteAheadLog::AppendExclusive(const WalRecord& record) {
  std::vector<uint8_t> frame = EncodeFrame(record);

  // Crash simulation: the process dies mid-append.  A prefix of the frame
  // (chosen by the armed payload) reaches the file and nothing cleans it
  // up — exactly the torn tail recovery must cope with.
  if (Status crash = faults::HitCrashPoint(faults::kWalAppendPartial);
      !crash.ok()) {
    uint64_t cut =
        faults::CrashPointRegistry::Global().payload() % frame.size();
    if (cut > 0) (void)!::write(fd_, frame.data(), cut);
    return crash;
  }

  size_t intend = frame.size();
  bool disk_full = false;
  if (fault_plan_ != nullptr) {
    if (auto d = fault_plan_->Next(faults::FaultOp::kWalAppend)) {
      switch (d->kind) {
        case faults::FaultKind::kIoError:
          return Status::IoError("injected WAL append fault");
        case faults::FaultKind::kTornWrite:
          intend = d->arg % frame.size();  // live short write, not a crash
          break;
        case faults::FaultKind::kDiskFull:
          // ENOSPC mid-frame: a prefix reaches the medium, then space
          // runs out.  Fail-stop contract: roll back, ack nothing, and
          // surface a distinguishable disk-full error.
          intend = d->arg % frame.size();
          disk_full = true;
          break;
        case faults::FaultKind::kBitFlip: {
          uint64_t bit = d->arg % (frame.size() * 8);
          frame[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
          break;
        }
        case faults::FaultKind::kMsgDrop:
        case faults::FaultKind::kMsgDuplicate:
        case faults::FaultKind::kMsgDelay:
          break;  // message-only kinds; meaningless at a WAL site
      }
    }
  }

  off_t start = ::lseek(fd_, 0, SEEK_END);
  if (start < 0) return Status::IoError("WAL lseek failed");
  Status written = io::WriteFull(fd_, frame.data(), intend, "WAL append");
  if (!written.ok() || intend != frame.size()) {
    // Roll the file back to the pre-append offset.  Leaving the partial
    // frame in place would make every subsequent append land behind a
    // torn record, unreachable at replay time.
    if (::ftruncate(fd_, start) != 0) {
      return Status::IoError("WAL append failed and rollback failed");
    }
    if (disk_full) {
      return Status::IoError("WAL append failed: disk full (ENOSPC)");
    }
    return written.ok() ? Status::IoError("WAL append failed: short write")
                        : written;
  }
  return Status::OK();
}

Result<uint64_t> WriteAheadLog::AppendDurable(const WalRecord& record) {
  Pending pending;
  pending.frame = EncodeFrame(record);

  std::unique_lock<std::mutex> lock(mu_);
  pending.lsn = ++next_lsn_;
  queue_.push_back(&pending);
  for (;;) {
    if (pending.done) break;
    if (committing_ || paused_for_test_) {
      cv_.wait(lock);
      continue;
    }
    // Leader handoff: this appender found the committer slot free, so it
    // drains the whole queue (its own record included) and commits the
    // batch with one write + one fsync while followers wait.
    committing_ = true;
    std::vector<Pending*> batch(queue_.begin(), queue_.end());
    queue_.clear();
    lock.unlock();

    CommitBatch(batch);

    lock.lock();
    ++stats_.commits;
    stats_.records += batch.size();
    stats_.max_batch = std::max<uint64_t>(stats_.max_batch, batch.size());
    for (Pending* p : batch) {
      if (p->result.ok()) {
        stats_.durable_lsn = std::max(stats_.durable_lsn, p->lsn);
      }
      p->done = true;
    }
    committing_ = false;
    cv_.notify_all();
  }
  if (!pending.result.ok()) return pending.result;
  return pending.lsn;
}

void WriteAheadLog::CommitBatch(const std::vector<Pending*>& batch) {
  auto fail_all = [&](const Status& s) {
    for (Pending* p : batch) {
      // Keep a more specific per-record verdict (injected IoError on an
      // excluded record) in place of the batch-wide one.
      if (p->result.ok()) p->result = s;
    }
  };
  auto fail_written = [&](const Status& s) {
    for (Pending* p : batch) {
      if (p->written && p->result.ok()) p->result = s;
    }
  };

  off_t start = ::lseek(fd_, 0, SEEK_END);
  if (start < 0) {
    fail_all(Status::IoError("WAL lseek failed"));
    return;
  }

  std::vector<uint8_t> buf;
  size_t total = 0;
  for (Pending* p : batch) total += p->frame.size();
  buf.reserve(total);

  for (Pending* p : batch) {
    // Crash simulation, per logical append: the process dies while the
    // batched write is in flight.  Earlier records' frames plus a prefix
    // of this record's frame reach the file — the multi-record torn tail
    // recovery must cope with.
    if (Status crash = faults::HitCrashPoint(faults::kWalAppendPartial);
        !crash.ok()) {
      uint64_t cut =
          faults::CrashPointRegistry::Global().payload() % p->frame.size();
      if (!buf.empty()) {
        (void)io::WriteFull(fd_, buf.data(), buf.size(), "WAL append");
      }
      if (cut > 0) (void)!::write(fd_, p->frame.data(), cut);
      fail_all(crash);
      return;
    }
    if (fault_plan_ != nullptr) {
      if (auto d = fault_plan_->Next(faults::FaultOp::kWalAppend)) {
        switch (d->kind) {
          case faults::FaultKind::kIoError:
            // No bytes of this record reach the medium; the rest of the
            // batch is unaffected.
            p->result = Status::IoError("injected WAL append fault");
            continue;
          case faults::FaultKind::kTornWrite:
          case faults::FaultKind::kDiskFull: {
            // The batched write dies inside this record's frame (torn
            // write or out of space).  The rollback must un-ack the whole
            // batch: acknowledging any record whose bytes were truncated
            // away would lose it.
            uint64_t cut = d->arg % p->frame.size();
            if (!buf.empty()) {
              (void)io::WriteFull(fd_, buf.data(), buf.size(), "WAL append");
            }
            if (cut > 0) (void)!::write(fd_, p->frame.data(), cut);
            if (::ftruncate(fd_, start) != 0) {
              fail_all(
                  Status::IoError("WAL append failed and rollback failed"));
            } else if (d->kind == faults::FaultKind::kDiskFull) {
              fail_all(
                  Status::IoError("WAL append failed: disk full (ENOSPC)"));
            } else {
              fail_all(Status::IoError("WAL append failed: short write"));
            }
            return;
          }
          case faults::FaultKind::kBitFlip: {
            uint64_t bit = d->arg % (p->frame.size() * 8);
            p->frame[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
            break;
          }
          case faults::FaultKind::kMsgDrop:
          case faults::FaultKind::kMsgDuplicate:
          case faults::FaultKind::kMsgDelay:
            break;  // message-only kinds; meaningless at a WAL site
        }
      }
    }
    buf.insert(buf.end(), p->frame.begin(), p->frame.end());
    p->written = true;
  }

  // Every record was excluded by injection: nothing reached the file, so
  // there is nothing to sync.
  if (buf.empty()) return;

  Status written = io::WriteFull(fd_, buf.data(), buf.size(), "WAL append");
  if (!written.ok()) {
    // A failed batched write must not ack any record in the batch.
    if (::ftruncate(fd_, start) != 0) {
      fail_written(Status::IoError("WAL append failed and rollback failed"));
    } else {
      fail_written(written);
    }
    return;
  }

  // Crash simulation: the process dies after the batched write reached
  // the file but before the group fsync.  Every record in the round is
  // unacknowledged; its bytes may or may not survive to recovery.
  if (Status crash = faults::HitCrashPoint(faults::kWalGroupPreSync);
      !crash.ok()) {
    fail_all(crash);
    return;
  }
  // Parity with Sync(): one pre-sync crash point per physical fsync.
  if (Status crash = faults::HitCrashPoint(faults::kWalPreSync);
      !crash.ok()) {
    fail_all(crash);
    return;
  }
  if (fault_plan_ != nullptr) {
    // kWalSync fires once per logical record even though the physical
    // fsync is shared, so scripted "fail the Nth sync" triggers keep
    // their meaning under batching.
    for (Pending* p : batch) {
      if (!p->written) continue;
      if (auto d = fault_plan_->Next(faults::FaultOp::kWalSync)) {
        (void)d;
        // The bytes stay in the file but no record is acknowledged —
        // same contract as a failed serial Sync().
        fail_written(Status::IoError("injected WAL sync fault"));
        return;
      }
    }
  }
  if (::fsync(fd_) != 0) {
    fail_written(Status::IoError("WAL fsync failed"));
  }
}

Status WriteAheadLog::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  AcquireCommitSlot(lock);
  lock.unlock();
  Status s = SyncExclusive();
  lock.lock();
  ReleaseCommitSlot(lock);
  return s;
}

Status WriteAheadLog::SyncExclusive() {
  // Crash simulation: the process dies after appending but before the
  // data is forced to stable storage.
  PRORP_CRASH_POINT(faults::kWalPreSync);
  if (fault_plan_ != nullptr) {
    if (auto d = fault_plan_->Next(faults::FaultOp::kWalSync)) {
      (void)d;
      return Status::IoError("injected WAL sync fault");
    }
  }
  if (::fsync(fd_) != 0) return Status::IoError("WAL fsync failed");
  return Status::OK();
}

Status WriteAheadLog::Truncate() {
  std::unique_lock<std::mutex> lock(mu_);
  AcquireCommitSlot(lock);
  lock.unlock();
  Status s = Status::OK();
  if (::ftruncate(fd_, 0) != 0) {
    s = Status::IoError("WAL truncate failed");
  }
  lock.lock();
  ReleaseCommitSlot(lock);
  return s;
}

Result<uint64_t> WriteAheadLog::Replay(
    const std::string& path,
    const std::function<Status(const WalRecord&)>& apply) {
  // O_RDWR so a torn tail can be trimmed in place; fall back to read-only
  // (no trimming) if the file does not permit writing.
  bool writable = true;
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0 && errno != ENOENT) {
    writable = false;
    fd = ::open(path.c_str(), O_RDONLY);
  }
  if (fd < 0) {
    if (errno == ENOENT) return static_cast<uint64_t>(0);
    return Status::IoError("open WAL for replay failed");
  }
  uint64_t replayed = 0;
  off_t valid_end = 0;  // file offset just past the last intact record
  std::vector<uint8_t> buf;
  for (;;) {
    uint8_t lenbuf[4];
    Result<size_t> got = io::ReadUpTo(fd, lenbuf, 4, "WAL replay");
    if (!got.ok()) {
      ::close(fd);
      return got.status();
    }
    if (*got == 0) break;          // clean end
    if (*got != 4) break;          // torn tail
    uint32_t len = GetU32(lenbuf);
    if (len > (1u << 24)) break;   // implausible: treat as torn tail
    buf.resize(len + 4);
    got = io::ReadUpTo(fd, buf.data(), len + 4, "WAL replay");
    if (!got.ok()) {
      ::close(fd);
      return got.status();
    }
    if (*got != len + 4) break;    // torn tail
    uint32_t expect_crc = GetU32(buf.data() + len);
    if (Crc32(buf.data(), len) != expect_crc) break;  // torn tail
    Result<WalRecord> rec = DecodePayload(buf.data(), len);
    if (!rec.ok()) break;
    Status s = apply(*rec);
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
    ++replayed;
    valid_end += 4 + static_cast<off_t>(len) + 4;
  }
  // Trim the torn tail so post-recovery appends land directly behind the
  // last valid record.  Without this, an append-mode writer would stack
  // good frames behind unreachable garbage and silently lose them at the
  // next recovery.
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (writable && size > valid_end) {
    if (::ftruncate(fd, valid_end) != 0) {
      ::close(fd);
      return Status::IoError("trimming torn WAL tail failed");
    }
  }
  ::close(fd);
  return replayed;
}

Result<uint64_t> WriteAheadLog::SizeBytes() const {
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) return Status::IoError("lseek failed");
  return static_cast<uint64_t>(size);
}

WriteAheadLog::GroupCommitStats WriteAheadLog::group_commit_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t WriteAheadLog::QueuedForTest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void WriteAheadLog::PauseGroupCommitForTest(bool paused) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_for_test_ = paused;
  }
  cv_.notify_all();
}

}  // namespace prorp::storage
