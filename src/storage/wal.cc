#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "faults/crash_points.h"
#include "storage/crc32.h"

namespace prorp::storage {
namespace {

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out.insert(out.end(), p, p + 4);
}

void PutI64(std::vector<uint8_t>& out, int64_t v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out.insert(out.end(), p, p + 8);
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

int64_t GetI64(const uint8_t* p) {
  int64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

std::vector<uint8_t> EncodePayload(const WalRecord& r) {
  std::vector<uint8_t> payload;
  payload.push_back(static_cast<uint8_t>(r.type));
  PutI64(payload, r.key);
  if (r.type == WalRecord::Type::kDeleteRange) {
    PutI64(payload, r.key2);
  }
  if (r.type == WalRecord::Type::kInsert ||
      r.type == WalRecord::Type::kUpdate) {
    PutU32(payload, static_cast<uint32_t>(r.value.size()));
    payload.insert(payload.end(), r.value.begin(), r.value.end());
  }
  return payload;
}

Result<WalRecord> DecodePayload(const uint8_t* p, size_t len) {
  if (len < 9) return Status::Corruption("WAL payload too short");
  WalRecord r;
  r.type = static_cast<WalRecord::Type>(p[0]);
  r.key = GetI64(p + 1);
  size_t off = 9;
  switch (r.type) {
    case WalRecord::Type::kDelete:
      break;
    case WalRecord::Type::kDeleteRange:
      if (len < off + 8) return Status::Corruption("truncated range record");
      r.key2 = GetI64(p + off);
      off += 8;
      break;
    case WalRecord::Type::kInsert:
    case WalRecord::Type::kUpdate: {
      if (len < off + 4) return Status::Corruption("truncated value length");
      uint32_t vlen = GetU32(p + off);
      off += 4;
      if (len < off + vlen) return Status::Corruption("truncated value");
      r.value.assign(p + off, p + off + vlen);
      off += vlen;
      break;
    }
    default:
      return Status::Corruption("unknown WAL record type");
  }
  if (off != len) return Status::Corruption("trailing bytes in WAL record");
  return r;
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError("open WAL failed: " +
                           std::string(strerror(errno)));
  }
  return std::unique_ptr<WriteAheadLog>(new WriteAheadLog(fd, path));
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

Status WriteAheadLog::Append(const WalRecord& record) {
  std::vector<uint8_t> payload = EncodePayload(record);
  std::vector<uint8_t> frame;
  frame.reserve(payload.size() + 8);
  PutU32(frame, static_cast<uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  PutU32(frame, Crc32(payload.data(), payload.size()));

  // Crash simulation: the process dies mid-append.  A prefix of the frame
  // (chosen by the armed payload) reaches the file and nothing cleans it
  // up — exactly the torn tail recovery must cope with.
  if (Status crash = faults::HitCrashPoint(faults::kWalAppendPartial);
      !crash.ok()) {
    uint64_t cut =
        faults::CrashPointRegistry::Global().payload() % frame.size();
    if (cut > 0) (void)!::write(fd_, frame.data(), cut);
    return crash;
  }

  size_t intend = frame.size();
  if (fault_plan_ != nullptr) {
    if (auto d = fault_plan_->Next(faults::FaultOp::kWalAppend)) {
      switch (d->kind) {
        case faults::FaultKind::kIoError:
          return Status::IoError("injected WAL append fault");
        case faults::FaultKind::kTornWrite:
          intend = d->arg % frame.size();  // live short write, not a crash
          break;
        case faults::FaultKind::kBitFlip: {
          uint64_t bit = d->arg % (frame.size() * 8);
          frame[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
          break;
        }
      }
    }
  }

  off_t start = ::lseek(fd_, 0, SEEK_END);
  if (start < 0) return Status::IoError("WAL lseek failed");
  ssize_t written = ::write(fd_, frame.data(), intend);
  if (written != static_cast<ssize_t>(frame.size())) {
    // Roll the file back to the pre-append offset.  Leaving the partial
    // frame in place would make every subsequent append land behind a
    // torn record, unreachable at replay time.
    if (::ftruncate(fd_, start) != 0) {
      return Status::IoError("WAL append failed and rollback failed");
    }
    return Status::IoError("WAL append failed: short write");
  }
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  // Crash simulation: the process dies after appending but before the
  // data is forced to stable storage.
  PRORP_CRASH_POINT(faults::kWalPreSync);
  if (fault_plan_ != nullptr) {
    if (auto d = fault_plan_->Next(faults::FaultOp::kWalSync)) {
      return Status::IoError("injected WAL sync fault");
    }
  }
  if (::fsync(fd_) != 0) return Status::IoError("WAL fsync failed");
  return Status::OK();
}

Status WriteAheadLog::Truncate() {
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IoError("WAL truncate failed");
  }
  return Status::OK();
}

Result<uint64_t> WriteAheadLog::Replay(
    const std::string& path,
    const std::function<Status(const WalRecord&)>& apply) {
  // O_RDWR so a torn tail can be trimmed in place; fall back to read-only
  // (no trimming) if the file does not permit writing.
  bool writable = true;
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0 && errno != ENOENT) {
    writable = false;
    fd = ::open(path.c_str(), O_RDONLY);
  }
  if (fd < 0) {
    if (errno == ENOENT) return static_cast<uint64_t>(0);
    return Status::IoError("open WAL for replay failed");
  }
  uint64_t replayed = 0;
  off_t valid_end = 0;  // file offset just past the last intact record
  std::vector<uint8_t> buf;
  for (;;) {
    uint8_t lenbuf[4];
    ssize_t got = ::read(fd, lenbuf, 4);
    if (got == 0) break;           // clean end
    if (got != 4) break;           // torn tail
    uint32_t len = GetU32(lenbuf);
    if (len > (1u << 24)) break;   // implausible: treat as torn tail
    buf.resize(len + 4);
    got = ::read(fd, buf.data(), len + 4);
    if (got != static_cast<ssize_t>(len + 4)) break;  // torn tail
    uint32_t expect_crc = GetU32(buf.data() + len);
    if (Crc32(buf.data(), len) != expect_crc) break;  // torn tail
    Result<WalRecord> rec = DecodePayload(buf.data(), len);
    if (!rec.ok()) break;
    Status s = apply(*rec);
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
    ++replayed;
    valid_end += 4 + static_cast<off_t>(len) + 4;
  }
  // Trim the torn tail so post-recovery appends land directly behind the
  // last valid record.  Without this, an append-mode writer would stack
  // good frames behind unreachable garbage and silently lose them at the
  // next recovery.
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (writable && size > valid_end) {
    if (::ftruncate(fd, valid_end) != 0) {
      ::close(fd);
      return Status::IoError("trimming torn WAL tail failed");
    }
  }
  ::close(fd);
  return replayed;
}

Result<uint64_t> WriteAheadLog::SizeBytes() const {
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) return Status::IoError("lseek failed");
  return static_cast<uint64_t>(size);
}

}  // namespace prorp::storage
