#ifndef PRORP_STORAGE_BUFFER_POOL_H_
#define PRORP_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace prorp::storage {

class BufferPool;

/// RAII handle to a pinned page frame.  While a PageGuard is alive the page
/// stays in memory; destruction unpins it.  Call MarkDirty() after any
/// mutation so the frame is written back on eviction/flush.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { MoveFrom(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  ~PageGuard() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  const uint8_t* data() const { return data_; }
  uint8_t* mutable_data() {
    MarkDirty();
    return data_;
  }
  void MarkDirty();

  /// Explicitly unpins early.
  void Release();

 private:
  friend class BufferPool;
  PageGuard(BufferPool* pool, PageId id, uint8_t* data)
      : pool_(pool), id_(id), data_(data) {}

  void MoveFrom(PageGuard& other) {
    pool_ = other.pool_;
    id_ = other.id_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  uint8_t* data_ = nullptr;
};

/// Counters exposed for observability and bench_micro_storage.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
  /// Pages sealed (integrity header stamped) on writeback.
  uint64_t pages_sealed = 0;
  /// Pages verified on fetch from disk.
  uint64_t pages_verified = 0;
  /// Fetches that failed verification (checksum / page-id mismatch).
  uint64_t checksum_failures = 0;
};

/// A fixed-capacity page cache with LRU eviction over unpinned frames.
/// Single-threaded by design: ProRP runs one history store per database and
/// the fleet simulator drives them from one thread (see DESIGN.md).
///
/// The pool owns the on-disk page format (see PageFormat in page.h).  In
/// the default checksummed format every frame's first kPageHeaderSize
/// bytes hold the integrity header: clients see usable_size() payload
/// bytes, the header is stamped (SealPage) on every writeback and
/// verified (VerifyPage) on every fetch from disk.  Disk managers below
/// stay byte-oriented and never interpret the header.
class BufferPool {
 public:
  /// `capacity` is the number of in-memory frames (>= 2: the B+tree pins at
  /// most a small constant number of pages at a time, but give it room).
  BufferPool(DiskManager* disk, size_t capacity,
             PageFormat format = PageFormat::kChecksummedV2);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from disk on a miss.  In the checksummed
  /// format a page that fails verification is never handed to the caller:
  /// Fetch returns Status::Corruption with structured context instead.
  Result<PageGuard> Fetch(PageId id);

  /// Allocates a fresh zeroed page on disk and pins it.
  Result<PageGuard> New();

  /// Writes back a page if dirty.
  Status Flush(PageId id);

  /// Writes back all dirty pages (a checkpoint primitive).
  Status FlushAll();

  size_t capacity() const { return capacity_; }
  const BufferPoolStats& stats() const { return stats_; }
  DiskManager* disk() const { return disk_; }
  PageFormat format() const { return format_; }

  /// Payload bytes a PageGuard exposes: kPageUsableSize in the
  /// checksummed format, the full kPageSize for legacy files.
  uint32_t usable_size() const {
    return format_ == PageFormat::kChecksummedV2 ? kPageUsableSize
                                                 : kPageSize;
  }

  /// LSN stamped into page headers on subsequent writebacks.  The
  /// DurableTree advances this after each WAL append; purely diagnostic.
  void set_current_lsn(uint64_t lsn) { current_lsn_ = lsn; }
  uint64_t current_lsn() const { return current_lsn_; }

 private:
  friend class PageGuard;

  struct Frame {
    PageId id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    std::unique_ptr<uint8_t[]> data;
    // Position in lru_ when pin_count == 0.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(PageId id);
  void SetDirty(PageId id);

  /// Finds a frame to host a new page, evicting if needed.  Returns the
  /// frame index or an error if everything is pinned.
  Result<size_t> AcquireFrame();

  /// Seals (checksummed format) and writes the frame's page to disk.
  Status WriteBack(Frame& f);

  /// Offset of the client payload within a frame.
  uint32_t payload_offset() const {
    return format_ == PageFormat::kChecksummedV2 ? kPageHeaderSize : 0;
  }

  DiskManager* disk_;
  size_t capacity_;
  PageFormat format_;
  uint64_t current_lsn_ = 0;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_to_frame_;
  std::list<size_t> lru_;  // front = least recently used
  std::vector<size_t> free_frames_;
  BufferPoolStats stats_;
};

}  // namespace prorp::storage

#endif  // PRORP_STORAGE_BUFFER_POOL_H_
