#include "storage/crc32.h"

#include <array>

#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#include <arm_acle.h>
#define PRORP_CRC32_ARM_HW 1
#endif

namespace prorp::storage {
namespace {

/// kTables[0] is the classic reflected CRC-32 table; kTables[k][b] is the
/// CRC of byte b followed by k zero bytes, which is what lets slice-by-8
/// fold 8 input bytes per round:
///   crc(b0..b7) = T7[b0^c0] ^ T6[b1^c1] ^ ... ^ T0[b7]
struct Tables {
  uint32_t t[8][256];
};

Tables BuildTables() {
  Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    tables.t[0][i] = c;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = tables.t[k - 1][i];
      tables.t[k][i] = (c >> 8) ^ tables.t[0][c & 0xFF];
    }
  }
  return tables;
}

const Tables& GetTables() {
  static const Tables kTables = BuildTables();
  return kTables;
}

/// Byte-order-independent little-endian 32-bit load; compiles to a single
/// mov on little-endian targets.
inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

#ifdef PRORP_CRC32_ARM_HW
uint32_t Crc32ArmHw(const uint8_t* data, size_t len, uint32_t seed) {
  uint32_t c = seed ^ 0xFFFFFFFFu;
  while (len >= 8) {
    uint64_t v;
    __builtin_memcpy(&v, data, 8);
    c = __crc32d(c, v);
    data += 8;
    len -= 8;
  }
  while (len > 0) {
    c = __crc32b(c, *data++);
    --len;
  }
  return c ^ 0xFFFFFFFFu;
}
#endif

using Crc32Fn = uint32_t (*)(const uint8_t*, size_t, uint32_t);

/// One-time dispatch.  The ARMv8 CRC32 extension implements the IEEE
/// polynomial, so it is bit-identical; when the extension is not compiled
/// in (or on x86, whose SSE4.2 crc32 is the incompatible Castagnoli
/// polynomial) the slice-by-8 software path is the fast path.
Crc32Fn PickImpl() {
#ifdef PRORP_CRC32_ARM_HW
  return &Crc32ArmHw;
#else
  return &internal::Crc32SliceBy8;
#endif
}

}  // namespace

namespace internal {

uint32_t Crc32ByteAtATime(const uint8_t* data, size_t len, uint32_t seed) {
  const Tables& tables = GetTables();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = tables.t[0][(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32SliceBy8(const uint8_t* data, size_t len, uint32_t seed) {
  const Tables& tables = GetTables();
  const auto& t = tables.t;
  uint32_t c = seed ^ 0xFFFFFFFFu;
  while (len >= 8) {
    uint32_t lo = LoadLe32(data) ^ c;
    uint32_t hi = LoadLe32(data + 4);
    c = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
        t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    data += 8;
    len -= 8;
  }
  while (len > 0) {
    c = t[0][(c ^ *data++) & 0xFF] ^ (c >> 8);
    --len;
  }
  return c ^ 0xFFFFFFFFu;
}

bool Crc32UsesHardware() {
#ifdef PRORP_CRC32_ARM_HW
  return true;
#else
  return false;
#endif
}

}  // namespace internal

uint32_t Crc32(const uint8_t* data, size_t len, uint32_t seed) {
  static const Crc32Fn kImpl = PickImpl();
  return kImpl(data, len, seed);
}

}  // namespace prorp::storage
