#ifndef PRORP_STORAGE_DURABLE_TREE_H_
#define PRORP_STORAGE_DURABLE_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "faults/fault_plan.h"
#include "storage/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/scrubber.h"
#include "storage/wal.h"

namespace prorp::storage {

/// Counters for the detect → repair → quarantine pipeline.
struct IntegrityStats {
  /// Corrupt pages detected (fetch verification or scrub).
  uint64_t corruption_detected = 0;
  /// Successful rebuilds from snapshot + WAL after a detection.
  uint64_t corruption_repaired = 0;
  /// Stores quarantined because repair was impossible or did not stick.
  uint64_t corruption_quarantined = 0;
  uint64_t scrub_passes = 0;
  uint64_t scrub_pages = 0;
  uint64_t scrub_errors = 0;
};

/// A durable clustered B+tree: an in-memory BPlusTree made crash-safe by a
/// logical write-ahead log plus periodic full snapshots.
///
/// This is the storage unit behind one database's sys.pause_resume_history
/// table.  Per the paper (Section 3.3), the history must be durable and
/// must travel with the database when it moves between nodes; `Backup` +
/// `Open` on the destination directory model exactly that (and the Azure
/// backup/restore mechanisms the paper reuses).
///
/// Opening a directory that already contains a snapshot and/or WAL recovers
/// the tree: snapshot first, then WAL tail replay.  A torn trailing WAL
/// record (crash mid-append) is discarded, matching write-ahead semantics.
///
/// Self-healing: every page fetch is checksum-verified by the buffer pool.
/// When an operation trips over a corrupt page, a durable tree rebuilds
/// its page store from the latest snapshot + WAL (the same machinery crash
/// recovery uses — corrupt in-memory state is discarded wholesale, and
/// apply-then-log guarantees no acknowledged record is lost) and retries.
/// If repair is impossible (ephemeral store) or does not stick, the store
/// is quarantined: durable files are renamed aside with a `.quarantined`
/// suffix and every subsequent operation returns the original typed
/// Corruption status.
class DurableTree {
 public:
  struct Options {
    /// Durability directory.  Empty => ephemeral (no WAL, no snapshot);
    /// the fleet simulator uses ephemeral stores for speed.
    std::string dir;

    /// Fixed value width in bytes (the non-key columns).
    uint32_t value_width = 8;

    /// Buffer pool frames for the in-memory page store.
    size_t buffer_pool_pages = 64;

    /// Auto-checkpoint once the WAL exceeds this many bytes (0 = never;
    /// call Checkpoint() manually).
    uint64_t checkpoint_wal_bytes = 1 << 20;

    /// fsync the WAL after every append.  Off by default: group commit is
    /// modeled by the OS page cache, which is plenty for simulation and
    /// unit-test use.
    bool fsync_each_append = false;

    /// Optional fault schedule.  When set, the page store is wrapped in a
    /// FaultInjectingDiskManager and the WAL consults the plan on every
    /// append/sync.  Must outlive the tree.  Testing only.
    faults::FaultPlan* fault_plan = nullptr;
  };

  /// Opens (and recovers, if durable state exists) a tree.
  static Result<std::unique_ptr<DurableTree>> Open(const Options& options);

  DurableTree(const DurableTree&) = delete;
  DurableTree& operator=(const DurableTree&) = delete;

  Status Insert(int64_t key, const uint8_t* value);
  Status Update(int64_t key, const uint8_t* value);
  Status Delete(int64_t key);
  Result<uint64_t> DeleteRange(int64_t lo, int64_t hi);

  Result<std::vector<uint8_t>> Find(int64_t key) const;
  bool Contains(int64_t key) const { return Find(key).ok(); }
  Status ScanRange(int64_t lo, int64_t hi,
                   const BPlusTree::ScanCallback& cb) const;
  Result<uint64_t> CountRange(int64_t lo, int64_t hi) const;
  Result<int64_t> MinKey() const;
  Result<int64_t> MaxKey() const;

  uint64_t size() const { return tree_->size(); }
  bool empty() const { return tree_->empty(); }
  uint32_t value_width() const { return tree_->value_width(); }

  /// Logical on-disk footprint in bytes: entries x (8 + value_width).
  /// This is the "size of database history" metric of Figure 10(b).
  uint64_t LogicalSizeBytes() const {
    return size() * (8 + value_width());
  }

  /// Writes a full snapshot and truncates the WAL.
  Status Checkpoint();

  /// Checkpoints, then copies the snapshot into `dest_dir` (which must
  /// exist).  `Open` on dest_dir restores the tree there: this models both
  /// scheduled backups and a database move across nodes.
  Status Backup(const std::string& dest_dir);

  /// On-demand integrity pass: flushes the pool, verifies every page's
  /// checksum and id self-reference straight off the disk manager, then
  /// walks the tree checking structural invariants.  A dirty report on a
  /// durable tree triggers repair (and a verifying re-scrub); failure to
  /// heal quarantines the store.  Returns the final (post-repair) report.
  Result<ScrubReport> Scrub();

  const IntegrityStats& integrity_stats() const { return integrity_; }

  /// True once the store has been quarantined; every data operation
  /// returns the quarantine Corruption status from then on.
  bool quarantined() const { return quarantined_; }

  /// The underlying index (for invariant checks and stats).
  const BPlusTree& tree() const { return *tree_; }
  BPlusTree* mutable_tree() { return tree_.get(); }

  /// Raw page store and pool (tests and the scrub bench inject
  /// corruption / inspect counters through these).
  DiskManager* disk() { return disk_.get(); }
  BufferPool* buffer_pool() { return pool_.get(); }

  bool durable() const { return wal_ != nullptr; }

 private:
  DurableTree() = default;

  /// (Re)builds the page store, pool, and tree from snapshot + WAL.
  /// Used by Open and by repair.
  Status Recover();

  /// One repair round: discard the in-memory page store and Recover().
  Status Repair();

  /// Marks the store unusable, renames durable files aside, and arms the
  /// status every later operation returns.
  void Quarantine(const Status& cause);

  /// Runs `op`, detecting Corruption and driving repair/quarantine.
  Status WithRepair(const std::function<Status()>& op);

  Status MaybeAutoCheckpoint();
  Status LogAndMaybeSync(const WalRecord& rec);
  Status CheckpointImpl();

  std::string dir_;
  Options options_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BPlusTree> tree_;
  std::unique_ptr<WriteAheadLog> wal_;
  /// Monotonic logical sequence number: one tick per logged mutation.
  /// Stamped into page headers as the last-writer LSN (diagnostics).
  uint64_t lsn_ = 0;
  IntegrityStats integrity_;
  bool quarantined_ = false;
  Status quarantine_status_;
};

}  // namespace prorp::storage

#endif  // PRORP_STORAGE_DURABLE_TREE_H_
