#ifndef PRORP_STORAGE_DURABLE_TREE_H_
#define PRORP_STORAGE_DURABLE_TREE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "faults/fault_plan.h"
#include "storage/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"

namespace prorp::storage {

/// A durable clustered B+tree: an in-memory BPlusTree made crash-safe by a
/// logical write-ahead log plus periodic full snapshots.
///
/// This is the storage unit behind one database's sys.pause_resume_history
/// table.  Per the paper (Section 3.3), the history must be durable and
/// must travel with the database when it moves between nodes; `Backup` +
/// `Open` on the destination directory model exactly that (and the Azure
/// backup/restore mechanisms the paper reuses).
///
/// Opening a directory that already contains a snapshot and/or WAL recovers
/// the tree: snapshot first, then WAL tail replay.  A torn trailing WAL
/// record (crash mid-append) is discarded, matching write-ahead semantics.
class DurableTree {
 public:
  struct Options {
    /// Durability directory.  Empty => ephemeral (no WAL, no snapshot);
    /// the fleet simulator uses ephemeral stores for speed.
    std::string dir;

    /// Fixed value width in bytes (the non-key columns).
    uint32_t value_width = 8;

    /// Buffer pool frames for the in-memory page store.
    size_t buffer_pool_pages = 64;

    /// Auto-checkpoint once the WAL exceeds this many bytes (0 = never;
    /// call Checkpoint() manually).
    uint64_t checkpoint_wal_bytes = 1 << 20;

    /// fsync the WAL after every append.  Off by default: group commit is
    /// modeled by the OS page cache, which is plenty for simulation and
    /// unit-test use.
    bool fsync_each_append = false;

    /// Optional fault schedule.  When set, the page store is wrapped in a
    /// FaultInjectingDiskManager and the WAL consults the plan on every
    /// append/sync.  Must outlive the tree.  Testing only.
    faults::FaultPlan* fault_plan = nullptr;
  };

  /// Opens (and recovers, if durable state exists) a tree.
  static Result<std::unique_ptr<DurableTree>> Open(const Options& options);

  DurableTree(const DurableTree&) = delete;
  DurableTree& operator=(const DurableTree&) = delete;

  Status Insert(int64_t key, const uint8_t* value);
  Status Update(int64_t key, const uint8_t* value);
  Status Delete(int64_t key);
  Result<uint64_t> DeleteRange(int64_t lo, int64_t hi);

  Result<std::vector<uint8_t>> Find(int64_t key) const {
    return tree_->Find(key);
  }
  bool Contains(int64_t key) const { return tree_->Contains(key); }
  Status ScanRange(int64_t lo, int64_t hi,
                   const BPlusTree::ScanCallback& cb) const {
    return tree_->ScanRange(lo, hi, cb);
  }
  Result<uint64_t> CountRange(int64_t lo, int64_t hi) const {
    return tree_->CountRange(lo, hi);
  }
  Result<int64_t> MinKey() const { return tree_->MinKey(); }
  Result<int64_t> MaxKey() const { return tree_->MaxKey(); }

  uint64_t size() const { return tree_->size(); }
  bool empty() const { return tree_->empty(); }
  uint32_t value_width() const { return tree_->value_width(); }

  /// Logical on-disk footprint in bytes: entries x (8 + value_width).
  /// This is the "size of database history" metric of Figure 10(b).
  uint64_t LogicalSizeBytes() const {
    return size() * (8 + value_width());
  }

  /// Writes a full snapshot and truncates the WAL.
  Status Checkpoint();

  /// Checkpoints, then copies the snapshot into `dest_dir` (which must
  /// exist).  `Open` on dest_dir restores the tree there: this models both
  /// scheduled backups and a database move across nodes.
  Status Backup(const std::string& dest_dir);

  /// The underlying index (for invariant checks and stats).
  const BPlusTree& tree() const { return *tree_; }
  BPlusTree* mutable_tree() { return tree_.get(); }

  bool durable() const { return wal_ != nullptr; }

 private:
  DurableTree() = default;

  Status MaybeAutoCheckpoint();
  Status LogAndMaybeSync(const WalRecord& rec);

  std::string dir_;
  Options options_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BPlusTree> tree_;
  std::unique_ptr<WriteAheadLog> wal_;
};

}  // namespace prorp::storage

#endif  // PRORP_STORAGE_DURABLE_TREE_H_
