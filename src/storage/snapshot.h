#ifndef PRORP_STORAGE_SNAPSHOT_H_
#define PRORP_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace prorp::storage {

/// One snapshot entry: a key plus its fixed-width value bytes.
struct SnapshotEntry {
  int64_t key;
  std::vector<uint8_t> value;
};

/// Writes a checksummed full snapshot of (key, value) pairs to `path`
/// atomically (temp file + rename).  Format:
///   [u32 magic][u32 value_width][u64 count][entries...][u32 crc]
/// where crc covers everything from value_width through the entries.
Status WriteSnapshot(const std::string& path, uint32_t value_width,
                     const std::vector<SnapshotEntry>& entries);

/// Reads a snapshot, verifying the checksum; invokes `apply` per entry in
/// file order.  NotFound if the file does not exist.
Status ReadSnapshot(
    const std::string& path, uint32_t expected_value_width,
    const std::function<Status(int64_t key, const uint8_t* value)>& apply);

/// Copies a file byte-for-byte (used by backup).  Overwrites `dst`.
Status CopyFile(const std::string& src, const std::string& dst);

}  // namespace prorp::storage

#endif  // PRORP_STORAGE_SNAPSHOT_H_
