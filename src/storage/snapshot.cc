#include "storage/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "faults/crash_points.h"
#include "storage/crc32.h"
#include "storage/io_util.h"

namespace prorp::storage {
namespace {

constexpr uint32_t kSnapshotMagic = 0x50525053;  // "PRPS"

void AppendBytes(std::vector<uint8_t>& out, const void* p, size_t n) {
  const uint8_t* b = static_cast<const uint8_t*>(p);
  out.insert(out.end(), b, b + n);
}

/// Forces a stream's bytes onto the medium.  fclose alone only drains
/// stdio buffers into the page cache; a crash after it can still erase
/// the file's contents.
Status SyncStream(FILE* f) {
  if (std::fflush(f) != 0) return Status::IoError("fflush failed");
  if (::fsync(::fileno(f)) != 0) return Status::IoError("fsync failed");
  return Status::OK();
}

}  // namespace

Status WriteSnapshot(const std::string& path, uint32_t value_width,
                     const std::vector<SnapshotEntry>& entries) {
  std::vector<uint8_t> body;
  body.reserve(16 + entries.size() * (8 + value_width));
  AppendBytes(body, &value_width, 4);
  uint64_t count = entries.size();
  AppendBytes(body, &count, 8);
  for (const SnapshotEntry& e : entries) {
    if (e.value.size() != value_width) {
      return Status::InvalidArgument("snapshot entry width mismatch");
    }
    AppendBytes(body, &e.key, 8);
    AppendBytes(body, e.value.data(), e.value.size());
  }
  uint32_t crc = Crc32(body.data(), body.size());

  std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot create snapshot temp");
  bool ok = std::fwrite(&kSnapshotMagic, 4, 1, f) == 1;
  size_t half = body.size() / 2;
  ok = ok && (half == 0 || std::fwrite(body.data(), half, 1, f) == 1);
  // Crash simulation: the process dies halfway through writing the temp
  // file.  The partial .tmp is left behind and the rename never happens,
  // so recovery must still find the previous snapshot intact.
  if (Status crash = faults::HitCrashPoint(faults::kSnapshotMidCopy);
      !crash.ok()) {
    std::fclose(f);
    return crash;
  }
  ok = ok &&
       (body.size() == half ||
        std::fwrite(body.data() + half, body.size() - half, 1, f) == 1) &&
       std::fwrite(&crc, 4, 1, f) == 1;
  ok = ok && SyncStream(f).ok();
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IoError("snapshot write failed");
  }
  // Crash simulation: the temp file is complete and synced, but the
  // process dies before the rename publishes it.  Recovery must still see
  // the previous snapshot (or none), never the half-installed new one.
  if (Status crash = faults::HitCrashPoint(faults::kSnapshotPreRenameSync);
      !crash.ok()) {
    std::remove(tmp.c_str());
    return crash;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("snapshot rename failed");
  }
  // Make the rename itself durable: without the directory fsync a crash
  // can roll the directory entry back to the old snapshot — or to a
  // dangling entry — even though the data blocks were synced.
  PRORP_RETURN_IF_ERROR(io::SyncParentDir(path));
  return Status::OK();
}

Status ReadSnapshot(
    const std::string& path, uint32_t expected_value_width,
    const std::function<Status(int64_t, const uint8_t*)>& apply) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("no snapshot file");
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 20) {
    std::fclose(f);
    return Status::Corruption("snapshot too small");
  }
  std::vector<uint8_t> buf(static_cast<size_t>(size));
  bool ok = std::fread(buf.data(), buf.size(), 1, f) == 1;
  std::fclose(f);
  if (!ok) return Status::IoError("snapshot read failed");

  uint32_t magic;
  std::memcpy(&magic, buf.data(), 4);
  if (magic != kSnapshotMagic) return Status::Corruption("bad snapshot magic");
  size_t body_len = buf.size() - 8;
  uint32_t expect_crc;
  std::memcpy(&expect_crc, buf.data() + 4 + body_len, 4);
  if (Crc32(buf.data() + 4, body_len) != expect_crc) {
    return Status::Corruption("snapshot checksum mismatch");
  }
  uint32_t value_width;
  std::memcpy(&value_width, buf.data() + 4, 4);
  if (value_width != expected_value_width) {
    return Status::Corruption("snapshot value width mismatch");
  }
  uint64_t count;
  std::memcpy(&count, buf.data() + 8, 8);
  size_t entry_size = 8 + value_width;
  if (body_len != 12 + count * entry_size) {
    return Status::Corruption("snapshot size mismatch");
  }
  const uint8_t* p = buf.data() + 16;
  for (uint64_t i = 0; i < count; ++i) {
    int64_t key;
    std::memcpy(&key, p, 8);
    PRORP_RETURN_IF_ERROR(apply(key, p + 8));
    p += entry_size;
  }
  return Status::OK();
}

Status CopyFile(const std::string& src, const std::string& dst) {
  FILE* in = std::fopen(src.c_str(), "rb");
  if (in == nullptr) return Status::NotFound("copy source missing: " + src);
  FILE* out = std::fopen(dst.c_str(), "wb");
  if (out == nullptr) {
    std::fclose(in);
    return Status::IoError("cannot create copy destination: " + dst);
  }
  uint8_t buf[1 << 16];
  bool ok = true;
  for (;;) {
    size_t got = std::fread(buf, 1, sizeof(buf), in);
    if (got == 0) break;
    if (std::fwrite(buf, 1, got, out) != got) {
      ok = false;
      break;
    }
  }
  ok = !std::ferror(in) && ok;
  std::fclose(in);
  ok = ok && SyncStream(out).ok();
  ok = (std::fclose(out) == 0) && ok;
  if (!ok) return Status::IoError("file copy failed");
  // A backup that evaporates on power loss is not a backup: sync the
  // destination's directory entry too before reporting success.
  PRORP_RETURN_IF_ERROR(io::SyncParentDir(dst));
  return Status::OK();
}

}  // namespace prorp::storage
