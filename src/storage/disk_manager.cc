#include "storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "storage/io_util.h"

namespace prorp::storage {

Result<PageId> InMemoryDiskManager::Allocate() {
  if (!free_ids_.empty()) {
    PageId id = free_ids_.back();
    free_ids_.pop_back();
    std::memset(pages_[id].get(), 0, kPageSize);
    return id;
  }
  if (pages_.size() >= kInvalidPageId) {
    return Status::ResourceExhausted("page id space exhausted");
  }
  auto page = std::make_unique<uint8_t[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

Status InMemoryDiskManager::Release(PageId id) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("release of unallocated page");
  }
  free_ids_.push_back(id);
  return Status::OK();
}

Status InMemoryDiskManager::Read(PageId id, uint8_t* buf) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("read of unallocated page");
  }
  std::memcpy(buf, pages_[id].get(), kPageSize);
  return Status::OK();
}

Status InMemoryDiskManager::Write(PageId id, const uint8_t* buf) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("write of unallocated page");
  }
  std::memcpy(pages_[id].get(), buf, kPageSize);
  return Status::OK();
}

uint32_t InMemoryDiskManager::num_pages() const {
  return static_cast<uint32_t>(pages_.size());
}

Result<std::unique_ptr<FileDiskManager>> FileDiskManager::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("open failed: " + std::string(strerror(errno)));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IoError("lseek failed");
  }
  if (size % kPageSize != 0) {
    ::close(fd);
    return Status::Corruption("page file size is not a multiple of the page "
                              "size: " + path);
  }
  uint32_t num_pages = static_cast<uint32_t>(size / kPageSize);
  return std::unique_ptr<FileDiskManager>(
      new FileDiskManager(fd, num_pages, path));
}

FileDiskManager::~FileDiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Result<PageId> FileDiskManager::Allocate() {
  uint8_t zeros[kPageSize] = {};
  if (!free_ids_.empty()) {
    PageId id = free_ids_.back();
    off_t offset = static_cast<off_t>(id) * kPageSize;
    PRORP_RETURN_IF_ERROR(
        io::PWriteFull(fd_, zeros, kPageSize, offset, "page recycle"));
    free_ids_.pop_back();
    return id;
  }
  if (num_pages_ >= kInvalidPageId) {
    return Status::ResourceExhausted("page id space exhausted");
  }
  off_t offset = static_cast<off_t>(num_pages_) * kPageSize;
  PRORP_RETURN_IF_ERROR(
      io::PWriteFull(fd_, zeros, kPageSize, offset, "page allocate"));
  return num_pages_++;
}

Status FileDiskManager::Release(PageId id) {
  if (id >= num_pages_) {
    return Status::OutOfRange("release of unallocated page");
  }
  free_ids_.push_back(id);
  return Status::OK();
}

Status FileDiskManager::Read(PageId id, uint8_t* buf) {
  if (id >= num_pages_) {
    return Status::OutOfRange("read of unallocated page");
  }
  off_t offset = static_cast<off_t>(id) * kPageSize;
  return io::PReadFull(fd_, buf, kPageSize, offset, "page read");
}

Status FileDiskManager::Write(PageId id, const uint8_t* buf) {
  if (id >= num_pages_) {
    return Status::OutOfRange("write of unallocated page");
  }
  off_t offset = static_cast<off_t>(id) * kPageSize;
  return io::PWriteFull(fd_, buf, kPageSize, offset, "page write");
}

uint32_t FileDiskManager::num_pages() const { return num_pages_; }

Status FileDiskManager::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IoError("fsync failed");
  }
  return Status::OK();
}

}  // namespace prorp::storage
