#ifndef PRORP_STORAGE_DISK_MANAGER_H_
#define PRORP_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace prorp::storage {

/// Abstraction over the page file.  The buffer pool is the only client.
/// Pages are appended, except that ids handed back via Release() are
/// reused first; structural page recycling is handled above this layer by
/// the B+tree's intra-file free list.
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Returns a zeroed page id: a recycled id from the free list when one
  /// is available, otherwise a freshly appended page.
  virtual Result<PageId> Allocate() = 0;

  /// Returns `id` to the free list so a later Allocate() can reuse it.
  /// Used by the buffer pool to undo an allocation it could not frame
  /// (all frames pinned); the caller must no longer touch the page.
  virtual Status Release(PageId id) = 0;

  /// Reads page `id` into `buf` (kPageSize bytes).
  virtual Status Read(PageId id, uint8_t* buf) = 0;

  /// Writes `buf` (kPageSize bytes) to page `id`.
  virtual Status Write(PageId id, const uint8_t* buf) = 0;

  /// Number of allocated pages.
  virtual uint32_t num_pages() const = 0;

  /// Flushes OS buffers where applicable.
  virtual Status Sync() = 0;

  /// Backing file path for diagnostics; empty for in-memory stores.
  virtual std::string path() const { return std::string(); }
};

/// Heap-backed page store.  Used by unit tests and by the fleet simulator,
/// where per-database histories are small (a few KiB, Figure 10(b)) and
/// durability is provided by the WAL layered on top.
class InMemoryDiskManager : public DiskManager {
 public:
  Result<PageId> Allocate() override;
  Status Release(PageId id) override;
  Status Read(PageId id, uint8_t* buf) override;
  Status Write(PageId id, const uint8_t* buf) override;
  uint32_t num_pages() const override;
  Status Sync() override { return Status::OK(); }

 private:
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
  std::vector<PageId> free_ids_;
};

/// File-backed page store using pread/pwrite on a single database file.
class FileDiskManager : public DiskManager {
 public:
  /// Opens (creating if necessary) the page file at `path`.
  static Result<std::unique_ptr<FileDiskManager>> Open(
      const std::string& path);

  ~FileDiskManager() override;

  FileDiskManager(const FileDiskManager&) = delete;
  FileDiskManager& operator=(const FileDiskManager&) = delete;

  Result<PageId> Allocate() override;
  Status Release(PageId id) override;
  Status Read(PageId id, uint8_t* buf) override;
  Status Write(PageId id, const uint8_t* buf) override;
  uint32_t num_pages() const override;
  Status Sync() override;
  std::string path() const override { return path_; }

 private:
  FileDiskManager(int fd, uint32_t num_pages, std::string path)
      : fd_(fd), num_pages_(num_pages), path_(std::move(path)) {}

  int fd_;
  uint32_t num_pages_;
  std::string path_;
  std::vector<PageId> free_ids_;
};

}  // namespace prorp::storage

#endif  // PRORP_STORAGE_DISK_MANAGER_H_
