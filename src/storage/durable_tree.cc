#include "storage/durable_tree.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>

#include "faults/fault_injecting_disk_manager.h"
#include "storage/snapshot.h"

namespace prorp::storage {
namespace {

constexpr int kMaxRepairAttempts = 2;

std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.db";
}
std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir failed: " + dir);
  }
  return Status::OK();
}

Status CorruptionFromReport(const ScrubReport& report,
                            const std::string& file) {
  CorruptionContext ctx;
  ctx.file = file;
  std::string msg = "scrub found " + std::to_string(report.errors()) +
                    " corrupt page(s)";
  if (!report.issues.empty()) {
    ctx.page_id = report.issues.front().page_id;
    msg += ": " + report.issues.front().detail;
  }
  return Status::Corruption(msg, std::move(ctx));
}

}  // namespace

Result<std::unique_ptr<DurableTree>> DurableTree::Open(
    const Options& options) {
  std::unique_ptr<DurableTree> t(new DurableTree());
  t->options_ = options;
  t->dir_ = options.dir;
  PRORP_RETURN_IF_ERROR(t->Recover());
  return t;
}

Status DurableTree::Recover() {
  wal_.reset();
  tree_.reset();
  pool_.reset();
  disk_ = std::make_unique<InMemoryDiskManager>();
  if (options_.fault_plan != nullptr) {
    disk_ = std::make_unique<faults::FaultInjectingDiskManager>(
        std::move(disk_), options_.fault_plan);
  }
  pool_ =
      std::make_unique<BufferPool>(disk_.get(), options_.buffer_pool_pages);
  pool_->set_current_lsn(lsn_);
  PRORP_ASSIGN_OR_RETURN(tree_,
                         BPlusTree::Create(pool_.get(), options_.value_width));

  if (dir_.empty()) return Status::OK();

  PRORP_RETURN_IF_ERROR(EnsureDir(dir_));

  // Recovery step 1: load the last snapshot, if any.
  Status s = ReadSnapshot(
      SnapshotPath(dir_), options_.value_width,
      [&](int64_t key, const uint8_t* value) {
        return tree_->Insert(key, value);
      });
  if (!s.ok() && !s.IsNotFound()) return s;

  // Recovery step 2: replay the WAL tail.
  PRORP_ASSIGN_OR_RETURN(
      uint64_t replayed,
      WriteAheadLog::Replay(
          WalPath(dir_), [&](const WalRecord& rec) -> Status {
            switch (rec.type) {
              case WalRecord::Type::kInsert:
                return tree_->Insert(rec.key, rec.value.data());
              case WalRecord::Type::kUpdate:
                return tree_->Update(rec.key, rec.value.data());
              case WalRecord::Type::kDelete:
                return tree_->Delete(rec.key);
              case WalRecord::Type::kDeleteRange:
                return tree_->DeleteRange(rec.key, rec.key2).status();
            }
            return Status::Corruption("unknown WAL record type");
          }));
  (void)replayed;

  PRORP_ASSIGN_OR_RETURN(wal_, WriteAheadLog::Open(WalPath(dir_)));
  wal_->set_fault_plan(options_.fault_plan);
  return Status::OK();
}

Status DurableTree::Repair() {
  // The page store is ephemeral (never persisted): rebuilding from the
  // snapshot + WAL discards every in-memory page, corrupt or not.  Only
  // acknowledged (logged) mutations are reconstructed — exactly the
  // guarantee crash recovery already provides.
  return Recover();
}

void DurableTree::Quarantine(const Status& cause) {
  if (quarantined_) return;
  quarantined_ = true;
  ++integrity_.corruption_quarantined;
  if (cause.IsCorruption()) {
    quarantine_status_ = cause;
  } else {
    quarantine_status_ =
        Status::Corruption("store quarantined: " + cause.ToString());
  }
  if (!dir_.empty()) {
    wal_.reset();
    std::string snap = SnapshotPath(dir_);
    std::string wal = WalPath(dir_);
    // Best-effort: move the damaged files aside so a later Open starts
    // fresh instead of tripping over them, but keep the evidence.
    (void)std::rename(snap.c_str(), (snap + ".quarantined").c_str());
    (void)std::rename(wal.c_str(), (wal + ".quarantined").c_str());
  }
}

Status DurableTree::WithRepair(const std::function<Status()>& op) {
  if (quarantined_) return quarantine_status_;
  Status s = op();
  int attempts = 0;
  while (s.IsCorruption() && !quarantined_) {
    ++integrity_.corruption_detected;
    if (dir_.empty() || attempts >= kMaxRepairAttempts) {
      Quarantine(s);
      return quarantine_status_;
    }
    ++attempts;
    Status repaired = Repair();
    if (!repaired.ok()) {
      Quarantine(repaired.IsCorruption() ? repaired : s);
      return quarantine_status_;
    }
    ++integrity_.corruption_repaired;
    s = op();
  }
  if (s.IsCorruption()) return quarantine_status_;
  return s;
}

Status DurableTree::LogAndMaybeSync(const WalRecord& rec) {
  ++lsn_;
  pool_->set_current_lsn(lsn_);
  if (wal_ == nullptr) return Status::OK();
  if (options_.fsync_each_append) {
    // Group-commit path: append + durability in one blocking call.  A
    // DurableTree is single-writer, so its batches degenerate to size 1,
    // but routing through the group path keeps its crash points and
    // batch-rollback logic under the same torture coverage as the tree.
    PRORP_RETURN_IF_ERROR(wal_->AppendDurable(rec).status());
  } else {
    PRORP_RETURN_IF_ERROR(wal_->Append(rec));
  }
  return MaybeAutoCheckpoint();
}

Status DurableTree::Insert(int64_t key, const uint8_t* value) {
  // Apply-then-log: only successful mutations reach the log, so recovery
  // replay can never fail on a duplicate key or missing key.  A crash
  // between apply and append loses at most the unacknowledged tail, which
  // is standard redo-log semantics.  The repair wrapper relies on the same
  // property: a mutation that died on a corrupt page was never logged, so
  // the rebuild + retry applies it exactly once.
  return WithRepair([&]() -> Status {
    PRORP_RETURN_IF_ERROR(tree_->Insert(key, value));
    WalRecord rec;
    rec.type = WalRecord::Type::kInsert;
    rec.key = key;
    rec.value.assign(value, value + value_width());
    return LogAndMaybeSync(rec);
  });
}

Status DurableTree::Update(int64_t key, const uint8_t* value) {
  return WithRepair([&]() -> Status {
    PRORP_RETURN_IF_ERROR(tree_->Update(key, value));
    WalRecord rec;
    rec.type = WalRecord::Type::kUpdate;
    rec.key = key;
    rec.value.assign(value, value + value_width());
    return LogAndMaybeSync(rec);
  });
}

Status DurableTree::Delete(int64_t key) {
  return WithRepair([&]() -> Status {
    PRORP_RETURN_IF_ERROR(tree_->Delete(key));
    WalRecord rec;
    rec.type = WalRecord::Type::kDelete;
    rec.key = key;
    return LogAndMaybeSync(rec);
  });
}

Result<uint64_t> DurableTree::DeleteRange(int64_t lo, int64_t hi) {
  uint64_t n = 0;
  PRORP_RETURN_IF_ERROR(WithRepair([&]() -> Status {
    PRORP_ASSIGN_OR_RETURN(n, tree_->DeleteRange(lo, hi));
    WalRecord rec;
    rec.type = WalRecord::Type::kDeleteRange;
    rec.key = lo;
    rec.key2 = hi;
    return LogAndMaybeSync(rec);
  }));
  return n;
}

Result<std::vector<uint8_t>> DurableTree::Find(int64_t key) const {
  // Reads drive repair too; const_cast is sound because the tree is
  // single-writer by design and repair only swaps internal state.
  DurableTree* self = const_cast<DurableTree*>(this);
  std::vector<uint8_t> out;
  PRORP_RETURN_IF_ERROR(self->WithRepair([&]() -> Status {
    PRORP_ASSIGN_OR_RETURN(out, self->tree_->Find(key));
    return Status::OK();
  }));
  return out;
}

Status DurableTree::ScanRange(int64_t lo, int64_t hi,
                              const BPlusTree::ScanCallback& cb) const {
  DurableTree* self = const_cast<DurableTree*>(this);
  // Resume after the last delivered key when a retry happens, so the
  // callback never sees an entry twice across a mid-scan repair.
  int64_t next_lo = lo;
  bool saturated = false;
  return self->WithRepair([&]() -> Status {
    if (saturated) return Status::OK();
    return self->tree_->ScanRange(
        next_lo, hi, [&](int64_t key, const uint8_t* value) {
          if (key == INT64_MAX) {
            saturated = true;
          } else {
            next_lo = key + 1;
          }
          return cb(key, value);
        });
  });
}

Result<uint64_t> DurableTree::CountRange(int64_t lo, int64_t hi) const {
  uint64_t count = 0;
  PRORP_RETURN_IF_ERROR(ScanRange(lo, hi, [&](int64_t, const uint8_t*) {
    ++count;
    return true;
  }));
  return count;
}

Result<int64_t> DurableTree::MinKey() const {
  DurableTree* self = const_cast<DurableTree*>(this);
  int64_t key = 0;
  PRORP_RETURN_IF_ERROR(self->WithRepair([&]() -> Status {
    PRORP_ASSIGN_OR_RETURN(key, self->tree_->MinKey());
    return Status::OK();
  }));
  return key;
}

Result<int64_t> DurableTree::MaxKey() const {
  DurableTree* self = const_cast<DurableTree*>(this);
  int64_t key = 0;
  PRORP_RETURN_IF_ERROR(self->WithRepair([&]() -> Status {
    PRORP_ASSIGN_OR_RETURN(key, self->tree_->MaxKey());
    return Status::OK();
  }));
  return key;
}

Status DurableTree::MaybeAutoCheckpoint() {
  if (wal_ == nullptr || options_.checkpoint_wal_bytes == 0) {
    return Status::OK();
  }
  PRORP_ASSIGN_OR_RETURN(uint64_t bytes, wal_->SizeBytes());
  if (bytes < options_.checkpoint_wal_bytes) return Status::OK();
  return CheckpointImpl();
}

Status DurableTree::CheckpointImpl() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("ephemeral tree has no checkpoint");
  }
  std::vector<SnapshotEntry> entries;
  entries.reserve(tree_->size());
  PRORP_RETURN_IF_ERROR(tree_->ScanRange(
      INT64_MIN, INT64_MAX, [&](int64_t key, const uint8_t* value) {
        entries.push_back(
            {key, std::vector<uint8_t>(value, value + value_width())});
        return true;
      }));
  PRORP_RETURN_IF_ERROR(
      WriteSnapshot(SnapshotPath(dir_), value_width(), entries));
  return wal_->Truncate();
}

Status DurableTree::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("ephemeral tree has no checkpoint");
  }
  return WithRepair([&]() -> Status { return CheckpointImpl(); });
}

Status DurableTree::Backup(const std::string& dest_dir) {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("ephemeral tree has no backup");
  }
  PRORP_RETURN_IF_ERROR(Checkpoint());
  PRORP_RETURN_IF_ERROR(EnsureDir(dest_dir));
  PRORP_RETURN_IF_ERROR(
      CopyFile(SnapshotPath(dir_), SnapshotPath(dest_dir)));
  // The WAL was just truncated; make sure a stale WAL in dest cannot
  // pollute the restored state.
  FILE* f = std::fopen(WalPath(dest_dir).c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot reset destination WAL");
  std::fclose(f);
  return Status::OK();
}

Result<ScrubReport> DurableTree::Scrub() {
  if (quarantined_) return quarantine_status_;
  ++integrity_.scrub_passes;
  PRORP_ASSIGN_OR_RETURN(ScrubReport report,
                         ScrubTree(pool_.get(), tree_.get()));
  integrity_.scrub_pages += report.pages_scanned;
  if (report.clean()) return report;

  integrity_.scrub_errors += report.errors();
  ++integrity_.corruption_detected;
  Status cause = CorruptionFromReport(report, dir_);
  if (dir_.empty()) {
    Quarantine(cause);
    return quarantine_status_;
  }
  Status repaired = Repair();
  if (!repaired.ok()) {
    Quarantine(repaired.IsCorruption() ? repaired : cause);
    return quarantine_status_;
  }
  ++integrity_.corruption_repaired;

  // Verify the heal stuck with a second pass.
  ++integrity_.scrub_passes;
  PRORP_ASSIGN_OR_RETURN(ScrubReport after,
                         ScrubTree(pool_.get(), tree_.get()));
  integrity_.scrub_pages += after.pages_scanned;
  if (!after.clean()) {
    integrity_.scrub_errors += after.errors();
    Quarantine(CorruptionFromReport(after, dir_));
    return quarantine_status_;
  }
  return after;
}

}  // namespace prorp::storage
