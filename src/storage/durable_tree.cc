#include "storage/durable_tree.h"

#include <sys/stat.h>

#include <cerrno>

#include "faults/fault_injecting_disk_manager.h"
#include "storage/snapshot.h"

namespace prorp::storage {
namespace {

std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.db";
}
std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir failed: " + dir);
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<DurableTree>> DurableTree::Open(
    const Options& options) {
  std::unique_ptr<DurableTree> t(new DurableTree());
  t->options_ = options;
  t->dir_ = options.dir;
  t->disk_ = std::make_unique<InMemoryDiskManager>();
  if (options.fault_plan != nullptr) {
    t->disk_ = std::make_unique<faults::FaultInjectingDiskManager>(
        std::move(t->disk_), options.fault_plan);
  }
  t->pool_ =
      std::make_unique<BufferPool>(t->disk_.get(), options.buffer_pool_pages);
  PRORP_ASSIGN_OR_RETURN(
      t->tree_, BPlusTree::Create(t->pool_.get(), options.value_width));

  if (options.dir.empty()) return t;

  PRORP_RETURN_IF_ERROR(EnsureDir(options.dir));

  // Recovery step 1: load the last snapshot, if any.
  Status s = ReadSnapshot(
      SnapshotPath(options.dir), options.value_width,
      [&](int64_t key, const uint8_t* value) {
        return t->tree_->Insert(key, value);
      });
  if (!s.ok() && !s.IsNotFound()) return s;

  // Recovery step 2: replay the WAL tail.
  PRORP_ASSIGN_OR_RETURN(
      uint64_t replayed,
      WriteAheadLog::Replay(
          WalPath(options.dir), [&](const WalRecord& rec) -> Status {
            switch (rec.type) {
              case WalRecord::Type::kInsert:
                return t->tree_->Insert(rec.key, rec.value.data());
              case WalRecord::Type::kUpdate:
                return t->tree_->Update(rec.key, rec.value.data());
              case WalRecord::Type::kDelete:
                return t->tree_->Delete(rec.key);
              case WalRecord::Type::kDeleteRange:
                return t->tree_->DeleteRange(rec.key, rec.key2).status();
            }
            return Status::Corruption("unknown WAL record type");
          }));
  (void)replayed;

  PRORP_ASSIGN_OR_RETURN(t->wal_, WriteAheadLog::Open(WalPath(options.dir)));
  t->wal_->set_fault_plan(options.fault_plan);
  return t;
}

Status DurableTree::LogAndMaybeSync(const WalRecord& rec) {
  if (wal_ == nullptr) return Status::OK();
  PRORP_RETURN_IF_ERROR(wal_->Append(rec));
  if (options_.fsync_each_append) {
    PRORP_RETURN_IF_ERROR(wal_->Sync());
  }
  return MaybeAutoCheckpoint();
}

Status DurableTree::Insert(int64_t key, const uint8_t* value) {
  // Apply-then-log: only successful mutations reach the log, so recovery
  // replay can never fail on a duplicate key or missing key.  A crash
  // between apply and append loses at most the unacknowledged tail, which
  // is standard redo-log semantics.
  PRORP_RETURN_IF_ERROR(tree_->Insert(key, value));
  WalRecord rec;
  rec.type = WalRecord::Type::kInsert;
  rec.key = key;
  rec.value.assign(value, value + value_width());
  return LogAndMaybeSync(rec);
}

Status DurableTree::Update(int64_t key, const uint8_t* value) {
  PRORP_RETURN_IF_ERROR(tree_->Update(key, value));
  WalRecord rec;
  rec.type = WalRecord::Type::kUpdate;
  rec.key = key;
  rec.value.assign(value, value + value_width());
  return LogAndMaybeSync(rec);
}

Status DurableTree::Delete(int64_t key) {
  PRORP_RETURN_IF_ERROR(tree_->Delete(key));
  WalRecord rec;
  rec.type = WalRecord::Type::kDelete;
  rec.key = key;
  return LogAndMaybeSync(rec);
}

Result<uint64_t> DurableTree::DeleteRange(int64_t lo, int64_t hi) {
  PRORP_ASSIGN_OR_RETURN(uint64_t n, tree_->DeleteRange(lo, hi));
  WalRecord rec;
  rec.type = WalRecord::Type::kDeleteRange;
  rec.key = lo;
  rec.key2 = hi;
  PRORP_RETURN_IF_ERROR(LogAndMaybeSync(rec));
  return n;
}

Status DurableTree::MaybeAutoCheckpoint() {
  if (wal_ == nullptr || options_.checkpoint_wal_bytes == 0) {
    return Status::OK();
  }
  PRORP_ASSIGN_OR_RETURN(uint64_t bytes, wal_->SizeBytes());
  if (bytes < options_.checkpoint_wal_bytes) return Status::OK();
  return Checkpoint();
}

Status DurableTree::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("ephemeral tree has no checkpoint");
  }
  std::vector<SnapshotEntry> entries;
  entries.reserve(tree_->size());
  PRORP_RETURN_IF_ERROR(tree_->ScanRange(
      INT64_MIN, INT64_MAX, [&](int64_t key, const uint8_t* value) {
        entries.push_back(
            {key, std::vector<uint8_t>(value, value + value_width())});
        return true;
      }));
  PRORP_RETURN_IF_ERROR(
      WriteSnapshot(SnapshotPath(dir_), value_width(), entries));
  return wal_->Truncate();
}

Status DurableTree::Backup(const std::string& dest_dir) {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("ephemeral tree has no backup");
  }
  PRORP_RETURN_IF_ERROR(Checkpoint());
  PRORP_RETURN_IF_ERROR(EnsureDir(dest_dir));
  PRORP_RETURN_IF_ERROR(
      CopyFile(SnapshotPath(dir_), SnapshotPath(dest_dir)));
  // The WAL was just truncated; make sure a stale WAL in dest cannot
  // pollute the restored state.
  FILE* f = std::fopen(WalPath(dest_dir).c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot reset destination WAL");
  std::fclose(f);
  return Status::OK();
}

}  // namespace prorp::storage
