#ifndef PRORP_STORAGE_CRC32_H_
#define PRORP_STORAGE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace prorp::storage {

/// CRC-32 (IEEE 802.3 polynomial, reflected).  Used to checksum WAL records
/// and snapshot files so torn writes are detected during recovery.
uint32_t Crc32(const uint8_t* data, size_t len, uint32_t seed = 0);

}  // namespace prorp::storage

#endif  // PRORP_STORAGE_CRC32_H_
