#ifndef PRORP_STORAGE_CRC32_H_
#define PRORP_STORAGE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace prorp::storage {

/// CRC-32 (IEEE 802.3 polynomial 0xEDB88320, reflected).  Used to checksum
/// WAL frames, snapshot files, and v2 page headers so torn writes and
/// silent medium corruption are detected.
///
/// Computed slice-by-8 (8 input bytes per table round) with an optional
/// hardware path behind a one-time runtime dispatch; every path is
/// bit-identical to the original byte-at-a-time table implementation, so
/// checksums already on disk verify unchanged.
///
/// Chaining: the CRC of a concatenation can be computed piecewise by
/// seeding each chunk with the CRC of the prefix:
///   Crc32(a+b) == Crc32(b, /*seed=*/Crc32(a))
uint32_t Crc32(const uint8_t* data, size_t len, uint32_t seed = 0);

namespace internal {

/// The original byte-at-a-time table implementation, kept as the
/// bit-exactness reference for tests and as the portable fallback.
uint32_t Crc32ByteAtATime(const uint8_t* data, size_t len, uint32_t seed = 0);

/// The slice-by-8 software path (exposed so tests can cover it even on
/// machines where the dispatcher picks the hardware path).
uint32_t Crc32SliceBy8(const uint8_t* data, size_t len, uint32_t seed = 0);

/// True when the runtime dispatch selected a hardware-accelerated path
/// (ARMv8 CRC32 extension).  x86 SSE4.2's crc32 instruction implements
/// the Castagnoli polynomial (0x82F63B78), not IEEE, so it can never be
/// used here without changing every checksum on disk — on x86 the fast
/// path is slice-by-8.
bool Crc32UsesHardware();

}  // namespace internal

}  // namespace prorp::storage

#endif  // PRORP_STORAGE_CRC32_H_
