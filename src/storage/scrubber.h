#ifndef PRORP_STORAGE_SCRUBBER_H_
#define PRORP_STORAGE_SCRUBBER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace prorp::storage {

/// One page the scrubber flagged, with a human-readable reason.
struct ScrubIssue {
  PageId page_id = kInvalidPageId;
  std::string detail;
};

/// Outcome of one scrub pass.  `clean()` means every allocated page
/// verified and (for tree scrubs) every structural invariant held.
struct ScrubReport {
  uint64_t pages_scanned = 0;
  /// All-zero pages: allocated by the disk manager but never written
  /// back.  Not corruption — nothing references them yet.
  uint64_t pages_unwritten = 0;
  uint64_t checksum_errors = 0;
  uint64_t page_id_errors = 0;
  /// B+tree invariant violations (key order, fill, depth, leaf chain).
  uint64_t structural_errors = 0;
  /// Largest last-writer LSN seen in any valid page header.
  uint64_t max_lsn = 0;
  /// First few flagged pages (capped so a shredded file cannot allocate
  /// unboundedly).
  std::vector<ScrubIssue> issues;

  uint64_t errors() const {
    return checksum_errors + page_id_errors + structural_errors;
  }
  bool clean() const { return errors() == 0; }
  std::string ToString() const;
};

/// Most issues kept per report; further errors only bump the counters.
inline constexpr size_t kMaxScrubIssues = 16;

/// Raw integrity pass: reads every allocated page directly from the disk
/// manager (bypassing any cache) and verifies checksum and page-id
/// self-reference.  Only meaningful for checksummed stores.
Result<ScrubReport> ScrubPages(DiskManager* disk);

/// Full scrub of a tree: flushes the pool so the file reflects the cached
/// state, runs the raw page pass (checksummed pools only), then walks the
/// tree checking structural invariants — key ordering, sibling chain,
/// parent separators, fill factors.  Read-only: detection, not repair.
Result<ScrubReport> ScrubTree(BufferPool* pool, const BPlusTree* tree);

}  // namespace prorp::storage

#endif  // PRORP_STORAGE_SCRUBBER_H_
