#ifndef PRORP_STORAGE_WAL_H_
#define PRORP_STORAGE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "faults/fault_plan.h"

namespace prorp::storage {

/// Logical write-ahead-log record.  ProRP's history store is single-writer
/// and append-mostly, so logical redo logging (no undo, no pages in the
/// log) is sufficient: recovery = load last snapshot + replay the tail.
struct WalRecord {
  enum class Type : uint8_t {
    kInsert = 1,       // key + value bytes
    kDelete = 2,       // key
    kDeleteRange = 3,  // [lo, hi]
    kUpdate = 4,       // key + value bytes
  };

  Type type = Type::kInsert;
  int64_t key = 0;        // kInsert/kDelete/kUpdate; lo for kDeleteRange
  int64_t key2 = 0;       // hi for kDeleteRange
  std::vector<uint8_t> value;  // kInsert/kUpdate payload
};

/// Append-only write-ahead log on a single file.  Record framing:
///   [u32 payload_len][payload][u32 crc32(payload)]
/// Replay stops cleanly at the first truncated or corrupt record, which is
/// the expected state after a crash mid-append.
///
/// Thread safety: all mutating entry points are safe to call from
/// concurrent threads.  `AppendDurable` is the group-commit fast path:
/// concurrent appenders enqueue encoded frames and a leader (the first
/// appender to find no commit in flight) drains the whole queue, writes
/// it as one contiguous batch, and issues a single fsync; followers block
/// until their record's LSN is durable.  `Append` + `Sync` remain the
/// buffered path (durability deferred to the OS page cache) and take the
/// same committer slot, so mixed use stays serialized.
class WriteAheadLog {
 public:
  /// Counters of the group-commit path (test/bench visibility).
  struct GroupCommitStats {
    /// Physical commit rounds (one batched write + at most one fsync).
    uint64_t commits = 0;
    /// Logical records pushed through commit rounds.
    uint64_t records = 0;
    /// Largest batch coalesced into a single round.
    uint64_t max_batch = 0;
    /// Highest LSN known durable (0 before the first durable append).
    uint64_t durable_lsn = 0;
  };

  /// Opens (creating if necessary) the log file at `path` for appending.
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends a record and flushes it to the OS (no fsync).  On a short
  /// write (disk full, injected fault) the file is rolled back to the
  /// pre-append offset so the torn frame cannot make later appends
  /// unreachable at replay time.
  Status Append(const WalRecord& record);

  /// Group-commit append: blocks until the record is on stable storage
  /// and returns its LSN.  Concurrent callers are coalesced into one
  /// batched write + one fsync; a failed batched write acknowledges no
  /// record in the batch (the file is rolled back to the batch start).
  Result<uint64_t> AppendDurable(const WalRecord& record);

  /// Forces the log to stable storage.
  Status Sync();

  /// Truncates the log (after a checkpoint has captured its effects).
  Status Truncate();

  /// Replays all intact records in `path` in order.  Returns the number of
  /// records replayed.  A trailing torn record is not an error: it is
  /// trimmed off the file so that appends issued after recovery land
  /// directly behind the last valid record instead of behind unreachable
  /// garbage.
  static Result<uint64_t> Replay(
      const std::string& path,
      const std::function<Status(const WalRecord&)>& apply);

  /// Current log size in bytes.
  Result<uint64_t> SizeBytes() const;

  /// Attaches a fault plan consulted on every append/sync (kWalAppend and
  /// kWalSync ops fire once per logical record on both the serial and the
  /// group-commit path).  `plan` must outlive this log; pass nullptr to
  /// detach.
  void set_fault_plan(faults::FaultPlan* plan) { fault_plan_ = plan; }

  GroupCommitStats group_commit_stats() const;

  /// Test-only: while paused, no appender can become the commit leader,
  /// so concurrent AppendDurable callers pile up in the queue and
  /// un-pausing releases them as one deterministic batch.
  void PauseGroupCommitForTest(bool paused);

  /// Test-only: records currently enqueued and not yet committed.
  size_t QueuedForTest() const;

 private:
  /// One enqueued group-commit record.  Lives on its appender's stack;
  /// the appender blocks until `done`, so the pointer in the queue never
  /// dangles.
  struct Pending {
    std::vector<uint8_t> frame;  // encoded [len][payload][crc]
    uint64_t lsn = 0;
    Status result;
    bool done = false;
    bool written = false;  // reached the batched write (vs excluded)
  };

  WriteAheadLog(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  /// Serial append body (old behavior).  Caller holds the committer slot.
  Status AppendExclusive(const WalRecord& record);

  /// Sync body.  Caller holds the committer slot.
  Status SyncExclusive();

  /// Writes `batch` as one contiguous write and makes it durable with a
  /// single fsync, filling each entry's `result`.  Caller holds the
  /// committer slot; runs without `mu_` held.
  void CommitBatch(const std::vector<Pending*>& batch);

  /// Blocks until this thread owns the committer slot (no commit round or
  /// serial append in flight).
  void AcquireCommitSlot(std::unique_lock<std::mutex>& lock);
  void ReleaseCommitSlot(std::unique_lock<std::mutex>& lock);

  int fd_;
  std::string path_;
  faults::FaultPlan* fault_plan_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending*> queue_;
  bool committing_ = false;       // the committer slot
  bool paused_for_test_ = false;  // leaders blocked (batch buildup)
  uint64_t next_lsn_ = 0;
  GroupCommitStats stats_;
};

}  // namespace prorp::storage

#endif  // PRORP_STORAGE_WAL_H_
