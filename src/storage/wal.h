#ifndef PRORP_STORAGE_WAL_H_
#define PRORP_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace prorp::storage {

/// Logical write-ahead-log record.  ProRP's history store is single-writer
/// and append-mostly, so logical redo logging (no undo, no pages in the
/// log) is sufficient: recovery = load last snapshot + replay the tail.
struct WalRecord {
  enum class Type : uint8_t {
    kInsert = 1,       // key + value bytes
    kDelete = 2,       // key
    kDeleteRange = 3,  // [lo, hi]
    kUpdate = 4,       // key + value bytes
  };

  Type type = Type::kInsert;
  int64_t key = 0;        // kInsert/kDelete/kUpdate; lo for kDeleteRange
  int64_t key2 = 0;       // hi for kDeleteRange
  std::vector<uint8_t> value;  // kInsert/kUpdate payload
};

/// Append-only write-ahead log on a single file.  Record framing:
///   [u32 payload_len][payload][u32 crc32(payload)]
/// Replay stops cleanly at the first truncated or corrupt record, which is
/// the expected state after a crash mid-append.
class WriteAheadLog {
 public:
  /// Opens (creating if necessary) the log file at `path` for appending.
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends a record and flushes it to the OS.
  Status Append(const WalRecord& record);

  /// Forces the log to stable storage.
  Status Sync();

  /// Truncates the log (after a checkpoint has captured its effects).
  Status Truncate();

  /// Replays all intact records in `path` in order.  Returns the number of
  /// records replayed.  A trailing torn record is not an error.
  static Result<uint64_t> Replay(
      const std::string& path,
      const std::function<Status(const WalRecord&)>& apply);

  /// Current log size in bytes.
  Result<uint64_t> SizeBytes() const;

 private:
  WriteAheadLog(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  int fd_;
  std::string path_;
};

}  // namespace prorp::storage

#endif  // PRORP_STORAGE_WAL_H_
