#ifndef PRORP_STORAGE_WAL_H_
#define PRORP_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "faults/fault_plan.h"

namespace prorp::storage {

/// Logical write-ahead-log record.  ProRP's history store is single-writer
/// and append-mostly, so logical redo logging (no undo, no pages in the
/// log) is sufficient: recovery = load last snapshot + replay the tail.
struct WalRecord {
  enum class Type : uint8_t {
    kInsert = 1,       // key + value bytes
    kDelete = 2,       // key
    kDeleteRange = 3,  // [lo, hi]
    kUpdate = 4,       // key + value bytes
  };

  Type type = Type::kInsert;
  int64_t key = 0;        // kInsert/kDelete/kUpdate; lo for kDeleteRange
  int64_t key2 = 0;       // hi for kDeleteRange
  std::vector<uint8_t> value;  // kInsert/kUpdate payload
};

/// Append-only write-ahead log on a single file.  Record framing:
///   [u32 payload_len][payload][u32 crc32(payload)]
/// Replay stops cleanly at the first truncated or corrupt record, which is
/// the expected state after a crash mid-append.
class WriteAheadLog {
 public:
  /// Opens (creating if necessary) the log file at `path` for appending.
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends a record and flushes it to the OS.  On a short write (disk
  /// full, injected fault) the file is rolled back to the pre-append
  /// offset so the torn frame cannot make later appends unreachable at
  /// replay time.
  Status Append(const WalRecord& record);

  /// Forces the log to stable storage.
  Status Sync();

  /// Truncates the log (after a checkpoint has captured its effects).
  Status Truncate();

  /// Replays all intact records in `path` in order.  Returns the number of
  /// records replayed.  A trailing torn record is not an error: it is
  /// trimmed off the file so that appends issued after recovery land
  /// directly behind the last valid record instead of behind unreachable
  /// garbage.
  static Result<uint64_t> Replay(
      const std::string& path,
      const std::function<Status(const WalRecord&)>& apply);

  /// Current log size in bytes.
  Result<uint64_t> SizeBytes() const;

  /// Attaches a fault plan consulted on every Append/Sync (kWalAppend and
  /// kWalSync ops).  `plan` must outlive this log; pass nullptr to detach.
  void set_fault_plan(faults::FaultPlan* plan) { fault_plan_ = plan; }

 private:
  WriteAheadLog(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  int fd_;
  std::string path_;
  faults::FaultPlan* fault_plan_ = nullptr;
};

}  // namespace prorp::storage

#endif  // PRORP_STORAGE_WAL_H_
