#include "scaling/demand_history.h"

#include <algorithm>
#include <cmath>

namespace prorp::scaling {

DemandHistory::DemandHistory(DurationSeconds slot_width, int days)
    : slot_width_(slot_width), days_(days) {
  if (slot_width_ <= 0 || kSecondsPerDay % slot_width_ != 0) {
    slot_width_ = Minutes(30);
  }
  if (days_ <= 0) days_ = 28;
  slots_per_day_ = static_cast<int>(kSecondsPerDay / slot_width_);
  ring_.assign(static_cast<size_t>(days_) * slots_per_day_, 0.0);
  row_day_.assign(days_, -1);
}

VCores& DemandHistory::Cell(int64_t day_index, int slot) {
  return ring_[static_cast<size_t>(day_index % days_) * slots_per_day_ +
               slot];
}

const VCores& DemandHistory::Cell(int64_t day_index, int slot) const {
  return ring_[static_cast<size_t>(day_index % days_) * slots_per_day_ +
               slot];
}

void DemandHistory::RollTo(int64_t day_index) {
  if (day_index <= latest_day_) return;
  // Zero every row that now holds a different day.
  int64_t first_new = std::max(latest_day_ + 1, day_index - days_ + 1);
  for (int64_t d = first_new; d <= day_index; ++d) {
    size_t row = static_cast<size_t>(d % days_);
    std::fill(ring_.begin() + row * slots_per_day_,
              ring_.begin() + (row + 1) * slots_per_day_, 0.0);
    row_day_[row] = d;
  }
  latest_day_ = day_index;
}

Status DemandHistory::Record(EpochSeconds t, VCores vcores) {
  if (vcores < 0 || !std::isfinite(vcores)) {
    return Status::InvalidArgument("demand must be a finite non-negative "
                                   "vCore count");
  }
  int64_t day = DayIndex(t);
  if (latest_day_ >= 0 && day <= latest_day_ - days_) {
    return Status::OK();  // older than the retained window: ignored
  }
  if (first_day_ < 0 || day < first_day_) first_day_ = day;
  RollTo(day);
  if (row_day_[day % days_] != day) return Status::OK();  // rolled away
  int slot = static_cast<int>(SecondsIntoDay(t) / slot_width_);
  VCores& cell = Cell(day, slot);
  cell = std::max(cell, vcores);
  return Status::OK();
}

VCores DemandHistory::PeakAt(EpochSeconds t) const {
  int64_t day = DayIndex(t);
  if (day < 0 || row_day_.empty()) return 0;
  if (row_day_[day % days_] != day) return 0;
  int slot = static_cast<int>(SecondsIntoDay(t) / slot_width_);
  return Cell(day, slot);
}

std::vector<VCores> DemandHistory::SlotPeaksBefore(EpochSeconds t) const {
  std::vector<VCores> peaks;
  peaks.reserve(days_);
  int64_t today = DayIndex(t);
  int slot = static_cast<int>(SecondsIntoDay(t) / slot_width_);
  for (int64_t d = today - 1; d > today - 1 - days_; --d) {
    // Days before the first observation are unknown, not idle: they must
    // not dilute the quantile of a young database.
    if (d < 0 || first_day_ < 0 || d < first_day_) break;
    size_t row = static_cast<size_t>(d % days_);
    peaks.push_back(row_day_[row] == d ? Cell(d, slot) : 0.0);
  }
  return peaks;
}

VCores DemandHistory::SlotQuantileBefore(EpochSeconds t,
                                         double quantile) const {
  std::vector<VCores> peaks = SlotPeaksBefore(t);
  if (peaks.empty()) return 0;
  std::sort(peaks.begin(), peaks.end());
  quantile = std::clamp(quantile, 0.0, 1.0);
  double rank = quantile * static_cast<double>(peaks.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return peaks[lo] + (peaks[hi] - peaks[lo]) * frac;
}

}  // namespace prorp::scaling
