#ifndef PRORP_SCALING_DEMAND_HISTORY_H_
#define PRORP_SCALING_DEMAND_HISTORY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/time_util.h"

namespace prorp::scaling {

/// Compute demand in fractional vCores.  The serverless SKU scales in
/// small increments (paper Section 11, future work 1); 0 means idle.
using VCores = double;

/// Compact per-database demand history: the peak demand observed in each
/// fixed time slot of each of the last `days` days.  This is the
/// auto-scaling analogue of sys.pause_resume_history — small (a few KiB:
/// days x slots doubles), aligned to the seasonality the predictor uses,
/// and pruned automatically as days roll over.
class DemandHistory {
 public:
  /// `slot_width` divides a day evenly (e.g. 30 minutes -> 48 slots).
  DemandHistory(DurationSeconds slot_width = Minutes(30), int days = 28);

  /// Records that demand reached `vcores` at time `t`.  Out-of-order
  /// samples within the retained window are folded in; samples older than
  /// the retained window are ignored.
  Status Record(EpochSeconds t, VCores vcores);

  /// Peak demand in the slot containing `t` on the day containing `t`,
  /// or 0 if nothing recorded.
  VCores PeakAt(EpochSeconds t) const;

  /// The peaks of the slot containing time-of-day `slot_of(t)` across the
  /// last `days` days strictly before the day of `t`, most recent first.
  /// Days with no sample contribute 0 (idle day).
  std::vector<VCores> SlotPeaksBefore(EpochSeconds t) const;

  /// The `quantile`-th (in [0,1]) of SlotPeaksBefore(t): the demand level
  /// this slot historically needs.  0 when there is no history.
  VCores SlotQuantileBefore(EpochSeconds t, double quantile) const;

  int slots_per_day() const { return slots_per_day_; }
  int days() const { return days_; }
  DurationSeconds slot_width() const { return slot_width_; }

  /// Logical footprint in bytes (days x slots x sizeof(double)).
  uint64_t SizeBytes() const {
    return static_cast<uint64_t>(days_) * slots_per_day_ * sizeof(VCores);
  }

 private:
  /// Ensures the ring covers the day of `t`, zeroing rolled-over rows.
  void RollTo(int64_t day_index);

  VCores& Cell(int64_t day_index, int slot);
  const VCores& Cell(int64_t day_index, int slot) const;

  DurationSeconds slot_width_;
  int days_;
  int slots_per_day_;
  /// Ring buffer: row (day_index % days_) holds that day's slot peaks.
  std::vector<VCores> ring_;
  /// Which absolute day each ring row currently holds (-1 = empty).
  std::vector<int64_t> row_day_;
  int64_t latest_day_ = -1;
  int64_t first_day_ = -1;  // first day ever observed
};

}  // namespace prorp::scaling

#endif  // PRORP_SCALING_DEMAND_HISTORY_H_
