#include "scaling/autoscaler.h"

#include <algorithm>
#include <cmath>

namespace prorp::scaling {

CapacityLadder::CapacityLadder(std::vector<VCores> levels)
    : levels_(std::move(levels)) {
  if (levels_.empty() || levels_.front() != 0) {
    levels_.insert(levels_.begin(), 0);
  }
  std::sort(levels_.begin(), levels_.end());
}

VCores CapacityLadder::CeilLevel(VCores demand) const {
  for (VCores level : levels_) {
    if (level >= demand) return level;
  }
  return levels_.back();
}

VCores ReactiveScaler::Target(EpochSeconds now, VCores demand,
                              VCores current_allocation) {
  VCores needed = ladder_.CeilLevel(demand);
  if (needed > current_allocation) {
    below_since_ = 0;
    return needed;  // scale up (takes effect after the reaction delay)
  }
  if (needed < current_allocation) {
    if (below_since_ == 0) below_since_ = now;
    if (now - below_since_ >= down_hysteresis_) {
      // Step down one ladder level at a time toward the need.
      const auto& levels = ladder_.levels();
      for (size_t i = levels.size(); i-- > 0;) {
        if (levels[i] < current_allocation) {
          below_since_ = now;  // restart the clock for the next step
          return std::max(levels[i], needed);
        }
      }
    }
    return current_allocation;
  }
  below_since_ = 0;
  return current_allocation;
}

VCores ProactiveScaler::Target(EpochSeconds now, VCores demand,
                               VCores current_allocation) {
  VCores reactive_target = reactive_.Target(now, demand,
                                            current_allocation);
  // Pre-scale for the upcoming slot's historical demand quantile.
  VCores predicted = history_.SlotQuantileBefore(now + lead_, quantile_);
  VCores proactive_floor = ladder_.CeilLevel(predicted);
  return std::max(reactive_target, proactive_floor);
}

Result<ScalingReport> ReplayDemandTrace(const DemandTrace& trace,
                                        AutoScaler& scaler,
                                        EpochSeconds from, EpochSeconds to,
                                        const ScalingSimOptions& options) {
  if (options.tick <= 0) {
    return Status::InvalidArgument("tick must be positive");
  }
  if (to <= from) return Status::InvalidArgument("empty replay window");
  ScalingReport report;
  size_t seg = 0;
  VCores allocation = 0;
  VCores pending_allocation = 0;
  EpochSeconds pending_effective = 0;
  double tick_seconds = static_cast<double>(options.tick);

  for (EpochSeconds now = from; now < to; now += options.tick) {
    // Demand at this tick.
    while (seg < trace.size() && trace[seg].end <= now) ++seg;
    VCores demand = 0;
    if (seg < trace.size() && trace[seg].start <= now) {
      demand = trace[seg].vcores;
    }

    // Pending scale-up materializes after the reaction delay.
    if (pending_effective != 0 && now >= pending_effective) {
      allocation = pending_allocation;
      pending_effective = 0;
    }

    scaler.Observe(now, demand);
    VCores target = scaler.Target(now, demand, allocation);
    if (target > allocation) {
      if (pending_effective == 0 || pending_allocation != target) {
        pending_allocation = target;
        pending_effective = now + options.scale_up_delay;
        ++report.scale_ups;
      }
    } else if (target < allocation) {
      allocation = target;  // releasing capacity is immediate
      pending_effective = 0;
      ++report.scale_downs;
    }

    double served = std::min(demand, allocation);
    report.demand_vcore_seconds += demand * tick_seconds;
    report.served_vcore_seconds += served * tick_seconds;
    report.allocated_vcore_seconds += allocation * tick_seconds;
    if (demand > allocation) {
      report.throttled_vcore_seconds += (demand - allocation) * tick_seconds;
      report.throttled_seconds += tick_seconds;
    } else {
      report.overprov_vcore_seconds += (allocation - demand) * tick_seconds;
    }
  }
  return report;
}

DemandTrace GenerateDailyDemandTrace(EpochSeconds from, EpochSeconds to,
                                     VCores peak, Rng& rng) {
  DemandTrace trace;
  DurationSeconds ramp_start = Hours(7) + rng.NextInt(0, Hours(2));
  DurationSeconds plateau_len = Hours(4) + rng.NextInt(0, Hours(4));
  for (EpochSeconds day = StartOfDay(from); day < to; day += Days(1)) {
    if (rng.NextBool(0.08)) continue;  // quiet day
    double day_scale = 0.7 + 0.6 * rng.NextDouble();
    EpochSeconds t = day + ramp_start + rng.NextInt(-Minutes(40),
                                                    Minutes(40));
    // Morning ramp: three rising steps.
    for (int step = 1; step <= 3; ++step) {
      DurationSeconds len = Minutes(20) + rng.NextInt(0, Minutes(30));
      trace.push_back(
          {t, t + len, peak * day_scale * step / 3.0});
      t += len;
    }
    // Midday plateau with occasional spikes above the plateau level.
    EpochSeconds plateau_end = t + plateau_len;
    while (t < plateau_end) {
      DurationSeconds len = Minutes(30) + rng.NextInt(0, Hours(1));
      VCores level = peak * day_scale;
      if (rng.NextBool(0.15)) level *= 1.5;  // spike (may exceed the SKU)
      trace.push_back({t, std::min(t + len, plateau_end), level});
      t = std::min(t + len, plateau_end);
    }
    // Evening decay.
    for (int step = 2; step >= 1; --step) {
      DurationSeconds len = Minutes(30) + rng.NextInt(0, Minutes(40));
      trace.push_back({t, t + len, peak * day_scale * step / 3.0});
      t += len;
    }
  }
  // Clip to the window and drop degenerates.
  DemandTrace clipped;
  for (DemandSegment s : trace) {
    s.start = std::max(s.start, from);
    s.end = std::min(s.end, to);
    if (s.end > s.start && s.vcores > 0) clipped.push_back(s);
  }
  return clipped;
}

}  // namespace prorp::scaling
