#ifndef PRORP_SCALING_AUTOSCALER_H_
#define PRORP_SCALING_AUTOSCALER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "scaling/demand_history.h"

namespace prorp::scaling {

/// The discrete capacity ladder a serverless database can occupy
/// (fractional vCores).  Level 0 = physically paused.  This generalizes
/// the paper's binary allocation (Definition 2.1) toward Section 11's
/// "auto-scale the resources in small increments of capacity".
class CapacityLadder {
 public:
  /// Levels must be ascending and start at 0.
  explicit CapacityLadder(
      std::vector<VCores> levels = {0, 0.5, 1, 2, 4, 8});

  /// Smallest level that covers `demand` (the top level if demand exceeds
  /// the SKU maximum — the excess is throttled).
  VCores CeilLevel(VCores demand) const;

  VCores max_level() const { return levels_.back(); }
  const std::vector<VCores>& levels() const { return levels_; }

 private:
  std::vector<VCores> levels_;
};

/// A step in a database's compute demand: `vcores` needed over
/// [start, end).  Gaps between segments are idle (demand 0).
struct DemandSegment {
  EpochSeconds start = 0;
  EpochSeconds end = 0;
  VCores vcores = 0;
};

using DemandTrace = std::vector<DemandSegment>;

/// Scaling decision contract.  `Observe` feeds the current demand sample
/// (the telemetry signal); `Target` returns the allocation level the
/// scaler wants right now.
class AutoScaler {
 public:
  virtual ~AutoScaler() = default;
  virtual void Observe(EpochSeconds now, VCores demand) = 0;
  virtual VCores Target(EpochSeconds now, VCores demand,
                        VCores current_allocation) = 0;
  virtual std::string name() const = 0;
};

/// Fixed provisioning at the SKU maximum: never throttles, never saves.
class FixedScaler : public AutoScaler {
 public:
  explicit FixedScaler(const CapacityLadder& ladder) : ladder_(ladder) {}
  void Observe(EpochSeconds, VCores) override {}
  VCores Target(EpochSeconds, VCores, VCores) override {
    return ladder_.max_level();
  }
  std::string name() const override { return "fixed"; }

 private:
  CapacityLadder ladder_;
};

/// The production-style reactive scaler: follow observed demand up
/// immediately (effective only after the reaction delay the evaluator
/// models) and scale down one level after demand has stayed below the
/// next-lower level for `down_hysteresis` (avoids flapping).
class ReactiveScaler : public AutoScaler {
 public:
  ReactiveScaler(const CapacityLadder& ladder,
                 DurationSeconds down_hysteresis = Minutes(15))
      : ladder_(ladder), down_hysteresis_(down_hysteresis) {}

  void Observe(EpochSeconds, VCores) override {}
  VCores Target(EpochSeconds now, VCores demand,
                VCores current_allocation) override;
  std::string name() const override { return "reactive"; }

 private:
  CapacityLadder ladder_;
  DurationSeconds down_hysteresis_;
  EpochSeconds below_since_ = 0;  // demand below current level since
};

/// The proactive scaler: like the reactive scaler, but additionally
/// pre-scales to the historical demand quantile of the *upcoming* slot
/// (looking `lead` ahead into the per-slot demand history), so capacity
/// is in place before the recurring ramp arrives — the multi-level
/// analogue of the paper's pre-warm.
class ProactiveScaler : public AutoScaler {
 public:
  ProactiveScaler(const CapacityLadder& ladder,
                  DurationSeconds lead = Minutes(30),
                  double quantile = 0.8,
                  DurationSeconds down_hysteresis = Minutes(15))
      : ladder_(ladder),
        reactive_(ladder, down_hysteresis),
        lead_(lead),
        quantile_(quantile) {}

  void Observe(EpochSeconds now, VCores demand) override {
    (void)history_.Record(now, demand);
  }
  VCores Target(EpochSeconds now, VCores demand,
                VCores current_allocation) override;
  std::string name() const override { return "proactive"; }

  const DemandHistory& history() const { return history_; }

 private:
  CapacityLadder ladder_;
  ReactiveScaler reactive_;
  DurationSeconds lead_;
  double quantile_;
  DemandHistory history_;
};

/// Integrated outcome of replaying one demand trace under a scaler
/// (Definition 2.2 generalized to fractional capacity).
struct ScalingReport {
  double demand_vcore_seconds = 0;
  double served_vcore_seconds = 0;
  double throttled_vcore_seconds = 0;   // demand above allocation
  double overprov_vcore_seconds = 0;    // allocation above demand
  double allocated_vcore_seconds = 0;
  double throttled_seconds = 0;         // wall time with any throttling
  uint64_t scale_ups = 0;
  uint64_t scale_downs = 0;

  /// Fraction of demanded vCore-seconds that were throttled.
  double ThrottledPct() const {
    return demand_vcore_seconds == 0
               ? 0
               : 100.0 * throttled_vcore_seconds / demand_vcore_seconds;
  }
  /// Over-provisioned capacity relative to what was allocated.
  double OverprovisionedPct() const {
    return allocated_vcore_seconds == 0
               ? 0
               : 100.0 * overprov_vcore_seconds / allocated_vcore_seconds;
  }
};

struct ScalingSimOptions {
  DurationSeconds tick = Minutes(1);
  /// Scale-ups take effect this long after the scaler asks (the paper's
  /// "reaction time between demand signal and effective change").
  DurationSeconds scale_up_delay = Minutes(2);
};

/// Replays `trace` under `scaler` with discrete ticks; demand between
/// segments is 0.  Deterministic.
Result<ScalingReport> ReplayDemandTrace(const DemandTrace& trace,
                                        AutoScaler& scaler,
                                        EpochSeconds from, EpochSeconds to,
                                        const ScalingSimOptions& options);

/// Generates a realistic multi-level demand trace: a recurring daily ramp
/// (morning rise, midday plateau, evening decay) with day-to-day jitter
/// plus random short spikes.  Deterministic in `rng`.
DemandTrace GenerateDailyDemandTrace(EpochSeconds from, EpochSeconds to,
                                     VCores peak, Rng& rng);

}  // namespace prorp::scaling

#endif  // PRORP_SCALING_AUTOSCALER_H_
