#ifndef PRORP_COMMON_BACKOFF_H_
#define PRORP_COMMON_BACKOFF_H_

#include <algorithm>
#include <cstdint>

#include "common/time_util.h"

namespace prorp::common {

/// SplitMix64 finalizer over (key, salt): the deterministic jitter hash
/// shared by the retry-backoff schedule and the slow-start admission ramp.
/// Deterministic in its inputs alone, so every shard of a sharded run (and
/// every re-run) computes the identical jitter.
constexpr uint64_t JitterHash(uint64_t key, uint64_t salt) {
  uint64_t h = key * 0x9e3779b97f4a7c15ULL + salt * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// min(cap, base * 2^step), saturating (the 62 guards the shift overflow).
/// `step` is clamped at 0.  Works for any non-negative int64 quantity —
/// backoff delays in seconds, admission quotas in workflows.
constexpr int64_t CappedExponential(int64_t base, int64_t cap, int step) {
  int exp = std::max(0, step);
  if (exp < 62 && base <= (cap >> exp)) return base << exp;
  return cap;
}

/// Adds a deterministic jitter in [0, fraction * value] hashed from
/// (key, salt) so that a burst of simultaneous schedules does not fire in
/// lockstep.  Returns `value` unchanged when the jitter range rounds to 0.
constexpr int64_t WithJitter(int64_t value, double fraction, uint64_t key,
                             uint64_t salt) {
  auto range = static_cast<int64_t>(fraction * static_cast<double>(value));
  if (range <= 0) return value;
  return value + static_cast<int64_t>(JitterHash(key, salt) %
                                      static_cast<uint64_t>(range + 1));
}

/// Backoff before retry attempt `attempt` (1-based) of the workflow
/// identified by `key`: min(cap, base * 2^(attempt-1)) plus deterministic
/// jitter in [0, jitter_fraction * delay] hashed from (key, attempt).
/// Bit-identical to the schedule ManagementService used before this
/// helper was extracted (asserted by tests/common/backoff_test.cc).
constexpr DurationSeconds BackoffDelay(DurationSeconds base,
                                       DurationSeconds cap,
                                       double jitter_fraction, uint64_t key,
                                       int attempt) {
  DurationSeconds delay = CappedExponential(base, cap, attempt - 1);
  return WithJitter(delay, jitter_fraction, key,
                    static_cast<uint64_t>(attempt));
}

}  // namespace prorp::common

#endif  // PRORP_COMMON_BACKOFF_H_
