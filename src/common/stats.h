#ifndef PRORP_COMMON_STATS_H_
#define PRORP_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace prorp {

/// Five-number summary used for the box plots of Figures 11 and 12.
struct BoxPlot {
  double min = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double max = 0;
  size_t count = 0;

  std::string ToString() const;
};

/// Simple accumulating summary over a sample of doubles.  Not streaming:
/// keeps the sample so exact percentiles can be computed (sample sizes in
/// ProRP benches are modest).
class Summary {
 public:
  void Add(double v) { values_.push_back(v); }
  void AddAll(const std::vector<double>& vs);

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double Mean() const;
  double Min() const;
  double Max() const;
  double Sum() const;

  /// Exact percentile via linear interpolation between closest ranks.
  /// q in [0, 1].  Returns 0 on an empty sample.
  double Percentile(double q) const;

  BoxPlot ToBoxPlot() const;

  /// Values sorted ascending (copies; used by CDF printers).
  std::vector<double> Sorted() const;

  /// Raw sample in insertion order (used by shard-report merging).
  const std::vector<double>& values() const { return values_; }

  /// Appends the other summary's sample to this one.
  void Merge(const Summary& other) { AddAll(other.values_); }

 private:
  std::vector<double> values_;
};

/// Points of an empirical CDF, for the CDF charts of Figures 3 and 10.
struct CdfPoint {
  double value;
  double cumulative_fraction;  // in (0, 1]
};

/// Builds an empirical CDF downsampled to at most `max_points` points
/// (always including the max).
std::vector<CdfPoint> BuildCdf(const Summary& summary,
                               size_t max_points = 20);

/// Renders a CDF as fixed-width text rows "value  fraction" for bench
/// output.
std::string FormatCdf(const std::vector<CdfPoint>& cdf,
                      const std::string& value_label);

}  // namespace prorp

#endif  // PRORP_COMMON_STATS_H_
