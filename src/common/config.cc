#include "common/config.h"

#include <cinttypes>
#include <cstdio>

namespace prorp {

Status PredictionConfig::Validate() const {
  if (history_length <= 0) {
    return Status::InvalidArgument("history_length must be positive");
  }
  if (prediction_horizon <= 0) {
    return Status::InvalidArgument("prediction_horizon must be positive");
  }
  if (window_size <= 0) {
    return Status::InvalidArgument("window_size must be positive");
  }
  if (window_slide <= 0) {
    return Status::InvalidArgument("window_slide must be positive");
  }
  if (window_slide > window_size) {
    return Status::InvalidArgument(
        "window_slide must not exceed window_size (windows would skip time)");
  }
  if (confidence_threshold < 0.0 || confidence_threshold > 1.0) {
    return Status::InvalidArgument("confidence_threshold must be in [0, 1]");
  }
  if (seasonality <= 0) {
    return Status::InvalidArgument("seasonality must be positive");
  }
  if (prediction_horizon > seasonality) {
    return Status::InvalidArgument(
        "prediction_horizon must not exceed the seasonality period; the "
        "pattern repeats after one season");
  }
  if (history_length < seasonality) {
    return Status::InvalidArgument(
        "history_length must cover at least one season");
  }
  return Status::OK();
}

int64_t PredictionConfig::NumWindows() const {
  if (window_size > prediction_horizon) return 0;
  return (prediction_horizon - window_size) / window_slide + 1;
}

int64_t PredictionConfig::NumSeasons() const {
  return history_length / seasonality;
}

Status PolicyConfig::Validate() const {
  if (logical_pause_duration <= 0) {
    return Status::InvalidArgument("logical_pause_duration must be positive");
  }
  return prediction.Validate();
}

Status ControlPlaneConfig::Validate() const {
  if (prewarm_interval < 0) {
    return Status::InvalidArgument("prewarm_interval must be non-negative");
  }
  if (resume_operation_period <= 0) {
    return Status::InvalidArgument(
        "resume_operation_period must be positive");
  }
  if (retry_backoff_base <= 0) {
    return Status::InvalidArgument("retry_backoff_base must be positive");
  }
  if (retry_backoff_cap < retry_backoff_base) {
    return Status::InvalidArgument(
        "retry_backoff_cap must be >= retry_backoff_base");
  }
  if (retry_jitter_fraction < 0.0 || retry_jitter_fraction > 1.0) {
    return Status::InvalidArgument(
        "retry_jitter_fraction must be in [0, 1]");
  }
  if (breaker_window == 0) {
    return Status::InvalidArgument("breaker_window must be positive");
  }
  if (breaker_failure_ratio <= 0.0 || breaker_failure_ratio > 1.0) {
    return Status::InvalidArgument(
        "breaker_failure_ratio must be in (0, 1]");
  }
  if (breaker_open_duration <= 0) {
    return Status::InvalidArgument(
        "breaker_open_duration must be positive");
  }
  if (breaker_half_open_probes <= 0) {
    return Status::InvalidArgument(
        "breaker_half_open_probes must be positive");
  }
  if (!(brownout_l1 > 0.0 && brownout_l1 <= brownout_l2 &&
        brownout_l2 <= brownout_l3 && brownout_l3 <= 1.0)) {
    return Status::InvalidArgument(
        "brownout thresholds must satisfy 0 < l1 <= l2 <= l3 <= 1");
  }
  if (deadline_reactive <= 0 || deadline_imminent <= 0 ||
      deadline_speculative <= 0 || deadline_maintenance <= 0) {
    return Status::InvalidArgument("workflow deadlines must be positive");
  }
  if (slow_start_initial_quota == 0) {
    return Status::InvalidArgument(
        "slow_start_initial_quota must be positive");
  }
  if (slow_start_quota_cap < slow_start_initial_quota) {
    return Status::InvalidArgument(
        "slow_start_quota_cap must be >= slow_start_initial_quota");
  }
  if (slow_start_jitter_fraction < 0.0 || slow_start_jitter_fraction > 1.0) {
    return Status::InvalidArgument(
        "slow_start_jitter_fraction must be in [0, 1]");
  }
  if (storm_cooldown < 0) {
    return Status::InvalidArgument("storm_cooldown must be non-negative");
  }
  if (catch_up_lookback <= 0) {
    return Status::InvalidArgument("catch_up_lookback must be positive");
  }
  return Status::OK();
}

Status ProrpConfig::Validate() const {
  PRORP_RETURN_IF_ERROR(policy.Validate());
  return control_plane.Validate();
}

std::string ProrpConfig::ToString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "l=%" PRId64 "h h=%" PRId64 "d p=%" PRId64 "h c=%.2f w=%" PRId64
      "h s=%" PRId64 "m season=%" PRId64 "d k=%" PRId64 "m op=%" PRId64 "m",
      policy.logical_pause_duration / kSecondsPerHour,
      policy.prediction.history_length / kSecondsPerDay,
      policy.prediction.prediction_horizon / kSecondsPerHour,
      policy.prediction.confidence_threshold,
      policy.prediction.window_size / kSecondsPerHour,
      policy.prediction.window_slide / kSecondsPerMinute,
      policy.prediction.seasonality / kSecondsPerDay,
      control_plane.prewarm_interval / kSecondsPerMinute,
      control_plane.resume_operation_period / kSecondsPerMinute);
  return buf;
}

}  // namespace prorp
