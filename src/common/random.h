#ifndef PRORP_COMMON_RANDOM_H_
#define PRORP_COMMON_RANDOM_H_

#include <cstdint>

namespace prorp {

/// Deterministic pseudo-random generator (SplitMix64 seeding a
/// xoshiro256**-style core).  Every stochastic component in ProRP takes one
/// of these so that simulations and benches reproduce bit-for-bit from a
/// seed; see DESIGN.md "Determinism".
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, n).  n must be > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0, 1]).
  bool NextBool(double p);

  /// Exponentially distributed with the given mean (> 0).
  double NextExponential(double mean);

  /// Normally distributed (Box-Muller).
  double NextGaussian(double mean, double stddev);

  /// Derives an independent child generator; useful to give each simulated
  /// database its own stream so fleet composition changes do not perturb
  /// other databases' traces.  Fork() consumes one draw, so the *number*
  /// of forks taken perturbs the parent stream — use ForkStream when a
  /// subsystem must be addable without disturbing existing consumers.
  Rng Fork();

  /// Derives an independent child generator addressed by `stream_id`,
  /// WITHOUT advancing this generator's state: a pure function of
  /// (seed, stream_id).  Adding or removing a ForkStream consumer
  /// therefore perturbs no other stream — the property the transport
  /// layer relies on so that enabling message-fault injection draws
  /// nothing from the workload or disk-fault streams (DESIGN.md
  /// section 11).  Distinct stream ids give statistically independent
  /// streams; the same (seed, id) pair always yields the same stream.
  Rng ForkStream(uint64_t stream_id) const;

 private:
  uint64_t s_[4];
  uint64_t seed_ = 0;
};

}  // namespace prorp

#endif  // PRORP_COMMON_RANDOM_H_
