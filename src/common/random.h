#ifndef PRORP_COMMON_RANDOM_H_
#define PRORP_COMMON_RANDOM_H_

#include <cstdint>

namespace prorp {

/// Deterministic pseudo-random generator (SplitMix64 seeding a
/// xoshiro256**-style core).  Every stochastic component in ProRP takes one
/// of these so that simulations and benches reproduce bit-for-bit from a
/// seed; see DESIGN.md "Determinism".
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, n).  n must be > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0, 1]).
  bool NextBool(double p);

  /// Exponentially distributed with the given mean (> 0).
  double NextExponential(double mean);

  /// Normally distributed (Box-Muller).
  double NextGaussian(double mean, double stddev);

  /// Derives an independent child generator; useful to give each simulated
  /// database its own stream so fleet composition changes do not perturb
  /// other databases' traces.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace prorp

#endif  // PRORP_COMMON_RANDOM_H_
