#ifndef PRORP_COMMON_THREAD_POOL_H_
#define PRORP_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace prorp::common {

/// Fixed-size worker pool used to run independent simulation arms and
/// fleet shards concurrently.  Determinism is preserved by construction:
/// submitted jobs never share mutable state (each owns its Rng stream and
/// its slice of the fleet), so scheduling order cannot perturb results —
/// only wall-clock time.  See DESIGN.md "Determinism".
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result.  `fn` must not
  /// submit to (or otherwise block on) this pool, or workers can deadlock
  /// waiting on themselves.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return result;
  }

  size_t num_threads() const { return workers_.size(); }

  /// Threads to use for parallel runs: the PRORP_NUM_THREADS environment
  /// variable when set (>= 1), otherwise std::thread::hardware_concurrency.
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs every job on a temporary pool of `num_threads` workers and returns
/// the results in job order (index i of the result is job i), so callers
/// keep deterministic, serial-identical output ordering regardless of
/// which worker finished first.  With num_threads == 1 (or a single job)
/// the jobs run inline on the calling thread in order.
template <typename R>
std::vector<R> RunOnPool(std::vector<std::function<R()>> jobs,
                         size_t num_threads) {
  std::vector<R> results;
  results.reserve(jobs.size());
  if (num_threads <= 1 || jobs.size() <= 1) {
    for (auto& job : jobs) results.push_back(job());
    return results;
  }
  ThreadPool pool(std::min(num_threads, jobs.size()));
  std::vector<std::future<R>> futures;
  futures.reserve(jobs.size());
  for (auto& job : jobs) futures.push_back(pool.Submit(std::move(job)));
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

}  // namespace prorp::common

#endif  // PRORP_COMMON_THREAD_POOL_H_
