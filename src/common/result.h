#ifndef PRORP_COMMON_RESULT_H_
#define PRORP_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace prorp {

/// A value-or-error type (the StatusOr idiom).  A Result is either OK and
/// holds a T, or non-OK and holds only the error Status.  Accessing the
/// value of a non-OK Result is a programming error (asserted in debug
/// builds).
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding `value`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs an error result.  `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "error Result requires a non-OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value, or `fallback` if this Result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }
  T* operator->() {
    assert(ok());
    return &*value_;
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace prorp

/// Evaluates `rexpr` (a Result<T>), propagates its error, or binds the
/// value to `lhs`.  Usage:
///   PRORP_ASSIGN_OR_RETURN(auto page, pool.Fetch(id));
#define PRORP_ASSIGN_OR_RETURN(lhs, rexpr)              \
  PRORP_ASSIGN_OR_RETURN_IMPL_(                         \
      PRORP_RESULT_CONCAT_(_prorp_result, __LINE__), lhs, rexpr)

#define PRORP_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                 \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value()

#define PRORP_RESULT_CONCAT_(a, b) PRORP_RESULT_CONCAT_IMPL_(a, b)
#define PRORP_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // PRORP_COMMON_RESULT_H_
