#include "common/status.h"

#include <cstdio>

namespace prorp {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kPending:
      return "Pending";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  if (corruption_ != nullptr) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  " [page=%u crc expected=%08x actual=%08x",
                  corruption_->page_id, corruption_->expected_crc,
                  corruption_->actual_crc);
    out += buf;
    if (!corruption_->file.empty()) {
      out += " file=";
      out += corruption_->file;
    }
    out += "]";
  }
  return out;
}

}  // namespace prorp
