#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace prorp {

std::string BoxPlot::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "min=%.1f q1=%.1f med=%.1f q3=%.1f max=%.1f (n=%zu)", min, q1,
                median, q3, max, count);
  return buf;
}

void Summary::AddAll(const std::vector<double>& vs) {
  values_.insert(values_.end(), vs.begin(), vs.end());
}

double Summary::Mean() const {
  if (values_.empty()) return 0;
  return Sum() / static_cast<double>(values_.size());
}

double Summary::Sum() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double Summary::Min() const {
  if (values_.empty()) return 0;
  return *std::min_element(values_.begin(), values_.end());
}

double Summary::Max() const {
  if (values_.empty()) return 0;
  return *std::max_element(values_.begin(), values_.end());
}

double Summary::Percentile(double q) const {
  if (values_.empty()) return 0;
  if (q <= 0) return Min();
  if (q >= 1) return Max();
  std::vector<double> sorted = Sorted();
  double rank = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

BoxPlot Summary::ToBoxPlot() const {
  BoxPlot b;
  b.count = values_.size();
  if (values_.empty()) return b;
  b.min = Min();
  b.q1 = Percentile(0.25);
  b.median = Percentile(0.5);
  b.q3 = Percentile(0.75);
  b.max = Max();
  return b;
}

std::vector<double> Summary::Sorted() const {
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::vector<CdfPoint> BuildCdf(const Summary& summary, size_t max_points) {
  std::vector<CdfPoint> cdf;
  if (summary.empty() || max_points == 0) return cdf;
  std::vector<double> sorted = summary.Sorted();
  size_t n = sorted.size();
  size_t points = std::min(max_points, n);
  cdf.reserve(points);
  for (size_t i = 1; i <= points; ++i) {
    // Index of the i-th of `points` evenly spaced quantiles; the last point
    // is always the sample maximum.
    size_t idx = (i * n) / points - 1;
    cdf.push_back({sorted[idx],
                   static_cast<double>(idx + 1) / static_cast<double>(n)});
  }
  return cdf;
}

std::string FormatCdf(const std::vector<CdfPoint>& cdf,
                      const std::string& value_label) {
  std::string out;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%20s  %8s\n", value_label.c_str(), "CDF");
  out += buf;
  for (const CdfPoint& p : cdf) {
    std::snprintf(buf, sizeof(buf), "%20.2f  %7.1f%%\n", p.value,
                  p.cumulative_fraction * 100.0);
    out += buf;
  }
  return out;
}

}  // namespace prorp
