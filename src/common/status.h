#ifndef PRORP_COMMON_STATUS_H_
#define PRORP_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace prorp {

/// Structured payload attached to Corruption statuses so callers can act
/// on *which* page failed *how* instead of parsing a message string.  The
/// buffer pool fills it when checksum verification fails; SqlHistoryStore
/// and the telemetry layer read it back out.
struct CorruptionContext {
  /// Page that failed verification (kInvalidPageId-style sentinel when
  /// the error is not page-scoped, e.g. a bad file magic).
  uint32_t page_id = 0xFFFFFFFFu;
  /// CRC the page header claimed.
  uint32_t expected_crc = 0;
  /// CRC the page bytes actually hash to.
  uint32_t actual_crc = 0;
  /// Backing store path; empty for in-memory stores.
  std::string file;
};

/// Error categories used across the ProRP code base.  Modeled after the
/// RocksDB/Arrow Status idiom: no exceptions, every fallible operation
/// returns a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kIoError,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kNotSupported,
  kInternal,
  kTimedOut,
  kAborted,
  /// The operation was started but its outcome is not yet known — the
  /// caller will be notified asynchronously (transport dispatch awaiting
  /// an ack).  Not an error in the usual sense: ok() is still false, so
  /// callers must recognise kPending explicitly.
  kPending,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value.  Copyable and movable; the OK
/// status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  /// Corruption with structured context (page id, expected/actual CRC,
  /// file path).  See CorruptionContext.
  static Status Corruption(std::string_view msg, CorruptionContext context) {
    Status s(StatusCode::kCorruption, msg);
    s.corruption_ =
        std::make_shared<const CorruptionContext>(std::move(context));
    return s;
  }
  static Status IoError(std::string_view msg) {
    return Status(StatusCode::kIoError, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(StatusCode::kResourceExhausted, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(StatusCode::kUnavailable, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(StatusCode::kNotSupported, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  static Status TimedOut(std::string_view msg) {
    return Status(StatusCode::kTimedOut, msg);
  }
  static Status Aborted(std::string_view msg) {
    return Status(StatusCode::kAborted, msg);
  }
  static Status Pending(std::string_view msg) {
    return Status(StatusCode::kPending, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsPending() const { return code_ == StatusCode::kPending; }

  /// Structured context of a Corruption status, or nullptr when the error
  /// carries none (non-corruption codes, or a bare-string Corruption).
  const CorruptionContext* corruption_context() const {
    return corruption_.get();
  }

  /// "OK" or "<Code>: <message>", plus "[page=... crc=.../... file=...]"
  /// when corruption context is attached.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string_view msg)
      : code_(code), message_(msg) {}

  StatusCode code_;
  std::string message_;
  /// Shared so Status stays cheap to copy; immutable once attached.
  std::shared_ptr<const CorruptionContext> corruption_;
};

}  // namespace prorp

/// Propagates a non-OK Status to the caller.  Usage:
///   PRORP_RETURN_IF_ERROR(DoThing());
#define PRORP_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::prorp::Status _prorp_status = (expr);        \
    if (!_prorp_status.ok()) return _prorp_status; \
  } while (false)

#endif  // PRORP_COMMON_STATUS_H_
