#include "common/clock.h"

#include <ctime>

namespace prorp {

EpochSeconds SystemClock::Now() const {
  return static_cast<EpochSeconds>(std::time(nullptr));
}

}  // namespace prorp
