#ifndef PRORP_COMMON_CONFIG_H_
#define PRORP_COMMON_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/time_util.h"

namespace prorp {

/// Configuration knobs of the next-activity prediction (Algorithm 4).
/// Defaults are the paper's Table 1 values.
struct PredictionConfig {
  /// h: history retention length.  Only this much recent customer activity
  /// is kept and analyzed (default 28 days = 4 weeks).
  DurationSeconds history_length = Days(28);

  /// p: prediction horizon; the algorithm looks for activity within
  /// [now, now + p] (default 1 day, matching daily seasonality).
  DurationSeconds prediction_horizon = Days(1);

  /// c: confidence threshold; a window predicts activity only if the
  /// fraction of past seasons whose matching window contained a login is at
  /// least c (default 0.1).
  double confidence_threshold = 0.1;

  /// w: window size (default 7 hours).
  DurationSeconds window_size = Hours(7);

  /// s: window slide (default 5 minutes).
  DurationSeconds window_slide = Minutes(5);

  /// Seasonality period: 1 day for a daily pattern (the default), 7 days
  /// for a weekly pattern.  The inner loop of Algorithm 4 looks back at the
  /// same window shifted by multiples of this period.
  DurationSeconds seasonality = Days(1);

  /// Ablation flag: when true, reproduces the literally printed control
  /// flow of Algorithm 4, whose ELSE BREAK exits the outer loop at the
  /// first window below the confidence threshold.  See DESIGN.md section 3.
  bool literal_break = false;

  /// Validates parameter sanity (positive durations, c in [0,1],
  /// slide <= window, horizon covered by history).
  Status Validate() const;

  /// Number of sliding-window positions the outer loop evaluates,
  /// i.e. the number of windows fitting in the horizon: at most
  /// (p - w) / s + 1 (zero when w > p).
  int64_t NumWindows() const;

  /// Number of past seasons the inner loop inspects: h / seasonality.
  int64_t NumSeasons() const;
};

/// Configuration of the proactive resource allocation policy (Algorithm 1).
struct PolicyConfig {
  /// l: duration of logical pause (default 7 hours).  A new database (or an
  /// old one with activity predicted to start within l) stays logically
  /// paused this long before resources are physically reclaimed.
  DurationSeconds logical_pause_duration = Hours(7);

  /// When node capacity pressure forcibly reclaims a pre-warm that the
  /// control plane established ahead of predicted activity (and the
  /// predicted window is still ahead), the pre-warm is re-scheduled at
  /// least this far in the future so it can be re-established, typically
  /// on a less loaded node.  Applies ONLY to control-plane pre-warms;
  /// ordinary logical pauses are not restored, so pressure still relieves
  /// the node.  0 disables restore (ablation).
  DurationSeconds eviction_restore_delay = Minutes(8);

  PredictionConfig prediction;

  Status Validate() const;
};

/// Configuration of the control-plane management service (Algorithm 5),
/// including the graceful-degradation machinery of its diagnostics and
/// mitigation runner (Section 7): capped exponential backoff between
/// retry attempts of a stuck resume workflow, and a circuit breaker that
/// sheds proactive resumes while the resume path is systematically
/// failing.
struct ControlPlaneConfig {
  /// k: pre-warm interval; resources are proactively resumed k time units
  /// ahead of predicted customer activity (default 5 minutes).
  DurationSeconds prewarm_interval = Minutes(5);

  /// Period of the periodic proactive-resume operation (default 1 minute;
  /// Figure 11 tunes this between 1 and 15 minutes).
  DurationSeconds resume_operation_period = Minutes(1);

  /// Backoff before retry attempt n (1-based) of a failed resume
  /// workflow: min(retry_backoff_cap, retry_backoff_base * 2^(n-1)),
  /// plus a deterministic jitter in [0, retry_jitter_fraction * delay]
  /// hashed from (database, attempt) so that a burst of simultaneous
  /// failures does not retry in lockstep.  All delays are virtual-clock
  /// relative: a retry becomes eligible at the first RunOnce whose `now`
  /// has passed its deadline.
  DurationSeconds retry_backoff_base = Minutes(1);
  DurationSeconds retry_backoff_cap = Minutes(8);
  double retry_jitter_fraction = 0.25;

  /// Circuit breaker over resume-workflow outcomes.  When the last
  /// `breaker_window` attempts contain at least `breaker_failure_ratio`
  /// failures, the breaker opens: fresh proactive resumes are shed (the
  /// databases stay physically paused and fall back to reactive resume on
  /// the customer's login) and queued retries are held.  After
  /// `breaker_open_duration` the breaker half-opens and allows
  /// `breaker_half_open_probes` probe attempts per iteration; a probe
  /// failure re-opens it, `breaker_half_open_probes` consecutive
  /// successes close it.  FailedPrecondition outcomes (the database
  /// resumed on its own) are breaker-neutral.
  size_t breaker_window = 20;
  double breaker_failure_ratio = 0.5;
  DurationSeconds breaker_open_duration = Minutes(5);
  int breaker_half_open_probes = 3;

  // --- Overload resilience: resume storms (DESIGN.md section 8) ---
  // Every knob below defaults to inert so a configuration that does not
  // opt in behaves exactly like the pre-storm control plane.

  /// Bound on the total number of queued NON-reactive workflows (imminent
  /// proactive + speculative proactive + maintenance).  Reactive-login
  /// resumes are never bounded and never shed.  0 = unbounded (legacy).
  size_t queue_capacity = 0;

  /// Enables brownout shedding and the slow-start admission quota during
  /// detected storms.
  bool admission_control_enabled = false;

  /// Brownout engages by the fraction of queue_capacity occupied by
  /// non-reactive work: level 1 sheds fresh maintenance arrivals, level 2
  /// also speculative proactive, level 3 everything except reactive
  /// logins.  Only meaningful with admission control + a finite capacity.
  double brownout_l1 = 0.50;
  double brownout_l2 = 0.75;
  double brownout_l3 = 0.95;

  /// Per-workflow deadlines with a single hedged retry: a workflow still
  /// queued (or still in flight, for reactive resumes) past its class
  /// deadline gets one extra attempt routed to a different node.  The
  /// hedge bypasses backoff, breaker, and quota — it is the rescue path —
  /// and is bounded at one per workflow.
  bool deadline_hedging_enabled = false;
  DurationSeconds deadline_reactive = Minutes(2);
  DurationSeconds deadline_imminent = Minutes(10);
  DurationSeconds deadline_speculative = Hours(1);
  DurationSeconds deadline_maintenance = Hours(4);

  /// Storm detector: a storm starts when one selection returns at least
  /// storm_due_burst_threshold due databases, when at least
  /// storm_login_spike_threshold reactive logins arrived since the last
  /// iteration, or when the breaker leaves kOpen with at least
  /// storm_recovery_backlog non-reactive workflows queued.  0 disables
  /// the corresponding signal.  After a storm ends, a fresh one cannot
  /// start for storm_cooldown — draining the recovery backlog must not
  /// re-trigger the detector.
  size_t storm_due_burst_threshold = 64;
  uint64_t storm_login_spike_threshold = 32;
  size_t storm_recovery_backlog = 16;
  DurationSeconds storm_cooldown = Minutes(30);

  /// Slow-start ramp while a storm is active: the non-reactive admission
  /// quota per iteration is min(cap, initial * 2^tick) plus deterministic
  /// jitter (the same capped-exponential + jitter helpers as the retry
  /// backoff, growing instead of delaying).
  uint64_t slow_start_initial_quota = 2;
  uint64_t slow_start_quota_cap = 1ULL << 20;
  double slow_start_jitter_fraction = 0.25;

  /// Catch-up sweep at storm start: physically paused databases whose
  /// predicted start was missed (shed or stuck while the resume path was
  /// degraded) within [now - catch_up_lookback, now + prewarm_interval)
  /// are re-enqueued as speculative/imminent work.
  bool catch_up_enabled = false;
  DurationSeconds catch_up_lookback = Hours(2);

  /// True when any storm machinery (detector-driven) is active.
  bool StormControlEnabled() const {
    return admission_control_enabled || catch_up_enabled;
  }

  Status Validate() const;
};

/// Everything together; the unit handed to the fleet simulator.
struct ProrpConfig {
  PolicyConfig policy;
  ControlPlaneConfig control_plane;

  Status Validate() const;

  /// Renders the configuration as a short single-line summary for bench
  /// harness output.
  std::string ToString() const;
};

}  // namespace prorp

#endif  // PRORP_COMMON_CONFIG_H_
