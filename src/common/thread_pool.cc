#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace prorp::common {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

size_t ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("PRORP_NUM_THREADS")) {
    char* end = nullptr;
    long n = std::strtol(env, &end, 10);
    if (end != env && n >= 1) return static_cast<size_t>(n);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace prorp::common
