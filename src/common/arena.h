#ifndef PRORP_COMMON_ARENA_H_
#define PRORP_COMMON_ARENA_H_

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace prorp {

/// Typed chunked arena: objects are placement-new'd into large chunks and
/// destroyed in bulk.  Compared with one `std::unique_ptr<T>` per object
/// (the pre-scale-PR layout of per-database controllers and history
/// stores), this removes one pointer chase plus one allocator round-trip
/// per object and keeps same-kind objects contiguous, which is what makes
/// the per-tick working set of a million-database fleet cache-dense.
///
/// Addresses are stable for the life of the pool: chunks are never
/// reallocated or compacted, so raw `T*` handed out by Emplace stay valid
/// until Clear()/destruction.  Objects are destroyed in creation order.
template <typename T>
class ArenaPool {
 public:
  explicit ArenaPool(size_t chunk_capacity = 4096)
      : chunk_capacity_(chunk_capacity == 0 ? 1 : chunk_capacity) {}

  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  ~ArenaPool() { Clear(); }

  /// Constructs a T in the arena and returns its (stable) address.
  template <typename... Args>
  T* Emplace(Args&&... args) {
    if (chunks_.empty() || chunks_.back().used == chunk_capacity_) {
      Chunk chunk;
      chunk.data.reset(static_cast<std::byte*>(::operator new(
          chunk_capacity_ * sizeof(T), std::align_val_t(alignof(T)))));
      chunks_.push_back(std::move(chunk));
    }
    Chunk& chunk = chunks_.back();
    T* slot = reinterpret_cast<T*>(chunk.data.get()) + chunk.used;
    T* obj = new (slot) T(std::forward<Args>(args)...);
    ++chunk.used;  // only counted once construction succeeded
    ++size_;
    return obj;
  }

  /// Destroys every object and releases every chunk.
  void Clear() {
    for (Chunk& chunk : chunks_) {
      T* objects = reinterpret_cast<T*>(chunk.data.get());
      for (size_t i = 0; i < chunk.used; ++i) objects[i].~T();
    }
    chunks_.clear();
    size_ = 0;
  }

  size_t size() const { return size_; }

  /// Bytes reserved by the pool (chunk payloads only).
  size_t MemoryBytes() const {
    return chunks_.size() * chunk_capacity_ * sizeof(T);
  }

 private:
  struct Deleter {
    void operator()(std::byte* p) const {
      ::operator delete(p, std::align_val_t(alignof(T)));
    }
  };
  struct Chunk {
    std::unique_ptr<std::byte[], Deleter> data;
    size_t used = 0;
  };

  size_t chunk_capacity_;
  size_t size_ = 0;
  std::vector<Chunk> chunks_;
};

}  // namespace prorp

#endif  // PRORP_COMMON_ARENA_H_
