#ifndef PRORP_COMMON_TIME_UTIL_H_
#define PRORP_COMMON_TIME_UTIL_H_

#include <cstdint>
#include <string>

namespace prorp {

/// All ProRP timestamps are epoch seconds (seconds since 1970-01-01 00:00
/// UTC), matching the paper's sys.pause_resume_history.time_snapshot column
/// and Azure's per-second billing granularity.
using EpochSeconds = int64_t;

/// Durations are also plain second counts.
using DurationSeconds = int64_t;

inline constexpr DurationSeconds kSecondsPerMinute = 60;
inline constexpr DurationSeconds kSecondsPerHour = 60 * 60;
inline constexpr DurationSeconds kSecondsPerDay = 24 * kSecondsPerHour;
inline constexpr DurationSeconds kSecondsPerWeek = 7 * kSecondsPerDay;

constexpr DurationSeconds Minutes(int64_t m) { return m * kSecondsPerMinute; }
constexpr DurationSeconds Hours(int64_t h) { return h * kSecondsPerHour; }
constexpr DurationSeconds Days(int64_t d) { return d * kSecondsPerDay; }
constexpr DurationSeconds Weeks(int64_t w) { return w * kSecondsPerWeek; }

/// Start of the UTC day containing `t`.
constexpr EpochSeconds StartOfDay(EpochSeconds t) {
  EpochSeconds r = t % kSecondsPerDay;
  if (r < 0) r += kSecondsPerDay;
  return t - r;
}

/// Offset of `t` within its UTC day, in [0, 86400).
constexpr DurationSeconds SecondsIntoDay(EpochSeconds t) {
  return t - StartOfDay(t);
}

/// Day of week for `t` where 0 = Thursday (1970-01-01 was a Thursday),
/// i.e. (DayIndex(t) % 7).  Use WeekdayIndex for a Monday-based index.
constexpr int64_t DayIndex(EpochSeconds t) {
  return StartOfDay(t) / kSecondsPerDay;
}

/// Monday-based weekday index in [0, 6]; 0 = Monday ... 6 = Sunday.
constexpr int WeekdayIndex(EpochSeconds t) {
  // 1970-01-01 (day 0) was a Thursday, i.e. Monday-based index 3.
  int64_t idx = (DayIndex(t) + 3) % 7;
  if (idx < 0) idx += 7;
  return static_cast<int>(idx);
}

constexpr bool IsWeekend(EpochSeconds t) { return WeekdayIndex(t) >= 5; }

/// Formats epoch seconds as "YYYY-MM-DD HH:MM:SS" (UTC).  This is the
/// human-readable conversion used by the customer-facing materialized view
/// over the history table (Section 5 of the paper).
std::string FormatTimestamp(EpochSeconds t);

/// Formats a duration as e.g. "2d 03:15:07" or "00:05:00".
std::string FormatDuration(DurationSeconds d);

}  // namespace prorp

#endif  // PRORP_COMMON_TIME_UTIL_H_
