#include "common/random.h"

#include <cmath>

namespace prorp {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  seed_ = seed;
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  // Lemire's nearly-divisionless bounded generation; the modulo bias is
  // negligible for simulation purposes but we reject anyway for exactness.
  uint64_t threshold = (-n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::NextGaussian(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double z = std::sqrt(-2.0 * std::log(u1)) *
             std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

Rng Rng::Fork() { return Rng(NextU64()); }

Rng Rng::ForkStream(uint64_t stream_id) const {
  // Mix (seed, stream_id) through two SplitMix64 rounds so adjacent
  // stream ids land far apart; const — the parent's state is untouched.
  uint64_t x = seed_ ^ (stream_id * 0x9e3779b97f4a7c15ULL);
  uint64_t child = SplitMix64(x);
  child ^= SplitMix64(x);
  return Rng(child);
}

}  // namespace prorp
