#ifndef PRORP_COMMON_CLOCK_H_
#define PRORP_COMMON_CLOCK_H_

#include "common/time_util.h"

namespace prorp {

/// Source of "now" for components that must run both against the real wall
/// clock (production-style usage of the library) and against the simulated
/// clock of the fleet simulator.  Implementations: SystemClock below and
/// sim::SimClock.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in epoch seconds.
  virtual EpochSeconds Now() const = 0;
};

/// Wall-clock implementation backed by time(2).
class SystemClock : public Clock {
 public:
  EpochSeconds Now() const override;
};

/// Fixed, manually advanced clock; handy in unit tests.
class ManualClock : public Clock {
 public:
  explicit ManualClock(EpochSeconds start = 0) : now_(start) {}

  EpochSeconds Now() const override { return now_; }
  void Set(EpochSeconds t) { now_ = t; }
  void Advance(DurationSeconds d) { now_ += d; }

 private:
  EpochSeconds now_;
};

}  // namespace prorp

#endif  // PRORP_COMMON_CLOCK_H_
