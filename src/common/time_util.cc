#include "common/time_util.h"

#include <cinttypes>
#include <cstdio>
#include <ctime>

namespace prorp {

std::string FormatTimestamp(EpochSeconds t) {
  std::time_t tt = static_cast<std::time_t>(t);
  std::tm tm_utc{};
  gmtime_r(&tt, &tm_utc);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec);
  return buf;
}

std::string FormatDuration(DurationSeconds d) {
  bool negative = d < 0;
  if (negative) d = -d;
  int64_t days = d / kSecondsPerDay;
  int64_t rem = d % kSecondsPerDay;
  int64_t hours = rem / kSecondsPerHour;
  rem %= kSecondsPerHour;
  int64_t minutes = rem / kSecondsPerMinute;
  int64_t seconds = rem % kSecondsPerMinute;
  char buf[48];
  if (days > 0) {
    std::snprintf(buf, sizeof(buf),
                  "%s%" PRId64 "d %02" PRId64 ":%02" PRId64 ":%02" PRId64,
                  negative ? "-" : "", days, hours, minutes, seconds);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "%s%02" PRId64 ":%02" PRId64 ":%02" PRId64,
                  negative ? "-" : "", hours, minutes, seconds);
  }
  return buf;
}

}  // namespace prorp
