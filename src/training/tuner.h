#ifndef PRORP_TRAINING_TUNER_H_
#define PRORP_TRAINING_TUNER_H_

#include <vector>

#include "common/result.h"
#include "sim/fleet_simulator.h"
#include "workload/trace.h"

namespace prorp::training {

/// One evaluated configuration of the offline training pipeline.
struct Trial {
  PredictionConfig prediction;
  telemetry::KpiReport kpi;
  double score = 0;
};

/// The offline training pipeline of Section 8, standing in for the
/// monthly Azure ML run: replay a training interval of per-database
/// activity under every candidate (window size, confidence threshold,
/// history length, seasonality), score the QoS/COGS trade-off, pick the
/// best configuration, and validate it on a held-out test interval.
struct TuningOptions {
  /// Base simulation setup; mode is forced to proactive.  measure_from /
  /// end are overridden per interval below.
  sim::SimOptions base;

  /// Training interval (parameter selection).
  EpochSeconds train_from = 0;
  EpochSeconds train_to = 0;
  /// Held-out test interval (validation; Figure 7's role).
  EpochSeconds test_from = 0;
  EpochSeconds test_to = 0;

  /// Grid axes; empty axes keep the base config's value.
  std::vector<DurationSeconds> window_sizes;
  std::vector<double> confidence_thresholds;
  std::vector<DurationSeconds> history_lengths;
  std::vector<DurationSeconds> seasonalities;

  /// Score = QoS% - idle_weight * idle%.  The paper prioritizes quality
  /// of service over operational costs (Section 9.2), i.e. weight <= 1.
  double idle_weight = 1.0;
};

struct TuningReport {
  /// All trials, best score first.
  std::vector<Trial> trials;
  /// Winner on the training interval.
  Trial best;
  /// The winner's KPIs on the held-out test interval.
  telemetry::KpiReport test_kpi;
};

/// Runs the grid search.  Deterministic given options.base.seed.
Result<TuningReport> RunTuningPipeline(
    const std::vector<workload::DbTrace>& traces,
    const TuningOptions& options);

/// Impact of one configuration knob on the tuning score (paper Section 11,
/// future work 2: automate knob selection).  Sensitivity is the spread
/// (max - min) of the mean score across the knob's values, holding the
/// grid's other axes marginalized — the knobs worth tuning are the ones
/// with the largest spread.
struct KnobSensitivity {
  std::string knob;
  double score_spread = 0;
};

/// Ranks the grid's knobs by score spread, most impactful first.
/// Requires a report whose trials came from RunTuningPipeline.
std::vector<KnobSensitivity> RankKnobSensitivity(
    const TuningReport& report);

}  // namespace prorp::training

#endif  // PRORP_TRAINING_TUNER_H_
