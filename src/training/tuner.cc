#include "training/tuner.h"

#include <algorithm>
#include <map>

namespace prorp::training {
namespace {

double Score(const telemetry::KpiReport& kpi, double idle_weight) {
  return kpi.QosAvailablePct() - idle_weight * kpi.IdleTotalPct();
}

}  // namespace

Result<TuningReport> RunTuningPipeline(
    const std::vector<workload::DbTrace>& traces,
    const TuningOptions& options) {
  if (options.train_to <= options.train_from ||
      options.test_to <= options.test_from) {
    return Status::InvalidArgument("train/test intervals required");
  }
  const PredictionConfig base_pred = options.base.config.policy.prediction;
  std::vector<DurationSeconds> windows = options.window_sizes;
  if (windows.empty()) windows = {base_pred.window_size};
  std::vector<double> confidences = options.confidence_thresholds;
  if (confidences.empty()) confidences = {base_pred.confidence_threshold};
  std::vector<DurationSeconds> histories = options.history_lengths;
  if (histories.empty()) histories = {base_pred.history_length};
  std::vector<DurationSeconds> seasons = options.seasonalities;
  if (seasons.empty()) seasons = {base_pred.seasonality};

  TuningReport report;
  for (DurationSeconds w : windows) {
    for (double c : confidences) {
      for (DurationSeconds h : histories) {
        for (DurationSeconds season : seasons) {
          sim::SimOptions run = options.base;
          run.mode = policy::PolicyMode::kProactive;
          run.config.policy.prediction.window_size = w;
          run.config.policy.prediction.confidence_threshold = c;
          run.config.policy.prediction.history_length = h;
          run.config.policy.prediction.seasonality = season;
          if (season >= Weeks(1)) {
            // The horizon may span up to one season.
            run.config.policy.prediction.prediction_horizon =
                std::min<DurationSeconds>(
                    run.config.policy.prediction.prediction_horizon,
                    season);
          }
          run.measure_from = options.train_from;
          run.end = options.train_to;
          Status valid = run.config.Validate();
          if (!valid.ok()) continue;  // infeasible grid point
          PRORP_ASSIGN_OR_RETURN(sim::SimReport sim_report,
                                 sim::RunFleetSimulation(traces, run));
          Trial trial;
          trial.prediction = run.config.policy.prediction;
          trial.kpi = sim_report.kpi;
          trial.score = Score(sim_report.kpi, options.idle_weight);
          report.trials.push_back(std::move(trial));
        }
      }
    }
  }
  if (report.trials.empty()) {
    return Status::InvalidArgument("grid produced no feasible trials");
  }
  std::stable_sort(report.trials.begin(), report.trials.end(),
                   [](const Trial& a, const Trial& b) {
                     return a.score > b.score;
                   });
  report.best = report.trials.front();

  // Validate the winner on the held-out interval.
  sim::SimOptions validation = options.base;
  validation.mode = policy::PolicyMode::kProactive;
  validation.config.policy.prediction = report.best.prediction;
  validation.measure_from = options.test_from;
  validation.end = options.test_to;
  PRORP_ASSIGN_OR_RETURN(sim::SimReport test_report,
                         sim::RunFleetSimulation(traces, validation));
  report.test_kpi = test_report.kpi;
  return report;
}

std::vector<KnobSensitivity> RankKnobSensitivity(
    const TuningReport& report) {
  // Mean score per value of each knob, then spread across values.
  struct Acc {
    double sum = 0;
    int n = 0;
  };
  std::map<std::string, std::map<double, Acc>> by_knob;
  for (const Trial& t : report.trials) {
    double score = t.score;
    auto add = [&](const std::string& knob, double value) {
      Acc& acc = by_knob[knob][value];
      acc.sum += score;
      ++acc.n;
    };
    add("window_size", static_cast<double>(t.prediction.window_size));
    add("confidence_threshold", t.prediction.confidence_threshold);
    add("history_length", static_cast<double>(t.prediction.history_length));
    add("seasonality", static_cast<double>(t.prediction.seasonality));
  }
  std::vector<KnobSensitivity> ranking;
  for (const auto& [knob, values] : by_knob) {
    if (values.size() < 2) continue;  // not varied in this grid
    double lo = 0, hi = 0;
    bool first = true;
    for (const auto& [value, acc] : values) {
      double mean = acc.sum / acc.n;
      if (first) {
        lo = hi = mean;
        first = false;
      } else {
        lo = std::min(lo, mean);
        hi = std::max(hi, mean);
      }
    }
    ranking.push_back({knob, hi - lo});
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const KnobSensitivity& a, const KnobSensitivity& b) {
                     return a.score_spread > b.score_spread;
                   });
  return ranking;
}

}  // namespace prorp::training
