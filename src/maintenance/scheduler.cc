#include "maintenance/scheduler.h"

#include <algorithm>

#include "history/mem_history_store.h"

namespace prorp::maintenance {

std::string_view MaintenanceOpKindName(MaintenanceOp::Kind kind) {
  switch (kind) {
    case MaintenanceOp::Kind::kBackup:
      return "backup";
    case MaintenanceOp::Kind::kStatsRefresh:
      return "stats_refresh";
    case MaintenanceOp::Kind::kSoftwareUpdate:
      return "software_update";
  }
  return "unknown";
}

Result<EpochSeconds> FixedHourScheduler::Schedule(
    const MaintenanceOp& op, const history::HistoryStore&) {
  if (op.window_end - op.window_start < op.duration) {
    return Status::InvalidArgument("maintenance window too small");
  }
  // The fixed hour on the window's first day, clamped into the window.
  EpochSeconds candidate = StartOfDay(op.window_start) + hour_of_day_;
  if (candidate < op.window_start) candidate += Days(1);
  return std::clamp(candidate, op.window_start,
                    op.window_end - op.duration);
}

Result<EpochSeconds> PredictionAlignedScheduler::Schedule(
    const MaintenanceOp& op, const history::HistoryStore& history) {
  if (op.window_end - op.window_start < op.duration) {
    return Status::InvalidArgument("maintenance window too small");
  }
  if (predictor_ != nullptr) {
    auto pred = predictor_->PredictNextActivity(history, op.window_start);
    if (pred.ok() && pred->HasPrediction() &&
        pred->start + op.duration <= op.window_end) {
      // Aim one third into the predicted window: late enough that the
      // customer login has (probabilistically) happened, early enough to
      // fit before the window closes.
      EpochSeconds third =
          pred->start + std::max<DurationSeconds>(
                            (pred->end - pred->start) / 3, Minutes(10));
      EpochSeconds start = std::clamp(third, op.window_start,
                                      op.window_end - op.duration);
      if (start + op.duration <= op.window_end) return start;
    }
    // Prediction unavailable or does not fit: fall back below.
  }
  return fallback_.Schedule(op, history);
}

Result<MaintenanceReport> ReplayMaintenance(const workload::DbTrace& trace,
                                            MaintenanceScheduler& scheduler,
                                            EpochSeconds from,
                                            EpochSeconds to,
                                            DurationSeconds op_duration) {
  if (to <= from) return Status::InvalidArgument("empty replay window");
  MaintenanceReport report;
  // History accumulates as the replay progresses; sessions are folded in
  // day by day so the scheduler only sees the past.
  history::MemHistoryStore history;
  size_t next_session = 0;

  for (EpochSeconds day = StartOfDay(from); day < to; day += Days(1)) {
    // Fold in all sessions that completed before this day.
    while (next_session < trace.sessions.size() &&
           trace.sessions[next_session].end <= day) {
      const workload::Session& s = trace.sessions[next_session];
      PRORP_RETURN_IF_ERROR(
          history.InsertHistory(s.start, history::kEventLogin));
      PRORP_RETURN_IF_ERROR(
          history.InsertHistory(s.end, history::kEventLogout));
      ++next_session;
    }
    (void)history.DeleteOldHistory(Days(28), day);

    MaintenanceOp op;
    op.duration = op_duration;
    op.window_start = day;
    op.window_end = std::min(day + Days(1), to);
    if (op.window_end - op.window_start < op.duration) continue;
    PRORP_ASSIGN_OR_RETURN(EpochSeconds start,
                           scheduler.Schedule(op, history));
    ++report.ops_total;
    bool covered = false;
    for (const workload::Session& s : trace.sessions) {
      if (s.start <= start && start + op.duration <= s.end) {
        covered = true;
        break;
      }
      if (s.start > start + op.duration) break;
    }
    if (covered) {
      ++report.ops_during_activity;
    } else {
      ++report.ops_dedicated_resume;
    }
  }
  return report;
}

}  // namespace prorp::maintenance
