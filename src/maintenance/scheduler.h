#ifndef PRORP_MAINTENANCE_SCHEDULER_H_
#define PRORP_MAINTENANCE_SCHEDULER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "forecast/predictor.h"
#include "workload/trace.h"

namespace prorp::maintenance {

/// A system maintenance operation on one database (paper Section 11,
/// future work 4: backups, software updates, version upgrades, stats
/// refresh).  Maintenance resumes the database's resources if it is
/// paused — the paper explicitly excludes such resumes from the customer
/// activity history (Section 3.3) — so every maintenance run on a paused
/// database costs an extra resume/pause cycle.
struct MaintenanceOp {
  enum class Kind { kBackup, kStatsRefresh, kSoftwareUpdate };
  Kind kind = Kind::kBackup;
  DurationSeconds duration = Minutes(10);
  /// Earliest allowed start and hard deadline.
  EpochSeconds window_start = 0;
  EpochSeconds window_end = 0;
};

std::string_view MaintenanceOpKindName(MaintenanceOp::Kind kind);

/// Picks a start time for a maintenance op within its window.
class MaintenanceScheduler {
 public:
  virtual ~MaintenanceScheduler() = default;

  /// Returns the chosen start time in
  /// [op.window_start, op.window_end - op.duration].
  virtual Result<EpochSeconds> Schedule(
      const MaintenanceOp& op, const history::HistoryStore& history) = 0;

  virtual std::string name() const = 0;
};

/// The classic production default: run maintenance at a fixed off-peak
/// hour (e.g. 03:00 local), regardless of the database's own pattern.
class FixedHourScheduler : public MaintenanceScheduler {
 public:
  explicit FixedHourScheduler(DurationSeconds hour_of_day = Hours(3))
      : hour_of_day_(hour_of_day) {}

  Result<EpochSeconds> Schedule(const MaintenanceOp& op,
                                const history::HistoryStore&) override;
  std::string name() const override { return "fixed_hour"; }

 private:
  DurationSeconds hour_of_day_;
};

/// Prediction-aligned scheduling: place the op inside the predicted
/// customer-activity window, when the database will be online anyway, so
/// no dedicated resume is needed.  Falls back to the fixed hour when
/// nothing is predicted inside the op's window.
class PredictionAlignedScheduler : public MaintenanceScheduler {
 public:
  PredictionAlignedScheduler(const forecast::Predictor* predictor,
                             DurationSeconds fallback_hour = Hours(3))
      : predictor_(predictor), fallback_(fallback_hour) {}

  Result<EpochSeconds> Schedule(
      const MaintenanceOp& op,
      const history::HistoryStore& history) override;
  std::string name() const override { return "prediction_aligned"; }

 private:
  const forecast::Predictor* predictor_;
  FixedHourScheduler fallback_;
};

/// Outcome of replaying a maintenance cadence against what the customer
/// actually did.
struct MaintenanceReport {
  uint64_t ops_total = 0;
  /// The op ran while the customer was online: zero extra resumes.
  uint64_t ops_during_activity = 0;
  /// The op hit a paused database: one dedicated resume/pause cycle.
  uint64_t ops_dedicated_resume = 0;

  double CoScheduledPct() const {
    return ops_total == 0
               ? 0
               : 100.0 * static_cast<double>(ops_during_activity) /
                     static_cast<double>(ops_total);
  }
};

/// Replays one maintenance op per day over [from, to) for the database
/// whose real activity is `trace`, building its history as days pass and
/// asking `scheduler` for each day's slot (window = that whole day).
/// An op counts as co-scheduled when its full duration lies inside an
/// actual customer session.
Result<MaintenanceReport> ReplayMaintenance(
    const workload::DbTrace& trace, MaintenanceScheduler& scheduler,
    EpochSeconds from, EpochSeconds to,
    DurationSeconds op_duration = Minutes(10));

}  // namespace prorp::maintenance

#endif  // PRORP_MAINTENANCE_SCHEDULER_H_
