#include "telemetry/kpi.h"

#include <cstdio>
#include <vector>

namespace prorp::telemetry {

std::string KpiReport::ToString() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "QoS avail=%5.1f%% (n=%llu)  idle: logical=%4.1f%% "
      "pro_ok=%4.1f%% pro_wrong=%4.1f%% total=%4.1f%%  active=%4.1f%% "
      "saved=%4.1f%% unavail=%5.2f%%",
      QosAvailablePct(), static_cast<unsigned long long>(logins_total),
      idle_logical_pct, idle_proactive_correct_pct,
      idle_proactive_wrong_pct, IdleTotalPct(), active_pct, reclaimed_pct,
      unavailable_pct);
  return buf;
}

KpiReport ComputeKpi(const Recorder& recorder, const UsageLedger& ledger) {
  return ComputeKpi(recorder, ledger.fleet_total());
}

KpiReport ComputeKpi(const Recorder& recorder, const TimeBreakdown& t) {
  return ComputeKpi(EventCounts::FromRecorder(recorder), t);
}

KpiReport ComputeKpi(const EventCounts& counts, const TimeBreakdown& t) {
  KpiReport report;
  report.logins_available = counts.Count(EventKind::kLoginAvailable);
  report.logins_reactive = counts.Count(EventKind::kLoginReactive);
  report.logical_pauses = counts.Count(EventKind::kLogicalPause);
  report.physical_pauses = counts.Count(EventKind::kPhysicalPause);
  report.proactive_resumes = counts.Count(EventKind::kProactiveResume);
  report.forced_evictions = counts.Count(EventKind::kForcedEviction);
  report.predictions = counts.Count(EventKind::kPrediction);
  report.logins_total = report.logins_available + report.logins_reactive;

  double total = t.Total();
  if (total > 0) {
    report.idle_logical_pct = 100.0 * t.idle_logical / total;
    report.idle_proactive_correct_pct =
        100.0 * t.idle_proactive_correct / total;
    report.idle_proactive_wrong_pct = 100.0 * t.idle_proactive_wrong / total;
    report.active_pct = 100.0 * t.active / total;
    report.reclaimed_pct = 100.0 * t.reclaimed / total;
    report.unavailable_pct = 100.0 * t.unavailable / total;
  }
  return report;
}

BoxPlot WorkflowFrequency(const Recorder& recorder, EventKind kind,
                          DurationSeconds interval, EpochSeconds start,
                          EpochSeconds end) {
  if (interval <= 0 || end <= start) return BoxPlot{};
  size_t buckets = static_cast<size_t>((end - start + interval - 1) /
                                       interval);
  std::vector<double> counts(buckets, 0);
  for (const FleetEvent& e : recorder.events()) {
    if (e.kind != kind || e.time < start || e.time >= end) continue;
    counts[static_cast<size_t>((e.time - start) / interval)] += 1;
  }
  Summary summary;
  summary.AddAll(counts);
  return summary.ToBoxPlot();
}

}  // namespace prorp::telemetry
