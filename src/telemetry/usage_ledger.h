#ifndef PRORP_TELEMETRY_USAGE_LEDGER_H_
#define PRORP_TELEMETRY_USAGE_LEDGER_H_

#include <cstdint>
#include <vector>

#include "common/time_util.h"
#include "telemetry/events.h"

namespace prorp::telemetry {

/// The mutually exclusive phases a database's resources can be in, refining
/// Definition 2.2's four quadrants with the paper's idle-time attribution
/// (Section 8): idle time is split into logical-pause idle and
/// proactive-resume idle, and proactive resumes are classified correct
/// (customer used the pre-warmed resources) or wrong (they were reclaimed
/// unused).
enum class Phase : uint8_t {
  kActive,            // D=1, A=1: resources used, customer billed
  kIdleLogical,       // D=0, A=1: ordinary logical pause
  kIdleProactive,     // D=0, A=1: pre-warmed, awaiting predicted login
  kReclaimed,         // D=0, A=0: resources saved
  kUnavailable,       // D=1, A=0: reactive-resume latency window
};

/// Accumulated seconds per phase; proactive idle split by outcome.
struct TimeBreakdown {
  double active = 0;
  double idle_logical = 0;
  double idle_proactive_correct = 0;
  double idle_proactive_wrong = 0;
  double reclaimed = 0;
  double unavailable = 0;

  double IdleTotal() const {
    return idle_logical + idle_proactive_correct + idle_proactive_wrong;
  }
  double Total() const {
    return active + IdleTotal() + reclaimed + unavailable;
  }

  TimeBreakdown& operator+=(const TimeBreakdown& other);
};

/// Integrates per-database phase durations as the simulation progresses.
/// A kIdleProactive segment is held pending until it closes: ending in
/// kActive classifies it correct, anything else wrong (including the end
/// of the observation window — the pre-warm was not used).
class UsageLedger {
 public:
  /// `track_per_db` false skips the per-database breakdown and folds every
  /// closed segment straight into the fleet total — half the random memory
  /// traffic per phase change, which matters at million-database scale.
  /// The totals are bit-identical either way: segment durations are whole
  /// seconds, and integer-valued doubles below 2^53 add exactly, so the
  /// accumulation order cannot change the result.
  UsageLedger(size_t num_dbs, EpochSeconds start, bool track_per_db = true);

  /// Switches `db` to `phase` at `now`, closing the previous segment.
  void SetPhase(DbId db, Phase phase, EpochSeconds now);

  /// Closes all open segments at the end of the observation window.
  void Finish(EpochSeconds end);

  /// Fleet-wide totals (valid after Finish).
  const TimeBreakdown& fleet_total() const { return fleet_total_; }

  /// Per-database totals (valid after Finish; requires track_per_db).
  const TimeBreakdown& db_total(DbId db) const { return per_db_[db]; }

  size_t num_dbs() const { return open_.size(); }

 private:
  struct OpenSegment {
    EpochSeconds since = 0;
    Phase phase = Phase::kActive;
    bool started = false;
  };

  void CloseSegment(DbId db, EpochSeconds now, Phase next_phase);

  std::vector<OpenSegment> open_;
  /// Empty when per-database tracking is off.
  std::vector<TimeBreakdown> per_db_;
  TimeBreakdown fleet_total_;
  EpochSeconds start_;
  bool finished_ = false;
};

}  // namespace prorp::telemetry

#endif  // PRORP_TELEMETRY_USAGE_LEDGER_H_
