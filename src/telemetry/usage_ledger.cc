#include "telemetry/usage_ledger.h"

#include <cassert>

namespace prorp::telemetry {

TimeBreakdown& TimeBreakdown::operator+=(const TimeBreakdown& other) {
  active += other.active;
  idle_logical += other.idle_logical;
  idle_proactive_correct += other.idle_proactive_correct;
  idle_proactive_wrong += other.idle_proactive_wrong;
  reclaimed += other.reclaimed;
  unavailable += other.unavailable;
  return *this;
}

UsageLedger::UsageLedger(size_t num_dbs, EpochSeconds start,
                         bool track_per_db)
    : open_(num_dbs), start_(start) {
  if (track_per_db) per_db_.resize(num_dbs);
}

void UsageLedger::SetPhase(DbId db, Phase phase, EpochSeconds now) {
  assert(db < open_.size());
  CloseSegment(db, now, phase);
  open_[db] = {now, phase, true};
}

void UsageLedger::CloseSegment(DbId db, EpochSeconds now, Phase next_phase) {
  OpenSegment& seg = open_[db];
  if (!seg.started) return;
  double dur = static_cast<double>(now - seg.since);
  if (dur < 0) dur = 0;
  TimeBreakdown& t = per_db_.empty() ? fleet_total_ : per_db_[db];
  switch (seg.phase) {
    case Phase::kActive:
      t.active += dur;
      break;
    case Phase::kIdleLogical:
      t.idle_logical += dur;
      break;
    case Phase::kIdleProactive:
      // Classified by what ends it: a login means the customer used the
      // pre-warmed resources (correct); anything else means they did not.
      if (next_phase == Phase::kActive) {
        t.idle_proactive_correct += dur;
      } else {
        t.idle_proactive_wrong += dur;
      }
      break;
    case Phase::kReclaimed:
      t.reclaimed += dur;
      break;
    case Phase::kUnavailable:
      t.unavailable += dur;
      break;
  }
}

void UsageLedger::Finish(EpochSeconds end) {
  if (finished_) return;
  finished_ = true;
  for (DbId db = 0; db < open_.size(); ++db) {
    // An unused pre-warm at window end counts as wrong; pass kReclaimed.
    CloseSegment(db, end, Phase::kReclaimed);
    open_[db].started = false;
    if (!per_db_.empty()) fleet_total_ += per_db_[db];
  }
}

}  // namespace prorp::telemetry
