#ifndef PRORP_TELEMETRY_REGION_REPORT_H_
#define PRORP_TELEMETRY_REGION_REPORT_H_

#include <string>

#include "telemetry/kpi.h"

namespace prorp::telemetry {

/// Inputs for the human-readable region report (the stand-in for the
/// PowerBI monitoring dashboards the paper reuses, Section 3.1).
struct RegionReportInput {
  std::string region_name;
  std::string policy_name;
  EpochSeconds from = 0;
  EpochSeconds to = 0;
  size_t num_databases = 0;
  KpiReport kpi;
  /// Optional comparison baseline (e.g. the reactive policy on the same
  /// fleet); pass nullptr to omit the comparison section.
  const KpiReport* baseline = nullptr;
  std::string baseline_name;
};

/// Renders a Markdown operations report: QoS, idle-time attribution,
/// workflow volumes, and (when a baseline is given) the delta table an
/// on-call engineer would scan first.
std::string RenderRegionReport(const RegionReportInput& input);

}  // namespace prorp::telemetry

#endif  // PRORP_TELEMETRY_REGION_REPORT_H_
