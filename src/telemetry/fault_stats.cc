#include "telemetry/fault_stats.h"

#include <cinttypes>
#include <cstdio>

namespace prorp::telemetry {

void RobustnessReport::AccumulateShard(const RobustnessReport& shard) {
  resume_failures_outage += shard.resume_failures_outage;
  resume_failures_injected += shard.resume_failures_injected;
  degraded_enters += shard.degraded_enters;
  degraded_exits += shard.degraded_exits;
  history_errors += shard.history_errors;
  corruption_errors += shard.corruption_errors;
  corruption_detected += shard.corruption_detected;
  corruption_repaired += shard.corruption_repaired;
  corruption_quarantined += shard.corruption_quarantined;
  scrub_passes += shard.scrub_passes;
  scrub_pages += shard.scrub_pages;
  scrub_errors += shard.scrub_errors;
  maintenance_touches += shard.maintenance_touches;
  node_deaths += shard.node_deaths;
  node_rejoins += shard.node_rejoins;
  failover_requeues += shard.failover_requeues;
  failover_deduped += shard.failover_deduped;
  resume_failures_node_down += shard.resume_failures_node_down;
  outage_waited_logins += shard.outage_waited_logins;
  outage_wait_seconds += shard.outage_wait_seconds;
  failover_waited_logins += shard.failover_waited_logins;
  failover_wait_seconds += shard.failover_wait_seconds;
}

std::string RobustnessReport::ToString() const {
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "outages=%" PRIu64 " (%.1fh) fail_outage=%" PRIu64
                " fail_injected=%" PRIu64 " degraded=%" PRIu64 "/%" PRIu64
                " hist_err=%" PRIu64 " corrupt=%" PRIu64 " detected=%" PRIu64
                " repaired=%" PRIu64 " quarantined=%" PRIu64
                " scrubs=%" PRIu64 " scrub_pages=%" PRIu64
                " scrub_err=%" PRIu64 " node_crashes=%" PRIu64
                " node_deaths=%" PRIu64 " rejoins=%" PRIu64
                " failover_requeues=%" PRIu64 " failover_deduped=%" PRIu64
                " node_down_refusals=%" PRIu64 " outage_waits=%" PRIu64
                " (%" PRIu64 "s) failover_waits=%" PRIu64 " (%" PRIu64 "s)",
                outage_windows,
                static_cast<double>(outage_seconds) / 3600.0,
                resume_failures_outage, resume_failures_injected,
                degraded_enters, degraded_exits, history_errors,
                corruption_errors, corruption_detected, corruption_repaired,
                corruption_quarantined, scrub_passes, scrub_pages,
                scrub_errors, node_crash_windows, node_deaths, node_rejoins,
                failover_requeues, failover_deduped,
                resume_failures_node_down, outage_waited_logins,
                outage_wait_seconds, failover_waited_logins,
                failover_wait_seconds);
  return buf;
}

}  // namespace prorp::telemetry
