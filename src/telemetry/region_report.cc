#include "telemetry/region_report.h"

#include <cstdarg>
#include <cstdio>

namespace prorp::telemetry {
namespace {

void Appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

std::string RenderRegionReport(const RegionReportInput& input) {
  std::string out;
  Appendf(out, "# ProRP region report — %s (%s policy)\n\n",
          input.region_name.c_str(), input.policy_name.c_str());
  Appendf(out, "Window: %s .. %s UTC, %zu databases\n\n",
          FormatTimestamp(input.from).c_str(),
          FormatTimestamp(input.to).c_str(), input.num_databases);

  const KpiReport& kpi = input.kpi;
  Appendf(out, "## Quality of service\n\n");
  Appendf(out,
          "- first logins after idle: %llu, of which **%.1f%%** found "
          "resources available\n",
          static_cast<unsigned long long>(kpi.logins_total),
          kpi.QosAvailablePct());
  Appendf(out, "- reactive resumes (customer-visible delay): %llu\n\n",
          static_cast<unsigned long long>(kpi.logins_reactive));

  Appendf(out, "## Operational cost\n\n");
  Appendf(out, "| phase | %% of database-time |\n|---|---|\n");
  Appendf(out, "| active (billed) | %.1f |\n", kpi.active_pct);
  Appendf(out, "| idle, logical pause | %.1f |\n", kpi.idle_logical_pct);
  Appendf(out, "| idle, correct pre-warm | %.1f |\n",
          kpi.idle_proactive_correct_pct);
  Appendf(out, "| idle, wrong pre-warm | %.1f |\n",
          kpi.idle_proactive_wrong_pct);
  Appendf(out, "| reclaimed (saved) | %.1f |\n", kpi.reclaimed_pct);
  Appendf(out, "| unavailable | %.2f |\n\n", kpi.unavailable_pct);

  Appendf(out, "## Workflow volumes\n\n");
  Appendf(out,
          "logical pauses %llu · physical pauses %llu · proactive "
          "resumes %llu · forced evictions %llu · predictions %llu\n",
          static_cast<unsigned long long>(kpi.logical_pauses),
          static_cast<unsigned long long>(kpi.physical_pauses),
          static_cast<unsigned long long>(kpi.proactive_resumes),
          static_cast<unsigned long long>(kpi.forced_evictions),
          static_cast<unsigned long long>(kpi.predictions));

  if (input.baseline != nullptr) {
    const KpiReport& base = *input.baseline;
    Appendf(out, "\n## vs %s\n\n", input.baseline_name.c_str());
    Appendf(out, "| metric | %s | %s | delta |\n|---|---|---|---|\n",
            input.policy_name.c_str(), input.baseline_name.c_str());
    Appendf(out, "| QoS available %% | %.1f | %.1f | %+.1f |\n",
            kpi.QosAvailablePct(), base.QosAvailablePct(),
            kpi.QosAvailablePct() - base.QosAvailablePct());
    Appendf(out, "| idle %% | %.1f | %.1f | %+.1f |\n", kpi.IdleTotalPct(),
            base.IdleTotalPct(), kpi.IdleTotalPct() - base.IdleTotalPct());
    Appendf(out, "| saved %% | %.1f | %.1f | %+.1f |\n", kpi.reclaimed_pct,
            base.reclaimed_pct, kpi.reclaimed_pct - base.reclaimed_pct);
  }
  return out;
}

}  // namespace prorp::telemetry
