#ifndef PRORP_TELEMETRY_EVENTS_H_
#define PRORP_TELEMETRY_EVENTS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/time_util.h"

namespace prorp::telemetry {

/// Identifier of a simulated serverless database within a region.
using DbId = uint32_t;

/// Telemetry event kinds emitted by the online components (Section 9.1:
/// "telemetry is emitted by the customer activity tracking, the prediction
/// of next activity, and the proactive resume operation").
enum class EventKind : uint8_t {
  kLoginAvailable,   // first login after idle, resources were allocated
  kLoginReactive,    // first login after idle, reactive resume needed
  kLogout,           // customer activity ended
  kLogicalPause,     // resources logically paused (idle, unbilled)
  kPhysicalPause,    // resources reclaimed
  kProactiveResume,  // control plane pre-warmed the database
  kForcedEviction,   // capacity pressure reclaimed a logical pause
  kPrediction,       // next-activity prediction computed
};

/// Number of EventKind values (array-index bound for counters).
inline constexpr size_t kNumEventKinds = 8;

std::string_view EventKindName(EventKind kind);

struct FleetEvent {
  EpochSeconds time = 0;
  DbId db = 0;
  EventKind kind = EventKind::kLogout;
};

/// Append-only in-memory event log standing in for the Cosmos long-term
/// telemetry store; exportable to CSV for offline analysis.
class Recorder {
 public:
  void Record(EpochSeconds time, DbId db, EventKind kind) {
    events_.push_back({time, db, kind});
  }

  const std::vector<FleetEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  /// Number of events of `kind`.
  uint64_t Count(EventKind kind) const;

  /// Writes "time,db,kind" rows (with a header) to `path`.
  Status ExportCsv(const std::string& path) const;

 private:
  std::vector<FleetEvent> events_;
};

/// Fixed-size running event counters: the streaming replacement for
/// buffering every FleetEvent when only KPIs are needed.  O(1) memory
/// however long the run, and shard counters merge by plain addition, so
/// sharded totals are exactly the serial totals.
class EventCounts {
 public:
  void Add(EventKind kind) { ++counts_[static_cast<size_t>(kind)]; }

  uint64_t Count(EventKind kind) const {
    return counts_[static_cast<size_t>(kind)];
  }

  void Merge(const EventCounts& other) {
    for (size_t i = 0; i < kNumEventKinds; ++i) counts_[i] += other.counts_[i];
  }

  uint64_t total() const {
    uint64_t sum = 0;
    for (uint64_t c : counts_) sum += c;
    return sum;
  }

  /// Counters equivalent to a buffered recorder (for differential tests
  /// between full and streaming telemetry modes).
  static EventCounts FromRecorder(const Recorder& recorder) {
    EventCounts counts;
    for (const FleetEvent& e : recorder.events()) counts.Add(e.kind);
    return counts;
  }

 private:
  std::array<uint64_t, kNumEventKinds> counts_{};
};

}  // namespace prorp::telemetry

#endif  // PRORP_TELEMETRY_EVENTS_H_
