#ifndef PRORP_TELEMETRY_EVENTS_H_
#define PRORP_TELEMETRY_EVENTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/time_util.h"

namespace prorp::telemetry {

/// Identifier of a simulated serverless database within a region.
using DbId = uint32_t;

/// Telemetry event kinds emitted by the online components (Section 9.1:
/// "telemetry is emitted by the customer activity tracking, the prediction
/// of next activity, and the proactive resume operation").
enum class EventKind : uint8_t {
  kLoginAvailable,   // first login after idle, resources were allocated
  kLoginReactive,    // first login after idle, reactive resume needed
  kLogout,           // customer activity ended
  kLogicalPause,     // resources logically paused (idle, unbilled)
  kPhysicalPause,    // resources reclaimed
  kProactiveResume,  // control plane pre-warmed the database
  kForcedEviction,   // capacity pressure reclaimed a logical pause
  kPrediction,       // next-activity prediction computed
};

std::string_view EventKindName(EventKind kind);

struct FleetEvent {
  EpochSeconds time = 0;
  DbId db = 0;
  EventKind kind = EventKind::kLogout;
};

/// Append-only in-memory event log standing in for the Cosmos long-term
/// telemetry store; exportable to CSV for offline analysis.
class Recorder {
 public:
  void Record(EpochSeconds time, DbId db, EventKind kind) {
    events_.push_back({time, db, kind});
  }

  const std::vector<FleetEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  /// Number of events of `kind`.
  uint64_t Count(EventKind kind) const;

  /// Writes "time,db,kind" rows (with a header) to `path`.
  Status ExportCsv(const std::string& path) const;

 private:
  std::vector<FleetEvent> events_;
};

}  // namespace prorp::telemetry

#endif  // PRORP_TELEMETRY_EVENTS_H_
