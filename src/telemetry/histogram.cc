#include "telemetry/histogram.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace prorp::telemetry {
namespace {

/// Bucket of a non-negative value: 0 -> 0, v -> bit_width(v) clamped.
size_t BucketOf(int64_t v) {
  if (v <= 0) return 0;
  size_t b = 0;
  uint64_t u = static_cast<uint64_t>(v);
  while (u > 0) {
    u >>= 1;
    ++b;
  }
  return std::min(b, Histogram::kNumBuckets - 1);
}

/// Inclusive upper edge of a bucket: 0 -> 0, b -> 2^b - 1.
double UpperEdge(size_t b) {
  if (b == 0) return 0;
  return static_cast<double>((uint64_t{1} << b) - 1);
}

}  // namespace

void Histogram::Add(int64_t value) {
  if (value < 0) value = 0;  // clock skew guard; waits are non-negative
  ++buckets_[BucketOf(value)];
  ++count_;
  max_ = std::max(max_, value);
  sum_ += static_cast<uint64_t>(value);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t b = 0; b < kNumBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

double Histogram::Mean() const {
  if (count_ == 0) return 0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
  rank = std::clamp<uint64_t>(rank, 1, count_);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    cumulative += buckets_[b];
    if (cumulative >= rank) {
      return std::min(UpperEdge(b), static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%" PRIu64 " p50=%.0f p95=%.0f p99=%.0f max=%" PRId64,
                count_, Percentile(0.5), Percentile(0.95), Percentile(0.99),
                max_);
  return buf;
}

}  // namespace prorp::telemetry
