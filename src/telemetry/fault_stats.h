#ifndef PRORP_TELEMETRY_FAULT_STATS_H_
#define PRORP_TELEMETRY_FAULT_STATS_H_

#include <cstdint>
#include <string>

namespace prorp::telemetry {

/// Robustness telemetry of one simulation run: the fault-injection and
/// graceful-degradation counters that ride alongside the KPI report.
///
/// Two kinds of fields with different merge semantics:
///  * fleet-global fields describe the injected fault schedule itself
///    (node-outage windows are derived from the run seed alone, so every
///    shard of a sharded run computes the identical schedule) — merging
///    shard reports copies them from any one shard;
///  * per-shard counters count what actually happened inside a shard's
///    event loop — merging sums them.
struct RobustnessReport {
  // --- Fleet-global: the injected outage schedule ---
  uint64_t outage_windows = 0;   // node-down windows across all nodes
  uint64_t outage_seconds = 0;   // summed durations of those windows

  // --- Per-shard counters ---
  /// Proactive-resume workflow attempts that failed because the target
  /// database's node was inside an outage window.
  uint64_t resume_failures_outage = 0;
  /// Attempts failed by the probabilistic failure injector
  /// (SimOptions.resume_failure_probability).
  uint64_t resume_failures_injected = 0;
  /// Lifecycle-controller degraded-mode episodes (history-store errors
  /// forcing reactive behavior) summed over the fleet.
  uint64_t degraded_enters = 0;
  uint64_t degraded_exits = 0;
  uint64_t history_errors = 0;
  /// History-store errors that were typed Corruption (a subset of
  /// history_errors): bad pages caught by checksum verification.
  uint64_t corruption_errors = 0;

  // --- Per-shard counters: the detect → repair → quarantine pipeline ---
  /// Corrupt pages detected by fetch verification or a scrub pass.
  uint64_t corruption_detected = 0;
  /// Successful store rebuilds from snapshot + WAL.
  uint64_t corruption_repaired = 0;
  /// Stores quarantined because repair was impossible or did not stick.
  uint64_t corruption_quarantined = 0;
  /// Background-scrubber activity across SQL-backed history stores.
  uint64_t scrub_passes = 0;
  uint64_t scrub_pages = 0;
  uint64_t scrub_errors = 0;
  /// Maintenance resume workflows that touched a physically paused
  /// database (the lowest workflow class of the storm layer).
  uint64_t maintenance_touches = 0;

  // --- Fleet-global: the injected node-crash schedule ---
  uint64_t node_crash_windows = 0;
  uint64_t node_crash_seconds = 0;

  // --- Per-shard counters: failure detection + fenced failover ---
  /// Death declarations by the lease-driven health tracker.
  uint64_t node_deaths = 0;
  /// Dead nodes re-admitted after the rejoin cooldown.
  uint64_t node_rejoins = 0;
  /// Databases re-placed by the failover engine (and the ones its
  /// enqueue deduped against already-live workflows).
  uint64_t failover_requeues = 0;
  uint64_t failover_deduped = 0;
  /// Work refused node-side because the target's lease had lapsed (the
  /// node fenced itself before the plane re-placed its databases).
  uint64_t resume_failures_node_down = 0;

  // --- Per-shard counters: login-wait attribution (storm layer) ---
  /// Reactive logins whose wait started inside an outage window of the
  /// database's node, versus inside a node-crash window awaiting
  /// failover — the two flavors of "the node was gone" with different
  /// remedies (ride it out vs re-place elsewhere), split so a bench can
  /// attribute QoS loss to the right defense.
  uint64_t outage_waited_logins = 0;
  uint64_t outage_wait_seconds = 0;
  uint64_t failover_waited_logins = 0;
  uint64_t failover_wait_seconds = 0;

  /// Sums the per-shard counters; leaves the fleet-global schedule
  /// fields untouched (callers copy those from one shard).
  void AccumulateShard(const RobustnessReport& shard);

  /// One formatted row for bench output.
  std::string ToString() const;
};

}  // namespace prorp::telemetry

#endif  // PRORP_TELEMETRY_FAULT_STATS_H_
