#ifndef PRORP_TELEMETRY_KPI_H_
#define PRORP_TELEMETRY_KPI_H_

#include <string>

#include "common/stats.h"
#include "common/time_util.h"
#include "telemetry/events.h"
#include "telemetry/usage_ledger.h"

namespace prorp::telemetry {

/// The KPI metrics of Section 8, computed offline from telemetry.
struct KpiReport {
  // --- Quality of service ---
  /// First logins after idle intervals, split by resource availability.
  uint64_t logins_total = 0;
  uint64_t logins_available = 0;
  uint64_t logins_reactive = 0;

  /// % of first logins that found resources available (the Figure 6(a) /
  /// 7(a) metric: reactive policy 60-68%, proactive policy 80-90%).
  double QosAvailablePct() const {
    return logins_total == 0
               ? 0
               : 100.0 * static_cast<double>(logins_available) /
                     static_cast<double>(logins_total);
  }

  // --- Operational cost (percent of fleet database-time) ---
  double idle_logical_pct = 0;
  double idle_proactive_correct_pct = 0;
  double idle_proactive_wrong_pct = 0;
  double active_pct = 0;
  double reclaimed_pct = 0;
  double unavailable_pct = 0;

  /// Total idle % (Figure 6(b) / 7(b)): reactive 5-12%, proactive 7-14%.
  double IdleTotalPct() const {
    return idle_logical_pct + idle_proactive_correct_pct +
           idle_proactive_wrong_pct;
  }

  // --- Workflow volumes ---
  uint64_t logical_pauses = 0;
  uint64_t physical_pauses = 0;
  uint64_t proactive_resumes = 0;
  uint64_t forced_evictions = 0;
  uint64_t predictions = 0;

  /// One formatted row for bench output.
  std::string ToString() const;
};

/// Computes the KPI report from the event log and a finished ledger.
KpiReport ComputeKpi(const Recorder& recorder, const UsageLedger& ledger);

/// Same, from a pre-summed fleet time breakdown.  Used when merging
/// per-shard simulation reports: shard breakdowns are integer-second
/// sums, so adding them and recomputing the percentages here reproduces
/// the single-ledger result exactly.
KpiReport ComputeKpi(const Recorder& recorder, const TimeBreakdown& total);

/// Same, from streaming event counters instead of a buffered event log.
/// The recorder overloads delegate here after counting, so full and
/// streaming telemetry modes produce bit-identical KPI reports.
KpiReport ComputeKpi(const EventCounts& counts, const TimeBreakdown& total);

/// Figures 11-12: five-number summary of the number of events of `kind`
/// per `interval`-second bucket across [start, end).  Buckets with zero
/// events count.
BoxPlot WorkflowFrequency(const Recorder& recorder, EventKind kind,
                          DurationSeconds interval, EpochSeconds start,
                          EpochSeconds end);

}  // namespace prorp::telemetry

#endif  // PRORP_TELEMETRY_KPI_H_
