#ifndef PRORP_TELEMETRY_HISTOGRAM_H_
#define PRORP_TELEMETRY_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

namespace prorp::telemetry {

/// Fixed-footprint log2-bucketed histogram of non-negative integer
/// samples (latencies and waits in seconds).  Bucket 0 holds the value 0;
/// bucket b >= 1 holds [2^(b-1), 2^b).  Unlike Summary it never grows
/// with the sample count, so it can sit inside DiagnosticsReport and be
/// bumped on every workflow without memory concerns; the price is that
/// percentiles are bucket-resolution estimates, reported as the upper
/// edge of the bucket holding the requested rank (clamped to the observed
/// max, so Percentile(1.0) is exact).
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  void Add(int64_t value);

  /// Adds the other histogram's buckets to this one (shard merging).
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  int64_t max() const { return max_; }
  double Mean() const;

  /// Upper-edge estimate of the q-quantile (q in [0, 1]); 0 on an empty
  /// histogram.
  double Percentile(double q) const;

  /// "n=.. p50=.. p95=.. p99=.. max=.." row for bench output.
  std::string ToString() const;

  /// Serialization access for control-plane checkpoints: the histogram
  /// sits inside DiagnosticsReport, which must survive a control-plane
  /// restart exactly.
  const std::array<uint64_t, kNumBuckets>& buckets() const {
    return buckets_;
  }
  uint64_t sum() const { return sum_; }

  /// Rebuilds the histogram from serialized parts (checkpoint restore).
  void Restore(const std::array<uint64_t, kNumBuckets>& buckets,
               uint64_t count, int64_t max, uint64_t sum) {
    buckets_ = buckets;
    count_ = count;
    max_ = max;
    sum_ = sum;
  }

 private:
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  int64_t max_ = 0;
  uint64_t sum_ = 0;
};

}  // namespace prorp::telemetry

#endif  // PRORP_TELEMETRY_HISTOGRAM_H_
