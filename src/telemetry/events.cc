#include "telemetry/events.h"

#include <cstdio>

namespace prorp::telemetry {

std::string_view EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kLoginAvailable:
      return "login_available";
    case EventKind::kLoginReactive:
      return "login_reactive";
    case EventKind::kLogout:
      return "logout";
    case EventKind::kLogicalPause:
      return "logical_pause";
    case EventKind::kPhysicalPause:
      return "physical_pause";
    case EventKind::kProactiveResume:
      return "proactive_resume";
    case EventKind::kForcedEviction:
      return "forced_eviction";
    case EventKind::kPrediction:
      return "prediction";
  }
  return "unknown";
}

uint64_t Recorder::Count(EventKind kind) const {
  uint64_t n = 0;
  for (const FleetEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

Status Recorder::ExportCsv(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot create " + path);
  std::fputs("time,db,kind\n", f);
  for (const FleetEvent& e : events_) {
    std::fprintf(f, "%lld,%u,%s\n", static_cast<long long>(e.time), e.db,
                 std::string(EventKindName(e.kind)).c_str());
  }
  if (std::fclose(f) != 0) return Status::IoError("close failed");
  return Status::OK();
}

}  // namespace prorp::telemetry
