#ifndef PRORP_HISTORY_NULL_HISTORY_STORE_H_
#define PRORP_HISTORY_NULL_HISTORY_STORE_H_

#include "history/history_store.h"

namespace prorp::history {

/// A history store that remembers nothing.  For reactive-policy scale
/// runs the store is write-only: the lifecycle controller inserts an
/// activity-boundary tuple per login/logout but only ever reads history
/// through RefreshPrediction, which is gated on the proactive mode.
/// Dropping the writes is therefore behavior-neutral (the differential
/// test pins this) and removes the O(events) memory that would otherwise
/// dwarf a million-database fleet's working set.
///
/// Stateless, so a single instance can serve every database in a shard.
/// Reads answer "no history": prediction-dependent policies must not be
/// configured with this store (the simulator rejects that combination).
class NullHistoryStore final : public HistoryStore {
 public:
  Status InsertHistory(EpochSeconds, int) override { return Status::OK(); }

  Result<bool> DeleteOldHistory(DurationSeconds, EpochSeconds) override {
    return false;  // never enough lifespan for a reliable prediction
  }

  Result<LoginRangeAgg> LoginMinMax(EpochSeconds, EpochSeconds)
      const override {
    return LoginRangeAgg{};
  }

  Result<std::vector<EpochSeconds>> CollectLogins(EpochSeconds, EpochSeconds)
      const override {
    return std::vector<EpochSeconds>{};
  }

  Result<std::vector<HistoryTuple>> ReadAll() const override {
    return std::vector<HistoryTuple>{};
  }

  Result<EpochSeconds> MinTimestamp() const override {
    return Status::NotFound("null history store is empty");
  }

  uint64_t NumTuples() const override { return 0; }
};

}  // namespace prorp::history

#endif  // PRORP_HISTORY_NULL_HISTORY_STORE_H_
