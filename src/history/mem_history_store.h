#ifndef PRORP_HISTORY_MEM_HISTORY_STORE_H_
#define PRORP_HISTORY_MEM_HISTORY_STORE_H_

#include <vector>

#include "history/history_store.h"

namespace prorp::history {

/// Sorted-vector history store with the same semantics as SqlHistoryStore.
/// Inserts are append-mostly (timestamps arrive in order), so the common
/// path is O(1) amortized; out-of-order inserts fall back to binary-search
/// insertion.  The fleet simulator instantiates one of these per database
/// (hundreds of thousands), which is why it exists.
///
/// Property tests in tests/history assert that MemHistoryStore and
/// SqlHistoryStore produce identical observable behaviour.
class MemHistoryStore : public HistoryStore {
 public:
  MemHistoryStore() = default;

  Status InsertHistory(EpochSeconds time, int event_type) override;
  Result<bool> DeleteOldHistory(DurationSeconds h, EpochSeconds now) override;
  Result<LoginRangeAgg> LoginMinMax(EpochSeconds lo,
                                    EpochSeconds hi) const override;
  Result<std::vector<EpochSeconds>> CollectLogins(
      EpochSeconds lo, EpochSeconds hi) const override;
  Result<std::vector<HistoryTuple>> ReadAll() const override;
  Result<EpochSeconds> MinTimestamp() const override;
  uint64_t NumTuples() const override { return tuples_.size(); }

 private:
  std::vector<HistoryTuple> tuples_;  // sorted by time_snapshot, unique
};

}  // namespace prorp::history

#endif  // PRORP_HISTORY_MEM_HISTORY_STORE_H_
