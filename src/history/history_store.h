#ifndef PRORP_HISTORY_HISTORY_STORE_H_
#define PRORP_HISTORY_HISTORY_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/time_util.h"

namespace prorp::history {

/// One tuple of sys.pause_resume_history (paper Section 5): the epoch time
/// of a customer-activity boundary and its type.
struct HistoryTuple {
  EpochSeconds time_snapshot = 0;
  /// 1 = start of customer activity (login), 0 = end of activity.
  int event_type = 0;

  friend bool operator==(const HistoryTuple&, const HistoryTuple&) = default;
};

inline constexpr int kEventLogin = 1;
inline constexpr int kEventLogout = 0;

/// Aggregate of the range query in Algorithm 4 lines 19-24: MIN/MAX of
/// login timestamps within a window on a previous season.
struct LoginRangeAgg {
  bool any = false;          // "@firstLogin IS NOT NULL"
  EpochSeconds first_login = 0;
  EpochSeconds last_login = 0;
};

/// Size of one history tuple: two 64-bit integers (Section 9.3), which is
/// how the paper derives "500 tuples ~ 7 KB".
inline constexpr uint64_t kTupleBytes = 16;

/// Per-database customer-activity history store.
///
/// Two implementations share this contract:
///  * SqlHistoryStore — the faithful one: an actual SQL table with a
///    clustered B+tree on time_snapshot; Algorithms 2 and 3 are executed
///    as SQL statements (this is what the overhead evaluation measures);
///  * MemHistoryStore — an equivalent sorted in-memory store used by the
///    fleet simulator, cross-checked against the SQL one by property
///    tests.
class HistoryStore {
 public:
  virtual ~HistoryStore() = default;

  /// Algorithm 2 (sys.InsertHistory): inserts (time, type) unless a tuple
  /// with this timestamp already exists; the insert is idempotent because
  /// timestamps are unique by construction.
  virtual Status InsertHistory(EpochSeconds time, int event_type) = 0;

  /// Algorithm 3 (sys.DeleteOldHistory): deletes all tuples strictly
  /// between the oldest tuple and `now - h`, keeping the oldest tuple as
  /// the database lifespan witness.  Returns `old`: whether the database
  /// existed before the start of recent history (i.e. has at least h of
  /// lifespan and thus enough history for a reliable prediction).
  virtual Result<bool> DeleteOldHistory(DurationSeconds h,
                                        EpochSeconds now) = 0;

  /// Algorithm 4's inner range query: MIN/MAX login timestamps with
  /// event_type = 1 in the half-open range [lo, hi).  The upper bound is
  /// exclusive so a login exactly on a sliding-window boundary belongs
  /// to exactly one window — an inclusive bound double-counts it in two
  /// adjacent windows and inflates seasons_with_activity.
  virtual Result<LoginRangeAgg> LoginMinMax(EpochSeconds lo,
                                            EpochSeconds hi) const = 0;

  /// All login timestamps in [lo, hi), ascending (the fast predictor's
  /// bulk read; one range scan instead of one query per window).
  virtual Result<std::vector<EpochSeconds>> CollectLogins(
      EpochSeconds lo, EpochSeconds hi) const = 0;

  /// Full contents in timestamp order (tests, debugging, the customer
  /// materialized view).
  virtual Result<std::vector<HistoryTuple>> ReadAll() const = 0;

  /// Oldest timestamp; NotFound when empty.
  virtual Result<EpochSeconds> MinTimestamp() const = 0;

  /// Number of stored tuples (Figure 10(a) metric).
  virtual uint64_t NumTuples() const = 0;

  /// Logical size in bytes = NumTuples() * 16 (Figure 10(b) metric).
  uint64_t SizeBytes() const { return NumTuples() * kTupleBytes; }
};

/// Renders the customer-facing materialized view over the history
/// (Section 5): human-readable timestamps and event names, read-only.
std::string FormatHistoryView(const std::vector<HistoryTuple>& tuples);

}  // namespace prorp::history

#endif  // PRORP_HISTORY_HISTORY_STORE_H_
