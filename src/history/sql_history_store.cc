#include "history/sql_history_store.h"

#include "sql/parser.h"

namespace prorp::history {

namespace {
constexpr const char kHistoryTable[] = "sys.pause_resume_history";
}  // namespace

Result<std::unique_ptr<SqlHistoryStore>> SqlHistoryStore::Open(
    const std::string& dir, const storage::DurableTree::Options* tuning) {
  std::unique_ptr<SqlHistoryStore> store(new SqlHistoryStore());
  store->db_ = std::make_unique<sql::Database>(dir);
  if (tuning != nullptr) store->db_->set_storage_tuning(*tuning);
  PRORP_RETURN_IF_ERROR(store->Prepare());
  return store;
}

Status SqlHistoryStore::Prepare() {
  // Schema of Section 5: unique integer epoch timestamps (clustered
  // B+tree primary key) and a binary event type.
  PRORP_RETURN_IF_ERROR(
      db_->Execute("CREATE TABLE sys.pause_resume_history ("
                   "time_snapshot BIGINT PRIMARY KEY, event_type INT)")
          .status());

  // Algorithm 2 lines 3-5: IF NOT EXISTS (...) guard.
  PRORP_ASSIGN_OR_RETURN(
      exists_stmt_,
      sql::Parse("SELECT COUNT(*) FROM sys.pause_resume_history "
                 "WHERE time_snapshot = @time"));
  // Algorithm 2 lines 6-9.
  PRORP_ASSIGN_OR_RETURN(
      insert_stmt_,
      sql::Parse("INSERT INTO sys.pause_resume_history "
                 "(time_snapshot, event_type) VALUES (@time, @type)"));
  // Algorithm 3 lines 4-5.
  PRORP_ASSIGN_OR_RETURN(
      min_ts_stmt_, sql::Parse("SELECT MIN(time_snapshot) FROM "
                               "sys.pause_resume_history"));
  // Algorithm 3 lines 8-10: keep the oldest tuple, delete everything else
  // older than the start of recent history.
  PRORP_ASSIGN_OR_RETURN(
      delete_old_stmt_,
      sql::Parse("DELETE FROM sys.pause_resume_history "
                 "WHERE @minTimestamp < time_snapshot AND "
                 "time_snapshot < @historyStart"));
  // Algorithm 4 lines 19-24.
  PRORP_ASSIGN_OR_RETURN(
      login_minmax_stmt_,
      sql::Parse("SELECT MIN(time_snapshot), MAX(time_snapshot) "
                 "FROM sys.pause_resume_history "
                 "WHERE event_type = 1 AND "
                 "@winStartPrevDay <= time_snapshot AND "
                 "time_snapshot < @winEndPrevDay"));
  PRORP_ASSIGN_OR_RETURN(
      collect_logins_stmt_,
      sql::Parse("SELECT time_snapshot FROM sys.pause_resume_history "
                 "WHERE event_type = 1 AND "
                 "@lo <= time_snapshot AND time_snapshot < @hi"));
  PRORP_ASSIGN_OR_RETURN(
      read_all_stmt_,
      sql::Parse("SELECT time_snapshot, event_type FROM "
                 "sys.pause_resume_history ORDER BY time_snapshot"));
  PRORP_ASSIGN_OR_RETURN(count_stmt_,
                         sql::Parse("SELECT COUNT(*) FROM "
                                    "sys.pause_resume_history"));
  return Status::OK();
}

Status SqlHistoryStore::InsertHistory(EpochSeconds time, int event_type) {
  if (event_type != kEventLogin && event_type != kEventLogout) {
    return Status::InvalidArgument("event_type must be 0 or 1");
  }
  sql::Params params{{"time", time}, {"type", event_type}};
  PRORP_ASSIGN_OR_RETURN(sql::QueryResult exists,
                         db_->ExecuteStatement(exists_stmt_, params));
  if (exists.rows[0][0] != 0) return Status::OK();  // IF NOT EXISTS
  return db_->ExecuteStatement(insert_stmt_, params).status();
}

Result<bool> SqlHistoryStore::DeleteOldHistory(DurationSeconds h,
                                               EpochSeconds now) {
  if (h <= 0) return Status::InvalidArgument("history length must be > 0");
  // Line 3: @historyStart = @now - @h (h is already in seconds here;
  // the paper multiplies out @h*24*60*60 from days).
  EpochSeconds history_start = now - h;
  // Lines 4-5.
  PRORP_ASSIGN_OR_RETURN(sql::QueryResult min_row,
                         db_->ExecuteStatement(min_ts_stmt_, {}));
  sql::NullableValue min_ts = min_row.Cell();
  if (min_ts.is_null) return false;  // empty history: not old
  // Lines 6-11.
  if (min_ts.value < history_start) {
    sql::Params params{{"minTimestamp", min_ts.value},
                       {"historyStart", history_start}};
    PRORP_RETURN_IF_ERROR(
        db_->ExecuteStatement(delete_old_stmt_, params).status());
    return true;
  }
  return false;
}

Result<LoginRangeAgg> SqlHistoryStore::LoginMinMax(EpochSeconds lo,
                                                   EpochSeconds hi) const {
  sql::Params params{{"winStartPrevDay", lo}, {"winEndPrevDay", hi}};
  PRORP_ASSIGN_OR_RETURN(
      sql::QueryResult r,
      db_->ExecuteStatement(login_minmax_stmt_, params));
  LoginRangeAgg agg;
  if (!r.nulls.empty() && !r.nulls[0]) {
    agg.any = true;
    agg.first_login = r.rows[0][0];
    agg.last_login = r.rows[0][1];
  }
  return agg;
}

Result<std::vector<EpochSeconds>> SqlHistoryStore::CollectLogins(
    EpochSeconds lo, EpochSeconds hi) const {
  sql::Params params{{"lo", lo}, {"hi", hi}};
  PRORP_ASSIGN_OR_RETURN(
      sql::QueryResult r,
      db_->ExecuteStatement(collect_logins_stmt_, params));
  std::vector<EpochSeconds> out;
  out.reserve(r.rows.size());
  for (const sql::Row& row : r.rows) out.push_back(row[0]);
  return out;
}

Result<std::vector<HistoryTuple>> SqlHistoryStore::ReadAll() const {
  PRORP_ASSIGN_OR_RETURN(
      sql::QueryResult r,
      db_->ExecuteStatement(read_all_stmt_, {}));
  std::vector<HistoryTuple> out;
  out.reserve(r.rows.size());
  for (const sql::Row& row : r.rows) {
    out.push_back({row[0], static_cast<int>(row[1])});
  }
  return out;
}

Result<EpochSeconds> SqlHistoryStore::MinTimestamp() const {
  PRORP_ASSIGN_OR_RETURN(sql::QueryResult r,
                         db_->ExecuteStatement(min_ts_stmt_, {}));
  sql::NullableValue v = r.Cell();
  if (v.is_null) return Status::NotFound("history is empty");
  return v.value;
}

Result<storage::ScrubReport> SqlHistoryStore::Scrub() {
  PRORP_ASSIGN_OR_RETURN(sql::Table * table, db_->GetTable(kHistoryTable));
  return table->durable_tree()->Scrub();
}

storage::IntegrityStats SqlHistoryStore::integrity_stats() const {
  auto table = db_->GetTable(kHistoryTable);
  if (!table.ok()) return {};
  return (*table)->durable_tree()->integrity_stats();
}

bool SqlHistoryStore::quarantined() const {
  auto table = db_->GetTable(kHistoryTable);
  if (!table.ok()) return false;
  return (*table)->durable_tree()->quarantined();
}

uint64_t SqlHistoryStore::NumTuples() const {
  auto r = db_->ExecuteStatement(count_stmt_, {});
  if (!r.ok()) return 0;
  return static_cast<uint64_t>(r->rows[0][0]);
}

std::string FormatHistoryView(const std::vector<HistoryTuple>& tuples) {
  std::string out = "activity_time          event\n";
  for (const HistoryTuple& t : tuples) {
    out += FormatTimestamp(t.time_snapshot);
    out += (t.event_type == kEventLogin) ? "    activity_start\n"
                                         : "    activity_end\n";
  }
  return out;
}

}  // namespace prorp::history
