#include "history/mem_history_store.h"

#include <algorithm>

namespace prorp::history {
namespace {

bool TupleTimeLess(const HistoryTuple& t, EpochSeconds time) {
  return t.time_snapshot < time;
}

}  // namespace

Status MemHistoryStore::InsertHistory(EpochSeconds time, int event_type) {
  if (event_type != kEventLogin && event_type != kEventLogout) {
    return Status::InvalidArgument("event_type must be 0 or 1");
  }
  if (tuples_.empty() || tuples_.back().time_snapshot < time) {
    tuples_.push_back({time, event_type});
    return Status::OK();
  }
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), time,
                             TupleTimeLess);
  if (it != tuples_.end() && it->time_snapshot == time) {
    return Status::OK();  // IF NOT EXISTS: keep the first writer's tuple
  }
  tuples_.insert(it, {time, event_type});
  return Status::OK();
}

Result<bool> MemHistoryStore::DeleteOldHistory(DurationSeconds h,
                                               EpochSeconds now) {
  if (h <= 0) return Status::InvalidArgument("history length must be > 0");
  if (tuples_.empty()) return false;
  EpochSeconds history_start = now - h;
  EpochSeconds min_ts = tuples_.front().time_snapshot;
  if (min_ts >= history_start) return false;
  // Keep the oldest tuple (the lifespan witness), delete everything in
  // (min_ts, history_start).
  auto first_kept =
      std::lower_bound(tuples_.begin() + 1, tuples_.end(), history_start,
                       TupleTimeLess);
  tuples_.erase(tuples_.begin() + 1, first_kept);
  return true;
}

Result<LoginRangeAgg> MemHistoryStore::LoginMinMax(EpochSeconds lo,
                                                   EpochSeconds hi) const {
  LoginRangeAgg agg;
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), lo,
                             TupleTimeLess);
  for (; it != tuples_.end() && it->time_snapshot < hi; ++it) {
    if (it->event_type != kEventLogin) continue;
    if (!agg.any) {
      agg.any = true;
      agg.first_login = it->time_snapshot;
    }
    agg.last_login = it->time_snapshot;
  }
  return agg;
}

Result<std::vector<EpochSeconds>> MemHistoryStore::CollectLogins(
    EpochSeconds lo, EpochSeconds hi) const {
  std::vector<EpochSeconds> out;
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), lo,
                             TupleTimeLess);
  for (; it != tuples_.end() && it->time_snapshot < hi; ++it) {
    if (it->event_type == kEventLogin) out.push_back(it->time_snapshot);
  }
  return out;
}

Result<std::vector<HistoryTuple>> MemHistoryStore::ReadAll() const {
  return tuples_;
}

Result<EpochSeconds> MemHistoryStore::MinTimestamp() const {
  if (tuples_.empty()) return Status::NotFound("history is empty");
  return tuples_.front().time_snapshot;
}

}  // namespace prorp::history
