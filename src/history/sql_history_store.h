#ifndef PRORP_HISTORY_SQL_HISTORY_STORE_H_
#define PRORP_HISTORY_SQL_HISTORY_STORE_H_

#include <memory>
#include <string>

#include "history/history_store.h"
#include "sql/ast.h"
#include "sql/database.h"

namespace prorp::history {

/// The faithful history store: sys.pause_resume_history lives as a real
/// SQL table inside the (simulated) database itself, exactly as the paper
/// mandates — clustered B+tree index on time_snapshot, SQL interface,
/// durability via the storage engine's WAL + snapshots, and backup/restore
/// for cross-node moves.
///
/// Algorithms 2 and 3 execute as SQL statement sequences; statements are
/// parsed once and cached, mirroring stored-procedure compilation.
class SqlHistoryStore : public HistoryStore {
 public:
  /// `dir` empty => ephemeral (unit tests / simulation).  Otherwise the
  /// table persists under dir and reopening recovers it.  `tuning`, when
  /// given, supplies the storage knobs (checkpoint threshold, fsync
  /// policy, fault plan) for the underlying table — crash-torture tests
  /// use it to run the full SQL stack over a faulty disk.
  static Result<std::unique_ptr<SqlHistoryStore>> Open(
      const std::string& dir = "",
      const storage::DurableTree::Options* tuning = nullptr);

  Status InsertHistory(EpochSeconds time, int event_type) override;
  Result<bool> DeleteOldHistory(DurationSeconds h, EpochSeconds now) override;
  Result<LoginRangeAgg> LoginMinMax(EpochSeconds lo,
                                    EpochSeconds hi) const override;
  Result<std::vector<EpochSeconds>> CollectLogins(
      EpochSeconds lo, EpochSeconds hi) const override;
  Result<std::vector<HistoryTuple>> ReadAll() const override;
  Result<EpochSeconds> MinTimestamp() const override;
  uint64_t NumTuples() const override;

  /// The embedded SQL database (exposed for tests and the latency bench).
  sql::Database* database() { return db_.get(); }
  const sql::Database* database() const { return db_.get(); }

  /// On-demand integrity pass over the history table (checksums, page-id
  /// self-references, B+tree invariants).  Self-heals via snapshot + WAL
  /// rebuild when the report is dirty; quarantines when healing fails.
  Result<storage::ScrubReport> Scrub();

  /// Detect / repair / quarantine counters of the history table's tree.
  storage::IntegrityStats integrity_stats() const;

  /// True once the underlying store has been quarantined; operations
  /// return the stored Corruption status from then on.
  bool quarantined() const;

 private:
  SqlHistoryStore() = default;

  Status Prepare();

  // Mutable: SELECT execution goes through the same statement executor as
  // mutations, and the buffer pool underneath caches pages on reads.
  mutable std::unique_ptr<sql::Database> db_;
  // Cached parsed statements ("compiled stored procedures").
  sql::Statement exists_stmt_;
  sql::Statement insert_stmt_;
  sql::Statement min_ts_stmt_;
  sql::Statement delete_old_stmt_;
  sql::Statement login_minmax_stmt_;
  sql::Statement collect_logins_stmt_;
  sql::Statement read_all_stmt_;
  sql::Statement count_stmt_;
};

}  // namespace prorp::history

#endif  // PRORP_HISTORY_SQL_HISTORY_STORE_H_
